#include "workload/trace.hpp"

#include <gtest/gtest.h>

#include "blockdev/mem_block_device.hpp"
#include "sim/simulator.hpp"

namespace sst::workload {
namespace {

struct Harness {
  sim::Simulator sim;
  blockdev::MemBlockDevice dev{sim, 16 * MiB, 5, usec(300), 100e6};

  RequestSink device_sink() {
    return [this](core::ClientRequest req) {
      blockdev::BlockRequest io;
      io.offset = req.offset;
      io.length = req.length;
      io.op = req.op;
      io.data = req.data;
      io.on_complete = std::move(req.on_complete);
      dev.submit(std::move(io));
    };
  }
};

TEST(TraceRecorder, CapturesMetadataAndLatency) {
  Harness h;
  TraceRecorder recorder(h.sim, h.device_sink());
  StreamSpec spec;
  spec.request_size = 16 * KiB;
  spec.num_requests = 4;
  StreamClient client(h.sim, recorder.sink(), spec, h.dev.capacity());
  client.start();
  h.sim.run();
  ASSERT_EQ(recorder.records().size(), 4u);
  EXPECT_EQ(recorder.completed_count(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    const auto& r = recorder.records()[i];
    EXPECT_EQ(r.offset, i * 16 * KiB);
    EXPECT_EQ(r.length, 16 * KiB);
    EXPECT_TRUE(r.completed());
    EXPECT_GT(r.latency, 0u);
  }
}

TEST(TraceRecorder, PreservesInnerCompletion) {
  Harness h;
  TraceRecorder recorder(h.sim, h.device_sink());
  auto sink = recorder.sink();
  int done = 0;
  core::ClientRequest req;
  req.offset = 0;
  req.length = 4 * KiB;
  req.on_complete = [&done](SimTime) { ++done; };
  sink(std::move(req));
  h.sim.run();
  EXPECT_EQ(done, 1);
}

TEST(TraceRecorder, ClearResets) {
  Harness h;
  TraceRecorder recorder(h.sim, h.device_sink());
  auto sink = recorder.sink();
  core::ClientRequest req;
  req.offset = 0;
  req.length = 4 * KiB;
  sink(std::move(req));
  h.sim.run();
  recorder.clear();
  EXPECT_TRUE(recorder.records().empty());
  EXPECT_EQ(recorder.completed_count(), 0u);
}

TEST(TraceText, RoundTrip) {
  std::vector<TraceRecord> records(3);
  records[0] = {usec(10), 0, 0, 4 * KiB, IoOp::kRead, usec(100)};
  records[1] = {usec(20), 1, 64 * KiB, 8 * KiB, IoOp::kWrite, usec(200)};
  records[2] = {usec(30), 0, 128 * KiB, 4 * KiB, IoOp::kRead, kSimTimeMax};  // incomplete
  const auto text = trace_to_text(records);
  const auto parsed = trace_from_text(text);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(parsed.value()[i].issue_time, records[i].issue_time);
    EXPECT_EQ(parsed.value()[i].device, records[i].device);
    EXPECT_EQ(parsed.value()[i].offset, records[i].offset);
    EXPECT_EQ(parsed.value()[i].length, records[i].length);
    EXPECT_EQ(parsed.value()[i].op, records[i].op);
    EXPECT_EQ(parsed.value()[i].latency, records[i].latency);
  }
}

TEST(TraceText, RejectsMalformedLine) {
  EXPECT_FALSE(trace_from_text("10 0 0 bad R -\n").ok());
  EXPECT_FALSE(trace_from_text("10 0 0 4096 X -\n").ok());
  EXPECT_FALSE(trace_from_text("10 0 0 4096 R notanumber\n").ok());
}

TEST(TraceText, SkipsCommentsAndBlankLines) {
  const auto parsed = trace_from_text("# header\n\n10 0 0 4096 R 99\n");
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().size(), 1u);
  EXPECT_EQ(parsed.value()[0].latency, 99u);
}

TEST(TraceReplay, ClosedLoopReplaysAll) {
  Harness h;
  std::vector<TraceRecord> trace;
  for (int i = 0; i < 10; ++i) {
    trace.push_back({usec(static_cast<std::uint64_t>(i) * 10), 0,
                     static_cast<ByteOffset>(i) * 32 * KiB, 16 * KiB, IoOp::kRead, 0});
  }
  TraceReplayer replayer(h.sim, h.device_sink(), trace, ReplayMode::kClosedLoop,
                         /*window=*/2);
  replayer.start();
  h.sim.run();
  EXPECT_TRUE(replayer.done());
  EXPECT_EQ(replayer.completed(), 10u);
  EXPECT_EQ(replayer.latency().count(), 10u);
}

TEST(TraceReplay, OriginalTimingHonoursGaps) {
  Harness h;
  std::vector<TraceRecord> trace;
  trace.push_back({msec(100), 0, 0, 4 * KiB, IoOp::kRead, 0});
  trace.push_back({msec(150), 0, 64 * KiB, 4 * KiB, IoOp::kRead, 0});
  TraceReplayer replayer(h.sim, h.device_sink(), trace, ReplayMode::kOriginalTiming);
  replayer.start();
  h.sim.run();
  EXPECT_TRUE(replayer.done());
  // First record shifted to t=0; the second issued 50 ms later, so the
  // simulation ends at >= 50 ms.
  EXPECT_GE(h.sim.now(), msec(50));
  EXPECT_LT(h.sim.now(), msec(100));
}

TEST(TraceReplay, RecordThenReplayMatchesAccessPattern) {
  // Record a run, replay the trace, and verify the replayed requests touch
  // the same extents.
  Harness h;
  TraceRecorder recorder(h.sim, h.device_sink());
  StreamSpec spec;
  spec.request_size = 8 * KiB;
  spec.num_requests = 6;
  StreamClient client(h.sim, recorder.sink(), spec, h.dev.capacity());
  client.start();
  h.sim.run();

  sim::Simulator sim2;
  blockdev::MemBlockDevice dev2(sim2, 16 * MiB, 5, usec(300), 100e6);
  std::vector<std::pair<ByteOffset, Bytes>> replayed;
  RequestSink sink2 = [&](core::ClientRequest req) {
    replayed.emplace_back(req.offset, req.length);
    blockdev::BlockRequest io;
    io.offset = req.offset;
    io.length = req.length;
    io.on_complete = std::move(req.on_complete);
    dev2.submit(std::move(io));
  };
  TraceReplayer replayer(sim2, sink2, recorder.records(), ReplayMode::kClosedLoop);
  replayer.start();
  sim2.run();
  ASSERT_EQ(replayed.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(replayed[i].first, recorder.records()[i].offset);
    EXPECT_EQ(replayed[i].second, recorder.records()[i].length);
  }
}

TEST(TraceReplay, EmptyTraceIsDone) {
  Harness h;
  TraceReplayer replayer(h.sim, h.device_sink(), {}, ReplayMode::kClosedLoop);
  replayer.start();
  h.sim.run();
  EXPECT_TRUE(replayer.done());
}

}  // namespace
}  // namespace sst::workload
