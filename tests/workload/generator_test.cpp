#include "workload/generator.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "sim/simulator.hpp"

namespace sst::workload {
namespace {

constexpr Bytes kCapacity = 64 * MiB;

/// Sink that records requests and completes them after a fixed delay.
struct RecordingSink {
  sim::Simulator& sim;
  SimTime delay = usec(100);
  std::vector<core::ClientRequest> seen;

  RequestSink make() {
    return [this](core::ClientRequest req) {
      seen.push_back(req);  // copy of the metadata fields
      sim.schedule_after(delay, [cb = std::move(req.on_complete), this]() {
        if (cb) cb(sim.now());
      });
    };
  }
};

TEST(StreamClient, SequentialOffsets) {
  sim::Simulator sim;
  RecordingSink sink{sim, usec(100), {}};
  StreamSpec spec;
  spec.request_size = 64 * KiB;
  spec.num_requests = 5;
  StreamClient client(sim, sink.make(), spec, kCapacity);
  client.start();
  sim.run();
  ASSERT_EQ(sink.seen.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(sink.seen[i].offset, i * 64 * KiB);
    EXPECT_EQ(sink.seen[i].length, 64 * KiB);
  }
  EXPECT_TRUE(client.finished());
}

TEST(StreamClient, ClosedLoopOneOutstanding) {
  sim::Simulator sim;
  RecordingSink sink{sim, usec(100), {}};
  StreamSpec spec;
  spec.num_requests = 3;
  StreamClient client(sim, sink.make(), spec, kCapacity);
  client.start();
  // Before the sim runs, exactly one request is outstanding.
  EXPECT_EQ(sink.seen.size(), 1u);
  sim.run();
  EXPECT_EQ(sink.seen.size(), 3u);
}

TEST(StreamClient, MultipleOutstanding) {
  sim::Simulator sim;
  RecordingSink sink{sim, usec(100), {}};
  StreamSpec spec;
  spec.outstanding = 4;
  spec.num_requests = 8;
  StreamClient client(sim, sink.make(), spec, kCapacity);
  client.start();
  EXPECT_EQ(sink.seen.size(), 4u);
  sim.run();
  EXPECT_EQ(sink.seen.size(), 8u);
}

TEST(StreamClient, WrapsAtRegionEnd) {
  sim::Simulator sim;
  RecordingSink sink{sim, usec(100), {}};
  StreamSpec spec;
  spec.start_offset = 1 * MiB;
  spec.region_bytes = 192 * KiB;  // three 64K requests, then wrap
  spec.request_size = 64 * KiB;
  spec.num_requests = 5;
  StreamClient client(sim, sink.make(), spec, kCapacity);
  client.start();
  sim.run();
  ASSERT_EQ(sink.seen.size(), 5u);
  EXPECT_EQ(sink.seen[3].offset, 1 * MiB);           // wrapped
  EXPECT_EQ(sink.seen[4].offset, 1 * MiB + 64 * KiB);
}

TEST(StreamClient, WrapsAtDeviceEndWhenNoRegion) {
  sim::Simulator sim;
  RecordingSink sink{sim, usec(100), {}};
  StreamSpec spec;
  spec.start_offset = kCapacity - 128 * KiB;
  spec.request_size = 64 * KiB;
  spec.num_requests = 3;
  StreamClient client(sim, sink.make(), spec, kCapacity);
  client.start();
  sim.run();
  ASSERT_EQ(sink.seen.size(), 3u);
  EXPECT_EQ(sink.seen[2].offset, kCapacity - 128 * KiB);  // wrapped to start
}

TEST(StreamClient, StatsTrackThroughputAndLatency) {
  sim::Simulator sim;
  RecordingSink sink{sim, usec(100), {}};
  StreamSpec spec;
  spec.request_size = 64 * KiB;
  spec.num_requests = 10;
  StreamClient client(sim, sink.make(), spec, kCapacity);
  client.start();
  sim.run();
  EXPECT_EQ(client.stats().completed, 10u);
  EXPECT_EQ(client.stats().throughput.total_bytes(), 640 * KiB);
  EXPECT_NEAR(client.stats().latency.mean_ms(), 0.1, 0.02);  // sink delay
}

TEST(StreamClient, BeginMeasurementResets) {
  sim::Simulator sim;
  RecordingSink sink{sim, usec(100), {}};
  StreamSpec spec;
  spec.num_requests = 4;
  StreamClient client(sim, sink.make(), spec, kCapacity);
  client.start();
  sim.run();
  client.begin_measurement();
  EXPECT_EQ(client.stats().completed, 0u);
  EXPECT_EQ(client.stats().throughput.total_bytes(), 0u);
}

TEST(StreamClient, ThinkTimeDelaysNextIssue) {
  sim::Simulator sim;
  RecordingSink sink{sim, usec(10), {}};
  StreamSpec spec;
  spec.think_time = msec(1);
  spec.num_requests = 3;
  StreamClient client(sim, sink.make(), spec, kCapacity);
  client.start();
  sim.run();
  // 3 requests: ~2 think gaps + 3 service delays.
  EXPECT_GE(sim.now(), 2 * msec(1));
}

TEST(RandomClient, OffsetsAlignedAndInBounds) {
  sim::Simulator sim;
  std::vector<core::ClientRequest> seen;
  RequestSink sink = [&](core::ClientRequest req) {
    seen.push_back(req);
    if (seen.size() < 50) {
      sim.schedule_after(usec(10), [cb = std::move(req.on_complete), &sim]() {
        cb(sim.now());
      });
    }
  };
  RandomClient client(sim, std::move(sink), 0, kCapacity, 16 * KiB, 1, /*seed=*/3);
  client.start();
  sim.run();
  EXPECT_EQ(seen.size(), 50u);
  std::set<ByteOffset> distinct;
  for (const auto& r : seen) {
    EXPECT_EQ(r.offset % kSectorSize, 0u);
    EXPECT_LE(r.offset + r.length, kCapacity);
    distinct.insert(r.offset);
  }
  EXPECT_GT(distinct.size(), 40u);  // actually random
}

TEST(UniformStreams, SingleDiskSpacing) {
  auto specs = make_uniform_streams(4, 1, 1 * GiB, 64 * KiB);
  ASSERT_EQ(specs.size(), 4u);
  const Bytes spacing = (1 * GiB) / 4;
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(specs[i].device, 0u);
    EXPECT_EQ(specs[i].start_offset, i * spacing);
    EXPECT_EQ(specs[i].region_bytes, spacing);
  }
}

TEST(UniformStreams, MultiDiskRoundRobin) {
  auto specs = make_uniform_streams(8, 4, 1 * GiB, 64 * KiB);
  ASSERT_EQ(specs.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(specs[i].device, i % 4);
  }
  // Two streams per disk: second wave offset by capacity/2.
  EXPECT_EQ(specs[4].start_offset, (1 * GiB) / 2);
}

TEST(UniformStreams, SpacingSectorAligned) {
  auto specs = make_uniform_streams(7, 1, 80 * GiB + 12345, 64 * KiB);
  for (const auto& s : specs) {
    EXPECT_EQ(s.start_offset % kSectorSize, 0u);
  }
}

}  // namespace
}  // namespace sst::workload
