// Near-sequential streams: access with gaps between requests (the paper
// flags near-sequential detection as the case where the classifier's
// region width starts to matter, "beyond the scope of this work" — here it
// is implemented and tested). The classifier detects strided runs as long
// as enough distinct blocks land inside one region; the stream scheduler's
// contiguous read-ahead covers the gaps, and consumption high-water marks
// treat skipped bytes as consumed.
#include <gtest/gtest.h>

#include "blockdev/mem_block_device.hpp"
#include "core/server.hpp"
#include "sim/simulator.hpp"
#include "workload/generator.hpp"

namespace sst {
namespace {

core::SchedulerParams nearseq_params() {
  core::SchedulerParams p;
  p.read_ahead = 512 * KiB;
  p.memory_budget = 16 * MiB;
  p.materialize_buffers = true;
  p.classifier.block_bytes = 16 * KiB;
  p.classifier.offset_blocks = 32;  // region spans 512 KB either way
  p.classifier.detect_threshold = 3;
  return p;
}

struct Harness {
  sim::Simulator sim;
  blockdev::MemBlockDevice dev{sim, 64 * MiB, 3, usec(200), 200e6};
  core::StorageServer server;

  Harness() : server(sim, {&dev}, nearseq_params()) {}

  workload::RequestSink sink() {
    return [this](core::ClientRequest req) { server.submit(std::move(req)); };
  }
};

TEST(NearSequential, StridedClientAdvancesWithGap) {
  sim::Simulator sim;
  std::vector<ByteOffset> offsets;
  workload::RequestSink sink = [&](core::ClientRequest req) {
    offsets.push_back(req.offset);
    sim.schedule_after(usec(10), [cb = std::move(req.on_complete), &sim]() { cb(sim.now()); });
  };
  workload::StreamSpec spec;
  spec.request_size = 16 * KiB;
  spec.stride_gap = 48 * KiB;
  spec.num_requests = 4;
  workload::StreamClient client(sim, std::move(sink), spec, 64 * MiB);
  client.start();
  sim.run();
  ASSERT_EQ(offsets.size(), 4u);
  EXPECT_EQ(offsets[1], 64 * KiB);
  EXPECT_EQ(offsets[2], 128 * KiB);
}

TEST(NearSequential, ClassifierDetectsSmallGaps) {
  Harness h;
  workload::StreamSpec spec;
  spec.request_size = 16 * KiB;
  spec.stride_gap = 16 * KiB;  // 50% duty cycle, well inside the region
  spec.num_requests = 30;
  workload::StreamClient client(h.sim, h.sink(), spec, h.dev.capacity());
  client.start();
  h.sim.run_until(sec(5));
  EXPECT_EQ(h.server.scheduler().stream_count(), 1u);
  EXPECT_GT(h.server.stats().sequential_requests, 20u);
}

TEST(NearSequential, StridedRequestsServedFromReadAhead) {
  Harness h;
  workload::StreamSpec spec;
  spec.request_size = 16 * KiB;
  spec.stride_gap = 16 * KiB;
  spec.num_requests = 60;
  workload::StreamClient client(h.sim, h.sink(), spec, h.dev.capacity());
  client.start();
  h.sim.run_until(sec(5));
  EXPECT_EQ(client.stats().completed, 60u);
  // Most post-detection requests were staged-buffer hits.
  EXPECT_GT(h.server.scheduler().stats().buffer_hits, 30u);
}

TEST(NearSequential, GapsLargerThanRegionStayUnclassified) {
  Harness h;
  workload::StreamSpec spec;
  spec.request_size = 16 * KiB;
  spec.stride_gap = 4 * MiB;  // each request lands in a fresh region
  spec.num_requests = 10;
  workload::StreamClient client(h.sim, h.sink(), spec, h.dev.capacity());
  client.start();
  h.sim.run_until(sec(5));
  EXPECT_EQ(client.stats().completed, 10u);
  EXPECT_EQ(h.server.scheduler().stream_count(), 0u);
  EXPECT_EQ(h.server.stats().direct_reads, 10u);
}

TEST(NearSequential, DataIntegrityWithGaps) {
  Harness h;
  // Materialized server: verify strided reads return the right bytes even
  // though the read-ahead fetches the gaps too.
  std::vector<std::byte> buf(16 * KiB);
  int done = 0;
  for (int i = 0; i < 20; ++i) {
    const ByteOffset off = static_cast<ByteOffset>(i) * 32 * KiB;
    std::fill(buf.begin(), buf.end(), std::byte{0});
    core::ClientRequest req;
    req.device = 0;
    req.offset = off;
    req.length = buf.size();
    req.data = buf.data();
    req.on_complete = [&done](SimTime) { ++done; };
    h.server.submit(std::move(req));
    h.sim.run_until(h.sim.now() + msec(50));
    ASSERT_EQ(done, i + 1);
    EXPECT_TRUE(blockdev::check_pattern(3, off, buf.data(), buf.size())) << i;
  }
}

TEST(NearSequential, WiderRegionsDetectWiderStrides) {
  // With a wider classifier region the same stride is detected; with a
  // narrow one it is not — the knob the paper hints at.
  auto run_with = [](std::uint32_t offset_blocks) {
    core::SchedulerParams p = nearseq_params();
    p.classifier.offset_blocks = offset_blocks;
    sim::Simulator sim;
    blockdev::MemBlockDevice dev(sim, 64 * MiB, 3, usec(200), 200e6);
    core::StorageServer server(sim, {&dev}, p);
    workload::StreamSpec spec;
    spec.request_size = 16 * KiB;
    spec.stride_gap = 112 * KiB;  // stride 8 blocks of 16 KB
    spec.num_requests = 20;
    workload::StreamClient client(
        sim, [&server](core::ClientRequest r) { server.submit(std::move(r)); }, spec,
        dev.capacity());
    client.start();
    sim.run_until(sec(5));
    return server.scheduler().stream_count();
  };
  EXPECT_EQ(run_with(4), 0u);    // region spans 4 blocks: stride escapes it
  EXPECT_GE(run_with(64), 1u);   // region spans 64 blocks: detected
}

}  // namespace
}  // namespace sst
