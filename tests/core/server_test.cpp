#include "core/server.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "blockdev/mem_block_device.hpp"
#include "sim/simulator.hpp"

namespace sst::core {
namespace {

constexpr std::uint64_t kSeed = 7;

SchedulerParams server_params() {
  SchedulerParams p;
  p.read_ahead = 64 * KiB;
  p.memory_budget = 2 * MiB;
  p.materialize_buffers = true;
  p.classifier.block_bytes = 16 * KiB;
  p.classifier.detect_threshold = 3;
  return p;
}

struct Harness {
  sim::Simulator sim;
  blockdev::MemBlockDevice dev0{sim, 16 * MiB, kSeed, usec(200), 200e6};
  blockdev::MemBlockDevice dev1{sim, 16 * MiB, kSeed + 1, usec(200), 200e6};
  StorageServer server;

  Harness() : server(sim, {&dev0, &dev1}, server_params()) {}

  void run_ms(std::uint64_t ms) { sim.run_until(sim.now() + msec(ms)); }

  int read(std::uint32_t device, ByteOffset off, Bytes len, std::byte* data = nullptr) {
    int done = 0;
    ClientRequest req;
    req.device = device;
    req.offset = off;
    req.length = len;
    req.data = data;
    req.on_complete = [&done](SimTime) { ++done; };
    server.submit(std::move(req));
    run_ms(30);
    return done;
  }
};

TEST(Server, NonSequentialReadsGoDirect) {
  Harness h;
  EXPECT_EQ(h.read(0, 0, 16 * KiB), 1);
  EXPECT_EQ(h.read(0, 4 * MiB, 16 * KiB), 1);
  EXPECT_EQ(h.server.stats().direct_reads, 2u);
  EXPECT_EQ(h.server.scheduler().stream_count(), 0u);
}

TEST(Server, SequentialRunCreatesStream) {
  Harness h;
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(h.read(0, static_cast<ByteOffset>(i) * 16 * KiB, 16 * KiB), 1);
  }
  EXPECT_EQ(h.server.scheduler().stream_count(), 1u);
  EXPECT_EQ(h.server.classifier().stats().streams_detected, 1u);
  // Subsequent requests are routed to the stream and served from prefetch.
  EXPECT_EQ(h.read(0, 3 * 16 * KiB, 16 * KiB), 1);
  EXPECT_GE(h.server.stats().sequential_requests, 1u);
}

TEST(Server, WritesAlwaysDirect) {
  Harness h;
  int done = 0;
  ClientRequest req;
  req.device = 0;
  req.offset = 0;
  req.length = 16 * KiB;
  req.op = IoOp::kWrite;
  std::vector<std::byte> data(16 * KiB, std::byte{0x5A});
  req.data = data.data();
  req.on_complete = [&done](SimTime) { ++done; };
  h.server.submit(std::move(req));
  h.run_ms(30);
  EXPECT_EQ(done, 1);
  EXPECT_EQ(h.server.stats().direct_writes, 1u);
  EXPECT_EQ(h.dev0.raw(0)[0], std::byte{0x5A});
}

TEST(Server, StreamsPerDeviceIndependent) {
  Harness h;
  for (int i = 0; i < 3; ++i) {
    h.read(0, static_cast<ByteOffset>(i) * 16 * KiB, 16 * KiB);
    h.read(1, static_cast<ByteOffset>(i) * 16 * KiB, 16 * KiB);
  }
  EXPECT_EQ(h.server.scheduler().stream_count(), 2u);
}

TEST(Server, EndToEndDataIntegrityAfterDetection) {
  Harness h;
  std::vector<std::byte> buf(16 * KiB);
  for (int i = 0; i < 20; ++i) {
    const ByteOffset off = static_cast<ByteOffset>(i) * 16 * KiB;
    std::fill(buf.begin(), buf.end(), std::byte{0});
    ASSERT_EQ(h.read(0, off, buf.size(), buf.data()), 1) << i;
    EXPECT_TRUE(blockdev::check_pattern(kSeed, off, buf.data(), buf.size())) << i;
  }
  // The bulk of the run was served through the stream path.
  EXPECT_GT(h.server.stats().sequential_requests, 10u);
}

TEST(Server, RequestCountsAddUp) {
  Harness h;
  for (int i = 0; i < 10; ++i) {
    h.read(0, static_cast<ByteOffset>(i) * 16 * KiB, 16 * KiB);
  }
  const auto& s = h.server.stats();
  EXPECT_EQ(s.requests, 10u);
  EXPECT_EQ(s.requests, s.sequential_requests + s.direct_reads + s.direct_writes);
}

TEST(Server, InterleavedStreamsAllDetected) {
  Harness h;
  // Two spatially distant streams on one device, interleaved arrivals.
  for (int i = 0; i < 4; ++i) {
    h.read(0, static_cast<ByteOffset>(i) * 16 * KiB, 16 * KiB);
    h.read(0, 8 * MiB + static_cast<ByteOffset>(i) * 16 * KiB, 16 * KiB);
  }
  EXPECT_EQ(h.server.scheduler().stream_count(), 2u);
}

TEST(Server, RandomTrafficNeverDetects) {
  Harness h;
  // Offsets far apart (beyond any region span).
  const ByteOffset offsets[] = {0,       5 * MiB, 1 * MiB, 9 * MiB,
                                3 * MiB, 7 * MiB, 2 * MiB, 11 * MiB};
  for (const auto off : offsets) h.read(0, off, 16 * KiB);
  EXPECT_EQ(h.server.scheduler().stream_count(), 0u);
  EXPECT_EQ(h.server.stats().direct_reads, 8u);
}

}  // namespace
}  // namespace sst::core
