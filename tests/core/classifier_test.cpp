#include "core/classifier.hpp"

#include <gtest/gtest.h>

namespace sst::core {
namespace {

ClassifierParams test_params() {
  ClassifierParams p;
  p.block_bytes = 64 * KiB;
  p.offset_blocks = 32;
  p.detect_threshold = 3;
  p.region_timeout = sec(10);
  return p;
}

TEST(Classifier, NoDetectionBelowThreshold) {
  Classifier c(test_params());
  EXPECT_FALSE(c.record(0, 0, 64 * KiB, usec(1)).has_value());
  EXPECT_FALSE(c.record(0, 64 * KiB, 64 * KiB, usec(2)).has_value());
  EXPECT_EQ(c.stats().streams_detected, 0u);
}

TEST(Classifier, DetectsSequentialRun) {
  Classifier c(test_params());
  (void)c.record(0, 0, 64 * KiB, usec(1));
  (void)c.record(0, 64 * KiB, 64 * KiB, usec(2));
  const auto d = c.record(0, 128 * KiB, 64 * KiB, usec(3));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->device, 0u);
  EXPECT_EQ(d->start, 0u);
  EXPECT_EQ(d->end, 192 * KiB);
  EXPECT_EQ(c.stats().streams_detected, 1u);
}

TEST(Classifier, RegionRetiredAfterDetection) {
  Classifier c(test_params());
  (void)c.record(0, 0, 64 * KiB, 1);
  (void)c.record(0, 64 * KiB, 64 * KiB, 2);
  (void)c.record(0, 128 * KiB, 64 * KiB, 3);
  EXPECT_EQ(c.region_count(), 0u);
}

TEST(Classifier, OutOfOrderWithinRegionStillDetects) {
  // The paper: "ignores out of order requests ... only takes into account
  // proximity in time".
  Classifier c(test_params());
  (void)c.record(0, 128 * KiB, 64 * KiB, 1);
  (void)c.record(0, 0, 64 * KiB, 2);
  const auto d = c.record(0, 64 * KiB, 64 * KiB, 3);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->start, 0u);
  EXPECT_EQ(d->end, 192 * KiB);
}

TEST(Classifier, DuplicateBlockDoesNotCountTwice) {
  Classifier c(test_params());
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(c.record(0, 0, 64 * KiB, static_cast<SimTime>(i)).has_value());
  }
}

TEST(Classifier, LargeRequestSetsMultipleBits) {
  Classifier c(test_params());
  // One request spanning 3 blocks trips a threshold of 3 immediately.
  const auto d = c.record(0, 0, 192 * KiB, 1);
  ASSERT_TRUE(d.has_value());
}

TEST(Classifier, DistinctDevicesIndependent) {
  Classifier c(test_params());
  (void)c.record(0, 0, 64 * KiB, 1);
  (void)c.record(1, 0, 64 * KiB, 2);
  (void)c.record(0, 64 * KiB, 64 * KiB, 3);
  (void)c.record(1, 64 * KiB, 64 * KiB, 4);
  EXPECT_FALSE(c.record(9, 128 * KiB, 64 * KiB, 5).has_value());
  EXPECT_TRUE(c.record(0, 128 * KiB, 64 * KiB, 6).has_value());
  EXPECT_TRUE(c.record(1, 128 * KiB, 64 * KiB, 7).has_value());
}

TEST(Classifier, FarApartAccessesUseSeparateRegions) {
  Classifier c(test_params());
  (void)c.record(0, 0, 64 * KiB, 1);
  (void)c.record(0, 1 * GiB, 64 * KiB, 2);
  EXPECT_EQ(c.region_count(), 2u);
  EXPECT_EQ(c.stats().regions_allocated, 2u);
}

TEST(Classifier, RegionCoversBackwardNeighbourhood) {
  // A region allocated at block B covers [B-offset, B+offset]: an access
  // slightly before the first one lands in the same region.
  Classifier c(test_params());
  (void)c.record(0, 10 * 64 * KiB, 64 * KiB, 1);
  (void)c.record(0, 9 * 64 * KiB, 64 * KiB, 2);
  EXPECT_EQ(c.region_count(), 1u);
  const auto d = c.record(0, 11 * 64 * KiB, 64 * KiB, 3);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->start, 9 * 64 * KiB);
}

TEST(Classifier, HigherThresholdNeedsMoreRequests) {
  ClassifierParams p = test_params();
  p.detect_threshold = 5;
  Classifier c(p);
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(
        c.record(0, static_cast<ByteOffset>(i) * 64 * KiB, 64 * KiB, i).has_value());
  }
  EXPECT_TRUE(c.record(0, 4ULL * 64 * KiB, 64 * KiB, 5).has_value());
}

TEST(Classifier, GarbageCollectsIdleRegions) {
  Classifier c(test_params());
  (void)c.record(0, 0, 64 * KiB, sec(1));
  (void)c.record(0, 1 * GiB, 64 * KiB, sec(1));
  EXPECT_EQ(c.region_count(), 2u);
  // Touch one region so it survives.
  (void)c.record(0, 64 * KiB, 64 * KiB, sec(12));
  EXPECT_EQ(c.collect_garbage(sec(13)), 1u);
  EXPECT_EQ(c.region_count(), 1u);
}

TEST(Classifier, GcAtTimeZeroKeepsEverything) {
  Classifier c(test_params());
  (void)c.record(0, 0, 64 * KiB, 0);
  EXPECT_EQ(c.collect_garbage(sec(5)), 0u);
}

TEST(Classifier, BitmapMemoryAccounted) {
  Classifier c(test_params());
  (void)c.record(0, 0, 64 * KiB, 1);
  EXPECT_GT(c.stats().bitmap_bytes, 0u);
  (void)c.record(0, 64 * KiB, 64 * KiB, 2);
  (void)c.record(0, 128 * KiB, 64 * KiB, 3);  // detection retires region
  EXPECT_EQ(c.stats().bitmap_bytes, 0u);
}

TEST(Classifier, RequestTailBeyondBitmapIgnored) {
  // A request that extends past the region's edge sets only covered bits.
  ClassifierParams p = test_params();
  p.offset_blocks = 2;  // tiny region: 5 blocks
  p.detect_threshold = 4;
  Classifier c(p);
  // First access at block 10 -> region [8, 12]. A 64-block request sets
  // bits 10..12 only (3 < 4: no detection).
  EXPECT_FALSE(c.record(0, 10ULL * 64 * KiB, 64ULL * 64 * KiB, 1).has_value());
}

TEST(Classifier, RequestsSeenCounted) {
  Classifier c(test_params());
  (void)c.record(0, 0, 64 * KiB, 1);
  (void)c.record(0, 64 * KiB, 64 * KiB, 2);
  EXPECT_EQ(c.stats().requests_seen, 2u);
}

/// Property: for any block granularity, three sequential touches of
/// distinct blocks always detect.
class ClassifierBlockSize : public ::testing::TestWithParam<Bytes> {};

TEST_P(ClassifierBlockSize, ThreeDistinctBlocksDetect) {
  ClassifierParams p = test_params();
  p.block_bytes = GetParam();
  Classifier c(p);
  (void)c.record(0, 0, p.block_bytes, 1);
  (void)c.record(0, p.block_bytes, p.block_bytes, 2);
  EXPECT_TRUE(c.record(0, 2 * p.block_bytes, p.block_bytes, 3).has_value());
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, ClassifierBlockSize,
                         ::testing::Values(4 * KiB, 16 * KiB, 64 * KiB, 256 * KiB, 1 * MiB));

}  // namespace
}  // namespace sst::core
