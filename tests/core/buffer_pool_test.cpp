#include "core/buffer_pool.hpp"

#include <gtest/gtest.h>

namespace sst::core {
namespace {

TEST(BufferPool, AllocateWithinBudget) {
  BufferPool pool(1 * MiB, false);
  auto buf = pool.allocate(0, 0, 512 * KiB, 0);
  ASSERT_NE(buf, nullptr);
  EXPECT_EQ(pool.committed(), 512 * KiB);
  EXPECT_EQ(pool.available(), 512 * KiB);
  EXPECT_EQ(pool.live_buffers(), 1u);
}

TEST(BufferPool, AllocationFailsOverBudget) {
  BufferPool pool(1 * MiB, false);
  auto a = pool.allocate(0, 0, 768 * KiB, 0);
  ASSERT_NE(a, nullptr);
  auto b = pool.allocate(0, 0, 512 * KiB, 0);
  EXPECT_EQ(b, nullptr);
  EXPECT_EQ(pool.stats().allocation_failures, 1u);
}

TEST(BufferPool, ReleaseReturnsBudget) {
  BufferPool pool(1 * MiB, false);
  {
    auto buf = pool.allocate(0, 0, 1 * MiB, 0);
    ASSERT_NE(buf, nullptr);
    EXPECT_EQ(pool.available(), 0u);
  }
  EXPECT_EQ(pool.committed(), 0u);
  EXPECT_EQ(pool.live_buffers(), 0u);
  EXPECT_NE(pool.allocate(0, 0, 1 * MiB, 0), nullptr);
}

TEST(BufferPool, PeakCommittedTracked) {
  BufferPool pool(2 * MiB, false);
  auto a = pool.allocate(0, 0, 1 * MiB, 0);
  auto b = pool.allocate(0, 0, 1 * MiB, 0);
  a.reset();
  b.reset();
  EXPECT_EQ(pool.stats().peak_committed, 2 * MiB);
}

TEST(BufferPool, MaterializedBufferHasMemory) {
  BufferPool pool(1 * MiB, true);
  auto buf = pool.allocate(0, 4096, 64 * KiB, 0);
  ASSERT_NE(buf, nullptr);
  EXPECT_NE(buf->data(), nullptr);
}

TEST(BufferPool, UnmaterializedBufferHasNoMemory) {
  BufferPool pool(1 * MiB, false);
  auto buf = pool.allocate(0, 4096, 64 * KiB, 0);
  ASSERT_NE(buf, nullptr);
  EXPECT_EQ(buf->data(), nullptr);
}

TEST(IoBuffer, IdentityFields) {
  BufferPool pool(1 * MiB, false);
  auto buf = pool.allocate(3, 8192, 64 * KiB, usec(5));
  EXPECT_EQ(buf->device(), 3u);
  EXPECT_EQ(buf->offset(), 8192u);
  EXPECT_EQ(buf->capacity(), 64 * KiB);
  EXPECT_FALSE(buf->filled());
}

TEST(IoBuffer, FillAndContains) {
  BufferPool pool(1 * MiB, false);
  auto buf = pool.allocate(0, 1000 * KiB, 64 * KiB, 0);
  EXPECT_FALSE(buf->contains(1000 * KiB, 1));  // not filled yet
  buf->mark_filled(64 * KiB, usec(9));
  EXPECT_TRUE(buf->filled());
  EXPECT_EQ(buf->end(), 1064 * KiB);
  EXPECT_TRUE(buf->contains(1000 * KiB, 64 * KiB));
  EXPECT_TRUE(buf->contains(1032 * KiB, 32 * KiB));
  EXPECT_FALSE(buf->contains(1032 * KiB, 64 * KiB));
  EXPECT_FALSE(buf->contains(999 * KiB, KiB));
}

TEST(IoBuffer, ConsumeHighWaterMark) {
  BufferPool pool(1 * MiB, false);
  auto buf = pool.allocate(0, 0, 64 * KiB, 0);
  buf->mark_filled(64 * KiB, 0);
  buf->consume(0, 16 * KiB, usec(1));
  EXPECT_FALSE(buf->fully_consumed());
  EXPECT_EQ(buf->consumed_upto(), 16 * KiB);
  // Out-of-order consume of a later range raises the mark.
  buf->consume(48 * KiB, 16 * KiB, usec(2));
  EXPECT_TRUE(buf->fully_consumed());
}

TEST(IoBuffer, LastTouchUpdatedByConsume) {
  BufferPool pool(1 * MiB, false);
  auto buf = pool.allocate(0, 0, 64 * KiB, usec(1));
  buf->mark_filled(64 * KiB, usec(2));
  buf->consume(0, KiB, usec(7));
  EXPECT_EQ(buf->last_touch(), usec(7));
}

TEST(IoBuffer, PartialFillContainsOnlyValidRange) {
  BufferPool pool(1 * MiB, false);
  auto buf = pool.allocate(0, 0, 64 * KiB, 0);
  buf->mark_filled(32 * KiB, 0);
  EXPECT_TRUE(buf->contains(0, 32 * KiB));
  EXPECT_FALSE(buf->contains(0, 33 * KiB));
}

TEST(BufferPool, AllocationStatsCount) {
  BufferPool pool(10 * MiB, false);
  for (int i = 0; i < 5; ++i) {
    auto b = pool.allocate(0, 0, 1 * MiB, 0);
    ASSERT_NE(b, nullptr);
  }
  EXPECT_EQ(pool.stats().allocations, 5u);
  EXPECT_EQ(pool.stats().releases, 5u);
}

}  // namespace
}  // namespace sst::core
