#include "core/host_cpu.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace sst::core {
namespace {

TEST(HostCpu, CostsScaleWithBuffers) {
  sim::Simulator sim;
  HostOverheadParams p;
  p.issue_base = usec(15);
  p.complete_base = usec(10);
  p.per_buffer = nsec(200);
  HostCpu cpu(sim, p);
  EXPECT_EQ(cpu.issue_cost(0), usec(15));
  EXPECT_EQ(cpu.issue_cost(100), usec(15) + nsec(20000));
  EXPECT_EQ(cpu.complete_cost(50), usec(10) + nsec(10000));
}

TEST(HostCpu, WorkSerializesFifo) {
  sim::Simulator sim;
  HostCpu cpu(sim, HostOverheadParams{});
  std::vector<std::pair<int, SimTime>> done;
  cpu.execute(usec(100), [&] { done.emplace_back(1, sim.now()); });
  cpu.execute(usec(100), [&] { done.emplace_back(2, sim.now()); });
  sim.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0].first, 1);
  EXPECT_EQ(done[0].second, usec(100));
  EXPECT_EQ(done[1].first, 2);
  EXPECT_EQ(done[1].second, usec(200));
}

TEST(HostCpu, IdleGapsDoNotAccumulate) {
  sim::Simulator sim;
  HostCpu cpu(sim, HostOverheadParams{});
  SimTime t1 = 0;
  cpu.execute(usec(10), [&] { t1 = sim.now(); });
  sim.run();
  sim.run_until(msec(5));
  SimTime t2 = 0;
  cpu.execute(usec(10), [&] { t2 = sim.now(); });
  sim.run();
  EXPECT_EQ(t1, usec(10));
  EXPECT_EQ(t2, msec(5) + usec(10));
}

TEST(HostCpu, BusyTimeAndUtilization) {
  sim::Simulator sim;
  HostCpu cpu(sim, HostOverheadParams{});
  cpu.execute(msec(2), [] {});
  cpu.execute(msec(3), [] {});
  sim.run();
  EXPECT_EQ(cpu.stats().operations, 2u);
  EXPECT_EQ(cpu.stats().busy_time, msec(5));
  EXPECT_DOUBLE_EQ(cpu.stats().utilization(msec(10)), 0.5);
}

TEST(HostCpu, UtilizationZeroElapsed) {
  sim::Simulator sim;
  HostCpu cpu(sim, HostOverheadParams{});
  EXPECT_DOUBLE_EQ(cpu.stats().utilization(0), 0.0);
}

}  // namespace
}  // namespace sst::core
