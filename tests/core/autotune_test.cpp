#include "core/autotune.hpp"

#include <gtest/gtest.h>

namespace sst::core {
namespace {

TEST(Autotune, DefaultsProduceValidParams) {
  const auto t = autotune(NodeDescription{});
  EXPECT_TRUE(t.params.validate().ok());
  EXPECT_FALSE(t.rationale.empty());
}

TEST(Autotune, ReadAheadGrowsWithTargetEfficiency) {
  NodeDescription node;
  const auto lo = autotune(node, 0.70);
  const auto hi = autotune(node, 0.95);
  EXPECT_GT(hi.params.read_ahead, lo.params.read_ahead);
}

TEST(Autotune, OneDispatchSlotPerDisk) {
  NodeDescription node;
  node.num_disks = 8;
  node.host_memory = 2 * GiB;
  const auto t = autotune(node);
  EXPECT_EQ(t.params.dispatch_set_size, 8u);
}

TEST(Autotune, MemoryStarvedNodeShrinksReadAhead) {
  NodeDescription rich;
  rich.host_memory = 1 * GiB;
  NodeDescription poor = rich;
  poor.host_memory = 8 * MiB;
  const auto t_rich = autotune(rich);
  const auto t_poor = autotune(poor);
  EXPECT_LE(t_poor.params.read_ahead, t_rich.params.read_ahead);
  EXPECT_TRUE(t_poor.params.validate().ok());
}

TEST(Autotune, PredictedEfficiencyNearTarget) {
  const auto t = autotune(NodeDescription{}, 0.85);
  // Power-of-two rounding overshoots but never undershoots badly.
  EXPECT_GE(t.predicted_efficiency, 0.80);
  EXPECT_LE(t.predicted_efficiency, 0.99);
}

TEST(Autotune, MemoryBudgetCoversDRN) {
  NodeDescription node;
  node.num_disks = 4;
  const auto t = autotune(node);
  const Bytes need = static_cast<Bytes>(t.params.dispatch_set_size) *
                     t.params.read_ahead * t.params.requests_per_residency;
  EXPECT_GE(t.params.memory_budget, need);
}

TEST(Autotune, SlowerDisksNeedLessReadAhead) {
  NodeDescription fast;
  fast.disk_seq_rate_bps = 100e6;
  NodeDescription slow = fast;
  slow.disk_seq_rate_bps = 20e6;
  EXPECT_LE(autotune(slow).params.read_ahead, autotune(fast).params.read_ahead);
}

TEST(Autotune, ResidencyBoundedAt128) {
  NodeDescription node;
  node.num_disks = 1;
  node.host_memory = 8 * GiB;
  const auto t = autotune(node);
  EXPECT_LE(t.params.requests_per_residency, 128u);
  EXPECT_GE(t.params.requests_per_residency, 1u);
}

TEST(Autotune, ExtremeTargetsClamped) {
  // Must not divide by zero or produce absurd values.
  const auto t = autotune(NodeDescription{}, 1.5);
  EXPECT_TRUE(t.params.validate().ok());
  const auto t2 = autotune(NodeDescription{}, 0.0);
  EXPECT_TRUE(t2.params.validate().ok());
}

}  // namespace
}  // namespace sst::core
