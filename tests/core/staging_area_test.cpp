// StagingArea in isolation: buffer lifecycle (stage/fill/consume/reap),
// timeout reclamation with the parked-request guard, and the incrementally
// maintained buffered-set counter.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "core/staging_area.hpp"
#include "core/stream.hpp"

namespace sst::core {
namespace {

Stream make_stream(StreamId id = 1, std::uint32_t device = 0) {
  Stream s;
  s.id = id;
  s.device = device;
  return s;
}

TEST(StagingArea, StageKeepsBuffersSortedByOffset) {
  StagingArea staging(16 * MiB, /*materialize=*/false);
  Stream s = make_stream();
  ASSERT_NE(staging.stage(s, 0, 64 * KiB, 0), nullptr);
  ASSERT_NE(staging.stage(s, 128 * KiB, 64 * KiB, 0), nullptr);
  // A rewind re-aim can stage behind the tail; it must insert mid-sequence.
  ASSERT_NE(staging.stage(s, 64 * KiB, 64 * KiB, 0), nullptr);
  ASSERT_EQ(s.buffers.size(), 3u);
  EXPECT_EQ(s.buffers[0]->offset(), 0u);
  EXPECT_EQ(s.buffers[1]->offset(), 64 * KiB);
  EXPECT_EQ(s.buffers[2]->offset(), 128 * KiB);
}

TEST(StagingArea, StageFailsPastMemoryBudget) {
  StagingArea staging(128 * KiB, /*materialize=*/false);
  Stream s = make_stream();
  EXPECT_NE(staging.stage(s, 0, 64 * KiB, 0), nullptr);
  EXPECT_NE(staging.stage(s, 64 * KiB, 64 * KiB, 0), nullptr);
  EXPECT_EQ(staging.stage(s, 128 * KiB, 64 * KiB, 0), nullptr);
  EXPECT_EQ(s.buffers.size(), 2u);
  // Releasing staged data frees budget again.
  staging.release_all(s);
  EXPECT_NE(staging.stage(s, 128 * KiB, 64 * KiB, 0), nullptr);
}

TEST(StagingArea, CoversRequiresContiguousFilledData) {
  StagingArea staging(16 * MiB, /*materialize=*/false);
  Stream s = make_stream();
  ASSERT_NE(staging.stage(s, 0, 64 * KiB, 0), nullptr);
  ASSERT_NE(staging.stage(s, 64 * KiB, 64 * KiB, 0), nullptr);
  // Unfilled extents cover for allocation purposes but not for serving.
  EXPECT_TRUE(StagingArea::covers(s.buffers, 0, 128 * KiB, /*filled_only=*/false));
  EXPECT_FALSE(StagingArea::covers(s.buffers, 0, 128 * KiB, /*filled_only=*/true));
  staging.mark_filled(s, 0, 1);
  EXPECT_FALSE(StagingArea::covers(s.buffers, 0, 128 * KiB, /*filled_only=*/true));
  staging.mark_filled(s, 64 * KiB, 2);
  EXPECT_TRUE(StagingArea::covers(s.buffers, 0, 128 * KiB, /*filled_only=*/true));
  // A range with a gap is never covered.
  EXPECT_FALSE(StagingArea::covers(s.buffers, 64 * KiB, 128 * KiB, /*filled_only=*/true));
}

TEST(StagingArea, ConsumeThenReapReleasesFullyServedBuffers) {
  StagingArea staging(16 * MiB, /*materialize=*/false);
  Stream s = make_stream();
  ASSERT_NE(staging.stage(s, 0, 64 * KiB, 0), nullptr);
  staging.mark_filled(s, 0, 1);
  staging.consume(s, 0, 32 * KiB, nullptr, 2);
  staging.reap(s);
  ASSERT_EQ(s.buffers.size(), 1u);  // half-consumed: survives
  staging.consume(s, 32 * KiB, 32 * KiB, nullptr, 3);
  staging.reap(s);
  EXPECT_TRUE(s.buffers.empty());
  EXPECT_EQ(staging.pool().committed(), 0u);
}

TEST(StagingArea, ConsumeCopiesAcrossBufferBoundary) {
  StagingArea staging(16 * MiB, /*materialize=*/true);
  Stream s = make_stream();
  IoBuffer* a = staging.stage(s, 0, 4 * KiB, 0);
  IoBuffer* b = staging.stage(s, 4 * KiB, 4 * KiB, 0);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  for (Bytes i = 0; i < 4 * KiB; ++i) {
    a->data()[i] = std::byte{0xAA};
    b->data()[i] = std::byte{0xBB};
  }
  staging.mark_filled(s, 0, 1);
  staging.mark_filled(s, 4 * KiB, 1);
  std::vector<std::byte> out(4 * KiB);
  staging.consume(s, 2 * KiB, 4 * KiB, out.data(), 2);
  EXPECT_EQ(out[0], std::byte{0xAA});
  EXPECT_EQ(out[2 * KiB - 1], std::byte{0xAA});
  EXPECT_EQ(out[2 * KiB], std::byte{0xBB});
  EXPECT_EQ(out[4 * KiB - 1], std::byte{0xBB});
}

TEST(StagingArea, ReclaimExpiredTakesIdleFilledBuffersOnly) {
  StagingArea staging(16 * MiB, /*materialize=*/false);
  Stream s = make_stream();
  ASSERT_NE(staging.stage(s, 0, 64 * KiB, 0), nullptr);          // stale
  ASSERT_NE(staging.stage(s, 64 * KiB, 64 * KiB, 0), nullptr);   // fresh
  ASSERT_NE(staging.stage(s, 128 * KiB, 64 * KiB, 0), nullptr);  // in flight
  staging.mark_filled(s, 0, /*now=*/10);
  staging.mark_filled(s, 64 * KiB, /*now=*/100);
  const auto result = staging.reclaim_expired(s, /*horizon=*/50);
  EXPECT_EQ(result.buffers_reclaimed, 1u);
  EXPECT_EQ(result.bytes_wasted, 64 * KiB);
  ASSERT_EQ(s.buffers.size(), 2u);
  EXPECT_EQ(s.buffers[0]->offset(), 64 * KiB);  // fresh survived
  EXPECT_EQ(s.buffers[1]->offset(), 128 * KiB);  // unfilled survived
}

TEST(StagingArea, ReclaimSparesBuffersParkedRequestsNeed) {
  StagingArea staging(16 * MiB, /*materialize=*/false);
  Stream s = make_stream();
  ASSERT_NE(staging.stage(s, 0, 64 * KiB, 0), nullptr);
  staging.mark_filled(s, 0, /*now=*/10);
  PendingRequest parked;
  parked.req.offset = 32 * KiB;
  parked.req.length = 64 * KiB;  // overlaps the staged extent, waits for the rest
  s.pending.push_back(parked);
  const auto result = staging.reclaim_expired(s, /*horizon=*/1000);
  EXPECT_EQ(result.buffers_reclaimed, 0u);
  EXPECT_EQ(s.buffers.size(), 1u);
  // Once the request is gone the buffer expires normally.
  s.pending.clear();
  EXPECT_EQ(staging.reclaim_expired(s, /*horizon=*/1000).buffers_reclaimed, 1u);
}

TEST(StagingArea, BufferedCountTracksStateAndBufferTransitions) {
  StagingArea staging(16 * MiB, /*materialize=*/false);
  Stream s = make_stream();
  EXPECT_EQ(staging.buffered_count(), 0u);

  // Gaining staged data while kBuffered joins the buffered set.
  s.state = StreamState::kBuffered;
  bool was = StagingArea::counts_as_buffered(s);
  ASSERT_NE(staging.stage(s, 0, 64 * KiB, 0), nullptr);
  staging.note_buffered(s, was);
  EXPECT_EQ(staging.buffered_count(), 1u);

  // Losing the last buffer leaves it.
  staging.mark_filled(s, 0, 1);
  staging.consume(s, 0, 64 * KiB, nullptr, 2);
  staging.reap(s);
  EXPECT_EQ(staging.buffered_count(), 0u);

  // Retiring a member stream decrements exactly once.
  was = StagingArea::counts_as_buffered(s);
  ASSERT_NE(staging.stage(s, 64 * KiB, 64 * KiB, 0), nullptr);
  staging.note_buffered(s, was);
  EXPECT_EQ(staging.buffered_count(), 1u);
  staging.on_retire(s);
  EXPECT_EQ(staging.buffered_count(), 0u);
}

TEST(StagingArea, ZeroCopyConsumeHandsSlicesByReference) {
  StagingArea staging(16 * MiB, /*materialize=*/true);
  Stream s = make_stream();
  IoBuffer* a = staging.stage(s, 0, 4 * KiB, 0);
  IoBuffer* b = staging.stage(s, 4 * KiB, 4 * KiB, 0);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  for (Bytes i = 0; i < 4 * KiB; ++i) {
    a->data()[i] = std::byte{0xAA};
    b->data()[i] = std::byte{0xBB};
  }
  staging.mark_filled(s, 0, 1);
  staging.mark_filled(s, 4 * KiB, 1);

  // A straddling request with no destination: two slices by reference.
  std::vector<StagedSlice> slices;
  staging.consume(s, 2 * KiB, 4 * KiB, nullptr, 2,
                  [&slices](StagedSlice slice) { slices.push_back(std::move(slice)); });
  ASSERT_EQ(slices.size(), 2u);
  EXPECT_EQ(slices[0].offset, 2 * KiB);
  EXPECT_EQ(slices[0].length, 2 * KiB);
  EXPECT_EQ(slices[0].data[0], std::byte{0xAA});
  EXPECT_EQ(slices[1].offset, 4 * KiB);
  EXPECT_EQ(slices[1].length, 2 * KiB);
  EXPECT_EQ(slices[1].data[0], std::byte{0xBB});
  EXPECT_EQ(staging.stats().bytes_copied, 0u);
  EXPECT_EQ(staging.stats().zero_copy_hits, 1u);

  // The slices' extent refs keep the memory alive after the buffers die.
  const std::byte* const p0 = slices[0].data;
  const std::byte* const p1 = slices[1].data;
  staging.release_all(s);
  EXPECT_EQ(staging.pool().committed(), 0u);
  EXPECT_EQ(p0[0], std::byte{0xAA});
  EXPECT_EQ(p1[0], std::byte{0xBB});
  EXPECT_EQ(staging.pool().extent_slab().live_extents(), 2u);
  slices.clear();
  EXPECT_EQ(staging.pool().extent_slab().live_extents(), 0u);
}

TEST(StagingArea, CopyPathCountsBytesCopied) {
  StagingArea staging(16 * MiB, /*materialize=*/true);
  Stream s = make_stream();
  ASSERT_NE(staging.stage(s, 0, 64 * KiB, 0), nullptr);
  staging.mark_filled(s, 0, 1);
  std::vector<std::byte> out(16 * KiB);
  staging.consume(s, 0, 16 * KiB, out.data(), 2);
  EXPECT_EQ(staging.stats().bytes_copied, 16 * KiB);
  EXPECT_EQ(staging.stats().zero_copy_hits, 0u);
}

TEST(StagingArea, RecycledExtentsKeepStagingAllocationFree) {
  StagingArea staging(16 * MiB, /*materialize=*/true);
  Stream s = make_stream();
  // Warm one extent through the full stage/consume/reap cycle, then churn:
  // every later cycle must be served by extent recycling.
  for (int round = 0; round < 50; ++round) {
    const ByteOffset off = static_cast<ByteOffset>(round) * 64 * KiB;
    ASSERT_NE(staging.stage(s, off, 64 * KiB, 0), nullptr);
    staging.mark_filled(s, off, 1);
    staging.consume(s, off, 64 * KiB, nullptr, 2);
    staging.reap(s);
  }
  EXPECT_EQ(staging.pool().extent_slab().stats().fresh_allocations, 1u);
  EXPECT_EQ(staging.pool().extent_slab().stats().recycles, 49u);
}

TEST(StagingArea, DropUnfilledRemovesOnlyTheFailedExtent) {
  StagingArea staging(16 * MiB, /*materialize=*/false);
  Stream s = make_stream();
  ASSERT_NE(staging.stage(s, 0, 64 * KiB, 0), nullptr);
  ASSERT_NE(staging.stage(s, 64 * KiB, 64 * KiB, 0), nullptr);
  staging.mark_filled(s, 0, 1);
  staging.drop_unfilled(s, 0);  // filled: must survive
  EXPECT_EQ(s.buffers.size(), 2u);
  staging.drop_unfilled(s, 64 * KiB);  // never filled: dropped
  ASSERT_EQ(s.buffers.size(), 1u);
  EXPECT_EQ(s.buffers[0]->offset(), 0u);
}

}  // namespace
}  // namespace sst::core
