#include "core/admission.hpp"

#include <gtest/gtest.h>

#include "experiment/runner.hpp"
#include "workload/generator.hpp"

namespace sst::core {
namespace {

TEST(EffectiveThroughput, MatchesClosedForm) {
  // 50 MB/s media, 10 ms positioning, 1 MB transfers: xfer ~ 21 ms,
  // efficiency ~ 21/31.
  const double t = effective_throughput_bps(50e6, msec(10), 1 * MiB);
  const double xfer_s = static_cast<double>(1 * MiB) / 50e6;
  EXPECT_NEAR(t, 50e6 * xfer_s / (0.010 + xfer_s), 1.0);
}

TEST(EffectiveThroughput, MonotoneInReadAhead) {
  double prev = 0.0;
  for (Bytes r = 128 * KiB; r <= 16 * MiB; r *= 2) {
    const double t = effective_throughput_bps(50e6, msec(10), r);
    EXPECT_GT(t, prev);
    prev = t;
  }
  EXPECT_LT(prev, 50e6);  // never exceeds the media rate
}

TEST(EffectiveThroughput, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(effective_throughput_bps(50e6, msec(10), 0), 0.0);
  EXPECT_DOUBLE_EQ(effective_throughput_bps(0.0, msec(10), 1 * MiB), 0.0);
}

TEST(AdmissionPlan, DiskBoundScenario) {
  AdmissionRequest req;
  req.node.num_disks = 8;
  req.node.host_memory = 4 * GiB;  // plenty: disk-bound
  req.stream_rate_bps = 500e3;     // 4 Mb/s video
  req.read_ahead = 1 * MiB;
  const auto plan = plan_admission(req);
  EXPECT_EQ(plan.admissible_streams, plan.streams_disk_bound);
  EXPECT_GT(plan.streams_per_disk, 30u);   // ~37 MB/s effective / 0.5 MB/s
  EXPECT_LT(plan.streams_per_disk, 120u);
  EXPECT_FALSE(plan.rationale.empty());
}

TEST(AdmissionPlan, MemoryBoundScenario) {
  AdmissionRequest req;
  req.node.num_disks = 8;
  req.node.host_memory = 64 * MiB;  // starved: memory-bound
  req.stream_rate_bps = 500e3;
  req.read_ahead = 1 * MiB;
  const auto plan = plan_admission(req);
  EXPECT_EQ(plan.streams_memory_bound, 64u);
  EXPECT_EQ(plan.admissible_streams, 64u);
  EXPECT_LT(plan.admissible_streams, plan.streams_disk_bound);
}

TEST(AdmissionPlan, PlannerPicksReadAheadWhenUnset) {
  AdmissionRequest req;
  req.read_ahead = 0;
  const auto plan = plan_admission(req);
  EXPECT_GT(plan.read_ahead, 0u);
  EXPECT_TRUE(plan.scheduler.validate().ok());
}

TEST(AdmissionPlan, SchedulerConfigValid) {
  AdmissionRequest req;
  req.node.num_disks = 4;
  const auto plan = plan_admission(req);
  EXPECT_TRUE(plan.scheduler.validate().ok());
  EXPECT_EQ(plan.scheduler.dispatch_set_size, 4u);
}

TEST(AdmissionPlan, ModelValidatesAgainstSimulator) {
  // The analytic T_eff must predict the simulator's aggregate throughput
  // for a saturating stream population within 25%.
  AdmissionRequest req;
  req.node.num_disks = 1;
  req.node.disk_seq_rate_bps = 47e6;        // mid-zone rate of the model disk
  req.node.avg_position_time = msec(13);
  req.node.host_memory = 256 * MiB;
  req.read_ahead = 2 * MiB;
  const auto plan = plan_admission(req);

  experiment::ExperimentConfig ec;
  ec.topology.node = node::NodeConfig::base();
  ec.warmup = sec(2);
  ec.measure = sec(10);
  core::SchedulerParams params;
  params.read_ahead = 2 * MiB;
  params.memory_budget = 256 * MiB;
  ec.scheduler = params;
  ec.streams = workload::make_uniform_streams(40, 1, ec.topology.node.disk.geometry.capacity,
                                              64 * KiB);
  const auto result = experiment::run_experiment(ec);
  EXPECT_NEAR(result.total_mbps, plan.effective_disk_bps / 1e6,
              0.25 * plan.effective_disk_bps / 1e6);
}

TEST(AdmissionPlan, AdmittedLoadActuallySustains) {
  // Run the planner's own configuration with the admitted CBR population:
  // at least 90% of streams must meet 95% of their bitrate.
  AdmissionRequest req;
  req.node.num_disks = 1;
  req.node.disk_seq_rate_bps = 47e6;
  req.node.avg_position_time = msec(13);
  req.node.host_memory = 512 * MiB;
  req.stream_rate_bps = 1e6;  // 1 MB/s streams
  req.read_ahead = 1 * MiB;
  const auto plan = plan_admission(req);
  ASSERT_GT(plan.admissible_streams, 10u);

  experiment::ExperimentConfig ec;
  ec.topology.node = node::NodeConfig::base();
  ec.warmup = sec(3);
  ec.measure = sec(10);
  ec.scheduler = plan.scheduler;
  ec.streams = workload::make_uniform_streams(plan.admissible_streams, 1,
                                              ec.topology.node.disk.geometry.capacity, 64 * KiB);
  const SimTime period = from_seconds(static_cast<double>(64 * KiB) / req.stream_rate_bps);
  for (auto& s : ec.streams) {
    s.issue_period = period;
    s.outstanding = 8;
  }
  const auto result = experiment::run_experiment(ec);
  std::uint32_t ok = 0;
  for (const double mbps : result.stream_mbps) {
    if (mbps >= 0.95) ++ok;
  }
  EXPECT_GE(ok, plan.admissible_streams * 9 / 10);
}

}  // namespace
}  // namespace sst::core
