#include "core/scheduler.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "blockdev/mem_block_device.hpp"
#include "core/dispatch_policy.hpp"
#include "sim/simulator.hpp"

namespace sst::core {
namespace {

constexpr std::uint64_t kSeed = 99;
constexpr Bytes kDev = 32 * MiB;

SchedulerParams small_params() {
  SchedulerParams p;
  p.dispatch_set_size = 0;
  p.read_ahead = 64 * KiB;
  p.requests_per_residency = 1;
  p.memory_budget = 1 * MiB;
  p.materialize_buffers = true;
  p.buffer_timeout = msec(500);
  p.stream_timeout = sec(2);
  p.gc_period = msec(100);
  return p;
}

/// BlockDevice wrapper that records submissions (for issue-path checks).
class LoggingDevice final : public blockdev::BlockDevice {
 public:
  explicit LoggingDevice(blockdev::BlockDevice& inner) : inner_(inner) {}
  void submit(blockdev::BlockRequest request) override {
    submissions.push_back({request.offset, request.length});
    inner_.submit(std::move(request));
  }
  [[nodiscard]] Bytes capacity() const override { return inner_.capacity(); }
  [[nodiscard]] std::string name() const override { return "log:" + inner_.name(); }

  std::vector<std::pair<ByteOffset, Bytes>> submissions;

 private:
  blockdev::BlockDevice& inner_;
};

struct Harness {
  sim::Simulator sim;
  blockdev::MemBlockDevice mem{sim, kDev, kSeed, usec(200), 200e6};
  LoggingDevice dev{mem};
  StreamScheduler sched;

  explicit Harness(SchedulerParams p = small_params())
      : sched(sim, {&dev}, p) {}

  void run_ms(std::uint64_t ms) { sim.run_until(sim.now() + msec(ms)); }

  ClientRequest make_req(ByteOffset offset, Bytes len, int* completions,
                         std::byte* data = nullptr) {
    ClientRequest req;
    req.device = 0;
    req.offset = offset;
    req.length = len;
    req.data = data;
    req.arrival = sim.now();
    req.on_complete = [completions](SimTime) { ++*completions; };
    return req;
  }
};

TEST(Scheduler, FindStreamMatchesRange) {
  Harness h;
  Stream& s = h.sched.create_stream(0, 1 * MiB, 1 * MiB + 128 * KiB);
  EXPECT_EQ(h.sched.find_stream(0, 1 * MiB), &s);
  EXPECT_EQ(h.sched.find_stream(0, 1 * MiB + 100 * KiB), &s);
  EXPECT_EQ(h.sched.find_stream(0, 0), nullptr);
  // Beyond match_end (prefetch + 2R): no match.
  EXPECT_EQ(h.sched.find_stream(0, 4 * MiB), nullptr);
}

TEST(Scheduler, ParkedRequestServedAfterPrefetch) {
  Harness h;
  Stream& s = h.sched.create_stream(0, 0, 128 * KiB);
  int done = 0;
  h.sched.enqueue(s, h.make_req(128 * KiB, 64 * KiB, &done));
  EXPECT_EQ(done, 0);
  h.run_ms(50);
  EXPECT_EQ(done, 1);
  EXPECT_EQ(h.sched.stats().disk_reads, 1u);
  EXPECT_EQ(h.sched.stats().bytes_served, 64 * KiB);
}

TEST(Scheduler, SecondRequestIsBufferHit) {
  Harness h;
  Stream& s = h.sched.create_stream(0, 0, 0);
  int done = 0;
  h.sched.enqueue(s, h.make_req(0, 32 * KiB, &done));
  h.run_ms(50);
  ASSERT_EQ(done, 1);
  // [0, 64K) is staged; the next 32 KB hits without disk I/O.
  const auto reads_before = h.sched.stats().disk_reads;
  h.sched.enqueue(s, h.make_req(32 * KiB, 32 * KiB, &done));
  h.run_ms(50);
  EXPECT_EQ(done, 2);
  EXPECT_GE(h.sched.stats().buffer_hits, 1u);
  // Consuming the buffer may trigger further prefetch for pending demand,
  // but the hit itself required no new read at enqueue time.
  EXPECT_EQ(h.dev.submissions.size(), reads_before);
}

TEST(Scheduler, ZeroCopyServeDeliversStagedDataByReference) {
  Harness h;
  Stream& s = h.sched.create_stream(0, 0, 0);
  int done = 0;
  std::vector<StagedSlice> slices;
  ClientRequest req = h.make_req(0, 32 * KiB, &done);
  req.on_data = [&slices](StagedSlice slice) { slices.push_back(std::move(slice)); };
  h.sched.enqueue(s, std::move(req));
  h.run_ms(50);
  ASSERT_EQ(done, 1);
  ASSERT_FALSE(slices.empty());
  // The slices cover the request with the device's actual bytes — and no
  // memcpy happened on the serve path.
  Bytes total = 0;
  for (const auto& slice : slices) {
    EXPECT_TRUE(blockdev::check_pattern(kSeed, slice.offset, slice.data, slice.length));
    total += slice.length;
  }
  EXPECT_EQ(total, 32 * KiB);
  EXPECT_EQ(h.sched.staging_stats().bytes_copied, 0u);
  EXPECT_GE(h.sched.staging_stats().zero_copy_hits, 1u);
  // The references outlive the staged buffers themselves.
  ExtentRef held = slices.front().extent;
  const std::byte* const p = slices.front().data;
  slices.clear();
  h.run_ms(2000);  // GC reaps the stream's buffers
  EXPECT_TRUE(blockdev::check_pattern(kSeed, 0, p, 4 * KiB));
  EXPECT_GE(held.use_count(), 1u);
}

TEST(Scheduler, DispatchSetBoundedByD) {
  SchedulerParams p = small_params();
  p.dispatch_set_size = 2;
  p.memory_budget = 10 * MiB;
  Harness h(p);
  int done = 0;
  std::vector<Stream*> streams;
  for (int i = 0; i < 5; ++i) {
    const ByteOffset base = static_cast<ByteOffset>(i) * 4 * MiB;
    Stream& s = h.sched.create_stream(0, base, base);
    streams.push_back(&s);
  }
  for (auto* s : streams) {
    h.sched.enqueue(*s, h.make_req(s->range_start, 64 * KiB, &done));
  }
  EXPECT_LE(h.sched.dispatched_count(), 2u);
  EXPECT_GE(h.sched.candidate_count(), 3u);
  h.run_ms(100);
  EXPECT_EQ(done, 5);
}

TEST(Scheduler, EffectiveDispatchDerivedFromMemory) {
  SchedulerParams p = small_params();
  p.dispatch_set_size = 0;
  p.read_ahead = 256 * KiB;
  p.memory_budget = 512 * KiB;  // two buffers
  EXPECT_EQ(p.effective_dispatch_size(), 2u);
  p.dispatch_set_size = 1;  // explicit D below the memory cap wins
  EXPECT_EQ(p.effective_dispatch_size(), 1u);
}

TEST(Scheduler, ValidateRejectsMemoryBelowDRN) {
  SchedulerParams p = small_params();
  p.dispatch_set_size = 4;
  p.read_ahead = 1 * MiB;
  p.requests_per_residency = 2;
  p.memory_budget = 4 * MiB;  // needs 8 MB
  EXPECT_FALSE(p.validate().ok());
  p.memory_budget = 8 * MiB;
  EXPECT_TRUE(p.validate().ok());
}

TEST(Scheduler, ResidencyRotatesAfterNRequests) {
  SchedulerParams p = small_params();
  p.requests_per_residency = 2;
  p.memory_budget = 2 * MiB;
  Harness h(p);
  Stream& s = h.sched.create_stream(0, 0, 0);
  int done = 0;
  h.sched.enqueue(s, h.make_req(0, 64 * KiB, &done));
  h.run_ms(100);
  // One residency: two 64K reads issued back-to-back, then rotation.
  EXPECT_EQ(s.stats.residencies, 1u);
  EXPECT_EQ(s.stats.disk_reads, 2u);
  EXPECT_GE(h.sched.stats().rotations, 1u);
  EXPECT_EQ(s.state, StreamState::kBuffered);
}

TEST(Scheduler, PoolNeverExceedsBudget) {
  SchedulerParams p = small_params();
  p.memory_budget = 256 * KiB;  // 4 buffers of 64K
  Harness h(p);
  int done = 0;
  for (int i = 0; i < 8; ++i) {
    const ByteOffset base = static_cast<ByteOffset>(i) * 2 * MiB;
    Stream& s = h.sched.create_stream(0, base, base);
    h.sched.enqueue(s, h.make_req(base, 64 * KiB, &done));
  }
  h.run_ms(200);
  EXPECT_EQ(done, 8);
  EXPECT_LE(h.sched.pool().stats().peak_committed, 256 * KiB);
}

TEST(Scheduler, FullyConsumedBuffersFreed) {
  Harness h;
  Stream& s = h.sched.create_stream(0, 0, 0);
  int done = 0;
  h.sched.enqueue(s, h.make_req(0, 64 * KiB, &done));  // == R: whole buffer
  h.run_ms(50);
  EXPECT_EQ(done, 1);
  EXPECT_EQ(h.sched.pool().committed(), 0u);
}

TEST(Scheduler, BufferedSetServesAfterRotation) {
  SchedulerParams p = small_params();
  p.requests_per_residency = 2;
  p.memory_budget = 2 * MiB;
  Harness h(p);
  Stream& s = h.sched.create_stream(0, 0, 0);
  int done = 0;
  h.sched.enqueue(s, h.make_req(0, 32 * KiB, &done));
  h.run_ms(50);
  ASSERT_EQ(s.state, StreamState::kBuffered);
  const auto disk_reads = h.sched.stats().disk_reads;
  // Everything up to 128 KB is staged in the buffered set.
  h.sched.enqueue(s, h.make_req(32 * KiB, 32 * KiB, &done));
  h.sched.enqueue(s, h.make_req(64 * KiB, 64 * KiB, &done));
  h.run_ms(50);
  EXPECT_EQ(done, 3);
  EXPECT_EQ(h.sched.stats().disk_reads, disk_reads);
  EXPECT_GE(h.sched.stats().buffer_hits, 2u);
}

TEST(Scheduler, GcReclaimsUnconsumedStaleBuffers) {
  Harness h;
  Stream& s = h.sched.create_stream(0, 0, 0);
  int done = 0;
  h.sched.enqueue(s, h.make_req(0, 32 * KiB, &done));  // half the buffer
  h.run_ms(50);
  ASSERT_EQ(done, 1);
  EXPECT_GT(h.sched.pool().committed(), 0u);
  h.run_ms(1000);  // buffer_timeout is 500 ms; periodic GC runs
  EXPECT_EQ(h.sched.pool().committed(), 0u);
  EXPECT_GE(h.sched.stats().gc_buffers_reclaimed, 1u);
  EXPECT_EQ(h.sched.stats().gc_bytes_wasted, 32 * KiB);
}

TEST(Scheduler, GcKeepsBuffersNeededByPendingRequests) {
  // A parked request straddling a staged buffer and a not-yet-staged range
  // must pin the staged part: the cursor never revisits reclaimed ranges.
  SchedulerParams p = small_params();
  p.requests_per_residency = 1;
  p.memory_budget = 64 * KiB;  // exactly one buffer: the second can't stage
  Harness h(p);
  Stream& s = h.sched.create_stream(0, 0, 0);
  int done = 0;
  // Request spans [32K, 128K): buffer 1 [0,64K) stages, buffer 2 can't.
  h.sched.enqueue(s, h.make_req(32 * KiB, 96 * KiB, &done));
  h.run_ms(400);
  ASSERT_EQ(done, 0);
  // Buffer 1 is idle past buffer_timeout (500ms) but pinned by the pending
  // request; it must survive GC sweeps.
  h.run_ms(700);
  EXPECT_GT(h.sched.pool().committed(), 0u);
  EXPECT_EQ(h.sched.stats().gc_bytes_wasted, 0u);
}

TEST(Scheduler, StarvedPendingRequestEscalatesToDirectRead) {
  SchedulerParams p = small_params();
  p.requests_per_residency = 1;
  p.memory_budget = 64 * KiB;
  p.pending_timeout = msec(300);
  Harness h(p);
  Stream& s = h.sched.create_stream(0, 0, 0);
  std::vector<std::byte> buf(96 * KiB);
  int done = 0;
  h.sched.enqueue(s, h.make_req(32 * KiB, buf.size(), &done, buf.data()));
  // Memory can never stage the full range; the escalation hatch completes
  // the request directly after pending_timeout.
  h.run_ms(1500);
  EXPECT_EQ(done, 1);
  EXPECT_GE(h.sched.stats().escalated_reads, 1u);
  EXPECT_TRUE(blockdev::check_pattern(kSeed, 32 * KiB, buf.data(), buf.size()));
}

TEST(Scheduler, GcRetiresIdleStreams) {
  Harness h;
  h.sched.create_stream(0, 0, 0);
  EXPECT_EQ(h.sched.stream_count(), 1u);
  h.run_ms(3000);  // stream_timeout is 2 s
  EXPECT_EQ(h.sched.stream_count(), 0u);
  EXPECT_EQ(h.sched.find_stream(0, 0), nullptr);
  EXPECT_EQ(h.sched.stats().gc_streams_retired, 1u);
}

TEST(Scheduler, ActiveStreamSurvivesGc) {
  Harness h;
  Stream& s = h.sched.create_stream(0, 0, 0);
  int done = 0;
  for (int i = 0; i < 30; ++i) {
    h.sched.enqueue(s, h.make_req(static_cast<ByteOffset>(i) * 32 * KiB, 32 * KiB, &done));
    h.run_ms(100);
  }
  EXPECT_EQ(h.sched.stream_count(), 1u);
  EXPECT_EQ(done, 30);
}

TEST(Scheduler, BehindCursorFallsBackToDirectRead) {
  Harness h;
  Stream& s = h.sched.create_stream(0, 0, 1 * MiB);  // cursor at 1 MB
  int done = 0;
  h.sched.enqueue(s, h.make_req(256 * KiB, 64 * KiB, &done));
  h.run_ms(50);
  EXPECT_EQ(done, 1);
  EXPECT_EQ(h.sched.stats().fallback_direct_reads, 1u);
  EXPECT_EQ(h.sched.stats().disk_reads, 0u);  // no read-ahead was triggered
}

TEST(Scheduler, StraddlingRequestNotStranded) {
  Harness h;
  Stream& s = h.sched.create_stream(0, 0, 96 * KiB);
  int done = 0;
  // [64K, 128K) straddles the 96 KB cursor: must complete (directly).
  h.sched.enqueue(s, h.make_req(64 * KiB, 64 * KiB, &done));
  h.run_ms(100);
  EXPECT_EQ(done, 1);
}

TEST(Scheduler, RewindReaimsPrefetchCursor) {
  Harness h;
  Stream& s = h.sched.create_stream(0, 0, 8 * MiB);  // cursor far ahead
  int done = 0;
  // A client looping back to 0: three consecutive sequential reads behind
  // the cursor trigger the rewind.
  for (int i = 0; i < 3; ++i) {
    h.sched.enqueue(s, h.make_req(static_cast<ByteOffset>(i) * 64 * KiB, 64 * KiB, &done));
    h.run_ms(20);
  }
  EXPECT_EQ(s.prefetch_pos, 192 * KiB);  // re-aimed
  // The next request is ahead of the cursor: prefetched normally.
  h.sched.enqueue(s, h.make_req(192 * KiB, 64 * KiB, &done));
  h.run_ms(50);
  EXPECT_EQ(done, 4);
  EXPECT_GE(h.sched.stats().disk_reads, 1u);
}

TEST(Scheduler, DataIntegrityThroughStagedBuffers) {
  Harness h;
  Stream& s = h.sched.create_stream(0, 0, 0);
  std::vector<std::byte> buf(64 * KiB);
  int done = 0;
  for (int i = 0; i < 16; ++i) {
    const ByteOffset off = static_cast<ByteOffset>(i) * 64 * KiB;
    std::fill(buf.begin(), buf.end(), std::byte{0});
    h.sched.enqueue(s, h.make_req(off, buf.size(), &done, buf.data()));
    h.run_ms(100);
    ASSERT_EQ(done, i + 1);
    ByteOffset mismatch = 0;
    EXPECT_TRUE(blockdev::check_pattern(kSeed, off, buf.data(), buf.size(), &mismatch))
        << "request " << i << " first mismatch at " << mismatch;
  }
}

TEST(Scheduler, RequestSpanningTwoBuffersServed) {
  SchedulerParams p = small_params();
  p.requests_per_residency = 2;  // two 64K buffers per residency
  p.memory_budget = 2 * MiB;
  Harness h(p);
  Stream& s = h.sched.create_stream(0, 0, 0);
  std::vector<std::byte> buf(96 * KiB);
  int done = 0;
  // [32K, 128K) needs both buffers [0,64K) and [64K,128K).
  h.sched.enqueue(s, h.make_req(32 * KiB, buf.size(), &done, buf.data()));
  h.run_ms(100);
  ASSERT_EQ(done, 1);
  EXPECT_TRUE(blockdev::check_pattern(kSeed, 32 * KiB, buf.data(), buf.size()));
}

TEST(Scheduler, IssuePathRunsBeforeCompletions) {
  // On a read completion with residency remaining, the next disk read is
  // submitted before the client completion callback runs.
  SchedulerParams p = small_params();
  p.requests_per_residency = 4;
  p.memory_budget = 4 * MiB;
  Harness h(p);
  Stream& s = h.sched.create_stream(0, 0, 0);
  std::size_t submissions_at_completion = 0;
  ClientRequest req;
  req.device = 0;
  req.offset = 0;
  req.length = 32 * KiB;
  req.on_complete = [&](SimTime) { submissions_at_completion = h.dev.submissions.size(); };
  h.sched.enqueue(s, std::move(req));
  h.run_ms(100);
  // By the time the first client completion fired, at least 2 disk reads
  // (the first + the next in residency) had been submitted.
  EXPECT_GE(submissions_at_completion, 2u);
}

TEST(Scheduler, EveryRequestCompletesExactlyOnce) {
  SchedulerParams p = small_params();
  p.memory_budget = 512 * KiB;
  Harness h(p);
  std::map<int, int> completions;
  constexpr int kStreams = 4;
  constexpr int kPerStream = 24;
  std::vector<Stream*> streams;
  for (int i = 0; i < kStreams; ++i) {
    const ByteOffset base = static_cast<ByteOffset>(i) * 8 * MiB;
    streams.push_back(&h.sched.create_stream(0, base, base));
  }
  // Interleave requests across streams with varying arrival times.
  for (int r = 0; r < kPerStream; ++r) {
    for (int i = 0; i < kStreams; ++i) {
      const int id = i * 1000 + r;
      ClientRequest req;
      req.device = 0;
      req.offset = static_cast<ByteOffset>(i) * 8 * MiB +
                   static_cast<ByteOffset>(r) * 32 * KiB;
      req.length = 32 * KiB;
      req.on_complete = [&completions, id](SimTime) { ++completions[id]; };
      h.sched.enqueue(*streams[static_cast<std::size_t>(i)], std::move(req));
    }
    h.run_ms(15);
  }
  h.run_ms(500);
  EXPECT_EQ(completions.size(), static_cast<std::size_t>(kStreams * kPerStream));
  for (const auto& [id, n] : completions) {
    EXPECT_EQ(n, 1) << "request " << id;
  }
}

TEST(Scheduler, AtDeviceEndStopsPrefetching) {
  Harness h;
  const ByteOffset near_end = kDev - 128 * KiB;
  Stream& s = h.sched.create_stream(0, near_end, near_end);
  int done = 0;
  h.sched.enqueue(s, h.make_req(near_end, 64 * KiB, &done));
  h.run_ms(50);
  h.sched.enqueue(s, h.make_req(near_end + 64 * KiB, 64 * KiB, &done));
  h.run_ms(50);
  EXPECT_EQ(done, 2);
  // Cursor clamped at capacity; no runaway reads.
  EXPECT_LE(s.prefetch_pos, kDev);
}

TEST(Scheduler, PumpStallsOnMemoryBounceUnderNonFifoPolicy) {
  // Regression: the pump used to detect a memory bounce by checking whether
  // the bounced stream reappeared at candidates_.front(). With a non-FIFO
  // policy picking from the middle of the queue that heuristic can misread
  // the state; the bounce is now reported by dispatch()'s return value.
  //
  // Memory holds two read-ahead buffers (derived D = 2). Two streams
  // dispatch, partially consume their buffers and rotate out to the
  // buffered set still holding the memory; when a dispatch slot frees, the
  // pump picks one of the remaining candidates, bounces on allocation and
  // must stall until GC reclaims the stale buffers.
  SchedulerParams p = small_params();
  p.dispatch_set_size = 0;       // derive D from M / (R*N) = 2
  p.memory_budget = 128 * KiB;   // two 64 KiB read-ahead buffers
  p.policy = DispatchPolicyKind::kNearestOffset;
  Harness h(p);
  int done = 0;
  std::vector<Stream*> streams;
  for (int i = 0; i < 4; ++i) {
    const ByteOffset base = static_cast<ByteOffset>(i) * 4 * MiB;
    streams.push_back(&h.sched.create_stream(0, base, base));
  }
  // 32 KiB requests: each served stream keeps a half-consumed buffer.
  for (auto* s : streams) {
    h.sched.enqueue(*s, h.make_req(s->range_start, 32 * KiB, &done));
  }
  h.run_ms(100);
  // The first two streams were served and rotated out holding the pool's
  // entire budget; dispatching a third bounced and the pump stalled instead
  // of spinning through the remaining candidates (which would burn
  // residencies without issuing anything).
  EXPECT_EQ(done, 2);
  EXPECT_GE(h.sched.stats().dispatch_stalls, 1u);
  EXPECT_EQ(h.sched.candidate_count(), 2u);
  EXPECT_EQ(h.sched.dispatched_count(), 0u);
  // No livelock or lost streams: GC reclaims the stale buffers (500 ms
  // timeout) and the bounced candidates dispatch and complete.
  h.run_ms(1500);
  EXPECT_EQ(done, 4);
}

TEST(DispatchPolicy, RoundRobinPicksHead) {
  RoundRobinPolicy p;
  Stream a, b, c;
  a.id = 5;
  b.id = 6;
  c.id = 7;
  CandidateList candidates;
  candidates.push_back(a);
  candidates.push_back(b);
  candidates.push_back(c);
  EXPECT_EQ(p.pick(candidates, LastIssueTable{}), &a);
  candidates.clear();
}

TEST(DispatchPolicy, NearestOffsetPicksClosest) {
  NearestOffsetPolicy p;
  Stream a, b, c;
  a.id = 1;
  b.id = 2;
  c.id = 3;
  a.device = b.device = c.device = 0;
  a.prefetch_pos = 10 * MiB;
  b.prefetch_pos = 52 * MiB;
  c.prefetch_pos = 49 * MiB;
  CandidateList candidates;
  candidates.push_back(a);
  candidates.push_back(b);
  candidates.push_back(c);
  LastIssueTable last;
  last.note(0, 50 * MiB);
  EXPECT_EQ(p.pick(candidates, last), &c);  // stream c at 49 MiB
  candidates.clear();
}

TEST(DispatchPolicy, NearestOffsetFallsBackWithoutHistory) {
  NearestOffsetPolicy p;
  Stream a, b;
  a.id = 4;
  b.id = 5;
  CandidateList candidates;
  candidates.push_back(a);
  candidates.push_back(b);
  EXPECT_EQ(p.pick(candidates, LastIssueTable{}), &a);
  candidates.clear();
}

TEST(DispatchPolicy, FactoryCreatesKinds) {
  EXPECT_NE(dynamic_cast<RoundRobinPolicy*>(
                make_policy(DispatchPolicyKind::kRoundRobin).get()),
            nullptr);
  EXPECT_NE(dynamic_cast<NearestOffsetPolicy*>(
                make_policy(DispatchPolicyKind::kNearestOffset).get()),
            nullptr);
}

}  // namespace
}  // namespace sst::core
