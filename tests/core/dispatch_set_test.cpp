// DispatchSet in isolation: slot accounting, candidate-queue discipline
// under the pluggable policy, rotation while streams are being evicted, and
// the per-device last-issue position feeding the proximity policy.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "core/dispatch_policy.hpp"
#include "core/dispatch_set.hpp"
#include "core/stream.hpp"

namespace sst::core {
namespace {

/// Fixed stream table; candidates link through their embedded hooks, so
/// the table just has to keep the Stream objects address-stable.
struct StreamTable {
  std::map<StreamId, Stream> streams;

  Stream& add(StreamId id, std::uint32_t device, ByteOffset prefetch_pos) {
    Stream& s = streams[id];
    s.id = id;
    s.device = device;
    s.prefetch_pos = prefetch_pos;
    return s;
  }

  [[nodiscard]] Stream& at(StreamId id) { return streams.at(id); }
};

TEST(DispatchSet, SlotAccountingBoundsResidencies) {
  DispatchSet ds(make_policy(DispatchPolicyKind::kRoundRobin));
  EXPECT_TRUE(ds.has_free_slot(2));
  ds.begin_residency();
  ds.begin_residency();
  EXPECT_FALSE(ds.has_free_slot(2));
  EXPECT_EQ(ds.dispatched_count(), 2u);
  ds.end_residency();
  EXPECT_TRUE(ds.has_free_slot(2));
  EXPECT_EQ(ds.dispatched_count(), 1u);
}

TEST(DispatchSet, RoundRobinPopsInFifoOrder) {
  StreamTable table;
  table.add(1, 0, 0);
  table.add(2, 0, 0);
  table.add(3, 0, 0);
  DispatchSet ds(make_policy(DispatchPolicyKind::kRoundRobin));
  ds.push_back(table.at(1));
  ds.push_back(table.at(2));
  ds.push_back(table.at(3));
  EXPECT_EQ(ds.pop_next().id, 1u);
  EXPECT_EQ(ds.pop_next().id, 2u);
  EXPECT_EQ(ds.pop_next().id, 3u);
  EXPECT_FALSE(ds.has_candidates());
}

TEST(DispatchSet, MemoryBounceRetriesAtTheHead) {
  StreamTable table;
  table.add(1, 0, 0);
  table.add(2, 0, 0);
  DispatchSet ds(make_policy(DispatchPolicyKind::kRoundRobin));
  ds.push_back(table.at(1));
  Stream& bounced = ds.pop_next();
  ds.push_back(table.at(2));
  ds.push_front(bounced);  // first-issue allocation failure: retry first
  EXPECT_EQ(ds.pop_next().id, 1u);
  EXPECT_EQ(ds.pop_next().id, 2u);
}

TEST(DispatchSet, RotationContinuesWhileCandidatesAreEvicted) {
  StreamTable table;
  for (StreamId id = 1; id <= 4; ++id) table.add(id, 0, 0);
  DispatchSet ds(make_policy(DispatchPolicyKind::kRoundRobin));
  for (StreamId id = 1; id <= 4; ++id) ds.push_back(table.at(id));

  // Stream 1 rotates into the only slot; its device then fails and the
  // facade evicts 2 and 3 mid-rotation.
  EXPECT_EQ(ds.pop_next().id, 1u);
  ds.begin_residency();
  ds.remove(table.at(2));
  ds.remove(table.at(3));
  EXPECT_EQ(ds.candidate_count(), 1u);

  // Rotation proceeds: 1 leaves, 4 (the only survivor) takes the slot.
  ds.end_residency();
  ds.push_back(table.at(1));
  EXPECT_EQ(ds.pop_next().id, 4u);
  ds.begin_residency();
  EXPECT_EQ(ds.dispatched_count(), 1u);
  EXPECT_EQ(ds.candidate_count(), 1u);

  // Removing a stream not in the queue is a no-op, not a corruption.
  ds.remove(table.at(2));
  EXPECT_EQ(ds.candidate_count(), 1u);
}

TEST(DispatchSet, NearestOffsetPicksTheCloseCandidate) {
  StreamTable table;
  table.add(1, 0, 900 * MiB);  // far from the head position
  table.add(2, 0, 10 * MiB);   // near
  DispatchSet ds(make_policy(DispatchPolicyKind::kNearestOffset));
  ds.push_back(table.at(1));
  ds.push_back(table.at(2));
  ds.note_issue(0, 8 * MiB);
  EXPECT_EQ(ds.pop_next().id, 2u);
  EXPECT_EQ(ds.pop_next().id, 1u);
}

TEST(DispatchSet, NearestOffsetAgingPreventsStarvation) {
  StreamTable table;
  table.add(1, 0, 900 * MiB);  // head of queue, always far
  DispatchSet ds(make_policy(DispatchPolicyKind::kNearestOffset));
  ds.note_issue(0, 0);
  ds.push_back(table.at(1));
  // Near streams keep arriving and winning; after kWindow bypasses the
  // aged head must win outright.
  StreamId next_id = 2;
  for (int round = 0; round < 64; ++round) {
    table.add(next_id, 0, 1 * MiB);
    ds.push_back(table.at(next_id));
    ++next_id;
    if (ds.pop_next().id == 1u) {
      SUCCEED();
      return;
    }
  }
  FAIL() << "head-of-queue stream starved for 64 rounds";
}

TEST(DispatchSet, NoteIssueTracksPerDevicePositions) {
  DispatchSet ds(make_policy(DispatchPolicyKind::kRoundRobin));
  ds.note_issue(0, 4 * MiB);
  ds.note_issue(1, 8 * MiB);
  ds.note_issue(0, 6 * MiB);  // later issue overwrites
  const LastIssueTable& pos = ds.last_issue_pos();
  ASSERT_EQ(pos.size(), 2u);
  EXPECT_EQ(pos.at(0), 6 * MiB);
  EXPECT_EQ(pos.at(1), 8 * MiB);
}

TEST(DispatchSet, LastIssueTableReportsUntouchedDevices) {
  LastIssueTable table(4);
  EXPECT_EQ(table.size(), 4u);
  EXPECT_FALSE(table.has(2));
  EXPECT_EQ(table.get(2), LastIssueTable::kNever);
  EXPECT_EQ(table.get(99), LastIssueTable::kNever);  // out of range: no signal
  table.note(2, 1 * MiB);
  EXPECT_TRUE(table.has(2));
  EXPECT_EQ(table.at(2), 1 * MiB);
}

}  // namespace
}  // namespace sst::core
