// Observability subsystem tests: tracer well-formedness and determinism,
// metrics registry export, time-series sampling, and per-point tracing
// under the parallel sweep engine.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "experiment/runner.hpp"
#include "experiment/sweep.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/tracer.hpp"
#include "workload/generator.hpp"

namespace sst {
namespace {

experiment::ExperimentConfig traced_config(std::uint32_t streams, obs::Tracer* tracer) {
  node::NodeConfig node;
  node.num_controllers = 1;
  node.disks_per_controller = 2;
  experiment::ExperimentConfig cfg;
  cfg.topology.node = node;
  cfg.scheduler = core::SchedulerParams{};
  cfg.warmup = sec(1);
  cfg.measure = sec(2);
  cfg.streams = workload::make_uniform_streams(streams, node.total_disks(),
                                               node.disk.geometry.capacity, 64 * KiB);
  cfg.tracer = tracer;
  return cfg;
}

TEST(Tracer, RecordsExperimentLifecycle) {
  obs::Tracer tracer;
  const auto result = experiment::run_experiment(traced_config(8, &tracer));
  ASSERT_GT(result.requests_completed, 0u);
  ASSERT_GT(tracer.event_count(), 0u);

  bool saw_disk_span = false;
  bool saw_request_span = false;
  bool saw_stream_span = false;
  for (const auto& e : tracer.events()) {
    if (e.phase == 'B' && std::string_view(e.cat) == "disk") saw_disk_span = true;
    if (e.phase == 'X' && std::string_view(e.cat) == "request") saw_request_span = true;
    if (e.phase == 'X' && std::string_view(e.cat) == "scheduler") saw_stream_span = true;
  }
  EXPECT_TRUE(saw_disk_span);
  EXPECT_TRUE(saw_request_span);
  EXPECT_TRUE(saw_stream_span);
}

TEST(Tracer, SpansNestAndTimestampsMonotonePerTrack) {
  obs::Tracer tracer;
  (void)experiment::run_experiment(traced_config(8, &tracer));

  // Per track: every 'B' must be closed by a matching 'E' in LIFO order,
  // and B/E timestamps must never go backwards.
  std::map<std::uint32_t, std::vector<const char*>> stacks;
  std::map<std::uint32_t, SimTime> last_ts;
  for (const auto& e : tracer.events()) {
    if (e.phase == 'X') {
      EXPECT_GE(e.dur, 0u);
      continue;
    }
    if (e.phase != 'B' && e.phase != 'E') continue;
    auto [it, inserted] = last_ts.try_emplace(e.tid, e.ts);
    if (!inserted) {
      EXPECT_GE(e.ts, it->second) << "track " << e.tid << " went backwards";
      it->second = e.ts;
    }
    auto& stack = stacks[e.tid];
    if (e.phase == 'B') {
      stack.push_back(e.name);
    } else {
      ASSERT_FALSE(stack.empty()) << "'E' " << e.name << " without open span";
      EXPECT_STREQ(stack.back(), e.name);
      stack.pop_back();
    }
  }
  for (const auto& [tid, stack] : stacks) {
    EXPECT_TRUE(stack.empty()) << "track " << tid << " left a span open";
  }
}

TEST(Tracer, DeterministicAcrossIdenticalRuns) {
  obs::Tracer first;
  obs::Tracer second;
  (void)experiment::run_experiment(traced_config(6, &first));
  (void)experiment::run_experiment(traced_config(6, &second));
  ASSERT_GT(first.event_count(), 0u);
  EXPECT_EQ(first.to_json(), second.to_json());
}

TEST(Tracer, JsonShapeIsChromeTraceFormat) {
  obs::Tracer tracer;
  tracer.name_track(7, "track \"seven\"");
  tracer.complete(7, "cat", "span", usec(1), usec(3), "arg", 2.5);
  tracer.begin(7, "cat", "inner", usec(1));
  tracer.end(7, "cat", "inner", usec(2));
  tracer.instant(7, "cat", "tick", usec(4));

  const std::string json = tracer.to_json();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("track \\\"seven\\\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":2.000"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"arg\":2.5}"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
  // Balanced braces/brackets is a cheap proxy for parseability here; CI
  // additionally runs the emitted file through a real JSON parser.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(Tracer, DisabledExperimentProducesIdenticalResults) {
  obs::Tracer tracer;
  const auto traced = experiment::run_experiment(traced_config(6, &tracer));
  const auto plain = experiment::run_experiment(traced_config(6, nullptr));
  EXPECT_EQ(traced.total_mbps, plain.total_mbps);
  EXPECT_EQ(traced.requests_completed, plain.requests_completed);
  EXPECT_EQ(traced.scheduler_stats.disk_reads, plain.scheduler_stats.disk_reads);
}

TEST(Tracer, ParallelSweepWithPerPointTracing) {
  constexpr std::size_t kPoints = 6;
  std::vector<std::unique_ptr<obs::Tracer>> tracers;
  std::vector<experiment::ExperimentConfig> configs;
  for (std::size_t i = 0; i < kPoints; ++i) {
    tracers.push_back(std::make_unique<obs::Tracer>());
    configs.push_back(
        traced_config(static_cast<std::uint32_t>(4 + 2 * i), tracers.back().get()));
  }

  const auto results = experiment::run_sweep(configs, /*workers=*/4);
  ASSERT_EQ(results.size(), kPoints);

  const std::string dir = ::testing::TempDir();
  for (std::size_t i = 0; i < kPoints; ++i) {
    EXPECT_GT(results[i].requests_completed, 0u) << "point " << i;
    ASSERT_GT(tracers[i]->event_count(), 0u) << "point " << i;
    const std::string path = dir + "sweep_trace_" + std::to_string(i) + ".json";
    ASSERT_TRUE(tracers[i]->write_file(path));
    std::ifstream in(path, std::ios::binary);
    std::ostringstream text;
    text << in.rdbuf();
    EXPECT_EQ(text.str(), tracers[i]->to_json()) << "point " << i;
    std::remove(path.c_str());
  }

  // Identical points traced concurrently stay deterministic: re-run one
  // point serially and compare bytes.
  obs::Tracer again;
  (void)experiment::run_experiment(traced_config(4, &again));
  EXPECT_EQ(again.to_json(), tracers[0]->to_json());
}

TEST(MetricsRegistry, GroupsByPrefixDeterministically) {
  obs::MetricsRegistry reg;
  reg.counter("alpha.count", 3);
  reg.gauge("alpha.rate", 1.5);
  reg.counter("beta.count", 7);
  reg.gauge("top_level", 2.0);
  reg.array("beta.values", {1.0, 2.5});

  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"alpha\": {"), std::string::npos);
  EXPECT_NE(json.find("\"count\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"rate\": 1.5"), std::string::npos);
  EXPECT_NE(json.find("\"beta\": {"), std::string::npos);
  EXPECT_NE(json.find("\"top_level\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"values\": [1,2.5]"), std::string::npos);

  obs::MetricsRegistry same;
  same.counter("alpha.count", 3);
  same.gauge("alpha.rate", 1.5);
  same.counter("beta.count", 7);
  same.gauge("top_level", 2.0);
  same.array("beta.values", {1.0, 2.5});
  EXPECT_EQ(json, same.to_json());
}

TEST(MetricsRegistry, HistogramSnapshotBucketsSumToCount) {
  stats::LatencyHistogram h;
  for (std::uint64_t i = 1; i <= 100; ++i) h.add(msec(i % 10 + 1));
  const auto snap = obs::HistogramSnapshot::from(h);
  EXPECT_EQ(snap.count, h.count());
  std::uint64_t total = 0;
  for (const auto& b : snap.buckets) total += b.count;
  EXPECT_EQ(total, h.count());
  EXPECT_GT(snap.p95_ms, 0.0);
}

TEST(ExperimentResult, ToJsonCarriesAllLayers) {
  experiment::ExperimentConfig cfg = traced_config(6, nullptr);
  const auto result = experiment::run_experiment(cfg);
  const std::string json = result.to_json();
  for (const char* key :
       {"\"throughput\"", "\"total_mbps\"", "\"stream_mbps\"", "\"latency\"",
        "\"p95_ms\"", "\"buckets\"", "\"disk\"", "\"controller\"", "\"scheduler\"",
        "\"server\"", "\"classifier\"", "\"host\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(TimeSeries, SamplerRecordsGaugesDuringExperiment) {
  experiment::ExperimentConfig cfg = traced_config(6, nullptr);
  cfg.sample_interval = msec(100);
  const auto result = experiment::run_experiment(cfg);

  ASSERT_FALSE(result.timeseries.empty());
  // warmup 1s + measure 2s at 100ms = 31 ticks including t=0.
  EXPECT_EQ(result.timeseries.size(), 31u);
  ASSERT_GE(result.timeseries.names.size(), 6u);
  EXPECT_EQ(result.timeseries.names.front(), "mbps");
  for (const auto& row : result.timeseries.rows) {
    EXPECT_EQ(row.size(), result.timeseries.names.size());
  }

  const std::string csv = result.timeseries.to_csv();
  EXPECT_EQ(csv.rfind("time_s,mbps,", 0), 0u);
  EXPECT_EQ(static_cast<std::size_t>(std::count(csv.begin(), csv.end(), '\n')),
            result.timeseries.size() + 1);

  const std::string json = result.timeseries.to_json();
  EXPECT_NE(json.find("\"names\":[\"mbps\""), std::string::npos);
  EXPECT_NE(json.find("\"rows\":[["), std::string::npos);
}

TEST(TimeSeries, DisabledByDefault) {
  const auto result = experiment::run_experiment(traced_config(4, nullptr));
  EXPECT_TRUE(result.timeseries.empty());
}

}  // namespace
}  // namespace sst
