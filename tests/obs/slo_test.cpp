// Tail-latency SLO engine, per-request latency attribution and the flight
// recorder: windowed quantile evaluation, verdict determinism across seeds
// and shard counts, stage-sum reconciliation against the end-to-end
// latency, ring-buffer wraparound/merge semantics, dump-on-breach, and
// cross-shard request-id stitching (every completed request has exactly
// one issue, one admit and one completion in the merged journal).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "experiment/runner.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/slo.hpp"
#include "workload/generator.hpp"

namespace sst {
namespace {

using obs::FlightCode;
using obs::FlightEvent;
using obs::FlightRecorder;
using obs::SloEngine;
using obs::SloReport;
using obs::SloSpec;
using obs::WindowedLatencyRecorder;

// ---------------------------------------------------------------------------
// SloEngine unit tests (constructed windows, no simulation).

TEST(SloEngine, DisabledSpecReportsDisabled) {
  const SloSpec spec;  // objective = 0
  WindowedLatencyRecorder windows(sec(1));
  stats::LatencyHistogram overall;
  const SloReport report = SloEngine::evaluate(spec, windows, overall);
  EXPECT_FALSE(report.enabled);
  EXPECT_TRUE(report.pass);
}

TEST(SloEngine, NoSamplesPasses) {
  SloSpec spec;
  spec.objective = msec(10);
  WindowedLatencyRecorder windows(spec.window);
  stats::LatencyHistogram overall;
  const SloReport report = SloEngine::evaluate(spec, windows, overall);
  EXPECT_TRUE(report.enabled);
  EXPECT_TRUE(report.pass);
  EXPECT_EQ(report.windows_evaluated, 0u);
}

TEST(SloEngine, BreachingWindowFailsWithZeroBurnAllowance) {
  SloSpec spec;
  spec.objective = msec(10);
  spec.quantile = 0.99;
  spec.window = sec(1);
  WindowedLatencyRecorder windows(spec.window);
  stats::LatencyHistogram overall;
  // Window 0: comfortably fast. Window 2: far above the objective.
  for (int i = 0; i < 100; ++i) {
    windows.record(msec(100), msec(1));
    overall.add(msec(1));
  }
  for (int i = 0; i < 100; ++i) {
    windows.record(sec(2) + msec(100), msec(100));
    overall.add(msec(100));
  }
  const SloReport report = SloEngine::evaluate(spec, windows, overall);
  EXPECT_TRUE(report.enabled);
  EXPECT_FALSE(report.pass);
  EXPECT_EQ(report.windows_evaluated, 2u);  // the empty middle window skips
  EXPECT_EQ(report.windows_breached, 1u);
  EXPECT_DOUBLE_EQ(report.burn_rate_observed, 0.5);
  EXPECT_GT(report.worst_window_ms, 10.0);
  EXPECT_EQ(report.samples, 200u);
}

TEST(SloEngine, BurnRateAllowancePermitsBoundedBreaching) {
  SloSpec spec;
  spec.objective = msec(10);
  spec.window = sec(1);
  spec.burn_rate = 0.5;  // half the windows may breach
  WindowedLatencyRecorder windows(spec.window);
  stats::LatencyHistogram overall;
  for (int i = 0; i < 100; ++i) {
    windows.record(msec(100), msec(1));
    windows.record(sec(1) + msec(100), msec(100));
    overall.add(msec(1));
    overall.add(msec(100));
  }
  const SloReport report = SloEngine::evaluate(spec, windows, overall);
  EXPECT_DOUBLE_EQ(report.burn_rate_observed, 0.5);
  EXPECT_TRUE(report.pass);  // observed == allowed
  spec.burn_rate = 0.4;
  EXPECT_FALSE(SloEngine::evaluate(spec, windows, overall).pass);
}

TEST(WindowedLatencyRecorder, MergeAlignsWindowOrdinals) {
  WindowedLatencyRecorder a(sec(1)), b(sec(1));
  a.record(sec(5), msec(1));           // ordinal 5
  b.record(sec(3), msec(2));           // ordinal 3
  b.record(sec(6) + msec(1), msec(3));  // ordinal 6
  a.merge_from(b);
  ASSERT_EQ(a.first_ordinal(), 3u);
  ASSERT_EQ(a.windows().size(), 4u);  // ordinals 3..6
  EXPECT_EQ(a.windows()[0].count(), 1u);
  EXPECT_EQ(a.windows()[1].count(), 0u);
  EXPECT_EQ(a.windows()[2].count(), 1u);
  EXPECT_EQ(a.windows()[3].count(), 1u);
}

// ---------------------------------------------------------------------------
// Flight recorder ring semantics.

TEST(FlightRecorder, RecordsBelowCapacityWithoutDrops) {
  FlightRecorder flight(8);
  for (std::uint64_t i = 0; i < 5; ++i) {
    flight.record(FlightCode::kIssue, i * 10, i + 1);
  }
  EXPECT_EQ(flight.recorded(), 5u);
  EXPECT_EQ(flight.dropped(), 0u);
  const auto events = flight.events();
  ASSERT_EQ(events.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(events[i].ts, i * 10);
    EXPECT_EQ(events[i].rid, i + 1);
  }
}

TEST(FlightRecorder, WraparoundKeepsNewestAndCountsDropped) {
  FlightRecorder flight(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    flight.record(FlightCode::kServe, i, i);
  }
  EXPECT_EQ(flight.recorded(), 10u);
  EXPECT_EQ(flight.dropped(), 6u);
  const auto events = flight.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first among the survivors: timestamps 6,7,8,9.
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].ts, 6 + i);
    EXPECT_EQ(events[i].seq, 6 + i);
  }
}

TEST(FlightRecorder, MergeOrdersByTimeShardSeq) {
  FlightRecorder a(16), b(16);
  b.set_shard(1);
  a.record(FlightCode::kIssue, 100, 1);
  a.record(FlightCode::kAdmit, 300, 1);
  b.record(FlightCode::kIssue, 200, 2);
  b.record(FlightCode::kAdmit, 300, 2);  // ties with a's ts=300: shard 0 first
  a.merge_from(b);
  const auto events = a.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].ts, 100u);
  EXPECT_EQ(events[1].ts, 200u);
  EXPECT_EQ(events[2].shard, 0u);
  EXPECT_EQ(events[3].shard, 1u);
  EXPECT_EQ(a.recorded(), 4u);
}

TEST(FlightRecorder, MergeBeyondCapacityKeepsNewest) {
  FlightRecorder a(4), b(4);
  b.set_shard(1);
  for (std::uint64_t i = 0; i < 4; ++i) a.record(FlightCode::kIssue, i, i);
  for (std::uint64_t i = 0; i < 4; ++i) b.record(FlightCode::kIssue, 100 + i, i);
  a.merge_from(b);
  const auto events = a.events();
  ASSERT_EQ(events.size(), 4u);  // capacity bound holds
  for (const auto& event : events) EXPECT_GE(event.ts, 100u);
  EXPECT_EQ(a.dropped(), 4u);  // the four older events fell out
}

TEST(FlightRecorder, JsonDumpNamesCodesAndCounts) {
  FlightRecorder flight(4);
  flight.record(FlightCode::kIssue, 10, 42, 0, 4096);
  flight.record(FlightCode::kSloBreach, 20, 0, 3, 8);
  const std::string json = flight.to_json();
  EXPECT_NE(json.find("\"capacity\":4"), std::string::npos);
  EXPECT_NE(json.find("\"recorded\":2"), std::string::npos);
  EXPECT_NE(json.find("\"issue\""), std::string::npos);
  EXPECT_NE(json.find("\"slo_breach\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end: the experiment runner with SLO, attribution and the recorder.

experiment::ExperimentConfig obs_config(std::uint32_t controllers,
                                        std::uint32_t streams,
                                        std::uint32_t shards) {
  experiment::ExperimentConfig ec;
  ec.topology.node.num_controllers = controllers;
  ec.topology.node.disks_per_controller = 1;
  core::SchedulerParams params;
  params.dispatch_set_size = streams;
  params.read_ahead = 512 * KiB;
  params.requests_per_residency = 1;
  params.memory_budget = static_cast<Bytes>(streams) * 512 * KiB;
  ec.scheduler = params;
  ec.streams = workload::make_uniform_streams(
      streams, ec.topology.logical_device_count(),
      ec.topology.logical_device_capacity(), 64 * KiB);
  ec.warmup = msec(200);
  ec.measure = msec(800);
  ec.shards = shards;
  return ec;
}

TEST(SloExperiment, GenerousObjectivePassesAndExportsReport) {
  experiment::ExperimentConfig ec = obs_config(2, 4, 1);
  ec.slo.objective = sec(10);  // nothing takes 10 seconds here
  ec.slo.window = msec(100);
  const auto result = experiment::run_experiment(ec);
  EXPECT_TRUE(result.slo_report.enabled);
  EXPECT_TRUE(result.slo_report.pass);
  EXPECT_GT(result.slo_report.windows_evaluated, 0u);
  EXPECT_EQ(result.slo_report.windows_breached, 0u);
  EXPECT_GT(result.slo_report.samples, 0u);
  const std::string json = result.to_json();
  EXPECT_NE(json.find("\"verdict\": \"pass\""), std::string::npos);
}

TEST(SloExperiment, ImpossibleObjectiveFailsAndJournalsBreach) {
  experiment::ExperimentConfig ec = obs_config(2, 4, 1);
  ec.slo.objective = 1;  // 1ns: every window breaches
  ec.slo.window = msec(100);
  obs::FlightRecorder flight(1 << 14);
  ec.flight = &flight;
  const auto result = experiment::run_experiment(ec);
  EXPECT_TRUE(result.slo_report.enabled);
  EXPECT_FALSE(result.slo_report.pass);
  EXPECT_EQ(result.slo_report.windows_breached, result.slo_report.windows_evaluated);
  EXPECT_DOUBLE_EQ(result.slo_report.burn_rate_observed, 1.0);
  EXPECT_NE(result.to_json().find("\"verdict\": \"fail\""), std::string::npos);
  // The breach itself lands in the journal (the CLI dumps on this signal).
  const auto events = flight.events();
  const bool saw_breach =
      std::any_of(events.begin(), events.end(), [](const FlightEvent& event) {
        return event.code == FlightCode::kSloBreach;
      });
  EXPECT_TRUE(saw_breach);
}

TEST(SloExperiment, VerdictAndBreakdownDeterministicAcrossRunsAndShards) {
  for (const std::uint32_t shards : {1u, 2u, 4u}) {
    experiment::ExperimentConfig ec = obs_config(4, 8, shards);
    for (auto& spec : ec.streams) spec.think_jitter = msec(2);
    ec.slo.objective = msec(500);
    ec.slo.quantile = 0.999;
    ec.slo.window = msec(100);
    const std::string first = experiment::run_experiment(ec).to_json();
    const std::string second = experiment::run_experiment(ec).to_json();
    EXPECT_EQ(first, second) << "non-deterministic at shards=" << shards;
    EXPECT_NE(first.find("\"slo\""), std::string::npos);
    EXPECT_NE(first.find("\"latency_breakdown\""), std::string::npos);
  }
}

TEST(SloExperiment, StageSumsReconcileWithEndToEndLatency) {
  for (const std::uint32_t shards : {1u, 2u}) {
    experiment::ExperimentConfig ec = obs_config(2, 4, shards);
    ec.attribution = true;
    const auto result = experiment::run_experiment(ec);
    ASSERT_TRUE(result.breakdown.enabled);
    EXPECT_GT(result.breakdown.attributed, 0u);
    // The four stages partition each request's response time exactly, so
    // their sums must reconcile with the clients' summed latency up to
    // floating-point accumulation order.
    const double stage_sum = result.breakdown.stage_sum_ms();
    const double e2e_sum = result.latency.total_ms();
    EXPECT_NEAR(stage_sum, e2e_sum, 1e-6 * std::max(1.0, e2e_sum))
        << "shards=" << shards;
    // Attribution covers every completed measured request.
    EXPECT_EQ(result.breakdown.attributed, result.latency.count());
    // Device-level views picked up traffic too.
    EXPECT_GT(result.breakdown.disk_service.count(), 0u);
  }
}

TEST(SloExperiment, ServerlessRunsFoldWholeLatencyIntoQueueStage) {
  // Raw-device runs (no scheduler/server) never stamp admit/serve/done:
  // the fold must still partition the response time instead of
  // underflowing on the zero stamps.
  for (const std::uint32_t shards : {1u, 2u}) {
    experiment::ExperimentConfig ec = obs_config(2, 4, shards);
    ec.scheduler.reset();
    ec.attribution = true;
    const auto result = experiment::run_experiment(ec);
    ASSERT_TRUE(result.breakdown.enabled);
    ASSERT_GT(result.breakdown.attributed, 0u);
    const double e2e_sum = result.latency.total_ms();
    EXPECT_NEAR(result.breakdown.stage_sum_ms(), e2e_sum,
                1e-6 * std::max(1.0, e2e_sum))
        << "shards=" << shards;
    EXPECT_DOUBLE_EQ(result.breakdown.ingress.total_ms(), 0.0);
    EXPECT_DOUBLE_EQ(result.breakdown.staging.total_ms(), 0.0);
    EXPECT_GT(result.breakdown.queue.total_ms(), 0.0);
  }
}

TEST(SloExperiment, MergedJournalStitchesRequestIdsAcrossShards) {
  experiment::ExperimentConfig ec = obs_config(4, 8, 4);
  obs::FlightRecorder flight(1 << 16);  // big enough that nothing drops
  ec.flight = &flight;
  const auto result = experiment::run_experiment(ec);
  EXPECT_EQ(result.shard_summary.shards, 4u);
  ASSERT_EQ(flight.dropped(), 0u);

  struct Counts {
    int issue = 0, admit = 0, complete = 0;
  };
  std::map<std::uint64_t, Counts> per_rid;
  for (const auto& event : flight.events()) {
    if (event.rid == 0) continue;
    auto& counts = per_rid[event.rid];
    if (event.code == FlightCode::kIssue) ++counts.issue;
    if (event.code == FlightCode::kAdmit) ++counts.admit;
    if (event.code == FlightCode::kComplete) ++counts.complete;
  }
  ASSERT_GT(per_rid.size(), 0u);
  std::uint64_t completed = 0;
  for (const auto& [rid, counts] : per_rid) {
    // Every request was issued exactly once and admitted at most once; a
    // completed request has the full issue -> admit -> complete chain.
    EXPECT_EQ(counts.issue, 1) << "rid=" << rid;
    EXPECT_LE(counts.admit, 1) << "rid=" << rid;
    EXPECT_LE(counts.complete, 1) << "rid=" << rid;
    if (counts.complete == 1) {
      EXPECT_EQ(counts.admit, 1) << "rid=" << rid;
      ++completed;
    }
  }
  EXPECT_GT(completed, 0u);
  // Requests from distinct clients carry distinct ordinals (rid >> 24).
  std::vector<std::uint64_t> ordinals;
  for (const auto& [rid, counts] : per_rid) ordinals.push_back(rid >> 24);
  std::sort(ordinals.begin(), ordinals.end());
  ordinals.erase(std::unique(ordinals.begin(), ordinals.end()), ordinals.end());
  EXPECT_EQ(ordinals.size(), 8u);  // one per stream, shard-count invariant
}

TEST(SloExperiment, RollingPercentileColumnsAppearPerShard) {
  experiment::ExperimentConfig ec = obs_config(2, 4, 2);
  ec.sample_interval = msec(100);
  const auto result = experiment::run_experiment(ec);
  ASSERT_FALSE(result.timeseries.empty());
  const auto& names = result.timeseries.names;
  const auto has = [&names](const std::string& name) {
    return std::find(names.begin(), names.end(), name) != names.end();
  };
  for (const std::string shard : {"shard0.", "shard1."}) {
    EXPECT_TRUE(has(shard + "mbps"));
    EXPECT_TRUE(has(shard + "p50_ms"));
    EXPECT_TRUE(has(shard + "p99_ms"));
    EXPECT_TRUE(has(shard + "p999_ms"));
    EXPECT_TRUE(has(shard + "dispatch_set"));
    EXPECT_TRUE(has(shard + "streams"));
  }

  // Single-threaded runs expose the same columns without the prefix.
  experiment::ExperimentConfig single = obs_config(2, 4, 1);
  single.sample_interval = msec(100);
  const auto single_result = experiment::run_experiment(single);
  const auto& single_names = single_result.timeseries.names;
  const auto single_has = [&single_names](const std::string& name) {
    return std::find(single_names.begin(), single_names.end(), name) !=
           single_names.end();
  };
  EXPECT_TRUE(single_has("p50_ms"));
  EXPECT_TRUE(single_has("p99_ms"));
  EXPECT_TRUE(single_has("p999_ms"));
}

TEST(SloExperiment, PlainRunExportStaysGated) {
  const experiment::ExperimentConfig ec = obs_config(2, 4, 1);
  const auto result = experiment::run_experiment(ec);
  EXPECT_FALSE(result.slo_report.enabled);
  EXPECT_FALSE(result.breakdown.enabled);
  const std::string json = result.to_json();
  EXPECT_EQ(json.find("\"slo\""), std::string::npos);
  EXPECT_EQ(json.find("latency_breakdown"), std::string::npos);
}

}  // namespace
}  // namespace sst
