// Full-stack integration: the paper's qualitative results must hold on the
// simulated storage node. These tests assert the *shape* claims of the
// evaluation section (improvement factors, insensitivity, response-time
// ordering), not absolute numbers.
#include <gtest/gtest.h>

#include "experiment/runner.hpp"
#include "workload/generator.hpp"

namespace sst {
namespace {

experiment::ExperimentResult raw_run(std::uint32_t streams, Bytes request,
                                     node::NodeConfig cfg = node::NodeConfig::base()) {
  experiment::ExperimentConfig ec;
  ec.topology.node = cfg;
  ec.warmup = sec(2);
  ec.measure = sec(8);
  ec.streams = workload::make_uniform_streams(streams, cfg.total_disks(),
                                              cfg.disk.geometry.capacity, request);
  return experiment::run_experiment(ec);
}

experiment::ExperimentResult sched_run(std::uint32_t streams, Bytes request, Bytes read_ahead,
                                       Bytes memory,
                                       node::NodeConfig cfg = node::NodeConfig::base()) {
  experiment::ExperimentConfig ec;
  ec.topology.node = cfg;
  ec.warmup = sec(2);
  ec.measure = sec(8);
  core::SchedulerParams p;
  p.read_ahead = read_ahead;
  p.memory_budget = memory;
  ec.scheduler = p;
  ec.streams = workload::make_uniform_streams(streams, cfg.total_disks(),
                                              cfg.disk.geometry.capacity, request);
  return experiment::run_experiment(ec);
}

TEST(EndToEnd, SingleStreamNearMediaRate) {
  const auto r = raw_run(1, 64 * KiB);
  // WD800JD-class: ~40-56 MB/s application-level sequential.
  EXPECT_GT(r.total_mbps, 35.0);
  EXPECT_LT(r.total_mbps, 65.0);
}

TEST(EndToEnd, ThroughputCollapsesWithManyStreams) {
  // Paper Figure 1/5: multi-stream throughput collapses by 2-5x.
  const auto one = raw_run(1, 64 * KiB);
  const auto hundred = raw_run(100, 64 * KiB);
  EXPECT_GT(one.total_mbps / hundred.total_mbps, 2.0);
}

TEST(EndToEnd, SchedulerRecovers100StreamsByFactor4) {
  // The headline claim: up to 4x improvement at 100 streams per disk.
  const auto raw = raw_run(100, 64 * KiB);
  const auto sched = sched_run(100, 64 * KiB, 8 * MiB, 800 * MiB);
  EXPECT_GT(sched.total_mbps / raw.total_mbps, 4.0);
}

TEST(EndToEnd, SchedulerInsensitiveToStreamCount) {
  // Paper conclusion: the subsystem becomes insensitive to the number of
  // streams. Between 10 and 100 streams, throughput varies < 20%.
  const auto s10 = sched_run(10, 64 * KiB, 8 * MiB, 80 * MiB);
  const auto s100 = sched_run(100, 64 * KiB, 8 * MiB, 800 * MiB);
  const double ratio = s10.total_mbps / s100.total_mbps;
  EXPECT_GT(ratio, 0.8);
  EXPECT_LT(ratio, 1.25);
}

TEST(EndToEnd, LargerReadAheadHigherThroughput) {
  // Paper Fig. 10: throughput increases monotonically with R.
  const auto r512k = sched_run(30, 64 * KiB, 512 * KiB, 64 * MiB);
  const auto r2m = sched_run(30, 64 * KiB, 2 * MiB, 64 * MiB);
  const auto r8m = sched_run(30, 64 * KiB, 8 * MiB, 240 * MiB);
  EXPECT_GT(r2m.total_mbps, r512k.total_mbps);
  EXPECT_GT(r8m.total_mbps, r2m.total_mbps);
}

TEST(EndToEnd, SmallMemoryLargeReadAheadBeatsLargeMemorySmallReadAhead) {
  // Paper Fig. 11: R = 8M with one staged stream beats R = 256K with all
  // 100 streams staged.
  const auto big_r = sched_run(100, 64 * KiB, 8 * MiB, 16 * MiB);
  const auto small_r = sched_run(100, 64 * KiB, 256 * KiB, 32 * MiB);
  EXPECT_GT(big_r.total_mbps, small_r.total_mbps * 1.5);
}

TEST(EndToEnd, ResponseTimeGrowsWithStreams) {
  // Paper Fig. 15: response time driven primarily by the stream count.
  const auto s1 = sched_run(1, 64 * KiB, 1 * MiB, 64 * MiB);
  const auto s10 = sched_run(10, 64 * KiB, 1 * MiB, 64 * MiB);
  const auto s100 = sched_run(100, 64 * KiB, 1 * MiB, 128 * MiB);
  EXPECT_LT(s1.latency.mean_ms(), s10.latency.mean_ms());
  EXPECT_LT(s10.latency.mean_ms(), s100.latency.mean_ms());
}

TEST(EndToEnd, LargerReadAheadReducesMeanResponseTimeAtFixedStreams) {
  // Paper Fig. 15: at a given stream count, more read-ahead lowers average
  // response time (most requests become staged hits).
  const auto small = sched_run(10, 64 * KiB, 256 * KiB, 64 * MiB);
  const auto large = sched_run(10, 64 * KiB, 8 * MiB, 128 * MiB);
  EXPECT_LT(large.latency.mean_ms(), small.latency.mean_ms());
}

TEST(EndToEnd, EightDiskNodeScales) {
  // Paper Fig. 13: the 8-disk node reaches a large fraction of the
  // controllers' aggregate ceiling with a small dispatch set.
  node::NodeConfig cfg = node::NodeConfig::medium();
  experiment::ExperimentConfig ec;
  ec.topology.node = cfg;
  ec.warmup = sec(2);
  ec.measure = sec(8);
  core::SchedulerParams p;
  p.dispatch_set_size = 8;
  p.read_ahead = 512 * KiB;
  p.requests_per_residency = 128;
  p.memory_budget = 768 * MiB;
  ec.scheduler = p;
  ec.streams = workload::make_uniform_streams(240, 8, cfg.disk.geometry.capacity, 64 * KiB);
  const auto r = experiment::run_experiment(ec);
  // 8 disks x ~45 MB/s ~ 360; require at least 50% of 2x450 MB/s ceiling...
  // conservatively: much better than a single disk.
  EXPECT_GT(r.total_mbps, 150.0);
}

TEST(EndToEnd, SmallDispatchBeatsAllDispatchedOnCpuOverhead) {
  // Paper Fig. 12 vs 13: D = #disks with long residencies outperforms
  // D = S on the multi-disk node.
  node::NodeConfig cfg = node::NodeConfig::medium();
  experiment::ExperimentConfig ec;
  ec.topology.node = cfg;
  ec.warmup = sec(2);
  ec.measure = sec(8);
  ec.streams = workload::make_uniform_streams(800, 8, cfg.disk.geometry.capacity, 64 * KiB);

  core::SchedulerParams all;
  all.dispatch_set_size = 800;
  all.read_ahead = 512 * KiB;
  all.requests_per_residency = 1;
  all.memory_budget = 800ULL * 512 * KiB;
  ec.scheduler = all;
  const auto r_all = experiment::run_experiment(ec);

  core::SchedulerParams small;
  small.dispatch_set_size = 8;
  small.read_ahead = 512 * KiB;
  small.requests_per_residency = 128;
  small.memory_budget = 768 * MiB;
  ec.scheduler = small;
  const auto r_small = experiment::run_experiment(ec);

  EXPECT_GT(r_small.total_mbps, r_all.total_mbps);
  EXPECT_LT(r_small.host_cpu_utilization, r_all.host_cpu_utilization);
}

TEST(EndToEnd, MemoryInvariantHolds) {
  // M >= D*R*N: the pool never commits beyond the budget.
  const auto r = sched_run(50, 64 * KiB, 1 * MiB, 32 * MiB);
  EXPECT_LE(r.peak_buffer_memory, 32 * MiB);
  EXPECT_GT(r.peak_buffer_memory, 0u);
}

TEST(EndToEnd, FairnessAcrossStreams) {
  // Round-robin dispatch: per-stream throughput is balanced (paper §5.5:
  // response time "does not differ significantly among streams").
  const auto r = sched_run(20, 64 * KiB, 1 * MiB, 64 * MiB);
  EXPECT_GT(r.min_stream_mbps, 0.0);
  EXPECT_LT(r.max_stream_mbps / r.min_stream_mbps, 1.6);
}

}  // namespace
}  // namespace sst
