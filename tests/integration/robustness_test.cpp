// Failure-injection and fuzz testing: the scheduler must stay correct when
// the device misbehaves (pathological latencies racing the GC) and under
// randomized request mixes.
#include <gtest/gtest.h>

#include <map>

#include "blockdev/delayed_device.hpp"
#include "blockdev/mem_block_device.hpp"
#include "common/random.hpp"
#include "core/server.hpp"
#include "sim/simulator.hpp"

namespace sst {
namespace {

core::SchedulerParams tight_params() {
  core::SchedulerParams p;
  p.read_ahead = 64 * KiB;
  p.memory_budget = 512 * KiB;
  p.materialize_buffers = true;
  p.buffer_timeout = msec(200);   // aggressive: GC races the workload
  p.pending_timeout = msec(600);  // starved parked requests escalate fast
  p.stream_timeout = msec(800);
  p.gc_period = msec(50);
  p.classifier.block_bytes = 16 * KiB;
  return p;
}

TEST(Robustness, DelayedCompletionsStillServeEverything) {
  sim::Simulator sim;
  blockdev::MemBlockDevice mem(sim, 16 * MiB, 1, usec(200), 200e6);
  // Every 5th request takes an extra 400 ms — far beyond every timeout.
  blockdev::DelayedDevice dev(sim, mem, msec(400), /*every_nth=*/5);
  core::StorageServer server(sim, {&dev}, tight_params());

  int done = 0;
  for (int i = 0; i < 40; ++i) {
    core::ClientRequest req;
    req.device = 0;
    req.offset = static_cast<ByteOffset>(i) * 16 * KiB;
    req.length = 16 * KiB;
    req.on_complete = [&done](SimTime) { ++done; };
    server.submit(std::move(req));
    sim.run_until(sim.now() + msec(30));
  }
  sim.run_until(sim.now() + sec(3));
  EXPECT_EQ(done, 40);
  EXPECT_GT(dev.delayed_count(), 0u);
}

TEST(Robustness, GcRacingInflightReadsIsSafe) {
  // The GC must never reclaim an in-flight buffer; with 400 ms device
  // stalls and a 200 ms buffer timeout, any such bug would crash or lose
  // completions here.
  sim::Simulator sim;
  blockdev::MemBlockDevice mem(sim, 16 * MiB, 1, usec(200), 200e6);
  blockdev::DelayedDevice dev(sim, mem, msec(400), /*every_nth=*/2);
  core::StorageServer server(sim, {&dev}, tight_params());

  int done = 0;
  for (int i = 0; i < 24; ++i) {
    core::ClientRequest req;
    req.device = 0;
    req.offset = static_cast<ByteOffset>(i) * 16 * KiB;
    req.length = 16 * KiB;
    req.on_complete = [&done](SimTime) { ++done; };
    server.submit(std::move(req));
    sim.run_until(sim.now() + msec(120));  // several GC periods per request
  }
  sim.run_until(sim.now() + sec(3));
  EXPECT_EQ(done, 24);
}

TEST(Robustness, FuzzRandomizedMixThroughServer) {
  // Randomized mix of sequential runs, jumps, duplicates, and strides.
  // Invariants: every request completes exactly once, data is correct,
  // nothing leaks (streams bounded by GC), pool stays within budget.
  for (std::uint64_t seed : {1ULL, 42ULL, 31337ULL}) {
    sim::Simulator sim;
    blockdev::MemBlockDevice dev(sim, 64 * MiB, seed, usec(150), 300e6);
    core::StorageServer server(sim, {&dev}, tight_params());
    Rng rng(seed);

    std::map<std::uint64_t, int> completions;
    std::vector<std::vector<std::byte>> buffers;
    buffers.reserve(400);
    ByteOffset cursor = 0;
    std::uint64_t id = 0;
    for (int i = 0; i < 400; ++i) {
      const auto roll = rng.next_below(100);
      if (roll < 70) {
        cursor += 16 * KiB;  // sequential continuation
      } else if (roll < 80) {
        cursor += 16 * KiB + rng.next_below(4) * 16 * KiB;  // small stride
      } else if (roll < 95) {
        cursor = rng.next_below((64 * MiB - 64 * KiB) / KiB) * KiB;  // jump
      }  // else: repeat the same offset (duplicate read)
      cursor = std::min<ByteOffset>(cursor, 64 * MiB - 64 * KiB);
      const Bytes length = (1 + rng.next_below(4)) * 16 * KiB;

      buffers.emplace_back(length);
      core::ClientRequest req;
      req.id = id;
      req.device = 0;
      req.offset = cursor;
      req.length = length;
      req.data = buffers.back().data();
      const std::uint64_t this_id = id++;
      const ByteOffset this_off = cursor;
      req.on_complete = [&, this_id, this_off, length, seed, i](SimTime) {
        ++completions[this_id];
        EXPECT_TRUE(blockdev::check_pattern(seed, this_off, buffers[static_cast<std::size_t>(i)].data(),
                                            length))
            << "seed " << seed << " req " << this_id;
      };
      server.submit(std::move(req));
      if (rng.next_below(4) == 0) {
        sim.run_until(sim.now() + msec(rng.next_in(1, 40)));
      }
    }
    sim.run_until(sim.now() + sec(5));
    ASSERT_EQ(completions.size(), 400u) << "seed " << seed;
    for (const auto& [rid, count] : completions) {
      ASSERT_EQ(count, 1) << "seed " << seed << " request " << rid;
    }
    EXPECT_LE(server.scheduler().pool().stats().peak_committed, 512 * KiB);
    // GC keeps the stream table bounded even under jumpy traffic.
    EXPECT_LT(server.scheduler().stream_count(), 200u);
  }
}

TEST(Robustness, BurstThenSilenceReclaimsEverything) {
  sim::Simulator sim;
  blockdev::MemBlockDevice dev(sim, 64 * MiB, 1, usec(150), 300e6);
  core::StorageServer server(sim, {&dev}, tight_params());
  int done = 0;
  for (int s = 0; s < 8; ++s) {
    for (int i = 0; i < 6; ++i) {
      core::ClientRequest req;
      req.device = 0;
      req.offset = static_cast<ByteOffset>(s) * 8 * MiB +
                   static_cast<ByteOffset>(i) * 16 * KiB;
      req.length = 16 * KiB;
      req.on_complete = [&done](SimTime) { ++done; };
      server.submit(std::move(req));
    }
  }
  sim.run_until(sim.now() + sec(5));  // long silence >> stream_timeout
  EXPECT_EQ(done, 48);
  EXPECT_EQ(server.scheduler().stream_count(), 0u);   // all GC'd
  EXPECT_EQ(server.scheduler().pool().committed(), 0u);
  EXPECT_EQ(server.classifier().region_count(), 0u);
}

}  // namespace
}  // namespace sst
