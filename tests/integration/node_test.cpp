#include "node/storage_node.hpp"

#include <gtest/gtest.h>

#include "experiment/runner.hpp"
#include "sim/simulator.hpp"
#include "workload/generator.hpp"

namespace sst::node {
namespace {

TEST(NodeConfig, Presets) {
  EXPECT_EQ(NodeConfig::base().total_disks(), 1u);
  EXPECT_EQ(NodeConfig::medium().total_disks(), 8u);
  EXPECT_EQ(NodeConfig::large().total_disks(), 64u);
}

TEST(StorageNode, BuildsConfiguredTopology) {
  sim::Simulator sim;
  StorageNode node(sim, NodeConfig::medium());
  EXPECT_EQ(node.controller_count(), 2u);
  EXPECT_EQ(node.device_count(), 8u);
  EXPECT_EQ(node.controller(0).disk_count(), 4u);
  EXPECT_EQ(node.devices().size(), 8u);
}

TEST(StorageNode, DiskOfMapsFlatIndex) {
  sim::Simulator sim;
  StorageNode node(sim, NodeConfig::medium());
  // Device 5 lives on controller 1, channel 1.
  EXPECT_EQ(&node.disk_of(5), &node.controller(1).disk(1));
}

TEST(StorageNode, DeviceSeedsDistinct) {
  sim::Simulator sim;
  NodeConfig cfg = NodeConfig::medium();
  StorageNode node(sim, cfg);
  EXPECT_NE(node.device(0).seed(), node.device(1).seed());
  EXPECT_NE(node.device(0).seed(), node.device(7).seed());
}

TEST(StorageNode, DiskTotalsAggregate) {
  sim::Simulator sim;
  NodeConfig cfg = NodeConfig::medium();
  cfg.disk.geometry.capacity = 2 * GiB;
  StorageNode node(sim, cfg);
  int done = 0;
  for (std::size_t d = 0; d < node.device_count(); ++d) {
    blockdev::BlockRequest req;
    req.offset = 0;
    req.length = 64 * KiB;
    req.on_complete = [&done](SimTime) { ++done; };
    node.device(d).submit(std::move(req));
  }
  sim.run();
  EXPECT_EQ(done, 8);
  const auto totals = node.disk_totals();
  EXPECT_EQ(totals.commands, 8u);
  EXPECT_EQ(totals.bytes_requested, 8 * 64 * KiB);
  node.reset_stats();
  EXPECT_EQ(node.disk_totals().commands, 0u);
}

TEST(StorageNode, MakeServerRuns) {
  sim::Simulator sim;
  NodeConfig cfg;
  cfg.disk.geometry.capacity = 2 * GiB;
  StorageNode node(sim, cfg);
  core::SchedulerParams params;
  params.read_ahead = 512 * KiB;
  params.memory_budget = 16 * MiB;
  auto server = node.make_server(params);
  int done = 0;
  for (int i = 0; i < 5; ++i) {
    core::ClientRequest req;
    req.device = 0;
    req.offset = static_cast<ByteOffset>(i) * 64 * KiB;
    req.length = 64 * KiB;
    req.on_complete = [&done](SimTime) { ++done; };
    server->submit(std::move(req));
    sim.run_until(sim.now() + msec(100));
  }
  EXPECT_EQ(done, 5);
  EXPECT_GE(server->scheduler().stream_count(), 1u);
}

TEST(Runner, RawExperimentProducesThroughput) {
  experiment::ExperimentConfig cfg;
  cfg.topology.node.disk.geometry.capacity = 4 * GiB;
  cfg.warmup = sec(1);
  cfg.measure = sec(4);
  cfg.streams = workload::make_uniform_streams(4, 1, 4 * GiB, 64 * KiB);
  const auto result = experiment::run_experiment(cfg);
  EXPECT_GT(result.total_mbps, 1.0);
  EXPECT_GT(result.requests_completed, 100u);
  EXPECT_GT(result.latency.count(), 0u);
  EXPECT_GE(result.max_stream_mbps, result.min_stream_mbps);
}

TEST(Runner, DeterministicAcrossRuns) {
  experiment::ExperimentConfig cfg;
  cfg.topology.node.disk.geometry.capacity = 4 * GiB;
  cfg.warmup = sec(1);
  cfg.measure = sec(3);
  cfg.streams = workload::make_uniform_streams(8, 1, 4 * GiB, 64 * KiB);
  core::SchedulerParams params;
  params.read_ahead = 1 * MiB;
  params.memory_budget = 16 * MiB;
  cfg.scheduler = params;
  const auto a = experiment::run_experiment(cfg);
  const auto b = experiment::run_experiment(cfg);
  EXPECT_DOUBLE_EQ(a.total_mbps, b.total_mbps);
  EXPECT_EQ(a.requests_completed, b.requests_completed);
  EXPECT_EQ(a.scheduler_stats.disk_reads, b.scheduler_stats.disk_reads);
}

TEST(Runner, SchedulerStatspopulatedOnlyWithServer) {
  experiment::ExperimentConfig cfg;
  cfg.topology.node.disk.geometry.capacity = 4 * GiB;
  cfg.warmup = sec(1);
  cfg.measure = sec(2);
  cfg.streams = workload::make_uniform_streams(2, 1, 4 * GiB, 64 * KiB);
  const auto raw = experiment::run_experiment(cfg);
  EXPECT_EQ(raw.scheduler_stats.streams_created, 0u);
  core::SchedulerParams params;
  params.read_ahead = 1 * MiB;
  params.memory_budget = 8 * MiB;
  cfg.scheduler = params;
  const auto sched = experiment::run_experiment(cfg);
  EXPECT_GE(sched.scheduler_stats.streams_created, 2u);
  EXPECT_GT(sched.server_stats.requests, 0u);
}

}  // namespace
}  // namespace sst::node
