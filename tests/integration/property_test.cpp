// Parameterized property sweeps across configurations: invariants that
// must hold for EVERY (streams, request-size, read-ahead) combination.
#include <gtest/gtest.h>

#include <tuple>

#include "experiment/runner.hpp"
#include "workload/generator.hpp"

namespace sst {
namespace {

struct SweepPoint {
  std::uint32_t streams;
  Bytes request;
  Bytes read_ahead;  // 0 = raw (no scheduler)
};

class PipelineProperty : public ::testing::TestWithParam<SweepPoint> {};

TEST_P(PipelineProperty, ConservationAndSanity) {
  const SweepPoint pt = GetParam();
  experiment::ExperimentConfig ec;
  ec.topology.node.disk.geometry.capacity = 8 * GiB;  // small disk: faster sims
  ec.warmup = sec(1);
  ec.measure = sec(5);
  ec.streams = workload::make_uniform_streams(pt.streams, 1, 8 * GiB, pt.request);
  if (pt.read_ahead > 0) {
    core::SchedulerParams p;
    p.read_ahead = pt.read_ahead;
    p.memory_budget = std::max<Bytes>(32 * MiB, 2 * pt.read_ahead * pt.streams);
    ec.scheduler = p;
  }
  const auto r = experiment::run_experiment(ec);

  // 1. Forward progress: every configuration moves data.
  EXPECT_GT(r.total_mbps, 0.1);
  EXPECT_GT(r.requests_completed, 0u);

  // 2. Conservation: completions times request size equals measured bytes.
  const double measured_bytes = r.total_mbps * 1e6 * 5.0;
  EXPECT_NEAR(measured_bytes,
              static_cast<double>(r.requests_completed) * static_cast<double>(pt.request),
              static_cast<double>(pt.request) * pt.streams * 4.0);

  // 3. Latency histogram counted every completion.
  EXPECT_EQ(r.latency.count(), r.requests_completed);
  EXPECT_GT(r.latency.mean_ms(), 0.0);

  // 4. Physical limits: never faster than the interface, never beyond the
  //    outer-zone media rate plus cache effects.
  EXPECT_LT(r.total_mbps, 150.0);

  // 5. Disk accounting: media traffic at least covers a miss per stream.
  EXPECT_GT(r.disk_totals.bytes_from_media, 0u);

  if (pt.read_ahead > 0) {
    // 6. Memory budget respected.
    EXPECT_LE(r.peak_buffer_memory,
              std::max<Bytes>(32 * MiB, 2 * pt.read_ahead * pt.streams));
    // 7. Streams detected for every client (within a small tolerance for
    //    detection races at region boundaries).
    EXPECT_GE(r.scheduler_stats.streams_created, pt.streams);
    // 8. Served bytes flow through the scheduler.
    EXPECT_GT(r.scheduler_stats.bytes_served, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PipelineProperty,
    ::testing::Values(SweepPoint{1, 64 * KiB, 0}, SweepPoint{10, 64 * KiB, 0},
                      SweepPoint{40, 16 * KiB, 0}, SweepPoint{10, 256 * KiB, 0},
                      SweepPoint{1, 64 * KiB, 1 * MiB}, SweepPoint{10, 64 * KiB, 512 * KiB},
                      SweepPoint{10, 64 * KiB, 2 * MiB}, SweepPoint{40, 16 * KiB, 1 * MiB},
                      SweepPoint{40, 256 * KiB, 4 * MiB}, SweepPoint{25, 128 * KiB, 1 * MiB}),
    [](const ::testing::TestParamInfo<SweepPoint>& info) {
      const auto& p = info.param;
      return "s" + std::to_string(p.streams) + "_req" + std::to_string(p.request / KiB) +
             "k_ra" + std::to_string(p.read_ahead / KiB) + "k";
    });

class DiskSchedulerProperty : public ::testing::TestWithParam<disk::SchedulerKind> {};

TEST_P(DiskSchedulerProperty, AllRequestsCompleteUnderAnyDiskScheduler) {
  experiment::ExperimentConfig ec;
  ec.topology.node.disk.geometry.capacity = 8 * GiB;
  ec.topology.node.disk.scheduler = GetParam();
  ec.warmup = sec(1);
  ec.measure = sec(4);
  ec.streams = workload::make_uniform_streams(16, 1, 8 * GiB, 64 * KiB);
  const auto r = experiment::run_experiment(ec);
  EXPECT_GT(r.requests_completed, 50u);
  EXPECT_EQ(r.latency.count(), r.requests_completed);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, DiskSchedulerProperty,
                         ::testing::Values(disk::SchedulerKind::kFcfs,
                                           disk::SchedulerKind::kElevator,
                                           disk::SchedulerKind::kSstf),
                         [](const ::testing::TestParamInfo<disk::SchedulerKind>& info) {
                           return disk::to_string(info.param);
                         });

class PolicyProperty : public ::testing::TestWithParam<core::DispatchPolicyKind> {};

TEST_P(PolicyProperty, BothPoliciesServeEveryStream) {
  experiment::ExperimentConfig ec;
  ec.topology.node.disk.geometry.capacity = 8 * GiB;
  ec.warmup = sec(1);
  ec.measure = sec(5);
  core::SchedulerParams p;
  p.dispatch_set_size = 4;
  p.read_ahead = 512 * KiB;
  p.requests_per_residency = 2;
  p.memory_budget = 64 * MiB;
  p.policy = GetParam();
  ec.scheduler = p;
  ec.streams = workload::make_uniform_streams(24, 1, 8 * GiB, 64 * KiB);
  const auto r = experiment::run_experiment(ec);
  // No starvation: the slowest stream still made progress.
  EXPECT_GT(r.min_stream_mbps, 0.0);
  EXPECT_GT(r.total_mbps, 5.0);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyProperty,
                         ::testing::Values(core::DispatchPolicyKind::kRoundRobin,
                                           core::DispatchPolicyKind::kNearestOffset),
                         [](const ::testing::TestParamInfo<core::DispatchPolicyKind>&
                                info) {
                           return info.param == core::DispatchPolicyKind::kRoundRobin
                                      ? "roundrobin"
                                      : "nearest";
                         });

}  // namespace
}  // namespace sst
