#include "common/types.hpp"

#include <gtest/gtest.h>

namespace sst {
namespace {

TEST(Time, UnitHelpers) {
  EXPECT_EQ(nsec(5), 5u);
  EXPECT_EQ(usec(5), 5000u);
  EXPECT_EQ(msec(5), 5'000'000u);
  EXPECT_EQ(sec(5), 5'000'000'000u);
}

TEST(Time, FromSecondsRounds) {
  EXPECT_EQ(from_seconds(1.0), sec(1));
  EXPECT_EQ(from_seconds(0.5), msec(500));
  EXPECT_EQ(from_seconds(1e-9), 1u);
}

TEST(Time, ToSecondsRoundTrip) {
  EXPECT_DOUBLE_EQ(to_seconds(sec(3)), 3.0);
  EXPECT_DOUBLE_EQ(to_millis(msec(7)), 7.0);
}

TEST(Sizes, Constants) {
  EXPECT_EQ(KiB, 1024u);
  EXPECT_EQ(MiB, 1024u * 1024u);
  EXPECT_EQ(GiB, 1024u * 1024u * 1024u);
}

TEST(Sizes, BytesToSectorsRoundsUp) {
  EXPECT_EQ(bytes_to_sectors(0), 0u);
  EXPECT_EQ(bytes_to_sectors(1), 1u);
  EXPECT_EQ(bytes_to_sectors(512), 1u);
  EXPECT_EQ(bytes_to_sectors(513), 2u);
  EXPECT_EQ(bytes_to_sectors(64 * KiB), 128u);
}

TEST(Sizes, SectorsToBytes) {
  EXPECT_EQ(sectors_to_bytes(128), 64 * KiB);
}

TEST(Throughput, MbPerSec) {
  // 100 MB in 2 seconds = 50 MB/s (decimal megabytes).
  EXPECT_DOUBLE_EQ(mb_per_sec(100'000'000, sec(2)), 50.0);
}

TEST(Throughput, ZeroElapsedIsZero) {
  EXPECT_DOUBLE_EQ(mb_per_sec(12345, 0), 0.0);
}

TEST(IoOpNames, ToString) {
  EXPECT_STREQ(to_string(IoOp::kRead), "read");
  EXPECT_STREQ(to_string(IoOp::kWrite), "write");
}

}  // namespace
}  // namespace sst
