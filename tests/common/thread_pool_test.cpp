#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace sst {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 200; ++i) {
    pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 200);
}

TEST(ThreadPool, AtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_GE(pool.worker_count(), 1u);
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran = true; });
  pool.wait_idle();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, WaitIdleCoversRunningTasks) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      done.fetch_add(1);
    });
  }
  pool.wait_idle();
  // wait_idle must not return while a task is still executing.
  EXPECT_EQ(done.load(), 8);
}

TEST(ThreadPool, ReusableAfterWaitIdle) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.submit([&ran] { ++ran; });
  pool.wait_idle();
  pool.submit([&ran] { ++ran; });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 2);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&ran] { ran.fetch_add(1); });
    }
  }
  EXPECT_EQ(ran.load(), 50);
}

}  // namespace
}  // namespace sst
