// ExtentSlab: size-class rounding, refcount lifecycle (drop-to-zero
// recycling), allocation-free steady state under churn, and pointer
// stability while references are held.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "common/extent_slab.hpp"

namespace sst {
namespace {

TEST(ExtentSlab, RoundsUpToPowerOfTwoClasses) {
  ExtentSlab slab;
  EXPECT_EQ(slab.allocate(1).capacity(), ExtentSlab::kMinExtent);
  EXPECT_EQ(slab.allocate(4 * KiB).capacity(), 4 * KiB);
  EXPECT_EQ(slab.allocate(4 * KiB + 1).capacity(), 8 * KiB);
  EXPECT_EQ(slab.allocate(512 * KiB).capacity(), 512 * KiB);
  EXPECT_EQ(slab.allocate(700 * KiB).capacity(), 1 * MiB);
}

TEST(ExtentSlab, RefcountSharesAndReleases) {
  ExtentSlab slab;
  ExtentRef a = slab.allocate(8 * KiB);
  EXPECT_EQ(a.use_count(), 1u);
  ExtentRef b = a;  // copy shares
  EXPECT_EQ(a.use_count(), 2u);
  EXPECT_EQ(a.data(), b.data());
  ExtentRef c = std::move(b);  // move does not bump
  EXPECT_EQ(a.use_count(), 2u);
  EXPECT_FALSE(b);  // NOLINT(bugprone-use-after-move)
  c.reset();
  EXPECT_EQ(a.use_count(), 1u);
  EXPECT_EQ(slab.live_extents(), 1u);
  a.reset();
  EXPECT_EQ(slab.live_extents(), 0u);
  EXPECT_EQ(slab.live_bytes(), 0u);
}

TEST(ExtentSlab, DropToZeroRecyclesTheExtent) {
  ExtentSlab slab;
  ExtentRef a = slab.allocate(64 * KiB);
  std::byte* const mem = a.data();
  a.reset();
  // Same class: the recycled extent (same memory) comes back, no new alloc.
  ExtentRef b = slab.allocate(64 * KiB);
  EXPECT_EQ(b.data(), mem);
  EXPECT_EQ(slab.stats().fresh_allocations, 1u);
  EXPECT_EQ(slab.stats().recycles, 1u);
}

TEST(ExtentSlab, HeldReferenceBlocksRecycling) {
  ExtentSlab slab;
  ExtentRef a = slab.allocate(16 * KiB);
  ExtentRef held = a;
  a.reset();
  // One reference survives: a new allocation must not reuse the extent.
  ExtentRef b = slab.allocate(16 * KiB);
  EXPECT_NE(b.data(), held.data());
  EXPECT_EQ(slab.stats().fresh_allocations, 2u);
  EXPECT_EQ(slab.live_extents(), 2u);
}

TEST(ExtentSlab, ChurnIsAllocationFreeAtSteadyState) {
  ExtentSlab slab;
  ExtentRef warm = slab.allocate(128 * KiB);
  warm.reset();
  const std::uint64_t fresh = slab.stats().fresh_allocations;
  for (int i = 0; i < 1000; ++i) {
    ExtentRef e = slab.allocate(128 * KiB);
    ASSERT_NE(e.data(), nullptr);
  }
  EXPECT_EQ(slab.stats().fresh_allocations, fresh);  // all served by recycling
  EXPECT_EQ(slab.stats().recycles, 1000u);
  EXPECT_EQ(slab.live_extents(), 0u);
}

TEST(ExtentSlab, PointersStayStableAcrossGrowth) {
  ExtentSlab slab;
  std::vector<ExtentRef> held;
  std::vector<std::byte*> ptrs;
  for (int i = 0; i < 300; ++i) {
    held.push_back(slab.allocate(4 * KiB));
    held.back().data()[0] = static_cast<std::byte>(i);
    ptrs.push_back(held.back().data());
  }
  // The control-block vector reallocated several times; every data pointer
  // and every written byte must have survived.
  for (int i = 0; i < 300; ++i) {
    EXPECT_EQ(held[static_cast<std::size_t>(i)].data(), ptrs[static_cast<std::size_t>(i)]);
    EXPECT_EQ(ptrs[static_cast<std::size_t>(i)][0], static_cast<std::byte>(i));
  }
  EXPECT_EQ(slab.live_bytes(), 300u * 4 * KiB);
}

TEST(ExtentSlab, AccountingTracksPeakReserved) {
  ExtentSlab slab;
  ExtentRef a = slab.allocate(4 * KiB);
  ExtentRef b = slab.allocate(8 * KiB);
  EXPECT_EQ(slab.stats().reserved_bytes, 12 * KiB);
  EXPECT_EQ(slab.stats().peak_reserved, 12 * KiB);
  a.reset();
  b.reset();
  // Reserved memory is recycled, never returned to the heap.
  EXPECT_EQ(slab.stats().reserved_bytes, 12 * KiB);
  EXPECT_EQ(slab.live_bytes(), 0u);
}

}  // namespace
}  // namespace sst
