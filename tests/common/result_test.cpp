#include "common/result.hpp"

#include <gtest/gtest.h>

#include <string>

namespace sst {
namespace {

Result<int> parse_positive(int v) {
  if (v <= 0) return make_error("not positive");
  return v;
}

TEST(Result, ValueAccess) {
  auto r = parse_positive(5);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(static_cast<bool>(r));
  EXPECT_EQ(r.value(), 5);
}

TEST(Result, ErrorAccess) {
  auto r = parse_positive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().message, "not positive");
}

TEST(Result, ValueOr) {
  EXPECT_EQ(parse_positive(3).value_or(-7), 3);
  EXPECT_EQ(parse_positive(0).value_or(-7), -7);
}

TEST(Result, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(9));
  ASSERT_TRUE(r.ok());
  auto owned = std::move(r).value();
  EXPECT_EQ(*owned, 9);
}

TEST(Result, StringValueNotConfusedWithError) {
  Result<std::string> r(std::string("hello"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), "hello");
}

TEST(Status, DefaultIsSuccess) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_TRUE(Status::success().ok());
}

TEST(Status, ErrorCarriesMessage) {
  Status s = make_error("boom");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().message, "boom");
}

TEST(Status, BoolConversion) {
  EXPECT_TRUE(static_cast<bool>(Status::success()));
  EXPECT_FALSE(static_cast<bool>(Status(make_error("x"))));
}

}  // namespace
}  // namespace sst
