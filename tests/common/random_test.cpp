#include "common/random.hpp"

#include <gtest/gtest.h>

#include <set>

namespace sst {
namespace {

TEST(SplitMix, DeterministicForSeed) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix, DifferentSeedsDiffer) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, DeterministicForSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(123);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Rng, NextBelowZeroIsZero) {
  Rng rng(1);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Rng, NextInInclusiveRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.next_in(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformCoverage) {
  // Every residue class of a small modulus should be hit over many draws.
  Rng rng(2024);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, ExponentialMeanRoughlyCorrect) {
  Rng rng(31337);
  double sum = 0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.next_exponential(5.0);
  const double mean = sum / kN;
  EXPECT_NEAR(mean, 5.0, 0.1);
}

TEST(Rng, ExponentialNonNegative) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.next_exponential(1.0), 0.0);
}

TEST(Rng, BoolProbabilityRoughlyCorrect) {
  Rng rng(77);
  int heads = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) heads += rng.next_bool(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(heads) / kN, 0.25, 0.01);
}

}  // namespace
}  // namespace sst
