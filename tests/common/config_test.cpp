#include "common/config.hpp"

#include <gtest/gtest.h>

namespace sst {
namespace {

TEST(ConfigParse, FromArgsBasic) {
  auto cfg = Config::from_args({"a=1", "b=hello", "c=3.5"});
  ASSERT_TRUE(cfg.ok());
  EXPECT_EQ(cfg.value().get_int("a", 0), 1);
  EXPECT_EQ(cfg.value().get_string("b", ""), "hello");
  EXPECT_DOUBLE_EQ(cfg.value().get_double("c", 0.0), 3.5);
}

TEST(ConfigParse, FromArgsRejectsMissingEquals) {
  EXPECT_FALSE(Config::from_args({"novalue"}).ok());
}

TEST(ConfigParse, FromArgsRejectsEmptyKey) {
  EXPECT_FALSE(Config::from_args({"=5"}).ok());
}

TEST(ConfigParse, LaterValueWins) {
  auto cfg = Config::from_args({"a=1", "a=2"});
  ASSERT_TRUE(cfg.ok());
  EXPECT_EQ(cfg.value().get_int("a", 0), 2);
}

TEST(ConfigParse, FromTextWithCommentsAndBlanks) {
  auto cfg = Config::from_text("# header\n a = 1 \n\nb=two # trailing\n");
  ASSERT_TRUE(cfg.ok());
  EXPECT_EQ(cfg.value().get_int("a", 0), 1);
  EXPECT_EQ(cfg.value().get_string("b", ""), "two");
}

TEST(ConfigParse, FromTextRejectsGarbage) {
  EXPECT_FALSE(Config::from_text("justaword\n").ok());
}

TEST(ConfigGetters, MissingKeyReturnsFallback) {
  Config cfg;
  EXPECT_EQ(cfg.get_int("missing", 42), 42);
  EXPECT_EQ(cfg.get_string("missing", "x"), "x");
  EXPECT_TRUE(cfg.get_bool("missing", true));
  EXPECT_EQ(cfg.get_bytes("missing", 7), 7u);
  EXPECT_EQ(cfg.get_duration("missing", 9), 9u);
}

TEST(ConfigGetters, MalformedIntFallsBack) {
  Config cfg;
  cfg.set("a", "12x");
  EXPECT_EQ(cfg.get_int("a", -1), -1);
}

TEST(ConfigGetters, Contains) {
  Config cfg;
  cfg.set("k", "v");
  EXPECT_TRUE(cfg.contains("k"));
  EXPECT_FALSE(cfg.contains("nope"));
}

TEST(ConfigBytes, PlainNumber) {
  EXPECT_EQ(Config::parse_bytes("4096").value(), 4096u);
}

TEST(ConfigBytes, KiloMegaGiga) {
  EXPECT_EQ(Config::parse_bytes("64K").value(), 64 * KiB);
  EXPECT_EQ(Config::parse_bytes("8M").value(), 8 * MiB);
  EXPECT_EQ(Config::parse_bytes("2G").value(), 2 * GiB);
}

TEST(ConfigBytes, SuffixVariantsAndCase) {
  EXPECT_EQ(Config::parse_bytes("1kb").value(), KiB);
  EXPECT_EQ(Config::parse_bytes("1KiB").value(), KiB);
  EXPECT_EQ(Config::parse_bytes("3mb").value(), 3 * MiB);
}

TEST(ConfigBytes, FractionalValue) {
  EXPECT_EQ(Config::parse_bytes("0.5M").value(), 512 * KiB);
}

TEST(ConfigBytes, RejectsNegative) { EXPECT_FALSE(Config::parse_bytes("-5K").ok()); }

TEST(ConfigBytes, RejectsUnknownSuffix) { EXPECT_FALSE(Config::parse_bytes("5Q").ok()); }

TEST(ConfigBytes, RejectsEmpty) { EXPECT_FALSE(Config::parse_bytes("").ok()); }

TEST(ConfigDuration, Units) {
  EXPECT_EQ(Config::parse_duration("5").value(), 5u);
  EXPECT_EQ(Config::parse_duration("5ns").value(), 5u);
  EXPECT_EQ(Config::parse_duration("3us").value(), usec(3));
  EXPECT_EQ(Config::parse_duration("7ms").value(), msec(7));
  EXPECT_EQ(Config::parse_duration("2s").value(), sec(2));
}

TEST(ConfigDuration, Fractional) {
  EXPECT_EQ(Config::parse_duration("1.5ms").value(), usec(1500));
}

TEST(ConfigDuration, RejectsUnknownSuffix) {
  EXPECT_FALSE(Config::parse_duration("5h").ok());
}

TEST(ConfigBool, Truthy) {
  for (const char* v : {"1", "true", "yes", "on", "TRUE", "Yes"}) {
    EXPECT_TRUE(Config::parse_bool(v).value()) << v;
  }
}

TEST(ConfigBool, Falsy) {
  for (const char* v : {"0", "false", "no", "off", "FALSE"}) {
    EXPECT_FALSE(Config::parse_bool(v).value()) << v;
  }
}

TEST(ConfigBool, RejectsOther) { EXPECT_FALSE(Config::parse_bool("maybe").ok()); }

TEST(ConfigChecked, MissingKeyIsError) {
  Config cfg;
  EXPECT_FALSE(cfg.get_bytes_checked("nope").ok());
  EXPECT_FALSE(cfg.get_duration_checked("nope").ok());
}

TEST(ConfigChecked, PresentKeyParses) {
  Config cfg;
  cfg.set("size", "16M");
  cfg.set("t", "10ms");
  EXPECT_EQ(cfg.get_bytes_checked("size").value(), 16 * MiB);
  EXPECT_EQ(cfg.get_duration_checked("t").value(), msec(10));
}

}  // namespace
}  // namespace sst
