#include "configio/loaders.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

namespace sst::configio {
namespace {

Config make(std::initializer_list<std::pair<const char*, const char*>> kv) {
  Config cfg;
  for (const auto& [k, v] : kv) cfg.set(k, v);
  return cfg;
}

TEST(DiskLoader, DefaultsAreWd800jd) {
  const auto p = load_disk_params(Config{});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value().geometry.capacity, 80 * GiB);
  EXPECT_EQ(p.value().cache.size, 8 * MiB);
  EXPECT_EQ(p.value().cache.num_segments, 32u);
}

TEST(DiskLoader, OverridesApply) {
  const auto p = load_disk_params(make({{"disk.capacity", "160G"},
                                        {"disk.cache.size", "16M"},
                                        {"disk.cache.segments", "64"},
                                        {"disk.scheduler", "elevator"},
                                        {"disk.seek_avg", "12ms"}}));
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value().geometry.capacity, 160 * GiB);
  EXPECT_EQ(p.value().cache.size, 16 * MiB);
  EXPECT_EQ(p.value().cache.num_segments, 64u);
  EXPECT_EQ(p.value().scheduler, disk::SchedulerKind::kElevator);
  EXPECT_EQ(p.value().seek.average, msec(12));
}

TEST(DiskLoader, ReadAheadKeywordAndSize) {
  auto fill = load_disk_params(make({{"disk.cache.read_ahead", "segment"}}));
  ASSERT_TRUE(fill.ok());
  EXPECT_EQ(fill.value().cache.read_ahead, disk::CacheParams::kFillSegment);
  auto sized = load_disk_params(make({{"disk.cache.read_ahead", "128K"}}));
  ASSERT_TRUE(sized.ok());
  EXPECT_EQ(sized.value().cache.read_ahead, 128 * KiB);
  auto none = load_disk_params(make({{"disk.cache.read_ahead", "0"}}));
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(none.value().cache.read_ahead, 0u);
}

TEST(DiskLoader, RejectsBadScheduler) {
  EXPECT_FALSE(load_disk_params(make({{"disk.scheduler", "cfq"}})).ok());
}

TEST(DiskLoader, RejectsInvertedSeekCurve) {
  EXPECT_FALSE(
      load_disk_params(make({{"disk.seek_single", "20ms"}, {"disk.seek_avg", "5ms"}})).ok());
}

TEST(DiskLoader, RejectsInvertedZones) {
  EXPECT_FALSE(
      load_disk_params(make({{"disk.outer_spt", "100"}, {"disk.inner_spt", "200"}})).ok());
}

TEST(CtrlLoader, Defaults) {
  const auto p = load_controller_params(Config{});
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(p.value().transfer_rate_bps, 450e6);
}

TEST(CtrlLoader, Overrides) {
  const auto p = load_controller_params(
      make({{"ctrl.cache", "128M"}, {"ctrl.prefetch", "1M"}, {"ctrl.rate_mbps", "300"}}));
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value().cache_size, 128 * MiB);
  EXPECT_EQ(p.value().prefetch, 1 * MiB);
  EXPECT_DOUBLE_EQ(p.value().transfer_rate_bps, 300e6);
}

TEST(SchedLoader, PaperParameterization) {
  const auto p = load_scheduler_params(make({{"sched.dispatch", "100"},
                                             {"sched.read_ahead", "8M"},
                                             {"sched.residency", "1"},
                                             {"sched.memory", "800M"}}));
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value().dispatch_set_size, 100u);
  EXPECT_EQ(p.value().read_ahead, 8 * MiB);
  EXPECT_EQ(p.value().memory_budget, 800 * MiB);
}

TEST(SchedLoader, RejectsMemoryBelowDRN) {
  EXPECT_FALSE(load_scheduler_params(make({{"sched.dispatch", "100"},
                                           {"sched.read_ahead", "8M"},
                                           {"sched.memory", "100M"}}))
                   .ok());
}

TEST(SchedLoader, PolicyNames) {
  auto rr = load_scheduler_params(make({{"sched.policy", "round-robin"}}));
  ASSERT_TRUE(rr.ok());
  EXPECT_EQ(rr.value().policy, core::DispatchPolicyKind::kRoundRobin);
  auto near = load_scheduler_params(make({{"sched.policy", "nearest-offset"}}));
  ASSERT_TRUE(near.ok());
  EXPECT_EQ(near.value().policy, core::DispatchPolicyKind::kNearestOffset);
  EXPECT_FALSE(load_scheduler_params(make({{"sched.policy", "lifo"}})).ok());
}

TEST(NodeLoader, TopologyAndNestedParams) {
  const auto n = load_node_config(make({{"node.controllers", "2"},
                                        {"node.disks_per_controller", "4"},
                                        {"disk.cache.size", "4M"}}));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value().total_disks(), 8u);
  EXPECT_EQ(n.value().disk.cache.size, 4 * MiB);
}

TEST(NodeLoader, RejectsEmptyTopology) {
  EXPECT_FALSE(load_node_config(make({{"node.controllers", "0"}})).ok());
}

TEST(ExperimentLoader, RawWhenNoSchedKeys) {
  const auto e = load_experiment(make({{"workload.streams", "4"}}));
  ASSERT_TRUE(e.ok());
  EXPECT_FALSE(e.value().scheduler.has_value());
  EXPECT_EQ(e.value().streams.size(), 4u);
}

TEST(ExperimentLoader, SchedulerImpliedBySchedKeys) {
  const auto e = load_experiment(make({{"sched.read_ahead", "1M"}}));
  ASSERT_TRUE(e.ok());
  ASSERT_TRUE(e.value().scheduler.has_value());
  EXPECT_EQ(e.value().scheduler->read_ahead, 1 * MiB);
}

TEST(ExperimentLoader, SchedulerDisabledExplicitly) {
  const auto e =
      load_experiment(make({{"sched.read_ahead", "1M"}, {"sched.enable", "false"}}));
  ASSERT_TRUE(e.ok());
  EXPECT_FALSE(e.value().scheduler.has_value());
}

TEST(ExperimentLoader, WorkloadShapeApplied) {
  const auto e = load_experiment(make({{"workload.streams", "6"},
                                       {"workload.request", "128K"},
                                       {"workload.outstanding", "4"},
                                       {"workload.think", "2ms"},
                                       {"run.measure", "5s"}}));
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e.value().streams.size(), 6u);
  for (const auto& s : e.value().streams) {
    EXPECT_EQ(s.request_size, 128 * KiB);
    EXPECT_EQ(s.outstanding, 4u);
    EXPECT_EQ(s.think_time, msec(2));
  }
  EXPECT_EQ(e.value().measure, sec(5));
}

TEST(ExperimentLoader, RejectsBadWorkload) {
  EXPECT_FALSE(load_experiment(make({{"workload.streams", "0"}})).ok());
  EXPECT_FALSE(load_experiment(make({{"workload.request", "1000"}})).ok());  // unaligned
}

TEST(ExperimentLoader, BackendDefaultsToSim) {
  const auto e = load_experiment(make({{"workload.streams", "2"}}));
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e.value().backend.kind, experiment::BackendConfig::Kind::kSim);
  EXPECT_TRUE(e.value().backend.path.empty());
  EXPECT_EQ(e.value().backend.queue_depth, 64u);
  EXPECT_TRUE(e.value().backend.direct);
  EXPECT_EQ(e.value().backend.reactors, 1u);
}

TEST(ExperimentLoader, BackendKeysRoundTrip) {
  const auto e = load_experiment(make({{"workload.streams", "2"},
                                       {"backend.kind", "real"},
                                       {"backend.path", "/dev/shm/backing.img"},
                                       {"backend.queue_depth", "128"},
                                       {"backend.direct", "false"},
                                       {"backend.reactors", "2"}}));
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e.value().backend.kind, experiment::BackendConfig::Kind::kReal);
  EXPECT_EQ(e.value().backend.path, "/dev/shm/backing.img");
  EXPECT_EQ(e.value().backend.queue_depth, 128u);
  EXPECT_FALSE(e.value().backend.direct);
  EXPECT_EQ(e.value().backend.reactors, 2u);
}

TEST(ExperimentLoader, BackendSimIgnoresPath) {
  // An explicit sim backend with a stray path is fine: the path is unused.
  const auto e = load_experiment(
      make({{"workload.streams", "2"}, {"backend.kind", "sim"},
            {"backend.path", "/tmp/ignored"}}));
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e.value().backend.kind, experiment::BackendConfig::Kind::kSim);
}

TEST(ExperimentLoader, RejectsBadBackend) {
  // Unknown kind.
  EXPECT_FALSE(
      load_experiment(make({{"workload.streams", "2"}, {"backend.kind", "fast"}}))
          .ok());
  // Real backend without a backing file.
  EXPECT_FALSE(
      load_experiment(make({{"workload.streams", "2"}, {"backend.kind", "real"}}))
          .ok());
  // Zero queue depth.
  EXPECT_FALSE(load_experiment(make({{"workload.streams", "2"},
                                     {"backend.kind", "real"},
                                     {"backend.path", "/dev/shm/backing.img"},
                                     {"backend.queue_depth", "0"}}))
                   .ok());
  // Zero reactors: the reactor count carves the device groups, so it must
  // be at least one even for the sim backend (where it is simply unused).
  const auto zero_reactors =
      load_experiment(make({{"workload.streams", "2"},
                            {"backend.kind", "real"},
                            {"backend.path", "/dev/shm/backing.img"},
                            {"backend.reactors", "0"}}));
  ASSERT_FALSE(zero_reactors.ok());
  EXPECT_NE(zero_reactors.error().message.find("backend.reactors"),
            std::string::npos);
}

TEST(ExperimentLoader, EndToEndRuns) {
  const auto e = load_experiment(make({{"workload.streams", "2"},
                                       {"disk.capacity", "4G"},
                                       {"sched.read_ahead", "1M"},
                                       {"sched.memory", "16M"},
                                       {"run.warmup", "1s"},
                                       {"run.measure", "2s"}}));
  ASSERT_TRUE(e.ok());
  const auto result = experiment::run_experiment(e.value());
  EXPECT_GT(result.total_mbps, 0.0);
}

TEST(FaultLoader, DefaultsAreDisabled) {
  const auto p = load_fault_params(Config{});
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(p.value().enabled());
}

TEST(FaultLoader, KeysApply) {
  const auto p = load_fault_params(make({{"fault.media_error_rate", "0.001"},
                                         {"fault.persistent_fraction", "0.25"},
                                         {"fault.transient_failures", "3"},
                                         {"fault.hang_prob", "0.0001"},
                                         {"fault.spike_prob", "0.01"},
                                         {"fault.spike", "75ms"},
                                         {"fault.seed", "99"},
                                         {"fault.devices", "0,2"}}));
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p.value().enabled());
  EXPECT_DOUBLE_EQ(p.value().media_error_rate, 0.001);
  EXPECT_DOUBLE_EQ(p.value().persistent_fraction, 0.25);
  EXPECT_EQ(p.value().transient_failures, 3u);
  EXPECT_EQ(p.value().spike_delay, msec(75));
  EXPECT_EQ(p.value().seed, 99u);
  EXPECT_EQ(p.value().devices, (std::vector<std::uint32_t>{0, 2}));
}

TEST(FaultLoader, BadRangeParsesSizesAndLists) {
  const auto p = load_fault_params(make({{"fault.bad_range", "0:1G:64K,1:0:4K"}}));
  ASSERT_TRUE(p.ok());
  ASSERT_EQ(p.value().bad_ranges.size(), 2u);
  EXPECT_EQ(p.value().bad_ranges[0].device, 0u);
  EXPECT_EQ(p.value().bad_ranges[0].offset, 1 * GiB);
  EXPECT_EQ(p.value().bad_ranges[0].length, 64 * KiB);
  EXPECT_EQ(p.value().bad_ranges[1].device, 1u);
}

TEST(FaultLoader, ErrorPathsPropagate) {
  // Malformed bad_range entries.
  EXPECT_FALSE(load_fault_params(make({{"fault.bad_range", "0:1G"}})).ok());
  EXPECT_FALSE(load_fault_params(make({{"fault.bad_range", "0:xyz:64K"}})).ok());
  // Zero-length range rejected by validate().
  EXPECT_FALSE(load_fault_params(make({{"fault.bad_range", "0:1G:0"}})).ok());
  // Probabilities outside [0,1].
  EXPECT_FALSE(load_fault_params(make({{"fault.media_error_rate", "1.5"}})).ok());
  EXPECT_FALSE(load_fault_params(make({{"fault.hang_prob", "-0.1"}})).ok());
  EXPECT_FALSE(load_fault_params(make({{"fault.persistent_fraction", "2"}})).ok());
  // transient_failures must be >= 1.
  EXPECT_FALSE(load_fault_params(make({{"fault.transient_failures", "0"}})).ok());
  // Non-numeric device fields error instead of throwing.
  EXPECT_FALSE(load_fault_params(make({{"fault.bad_range", "x:1G:64K"}})).ok());
  EXPECT_FALSE(load_fault_params(make({{"fault.devices", "0,disk1"}})).ok());
}

TEST(RetryLoader, KeysApplyAndErrorsPropagate) {
  const auto p = load_retry_params(make({{"retry.timeout", "100ms"},
                                         {"retry.retries", "5"},
                                         {"retry.backoff", "2ms"},
                                         {"retry.backoff_cap", "64ms"}}));
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value().command_timeout, msec(100));
  EXPECT_EQ(p.value().max_retries, 5u);
  EXPECT_EQ(p.value().backoff_base, msec(2));
  EXPECT_EQ(p.value().backoff_cap, msec(64));
  // cap < base rejected by validate().
  EXPECT_FALSE(load_retry_params(make({{"retry.backoff", "10ms"},
                                       {"retry.backoff_cap", "1ms"}}))
                   .ok());
}

TEST(NetLoader, DefaultsAndKeysApply) {
  const auto d = load_link_params(Config{});
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value().latency, usec(50));
  EXPECT_FALSE(d.value().responses_carry_data);

  const auto p = load_link_params(make({{"net.latency", "1ms"},
                                        {"net.bandwidth_mbps", "1000"},
                                        {"net.overhead", "5us"},
                                        {"net.header", "256"},
                                        {"net.responses_carry_data", "true"}}));
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value().latency, msec(1));
  EXPECT_DOUBLE_EQ(p.value().bandwidth_bps, 1e9);
  EXPECT_EQ(p.value().per_message_overhead, usec(5));
  EXPECT_EQ(p.value().header_bytes, 256u);
  EXPECT_TRUE(p.value().responses_carry_data);

  EXPECT_FALSE(load_link_params(make({{"net.bandwidth_mbps", "0"}})).ok());
}

TEST(ExperimentLoader, NetKeysEnableTheLink) {
  EXPECT_FALSE(load_experiment(Config{}).value().topology.stack.network.has_value());
  const auto e = load_experiment(make({{"net.latency", "200us"}}));
  ASSERT_TRUE(e.ok());
  ASSERT_TRUE(e.value().topology.stack.network.has_value());
  EXPECT_EQ(e.value().topology.stack.network->latency, usec(200));
  // net.enable=false wins over other net.* keys.
  const auto off = load_experiment(
      make({{"net.latency", "200us"}, {"net.enable", "false"}}));
  ASSERT_TRUE(off.ok());
  EXPECT_FALSE(off.value().topology.stack.network.has_value());
  // Errors propagate.
  EXPECT_FALSE(load_experiment(make({{"net.bandwidth_mbps", "-1"}})).ok());
}

TEST(ExperimentLoader, FaultKeysEnableRetryLayerByDefault) {
  const auto e = load_experiment(make({{"fault.media_error_rate", "0.001"}}));
  ASSERT_TRUE(e.ok());
  EXPECT_TRUE(e.value().topology.stack.fault.enabled());
  EXPECT_TRUE(e.value().topology.stack.retry_enabled());
  // No explicit retry.* keys: defaults are applied at run time, the
  // optional stays empty.
  EXPECT_FALSE(e.value().topology.stack.retry.has_value());
}

TEST(StackLoader, DefaultsAreLayerFree) {
  const auto s = load_stack_spec(Config{});
  ASSERT_TRUE(s.ok());
  EXPECT_FALSE(s.value().fault.enabled());
  EXPECT_FALSE(s.value().retry_enabled());
  EXPECT_FALSE(s.value().raid.enabled());
  EXPECT_FALSE(s.value().network.has_value());
}

TEST(StackLoader, RaidKeysApply) {
  const auto mirror = load_stack_spec(make({{"stack.raid", "mirror"},
                                            {"stack.mirror.ways", "4"},
                                            {"stack.mirror.policy", "round-robin"},
                                            {"stack.mirror.fail_threshold", "5"}}));
  ASSERT_TRUE(mirror.ok());
  EXPECT_EQ(mirror.value().raid.kind, io::RaidSpec::Kind::kMirror);
  EXPECT_EQ(mirror.value().raid.mirror_ways, 4u);
  EXPECT_EQ(mirror.value().raid.mirror_policy, raid::ReadPolicy::kRoundRobin);
  EXPECT_EQ(mirror.value().raid.mirror.fail_threshold, 5u);

  const auto stripe =
      load_stack_spec(make({{"stack.raid", "stripe"}, {"stack.stripe_unit", "512K"}}));
  ASSERT_TRUE(stripe.ok());
  EXPECT_EQ(stripe.value().raid.kind, io::RaidSpec::Kind::kStripe);
  EXPECT_EQ(stripe.value().raid.stripe_unit, 512 * KiB);

  EXPECT_FALSE(load_stack_spec(make({{"stack.raid", "raid6"}})).ok());
  EXPECT_FALSE(load_stack_spec(make({{"stack.mirror.policy", "random"}})).ok());
}

TEST(TopologyLoader, PresetAndAliasesApply) {
  const auto medium = load_topology_spec(make({{"topology.preset", "medium"}}));
  ASSERT_TRUE(medium.ok());
  EXPECT_EQ(medium.value().node.total_disks(), 8u);

  // topology.* spellings alias node.* and win when both are present.
  const auto aliased = load_topology_spec(make({{"topology.controllers", "2"},
                                                {"topology.disks_per_controller", "3"},
                                                {"node.controllers", "7"}}));
  ASSERT_TRUE(aliased.ok());
  EXPECT_EQ(aliased.value().node.num_controllers, 2u);
  EXPECT_EQ(aliased.value().node.disks_per_controller, 3u);

  const auto legacy = load_topology_spec(make({{"node.controllers", "2"},
                                               {"node.disks_per_controller", "2"}}));
  ASSERT_TRUE(legacy.ok());
  EXPECT_EQ(legacy.value().node.total_disks(), 4u);

  EXPECT_FALSE(load_topology_spec(make({{"topology.preset", "huge"}})).ok());
}

TEST(TopologyLoader, ValidatesRaidAgainstTheNode) {
  // 1-disk default node cannot mirror 2 ways.
  EXPECT_FALSE(load_topology_spec(make({{"stack.raid", "mirror"}})).ok());
  const auto ok = load_topology_spec(
      make({{"topology.preset", "medium"}, {"stack.raid", "mirror"}}));
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value().logical_device_count(), 4u);
}

TEST(ExperimentLoader, StripeTopologySizesStreamsAgainstTheLogicalView) {
  const auto e = load_experiment(make({{"topology.preset", "medium"},
                                       {"stack.raid", "stripe"},
                                       {"workload.streams", "16"}}));
  ASSERT_TRUE(e.ok());
  ASSERT_EQ(e.value().streams.size(), 16u);
  const Bytes volume =
      e.value().topology.node.disk.geometry.capacity * 8;
  for (const auto& spec : e.value().streams) {
    EXPECT_EQ(spec.device, 0u);  // one striped volume
    EXPECT_LT(spec.start_offset, volume);
  }
}

TEST(ExperimentLoader, BadRangeDeviceBoundsChecked) {
  // Single-disk node: device 3 is out of range, and the loader must say so
  // instead of letting the runner hit an invalid wrapper index.
  const auto e = load_experiment(make({{"fault.bad_range", "3:0:64K"}}));
  ASSERT_FALSE(e.ok());
  EXPECT_NE(e.error().message.find("out of range"), std::string::npos);
}

TEST(ExperimentLoader, FaultErrorsPropagateThroughLoadExperiment) {
  EXPECT_FALSE(load_experiment(make({{"fault.media_error_rate", "7"}})).ok());
  EXPECT_FALSE(
      load_experiment(make({{"retry.backoff", "0"}, {"retry.enable", "true"}})).ok());
}

TEST(ExperimentLoader, ParallelEngineKeys) {
  // Defaults: single shard, derived lookahead, baked-in workload seed.
  const auto plain = load_experiment(make({}));
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain.value().shards, 1u);
  EXPECT_EQ(plain.value().lookahead, 0u);

  const auto e = load_experiment(make({{"topology.preset", "medium"},
                                       {"sim.shards", "4"},
                                       {"sim.lookahead", "2ms"},
                                       {"workload.seed", "99"},
                                       {"workload.think_jitter", "3ms"}}));
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e.value().shards, 4u);
  EXPECT_EQ(e.value().lookahead, msec(2));
  EXPECT_EQ(e.value().workload_seed, 99u);
  for (const auto& spec : e.value().streams) {
    EXPECT_EQ(spec.think_jitter, msec(3));
  }

  // topology.shards is an accepted alias; sim.shards wins when both given.
  const auto alias = load_experiment(make({{"topology.shards", "2"}}));
  ASSERT_TRUE(alias.ok());
  EXPECT_EQ(alias.value().shards, 2u);
  const auto both = load_experiment(
      make({{"topology.shards", "2"}, {"sim.shards", "3"}}));
  ASSERT_TRUE(both.ok());
  EXPECT_EQ(both.value().shards, 3u);

  EXPECT_FALSE(load_experiment(make({{"sim.shards", "0"}})).ok());
}

TEST(ShippedConfigs, EveryExampleConfigLoads) {
  // The sample configuration files under examples/configs must stay valid.
  for (const char* name :
       {"fig10_point.conf", "raw_baseline.conf", "eight_disk_tuned.conf"}) {
    const std::string path = std::string(SST_SOURCE_DIR) + "/examples/configs/" + name;
    std::ifstream file(path);
    ASSERT_TRUE(file.good()) << path;
    std::ostringstream text;
    text << file.rdbuf();
    auto cfg = Config::from_text(text.str());
    ASSERT_TRUE(cfg.ok()) << name << ": " << cfg.error().message;
    auto experiment = load_experiment(cfg.value());
    EXPECT_TRUE(experiment.ok()) << name << ": " << experiment.error().message;
  }
}

}  // namespace
}  // namespace sst::configio
