// Fault-injection and recovery-hierarchy tests: deterministic schedules,
// transient/persistent media errors, timeout-driven hang recovery, retry
// accounting, mirrored-volume failover, scheduler graceful degradation,
// and the headline robustness criterion (mirrored throughput under a
// realistic media-error rate stays within 10% of fault-free).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "blockdev/mem_block_device.hpp"
#include "core/reliable_device.hpp"
#include "experiment/runner.hpp"
#include "experiment/sweep.hpp"
#include "fault/faulty_device.hpp"
#include "fault/injector.hpp"
#include "raid/mirrored_volume.hpp"
#include "sim/simulator.hpp"
#include "workload/generator.hpp"

namespace sst::fault {
namespace {

// ---------------------------------------------------------------------------
// FaultInjector: deterministic, hash-keyed decisions.

TEST(Injector, SameSeedSameSchedule) {
  FaultParams params;
  params.media_error_rate = 0.05;
  params.hang_prob = 0.02;
  params.spike_prob = 0.02;
  params.persistent_fraction = 1.0;  // no mutable transient state
  FaultInjector a(params);
  FaultInjector b(params);
  for (std::uint32_t dev = 0; dev < 2; ++dev) {
    for (ByteOffset off = 0; off < 512 * KiB; off += 4 * KiB) {
      const FaultDecision da = a.decide(dev, off, 4 * KiB, IoOp::kRead);
      const FaultDecision db = b.decide(dev, off, 4 * KiB, IoOp::kRead);
      EXPECT_EQ(da.action, db.action) << "dev " << dev << " off " << off;
      EXPECT_EQ(da.persistent, db.persistent);
      EXPECT_EQ(da.extra_delay, db.extra_delay);
    }
  }
  EXPECT_EQ(a.stats().media_errors, b.stats().media_errors);
  EXPECT_EQ(a.stats().hangs, b.stats().hangs);
  EXPECT_EQ(a.stats().spikes, b.stats().spikes);
  EXPECT_GT(a.stats().media_errors + a.stats().hangs + a.stats().spikes, 0u);
}

TEST(Injector, DifferentSeedDifferentSchedule) {
  FaultParams params;
  params.media_error_rate = 0.10;
  params.persistent_fraction = 1.0;
  FaultInjector a(params);
  params.seed ^= 0x1234;
  FaultInjector b(params);
  bool diverged = false;
  for (ByteOffset off = 0; off < 1 * MiB && !diverged; off += 4 * KiB) {
    diverged = a.decide(0, off, 4 * KiB, IoOp::kRead).action !=
               b.decide(0, off, 4 * KiB, IoOp::kRead).action;
  }
  EXPECT_TRUE(diverged);
}

TEST(Injector, DecisionsIndependentOfQueryOrder) {
  FaultParams params;
  params.media_error_rate = 0.10;
  params.hang_prob = 0.05;
  params.persistent_fraction = 1.0;
  std::vector<ByteOffset> offsets;
  for (ByteOffset off = 0; off < 256 * KiB; off += 4 * KiB) offsets.push_back(off);

  FaultInjector forward(params);
  std::vector<FaultAction> in_order;
  for (ByteOffset off : offsets) {
    in_order.push_back(forward.decide(0, off, 4 * KiB, IoOp::kRead).action);
  }
  FaultInjector backward(params);
  std::vector<FaultAction> reversed(offsets.size());
  for (std::size_t i = offsets.size(); i-- > 0;) {
    reversed[i] = backward.decide(0, offsets[i], 4 * KiB, IoOp::kRead).action;
  }
  EXPECT_EQ(in_order, reversed);
}

TEST(Injector, BadRangeAlwaysFailsPersistent) {
  FaultParams params;
  params.bad_ranges.push_back({0, 1 * MiB, 64 * KiB});
  FaultInjector inj(params);
  for (int attempt = 0; attempt < 5; ++attempt) {
    const FaultDecision d = inj.decide(0, 1 * MiB + 4 * KiB, 4 * KiB, IoOp::kRead);
    EXPECT_EQ(d.action, FaultAction::kMediaError);
    EXPECT_TRUE(d.persistent);
  }
  // Outside the range, and on another device: untouched.
  EXPECT_EQ(inj.decide(0, 4 * MiB, 4 * KiB, IoOp::kRead).action, FaultAction::kNone);
  EXPECT_EQ(inj.decide(1, 1 * MiB, 4 * KiB, IoOp::kRead).action, FaultAction::kNone);
}

TEST(Injector, TransientErrorClearsAfterConfiguredAttempts) {
  FaultParams params;
  params.media_error_rate = 1.0;
  params.persistent_fraction = 0.0;
  params.transient_failures = 2;
  FaultInjector inj(params);
  EXPECT_EQ(inj.decide(0, 0, 4 * KiB, IoOp::kRead).action, FaultAction::kMediaError);
  EXPECT_EQ(inj.decide(0, 0, 4 * KiB, IoOp::kRead).action, FaultAction::kMediaError);
  EXPECT_EQ(inj.decide(0, 0, 4 * KiB, IoOp::kRead).action, FaultAction::kNone)
      << "transient fault must clear after transient_failures attempts";
}

TEST(Injector, TargetsOnlyConfiguredDevices) {
  FaultParams params;
  params.media_error_rate = 1.0;
  params.persistent_fraction = 1.0;
  params.devices = {1};
  FaultInjector inj(params);
  EXPECT_EQ(inj.decide(0, 0, 4 * KiB, IoOp::kRead).action, FaultAction::kNone);
  EXPECT_EQ(inj.decide(1, 0, 4 * KiB, IoOp::kRead).action, FaultAction::kMediaError);
}

// ---------------------------------------------------------------------------
// RetryParams: backoff arithmetic.

TEST(RetryParams, ExponentialBackoffWithCap) {
  core::RetryParams p;
  p.backoff_base = msec(5);
  p.backoff_cap = msec(40);
  EXPECT_EQ(p.backoff_for(0), 0u);
  EXPECT_EQ(p.backoff_for(1), msec(5));
  EXPECT_EQ(p.backoff_for(2), msec(10));
  EXPECT_EQ(p.backoff_for(3), msec(20));
  EXPECT_EQ(p.backoff_for(4), msec(40));
  EXPECT_EQ(p.backoff_for(5), msec(40)) << "backoff must saturate at the cap";
}

// ---------------------------------------------------------------------------
// FaultyDevice + ReliableDevice: the per-command recovery hierarchy.

struct RetryHarness {
  explicit RetryHarness(FaultParams fparams, core::RetryParams rparams = {})
      : injector(fparams),
        faulty(sim, mem, injector, 0),
        reliable(sim, faulty, rparams, 0) {}

  sim::Simulator sim;
  blockdev::MemBlockDevice mem{sim, 16 * MiB, 42};
  FaultInjector injector;
  FaultyDevice faulty;
  core::ReliableDevice reliable;
};

TEST(ReliableDevice, TransientMediaErrorRecoversOnRetry) {
  FaultParams fparams;
  fparams.media_error_rate = 1.0;  // every extent fails exactly once
  fparams.persistent_fraction = 0.0;
  fparams.transient_failures = 1;
  RetryHarness h(fparams);

  std::vector<std::byte> buf(64 * KiB);
  IoStatus final_status = IoStatus::kTimeout;
  blockdev::BlockRequest req;
  req.offset = 256 * KiB;
  req.length = buf.size();
  req.data = buf.data();
  req.on_complete = [&final_status](SimTime, IoStatus s) { final_status = s; };
  h.reliable.submit(std::move(req));
  h.sim.run();

  EXPECT_EQ(final_status, IoStatus::kOk);
  EXPECT_TRUE(blockdev::check_pattern(42, 256 * KiB, buf.data(), buf.size()));
  const core::RetryStats& rs = h.reliable.stats();
  EXPECT_EQ(rs.commands, 1u);
  EXPECT_EQ(rs.retries_total, 1u);
  EXPECT_EQ(rs.media_errors, 1u);
  EXPECT_EQ(rs.recovered, 1u);
  EXPECT_EQ(rs.giveups, 0u);
}

TEST(ReliableDevice, PersistentErrorExhaustsRetriesAndGivesUp) {
  FaultParams fparams;
  fparams.bad_ranges.push_back({0, 0, 1 * MiB});
  core::RetryParams rparams;
  rparams.max_retries = 2;
  RetryHarness h(fparams, rparams);

  IoStatus final_status = IoStatus::kOk;
  blockdev::BlockRequest req;
  req.offset = 64 * KiB;
  req.length = 64 * KiB;
  req.on_complete = [&final_status](SimTime, IoStatus s) { final_status = s; };
  h.reliable.submit(std::move(req));
  h.sim.run();

  EXPECT_EQ(final_status, IoStatus::kMediaError);
  const core::RetryStats& rs = h.reliable.stats();
  EXPECT_EQ(rs.retries_total, 2u);  // attempts = max_retries + 1
  EXPECT_EQ(rs.media_errors, 3u);
  EXPECT_EQ(rs.giveups, 1u);
  EXPECT_EQ(rs.recovered, 0u);
}

TEST(ReliableDevice, HangRecoveredByTimeoutThenGivesUp) {
  FaultParams fparams;
  fparams.hang_prob = 1.0;  // every command is swallowed
  core::RetryParams rparams;
  rparams.command_timeout = msec(50);
  rparams.max_retries = 1;
  RetryHarness h(fparams, rparams);

  IoStatus final_status = IoStatus::kOk;
  blockdev::BlockRequest req;
  req.offset = 0;
  req.length = 4 * KiB;
  req.on_complete = [&final_status](SimTime, IoStatus s) { final_status = s; };
  h.reliable.submit(std::move(req));
  h.sim.run();

  EXPECT_EQ(final_status, IoStatus::kTimeout);
  const core::RetryStats& rs = h.reliable.stats();
  EXPECT_EQ(rs.timeouts, 2u);  // both attempts abandoned by the timer
  EXPECT_EQ(rs.giveups, 1u);
  EXPECT_EQ(h.injector.stats().hangs, 2u);
  // Two timeouts plus one backoff must have elapsed.
  EXPECT_GE(h.sim.now(), 2 * msec(50) + msec(5));
}

TEST(ReliableDevice, SpikeDelaysCompletionButSucceeds) {
  FaultParams fparams;
  fparams.spike_prob = 1.0;
  fparams.spike_delay = msec(200);
  RetryHarness h(fparams);

  IoStatus final_status = IoStatus::kTimeout;
  blockdev::BlockRequest req;
  req.offset = 0;
  req.length = 4 * KiB;
  req.on_complete = [&final_status](SimTime, IoStatus s) { final_status = s; };
  h.reliable.submit(std::move(req));
  h.sim.run();

  EXPECT_EQ(final_status, IoStatus::kOk);
  EXPECT_GE(h.sim.now(), msec(200));
  EXPECT_EQ(h.injector.stats().spikes, 1u);
  EXPECT_EQ(h.reliable.stats().retries_total, 0u);
}

// ---------------------------------------------------------------------------
// MirroredVolume failover and member health.

struct MirrorHarness {
  explicit MirrorHarness(FaultParams fparams, raid::MirrorParams mparams = {})
      : injector(fparams), faulty0(sim, m0, injector, 0) {
    vol = std::make_unique<raid::MirroredVolume>(
        std::vector<blockdev::BlockDevice*>{&faulty0, &m1},
        raid::ReadPolicy::kRoundRobin, mparams);
  }

  IoStatus read(ByteOffset offset, std::byte* data, Bytes length) {
    IoStatus out = IoStatus::kTimeout;
    blockdev::BlockRequest req;
    req.offset = offset;
    req.length = length;
    req.data = data;
    req.on_complete = [&out](SimTime, IoStatus s) { out = s; };
    vol->submit(std::move(req));
    sim.run();
    return out;
  }

  sim::Simulator sim;
  // Same seed: replicas of a mirror hold identical content.
  blockdev::MemBlockDevice m0{sim, 16 * MiB, 7};
  blockdev::MemBlockDevice m1{sim, 16 * MiB, 7};
  FaultInjector injector;
  FaultyDevice faulty0;
  std::unique_ptr<raid::MirroredVolume> vol;
};

TEST(Mirror, ReadFailsOverToHealthyReplica) {
  FaultParams fparams;
  fparams.bad_ranges.push_back({0, 0, 16 * MiB});  // member 0 is all bad
  MirrorHarness h(fparams);

  std::vector<std::byte> buf(64 * KiB);
  // Round-robin sends the first read to member 0; it errors and the read
  // must complete correctly from member 1.
  EXPECT_EQ(h.read(1 * MiB, buf.data(), buf.size()), IoStatus::kOk);
  EXPECT_TRUE(blockdev::check_pattern(7, 1 * MiB, buf.data(), buf.size()));
  EXPECT_GE(h.vol->stats().failovers, 1u);
  EXPECT_EQ(h.vol->member_health(0), raid::MemberHealth::kSuspect);
  EXPECT_EQ(h.vol->member_health(1), raid::MemberHealth::kUp);
}

TEST(Mirror, ConsecutiveErrorsFailTheMemberAndReadsDegrade) {
  FaultParams fparams;
  fparams.bad_ranges.push_back({0, 0, 16 * MiB});
  raid::MirrorParams mparams;
  mparams.fail_threshold = 3;
  MirrorHarness h(fparams, mparams);

  std::vector<std::byte> buf(64 * KiB);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(h.read(static_cast<ByteOffset>(i) * 128 * KiB, buf.data(), buf.size()),
              IoStatus::kOk);
  }
  EXPECT_EQ(h.vol->member_health(0), raid::MemberHealth::kFailed);
  EXPECT_EQ(h.vol->failed_member_count(), 1u);
  // Once failed, reads route around member 0 without attempting it.
  EXPECT_GT(h.vol->stats().degraded_reads, 0u);
  EXPECT_EQ(h.vol->stats().read_failures, 0u);
}

TEST(Mirror, WritesSkipFailedMemberAndStillLand) {
  FaultParams fparams;
  fparams.bad_ranges.push_back({0, 0, 16 * MiB});
  raid::MirrorParams mparams;
  mparams.fail_threshold = 1;
  MirrorHarness h(fparams, mparams);

  std::vector<std::byte> buf(64 * KiB);
  EXPECT_EQ(h.read(0, buf.data(), buf.size()), IoStatus::kOk);  // fails member 0
  ASSERT_EQ(h.vol->member_health(0), raid::MemberHealth::kFailed);

  IoStatus wstatus = IoStatus::kTimeout;
  blockdev::BlockRequest w;
  w.offset = 2 * MiB;
  w.length = buf.size();
  w.op = IoOp::kWrite;
  w.data = buf.data();
  w.on_complete = [&wstatus](SimTime, IoStatus s) { wstatus = s; };
  h.vol->submit(std::move(w));
  h.sim.run();
  EXPECT_EQ(wstatus, IoStatus::kOk);
  EXPECT_GT(h.vol->stats().degraded_writes, 0u);
  EXPECT_EQ(h.vol->stats().write_failures, 0u);
}

TEST(Mirror, ReadFailsOnlyWhenEveryReplicaFails) {
  FaultParams fparams;
  fparams.bad_ranges.push_back({0, 0, 16 * MiB});
  fparams.bad_ranges.push_back({1, 0, 16 * MiB});
  sim::Simulator sim;
  blockdev::MemBlockDevice m0{sim, 16 * MiB, 7};
  blockdev::MemBlockDevice m1{sim, 16 * MiB, 7};
  FaultInjector injector(fparams);
  FaultyDevice f0(sim, m0, injector, 0);
  FaultyDevice f1(sim, m1, injector, 1);
  raid::MirroredVolume vol({&f0, &f1}, raid::ReadPolicy::kRoundRobin);

  IoStatus out = IoStatus::kOk;
  blockdev::BlockRequest req;
  req.offset = 0;
  req.length = 64 * KiB;
  req.on_complete = [&out](SimTime, IoStatus s) { out = s; };
  vol.submit(std::move(req));
  sim.run();
  EXPECT_EQ(out, IoStatus::kMediaError);
  EXPECT_EQ(vol.stats().read_failures, 1u);
}

// ---------------------------------------------------------------------------
// Scheduler graceful degradation: a failed disk evicts its streams instead
// of stalling the dispatch pump; healthy disks keep flowing.

TEST(SchedulerDegradation, FailedDeviceEvictsStreamsAndHealthyDisksProgress) {
  experiment::ExperimentConfig config;
  config.topology.node.num_controllers = 1;
  config.topology.node.disks_per_controller = 2;
  config.scheduler = core::SchedulerParams{};
  config.topology.stack.fault.media_error_rate = 1.0;
  config.topology.stack.fault.persistent_fraction = 1.0;
  config.topology.stack.fault.devices = {0};  // disk 0 is a brick; disk 1 is clean
  core::RetryParams retry;
  retry.max_retries = 1;
  // Generous deadline: queued 1 MiB read-aheads on the healthy disk can
  // take hundreds of ms; only disk 0's (instant) media errors should fail.
  retry.command_timeout = sec(5);
  config.topology.stack.retry = retry;
  config.streams = workload::make_uniform_streams(
      8, 2, config.topology.node.disk.geometry.capacity, 64 * KiB);
  config.warmup = msec(500);
  config.measure = sec(2);

  const experiment::ExperimentResult result = experiment::run_experiment(config);

  EXPECT_EQ(result.devices_failed, 1u);
  EXPECT_GT(result.scheduler_stats.streams_evicted, 0u);
  EXPECT_GT(result.scheduler_stats.prefetch_errors, 0u);
  EXPECT_GT(result.client_errors, 0u);
  EXPECT_GT(result.retry_stats.giveups, 0u);
  // Streams on the healthy disk keep streaming (uniform placement
  // round-robins streams over disks: stream i sits on disk i / 4 here).
  double healthy_mbps = 0.0;
  for (std::size_t i = 0; i < config.streams.size(); ++i) {
    if (config.streams[i].device == 1) healthy_mbps += result.stream_mbps[i];
  }
  EXPECT_GT(healthy_mbps, 1.0) << "healthy disk must keep serving";
  // Requests for the failed disk are rejected at the server, not queued.
  EXPECT_GT(result.server_stats.rejected_requests, 0u);
}

// ---------------------------------------------------------------------------
// Determinism end to end: same seed, byte-identical results, independent of
// sweep parallelism.

experiment::ExperimentConfig faulted_config(double rate) {
  experiment::ExperimentConfig config;
  config.topology.node.num_controllers = 1;
  config.topology.node.disks_per_controller = 2;
  config.scheduler = core::SchedulerParams{};
  config.scheduler->device_fail_threshold = 1000;  // keep disks alive
  config.topology.stack.fault.media_error_rate = rate;
  config.topology.stack.fault.hang_prob = rate / 10.0;
  config.topology.stack.fault.spike_prob = rate;
  core::RetryParams retry;
  retry.command_timeout = msec(100);
  config.topology.stack.retry = retry;
  config.streams = workload::make_uniform_streams(
      10, 2, config.topology.node.disk.geometry.capacity, 64 * KiB);
  config.warmup = msec(500);
  config.measure = sec(2);
  return config;
}

TEST(Determinism, SameSeedFaultScheduleIsByteIdenticalAcrossRuns) {
  const experiment::ExperimentConfig config = faulted_config(5e-3);
  const experiment::ExperimentResult a = experiment::run_experiment(config);
  const experiment::ExperimentResult b = experiment::run_experiment(config);
  EXPECT_GT(a.fault_stats.media_errors + a.fault_stats.hangs + a.fault_stats.spikes, 0u);
  EXPECT_EQ(a.to_json(), b.to_json());
}

TEST(Determinism, SweepResultsIdenticalAcrossWorkerCounts) {
  std::vector<experiment::ExperimentConfig> grid;
  grid.push_back(faulted_config(1e-3));
  grid.push_back(faulted_config(5e-3));
  grid.push_back(faulted_config(1e-2));
  const auto serial = experiment::run_sweep(grid, 1);
  const auto parallel = experiment::run_sweep(grid, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].to_json(), parallel[i].to_json()) << "grid point " << i;
  }
}

// ---------------------------------------------------------------------------
// Acceptance: 100 streams on a 2-way mirror with a 1e-3 media-error rate on
// one member stay within 10% of fault-free aggregate throughput.

double mirrored_throughput(double media_error_rate) {
  sim::Simulator sim;
  constexpr Bytes kCapacity = 64 * MiB;
  blockdev::MemBlockDevice m0(sim, kCapacity, 7);
  blockdev::MemBlockDevice m1(sim, kCapacity, 7);

  FaultParams fparams;
  fparams.media_error_rate = media_error_rate;
  fparams.devices = {0};  // only member 0 degrades
  FaultInjector injector(fparams);
  FaultyDevice faulty0(sim, m0, injector, 0);

  core::RetryParams rparams;
  rparams.command_timeout = msec(100);
  core::ReliableDevice r0(sim, faulty0, rparams, 0);
  core::ReliableDevice r1(sim, m1, rparams, 1);
  raid::MirroredVolume vol({&r0, &r1}, raid::ReadPolicy::kRegionAffine);

  workload::RequestSink sink = [&vol](core::ClientRequest req) {
    blockdev::BlockRequest io;
    io.offset = req.offset;
    io.length = req.length;
    io.op = req.op;
    io.id = req.id;
    io.data = req.data;
    io.on_complete = std::move(req.on_complete);
    vol.submit(std::move(io));
  };

  const auto specs = workload::make_uniform_streams(100, 1, kCapacity, 64 * KiB);
  std::vector<std::unique_ptr<workload::StreamClient>> clients;
  clients.reserve(specs.size());
  for (const auto& spec : specs) {
    clients.push_back(
        std::make_unique<workload::StreamClient>(sim, sink, spec, kCapacity));
  }
  for (auto& client : clients) client->start();

  sim.run_until(msec(500));
  for (auto& client : clients) client->begin_measurement();
  const SimTime t0 = sim.now();
  const SimTime t1 = t0 + sec(2);
  sim.run_until(t1);

  double total = 0.0;
  for (const auto& client : clients) total += client->stats().throughput.mbps(t0, t1);
  return total;
}

TEST(Acceptance, MirroredThroughputWithin10PercentUnderMediaErrors) {
  const double clean = mirrored_throughput(0.0);
  const double faulted = mirrored_throughput(1e-3);
  ASSERT_GT(clean, 0.0);
  EXPECT_GE(faulted, 0.9 * clean)
      << "clean " << clean << " MB/s vs faulted " << faulted << " MB/s";
}

}  // namespace
}  // namespace sst::fault
