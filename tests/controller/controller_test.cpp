#include "controller/controller.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace sst::ctrl {
namespace {

disk::DiskParams small_disk() {
  disk::DiskParams p;
  p.geometry.capacity = 2 * GiB;
  return p;
}

struct Harness {
  sim::Simulator sim;
  Controller ctrl;

  explicit Harness(ControllerParams params = ControllerParams{}) : ctrl(sim, params, 0) {
    ctrl.attach_disk(small_disk());
  }

  SimTime read(std::uint32_t disk, Lba lba, Lba sectors) {
    SimTime done = 0;
    ControllerCommand cmd;
    cmd.disk_index = disk;
    cmd.lba = lba;
    cmd.sectors = sectors;
    cmd.op = IoOp::kRead;
    cmd.on_complete = [&done](SimTime t) { done = t; };
    ctrl.submit(std::move(cmd));
    sim.run();
    return done;
  }

  SimTime write(std::uint32_t disk, Lba lba, Lba sectors) {
    SimTime done = 0;
    ControllerCommand cmd;
    cmd.disk_index = disk;
    cmd.lba = lba;
    cmd.sectors = sectors;
    cmd.op = IoOp::kWrite;
    cmd.on_complete = [&done](SimTime t) { done = t; };
    ctrl.submit(std::move(cmd));
    sim.run();
    return done;
  }
};

TEST(Controller, AttachAssignsChannels) {
  sim::Simulator sim;
  Controller c(sim, ControllerParams{}, 3);
  EXPECT_EQ(c.attach_disk(small_disk()), 0u);
  EXPECT_EQ(c.attach_disk(small_disk()), 1u);
  EXPECT_EQ(c.disk_count(), 2u);
  // Disk ids embed controller and channel.
  EXPECT_EQ(c.disk(0).id(), (3u << 8) | 0u);
  EXPECT_EQ(c.disk(1).id(), (3u << 8) | 1u);
}

TEST(Controller, ReadCompletesAndCounts) {
  Harness h;
  const SimTime done = h.read(0, 1000, 128);
  EXPECT_GT(done, 0u);
  EXPECT_EQ(h.ctrl.stats().commands, 1u);
  EXPECT_EQ(h.ctrl.stats().bytes_to_host, 64 * KiB);
}

TEST(Controller, NoPrefetchByDefault) {
  Harness h;
  h.read(0, 1000, 128);
  // The disk saw exactly the request (its own firmware fill aside, the
  // controller added nothing): controller cache stats show a miss with no
  // prefetched bytes.
  EXPECT_EQ(h.ctrl.cache_stats().prefetched_bytes, 0u);
}

TEST(Controller, PrefetchExtendsDiskRead) {
  ControllerParams p;
  p.cache_size = 16 * MiB;
  p.prefetch = 256 * KiB;
  Harness h(p);
  h.read(0, 1000, 128);
  EXPECT_EQ(h.ctrl.cache_stats().prefetched_bytes, 256 * KiB);
  // Sequential continuation now hits the controller cache: no extra disk
  // command.
  const auto disk_cmds = h.ctrl.disk(0).stats().commands;
  h.read(0, 1128, 128);
  EXPECT_EQ(h.ctrl.disk(0).stats().commands, disk_cmds);
  EXPECT_GE(h.ctrl.cache_stats().hits, 1u);
}

TEST(Controller, CacheHitFasterThanMiss) {
  ControllerParams p;
  p.prefetch = 1 * MiB;
  Harness h(p);
  h.read(0, 0, 128);
  const SimTime t0 = h.sim.now();
  h.read(0, 128, 128);  // inside the prefetched extent
  EXPECT_LT(h.sim.now() - t0, msec(1));
}

TEST(Controller, BusSerializesTransfers) {
  Harness h;
  // Two large hits: preload the cache, then issue both reads back-to-back.
  ControllerParams p;
  p.prefetch = 4 * MiB;
  Harness h2(p);
  h2.read(0, 0, 128);  // prefetches 4 MB
  SimTime done1 = 0, done2 = 0;
  ControllerCommand c1, c2;
  c1.disk_index = c2.disk_index = 0;
  c1.lba = 256;
  c2.lba = 1024;
  c1.sectors = c2.sectors = 2048;  // 1 MB each, both cached
  c1.op = c2.op = IoOp::kRead;
  c1.on_complete = [&done1](SimTime t) { done1 = t; };
  c2.on_complete = [&done2](SimTime t) { done2 = t; };
  const SimTime start = h2.sim.now();
  h2.ctrl.submit(std::move(c1));
  h2.ctrl.submit(std::move(c2));
  h2.sim.run();
  // 1 MB at 450 MB/s is ~2.33 ms; the second must wait for the first.
  EXPECT_GT(done1, start);
  EXPECT_GE(done2, done1 + msec(2));
}

TEST(Controller, WriteGoesToDiskAndInvalidates) {
  ControllerParams p;
  p.prefetch = 256 * KiB;
  Harness h(p);
  h.read(0, 0, 128);  // extent cached
  EXPECT_TRUE(h.ctrl.cache_stats().prefetched_bytes > 0);
  h.write(0, 128, 64);
  EXPECT_EQ(h.ctrl.disk(0).stats().writes, 1u);
  // The overlapping extent is gone: next read misses at the controller.
  const auto misses = h.ctrl.cache_stats().misses;
  h.read(0, 128, 64);
  EXPECT_EQ(h.ctrl.cache_stats().misses, misses + 1);
}

TEST(Controller, MultiDiskIndependentService) {
  sim::Simulator sim;
  Controller ctrl(sim, ControllerParams{}, 0);
  ctrl.attach_disk(small_disk());
  ctrl.attach_disk(small_disk());
  int completions = 0;
  for (std::uint32_t d = 0; d < 2; ++d) {
    ControllerCommand cmd;
    cmd.disk_index = d;
    cmd.lba = 1000;
    cmd.sectors = 128;
    cmd.op = IoOp::kRead;
    cmd.on_complete = [&completions](SimTime) { ++completions; };
    ctrl.submit(std::move(cmd));
  }
  sim.run();
  EXPECT_EQ(completions, 2);
  EXPECT_EQ(ctrl.disk(0).stats().reads, 1u);
  EXPECT_EQ(ctrl.disk(1).stats().reads, 1u);
}

TEST(Controller, PrefetchClampedAtDiskEnd) {
  ControllerParams p;
  p.prefetch = 8 * MiB;
  Harness h(p);
  const Lba end = h.ctrl.disk(0).geometry().total_sectors();
  const SimTime done = h.read(0, end - 128, 128);  // near the end
  EXPECT_GT(done, 0u);  // must not assert/overflow
}

TEST(Controller, ResetStatsCascades) {
  Harness h;
  h.read(0, 0, 128);
  h.ctrl.reset_stats();
  EXPECT_EQ(h.ctrl.stats().commands, 0u);
  EXPECT_EQ(h.ctrl.disk(0).stats().reads, 0u);
}

}  // namespace
}  // namespace sst::ctrl
