#include "controller/cache.hpp"

#include <gtest/gtest.h>

namespace sst::ctrl {
namespace {

TEST(ExtentCache, DisabledAtZeroCapacity) {
  ExtentCache c(0);
  EXPECT_FALSE(c.enabled());
  EXPECT_FALSE(c.lookup(0, 0, 8, 0));
}

TEST(ExtentCache, MissThenHit) {
  ExtentCache c(1 * MiB);
  EXPECT_FALSE(c.lookup(0, 100, 8, usec(1)));
  c.install(0, 100, 512, 8, usec(2));
  EXPECT_TRUE(c.lookup(0, 100, 8, usec(3)));
  EXPECT_TRUE(c.lookup(0, 356, 256, usec(4)));  // tail of the extent
  EXPECT_EQ(c.stats().hits, 2u);
  EXPECT_EQ(c.stats().misses, 1u);
}

TEST(ExtentCache, DiskIdDisambiguates) {
  ExtentCache c(1 * MiB);
  c.install(0, 100, 512, 8, usec(1));
  EXPECT_FALSE(c.lookup(1, 100, 8, usec(2)));
}

TEST(ExtentCache, UsedBytesTracked) {
  ExtentCache c(1 * MiB);
  c.install(0, 0, 512, 8, usec(1));  // 256 KB
  EXPECT_EQ(c.used_bytes(), 256 * KiB);
  c.install(0, 10000, 512, 8, usec(2));
  EXPECT_EQ(c.used_bytes(), 512 * KiB);
}

TEST(ExtentCache, LruEvictionWhenFull) {
  ExtentCache c(512 * KiB);  // room for two 256 KB extents
  c.install(0, 0, 512, 8, usec(1));
  c.install(0, 10000, 512, 8, usec(2));
  EXPECT_TRUE(c.lookup(0, 0, 8, usec(3)));  // refresh extent A
  c.install(0, 20000, 512, 8, usec(4));     // evicts extent B (LRU)
  EXPECT_TRUE(c.lookup(0, 0, 8, usec(5)));
  EXPECT_FALSE(c.lookup(0, 10000, 8, usec(6)));
  EXPECT_TRUE(c.lookup(0, 20000, 8, usec(7)));
}

TEST(ExtentCache, WasteAccountedOnEviction) {
  ExtentCache c(256 * KiB);
  c.install(0, 0, 512, 8, usec(1));       // 8 demanded, 504 speculative
  c.install(0, 10000, 512, 8, usec(2));   // evicts the first
  EXPECT_EQ(c.stats().wasted_prefetch_bytes, sectors_to_bytes(504));
}

TEST(ExtentCache, OversizedExtentTruncatedToCapacity) {
  ExtentCache c(256 * KiB);  // 512 sectors
  c.install(0, 0, 2048, 2048, usec(1));
  EXPECT_TRUE(c.lookup(0, 0, 512, usec(2)));
  EXPECT_FALSE(c.lookup(0, 512, 8, usec(3)));
  EXPECT_LE(c.used_bytes(), c.capacity());
}

TEST(ExtentCache, OverlappingInstallReplaces) {
  ExtentCache c(1 * MiB);
  c.install(0, 0, 512, 8, usec(1));
  c.install(0, 256, 512, 8, usec(2));  // overlaps the first extent
  EXPECT_TRUE(c.lookup(0, 256, 8, usec(3)));
  EXPECT_FALSE(c.lookup(0, 0, 8, usec(4)));
  EXPECT_EQ(c.extent_count(), 1u);
}

TEST(ExtentCache, InvalidateDropsOverlapOnly) {
  ExtentCache c(1 * MiB);
  c.install(0, 0, 512, 512, usec(1));
  c.install(0, 10000, 512, 512, usec(2));
  c.invalidate(0, 100, 8);
  EXPECT_FALSE(c.lookup(0, 0, 8, usec(3)));
  EXPECT_TRUE(c.lookup(0, 10000, 8, usec(4)));
}

TEST(ExtentCache, ConsumedTrackingPreventsPhantomWaste) {
  ExtentCache c(256 * KiB);
  c.install(0, 0, 512, 8, usec(1));
  // Consume the whole extent through hits.
  for (Lba off = 0; off + 64 <= 512; off += 64) {
    EXPECT_TRUE(c.lookup(0, off, 64, usec(2)));
  }
  c.install(0, 10000, 512, 8, usec(3));  // evicts fully consumed extent
  EXPECT_EQ(c.stats().wasted_prefetch_bytes, 0u);
}

TEST(ExtentCache, PrefetchedBytesCounted) {
  ExtentCache c(1 * MiB);
  c.install(0, 0, 512, 128, usec(1));
  EXPECT_EQ(c.stats().prefetched_bytes, sectors_to_bytes(384));
}

TEST(ExtentCache, ReserveIsNotVisibleUntilFilled) {
  ExtentCache c(1 * MiB);
  const auto id = c.reserve(0, 0, 512, 8, usec(1));
  ASSERT_NE(id, 0u);
  EXPECT_FALSE(c.lookup(0, 0, 8, usec(2)));  // in flight: no hit
  EXPECT_TRUE(c.mark_filled(id, usec(3)));
  EXPECT_TRUE(c.lookup(0, 0, 8, usec(4)));
}

TEST(ExtentCache, ReservationEvictedInFlight) {
  ExtentCache c(256 * KiB);  // room for exactly one 512-sector extent
  const auto first = c.reserve(0, 0, 512, 8, usec(1));
  const auto second = c.reserve(0, 100000, 512, 8, usec(2));  // evicts first
  ASSERT_NE(second, 0u);
  EXPECT_FALSE(c.mark_filled(first, usec(3)));  // nowhere to put the data
  EXPECT_TRUE(c.mark_filled(second, usec(4)));
  EXPECT_EQ(c.stats().inflight_evictions, 1u);
}

TEST(ExtentCache, ReserveAccountsCapacityImmediately) {
  ExtentCache c(1 * MiB);
  (void)c.reserve(0, 0, 512, 8, usec(1));
  EXPECT_EQ(c.used_bytes(), 256 * KiB);  // committed before the data lands
}

TEST(ExtentCache, ReserveDisabledCacheReturnsZero) {
  ExtentCache c(0);
  EXPECT_EQ(c.reserve(0, 0, 512, 8, usec(1)), 0u);
  EXPECT_FALSE(c.mark_filled(0, usec(2)));
}

TEST(ExtentCache, ThrashWastesInflightReservations) {
  // streams x prefetch > cache: every reservation evicts a predecessor
  // before its data is consumed (the Fig. 8 collapse mechanism).
  ExtentCache c(1 * MiB);
  for (int i = 0; i < 32; ++i) {
    const auto id =
        c.reserve(0, static_cast<Lba>(i) * 100000, 512, 8, usec(10 + i));
    (void)c.mark_filled(id, usec(10 + i));
  }
  EXPECT_GT(c.stats().evictions, 20u);
  EXPECT_GT(c.stats().wasted_prefetch_bytes, 20u * sectors_to_bytes(504));
}

TEST(ExtentCache, ResetStats) {
  ExtentCache c(1 * MiB);
  (void)c.lookup(0, 0, 8, 0);
  c.reset_stats();
  EXPECT_EQ(c.stats().misses, 0u);
}

}  // namespace
}  // namespace sst::ctrl
