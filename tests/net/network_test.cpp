#include "net/network.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "blockdev/mem_block_device.hpp"
#include "experiment/runner.hpp"
#include "core/server.hpp"
#include "fault/injector.hpp"
#include "sim/simulator.hpp"

namespace sst::net {
namespace {

TEST(Channel, DeliveryTimeMatchesModel) {
  sim::Simulator sim;
  LinkParams p;
  p.latency = usec(100);
  p.bandwidth_bps = 100e6;  // 10 ns per byte
  p.per_message_overhead = usec(10);
  p.header_bytes = 0;
  Channel ch(sim, p);
  SimTime delivered = 0;
  ch.send(100'000, [&] { delivered = sim.now(); });  // 1 ms serialization
  sim.run();
  // send overhead 10us + 1ms + latency 100us + recv overhead 10us.
  EXPECT_NEAR(static_cast<double>(delivered), static_cast<double>(usec(1120)),
              static_cast<double>(usec(2)));
}

TEST(Channel, BackToBackMessagesSerialize) {
  sim::Simulator sim;
  LinkParams p;
  p.latency = 0;
  p.bandwidth_bps = 100e6;
  p.per_message_overhead = 0;
  p.header_bytes = 0;
  Channel ch(sim, p);
  SimTime first = 0, second = 0;
  ch.send(100'000, [&] { first = sim.now(); });
  ch.send(100'000, [&] { second = sim.now(); });
  sim.run();
  EXPECT_NEAR(static_cast<double>(second - first), static_cast<double>(msec(1)),
              static_cast<double>(usec(5)));
}

TEST(Channel, StatsAccumulate) {
  sim::Simulator sim;
  LinkParams p;
  p.header_bytes = 100;
  Channel ch(sim, p);
  ch.send(900, [] {});
  ch.send(0, [] {});
  sim.run();
  EXPECT_EQ(ch.stats().messages, 2u);
  EXPECT_EQ(ch.stats().bytes_transferred, 900u + 100u + 100u);
  EXPECT_GT(ch.stats().busy_time, 0u);
}

struct Harness {
  sim::Simulator sim;
  blockdev::MemBlockDevice dev{sim, 16 * MiB, 9, usec(200), 200e6};
  core::StorageServer server;

  explicit Harness()
      : server(sim, {&dev},
               [] {
                 core::SchedulerParams p;
                 p.read_ahead = 256 * KiB;
                 p.memory_budget = 8 * MiB;
                 return p;
               }()) {}
};

TEST(RemoteSink, ReadCompletesWithNetworkLatencyAdded) {
  Harness h;
  LinkParams link;
  link.latency = msec(1);  // exaggerated so the effect dominates
  RemoteSink remote(h.sim, [&](core::ClientRequest r) { h.server.submit(std::move(r)); },
                    link);
  auto sink = remote.sink();

  SimTime done_at = 0;
  core::ClientRequest req;
  req.device = 0;
  req.offset = 0;
  req.length = 16 * KiB;
  req.on_complete = [&done_at, &h](SimTime) { done_at = h.sim.now(); };
  const SimTime t0 = h.sim.now();
  sink(std::move(req));
  h.sim.run_until(h.sim.now() + sec(1));
  ASSERT_GT(done_at, t0);
  // Two network hops of >= 1 ms each plus the device time.
  EXPECT_GE(done_at - t0, msec(2));
  EXPECT_EQ(remote.uplink_stats().messages, 1u);
  EXPECT_EQ(remote.downlink_stats().messages, 1u);
}

TEST(RemoteSink, ResponsesCarryNoDataByDefault) {
  Harness h;
  RemoteSink remote(h.sim, [&](core::ClientRequest r) { h.server.submit(std::move(r)); },
                    LinkParams{});
  auto sink = remote.sink();
  int done = 0;
  core::ClientRequest req;
  req.device = 0;
  req.offset = 0;
  req.length = 1 * MiB;  // large read
  req.on_complete = [&done](SimTime) { ++done; };
  sink(std::move(req));
  h.sim.run_until(h.sim.now() + sec(1));
  ASSERT_EQ(done, 1);
  // Downlink carried only the header, not the 1 MB payload.
  EXPECT_LT(remote.downlink_stats().bytes_transferred, 1 * KiB);
}

TEST(RemoteSink, ResponsesCarryDataWhenEnabled) {
  Harness h;
  LinkParams link;
  link.responses_carry_data = true;
  RemoteSink remote(h.sim, [&](core::ClientRequest r) { h.server.submit(std::move(r)); },
                    link);
  auto sink = remote.sink();
  int done = 0;
  core::ClientRequest req;
  req.device = 0;
  req.offset = 0;
  req.length = 1 * MiB;
  req.on_complete = [&done](SimTime) { ++done; };
  sink(std::move(req));
  h.sim.run_until(h.sim.now() + sec(1));
  ASSERT_EQ(done, 1);
  EXPECT_GE(remote.downlink_stats().bytes_transferred, 1 * MiB);
}

TEST(RemoteSink, WritePayloadTravelsUplink) {
  Harness h;
  RemoteSink remote(h.sim, [&](core::ClientRequest r) { h.server.submit(std::move(r)); },
                    LinkParams{});
  auto sink = remote.sink();
  int done = 0;
  core::ClientRequest req;
  req.device = 0;
  req.offset = 0;
  req.length = 256 * KiB;
  req.op = IoOp::kWrite;
  req.on_complete = [&done](SimTime) { ++done; };
  sink(std::move(req));
  h.sim.run_until(h.sim.now() + sec(1));
  ASSERT_EQ(done, 1);
  EXPECT_GE(remote.uplink_stats().bytes_transferred, 256 * KiB);
}

TEST(RemoteSink, ManyClientsShareTheLink) {
  // Closed-loop streams through the network still complete and the link
  // never reorders a single client's requests.
  Harness h;
  RemoteSink remote(h.sim, [&](core::ClientRequest r) { h.server.submit(std::move(r)); },
                    LinkParams{});
  auto sink = remote.sink();
  std::vector<std::unique_ptr<workload::StreamClient>> clients;
  for (int i = 0; i < 3; ++i) {
    workload::StreamSpec spec;
    spec.start_offset = static_cast<ByteOffset>(i) * 4 * MiB;
    spec.region_bytes = 4 * MiB;
    spec.request_size = 16 * KiB;
    spec.num_requests = 20;
    clients.push_back(
        std::make_unique<workload::StreamClient>(h.sim, sink, spec, h.dev.capacity()));
    clients.back()->start();
  }
  h.sim.run_until(h.sim.now() + sec(5));
  EXPECT_EQ(remote.uplink_stats().messages, 60u);
  EXPECT_EQ(remote.downlink_stats().messages, 60u);
}

TEST(RemoteSink, FaultHangDropsRequestInTransit) {
  // A hang decision on the link loses the request outright: nothing reaches
  // the server and the completion never fires.
  Harness h;
  fault::FaultParams fp;
  fp.hang_prob = 1.0;
  fault::FaultInjector injector(fp);
  RemoteSink remote(h.sim, [&](core::ClientRequest r) { h.server.submit(std::move(r)); },
                    LinkParams{});
  remote.set_fault_injector(&injector, 1);
  auto sink = remote.sink();
  int done = 0;
  core::ClientRequest req;
  req.device = 0;
  req.offset = 0;
  req.length = 16 * KiB;
  req.on_complete = [&done](SimTime) { ++done; };
  sink(std::move(req));
  h.sim.run_until(h.sim.now() + sec(10));
  EXPECT_EQ(done, 0);
  EXPECT_EQ(remote.fault_stats().dropped, 1u);
  EXPECT_EQ(remote.uplink_stats().messages, 0u);
}

TEST(RemoteSink, FaultMediaErrorFailsInTransportWithoutReachingServer) {
  Harness h;
  fault::FaultParams fp;
  fp.media_error_rate = 1.0;
  fp.persistent_fraction = 1.0;
  fault::FaultInjector injector(fp);
  RemoteSink remote(h.sim, [&](core::ClientRequest r) { h.server.submit(std::move(r)); },
                    LinkParams{});
  remote.set_fault_injector(&injector, 1);
  auto sink = remote.sink();
  IoStatus status = IoStatus::kOk;
  int done = 0;
  core::ClientRequest req;
  req.device = 0;
  req.offset = 0;
  req.length = 16 * KiB;
  req.on_complete = [&done, &status](SimTime, IoStatus s) {
    ++done;
    status = s;
  };
  sink(std::move(req));
  h.sim.run_until(h.sim.now() + sec(1));
  ASSERT_EQ(done, 1);
  EXPECT_FALSE(io_ok(status));
  EXPECT_EQ(remote.fault_stats().transport_errors, 1u);
  // The error came back over the downlink; the server never saw the request.
  EXPECT_EQ(remote.uplink_stats().messages, 0u);
  EXPECT_EQ(remote.downlink_stats().messages, 1u);
}

TEST(RemoteSink, FaultSpikeDelaysButCompletes) {
  const auto completion_time = [](fault::FaultInjector* injector) {
    Harness h;
    RemoteSink remote(h.sim,
                      [&](core::ClientRequest r) { h.server.submit(std::move(r)); },
                      LinkParams{});
    if (injector != nullptr) remote.set_fault_injector(injector, 1);
    auto sink = remote.sink();
    SimTime done_at = 0;
    core::ClientRequest req;
    req.device = 0;
    req.offset = 0;
    req.length = 16 * KiB;
    req.on_complete = [&done_at, &h](SimTime) { done_at = h.sim.now(); };
    sink(std::move(req));
    h.sim.run_until(h.sim.now() + sec(10));
    EXPECT_GT(done_at, 0u);
    return done_at;
  };

  fault::FaultParams fp;
  fp.spike_prob = 1.0;
  fp.spike_delay = msec(50);
  fault::FaultInjector injector(fp);
  const SimTime clean = completion_time(nullptr);
  const SimTime spiked = completion_time(&injector);
  EXPECT_GE(spiked, clean + msec(50));
  EXPECT_EQ(injector.stats().spikes, 1u);
}

TEST(RemoteSink, FaultTargetsSkipTheLinkWhenNotListed) {
  // fault.devices scoping applies to the link like any device: an injector
  // aimed only at disk 0 leaves the NIC (keyed as device 1 here) untouched.
  Harness h;
  fault::FaultParams fp;
  fp.media_error_rate = 1.0;
  fp.devices = {0};
  fault::FaultInjector injector(fp);
  RemoteSink remote(h.sim, [&](core::ClientRequest r) { h.server.submit(std::move(r)); },
                    LinkParams{});
  remote.set_fault_injector(&injector, 1);
  auto sink = remote.sink();
  IoStatus status = IoStatus::kMediaError;
  int done = 0;
  core::ClientRequest req;
  req.device = 0;
  req.offset = 0;
  req.length = 16 * KiB;
  req.on_complete = [&done, &status](SimTime, IoStatus s) {
    ++done;
    status = s;
  };
  sink(std::move(req));
  h.sim.run_until(h.sim.now() + sec(1));
  ASSERT_EQ(done, 1);
  EXPECT_TRUE(io_ok(status));
  EXPECT_EQ(remote.fault_stats().transport_errors, 0u);
}

TEST(RemoteSink, ExperimentHarnessIntegration) {
  // The runner's optional network adds client-visible latency without
  // changing aggregate throughput (responses carry no payload).
  experiment::ExperimentConfig ec;
  ec.topology.node.disk.geometry.capacity = 4 * GiB;
  ec.warmup = sec(1);
  ec.measure = sec(4);
  core::SchedulerParams params;
  params.read_ahead = 1 * MiB;
  params.memory_budget = 16 * MiB;
  ec.scheduler = params;
  ec.streams = workload::make_uniform_streams(8, 1, 4 * GiB, 64 * KiB);

  const auto local = experiment::run_experiment(ec);
  LinkParams link;
  link.latency = usec(500);
  ec.topology.stack.network = link;
  const auto remote = experiment::run_experiment(ec);

  EXPECT_GT(remote.total_mbps, 0.5 * local.total_mbps);
  // Staged-buffer hits complete in tens of microseconds locally; over the
  // network every request pays two >= 0.5 ms hops, so the median moves past
  // 1 ms. (Mean latency is NOT additive: the closed loop re-times arrivals
  // and can reduce queueing by more than the network adds.)
  EXPECT_LT(local.latency.p50_ms(), 1.0);
  EXPECT_GE(remote.latency.p50_ms(), 1.0);
}

}  // namespace
}  // namespace sst::net
