#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "blockdev/mem_block_device.hpp"
#include "raid/mirrored_volume.hpp"
#include "raid/striped_volume.hpp"
#include "sim/simulator.hpp"

namespace sst::raid {
namespace {

constexpr Bytes kMember = 4 * MiB;

struct StripeHarness {
  sim::Simulator sim;
  blockdev::MemBlockDevice d0{sim, kMember, 10};
  blockdev::MemBlockDevice d1{sim, kMember, 11};
  blockdev::MemBlockDevice d2{sim, kMember, 12};
  StripedVolume vol{{&d0, &d1, &d2}, 64 * KiB};
};

TEST(Striped, CapacityIsSumOfWholeStripes) {
  StripeHarness h;
  EXPECT_EQ(h.vol.capacity(), 3 * kMember);
  EXPECT_EQ(h.vol.member_count(), 3u);
  EXPECT_EQ(h.vol.stripe_unit(), 64 * KiB);
}

TEST(Striped, LocateRoundRobinsStripeUnits) {
  StripeHarness h;
  EXPECT_EQ(h.vol.locate(0), (std::pair<std::size_t, ByteOffset>{0, 0}));
  EXPECT_EQ(h.vol.locate(64 * KiB), (std::pair<std::size_t, ByteOffset>{1, 0}));
  EXPECT_EQ(h.vol.locate(128 * KiB), (std::pair<std::size_t, ByteOffset>{2, 0}));
  EXPECT_EQ(h.vol.locate(192 * KiB), (std::pair<std::size_t, ByteOffset>{0, 64 * KiB}));
  EXPECT_EQ(h.vol.locate(70 * KiB), (std::pair<std::size_t, ByteOffset>{1, 6 * KiB}));
}

TEST(Striped, SmallRequestGoesToOneMember) {
  StripeHarness h;
  int done = 0;
  blockdev::BlockRequest req;
  req.offset = 64 * KiB;  // entirely on member 1
  req.length = 16 * KiB;
  req.on_complete = [&done](SimTime) { ++done; };
  h.vol.submit(std::move(req));
  h.sim.run();
  EXPECT_EQ(done, 1);
}

TEST(Striped, LargeRequestFansOutAndCompletesOnce) {
  StripeHarness h;
  int done = 0;
  blockdev::BlockRequest req;
  req.offset = 32 * KiB;
  req.length = 256 * KiB;  // spans 5 stripe units across all members
  req.on_complete = [&done](SimTime) { ++done; };
  h.vol.submit(std::move(req));
  h.sim.run();
  EXPECT_EQ(done, 1);
}

TEST(Striped, WriteReadRoundTripAcrossMembers) {
  StripeHarness h;
  std::vector<std::byte> out(256 * KiB);
  blockdev::fill_pattern(/*seed=*/777, 0, out.data(), out.size());
  blockdev::BlockRequest w;
  w.offset = 32 * KiB;
  w.length = out.size();
  w.op = IoOp::kWrite;
  w.data = out.data();
  h.vol.submit(std::move(w));
  h.sim.run();

  std::vector<std::byte> in(out.size());
  blockdev::BlockRequest r;
  r.offset = 32 * KiB;
  r.length = in.size();
  r.data = in.data();
  h.vol.submit(std::move(r));
  h.sim.run();
  EXPECT_EQ(in, out);
}

TEST(Striped, UnevenMembersUseSmallest) {
  sim::Simulator sim;
  blockdev::MemBlockDevice big(sim, 8 * MiB, 1);
  blockdev::MemBlockDevice small(sim, 2 * MiB + 3 * KiB, 2);
  StripedVolume vol({&big, &small}, 64 * KiB);
  // 2 MiB of whole stripes per member (the 3 KiB tail is unusable).
  EXPECT_EQ(vol.capacity(), 2 * (2 * MiB / (64 * KiB)) * 64 * KiB);
}

struct MirrorHarness {
  sim::Simulator sim;
  blockdev::MemBlockDevice d0{sim, kMember, 20};
  blockdev::MemBlockDevice d1{sim, kMember, 20};  // same seed: true mirrors
};

TEST(Mirrored, RoundRobinAlternatesReplicas) {
  MirrorHarness h;
  MirroredVolume vol({&h.d0, &h.d1}, ReadPolicy::kRoundRobin);
  EXPECT_EQ(vol.route_read(0), 0u);
  EXPECT_EQ(vol.route_read(0), 1u);
  EXPECT_EQ(vol.route_read(0), 0u);
}

TEST(Mirrored, RegionAffineIsStable) {
  MirrorHarness h;
  MirroredVolume vol({&h.d0, &h.d1}, ReadPolicy::kRegionAffine);
  const auto first = vol.route_read(10 * KiB);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(vol.route_read(10 * KiB + static_cast<ByteOffset>(i) * 64 * KiB), first);
  }
}

TEST(Mirrored, RegionAffineSpreadsRegions) {
  MirrorHarness h;
  MirroredVolume vol({&h.d0, &h.d1}, ReadPolicy::kRegionAffine);
  std::set<std::size_t> replicas;
  for (int r = 0; r < 16; ++r) {
    replicas.insert(vol.route_read(static_cast<ByteOffset>(r) * 64 * MiB % kMember));
  }
  // Regions wrap inside the tiny member here, but the scramble still uses
  // both replicas across distinct regions of a realistic volume; at
  // minimum the mapping is a valid replica index.
  for (const auto r : replicas) EXPECT_LT(r, 2u);
}

TEST(Mirrored, WriteReplicatesToAllMembers) {
  MirrorHarness h;
  MirroredVolume vol({&h.d0, &h.d1}, ReadPolicy::kRoundRobin);
  std::vector<std::byte> data(16 * KiB, std::byte{0x3C});
  int done = 0;
  blockdev::BlockRequest w;
  w.offset = 128 * KiB;
  w.length = data.size();
  w.op = IoOp::kWrite;
  w.data = data.data();
  w.on_complete = [&done](SimTime) { ++done; };
  vol.submit(std::move(w));
  h.sim.run();
  EXPECT_EQ(done, 1);  // single completion at the slowest replica
  EXPECT_EQ(h.d0.raw(128 * KiB)[0], std::byte{0x3C});
  EXPECT_EQ(h.d1.raw(128 * KiB)[0], std::byte{0x3C});
}

TEST(Mirrored, ReadAfterWriteConsistentFromEitherReplica) {
  MirrorHarness h;
  MirroredVolume vol({&h.d0, &h.d1}, ReadPolicy::kRoundRobin);
  std::vector<std::byte> data(8 * KiB, std::byte{0x77});
  blockdev::BlockRequest w;
  w.offset = 0;
  w.length = data.size();
  w.op = IoOp::kWrite;
  w.data = data.data();
  vol.submit(std::move(w));
  h.sim.run();
  // Two reads hit both replicas (round-robin); both must see the write.
  for (int i = 0; i < 2; ++i) {
    std::vector<std::byte> in(8 * KiB);
    blockdev::BlockRequest r;
    r.offset = 0;
    r.length = in.size();
    r.data = in.data();
    vol.submit(std::move(r));
    h.sim.run();
    EXPECT_EQ(in, data) << "replica " << i;
  }
}

TEST(Mirrored, CapacityIsSmallestMember) {
  sim::Simulator sim;
  blockdev::MemBlockDevice big(sim, 8 * MiB, 1);
  blockdev::MemBlockDevice small(sim, 2 * MiB, 1);
  MirroredVolume vol({&big, &small}, ReadPolicy::kRoundRobin);
  EXPECT_EQ(vol.capacity(), 2 * MiB);
}

TEST(Names, DescribeGeometry) {
  MirrorHarness h;
  StripedVolume sv({&h.d0, &h.d1}, 128 * KiB);
  EXPECT_EQ(sv.name(), "raid0[2x128K]");
  MirroredVolume mv({&h.d0, &h.d1}, ReadPolicy::kRoundRobin);
  EXPECT_EQ(mv.name(), "raid1[2]");
}

}  // namespace
}  // namespace sst::raid
