// RealContext reactor tests: timer-slab lifecycle (cancel / reschedule /
// generation reuse), run_until with interleaved completion drivers, the
// idle-sleep discipline (no 1 ms polling between timers), and the epoll
// multiplexing path driven by deterministic fake eventfd-backed drivers —
// asserting completions are neither lost nor delivered as spurious
// wakeups.
//
// These tests run against the wall clock, so they assert on counts and
// event ordering, never on precise durations; the only timing bound used
// is "well under the reactor's 1 s lost-wakeup safety ceiling", which a
// working event path beats by orders of magnitude.

#include <gtest/gtest.h>

#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "exec/real_context.hpp"

namespace sst::exec {
namespace {

TEST(RealContextTimerSlab, CancelledTasksNeverFireAndHandlesGoInert) {
  RealContext ctx;
  int fired = 0;
  std::vector<TaskHandle> handles;
  handles.reserve(100);
  for (int i = 0; i < 100; ++i) {
    handles.push_back(ctx.schedule_after(usec(200) + i, [&fired] { ++fired; }));
  }
  EXPECT_EQ(ctx.pending_tasks(), 100u);
  for (int i = 0; i < 100; i += 2) handles[i].cancel();
  EXPECT_EQ(ctx.pending_tasks(), 50u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(handles[i].pending(), i % 2 == 1) << "handle " << i;
  }
  // Double-cancel is a no-op, not a double-free of the slot.
  for (int i = 0; i < 100; i += 2) handles[i].cancel();
  EXPECT_EQ(ctx.pending_tasks(), 50u);

  ctx.run();
  EXPECT_EQ(fired, 50);
  EXPECT_EQ(ctx.pending_tasks(), 0u);
  for (const TaskHandle& h : handles) EXPECT_FALSE(h.pending());
}

TEST(RealContextTimerSlab, StaleHandlesStayInertAcrossSlotReuse) {
  RealContext ctx;
  int fired_round1 = 0;
  std::vector<TaskHandle> round1;
  round1.reserve(64);
  for (int i = 0; i < 64; ++i) {
    round1.push_back(ctx.schedule_after(usec(100), [&fired_round1] { ++fired_round1; }));
  }
  // Cancel half, fire the rest: every slot is recycled one way or the other.
  for (int i = 0; i < 64; i += 2) round1[i].cancel();
  ctx.run();
  EXPECT_EQ(fired_round1, 32);

  // Round 2 reuses the freed slots (the slab free-list hands them back),
  // bumping each slot's generation past the round-1 handles.
  int fired_round2 = 0;
  std::vector<TaskHandle> round2;
  round2.reserve(64);
  for (int i = 0; i < 64; ++i) {
    round2.push_back(ctx.schedule_after(usec(100), [&fired_round2] { ++fired_round2; }));
  }
  for (TaskHandle& stale : round1) {
    EXPECT_FALSE(stale.pending());
    stale.cancel();  // must not cancel the slot's new occupant
  }
  EXPECT_EQ(ctx.pending_tasks(), 64u);
  EXPECT_TRUE(std::all_of(round2.begin(), round2.end(),
                          [](const TaskHandle& h) { return h.pending(); }));
  ctx.run();
  EXPECT_EQ(fired_round2, 64);
}

TEST(RealContextTimerSlab, RescheduleFromCallbackAndCancelSiblingStress) {
  RealContext ctx;
  // Chains that re-schedule themselves from their own callback (recycling
  // their slot mid-fire) while every odd hop cancels a freshly scheduled
  // sibling — the allocate/cancel/reallocate churn the generation check
  // must survive.
  constexpr int kChains = 8;
  constexpr int kHops = 50;
  int hops_run = 0;
  int siblings_fired = 0;
  std::vector<int> remaining(kChains, kHops);
  std::function<void(int)> hop = [&](int chain) {
    ++hops_run;
    if (--remaining[chain] == 0) return;
    TaskHandle sibling =
        ctx.schedule_after(usec(5), [&siblings_fired] { ++siblings_fired; });
    if (remaining[chain] % 2 == 1) sibling.cancel();
    ctx.schedule_after(usec(10), [&hop, chain] { hop(chain); });
  };
  for (int c = 0; c < kChains; ++c) {
    ctx.schedule_after(usec(10), [&hop, c] { hop(c); });
  }
  ctx.run();
  EXPECT_EQ(hops_run, kChains * kHops);
  // Per chain: kHops - 1 siblings scheduled, the odd-remaining ones
  // cancelled (25 of 49), the rest fired.
  EXPECT_EQ(siblings_fired, kChains * 24);
  EXPECT_EQ(ctx.pending_tasks(), 0u);
}

TEST(RealContextIdle, SleepsBetweenTimersInsteadOfPolling) {
  RealContext ctx;
  // Five timers 20 ms apart with no I/O in flight: the reactor must sleep
  // until each deadline. The pre-event-driven reactor woke every 1 ms
  // (~100 wakeups here); the exact-sleep discipline needs one per gap.
  int fired = 0;
  for (int i = 1; i <= 5; ++i) {
    ctx.schedule_after(msec(20) * i, [&fired] { ++fired; });
  }
  ctx.run();
  EXPECT_EQ(fired, 5);
  const ReactorStats& stats = ctx.reactor_stats();
  EXPECT_GT(stats.idle_sleeps, 0u);
  EXPECT_LE(stats.wakeups, 25u)
      << "reactor woke " << stats.wakeups
      << " times for 5 spaced timers - polling crept back in";
}

/// Deterministic completion source without an eventfd: completions become
/// deliverable when the wall clock passes their deadline, so poll() is
/// exact and repeatable. Models a driver the reactor must poll (the
/// pre-epoll discipline).
class TimedPollDriver final : public CompletionDriver {
 public:
  explicit TimedPollDriver(RealContext& ctx) : ctx_(&ctx) {}

  void start(SimTime done_at) { deadlines_.push_back(done_at); }

  std::size_t poll(SimTime max_wait) override {
    std::size_t n = drain_due();
    if (n == 0 && max_wait > 0 && !deadlines_.empty()) {
      const SimTime next = *std::min_element(deadlines_.begin(), deadlines_.end());
      const SimTime t = ctx_->now();
      if (next > t) {
        std::this_thread::sleep_for(
            std::chrono::nanoseconds(std::min(max_wait, next - t)));
      }
      n = drain_due();
    }
    return n;
  }

  [[nodiscard]] std::size_t in_flight() const override { return deadlines_.size(); }

  std::size_t delivered = 0;

 private:
  std::size_t drain_due() {
    const SimTime t = ctx_->now();
    std::size_t n = 0;
    for (auto it = deadlines_.begin(); it != deadlines_.end();) {
      if (*it <= t) {
        it = deadlines_.erase(it);
        ++n;
      } else {
        ++it;
      }
    }
    delivered += n;
    return n;
  }

  RealContext* ctx_;
  std::vector<SimTime> deadlines_;
};

TEST(RealContextDrivers, RunUntilInterleavesTimersAndCompletions) {
  RealContext ctx;
  TimedPollDriver driver(ctx);
  ctx.add_driver(&driver);

  // Timers and completions landing interleaved on the same timeline; each
  // timer also starts the next I/O, so both sources stay active the whole
  // run and neither may starve the other.
  int timer_fires = 0;
  driver.start(ctx.now() + msec(3));
  for (int i = 1; i <= 4; ++i) {
    ctx.schedule_after(msec(5) * i, [&, i] {
      ++timer_fires;
      driver.start(ctx.now() + msec(3));
    });
  }

  // Consecutive run_until calls see contiguous time and keep delivering.
  const SimTime start = ctx.now();
  ctx.run_until(start + msec(12));
  EXPECT_GE(ctx.now(), start + msec(12));
  EXPECT_GE(timer_fires, 2);
  EXPECT_GE(driver.delivered, 2u);

  ctx.run_until(start + msec(40));
  EXPECT_EQ(timer_fires, 4);
  EXPECT_EQ(driver.delivered, 5u);
  EXPECT_EQ(driver.in_flight(), 0u);

  // A task scheduled in the past fires on the next turn (real contexts
  // clamp, unlike the simulator).
  bool past_fired = false;
  ctx.schedule_at(0, [&past_fired] { past_fired = true; });
  ctx.run_until(ctx.now() + usec(500));
  EXPECT_TRUE(past_fired);

  ctx.remove_driver(&driver);
}

/// Deterministic eventfd-backed completion source for the epoll path: a
/// producer (the test) deposits completions and signals the eventfd —
/// exactly the contract a multiplexed io_uring ring follows. in_flight()
/// counts deposits not yet delivered through poll().
class EventfdDriver final : public CompletionDriver {
 public:
  EventfdDriver() : efd_(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK)) {}
  ~EventfdDriver() override {
    if (efd_ >= 0) ::close(efd_);
  }

  /// Producer side (any thread): make `n` completions deliverable.
  void complete(std::uint64_t n) {
    ready_.fetch_add(n, std::memory_order_release);
    const std::uint64_t one = n;
    [[maybe_unused]] const ssize_t rc = ::write(efd_, &one, sizeof(one));
  }

  void expect(std::uint64_t n) { expected_.fetch_add(n, std::memory_order_relaxed); }

  std::size_t poll(SimTime) override {
    const std::uint64_t n = ready_.exchange(0, std::memory_order_acquire);
    expected_.fetch_sub(n, std::memory_order_relaxed);
    delivered += n;
    return n;
  }

  [[nodiscard]] std::size_t in_flight() const override {
    return expected_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] int event_fd() const override { return efd_; }

  std::uint64_t delivered = 0;

 private:
  int efd_ = -1;
  std::atomic<std::uint64_t> ready_{0};
  std::atomic<std::uint64_t> expected_{0};
};

TEST(RealContextEpoll, MultiplexedDriversLoseNoWakeupsAndReportNoSpurious) {
  RealContext ctx;
  EventfdDriver a;
  EventfdDriver b;
  ctx.add_driver(&a);
  ctx.add_driver(&b);

  // Both drivers busy for the whole run => every block is an epoll_wait
  // over both eventfds. Producers deliver in deterministic counts from a
  // helper thread (the reactor thread is inside run()).
  constexpr std::uint64_t kPerDriver = 200;
  a.expect(kPerDriver);
  b.expect(kPerDriver);
  // With both drivers busy and no producer yet, a bounded run must block
  // in one epoll_wait and return via the armed timerfd deadline — the
  // deterministic proof that the multiplexed path is in use. (During the
  // threaded phase below the sweep may legitimately find completions
  // already posted on every turn and never need to block.)
  ctx.run_until(ctx.now() + msec(2));
  EXPECT_GT(ctx.reactor_stats().epoll_waits, 0u);
  EXPECT_EQ(ctx.reactor_stats().spurious_wakeups, 0u);

  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kPerDriver / 4; ++i) {
      a.complete(2);
      b.complete(1);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      a.complete(2);
      b.complete(3);
    }
  });

  // run() exits only when both drivers drained: a lost wakeup would stall
  // against the reactor's 1 s safety ceiling instead of the event path.
  ctx.run();
  producer.join();

  EXPECT_EQ(a.delivered, kPerDriver);
  EXPECT_EQ(b.delivered, kPerDriver);
  EXPECT_EQ(a.in_flight(), 0u);
  EXPECT_EQ(b.in_flight(), 0u);

  const ReactorStats& stats = ctx.reactor_stats();
  EXPECT_EQ(stats.spurious_wakeups, 0u);
  EXPECT_GT(stats.epoll_waits, 0u);
  EXPECT_EQ(stats.completions, 2 * kPerDriver);

  ctx.remove_driver(&a);
  ctx.remove_driver(&b);
}

TEST(RealContextEpoll, TimerDeadlinesHoldWhileDriversAreBusy) {
  RealContext ctx;
  EventfdDriver driver;
  ctx.add_driver(&driver);

  // A busy driver that never completes must not block timer delivery: the
  // timerfd in the epoll set bounds every wait by the next deadline.
  driver.expect(1);
  int fired = 0;
  for (int i = 1; i <= 3; ++i) {
    ctx.schedule_after(msec(2) * i, [&fired] { ++fired; });
  }
  ctx.run_until(ctx.now() + msec(10));
  EXPECT_EQ(fired, 3);

  // Completing the outstanding I/O lets run() terminate.
  driver.complete(1);
  ctx.run();
  EXPECT_EQ(driver.delivered, 1u);
  EXPECT_EQ(ctx.reactor_stats().spurious_wakeups, 0u);

  ctx.remove_driver(&driver);
}

}  // namespace
}  // namespace sst::exec
