// The declarative topology layer: logical device-view math on TopologySpec,
// spec validation, and DeviceStackBuilder composing fault/retry/raid/network
// layers only when enabled.
#include <gtest/gtest.h>

#include "node/device_stack.hpp"
#include "node/topology.hpp"
#include "sim/simulator.hpp"

namespace sst {
namespace {

TEST(TopologySpec, LogicalViewMatchesRaidAggregation) {
  node::TopologySpec spec;
  spec.node = node::NodeConfig::medium();  // 8 disks
  const Bytes disk = spec.node.disk.geometry.capacity;

  EXPECT_EQ(spec.logical_device_count(), 8u);
  EXPECT_EQ(spec.logical_device_capacity(), disk);

  spec.stack.raid.kind = io::RaidSpec::Kind::kMirror;
  spec.stack.raid.mirror_ways = 2;
  EXPECT_EQ(spec.logical_device_count(), 4u);
  EXPECT_EQ(spec.logical_device_capacity(), disk);  // replicas, not capacity

  spec.stack.raid.kind = io::RaidSpec::Kind::kStripe;
  EXPECT_EQ(spec.logical_device_count(), 1u);
  EXPECT_EQ(spec.logical_device_capacity(), disk * 8);
}

TEST(TopologySpec, ValidateRejectsBadRaidShapes) {
  node::TopologySpec spec;
  spec.node = node::NodeConfig::medium();  // 8 disks
  EXPECT_TRUE(spec.validate().ok());

  spec.stack.raid.kind = io::RaidSpec::Kind::kMirror;
  spec.stack.raid.mirror_ways = 3;  // 8 % 3 != 0
  EXPECT_FALSE(spec.validate().ok());
  spec.stack.raid.mirror_ways = 1;
  EXPECT_FALSE(spec.validate().ok());
  spec.stack.raid.mirror_ways = 4;
  EXPECT_TRUE(spec.validate().ok());

  spec.stack.raid.kind = io::RaidSpec::Kind::kStripe;
  spec.stack.raid.stripe_unit = 100;  // not sector aligned
  EXPECT_FALSE(spec.validate().ok());
  spec.stack.raid.stripe_unit = 64 * KiB;
  EXPECT_TRUE(spec.validate().ok());
}

TEST(Topology, DefaultSpecExposesBareDevices) {
  sim::Simulator simulator;
  node::TopologySpec spec;
  spec.node = node::NodeConfig::medium();
  node::Topology topology(simulator, spec);

  ASSERT_EQ(topology.devices().size(), 8u);
  EXPECT_EQ(topology.stack().physical_device_count(), 8u);
  // No layer enabled: the logical view IS the node's devices, no wrappers.
  for (std::size_t i = 0; i < topology.devices().size(); ++i) {
    EXPECT_EQ(topology.devices()[i], topology.node().devices()[i]);
  }
  EXPECT_EQ(topology.stack().injector(), nullptr);
  EXPECT_FALSE(topology.stack().has_network());
  EXPECT_EQ(topology.stack().retry_totals().commands, 0u);
}

TEST(Topology, FaultSpecWrapsEveryDeviceAndEnablesDefaultRetry) {
  sim::Simulator simulator;
  node::TopologySpec spec;
  spec.node = node::NodeConfig::medium();
  spec.stack.fault.media_error_rate = 1e-4;
  ASSERT_TRUE(spec.stack.retry_enabled());  // faults imply default retries
  node::Topology topology(simulator, spec);

  ASSERT_EQ(topology.devices().size(), 8u);
  EXPECT_NE(topology.stack().injector(), nullptr);
  for (std::size_t i = 0; i < topology.devices().size(); ++i) {
    EXPECT_NE(topology.devices()[i], topology.node().devices()[i]);
  }
}

TEST(Topology, MirrorSpecGroupsConsecutiveDevices) {
  sim::Simulator simulator;
  node::TopologySpec spec;
  spec.node = node::NodeConfig::medium();
  spec.stack.raid.kind = io::RaidSpec::Kind::kMirror;
  spec.stack.raid.mirror_ways = 2;
  node::Topology topology(simulator, spec);

  ASSERT_EQ(topology.devices().size(), 4u);
  EXPECT_EQ(topology.stack().mirrors().size(), 4u);
  EXPECT_EQ(topology.device_capacity(0), spec.node.disk.geometry.capacity);
  EXPECT_EQ(topology.stack().mirror_totals().reads, 0u);
}

TEST(Topology, StripeSpecAggregatesIntoOneVolume) {
  sim::Simulator simulator;
  node::TopologySpec spec;
  spec.node = node::NodeConfig::medium();
  spec.stack.raid.kind = io::RaidSpec::Kind::kStripe;
  node::Topology topology(simulator, spec);

  ASSERT_EQ(topology.devices().size(), 1u);
  EXPECT_EQ(topology.device_capacity(0), spec.node.disk.geometry.capacity * 8);
}

TEST(DeviceStack, WrapSinkIsPassThroughWithoutNetwork) {
  sim::Simulator simulator;
  node::TopologySpec spec;
  node::Topology topology(simulator, spec);

  int delivered = 0;
  workload::RequestSink sink = [&delivered](core::ClientRequest) { ++delivered; };
  sink = topology.stack().wrap_sink(std::move(sink));
  EXPECT_EQ(topology.stack().remote(), nullptr);
  sink(core::ClientRequest{});
  EXPECT_EQ(delivered, 1);
}

TEST(DeviceStack, NetworkSpecRoutesThroughTheLink) {
  sim::Simulator simulator;
  node::TopologySpec spec;
  spec.stack.network = net::LinkParams{};
  node::Topology topology(simulator, spec);

  int delivered = 0;
  workload::RequestSink sink = [&delivered](core::ClientRequest req) {
    ++delivered;
    if (req.on_complete) req.on_complete(0, IoStatus::kOk);
  };
  sink = topology.stack().wrap_sink(std::move(sink));
  ASSERT_NE(topology.stack().remote(), nullptr);
  core::ClientRequest req;
  req.length = 64 * KiB;
  sink(std::move(req));
  EXPECT_EQ(delivered, 0);  // in flight on the simulated link
  simulator.run();
  EXPECT_EQ(delivered, 1);
}

}  // namespace
}  // namespace sst
