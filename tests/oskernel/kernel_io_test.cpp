#include "oskernel/kernel_io.hpp"

#include <gtest/gtest.h>

#include "blockdev/mem_block_device.hpp"
#include "sim/simulator.hpp"

namespace sst::oskernel {
namespace {

struct Harness {
  sim::Simulator sim;
  blockdev::MemBlockDevice dev;
  KernelIo kernel;

  explicit Harness(KernelIoParams p = small_params())
      : dev(sim, 64 * MiB, 1, usec(500), 100e6), kernel(sim, dev, p) {}

  static KernelIoParams small_params() {
    KernelIoParams p;
    p.page_cache_bytes = 1 * MiB;  // 256 pages: eviction is reachable
    p.scheduler = IoSchedKind::kNoop;
    return p;
  }

  int read(std::uint32_t pid, ByteOffset off, Bytes len) {
    int done = 0;
    kernel.read(pid, off, len, [&done](SimTime) { ++done; });
    sim.run();
    return done;
  }
};

TEST(KernelIo, ColdReadMissesThenCompletes) {
  Harness h;
  EXPECT_EQ(h.read(0, 0, 4 * KiB), 1);
  EXPECT_EQ(h.kernel.stats().page_misses, 1u);
  EXPECT_GE(h.kernel.stats().ios_dispatched, 1u);
}

TEST(KernelIo, WarmReadHits) {
  Harness h;
  h.read(0, 0, 4 * KiB);
  const auto ios = h.kernel.stats().ios_dispatched;
  EXPECT_EQ(h.read(0, 0, 4 * KiB), 1);
  EXPECT_GE(h.kernel.stats().page_hits, 1u);
  EXPECT_EQ(h.kernel.stats().ios_dispatched, ios);
}

TEST(KernelIo, MultiPageRequestCompletesOnce) {
  Harness h;
  EXPECT_EQ(h.read(0, 0, 64 * KiB), 1);
  EXPECT_GE(h.kernel.stats().page_misses, 16u);
}

TEST(KernelIo, SequentialReadsTriggerReadahead) {
  Harness h;
  h.read(0, 0, 4 * KiB);
  h.read(0, 4 * KiB, 4 * KiB);
  h.read(0, 8 * KiB, 4 * KiB);
  EXPECT_GT(h.kernel.stats().bytes_readahead, 0u);
  // Later sequential reads are cache hits thanks to the pipeline.
  const auto misses = h.kernel.stats().page_misses;
  h.read(0, 12 * KiB, 4 * KiB);
  EXPECT_EQ(h.kernel.stats().page_misses, misses);
}

TEST(KernelIo, RandomReadsResetWindow) {
  Harness h;
  h.read(0, 0, 4 * KiB);
  h.read(0, 10 * MiB, 4 * KiB);
  h.read(0, 20 * MiB, 4 * KiB);
  // Random access: read-ahead never grew past the initial window.
  EXPECT_LE(h.kernel.stats().bytes_readahead, 3 * 16 * KiB);
}

TEST(KernelIo, ReadAheadDisabledByZeroMax) {
  KernelIoParams p = Harness::small_params();
  p.max_readahead = 0;
  Harness h(p);
  h.read(0, 0, 4 * KiB);
  h.read(0, 4 * KiB, 4 * KiB);
  h.read(0, 8 * KiB, 4 * KiB);
  EXPECT_EQ(h.kernel.stats().bytes_readahead, 0u);
}

TEST(KernelIo, EvictionBoundsResidentPages) {
  Harness h;  // 256-page cache
  for (int i = 0; i < 600; ++i) {
    h.read(0, static_cast<ByteOffset>(i) * 100 * KiB, 4 * KiB);
  }
  EXPECT_LE(h.kernel.resident_pages(), 256u + 64u);  // capacity + inflight slack
  EXPECT_GT(h.kernel.stats().pages_evicted, 0u);
}

TEST(KernelIo, EvictedPageReReadCausesIo) {
  Harness h;
  h.read(0, 0, 4 * KiB);
  // Blow the cache.
  for (int i = 1; i <= 300; ++i) {
    h.read(0, static_cast<ByteOffset>(i) * 200 * KiB, 4 * KiB);
  }
  const auto ios = h.kernel.stats().ios_dispatched;
  h.read(0, 0, 4 * KiB);
  EXPECT_GT(h.kernel.stats().ios_dispatched, ios);
}

TEST(KernelIo, ConcurrentReadersOfSamePagesShareIo) {
  Harness h;
  int done = 0;
  // Two reads of the same cold page issued back-to-back: one I/O.
  h.kernel.read(0, 0, 4 * KiB, [&done](SimTime) { ++done; });
  h.kernel.read(1, 0, 4 * KiB, [&done](SimTime) { ++done; });
  h.sim.run();
  EXPECT_EQ(done, 2);
  EXPECT_EQ(h.kernel.stats().page_misses, 1u);
  EXPECT_EQ(h.kernel.stats().page_waits, 1u);
}

TEST(KernelIo, PerPidReadaheadStateIndependent) {
  Harness h;
  // pid 0 sequential, pid 1 random: only pid 0's window grows.
  for (int i = 0; i < 6; ++i) {
    h.read(0, static_cast<ByteOffset>(i) * 4 * KiB, 4 * KiB);
  }
  const auto ra_after_seq = h.kernel.stats().bytes_readahead;
  h.read(1, 30 * MiB, 4 * KiB);
  // One random read adds at most one initial window.
  EXPECT_LE(h.kernel.stats().bytes_readahead, ra_after_seq + 16 * KiB);
}

TEST(KernelIo, StatsReadsCounted) {
  Harness h;
  h.read(0, 0, 4 * KiB);
  h.read(0, 4 * KiB, 8 * KiB);
  EXPECT_EQ(h.kernel.stats().reads, 2u);
}

TEST(KernelIo, AnticipatorySchedulerIntegration) {
  KernelIoParams p = Harness::small_params();
  p.scheduler = IoSchedKind::kAnticipatory;
  Harness h(p);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(h.read(0, static_cast<ByteOffset>(i) * 4 * KiB, 4 * KiB), 1) << i;
  }
}

TEST(KernelIo, CfqSchedulerIntegration) {
  KernelIoParams p = Harness::small_params();
  p.scheduler = IoSchedKind::kCfq;
  Harness h(p);
  int done = 0;
  for (std::uint32_t pid = 0; pid < 4; ++pid) {
    h.kernel.read(pid, static_cast<ByteOffset>(pid) * 8 * MiB, 4 * KiB,
                  [&done](SimTime) { ++done; });
  }
  h.sim.run();
  EXPECT_EQ(done, 4);
}

}  // namespace
}  // namespace sst::oskernel
