#include "oskernel/iosched.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace sst::oskernel {
namespace {

BlockIo make(Lba lba, std::uint32_t pid = 0, SimTime arrival = 0) {
  BlockIo io;
  io.lba = lba;
  io.sectors = 8;
  io.pid = pid;
  io.arrival = arrival;
  return io;
}

std::vector<Lba> drain(IoScheduler& s, SimTime now, Lba head) {
  std::vector<Lba> order;
  while (auto io = s.select(now, head)) {
    order.push_back(io->lba);
    head = io->lba + io->sectors;
  }
  return order;
}

TEST(Noop, FifoOrder) {
  NoopScheduler s;
  for (Lba l : {Lba{500}, Lba{100}, Lba{300}}) s.add(make(l));
  EXPECT_EQ(drain(s, 0, 0), (std::vector<Lba>{500, 100, 300}));
}

TEST(Noop, BackMergeContiguousSamePid) {
  NoopScheduler s;
  int completions = 0;
  auto io1 = make(100, 1);
  io1.on_complete = [&](SimTime) { ++completions; };
  auto io2 = make(108, 1);
  io2.on_complete = [&](SimTime) { ++completions; };
  s.add(std::move(io1));
  s.add(std::move(io2));
  EXPECT_EQ(s.size(), 1u);
  auto io = s.select(0, 0);
  ASSERT_TRUE(io.has_value());
  EXPECT_EQ(io->sectors, 16u);
  io->on_complete(0);
  EXPECT_EQ(completions, 2);  // both callbacks chained
}

TEST(Noop, NoMergeAcrossPids) {
  NoopScheduler s;
  s.add(make(100, 1));
  s.add(make(108, 2));
  EXPECT_EQ(s.size(), 2u);
}

TEST(Noop, NoMergeNonContiguous) {
  NoopScheduler s;
  s.add(make(100, 1));
  s.add(make(200, 1));
  EXPECT_EQ(s.size(), 2u);
}

TEST(Deadline, ElevatorOrderWhenNoExpiry) {
  DeadlineScheduler s;
  for (Lba l : {Lba{500}, Lba{100}, Lba{300}}) s.add(make(l, 0, 0));
  EXPECT_EQ(drain(s, usec(1), 200), (std::vector<Lba>{300, 500, 100}));
}

TEST(Deadline, ExpiredRequestJumpsQueue) {
  DeadlineScheduler s(msec(500));
  s.add(make(900, 0, /*arrival=*/0));     // expires at 500 ms
  s.add(make(100, 0, msec(400)));
  // At t=600ms the LBA-900 request expired; despite head at 0 it goes first.
  auto io = s.select(msec(600), 0);
  ASSERT_TRUE(io.has_value());
  EXPECT_EQ(io->lba, 900u);
}

TEST(Deadline, NotExpiredUsesElevator) {
  DeadlineScheduler s(msec(500));
  s.add(make(900, 0, 0));
  s.add(make(100, 0, 0));
  auto io = s.select(msec(100), 0);
  ASSERT_TRUE(io.has_value());
  EXPECT_EQ(io->lba, 100u);
}

TEST(Anticipatory, AnticipatesFastProcess) {
  AnticipatoryScheduler s;
  // Complete a request from pid 1 with a short-think history.
  s.add(make(100, 1, usec(10)));
  auto io = s.select(usec(10), 0);
  ASSERT_TRUE(io.has_value());
  s.on_complete(1, 108, usec(100));
  // pid 2 has work queued, but the scheduler waits for pid 1.
  s.add(make(90000, 2, usec(110)));
  EXPECT_FALSE(s.select(usec(120), 108).has_value());
  EXPECT_EQ(s.wakeup_hint(), usec(100) + msec(6));
  // pid 1's next nearby read arrives: anticipation pays off.
  s.add(make(108, 1, usec(300)));
  auto next = s.select(usec(300), 108);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->lba, 108u);
  EXPECT_EQ(s.anticipation_hits(), 1u);
}

TEST(Anticipatory, TimeoutFallsBackToElevator) {
  AnticipatoryScheduler s;
  s.add(make(100, 1, 0));
  (void)s.select(0, 0);
  s.on_complete(1, 108, usec(100));
  s.add(make(90000, 2, usec(110)));
  // Past the 6 ms window: give up and serve pid 2.
  auto io = s.select(usec(100) + msec(7), 108);
  ASSERT_TRUE(io.has_value());
  EXPECT_EQ(io->lba, 90000u);
  EXPECT_EQ(s.anticipation_timeouts(), 1u);
}

TEST(Anticipatory, SlowThinkerDisablesAnticipation) {
  AnticipatoryScheduler s;
  // Build a slow think-time history for pid 1 (inter-arrival ~50 ms).
  SimTime t = 0;
  for (int i = 0; i < 6; ++i) {
    s.add(make(100 + static_cast<Lba>(i) * 8, 1, t));
    (void)s.select(t, 0);
    s.on_complete(1, 108 + static_cast<Lba>(i) * 8, t + usec(500));
    t += msec(50);
  }
  // After the last completion the scheduler must NOT anticipate.
  s.add(make(90000, 2, t));
  auto io = s.select(t, 0);
  ASSERT_TRUE(io.has_value());
  EXPECT_EQ(io->lba, 90000u);
}

TEST(Anticipatory, FarRequestFromSamePidDoesNotSatisfyAnticipation) {
  AnticipatoryScheduler s(msec(6), /*near_sectors=*/100);
  s.add(make(100, 1, 0));
  (void)s.select(0, 0);
  s.on_complete(1, 108, usec(10));
  s.add(make(500000, 1, usec(20)));  // same pid, far away
  EXPECT_FALSE(s.select(usec(30), 108).has_value());  // still waiting
}

TEST(Cfq, RoundRobinAcrossPids) {
  CfqScheduler s(/*quantum=*/1);
  s.add(make(100, 1));
  s.add(make(200, 1));
  s.add(make(300, 2));
  s.add(make(400, 2));
  std::vector<std::uint32_t> pids;
  while (auto io = s.select(0, 0)) pids.push_back(io->pid);
  EXPECT_EQ(pids, (std::vector<std::uint32_t>{1, 2, 1, 2}));
}

TEST(Cfq, QuantumKeepsPidActive) {
  CfqScheduler s(/*quantum=*/2);
  s.add(make(100, 1));
  s.add(make(108, 1));
  s.add(make(300, 2));
  std::vector<std::uint32_t> pids;
  while (auto io = s.select(0, 0)) pids.push_back(io->pid);
  EXPECT_EQ(pids, (std::vector<std::uint32_t>{1, 1, 2}));
}

TEST(Cfq, SizeTracksTotal) {
  CfqScheduler s;
  s.add(make(1, 1));
  s.add(make(2, 2));
  EXPECT_EQ(s.size(), 2u);
  (void)s.select(0, 0);
  EXPECT_EQ(s.size(), 1u);
}

TEST(Cfq, NewWorkAfterDrainIsServed) {
  CfqScheduler s;
  s.add(make(1, 1));
  (void)s.select(0, 0);
  EXPECT_FALSE(s.select(0, 0).has_value());
  s.add(make(2, 1));
  EXPECT_TRUE(s.select(0, 0).has_value());
}

TEST(Factory, KindsAndNames) {
  EXPECT_STREQ(to_string(IoSchedKind::kNoop), "noop");
  EXPECT_STREQ(to_string(IoSchedKind::kAnticipatory), "anticipatory");
  EXPECT_STREQ(to_string(IoSchedKind::kCfq), "cfq");
  EXPECT_STREQ(to_string(IoSchedKind::kDeadline), "deadline");
  EXPECT_NE(make_io_scheduler(IoSchedKind::kNoop), nullptr);
  EXPECT_NE(make_io_scheduler(IoSchedKind::kDeadline), nullptr);
  EXPECT_NE(make_io_scheduler(IoSchedKind::kAnticipatory), nullptr);
  EXPECT_NE(make_io_scheduler(IoSchedKind::kCfq), nullptr);
}

}  // namespace
}  // namespace sst::oskernel
