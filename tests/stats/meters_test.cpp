#include "stats/meters.hpp"

#include <gtest/gtest.h>

namespace sst::stats {
namespace {

TEST(ThroughputMeter, AccumulatesBytes) {
  ThroughputMeter m;
  m.add(1000);
  m.add(2000);
  EXPECT_EQ(m.total_bytes(), 3000u);
}

TEST(ThroughputMeter, MbpsOverWindow) {
  ThroughputMeter m;
  m.add(50'000'000);  // 50 MB
  EXPECT_DOUBLE_EQ(m.mbps(sec(0), sec(1)), 50.0);
  EXPECT_DOUBLE_EQ(m.mbps(sec(0), sec(2)), 25.0);
}

TEST(ThroughputMeter, DegenerateWindowIsZero) {
  ThroughputMeter m;
  m.add(1000);
  EXPECT_DOUBLE_EQ(m.mbps(sec(1), sec(1)), 0.0);
  EXPECT_DOUBLE_EQ(m.mbps(sec(2), sec(1)), 0.0);
}

TEST(ThroughputMeter, ResetClears) {
  ThroughputMeter m;
  m.add(123);
  m.reset();
  EXPECT_EQ(m.total_bytes(), 0u);
}

TEST(Summary, EmptyDefaults) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(Summary, MeanMinMax) {
  Summary s;
  for (double v : {4.0, 2.0, 6.0}) s.add(v);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 6.0);
}

TEST(Summary, VarianceMatchesKnownValue) {
  Summary s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  // Sample variance of this classic data set is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-9);
}

TEST(Summary, SingleSampleVarianceZero) {
  Summary s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Counter, IncrementAndReset) {
  Counter c;
  c.inc();
  c.inc(4);
  EXPECT_EQ(c.value(), 5u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

}  // namespace
}  // namespace sst::stats
