#include "stats/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace sst::stats {
namespace {

TEST(Cell, StringRendering) {
  EXPECT_EQ(cell_to_string(Cell{std::string("abc")}), "abc");
}

TEST(Cell, IntRendering) {
  EXPECT_EQ(cell_to_string(Cell{std::int64_t{42}}), "42");
}

TEST(Cell, DoubleRenderingTwoDecimals) {
  EXPECT_EQ(cell_to_string(Cell{3.14159}), "3.14");
  EXPECT_EQ(cell_to_string(Cell{2.0}), "2.00");
}

TEST(Table, PrintContainsTitleColumnsAndRows) {
  Table t("Fig X");
  t.set_columns({"streams", "MBps"});
  t.add_row({std::int64_t{10}, 42.5});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Fig X"), std::string::npos);
  EXPECT_NE(out.find("streams"), std::string::npos);
  EXPECT_NE(out.find("42.50"), std::string::npos);
}

TEST(Table, NoteIsPrinted) {
  Table t("T");
  t.set_note("hello note").set_columns({"a"}).add_row({std::int64_t{1}});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("hello note"), std::string::npos);
}

TEST(Table, CsvFormat) {
  Table t("T");
  t.set_columns({"a", "b"});
  t.add_row({std::int64_t{1}, std::string("x")});
  t.add_row({std::int64_t{2}, std::string("y")});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,x\n2,y\n");
}

TEST(Table, RowAccessors) {
  Table t("T");
  t.set_columns({"a"});
  t.add_row({std::int64_t{7}});
  ASSERT_EQ(t.rows(), 1u);
  EXPECT_EQ(std::get<std::int64_t>(t.row(0)[0]), 7);
  EXPECT_EQ(t.columns().size(), 1u);
  EXPECT_EQ(t.title(), "T");
}

TEST(Table, ChainedBuilders) {
  Table t("T");
  t.set_columns({"a"}).add_row({1.0}).add_row({2.0});
  EXPECT_EQ(t.rows(), 2u);
}

}  // namespace
}  // namespace sst::stats
