#include "stats/histogram.hpp"

#include <gtest/gtest.h>

namespace sst::stats {
namespace {

TEST(Histogram, EmptyIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean_ms(), 0.0);
  EXPECT_DOUBLE_EQ(h.p50_ms(), 0.0);
  EXPECT_DOUBLE_EQ(h.max_ms(), 0.0);
}

TEST(Histogram, SingleSample) {
  LatencyHistogram h;
  h.add(msec(10));
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.mean_ms(), 10.0);
  EXPECT_DOUBLE_EQ(h.max_ms(), 10.0);
  // Quantiles land inside the bucket containing 10ms (~12% wide).
  EXPECT_NEAR(h.p50_ms(), 10.0, 1.5);
}

TEST(Histogram, MeanIsExact) {
  LatencyHistogram h;
  h.add(msec(1));
  h.add(msec(3));
  EXPECT_DOUBLE_EQ(h.mean_ms(), 2.0);
}

TEST(Histogram, QuantileOrderingHolds) {
  LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) h.add(usec(static_cast<std::uint64_t>(i) * 100));
  EXPECT_LE(h.p50_ms(), h.p95_ms());
  EXPECT_LE(h.p95_ms(), h.p99_ms());
  EXPECT_LE(h.p99_ms(), h.max_ms());
}

TEST(Histogram, QuantileAccuracyWithinBucketError) {
  LatencyHistogram h;
  // Uniform 0.1ms..100ms in 0.1ms steps: p50 ~ 50ms.
  for (int i = 1; i <= 1000; ++i) h.add(usec(static_cast<std::uint64_t>(i) * 100));
  EXPECT_NEAR(h.p50_ms(), 50.0, 7.0);   // ~12% bucket error
  EXPECT_NEAR(h.p95_ms(), 95.0, 13.0);
}

TEST(Histogram, SubMicrosecondSamplesGoToFirstBucket) {
  LatencyHistogram h;
  h.add(nsec(10));
  h.add(nsec(500));
  EXPECT_EQ(h.count(), 2u);
  EXPECT_LT(h.p99_ms(), 0.001);  // below 1us
}

TEST(Histogram, VeryLargeSampleClampsToLastBucket) {
  LatencyHistogram h;
  h.add(sec(100000));  // beyond the bucket range
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GT(h.max_ms(), 0.0);
}

TEST(Histogram, ResetClears) {
  LatencyHistogram h;
  h.add(msec(5));
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean_ms(), 0.0);
  EXPECT_DOUBLE_EQ(h.max_ms(), 0.0);
}

TEST(Histogram, MergeCombinesCountsAndMax) {
  LatencyHistogram a, b;
  a.add(msec(1));
  b.add(msec(9));
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean_ms(), 5.0);
  EXPECT_DOUBLE_EQ(a.max_ms(), 9.0);
}

TEST(Histogram, MergeWithEmptyIsIdentity) {
  LatencyHistogram a, empty;
  a.add(msec(2));
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.mean_ms(), 2.0);
}

TEST(Histogram, DebugStringMentionsStats) {
  LatencyHistogram h;
  h.add(msec(3));
  const auto s = h.debug_string();
  EXPECT_NE(s.find("n=1"), std::string::npos);
  EXPECT_NE(s.find("mean="), std::string::npos);
}

TEST(Histogram, ExportedBucketsSumToCount) {
  LatencyHistogram h;
  // Latencies spanning the full bucket range: sub-microsecond (bucket 0),
  // microseconds, milliseconds, seconds, and beyond the last bucket bound.
  h.add(0);
  h.add(500);
  for (std::uint64_t i = 1; i <= 200; ++i) h.add(usec(i * 37));
  for (std::uint64_t i = 1; i <= 50; ++i) h.add(msec(i));
  h.add(sec(2));
  h.add(sec(5000));

  const auto buckets = h.nonzero_buckets();
  ASSERT_FALSE(buckets.empty());
  std::uint64_t total = 0;
  for (const auto& b : buckets) {
    EXPECT_GT(b.count, 0u);
    EXPECT_LT(b.lower_ns, b.upper_ns);
    total += b.count;
  }
  EXPECT_EQ(total, h.count());
}

TEST(Histogram, BucketIndexApiCoversAllSamples) {
  LatencyHistogram h;
  for (std::uint64_t i = 1; i <= 1000; ++i) h.add(usec(i));
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < LatencyHistogram::bucket_count(); ++i) {
    total += h.bucket(i).count;
  }
  EXPECT_EQ(total, h.count());
}

TEST(Histogram, EmptyQuantileIsZeroForAllQ) {
  LatencyHistogram h;
  EXPECT_DOUBLE_EQ(h.quantile_ms(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile_ms(0.999), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile_ms(1.0), 0.0);
  EXPECT_DOUBLE_EQ(h.p999_ms(), 0.0);
  EXPECT_DOUBLE_EQ(h.total_ms(), 0.0);
}

TEST(Histogram, SingleSampleQuantilesStayInBucket) {
  LatencyHistogram h;
  h.add(msec(10));
  // With one sample every quantile interpolates inside the same bucket and
  // q=1.0 must not exceed the recorded maximum.
  EXPECT_NEAR(h.quantile_ms(0.001), 10.0, 1.5);
  EXPECT_NEAR(h.p999_ms(), 10.0, 1.5);
  EXPECT_LE(h.quantile_ms(1.0), h.max_ms() + 1e-9);
  EXPECT_GT(h.quantile_ms(1.0), 0.0);
}

TEST(Histogram, FullQuantileClampsToMax) {
  LatencyHistogram h;
  for (int i = 1; i <= 100; ++i) h.add(msec(static_cast<std::uint64_t>(i)));
  EXPECT_LE(h.quantile_ms(1.0), h.max_ms() + 1e-9);
  EXPECT_LE(h.p999_ms(), h.quantile_ms(1.0) + 1e-9);
  EXPECT_GE(h.p999_ms(), h.p99_ms() - 1e-9);
}

TEST(Histogram, P999TracksTailSample) {
  LatencyHistogram h;
  // 998 fast samples and two 100x outliers: p99 stays low, p999 (rank 999
  // of 1000) must land in the outlier bucket.
  for (int i = 0; i < 998; ++i) h.add(msec(1));
  h.add(msec(100));
  h.add(msec(100));
  EXPECT_LT(h.p99_ms(), 5.0);
  EXPECT_GT(h.p999_ms(), 50.0);
}

TEST(Histogram, TotalSumsSamples) {
  LatencyHistogram h;
  h.add(msec(2));
  h.add(msec(3));
  h.add(usec(500));
  EXPECT_DOUBLE_EQ(h.total_ms(), 5.5);
}

TEST(Histogram, SubtractLeavesDeltaWindow) {
  LatencyHistogram h;
  h.add(msec(1));
  h.add(msec(2));
  LatencyHistogram snapshot = h;  // rolling-gauge prev snapshot
  h.add(msec(50));
  h.add(msec(60));
  LatencyHistogram delta = h;
  delta.subtract(snapshot);
  EXPECT_EQ(delta.count(), 2u);
  EXPECT_NEAR(delta.mean_ms(), 55.0, 1e-6);
  // Only the new window's samples remain, so its p50 is in the 50-60ms range.
  EXPECT_GT(delta.p50_ms(), 40.0);
}

TEST(Histogram, SubtractAllLeavesEmpty) {
  LatencyHistogram h;
  h.add(msec(7));
  LatencyHistogram delta = h;
  delta.subtract(h);
  EXPECT_EQ(delta.count(), 0u);
  EXPECT_DOUBLE_EQ(delta.quantile_ms(0.999), 0.0);
}

TEST(Histogram, MonotoneQuantileFunction) {
  LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.add(msec(static_cast<std::uint64_t>(1 + i % 20)));
  double prev = 0.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double v = h.quantile_ms(q);
    EXPECT_GE(v, prev - 1e-9) << "q=" << q;
    prev = v;
  }
}

}  // namespace
}  // namespace sst::stats
