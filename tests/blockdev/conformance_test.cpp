// Parameterized BlockDevice conformance suite.
//
// Every device implementation — RAM-backed, simulated controller/disk,
// the delay/fault/retry wrappers, and (when built) the io_uring real-I/O
// backend — must honour the same contract: sector-aligned bounds-checked
// requests, deterministic pattern-byte content for reads, completion
// callbacks that fire exactly once with a status and a non-decreasing
// timestamp, and data integrity regardless of completion order.
//
// Each harness owns its execution context plus whatever machinery the
// device needs (controller, injector, backing file) and exposes the
// device through a uniform interface. The uring harness formats a
// temporary pattern file the same way scripts/mkpattern.py does.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "blockdev/block_device.hpp"
#include "blockdev/delayed_device.hpp"
#include "blockdev/mem_block_device.hpp"
#include "blockdev/sim_block_device.hpp"
#include "controller/controller.hpp"
#include "core/reliable_device.hpp"
#include "fault/faulty_device.hpp"
#include "fault/injector.hpp"
#include "sim/simulator.hpp"

#if defined(SST_WITH_URING)
#include <unistd.h>

#include <cstdio>
#include <fstream>

#include "blockdev/uring_block_device.hpp"
#include "exec/real_context.hpp"
#endif

namespace sst::blockdev {
namespace {

constexpr std::uint64_t kSeed = 42;
constexpr Bytes kMinCapacity = 1 * MiB;  ///< smallest harness capacity

/// One device-under-test plus the machinery that drives it. `run_all()`
/// advances the harness's execution context until every submitted request
/// has completed (virtual time for sim harnesses, the completion reactor
/// for the real backend).
class DeviceHarness {
 public:
  virtual ~DeviceHarness() = default;
  virtual BlockDevice& device() = 0;
  virtual exec::ExecutionContext& ctx() = 0;
  virtual void run_all() = 0;
  /// False for timing-only devices (SimBlockDevice): writes complete but
  /// are not stored, so write-read round-trips are skipped.
  [[nodiscard]] virtual bool persists_writes() const = 0;
};

struct MemHarness final : DeviceHarness {
  sim::Simulator sim;
  MemBlockDevice dev{sim, kMinCapacity, kSeed};
  BlockDevice& device() override { return dev; }
  exec::ExecutionContext& ctx() override { return sim; }
  void run_all() override { sim.run(); }
  [[nodiscard]] bool persists_writes() const override { return true; }
};

struct SimDiskHarness final : DeviceHarness {
  sim::Simulator sim;
  ctrl::Controller ctrl{sim, ctrl::ControllerParams{}, 0};
  std::unique_ptr<SimBlockDevice> dev;
  SimDiskHarness() {
    disk::DiskParams dp;
    dp.geometry.capacity = 2 * GiB;
    const auto ch = ctrl.attach_disk(dp);
    dev = std::make_unique<SimBlockDevice>(ctrl, ch, kSeed);
  }
  BlockDevice& device() override { return *dev; }
  exec::ExecutionContext& ctx() override { return sim; }
  void run_all() override { sim.run(); }
  [[nodiscard]] bool persists_writes() const override { return false; }
};

/// Delays every 3rd request by 5 ms, so back-to-back submissions complete
/// out of submission order — the reordering stressor for the suite.
struct DelayedHarness final : DeviceHarness {
  sim::Simulator sim;
  MemBlockDevice inner{sim, kMinCapacity, kSeed};
  DelayedDevice dev{sim, inner, msec(5), /*every_nth=*/3};
  BlockDevice& device() override { return dev; }
  exec::ExecutionContext& ctx() override { return sim; }
  void run_all() override { sim.run(); }
  [[nodiscard]] bool persists_writes() const override { return true; }
};

/// Fault wrapper with all rates zero: the conformance contract must hold
/// through the pass-through path (completions still funnel through the
/// injector bookkeeping).
struct FaultyHarness final : DeviceHarness {
  sim::Simulator sim;
  MemBlockDevice inner{sim, kMinCapacity, kSeed};
  fault::FaultInjector injector{fault::FaultParams{}};
  fault::FaultyDevice dev{sim, inner, injector, /*device_index=*/0};
  BlockDevice& device() override { return dev; }
  exec::ExecutionContext& ctx() override { return sim; }
  void run_all() override { sim.run(); }
  [[nodiscard]] bool persists_writes() const override { return true; }
};

struct ReliableHarness final : DeviceHarness {
  sim::Simulator sim;
  MemBlockDevice inner{sim, kMinCapacity, kSeed};
  core::ReliableDevice dev{sim, inner, core::RetryParams{}, /*device_index=*/0};
  BlockDevice& device() override { return dev; }
  exec::ExecutionContext& ctx() override { return sim; }
  void run_all() override { sim.run(); }
  [[nodiscard]] bool persists_writes() const override { return true; }
};

#if defined(SST_WITH_URING)
/// Real-I/O harness: a 4 MiB pattern-formatted temp file behind
/// UringBlockDevice. run_all() spins the RealContext reactor until the
/// ring drains. With `multiplex` the ring registers an eventfd and the
/// reactor delivers completions through its epoll path — the multi-device
/// configuration — so the conformance contract is exercised on both
/// blocking disciplines.
struct UringHarness final : DeviceHarness {
  std::string path;
  exec::RealContext rctx;
  std::unique_ptr<UringBlockDevice> dev;

  explicit UringHarness(bool multiplex = false) {
    char tmpl[] = "/tmp/sst_conformance_XXXXXX";
    const int fd = ::mkstemp(tmpl);
    if (fd < 0) throw std::runtime_error("mkstemp failed");
    ::close(fd);
    path = tmpl;
    constexpr Bytes kFile = 4 * MiB;
    std::vector<std::byte> chunk(1 * MiB);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    for (Bytes off = 0; off < kFile; off += chunk.size()) {
      fill_pattern(kSeed, off, chunk.data(), chunk.size());
      out.write(reinterpret_cast<const char*>(chunk.data()),
                static_cast<std::streamsize>(chunk.size()));
    }
    out.close();
    UringParams params;
    params.path = path;
    params.queue_depth = 32;
    params.seed = kSeed;
    params.multiplex = multiplex;
    auto result = UringBlockDevice::open(rctx, params);
    if (!result.ok()) {
      throw std::runtime_error("uring open failed: " + result.error().message);
    }
    dev = std::move(result.value());
  }

  ~UringHarness() override {
    dev.reset();  // drains + deregisters before the context goes away
    if (!path.empty()) ::unlink(path.c_str());
  }

  BlockDevice& device() override { return *dev; }
  exec::ExecutionContext& ctx() override { return rctx; }
  void run_all() override { rctx.run(); }
  [[nodiscard]] bool persists_writes() const override { return true; }
};
#endif  // SST_WITH_URING

struct HarnessSpec {
  const char* name;
  std::function<std::unique_ptr<DeviceHarness>()> make;
  friend std::ostream& operator<<(std::ostream& os, const HarnessSpec& s) {
    return os << s.name;
  }
};

class BlockDeviceConformance : public testing::TestWithParam<HarnessSpec> {
 protected:
  void SetUp() override { harness_ = GetParam().make(); }
  DeviceHarness& h() { return *harness_; }

  /// Submit one request and run to completion; returns (count, status, time).
  struct Outcome {
    int completions = 0;
    IoStatus status = IoStatus::kOk;
    SimTime done = 0;
  };
  Outcome roundtrip(ByteOffset offset, Bytes length, IoOp op, std::byte* data) {
    Outcome out;
    BlockRequest req;
    req.offset = offset;
    req.length = length;
    req.op = op;
    req.id = 1;
    req.data = data;
    req.on_complete = [&out](SimTime t, IoStatus s) {
      ++out.completions;
      out.status = s;
      out.done = t;
    };
    h().device().submit(std::move(req));
    h().run_all();
    return out;
  }

 private:
  std::unique_ptr<DeviceHarness> harness_;
};

TEST_P(BlockDeviceConformance, ReportsNonZeroCapacityAndName) {
  EXPECT_GE(h().device().capacity(), kMinCapacity);
  EXPECT_EQ(h().device().capacity() % kSectorSize, 0u);
  EXPECT_FALSE(h().device().name().empty());
}

TEST_P(BlockDeviceConformance, ReadFillsSeededPattern) {
  constexpr ByteOffset kOffset = 256 * KiB;
  std::vector<std::byte> buf(64 * KiB, std::byte{0xEE});
  const Outcome out = roundtrip(kOffset, buf.size(), IoOp::kRead, buf.data());
  ASSERT_EQ(out.completions, 1);
  EXPECT_TRUE(io_ok(out.status));
  ByteOffset mismatch = 0;
  EXPECT_TRUE(check_pattern(kSeed, kOffset, buf.data(), buf.size(), &mismatch))
      << "first mismatch at device offset " << kOffset + mismatch;
}

TEST_P(BlockDeviceConformance, WriteThenReadBackRoundTrips) {
  if (!h().persists_writes()) {
    GTEST_SKIP() << "timing-only device: writes complete but are not stored";
  }
  constexpr ByteOffset kOffset = 64 * KiB;
  // Content from a different seed, so a read that regenerates the device
  // pattern instead of returning stored bytes fails loudly.
  std::vector<std::byte> wbuf(8 * KiB);
  fill_pattern(/*seed=*/991, kOffset, wbuf.data(), wbuf.size());
  const Outcome wr = roundtrip(kOffset, wbuf.size(), IoOp::kWrite, wbuf.data());
  ASSERT_EQ(wr.completions, 1);
  ASSERT_TRUE(io_ok(wr.status));

  std::vector<std::byte> rbuf(wbuf.size(), std::byte{0});
  const Outcome rd = roundtrip(kOffset, rbuf.size(), IoOp::kRead, rbuf.data());
  ASSERT_EQ(rd.completions, 1);
  EXPECT_TRUE(io_ok(rd.status));
  EXPECT_EQ(std::memcmp(rbuf.data(), wbuf.data(), wbuf.size()), 0);
}

TEST_P(BlockDeviceConformance, CompletionsFireOnceWithOkStatusAndValidTime) {
  constexpr int kRequests = 8;
  struct Record {
    int completions = 0;
    IoStatus status = IoStatus::kOk;
    SimTime submit = 0;
    SimTime done = 0;
  };
  std::vector<Record> records(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    Record& rec = records[i];
    rec.submit = h().ctx().now();
    BlockRequest req;
    req.offset = static_cast<ByteOffset>(i) * 16 * KiB;
    req.length = 4 * KiB;
    req.op = IoOp::kRead;
    req.id = static_cast<RequestId>(i + 1);
    req.on_complete = [&rec](SimTime t, IoStatus s) {
      ++rec.completions;
      rec.status = s;
      rec.done = t;
    };
    h().device().submit(std::move(req));
  }
  h().run_all();
  for (int i = 0; i < kRequests; ++i) {
    SCOPED_TRACE("request " + std::to_string(i));
    EXPECT_EQ(records[i].completions, 1);
    EXPECT_TRUE(io_ok(records[i].status));
    EXPECT_GE(records[i].done, records[i].submit);
  }
}

TEST_P(BlockDeviceConformance, DataIntegrityHoldsUnderCompletionReordering) {
  // 16 scattered single-page reads with distinct destination buffers. The
  // delayed harness actively reorders completions; the others may reorder
  // (uring) or not — either way every buffer must end up holding the
  // pattern for its own offset, never a neighbour's.
  constexpr int kRequests = 16;
  constexpr Bytes kLen = 4 * KiB;
  std::vector<std::vector<std::byte>> bufs(kRequests);
  std::vector<ByteOffset> offsets(kRequests);
  std::vector<int> completion_order;
  completion_order.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    offsets[i] = static_cast<ByteOffset>((i * 37) % 240) * 4 * KiB;
    bufs[i].assign(kLen, std::byte{0xEE});
    BlockRequest req;
    req.offset = offsets[i];
    req.length = kLen;
    req.op = IoOp::kRead;
    req.id = static_cast<RequestId>(i + 1);
    req.data = bufs[i].data();
    req.on_complete = [&completion_order, i](SimTime, IoStatus) {
      completion_order.push_back(i);
    };
    h().device().submit(std::move(req));
  }
  h().run_all();
  ASSERT_EQ(completion_order.size(), static_cast<std::size_t>(kRequests));
  for (int i = 0; i < kRequests; ++i) {
    SCOPED_TRACE("request " + std::to_string(i) + " at offset " +
                 std::to_string(offsets[i]));
    EXPECT_TRUE(check_pattern(kSeed, offsets[i], bufs[i].data(), kLen));
  }
}

TEST_P(BlockDeviceConformance, LastSectorIsReachable) {
  const ByteOffset offset = h().device().capacity() - kSectorSize;
  std::vector<std::byte> buf(kSectorSize, std::byte{0xEE});
  const Outcome out = roundtrip(offset, buf.size(), IoOp::kRead, buf.data());
  ASSERT_EQ(out.completions, 1);
  EXPECT_TRUE(io_ok(out.status));
  EXPECT_TRUE(check_pattern(kSeed, offset, buf.data(), buf.size()));
}

TEST_P(BlockDeviceConformance, DataLessRequestsCompleteForTimingOnlyCallers) {
  const Outcome out = roundtrip(0, 4 * KiB, IoOp::kRead, nullptr);
  ASSERT_EQ(out.completions, 1);
  EXPECT_TRUE(io_ok(out.status));
}

std::vector<HarnessSpec> conformance_specs() {
  std::vector<HarnessSpec> specs = {
      {"mem", [] { return std::unique_ptr<DeviceHarness>(new MemHarness); }},
      {"sim", [] { return std::unique_ptr<DeviceHarness>(new SimDiskHarness); }},
      {"delayed", [] { return std::unique_ptr<DeviceHarness>(new DelayedHarness); }},
      {"faulty_zero_rate",
       [] { return std::unique_ptr<DeviceHarness>(new FaultyHarness); }},
      {"reliable", [] { return std::unique_ptr<DeviceHarness>(new ReliableHarness); }},
  };
#if defined(SST_WITH_URING)
  specs.push_back(
      {"uring", [] { return std::unique_ptr<DeviceHarness>(new UringHarness); }});
  specs.push_back({"uring_multiplex", [] {
                     return std::unique_ptr<DeviceHarness>(
                         new UringHarness(/*multiplex=*/true));
                   }});
#endif
  return specs;
}

INSTANTIATE_TEST_SUITE_P(AllDevices, BlockDeviceConformance,
                         testing::ValuesIn(conformance_specs()),
                         [](const testing::TestParamInfo<HarnessSpec>& info) {
                           return std::string(info.param.name);
                         });

// Alignment/bounds violations are programming errors and assert in debug
// builds. Death tests only make sense when asserts are live.
#if !defined(NDEBUG) && defined(GTEST_HAS_DEATH_TEST) && GTEST_HAS_DEATH_TEST
using BlockDeviceContractDeathTest = testing::Test;

TEST(BlockDeviceContractDeathTest, UnalignedOffsetAsserts) {
  MemHarness h;
  BlockRequest req;
  req.offset = 100;  // not sector aligned
  req.length = kSectorSize;
  EXPECT_DEATH(h.dev.submit(std::move(req)), "offset");
}

TEST(BlockDeviceContractDeathTest, UnalignedLengthAsserts) {
  MemHarness h;
  BlockRequest req;
  req.offset = 0;
  req.length = 100;  // not sector aligned
  EXPECT_DEATH(h.dev.submit(std::move(req)), "length");
}

TEST(BlockDeviceContractDeathTest, OutOfBoundsAsserts) {
  MemHarness h;
  BlockRequest req;
  req.offset = h.dev.capacity();
  req.length = kSectorSize;
  EXPECT_DEATH(h.dev.submit(std::move(req)), "capacity");
}
#endif  // !NDEBUG && GTEST_HAS_DEATH_TEST

}  // namespace
}  // namespace sst::blockdev
