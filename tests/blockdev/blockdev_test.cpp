#include "blockdev/block_device.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "blockdev/mem_block_device.hpp"
#include "blockdev/sim_block_device.hpp"
#include "controller/controller.hpp"
#include "sim/simulator.hpp"

namespace sst::blockdev {
namespace {

TEST(Pattern, Deterministic) {
  EXPECT_EQ(pattern_byte(1, 100), pattern_byte(1, 100));
}

TEST(Pattern, VariesWithSeedAndOffset) {
  int diff_seed = 0, diff_off = 0;
  for (ByteOffset o = 0; o < 256; ++o) {
    if (pattern_byte(1, o) != pattern_byte(2, o)) ++diff_seed;
    if (pattern_byte(1, o) != pattern_byte(1, o + 1)) ++diff_off;
  }
  EXPECT_GT(diff_seed, 200);
  EXPECT_GT(diff_off, 200);
}

TEST(Pattern, FillAndCheckRoundTrip) {
  std::vector<std::byte> buf(4096);
  fill_pattern(7, 1234, buf.data(), buf.size());
  EXPECT_TRUE(check_pattern(7, 1234, buf.data(), buf.size()));
}

TEST(Pattern, CheckDetectsCorruption) {
  std::vector<std::byte> buf(512);
  fill_pattern(7, 0, buf.data(), buf.size());
  buf[100] = static_cast<std::byte>(~static_cast<unsigned>(buf[100]));
  ByteOffset mismatch = 0;
  EXPECT_FALSE(check_pattern(7, 0, buf.data(), buf.size(), &mismatch));
  EXPECT_EQ(mismatch, 100u);
}

TEST(Pattern, CheckDetectsOffsetShift) {
  // The classic buffer-management bug: right data, wrong position.
  std::vector<std::byte> buf(512);
  fill_pattern(7, 512, buf.data(), buf.size());
  EXPECT_FALSE(check_pattern(7, 0, buf.data(), buf.size()));
}

struct MemHarness {
  sim::Simulator sim;
  MemBlockDevice dev{sim, 1 * MiB, /*seed=*/42};
};

TEST(MemDevice, InitializedWithPattern) {
  MemHarness h;
  std::vector<std::byte> buf(4096);
  BlockRequest req;
  req.offset = 8192;
  req.length = buf.size();
  req.data = buf.data();
  bool done = false;
  req.on_complete = [&done](SimTime) { done = true; };
  h.dev.submit(std::move(req));
  h.sim.run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(check_pattern(42, 8192, buf.data(), buf.size()));
}

TEST(MemDevice, WriteReadRoundTrip) {
  MemHarness h;
  std::vector<std::byte> wbuf(512, std::byte{0xAB});
  BlockRequest w;
  w.offset = 1024;
  w.length = 512;
  w.op = IoOp::kWrite;
  w.data = wbuf.data();
  h.dev.submit(std::move(w));
  h.sim.run();

  std::vector<std::byte> rbuf(512);
  BlockRequest r;
  r.offset = 1024;
  r.length = 512;
  r.data = rbuf.data();
  h.dev.submit(std::move(r));
  h.sim.run();
  EXPECT_EQ(rbuf, wbuf);
}

TEST(MemDevice, CompletionIsAsynchronousAndOrdered) {
  MemHarness h;
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    BlockRequest req;
    req.offset = static_cast<ByteOffset>(i) * 4096;
    req.length = 4096;
    req.on_complete = [&order, i](SimTime) { order.push_back(i); };
    h.dev.submit(std::move(req));
    order.push_back(-1 - i);  // submission marker
  }
  h.sim.run();
  // All submissions precede all completions; completions serialize FIFO.
  EXPECT_EQ(order, (std::vector<int>{-1, -2, -3, 0, 1, 2}));
}

TEST(MemDevice, LatencyModel) {
  sim::Simulator sim;
  MemBlockDevice dev(sim, 1 * MiB, 0, /*fixed_latency=*/usec(100), /*rate=*/100e6);
  SimTime done = 0;
  BlockRequest req;
  req.offset = 0;
  req.length = 102'400;  // 200 sectors: 1.024 ms at 100 MB/s
  req.on_complete = [&done](SimTime t) { done = t; };
  dev.submit(std::move(req));
  sim.run();
  EXPECT_NEAR(static_cast<double>(done), static_cast<double>(usec(1124)),
              static_cast<double>(usec(10)));
}

TEST(SimDevice, ReadFillsPattern) {
  sim::Simulator sim;
  ctrl::Controller ctrl(sim, ctrl::ControllerParams{}, 0);
  disk::DiskParams dp;
  dp.geometry.capacity = 2 * GiB;
  const auto ch = ctrl.attach_disk(dp);
  SimBlockDevice dev(ctrl, ch, /*seed=*/7);
  EXPECT_EQ(dev.capacity(), ctrl.disk(0).geometry().capacity_bytes());

  std::vector<std::byte> buf(64 * KiB);
  BlockRequest req;
  req.offset = 512 * KiB;
  req.length = buf.size();
  req.data = buf.data();
  bool done = false;
  req.on_complete = [&done](SimTime) { done = true; };
  dev.submit(std::move(req));
  sim.run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(check_pattern(7, 512 * KiB, buf.data(), buf.size()));
}

TEST(SimDevice, NameIdentifiesPath) {
  sim::Simulator sim;
  ctrl::Controller ctrl(sim, ctrl::ControllerParams{}, 2);
  disk::DiskParams dp;
  dp.geometry.capacity = 2 * GiB;
  const auto ch = ctrl.attach_disk(dp);
  SimBlockDevice dev(ctrl, ch, 0);
  EXPECT_EQ(dev.name(), "sim:ctrl2:disk0");
}

TEST(SimDevice, TimingOnlyWhenNoBuffer) {
  sim::Simulator sim;
  ctrl::Controller ctrl(sim, ctrl::ControllerParams{}, 0);
  disk::DiskParams dp;
  dp.geometry.capacity = 2 * GiB;
  SimBlockDevice dev(ctrl, ctrl.attach_disk(dp), 0);
  bool done = false;
  BlockRequest req;
  req.offset = 0;
  req.length = 64 * KiB;
  req.on_complete = [&done](SimTime) { done = true; };
  dev.submit(std::move(req));
  sim.run();
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace sst::blockdev
