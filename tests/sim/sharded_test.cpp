// ShardedEngine: conservative-lookahead barrier, mailbox protocol, and the
// determinism contract. The horizon cases pin the delivery semantics for
// cross-shard events landing exactly at, just after, and (contract
// violation) just before the lookahead horizon: global timestamp order is
// preserved and same-timestamp ties break by the receiver's deterministic
// sequence numbers.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "sim/sharded.hpp"

namespace sst::sim {
namespace {

constexpr SimTime kLookahead = usec(100);

struct LogEntry {
  SimTime at = 0;
  std::string label;

  bool operator==(const LogEntry& other) const {
    return at == other.at && label == other.label;
  }
};

TEST(ShardedEngine, SingleShardIsPlainPassthrough) {
  ShardedEngine engine(1, 0);
  std::vector<LogEntry> log;
  Simulator& sim = engine.shard(0);
  sim.schedule_at(usec(5), [&]() { log.push_back({sim.now(), "b"}); });
  sim.schedule_at(usec(1), [&]() { log.push_back({sim.now(), "a"}); });
  engine.run_until(usec(10));
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], (LogEntry{usec(1), "a"}));
  EXPECT_EQ(log[1], (LogEntry{usec(5), "b"}));
  EXPECT_EQ(engine.stats().windows, 0u);
  EXPECT_EQ(engine.stats().cross_shard_events, 0u);
  EXPECT_EQ(engine.now(), usec(10));
}

TEST(ShardedEngine, CrossShardDeliveryLandsAtExactTimestamp) {
  ShardedEngine engine(2, kLookahead);
  std::vector<LogEntry> log;
  Simulator& receiver = engine.shard(0);
  // Sender event at t=30us posts delivery at exactly t + L.
  engine.shard(1).schedule_at(usec(30), [&]() {
    const SimTime when = engine.shard(1).now() + kLookahead;
    engine.post(1, 0, when, [&]() { log.push_back({receiver.now(), "x"}); });
  });
  engine.run_until(usec(300));
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], (LogEntry{usec(130), "x"}));
  EXPECT_EQ(engine.stats().cross_shard_events, 1u);
  EXPECT_EQ(engine.stats().horizon_violations, 0u);
}

// The three horizon cases in one scenario. Sender (shard 1) runs an event
// at exactly a window start W and posts three messages:
//   at:     when = W + L       — exactly the horizon: legal minimum
//   after:  when = W + L + 1ns — just past the horizon: legal
//   before: when = W + L - 1ns — just inside the window: violates the
//           contract, clamped to the barrier time W + L and counted
// The receiver also schedules its own local events at W + L - 1ns and
// W + L, bracketing the deliveries. Expected global order: the local
// W+L-1ns event, then the three W+L events in deterministic tie-break
// order — local first (its sequence number was assigned during the
// window), then mailbox deliveries in fixed drain order (at, after was
// posted later so its clamp... 'after' fires last at W+L+1ns).
TEST(ShardedEngine, HorizonEdgesPreserveOrderAndTieBreak) {
  ShardedEngine engine(2, kLookahead);
  const SimTime window_start = 0;  // first window: W = 0
  const SimTime horizon = window_start + kLookahead;
  std::vector<LogEntry> log;
  Simulator& receiver = engine.shard(0);
  const auto record = [&](const char* label) {
    return [&log, &receiver, label]() { log.push_back({receiver.now(), label}); };
  };
  receiver.schedule_at(horizon - 1, record("local-before"));
  receiver.schedule_at(horizon, record("local-at"));
  engine.shard(1).schedule_at(window_start, [&]() {
    engine.post(1, 0, horizon, record("msg-at"));
    engine.post(1, 0, horizon + 1, record("msg-after"));
    engine.post(1, 0, horizon - 1, record("msg-before"));  // violation
  });
  engine.run_until(usec(300));

  ASSERT_EQ(log.size(), 5u);
  // Global timestamp order holds; the violating message was clamped to the
  // barrier (horizon), never delivered into the receiver's past.
  for (std::size_t i = 1; i < log.size(); ++i) {
    EXPECT_LE(log[i - 1].at, log[i].at) << "timestamp order broken at " << i;
  }
  EXPECT_EQ(log[0], (LogEntry{horizon - 1, "local-before"}));
  // Tie-break at the horizon: the receiver's own event got its sequence
  // number first (scheduled before the barrier drain), then the mailbox
  // envelopes in their posted (FIFO) order.
  EXPECT_EQ(log[1], (LogEntry{horizon, "local-at"}));
  EXPECT_EQ(log[2], (LogEntry{horizon, "msg-at"}));
  EXPECT_EQ(log[3], (LogEntry{horizon, "msg-before"}));  // clamped up
  EXPECT_EQ(log[4], (LogEntry{horizon + 1, "msg-after"}));
  EXPECT_EQ(engine.stats().horizon_violations, 1u);
  EXPECT_EQ(engine.stats().cross_shard_events, 3u);
}

TEST(ShardedEngine, DeliveryAtFinalDeadlineStillExecutes) {
  // Simulator::run_until is deadline-inclusive; the barrier loop repeats
  // the final window so a message landing exactly at the deadline runs.
  ShardedEngine engine(2, kLookahead);
  std::vector<LogEntry> log;
  const SimTime deadline = usec(200);
  Simulator& receiver = engine.shard(0);
  engine.shard(1).schedule_at(deadline - kLookahead, [&]() {
    engine.post(1, 0, deadline, [&]() { log.push_back({receiver.now(), "edge"}); });
  });
  engine.run_until(deadline);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], (LogEntry{deadline, "edge"}));
}

// Shards 1 and 2 both stream messages into shard 0 at identical
// timestamps; shard 0 relays every delivery back out. Exercises multiple
// windows, contending same-timestamp deliveries from different senders,
// and posts made from inside shard events. Each shard records into its own
// log (shards may run concurrently; sharing one vector would be a race).
std::vector<std::vector<LogEntry>> run_ping_pong() {
  ShardedEngine engine(3, kLookahead);
  std::vector<std::vector<LogEntry>> logs(3);
  // Each sender emits 4 messages spaced half a window apart.
  for (std::uint32_t sender : {1u, 2u}) {
    for (int i = 0; i < 4; ++i) {
      const SimTime at = i * kLookahead / 2;
      engine.shard(sender).schedule_at(at, [&engine, &logs, sender, at]() {
        engine.post(sender, 0, at + kLookahead, [&engine, &logs, sender]() {
          Simulator& rx = engine.shard(0);
          logs[0].push_back({rx.now(), "from" + std::to_string(sender)});
          // Relay onward to the other sender one horizon later.
          const std::uint32_t other = sender == 1 ? 2 : 1;
          engine.post(0, other, rx.now() + engine.lookahead(),
                      [&engine, &logs, other]() {
                        logs[other].push_back({engine.shard(other).now(),
                                               "relay" + std::to_string(other)});
                      });
        });
      });
    }
  }
  engine.run_until(usec(1000));
  return logs;
}

TEST(ShardedEngine, SameTimestampCrossTrafficIsDeterministic) {
  const auto first = run_ping_pong();
  const auto second = run_ping_pong();
  // 8 inbound messages on shard 0, 4 relays to each sender.
  ASSERT_EQ(first[0].size(), 8u);
  ASSERT_EQ(first[1].size(), 4u);
  ASSERT_EQ(first[2].size(), 4u);
  // Identical interleaving on every shard — including ties, where both
  // senders deliver at the same instant and the fixed (receiver, sender)
  // drain order decides.
  EXPECT_EQ(first, second);
  // Per-shard logs are timestamp-ordered (each shard's execution is
  // sequential and time-monotone).
  for (const auto& log : first) {
    for (std::size_t i = 1; i < log.size(); ++i) {
      EXPECT_LE(log[i - 1].at, log[i].at);
    }
  }
}

TEST(ShardedEngine, WindowCountMatchesLookahead) {
  ShardedEngine engine(2, kLookahead);
  // Keep both shards busy so every window does work.
  for (int i = 0; i < 20; ++i) {
    engine.shard(0).schedule_at(i * usec(50), []() {});
    engine.shard(1).schedule_at(i * usec(50), []() {});
  }
  engine.run_until(usec(1000));
  EXPECT_EQ(engine.now(), usec(1000));
  EXPECT_EQ(engine.shard(0).now(), usec(1000));
  EXPECT_EQ(engine.shard(1).now(), usec(1000));
  // 1000us / 100us lookahead = 10 windows (no deadline-edge repeats: no
  // cross traffic at all).
  EXPECT_EQ(engine.stats().windows, 10u);
  EXPECT_EQ(engine.stats().cross_shard_events, 0u);
}

}  // namespace
}  // namespace sst::sim
