#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

namespace sst::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator s;
  EXPECT_EQ(s.now(), 0u);
  EXPECT_TRUE(s.empty());
}

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(usec(30), [&] { order.push_back(3); });
  s.schedule_at(usec(10), [&] { order.push_back(1); });
  s.schedule_at(usec(20), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, TiesBreakInSchedulingOrder) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.schedule_at(usec(10), [&order, i] { order.push_back(i); });
  }
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ClockAdvancesToEventTime) {
  Simulator s;
  SimTime seen = 0;
  s.schedule_at(msec(5), [&] { seen = s.now(); });
  s.run();
  EXPECT_EQ(seen, msec(5));
  EXPECT_EQ(s.now(), msec(5));
}

TEST(Simulator, ScheduleAfterIsRelative) {
  Simulator s;
  SimTime seen = 0;
  s.schedule_at(msec(1), [&] {
    s.schedule_after(msec(2), [&] { seen = s.now(); });
  });
  s.run();
  EXPECT_EQ(seen, msec(3));
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator s;
  int fired = 0;
  s.schedule_at(msec(1), [&] { ++fired; });
  s.schedule_at(msec(10), [&] { ++fired; });
  s.run_until(msec(5));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), msec(5));
  EXPECT_FALSE(s.empty());
}

TEST(Simulator, RunUntilIncludesEventsExactlyAtDeadline) {
  Simulator s;
  int fired = 0;
  s.schedule_at(msec(5), [&] { ++fired; });
  s.run_until(msec(5));
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, RunUntilAdvancesClockEvenWhenQueueDrains) {
  Simulator s;
  s.run_until(sec(1));
  EXPECT_EQ(s.now(), sec(1));
}

TEST(Simulator, ConsecutiveRunUntilSeeContiguousTime) {
  Simulator s;
  s.run_until(msec(10));
  s.schedule_after(msec(5), [] {});
  std::uint64_t ran = s.run_until(msec(20));
  EXPECT_EQ(ran, 1u);
  EXPECT_EQ(s.now(), msec(20));
}

TEST(Simulator, StepExecutesOneEvent) {
  Simulator s;
  int fired = 0;
  s.schedule_at(1, [&] { ++fired; });
  s.schedule_at(2, [&] { ++fired; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(s.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(s.step());
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator s;
  int fired = 0;
  auto h = s.schedule_at(msec(1), [&] { ++fired; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  s.run();
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, CancelUpdatesPendingCount) {
  Simulator s;
  auto h1 = s.schedule_at(1, [] {});
  auto h2 = s.schedule_at(2, [] {});
  EXPECT_EQ(s.pending_events(), 2u);
  h1.cancel();
  EXPECT_EQ(s.pending_events(), 1u);
  EXPECT_FALSE(s.empty());
  h2.cancel();
  EXPECT_TRUE(s.empty());
}

TEST(Simulator, CancelIsIdempotent) {
  Simulator s;
  auto h = s.schedule_at(1, [] {});
  h.cancel();
  h.cancel();
  EXPECT_TRUE(s.empty());
}

TEST(Simulator, HandleNotPendingAfterFire) {
  Simulator s;
  auto h = s.schedule_at(1, [] {});
  s.run();
  EXPECT_FALSE(h.pending());
  h.cancel();  // harmless after firing
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator s;
  int depth = 0;
  std::function<void()> chain = [&]() {
    if (++depth < 10) s.schedule_after(usec(1), chain);
  };
  s.schedule_at(0, chain);
  s.run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(s.executed_events(), 10u);
}

TEST(Simulator, ExecutedEventsCounter) {
  Simulator s;
  for (int i = 0; i < 7; ++i) s.schedule_at(i, [] {});
  s.run();
  EXPECT_EQ(s.executed_events(), 7u);
}

TEST(Simulator, RunReturnsEventCount) {
  Simulator s;
  for (int i = 0; i < 4; ++i) s.schedule_at(i, [] {});
  EXPECT_EQ(s.run(), 4u);
}

TEST(Simulator, DefaultHandleIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();  // no-op
}

TEST(Simulator, StaleHandleDoesNotAffectRecycledSlot) {
  Simulator s;
  int first = 0;
  int second = 0;
  auto h1 = s.schedule_at(1, [&] { ++first; });
  s.run();
  EXPECT_FALSE(h1.pending());
  // The slab recycles h1's slot for the next event; the stale handle must
  // neither observe nor cancel its replacement.
  auto h2 = s.schedule_at(2, [&] { ++second; });
  h1.cancel();
  EXPECT_TRUE(h2.pending());
  s.run();
  EXPECT_EQ(first, 1);
  EXPECT_EQ(second, 1);
}

TEST(Simulator, HandleOutlivesDrainedSimulator) {
  Simulator s;
  auto fired = s.schedule_at(1, [] {});
  auto cancelled = s.schedule_at(2, [] {});
  cancelled.cancel();
  s.run();
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(fired.pending());
  EXPECT_FALSE(cancelled.pending());
  fired.cancel();  // both harmless long after the queue drained
  cancelled.cancel();
  EXPECT_EQ(s.executed_events(), 1u);
}

TEST(Simulator, PendingCountExactUnderMixedCancelAndFire) {
  Simulator s;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 10; ++i) handles.push_back(s.schedule_at(i + 1, [] {}));
  EXPECT_EQ(s.pending_events(), 10u);
  for (std::size_t i = 0; i < handles.size(); i += 2) handles[i].cancel();
  EXPECT_EQ(s.pending_events(), 5u);
  EXPECT_TRUE(s.step());  // fires t=2, skipping the cancelled t=1
  EXPECT_EQ(s.now(), 2u);
  EXPECT_EQ(s.pending_events(), 4u);
  handles[1].cancel();  // already fired: no effect on the count
  EXPECT_EQ(s.pending_events(), 4u);
  handles[3].cancel();  // t=4, still pending
  EXPECT_EQ(s.pending_events(), 3u);
  s.run();
  EXPECT_EQ(s.pending_events(), 0u);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.executed_events(), 4u);  // t=2 (stepped) + t=6, 8, 10
}

TEST(Simulator, OversizedCallableUsesHeapFallback) {
  Simulator s;
  std::array<std::uint64_t, 32> payload{};  // 256 bytes: past inline storage
  for (std::size_t i = 0; i < payload.size(); ++i) payload[i] = i;
  std::uint64_t sum = 0;
  s.schedule_at(1, [payload, &sum] {
    for (const auto v : payload) sum += v;
  });
  s.run();
  EXPECT_EQ(sum, 496u);
}

TEST(Simulator, CancelOversizedCallableReleasesIt) {
  Simulator s;
  std::array<char, 200> big{};
  auto h = s.schedule_at(1, [big] { (void)big; });
  h.cancel();
  s.run();
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.executed_events(), 0u);
}

// ----- timer-wheel structural paths ---------------------------------------

// Beyond 2^48 ns the wheel hands events to the overflow heap; they must
// still fire in time order, interleaved with wheel-resident events.
TEST(Simulator, FarFutureEventsOverflowAndFireInOrder) {
  constexpr SimTime kHorizon = SimTime{1} << 48;
  Simulator s;
  std::vector<int> order;
  s.schedule_at(kHorizon + 500, [&] { order.push_back(3); });
  s.schedule_at(usec(1), [&] { order.push_back(0); });
  s.schedule_at(kHorizon + 100, [&] { order.push_back(2); });
  s.schedule_at(kHorizon - 100, [&] { order.push_back(1); });
  EXPECT_GE(s.overflow_events(), 2u);
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(s.now(), kHorizon + 500);
}

// Ties at one timestamp break by scheduling order even when the events
// reached that timestamp through different structures: the overflow heap
// (scheduled from t=0, beyond the horizon) vs. a near-cursor wheel bucket
// (scheduled late, from close by). Regression test for tie-breaking that
// depended on container insertion order.
TEST(Simulator, TiesBreakInSchedulingOrderAcrossStructures) {
  constexpr SimTime kTarget = (SimTime{1} << 48) + 12345;
  Simulator s;
  std::vector<int> order;
  // seq 0: far-future -> overflow heap.
  s.schedule_at(kTarget, [&] { order.push_back(0); });
  // seq 1: stepping stone that schedules the same timestamp from nearby.
  s.schedule_at(kTarget - 1000, [&s, &order] {
    // seq 2: lands in a low wheel level relative to the advanced cursor.
    s.schedule_at(kTarget, [&order] { order.push_back(2); });
  });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 2}));
  EXPECT_EQ(s.now(), kTarget);
}

// Events spread across wheel levels cascade toward level 0 as the clock
// advances and still fire in time order.
TEST(Simulator, MultiLevelCascadePreservesOrder) {
  Simulator s;
  std::vector<SimTime> order;
  // Times hitting levels 0..4: 64^L-ish spacings, scheduled scrambled.
  const std::vector<SimTime> times = {3,       70,        5000,      260000,
                                      9000000, 300000000, 200000000, 64};
  std::vector<SimTime> scrambled = {9000000, 3, 260000, 300000000,
                                    70,      5000, 200000000, 64};
  for (const SimTime t : scrambled) {
    s.schedule_at(t, [&order, t] { order.push_back(t); });
  }
  s.run();
  std::vector<SimTime> sorted = times;
  std::sort(sorted.begin(), sorted.end());
  ASSERT_EQ(order.size(), sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(order[i], sorted[i]);
  EXPECT_GT(s.wheel_cascades(), 0u);
}

TEST(Simulator, CancelWorksInEveryResidence) {
  constexpr SimTime kHorizon = SimTime{1} << 48;
  Simulator s;
  int fired = 0;
  auto wheel_low = s.schedule_at(10, [&] { ++fired; });
  auto wheel_high = s.schedule_at(usec(500), [&] { ++fired; });
  auto heap = s.schedule_at(kHorizon + 1, [&] { ++fired; });
  EXPECT_EQ(s.pending_events(), 3u);
  wheel_low.cancel();
  wheel_high.cancel();
  heap.cancel();
  EXPECT_EQ(s.pending_events(), 0u);
  EXPECT_TRUE(s.empty());
  s.run();
  EXPECT_EQ(fired, 0);
}

// An event may cancel a peer that shares its timestamp and already sits in
// the dispatch batch; the peer must not fire.
TEST(Simulator, CancelDuringSameTimestampBatch) {
  Simulator s;
  int fired = 0;
  EventHandle victim;
  s.schedule_at(100, [&] { victim.cancel(); });
  victim = s.schedule_at(100, [&] { ++fired; });
  s.schedule_at(100, [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.executed_events(), 2u);
}

// Zero-delay events scheduled while a timestamp's batch is firing join the
// same simulated instant, ordered after the already-collected events.
TEST(Simulator, ZeroDelayFromBatchFiresAtSameInstant) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(50, [&] {
    order.push_back(0);
    s.schedule_after(0, [&s, &order] {
      order.push_back(2);
      EXPECT_EQ(s.now(), 50u);
    });
  });
  s.schedule_at(50, [&] { order.push_back(1); });
  s.run_until(50);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

// Differential test: the wheel + overflow heap + batch machinery must agree
// with a trivial reference model (stable sort by time then scheduling
// order) across randomized schedule/cancel/run_until rounds, including
// zero delays, shared timestamps, and horizon-crossing jumps.
TEST(Simulator, DifferentialAgainstReferenceModel) {
  struct RefEvent {
    SimTime when;
    std::uint64_t seq;
    int id;
    bool cancelled;
  };
  Simulator s;
  std::vector<RefEvent> ref;
  std::vector<int> fired;
  std::vector<int> ref_fired;
  std::vector<std::size_t> live;  // indices into ref, also holding handles
  std::vector<EventHandle> handles;
  std::uint64_t rng = 0x9e3779b97f4a7c15ull;
  auto next_rand = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  std::uint64_t seq = 0;
  int next_id = 0;
  const SimTime horizon = SimTime{1} << 48;

  for (int round = 0; round < 40; ++round) {
    // Schedule a burst with adversarial delays.
    const int burst = 1 + static_cast<int>(next_rand() % 24);
    for (int i = 0; i < burst; ++i) {
      SimTime delay = 0;
      switch (next_rand() % 6) {
        case 0: delay = 0; break;
        case 1: delay = next_rand() % 4; break;  // collide within a bucket
        case 2: delay = next_rand() % 1000; break;
        case 3: delay = next_rand() % msec(1); break;
        case 4: delay = next_rand() % sec(10); break;
        default: delay = horizon + next_rand() % sec(1); break;  // overflow
      }
      const int id = next_id++;
      const SimTime when = s.now() + delay;
      handles.push_back(s.schedule_at(when, [&fired, id] { fired.push_back(id); }));
      ref.push_back(RefEvent{when, seq++, id, false});
      live.push_back(ref.size() - 1);
    }
    // Cancel a random subset of still-live events.
    for (std::size_t i = 0; i < live.size();) {
      if (next_rand() % 5 == 0) {
        handles[i].cancel();
        ref[live[i]].cancelled = true;
        handles.erase(handles.begin() + static_cast<std::ptrdiff_t>(i));
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
    // Advance: sometimes a bounded window, sometimes to drain.
    const bool drain = next_rand() % 7 == 0;
    const SimTime deadline = drain ? ~SimTime{0} : s.now() + next_rand() % sec(2);
    if (drain) {
      s.run();
    } else {
      s.run_until(deadline);
    }
    // Reference: fire everything due by the deadline in (when, seq) order.
    std::vector<std::size_t> due;
    for (std::size_t i = 0; i < live.size();) {
      const RefEvent& e = ref[live[i]];
      if (!e.cancelled && e.when <= deadline) {
        due.push_back(live[i]);
        handles.erase(handles.begin() + static_cast<std::ptrdiff_t>(i));
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
    std::sort(due.begin(), due.end(), [&ref](std::size_t a, std::size_t b) {
      if (ref[a].when != ref[b].when) return ref[a].when < ref[b].when;
      return ref[a].seq < ref[b].seq;
    });
    for (const std::size_t i : due) ref_fired.push_back(ref[i].id);
    ASSERT_EQ(fired, ref_fired) << "diverged in round " << round;
    ASSERT_EQ(s.pending_events(), live.size()) << "round " << round;
  }
  s.run();
  EXPECT_GT(s.overflow_events(), 0u);
}

}  // namespace
}  // namespace sst::sim
