#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <array>
#include <vector>

namespace sst::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator s;
  EXPECT_EQ(s.now(), 0u);
  EXPECT_TRUE(s.empty());
}

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(usec(30), [&] { order.push_back(3); });
  s.schedule_at(usec(10), [&] { order.push_back(1); });
  s.schedule_at(usec(20), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, TiesBreakInSchedulingOrder) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.schedule_at(usec(10), [&order, i] { order.push_back(i); });
  }
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ClockAdvancesToEventTime) {
  Simulator s;
  SimTime seen = 0;
  s.schedule_at(msec(5), [&] { seen = s.now(); });
  s.run();
  EXPECT_EQ(seen, msec(5));
  EXPECT_EQ(s.now(), msec(5));
}

TEST(Simulator, ScheduleAfterIsRelative) {
  Simulator s;
  SimTime seen = 0;
  s.schedule_at(msec(1), [&] {
    s.schedule_after(msec(2), [&] { seen = s.now(); });
  });
  s.run();
  EXPECT_EQ(seen, msec(3));
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator s;
  int fired = 0;
  s.schedule_at(msec(1), [&] { ++fired; });
  s.schedule_at(msec(10), [&] { ++fired; });
  s.run_until(msec(5));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), msec(5));
  EXPECT_FALSE(s.empty());
}

TEST(Simulator, RunUntilIncludesEventsExactlyAtDeadline) {
  Simulator s;
  int fired = 0;
  s.schedule_at(msec(5), [&] { ++fired; });
  s.run_until(msec(5));
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, RunUntilAdvancesClockEvenWhenQueueDrains) {
  Simulator s;
  s.run_until(sec(1));
  EXPECT_EQ(s.now(), sec(1));
}

TEST(Simulator, ConsecutiveRunUntilSeeContiguousTime) {
  Simulator s;
  s.run_until(msec(10));
  s.schedule_after(msec(5), [] {});
  std::uint64_t ran = s.run_until(msec(20));
  EXPECT_EQ(ran, 1u);
  EXPECT_EQ(s.now(), msec(20));
}

TEST(Simulator, StepExecutesOneEvent) {
  Simulator s;
  int fired = 0;
  s.schedule_at(1, [&] { ++fired; });
  s.schedule_at(2, [&] { ++fired; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(s.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(s.step());
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator s;
  int fired = 0;
  auto h = s.schedule_at(msec(1), [&] { ++fired; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  s.run();
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, CancelUpdatesPendingCount) {
  Simulator s;
  auto h1 = s.schedule_at(1, [] {});
  auto h2 = s.schedule_at(2, [] {});
  EXPECT_EQ(s.pending_events(), 2u);
  h1.cancel();
  EXPECT_EQ(s.pending_events(), 1u);
  EXPECT_FALSE(s.empty());
  h2.cancel();
  EXPECT_TRUE(s.empty());
}

TEST(Simulator, CancelIsIdempotent) {
  Simulator s;
  auto h = s.schedule_at(1, [] {});
  h.cancel();
  h.cancel();
  EXPECT_TRUE(s.empty());
}

TEST(Simulator, HandleNotPendingAfterFire) {
  Simulator s;
  auto h = s.schedule_at(1, [] {});
  s.run();
  EXPECT_FALSE(h.pending());
  h.cancel();  // harmless after firing
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator s;
  int depth = 0;
  std::function<void()> chain = [&]() {
    if (++depth < 10) s.schedule_after(usec(1), chain);
  };
  s.schedule_at(0, chain);
  s.run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(s.executed_events(), 10u);
}

TEST(Simulator, ExecutedEventsCounter) {
  Simulator s;
  for (int i = 0; i < 7; ++i) s.schedule_at(i, [] {});
  s.run();
  EXPECT_EQ(s.executed_events(), 7u);
}

TEST(Simulator, RunReturnsEventCount) {
  Simulator s;
  for (int i = 0; i < 4; ++i) s.schedule_at(i, [] {});
  EXPECT_EQ(s.run(), 4u);
}

TEST(Simulator, DefaultHandleIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();  // no-op
}

TEST(Simulator, StaleHandleDoesNotAffectRecycledSlot) {
  Simulator s;
  int first = 0;
  int second = 0;
  auto h1 = s.schedule_at(1, [&] { ++first; });
  s.run();
  EXPECT_FALSE(h1.pending());
  // The slab recycles h1's slot for the next event; the stale handle must
  // neither observe nor cancel its replacement.
  auto h2 = s.schedule_at(2, [&] { ++second; });
  h1.cancel();
  EXPECT_TRUE(h2.pending());
  s.run();
  EXPECT_EQ(first, 1);
  EXPECT_EQ(second, 1);
}

TEST(Simulator, HandleOutlivesDrainedSimulator) {
  Simulator s;
  auto fired = s.schedule_at(1, [] {});
  auto cancelled = s.schedule_at(2, [] {});
  cancelled.cancel();
  s.run();
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(fired.pending());
  EXPECT_FALSE(cancelled.pending());
  fired.cancel();  // both harmless long after the queue drained
  cancelled.cancel();
  EXPECT_EQ(s.executed_events(), 1u);
}

TEST(Simulator, PendingCountExactUnderMixedCancelAndFire) {
  Simulator s;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 10; ++i) handles.push_back(s.schedule_at(i + 1, [] {}));
  EXPECT_EQ(s.pending_events(), 10u);
  for (std::size_t i = 0; i < handles.size(); i += 2) handles[i].cancel();
  EXPECT_EQ(s.pending_events(), 5u);
  EXPECT_TRUE(s.step());  // fires t=2, skipping the cancelled t=1
  EXPECT_EQ(s.now(), 2u);
  EXPECT_EQ(s.pending_events(), 4u);
  handles[1].cancel();  // already fired: no effect on the count
  EXPECT_EQ(s.pending_events(), 4u);
  handles[3].cancel();  // t=4, still pending
  EXPECT_EQ(s.pending_events(), 3u);
  s.run();
  EXPECT_EQ(s.pending_events(), 0u);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.executed_events(), 4u);  // t=2 (stepped) + t=6, 8, 10
}

TEST(Simulator, OversizedCallableUsesHeapFallback) {
  Simulator s;
  std::array<std::uint64_t, 32> payload{};  // 256 bytes: past inline storage
  for (std::size_t i = 0; i < payload.size(); ++i) payload[i] = i;
  std::uint64_t sum = 0;
  s.schedule_at(1, [payload, &sum] {
    for (const auto v : payload) sum += v;
  });
  s.run();
  EXPECT_EQ(sum, 496u);
}

TEST(Simulator, CancelOversizedCallableReleasesIt) {
  Simulator s;
  std::array<char, 200> big{};
  auto h = s.schedule_at(1, [big] { (void)big; });
  h.cancel();
  s.run();
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.executed_events(), 0u);
}

}  // namespace
}  // namespace sst::sim
