#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace sst::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator s;
  EXPECT_EQ(s.now(), 0u);
  EXPECT_TRUE(s.empty());
}

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(usec(30), [&] { order.push_back(3); });
  s.schedule_at(usec(10), [&] { order.push_back(1); });
  s.schedule_at(usec(20), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, TiesBreakInSchedulingOrder) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.schedule_at(usec(10), [&order, i] { order.push_back(i); });
  }
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ClockAdvancesToEventTime) {
  Simulator s;
  SimTime seen = 0;
  s.schedule_at(msec(5), [&] { seen = s.now(); });
  s.run();
  EXPECT_EQ(seen, msec(5));
  EXPECT_EQ(s.now(), msec(5));
}

TEST(Simulator, ScheduleAfterIsRelative) {
  Simulator s;
  SimTime seen = 0;
  s.schedule_at(msec(1), [&] {
    s.schedule_after(msec(2), [&] { seen = s.now(); });
  });
  s.run();
  EXPECT_EQ(seen, msec(3));
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator s;
  int fired = 0;
  s.schedule_at(msec(1), [&] { ++fired; });
  s.schedule_at(msec(10), [&] { ++fired; });
  s.run_until(msec(5));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), msec(5));
  EXPECT_FALSE(s.empty());
}

TEST(Simulator, RunUntilIncludesEventsExactlyAtDeadline) {
  Simulator s;
  int fired = 0;
  s.schedule_at(msec(5), [&] { ++fired; });
  s.run_until(msec(5));
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, RunUntilAdvancesClockEvenWhenQueueDrains) {
  Simulator s;
  s.run_until(sec(1));
  EXPECT_EQ(s.now(), sec(1));
}

TEST(Simulator, ConsecutiveRunUntilSeeContiguousTime) {
  Simulator s;
  s.run_until(msec(10));
  s.schedule_after(msec(5), [] {});
  std::uint64_t ran = s.run_until(msec(20));
  EXPECT_EQ(ran, 1u);
  EXPECT_EQ(s.now(), msec(20));
}

TEST(Simulator, StepExecutesOneEvent) {
  Simulator s;
  int fired = 0;
  s.schedule_at(1, [&] { ++fired; });
  s.schedule_at(2, [&] { ++fired; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(s.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(s.step());
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator s;
  int fired = 0;
  auto h = s.schedule_at(msec(1), [&] { ++fired; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  s.run();
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, CancelUpdatesPendingCount) {
  Simulator s;
  auto h1 = s.schedule_at(1, [] {});
  auto h2 = s.schedule_at(2, [] {});
  EXPECT_EQ(s.pending_events(), 2u);
  h1.cancel();
  EXPECT_EQ(s.pending_events(), 1u);
  EXPECT_FALSE(s.empty());
  h2.cancel();
  EXPECT_TRUE(s.empty());
}

TEST(Simulator, CancelIsIdempotent) {
  Simulator s;
  auto h = s.schedule_at(1, [] {});
  h.cancel();
  h.cancel();
  EXPECT_TRUE(s.empty());
}

TEST(Simulator, HandleNotPendingAfterFire) {
  Simulator s;
  auto h = s.schedule_at(1, [] {});
  s.run();
  EXPECT_FALSE(h.pending());
  h.cancel();  // harmless after firing
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator s;
  int depth = 0;
  std::function<void()> chain = [&]() {
    if (++depth < 10) s.schedule_after(usec(1), chain);
  };
  s.schedule_at(0, chain);
  s.run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(s.executed_events(), 10u);
}

TEST(Simulator, ExecutedEventsCounter) {
  Simulator s;
  for (int i = 0; i < 7; ++i) s.schedule_at(i, [] {});
  s.run();
  EXPECT_EQ(s.executed_events(), 7u);
}

TEST(Simulator, RunReturnsEventCount) {
  Simulator s;
  for (int i = 0; i < 4; ++i) s.schedule_at(i, [] {});
  EXPECT_EQ(s.run(), 4u);
}

}  // namespace
}  // namespace sst::sim
