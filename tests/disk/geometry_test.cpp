#include "disk/geometry.hpp"

#include <gtest/gtest.h>

namespace sst::disk {
namespace {

GeometryParams small_params() {
  GeometryParams p;
  p.capacity = 1 * GiB;
  p.num_zones = 4;
  p.outer_spt = 800;
  p.inner_spt = 400;
  p.heads = 2;
  return p;
}

TEST(Geometry, CapacityAtLeastRequested) {
  Geometry g(small_params());
  EXPECT_GE(g.capacity_bytes(), 1 * GiB);
  // And not wildly larger (within one cylinder of slack).
  EXPECT_LT(g.capacity_bytes(), 1 * GiB + 10 * MiB);
}

TEST(Geometry, ZoneCountMatches) {
  Geometry g(small_params());
  EXPECT_EQ(g.zones().size(), 4u);
}

TEST(Geometry, ZonesAreContiguous) {
  Geometry g(small_params());
  Lba next = 0;
  std::uint32_t next_cyl = 0;
  for (const auto& z : g.zones()) {
    EXPECT_EQ(z.first_lba, next);
    EXPECT_EQ(z.first_cyl, next_cyl);
    next += z.sectors;
    next_cyl += z.cylinders;
  }
  EXPECT_EQ(next, g.total_sectors());
  EXPECT_EQ(next_cyl, g.total_cylinders());
}

TEST(Geometry, SptDecreasesInward) {
  Geometry g(small_params());
  for (std::size_t i = 1; i < g.zones().size(); ++i) {
    EXPECT_LE(g.zones()[i].spt, g.zones()[i - 1].spt);
  }
  EXPECT_EQ(g.zones().front().spt, 800u);
  EXPECT_EQ(g.zones().back().spt, 400u);
}

TEST(Geometry, MediaRateScalesWithSpt) {
  Geometry g(small_params());
  const double outer = g.media_rate_bps(0);
  const double inner = g.media_rate_bps(g.total_sectors() - 1);
  EXPECT_NEAR(outer / inner, 2.0, 0.05);  // 800 vs 400 spt
}

TEST(Geometry, RotationPeriod7200Rpm) {
  GeometryParams p = small_params();
  p.rpm = 7200;
  Geometry g(p);
  EXPECT_NEAR(to_millis(g.rotation_period()), 8.333, 0.01);
}

TEST(Geometry, LocateFirstSector) {
  Geometry g(small_params());
  const Chs chs = g.locate(0);
  EXPECT_EQ(chs.zone, 0u);
  EXPECT_EQ(chs.cylinder, 0u);
  EXPECT_EQ(chs.head, 0u);
  EXPECT_EQ(chs.sector, 0u);
}

TEST(Geometry, LocateTrackAndHeadProgression) {
  Geometry g(small_params());
  const std::uint32_t spt = g.zones()[0].spt;
  // Sector `spt` is the first sector of the second track: head 1, cyl 0.
  const Chs chs = g.locate(spt);
  EXPECT_EQ(chs.cylinder, 0u);
  EXPECT_EQ(chs.head, 1u);
  EXPECT_EQ(chs.sector, 0u);
  // Sector 2*spt starts cylinder 1 (2 heads).
  const Chs chs2 = g.locate(2ULL * spt);
  EXPECT_EQ(chs2.cylinder, 1u);
  EXPECT_EQ(chs2.head, 0u);
}

TEST(Geometry, CylindersMonotoneWithLba) {
  Geometry g(small_params());
  std::uint32_t prev = 0;
  for (Lba lba = 0; lba < g.total_sectors(); lba += g.total_sectors() / 64) {
    const Chs chs = g.locate(lba);
    EXPECT_GE(chs.cylinder, prev);
    prev = chs.cylinder;
  }
}

TEST(Geometry, MediaTimeProportionalToSectors) {
  Geometry g(small_params());
  const SimTime t1 = g.media_time(0, 100);
  const SimTime t2 = g.media_time(0, 200);
  EXPECT_NEAR(static_cast<double>(t2) / static_cast<double>(t1), 2.0, 0.1);
}

TEST(Geometry, MediaTimeMatchesRateForOneTrack) {
  Geometry g(small_params());
  const std::uint32_t spt = g.zones()[0].spt;
  // Reading exactly one track without crossing = one rotation.
  const SimTime t = g.media_time(0, spt);
  EXPECT_NEAR(static_cast<double>(t), static_cast<double>(g.rotation_period()),
              static_cast<double>(g.rotation_period()) * 0.25);  // skew at crossing
}

TEST(Geometry, TrackCrossingAddsSkew) {
  Geometry g(small_params());
  const std::uint32_t spt = g.zones()[0].spt;
  const SimTime within = g.media_time(0, spt - 1);
  const SimTime crossing = g.media_time(0, spt + 1);
  const double sector_ns = static_cast<double>(g.rotation_period()) / spt;
  const double expected_extra = (2 + g.track_skew_sectors()) * sector_ns;
  EXPECT_NEAR(static_cast<double>(crossing - within), expected_extra, sector_ns * 2);
}

TEST(Geometry, RotationalWaitBounded) {
  Geometry g(small_params());
  for (Lba lba : {Lba{0}, Lba{12345}, g.total_sectors() / 2}) {
    for (SimTime now : {SimTime{0}, usec(500), msec(3), msec(97)}) {
      EXPECT_LE(g.rotational_wait(lba, now), g.rotation_period());
    }
  }
}

TEST(Geometry, RotationalWaitZeroWhenAligned) {
  Geometry g(small_params());
  // Sector 0 at time 0 is by definition at angle 0 under the head.
  EXPECT_EQ(g.rotational_wait(0, 0), 0u);
  // One full period later it is aligned again.
  EXPECT_LE(g.rotational_wait(0, g.rotation_period()), 1u);
}

TEST(Geometry, SequentialRateBelowMediaRate) {
  Geometry g(small_params());
  EXPECT_LT(g.sequential_rate_bps(0), g.media_rate_bps(0));
  EXPECT_GT(g.sequential_rate_bps(0), 0.5 * g.media_rate_bps(0));
}

TEST(Geometry, ExplicitSkewRespected) {
  GeometryParams p = small_params();
  p.track_skew_sectors = 17;
  Geometry g(p);
  EXPECT_EQ(g.track_skew_sectors(), 17u);
}

TEST(Geometry, SingleZoneWorks) {
  GeometryParams p = small_params();
  p.num_zones = 1;
  p.inner_spt = p.outer_spt;
  Geometry g(p);
  EXPECT_EQ(g.zones().size(), 1u);
  EXPECT_GE(g.capacity_bytes(), p.capacity);
}

TEST(GeometryWd800jd, DefaultDriveCalibration) {
  // The stock WD800JD-class drive must land on the paper's testbed numbers.
  Geometry g(GeometryParams{});
  EXPECT_GE(g.capacity_bytes(), 80 * GiB);
  EXPECT_NEAR(g.media_rate_bps(0) / 1e6, 62.0, 1.0);
  EXPECT_NEAR(g.media_rate_bps(g.total_sectors() - 1) / 1e6, 38.0, 1.0);
  // Application-visible sequential rate: 55-60 MB/s at the outer zone.
  EXPECT_GT(g.sequential_rate_bps(0) / 1e6, 54.0);
  EXPECT_LT(g.sequential_rate_bps(0) / 1e6, 60.0);
  EXPECT_GT(g.total_cylinders(), 50'000u);
}

TEST(GeometryWd800jd, RotationalWaitIsPeriodic) {
  Geometry g(GeometryParams{});
  const Lba lba = 123456;
  const SimTime t0 = usec(777);
  const SimTime w0 = g.rotational_wait(lba, t0);
  // One full rotation later the platter is in the same position.
  const SimTime w1 = g.rotational_wait(lba, t0 + g.rotation_period());
  EXPECT_LE(w1 > w0 ? w1 - w0 : w0 - w1, 2u);  // rounding only
}

TEST(GeometryWd800jd, RotationalWaitIsDeterministic) {
  Geometry a(GeometryParams{});
  Geometry b(GeometryParams{});
  for (Lba lba : {Lba{0}, Lba{999'999}, Lba{50'000'000}}) {
    for (SimTime t : {usec(1), msec(5), sec(1)}) {
      EXPECT_EQ(a.rotational_wait(lba, t), b.rotational_wait(lba, t));
    }
  }
}

TEST(GeometryWd800jd, MediaTimeAdditive) {
  Geometry g(GeometryParams{});
  const Lba lba = 1'000'000;
  const SimTime whole = g.media_time(lba, 4096);
  const SimTime split = g.media_time(lba, 2048) + g.media_time(lba + 2048, 2048);
  const auto diff = whole > split ? whole - split : split - whole;
  EXPECT_LE(diff, usec(20));  // boundary rounding only
}

/// Property sweep: locate() must be consistent with zone tables for many
/// LBAs in every zone.
class GeometryZoneProperty : public ::testing::TestWithParam<int> {};

TEST_P(GeometryZoneProperty, LocateConsistentWithZoneTable) {
  Geometry g(small_params());
  const auto& zones = g.zones();
  const auto zi = static_cast<std::size_t>(GetParam());
  ASSERT_LT(zi, zones.size());
  const Zone& z = zones[zi];
  for (Lba off : {Lba{0}, Lba{z.spt - 1}, Lba{z.spt}, z.sectors / 2, z.sectors - 1}) {
    const Lba lba = z.first_lba + off;
    if (lba >= g.total_sectors()) continue;
    const Chs chs = g.locate(lba);
    EXPECT_EQ(chs.zone, zi);
    EXPECT_GE(chs.cylinder, z.first_cyl);
    EXPECT_LT(chs.cylinder, z.first_cyl + z.cylinders);
    EXPECT_LT(chs.sector, z.spt);
  }
}

INSTANTIATE_TEST_SUITE_P(AllZones, GeometryZoneProperty, ::testing::Range(0, 4));

}  // namespace
}  // namespace sst::disk
