#include "disk/cache.hpp"

#include <gtest/gtest.h>

namespace sst::disk {
namespace {

CacheParams params_4x256k() {
  CacheParams p;
  p.size = 1 * MiB;
  p.num_segments = 4;  // 256 KB = 512 sectors per segment
  return p;
}

constexpr Lba kSeg = 512;  // sectors per segment in params_4x256k

TEST(SegmentCache, DisabledWhenNoCapacity) {
  CacheParams p;
  p.size = 0;
  SegmentCache c(p);
  EXPECT_FALSE(c.enabled());
  EXPECT_FALSE(c.lookup(0, 8, 0));
  EXPECT_EQ(c.fill_sectors(8), 8u);
}

TEST(SegmentCache, MissOnEmpty) {
  SegmentCache c(params_4x256k());
  EXPECT_FALSE(c.lookup(100, 8, 0));
  EXPECT_EQ(c.stats().misses, 1u);
}

TEST(SegmentCache, HitAfterInstall) {
  SegmentCache c(params_4x256k());
  c.install(100, kSeg, 8, usec(1));
  EXPECT_TRUE(c.lookup(100, 8, usec(2)));
  EXPECT_TRUE(c.lookup(100 + kSeg - 8, 8, usec(3)));  // tail of segment
  EXPECT_EQ(c.stats().hits, 2u);
}

TEST(SegmentCache, NoPartialHit) {
  SegmentCache c(params_4x256k());
  c.install(100, kSeg, 8, usec(1));
  EXPECT_FALSE(c.lookup(100 + kSeg - 4, 8, usec(2)));  // straddles the end
  EXPECT_FALSE(c.lookup(96, 8, usec(3)));              // starts before
}

TEST(SegmentCache, FillSegmentModeFillsWholeSegment) {
  SegmentCache c(params_4x256k());  // read_ahead = kFillSegment
  EXPECT_EQ(c.fill_sectors(8), kSeg);
  EXPECT_EQ(c.fill_sectors(kSeg + 100), kSeg + 100u);  // never below request
}

TEST(SegmentCache, ExplicitReadAheadClampsToSegment) {
  CacheParams p = params_4x256k();
  p.read_ahead = 64 * KiB;  // 128 sectors
  SegmentCache c(p);
  EXPECT_EQ(c.fill_sectors(8), 8u + 128u);
  EXPECT_EQ(c.fill_sectors(kSeg), kSeg);  // request already fills a segment
}

TEST(SegmentCache, ZeroReadAheadReadsExactlyRequest) {
  CacheParams p = params_4x256k();
  p.read_ahead = 0;
  SegmentCache c(p);
  EXPECT_EQ(c.fill_sectors(8), 8u);
}

TEST(SegmentCache, LruEviction) {
  SegmentCache c(params_4x256k());
  for (Lba i = 0; i < 4; ++i) c.install(i * 10000, kSeg, kSeg, usec(i + 1));
  // Touch segment 0 so segment 1 becomes LRU.
  EXPECT_TRUE(c.lookup(0, 8, usec(10)));
  c.install(90000, kSeg, kSeg, usec(11));  // must evict segment at 10000
  EXPECT_TRUE(c.lookup(0, 8, usec(12)));
  EXPECT_FALSE(c.lookup(10000, 8, usec(13)));
  EXPECT_TRUE(c.lookup(90000, 8, usec(14)));
  EXPECT_EQ(c.stats().evictions, 1u);
}

TEST(SegmentCache, WastedPrefetchAccounting) {
  SegmentCache c(params_4x256k());
  // Fill all 4 segments; only 8 sectors of each were demanded.
  for (Lba i = 0; i < 4; ++i) c.install(i * 10000, kSeg, 8, usec(i + 1));
  // Install a 5th: evicts the LRU with (kSeg - 8) unread prefetched sectors.
  c.install(90000, kSeg, 8, usec(10));
  EXPECT_EQ(c.stats().wasted_prefetch_sectors, kSeg - 8);
}

TEST(SegmentCache, ConsumedSectorsNotCountedAsWaste) {
  SegmentCache c(params_4x256k());
  c.install(0, kSeg, 8, usec(1));
  // Consume the whole segment via hits.
  for (Lba off = 8; off + 8 <= kSeg; off += 8) {
    EXPECT_TRUE(c.lookup(off, 8, usec(2)));
  }
  for (Lba i = 1; i <= 4; ++i) c.install(i * 10000, kSeg, kSeg, usec(i + 2));
  EXPECT_EQ(c.stats().wasted_prefetch_sectors, 0u);
}

TEST(SegmentCache, OverlappingInstallReplacesStale) {
  SegmentCache c(params_4x256k());
  c.install(1000, kSeg, kSeg, usec(1));
  c.install(1100, kSeg, kSeg, usec(2));  // overlaps [1100, 1512)
  EXPECT_TRUE(c.lookup(1100, 8, usec(3)));
  // The old segment was the victim: its range is gone.
  EXPECT_FALSE(c.lookup(1000, 8, usec(4)));
}

TEST(SegmentCache, AdjacentInstallDoesNotStealNeighbour) {
  SegmentCache c(params_4x256k());
  c.install(1000, kSeg, 8, usec(1));
  c.install(1000 + kSeg, kSeg, 8, usec(2));  // exactly adjacent
  EXPECT_TRUE(c.lookup(1000, 8, usec(3)));
  EXPECT_TRUE(c.lookup(1000 + kSeg, 8, usec(4)));
}

TEST(SegmentCache, InstallLargerThanSegmentKeepsPrefix) {
  SegmentCache c(params_4x256k());
  c.install(0, 4 * kSeg, 4 * kSeg, usec(1));
  EXPECT_TRUE(c.lookup(0, kSeg, usec(2)));
  EXPECT_FALSE(c.lookup(kSeg, 8, usec(3)));
}

TEST(SegmentCache, InvalidateDropsOverlaps) {
  SegmentCache c(params_4x256k());
  c.install(1000, kSeg, kSeg, usec(1));
  c.install(50000, kSeg, kSeg, usec(2));
  c.invalidate(1200, 16);
  EXPECT_FALSE(c.lookup(1000, 8, usec(3)));
  EXPECT_TRUE(c.lookup(50000, 8, usec(4)));
}

TEST(SegmentCache, ExtendFromGrowsSegmentInPlace) {
  SegmentCache c(params_4x256k());
  c.install(1000, 100, 100, usec(1));
  c.extend_from(1100, 200, usec(2));
  EXPECT_TRUE(c.lookup(1000, 300, usec(3)));
}

TEST(SegmentCache, ExtendFromSpillsIntoNewSegment) {
  SegmentCache c(params_4x256k());
  c.install(0, kSeg, kSeg, usec(1));  // full segment
  c.extend_from(kSeg, 100, usec(2));  // no room: new segment
  EXPECT_TRUE(c.lookup(kSeg, 100, usec(3)));
  EXPECT_TRUE(c.lookup(0, 8, usec(4)));  // original intact
}

TEST(SegmentCache, ExtendFromWithoutAnchorInstallsFresh) {
  SegmentCache c(params_4x256k());
  c.extend_from(5000, 64, usec(1));
  EXPECT_TRUE(c.lookup(5000, 64, usec(2)));
}

TEST(SegmentCache, ContainsWalksAcrossSegments) {
  SegmentCache c(params_4x256k());
  c.install(0, kSeg, kSeg, usec(1));
  c.install(kSeg, kSeg, kSeg, usec(2));
  EXPECT_TRUE(c.contains(0, 2 * kSeg));
  EXPECT_TRUE(c.contains(kSeg - 8, 16));  // spans the boundary
  EXPECT_FALSE(c.contains(0, 2 * kSeg + 1));
  EXPECT_TRUE(c.contains(123, 0));  // empty range trivially contained
}

TEST(SegmentCache, ResetStats) {
  SegmentCache c(params_4x256k());
  (void)c.lookup(0, 8, 0);
  c.reset_stats();
  EXPECT_EQ(c.stats().misses, 0u);
}

}  // namespace
}  // namespace sst::disk
