#include "disk/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace sst::disk {
namespace {

QueuedCommand make(Lba lba, SimTime t = 0) {
  QueuedCommand qc;
  qc.cmd.lba = lba;
  qc.cmd.sectors = 8;
  qc.enqueued = t;
  return qc;
}

std::vector<Lba> drain(CommandScheduler& s, Lba head) {
  std::vector<Lba> order;
  while (auto qc = s.pop_next(head)) {
    order.push_back(qc->cmd.lba);
    head = qc->cmd.lba + qc->cmd.sectors;
  }
  return order;
}

TEST(Fcfs, ArrivalOrder) {
  FcfsScheduler s;
  for (Lba l : {Lba{300}, Lba{100}, Lba{200}}) s.push(make(l));
  EXPECT_EQ(drain(s, 0), (std::vector<Lba>{300, 100, 200}));
}

TEST(Fcfs, EmptyReturnsNullopt) {
  FcfsScheduler s;
  EXPECT_FALSE(s.pop_next(0).has_value());
  EXPECT_TRUE(s.empty());
}

TEST(Elevator, AscendingSweepFromHead) {
  ElevatorScheduler s;
  for (Lba l : {Lba{300}, Lba{100}, Lba{200}, Lba{50}}) s.push(make(l));
  // Head at 150: sweep up 200, 300, then reverse down 100, 50.
  EXPECT_EQ(drain(s, 150), (std::vector<Lba>{200, 300, 100, 50}));
}

TEST(Elevator, ServesEqualsHeadPosition) {
  ElevatorScheduler s;
  s.push(make(100));
  auto qc = s.pop_next(100);
  ASSERT_TRUE(qc.has_value());
  EXPECT_EQ(qc->cmd.lba, 100u);
}

TEST(Elevator, ReversesAtTop) {
  ElevatorScheduler s;
  for (Lba l : {Lba{10}, Lba{20}}) s.push(make(l));
  EXPECT_EQ(drain(s, 1000), (std::vector<Lba>{20, 10}));
}

TEST(Elevator, DuplicateLbasBothServed) {
  ElevatorScheduler s;
  s.push(make(100));
  s.push(make(100));
  EXPECT_EQ(drain(s, 0).size(), 2u);
}

TEST(Sstf, PicksNearest) {
  SstfScheduler s;
  for (Lba l : {Lba{1000}, Lba{90}, Lba{500}}) s.push(make(l));
  auto qc = s.pop_next(480);
  ASSERT_TRUE(qc.has_value());
  EXPECT_EQ(qc->cmd.lba, 500u);
}

TEST(Sstf, PicksNearestBelow) {
  SstfScheduler s;
  for (Lba l : {Lba{1000}, Lba{90}}) s.push(make(l));
  auto qc = s.pop_next(100);
  ASSERT_TRUE(qc.has_value());
  EXPECT_EQ(qc->cmd.lba, 90u);
}

TEST(Sstf, DrainsEverything) {
  SstfScheduler s;
  for (Lba l : {Lba{5}, Lba{900}, Lba{20}, Lba{450}}) s.push(make(l));
  auto order = drain(s, 0);
  EXPECT_EQ(order.size(), 4u);
  // Starting at 0 SSTF should begin with the lowest LBA.
  EXPECT_EQ(order.front(), 5u);
}

TEST(Factory, CreatesRequestedKind) {
  EXPECT_NE(dynamic_cast<FcfsScheduler*>(make_scheduler(SchedulerKind::kFcfs).get()), nullptr);
  EXPECT_NE(dynamic_cast<ElevatorScheduler*>(make_scheduler(SchedulerKind::kElevator).get()),
            nullptr);
  EXPECT_NE(dynamic_cast<SstfScheduler*>(make_scheduler(SchedulerKind::kSstf).get()), nullptr);
}

TEST(Factory, SchedulerKindNames) {
  EXPECT_STREQ(to_string(SchedulerKind::kFcfs), "fcfs");
  EXPECT_STREQ(to_string(SchedulerKind::kElevator), "elevator");
  EXPECT_STREQ(to_string(SchedulerKind::kSstf), "sstf");
}

}  // namespace
}  // namespace sst::disk
