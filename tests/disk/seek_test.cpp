#include "disk/seek_model.hpp"

#include <gtest/gtest.h>

namespace sst::disk {
namespace {

constexpr std::uint32_t kCylinders = 90'000;

SeekModel wd_model() { return SeekModel(SeekParams{}, kCylinders); }

TEST(Seek, ZeroDistanceIsFree) {
  EXPECT_EQ(wd_model().seek_time(0), 0u);
}

TEST(Seek, SingleCylinderMatchesDatasheet) {
  const auto m = wd_model();
  EXPECT_NEAR(to_millis(m.seek_time(1)), to_millis(SeekParams{}.single_cylinder), 0.1);
}

TEST(Seek, AverageDistanceMatchesDatasheet) {
  const auto m = wd_model();
  EXPECT_NEAR(to_millis(m.seek_time(kCylinders / 3)), to_millis(SeekParams{}.average), 0.05);
}

TEST(Seek, FullStrokeMatchesDatasheet) {
  const auto m = wd_model();
  EXPECT_NEAR(to_millis(m.seek_time(kCylinders - 1)), to_millis(SeekParams{}.full_stroke),
              0.05);
}

TEST(Seek, MonotoneNonDecreasing) {
  const auto m = wd_model();
  SimTime prev = 0;
  for (std::uint32_t d = 0; d < kCylinders; d += 997) {
    const SimTime t = m.seek_time(d);
    EXPECT_GE(t, prev) << "distance " << d;
    prev = t;
  }
}

TEST(Seek, ContinuousAtKnee) {
  const auto m = wd_model();
  const std::uint32_t knee = m.knee_cylinders();
  const SimTime below = m.seek_time(knee);
  const SimTime above = m.seek_time(knee + 1);
  EXPECT_LT(above - below, usec(50));
}

TEST(Seek, SymmetricBetween) {
  const auto m = wd_model();
  EXPECT_EQ(m.seek_between(1000, 5000), m.seek_between(5000, 1000));
  EXPECT_EQ(m.seek_between(777, 777), 0u);
}

TEST(Seek, ShortSeeksFollowSqrtShape) {
  const auto m = wd_model();
  // For the sqrt law, seek(4d) - a == 2 * (seek(d) - a).
  const double a = static_cast<double>(m.seek_time(1));
  const double d1 = static_cast<double>(m.seek_time(100)) - a;
  const double d4 = static_cast<double>(m.seek_time(400)) - a;
  EXPECT_NEAR(d4 / d1, 2.0, 0.15);
}

TEST(Seek, DegenerateTinyDisk) {
  SeekModel m(SeekParams{}, 2);
  EXPECT_GT(m.seek_time(1), 0u);
}

}  // namespace
}  // namespace sst::disk
