#include "disk/disk.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace sst::disk {
namespace {

DiskParams test_params() {
  DiskParams p;                       // WD800JD defaults
  p.geometry.capacity = 2 * GiB;      // small disk keeps tests fast
  return p;
}

struct Harness {
  sim::Simulator sim;
  Disk disk;

  explicit Harness(DiskParams p = test_params()) : disk(sim, p, 0) {}

  /// Submit a read and return its completion time after draining the sim.
  SimTime read(Lba lba, Lba sectors) {
    SimTime done = 0;
    DiskCommand cmd;
    cmd.lba = lba;
    cmd.sectors = sectors;
    cmd.op = IoOp::kRead;
    cmd.on_complete = [&done](SimTime t) { done = t; };
    disk.submit(std::move(cmd));
    sim.run();
    return done;
  }

  SimTime write(Lba lba, Lba sectors) {
    SimTime done = 0;
    DiskCommand cmd;
    cmd.lba = lba;
    cmd.sectors = sectors;
    cmd.op = IoOp::kWrite;
    cmd.on_complete = [&done](SimTime t) { done = t; };
    disk.submit(std::move(cmd));
    sim.run();
    return done;
  }
};

TEST(Disk, ReadCompletesWithPositiveLatency) {
  Harness h;
  const SimTime done = h.read(1000, 128);
  EXPECT_GT(done, 0u);
  EXPECT_EQ(h.disk.stats().reads, 1u);
  EXPECT_EQ(h.disk.stats().bytes_requested, 64 * KiB);
}

TEST(Disk, MissReadsAtLeastRequestFromMedia) {
  Harness h;
  h.read(0, 128);
  EXPECT_GE(h.disk.stats().bytes_from_media, 64 * KiB);
}

TEST(Disk, CacheHitMuchFasterThanMiss) {
  Harness h;
  const SimTime miss_done = h.read(1'000'000, 64);
  // Second read of the same data: segment holds it.
  const SimTime start2 = h.sim.now();
  const SimTime hit_done = h.read(1'000'000, 64);
  const SimTime hit_latency = hit_done - start2;
  EXPECT_TRUE(h.disk.cache_stats().hits >= 1);
  // Hit streams at the interface rate: well under a rotation.
  EXPECT_LT(hit_latency, msec(1));
  EXPECT_GT(miss_done, hit_latency);
}

TEST(Disk, SequentialContinuationAvoidsRotationalWait) {
  DiskParams p = test_params();
  p.cache.read_ahead = 0;  // every read is a miss
  p.cache.num_segments = 4;
  Harness h(p);
  h.read(0, 128);
  const SimTime t0 = h.sim.now();
  h.read(128, 128);  // exact continuation of the head position
  const SimTime latency = t0 == 0 ? 0 : h.sim.now() - t0;
  // overhead + media only: far below one rotation (8.33 ms).
  EXPECT_LT(latency, msec(2));
  EXPECT_EQ(h.disk.stats().rotation_time,
            h.disk.stats().rotation_time);  // smoke: field accessible
}

TEST(Disk, FarSeekCostsMoreThanNearSeek) {
  DiskParams p = test_params();
  p.cache.read_ahead = 0;
  Harness near(p);
  near.read(0, 64);
  const SimTime t0 = near.sim.now();
  near.read(100'000, 64);
  const SimTime near_latency = near.sim.now() - t0;

  Harness far(p);
  far.read(0, 64);
  const SimTime t1 = far.sim.now();
  far.read(far.disk.geometry().total_sectors() - 64, 64);
  const SimTime far_latency = far.sim.now() - t1;
  EXPECT_GT(far_latency, near_latency);
  EXPECT_GT(far.disk.stats().seek_time, near.disk.stats().seek_time);
}

TEST(Disk, BackgroundPrefetchServesNextSequentialRead) {
  Harness h;  // fill-segment read-ahead enables background prefetch
  h.read(0, 128);
  // Give the idle disk time to prefetch ahead, then read past the original
  // fill: it should be (at least partly) cached.
  h.sim.run_until(h.sim.now() + msec(20));
  const auto media_before = h.disk.stats().bytes_from_media;
  const SimTime t0 = h.sim.now();
  h.read(512, 128);  // one segment beyond the first fill
  const SimTime latency = h.sim.now() - t0;
  EXPECT_LT(latency, msec(3));
  EXPECT_GT(h.disk.stats().bytes_from_media, media_before == 0 ? 1 : 0);
}

TEST(Disk, NoBackgroundPrefetchWhenReadAheadDisabled) {
  DiskParams p = test_params();
  p.cache.read_ahead = 0;
  Harness h(p);
  h.read(0, 128);
  const auto media_after_read = h.disk.stats().bytes_from_media;
  h.sim.run_until(h.sim.now() + msec(50));
  // Idle time must not add media traffic.
  h.disk.submit([] {
    DiskCommand c;
    c.lba = 1'000'000;
    c.sectors = 8;
    return c;
  }());
  h.sim.run();
  EXPECT_EQ(h.disk.stats().bytes_from_media, media_after_read + sectors_to_bytes(8));
}

TEST(Disk, WriteInvalidatesCachedData) {
  Harness h;
  h.read(1000, 64);
  ASSERT_TRUE(h.disk.cache_stats().misses >= 1);
  h.write(1000, 64);
  const auto misses_before = h.disk.cache_stats().misses;
  h.read(1000, 64);
  EXPECT_EQ(h.disk.cache_stats().misses, misses_before + 1);
}

TEST(Disk, WriteCountsAndMediaBytes) {
  Harness h;
  h.write(5000, 128);
  EXPECT_EQ(h.disk.stats().writes, 1u);
  EXPECT_GE(h.disk.stats().bytes_from_media, 64 * KiB);
}

TEST(Disk, CommandsServicedSeriallyFifo) {
  Harness h;
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    DiskCommand cmd;
    cmd.lba = static_cast<Lba>(1'000'000) * (3 - i);  // descending positions
    cmd.sectors = 64;
    cmd.on_complete = [&order, i](SimTime) { order.push_back(i); };
    h.disk.submit(std::move(cmd));
  }
  h.sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));  // FCFS default
}

TEST(Disk, ElevatorReordersBySweep) {
  DiskParams p = test_params();
  p.scheduler = SchedulerKind::kElevator;
  p.cache.read_ahead = 0;
  Harness h(p);
  // First command is serviced immediately; queue the rest while busy.
  std::vector<Lba> order;
  for (Lba lba : {Lba{64}, Lba{3'000'000}, Lba{1'000'000}, Lba{2'000'000}}) {
    DiskCommand cmd;
    cmd.lba = lba;
    cmd.sectors = 64;
    cmd.on_complete = [&order, lba](SimTime) { order.push_back(lba); };
    h.disk.submit(std::move(cmd));
  }
  h.sim.run();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 64u);
  EXPECT_EQ(order[1], 1'000'000u);
  EXPECT_EQ(order[2], 2'000'000u);
  EXPECT_EQ(order[3], 3'000'000u);
}

TEST(Disk, QueueDepthTracked) {
  Harness h;
  for (int i = 0; i < 5; ++i) {
    DiskCommand cmd;
    cmd.lba = static_cast<Lba>(i) * 100'000;
    cmd.sectors = 64;
    h.disk.submit(std::move(cmd));
  }
  h.sim.run();
  EXPECT_GE(h.disk.stats().max_queue_depth, 5u);
  EXPECT_TRUE(h.disk.idle());
}

TEST(Disk, BusyTimeWithinElapsed) {
  Harness h;
  // Stride keeps the last read inside the 2 GiB (4.2M-sector) test disk.
  for (int i = 0; i < 10; ++i) h.read(static_cast<Lba>(i) * 400'000, 128);
  EXPECT_LE(h.disk.stats().busy_time, h.sim.now());
  EXPECT_GT(h.disk.stats().busy_time, 0u);
}

TEST(Disk, ResetStatsClearsEverything) {
  Harness h;
  h.read(0, 64);
  h.disk.reset_stats();
  EXPECT_EQ(h.disk.stats().commands, 0u);
  EXPECT_EQ(h.disk.cache_stats().misses, 0u);
}

TEST(Disk, DemandCompletesBeforeFillTail) {
  // With fill-segment read-ahead, the host's completion arrives before the
  // mechanism finishes the prefetch tail.
  Harness h;
  SimTime done = 0;
  DiskCommand cmd;
  cmd.lba = 1'000'000;
  cmd.sectors = 8;  // tiny demand, 256 KB fill
  cmd.on_complete = [&done](SimTime t) { done = t; };
  h.disk.submit(std::move(cmd));
  h.sim.run();
  EXPECT_GT(done, 0u);
  EXPECT_LT(done, h.sim.now());  // sim advanced past the fill tail
}

}  // namespace
}  // namespace sst::disk
