#include "experiment/sweep.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <stdexcept>
#include <vector>

#include "workload/generator.hpp"

namespace sst::experiment {
namespace {

ExperimentConfig tiny_config(std::uint32_t streams, Bytes request) {
  node::NodeConfig node;  // 1 controller, 1 disk
  ExperimentConfig cfg;
  cfg.topology.node = node;
  cfg.warmup = msec(500);
  cfg.measure = sec(2);
  cfg.streams = workload::make_uniform_streams(streams, node.total_disks(),
                                               node.disk.geometry.capacity, request);
  return cfg;
}

TEST(Sweep, ParallelResultsBitIdenticalToSerial) {
  std::vector<ExperimentConfig> grid;
  for (const std::uint32_t streams : {2u, 5u, 9u}) {
    for (const Bytes request : {16 * KiB, 64 * KiB}) {
      grid.push_back(tiny_config(streams, request));
    }
  }

  const auto serial = run_sweep(grid, 1);
  const auto parallel = run_sweep(grid, 4);

  ASSERT_EQ(serial.size(), grid.size());
  ASSERT_EQ(parallel.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    // Each run is a deterministic single-threaded simulation, so the
    // parallel fan-out must be bit-identical, not merely close.
    EXPECT_EQ(serial[i].total_mbps, parallel[i].total_mbps) << "point " << i;
    EXPECT_EQ(serial[i].min_stream_mbps, parallel[i].min_stream_mbps) << "point " << i;
    EXPECT_EQ(serial[i].max_stream_mbps, parallel[i].max_stream_mbps) << "point " << i;
    EXPECT_EQ(serial[i].requests_completed, parallel[i].requests_completed) << "point " << i;
    EXPECT_EQ(serial[i].stream_mbps, parallel[i].stream_mbps) << "point " << i;
    EXPECT_GT(serial[i].total_mbps, 0.0) << "point " << i;
  }
}

TEST(Sweep, JobsComeBackInInputOrder) {
  std::vector<std::function<ExperimentResult()>> jobs;
  for (int i = 0; i < 32; ++i) {
    jobs.push_back([i] {
      ExperimentResult r;
      r.total_mbps = i;
      return r;
    });
  }
  const auto results = run_sweep_jobs(jobs, 4);
  ASSERT_EQ(results.size(), jobs.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].total_mbps, static_cast<double>(i));
  }
}

TEST(Sweep, FirstExceptionPropagates) {
  std::vector<std::function<ExperimentResult()>> jobs;
  for (int i = 0; i < 8; ++i) {
    jobs.push_back([i]() -> ExperimentResult {
      if (i == 3) throw std::runtime_error("point 3 failed");
      return {};
    });
  }
  EXPECT_THROW(run_sweep_jobs(jobs, 4), std::runtime_error);
  EXPECT_THROW(run_sweep_jobs(jobs, 1), std::runtime_error);
}

TEST(Sweep, EmptyGridIsFine) {
  EXPECT_TRUE(run_sweep({}, 4).empty());
  EXPECT_TRUE(run_sweep_jobs({}, 4).empty());
}

TEST(Sweep, DefaultWorkersHonorsEnvVariable) {
  setenv("SST_BENCH_THREADS", "3", 1);
  EXPECT_EQ(default_sweep_workers(), 3u);
  // Out-of-range or malformed values fall back to hardware concurrency.
  setenv("SST_BENCH_THREADS", "0", 1);
  EXPECT_GE(default_sweep_workers(), 1u);
  setenv("SST_BENCH_THREADS", "lots", 1);
  EXPECT_GE(default_sweep_workers(), 1u);
  unsetenv("SST_BENCH_THREADS");
  EXPECT_GE(default_sweep_workers(), 1u);
}

}  // namespace
}  // namespace sst::experiment
