// Golden-metrics parity: the full ExperimentResult::to_json() document for
// four fig13/fig14 configurations must stay byte-for-byte identical to the
// committed fixtures. This pins the behaviour of the whole pipeline —
// classifier, staged scheduler (StagingArea / DispatchSet / DispatchPolicy),
// topology-built device stack, metrics export — across refactors: any
// change to event ordering, arithmetic, or export layout shows up as a
// fixture diff that must be reviewed (and regenerated) deliberately.
//
// Fixtures live in tests/experiment/golden/. To regenerate after an
// intentional behaviour change, run this test binary with
// SST_REGEN_GOLDEN=1 in the environment (the fixtures are rewritten in the
// source tree) and review the diff before committing.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "experiment/runner.hpp"
#include "workload/generator.hpp"

namespace sst::experiment {
namespace {

ExperimentConfig base_config(node::NodeConfig node, std::uint32_t streams,
                             core::SchedulerParams params) {
  ExperimentConfig ec;
  ec.topology.node = node;
  ec.scheduler = params;
  ec.streams = workload::make_uniform_streams(streams, node.total_disks(),
                                              node.disk.geometry.capacity, 64 * KiB);
  ec.warmup = sec(4);
  ec.measure = sec(16);
  return ec;
}

core::SchedulerParams paper(std::uint32_t d, Bytes r, std::uint32_t n, Bytes m) {
  core::SchedulerParams p;
  p.dispatch_set_size = d;
  p.read_ahead = r;
  p.requests_per_residency = n;
  p.memory_budget = m;
  return p;
}

std::string fixture_path(const std::string& name) {
  return std::string(SST_SOURCE_DIR) + "/tests/experiment/golden/" + name;
}

std::string read_fixture(const std::string& name) {
  const std::string path = fixture_path(name);
  std::ifstream file(path, std::ios::binary);
  EXPECT_TRUE(file.good()) << "missing fixture " << path;
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

void expect_parity(const std::string& fixture, const ExperimentConfig& ec) {
  const std::string actual = run_experiment(ec).to_json();
  if (std::getenv("SST_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(fixture_path(fixture), std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write fixture " << fixture_path(fixture);
    out << actual;
    return;
  }
  const std::string expected = read_fixture(fixture);
  ASSERT_FALSE(expected.empty());
  // EQ on the whole document: a mismatch prints both JSON bodies, and the
  // first diverging key localizes the regression.
  EXPECT_EQ(actual, expected) << "metrics drifted from " << fixture;
}

TEST(GoldenParity, Fig13SmallDispatchEightDisks) {
  const auto node = node::NodeConfig::medium();  // 8 disks
  const std::uint32_t streams = 80;
  const std::uint32_t d = node.total_disks();
  expect_parity("fig13_small_10.json",
                base_config(node, streams,
                            paper(d, 512 * KiB, 128,
                                  static_cast<Bytes>(d) * 512 * KiB * 128 + 256 * MiB)));
}

TEST(GoldenParity, Fig13StagedAllDispatched) {
  const auto node = node::NodeConfig::medium();
  const std::uint32_t streams = 80;
  expect_parity("fig13_staged_10.json",
                base_config(node, streams,
                            paper(streams, 512 * KiB, 1,
                                  static_cast<Bytes>(streams) * 512 * KiB)));
}

TEST(GoldenParity, Fig14SingleDiskSmallDispatch) {
  const node::NodeConfig node;  // 1 disk
  expect_parity("fig14_small_10.json",
                base_config(node, 10, paper(1, 512 * KiB, 128, 64 * MiB + 128 * MiB)));
}

TEST(GoldenParity, Fig14SingleDiskAllDispatchedLargeReadAhead) {
  const node::NodeConfig node;
  expect_parity("fig14_all_10_2048.json",
                base_config(node, 10,
                            paper(10, 2048 * KiB, 1, static_cast<Bytes>(10) * 2048 * KiB)));
}

}  // namespace
}  // namespace sst::experiment
