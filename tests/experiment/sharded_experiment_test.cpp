// Sharded experiment runner: shard planning rules, multi-shard determinism
// (fixed seed + shard count => byte-identical metrics across repeated
// runs), per-shard workload seed derivation, metric export gating, and the
// merged tracer / time-series surfaces.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "experiment/runner.hpp"
#include "experiment/sharding.hpp"
#include "workload/generator.hpp"

namespace sst::experiment {
namespace {

ExperimentConfig sharded_config(std::uint32_t controllers, std::uint32_t disks_per,
                                std::uint32_t streams, std::uint32_t shards) {
  ExperimentConfig ec;
  ec.topology.node.num_controllers = controllers;
  ec.topology.node.disks_per_controller = disks_per;
  core::SchedulerParams params;
  params.dispatch_set_size = streams;
  params.read_ahead = 512 * KiB;
  params.requests_per_residency = 1;
  params.memory_budget = static_cast<Bytes>(streams) * 512 * KiB;
  ec.scheduler = params;
  ec.streams = workload::make_uniform_streams(
      streams, ec.topology.logical_device_count(),
      ec.topology.logical_device_capacity(), 64 * KiB);
  ec.warmup = msec(200);
  ec.measure = msec(800);
  ec.shards = shards;
  return ec;
}

TEST(ShardPlanning, ClampsToControllerCount) {
  node::TopologySpec topo;
  topo.node.num_controllers = 2;
  topo.node.disks_per_controller = 4;
  const ShardPlan plan = plan_shards(topo, 8);
  EXPECT_EQ(plan.requested, 8u);
  EXPECT_EQ(plan.shard_count(), 2u);
}

TEST(ShardPlanning, SlicesAreContiguousAndCoverEverything) {
  node::TopologySpec topo;
  topo.node.num_controllers = 5;  // uneven split over 3 shards
  topo.node.disks_per_controller = 2;
  const ShardPlan plan = plan_shards(topo, 3);
  ASSERT_EQ(plan.shard_count(), 3u);
  std::uint32_t next_ctrl = 0;
  std::uint32_t next_dev = 0;
  for (const ShardSlice& slice : plan.slices) {
    EXPECT_EQ(slice.ctrl_begin, next_ctrl);
    EXPECT_EQ(slice.dev_begin, next_dev);
    EXPECT_EQ(slice.dev_count, slice.ctrl_count * 2);
    EXPECT_GE(slice.ctrl_count, 1u);
    next_ctrl += slice.ctrl_count;
    next_dev += slice.dev_count;
  }
  EXPECT_EQ(next_ctrl, 5u);
  EXPECT_EQ(next_dev, 10u);
  // Logical ownership maps back to the owning shard.
  for (std::uint32_t dev = 0; dev < 10; ++dev) {
    const std::uint32_t k = plan.shard_of_logical(dev);
    EXPECT_GE(dev, plan.slices[k].logical_begin);
    EXPECT_LT(dev, plan.slices[k].logical_begin + plan.slices[k].logical_count);
  }
}

TEST(ShardPlanning, StripeAlwaysCollapsesToOneShard) {
  node::TopologySpec topo;
  topo.node.num_controllers = 4;
  topo.stack.raid.kind = io::RaidSpec::Kind::kStripe;
  EXPECT_EQ(plan_shards(topo, 4).shard_count(), 1u);
}

TEST(ShardPlanning, MirrorGroupsNeverStraddleShards) {
  node::TopologySpec topo;
  topo.node.num_controllers = 2;
  topo.node.disks_per_controller = 2;
  topo.stack.raid.kind = io::RaidSpec::Kind::kMirror;
  // 4-way groups span both controllers: must fall back to one shard.
  topo.stack.raid.mirror_ways = 4;
  EXPECT_EQ(plan_shards(topo, 2).shard_count(), 1u);
  // 2-way groups align with controllers: two shards of one group each.
  topo.stack.raid.mirror_ways = 2;
  const ShardPlan plan = plan_shards(topo, 2);
  ASSERT_EQ(plan.shard_count(), 2u);
  EXPECT_EQ(plan.slices[0].logical_count, 1u);
  EXPECT_EQ(plan.slices[1].logical_begin, 1u);
}

TEST(ShardPlanning, LookaheadDerivation) {
  node::TopologySpec topo;
  topo.node.num_controllers = 2;
  EXPECT_EQ(plan_shards(topo, 2).lookahead, kDefaultShardLookahead);
  EXPECT_EQ(plan_shards(topo, 2, msec(2)).lookahead, msec(2));
  net::LinkParams link;
  link.latency = msec(1);  // slower than the default: adopt it
  topo.stack.network = link;
  EXPECT_EQ(plan_shards(topo, 2).lookahead, msec(1));
  topo.stack.network->latency = usec(50);  // faster: keep the safe default
  EXPECT_EQ(plan_shards(topo, 2).lookahead, kDefaultShardLookahead);
}

TEST(ShardSeeding, ShardsAndStreamsDrawIndependentSeeds) {
  std::set<std::uint64_t> seeds;
  for (std::uint32_t shard = 0; shard < 8; ++shard) {
    const std::uint64_t shard_seed = shard_workload_seed(0x1234, shard);
    for (std::uint32_t ordinal = 0; ordinal < 16; ++ordinal) {
      seeds.insert(stream_seed(shard_seed, ordinal));
    }
  }
  // All 128 derived seeds distinct — no shared sequence anywhere.
  EXPECT_EQ(seeds.size(), 8u * 16u);
  // Derivation is a pure function of (seed, shard, ordinal).
  EXPECT_EQ(shard_workload_seed(7, 3), shard_workload_seed(7, 3));
  EXPECT_NE(shard_workload_seed(7, 3), shard_workload_seed(8, 3));
}

// Same seed => byte-identical metrics across repeated runs, at every shard
// count, with per-stream randomness (think jitter) active so the derived
// seeds actually matter.
TEST(ShardedExperiment, SameSeedIsDeterministicAcrossShardCounts) {
  for (const std::uint32_t shards : {1u, 2u, 4u}) {
    ExperimentConfig ec = sharded_config(4, 1, 8, shards);
    for (auto& spec : ec.streams) spec.think_jitter = msec(2);
    const std::string first = run_experiment(ec).to_json();
    const std::string second = run_experiment(ec).to_json();
    EXPECT_EQ(first, second) << "non-deterministic at shards=" << shards;
  }
}

TEST(ShardedExperiment, FourShardsCompleteWorkAndExportShardMetrics) {
  const ExperimentConfig ec = sharded_config(4, 2, 16, 4);
  const ExperimentResult result = run_experiment(ec);
  EXPECT_GT(result.requests_completed, 0u);
  EXPECT_GT(result.total_mbps, 0.0);
  EXPECT_EQ(result.stream_mbps.size(), 16u);
  EXPECT_EQ(result.shard_summary.shards, 4u);
  EXPECT_GT(result.shard_summary.windows, 0u);
  EXPECT_GT(result.shard_summary.cross_shard_events, 0u);
  EXPECT_EQ(result.shard_summary.horizon_violations, 0u);
  EXPECT_GT(result.shard_summary.min_shard_events, 0u);
  // Disk traffic reached every shard's slice.
  EXPECT_GT(result.disk_totals.commands, 0u);
  // The registry nests "sim.shard_count" as {"sim": {"shard_count": ...}}.
  const std::string json = result.to_json();
  EXPECT_NE(json.find("\"shard_count\""), std::string::npos);
  EXPECT_NE(json.find("\"shard_horizon_violations\""), std::string::npos);
}

TEST(ShardedExperiment, SingleShardExportsNoShardGroup) {
  const ExperimentConfig ec = sharded_config(2, 1, 4, 1);
  const ExperimentResult result = run_experiment(ec);
  EXPECT_EQ(result.shard_summary.shards, 1u);
  EXPECT_EQ(result.to_json().find("\"shard_count\""), std::string::npos);
}

TEST(ShardedExperiment, RequestedShardsBeyondPlanFallBackGracefully) {
  // Striping forces one shard even when many are requested; the run goes
  // through the single-threaded engine and stays shard-metric-free.
  ExperimentConfig ec = sharded_config(4, 1, 4, 4);
  ec.topology.stack.raid.kind = io::RaidSpec::Kind::kStripe;
  ec.streams = workload::make_uniform_streams(
      4, ec.topology.logical_device_count(), ec.topology.logical_device_capacity(),
      64 * KiB);
  const ExperimentResult result = run_experiment(ec);
  EXPECT_EQ(result.shard_summary.shards, 1u);
  EXPECT_GT(result.requests_completed, 0u);
}

TEST(ShardedExperiment, TracerMergesShardStreamsIntoGlobalTracks) {
  obs::Tracer tracer;
  ExperimentConfig ec = sharded_config(2, 2, 8, 2);
  ec.tracer = &tracer;
  const ExperimentResult result = run_experiment(ec);
  EXPECT_EQ(result.shard_summary.shards, 2u);
  ASSERT_GT(tracer.event_count(), 0u);
  // Disk tracks from shard 1's slice must appear at their global ids
  // (slice-local disk 0 remaps to global disk 2 => track 0x102).
  bool saw_shard1_disk = false;
  for (const auto& event : tracer.events()) {
    if (event.tid >= 0x102 && event.tid < 0x100 + 4) saw_shard1_disk = true;
  }
  EXPECT_TRUE(saw_shard1_disk);
}

TEST(ShardedExperiment, TimeSeriesMergesAllShards) {
  ExperimentConfig ec = sharded_config(2, 1, 4, 2);
  ec.sample_interval = msec(100);
  const ExperimentResult result = run_experiment(ec);
  ASSERT_FALSE(result.timeseries.empty());
  const auto& names = result.timeseries.names;
  const auto has = [&names](const std::string& name) {
    return std::find(names.begin(), names.end(), name) != names.end();
  };
  EXPECT_TRUE(has("mbps"));  // row-wise sum of the per-shard client gauges
  EXPECT_TRUE(has("shard0.mbps"));
  EXPECT_TRUE(has("shard1.mbps"));
  EXPECT_TRUE(has("disk0.queue_depth"));
  EXPECT_TRUE(has("disk1.queue_depth"));  // shard 1's disk, global name
  EXPECT_TRUE(has("shard0.dispatch_set"));
  EXPECT_TRUE(has("shard1.dispatch_set"));
  for (const auto& row : result.timeseries.rows) {
    EXPECT_EQ(row.size(), names.size());
  }
}

}  // namespace
}  // namespace sst::experiment
