// Multi-reactor real-I/O microbench: the same 4-device sequential-stream
// workload through run_experiment_real at backend.reactors = 1 and 2, so
// the reactor-scaling claim ("aggregate throughput grows when the device
// groups split across threads") gets a number instead of an anecdote.
//
// Requires a build with -DSST_WITH_URING=ON and a pattern-formatted
// backing file (scripts/mkpattern.py); exits 2 without the backend and 1
// on a missing/undersized file. Results are machine- and disk-dependent:
// the JSON report is a CI artifact, not a gated baseline, and the 1 -> 2
// reactor scaling floor is only enforced on hosts with >= 4 cores (below
// that the second reactor has no core to run on and the ratio is noise).
//
//   uring_parallel --file PATH [--out FILE] [--streams N]
//                  [--request BYTES] [--measure-ms MS] [--min-scaling X]
//
//   --file PATH        backing file, carved into 4 device slices
//   --out FILE         JSON report path (default BENCH_uring_parallel.json)
//   --streams N        total sequential streams (default 32)
//   --request BYTES    request size (default 65536)
//   --measure-ms MS    measurement window per run (default 2000)
//   --min-scaling X    fail (exit 1) when mbps(2 reactors) / mbps(1) < X
//                      on a >= 4-core host (default 0: report only)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "experiment/runner.hpp"
#include "node/storage_node.hpp"
#include "workload/generator.hpp"

namespace {

using namespace sst;

constexpr std::uint32_t kDevices = 4;

struct RunRow {
  std::uint32_t reactors = 1;
  double mbps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double syscalls_per_request = 0.0;
  std::uint64_t requests = 0;
  std::uint64_t wakeups = 0;
  std::uint64_t spurious = 0;
  std::vector<std::uint64_t> device_completed;
};

experiment::ExperimentConfig make_config(const std::string& file, Bytes span,
                                         std::uint32_t streams, Bytes request,
                                         SimTime measure) {
  node::NodeConfig node = node::NodeConfig::base();
  node.num_controllers = kDevices;
  node.disks_per_controller = 1;
  experiment::ExperimentConfig cfg;
  cfg.topology.node = node;
  cfg.warmup = msec(250);
  cfg.measure = measure;
  cfg.streams = workload::make_uniform_streams(streams, kDevices, span, request);
  core::SchedulerParams sched;
  Bytes ra = span / (streams / kDevices + 1);
  if (ra > 8 * MiB) ra = 8 * MiB;
  if (ra < request) ra = request;
  ra = ra / request * request;
  sched.read_ahead = ra;
  sched.memory_budget = static_cast<Bytes>(streams) * ra;
  sched.dispatch_set_size = 0;  // memory-derived
  cfg.scheduler = sched;
  cfg.backend.kind = experiment::BackendConfig::Kind::kReal;
  cfg.backend.path = file;
  return cfg;
}

RunRow run_one(experiment::ExperimentConfig cfg, std::uint32_t reactors) {
  cfg.backend.reactors = reactors;
  const auto result = experiment::run_experiment(cfg);
  RunRow row;
  row.reactors = reactors;
  row.mbps = result.total_mbps;
  row.p50_ms = result.latency.p50_ms();
  row.p99_ms = result.latency.p99_ms();
  row.syscalls_per_request = result.uring_summary.syscalls_per_request();
  row.requests = result.requests_completed;
  row.wakeups = result.reactor_summary.wakeups;
  row.spurious = result.reactor_summary.spurious_wakeups;
  row.device_completed = result.uring_summary.per_device_completed;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  std::string file;
  std::string out_path = "BENCH_uring_parallel.json";
  std::uint32_t streams = 32;
  Bytes request = 64 * KiB;
  SimTime measure = msec(2000);
  double min_scaling = 0.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "uring_parallel: %s needs a value\n", arg.c_str());
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--file") {
      file = next();
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--streams") {
      streams = static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--request") {
      request = static_cast<Bytes>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--measure-ms") {
      measure = msec(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--min-scaling") {
      min_scaling = std::strtod(next(), nullptr);
    } else {
      std::fprintf(stderr,
                   "usage: uring_parallel --file PATH [--out FILE] [--streams N] "
                   "[--request BYTES] [--measure-ms MS] [--min-scaling X]\n");
      return arg == "--help" || arg == "-h" ? 0 : 1;
    }
  }
  if (!experiment::real_backend_available()) {
    std::fprintf(stderr,
                 "uring_parallel: needs a build with -DSST_WITH_URING=ON\n");
    return 2;
  }
  if (file.empty() || streams < kDevices || request == 0 ||
      request % kSectorSize != 0) {
    std::fprintf(stderr,
                 "uring_parallel: --file is required, streams must be >= %u and "
                 "request a positive multiple of %llu\n",
                 kDevices, static_cast<unsigned long long>(kSectorSize));
    return 1;
  }
  std::error_code ec;
  const auto file_size = std::filesystem::file_size(file, ec);
  if (ec || file_size / kDevices < request * (streams / kDevices + 1)) {
    std::fprintf(stderr,
                 "uring_parallel: %s missing or too small for %u device slices "
                 "(format it with scripts/mkpattern.py)\n",
                 file.c_str(), kDevices);
    return 1;
  }
  // Per-device slice, truncated to whole requests: the span every stream's
  // offsets stay inside regardless of which device homes it.
  const Bytes span = static_cast<Bytes>(file_size) / kDevices / request * request;

  const experiment::ExperimentConfig cfg =
      make_config(file, span, streams, request, measure);
  std::vector<RunRow> rows;
  for (const std::uint32_t reactors : {1u, 2u}) {
    try {
      rows.push_back(run_one(cfg, reactors));
    } catch (const std::exception& err) {
      std::fprintf(stderr, "uring_parallel: %u-reactor run failed: %s\n",
                   reactors, err.what());
      return 1;
    }
  }

  const double scaling = rows[0].mbps > 0 ? rows[1].mbps / rows[0].mbps : 0.0;
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("== uring_parallel (%u devices, %u streams, %llu B requests) ==\n",
              kDevices, streams, static_cast<unsigned long long>(request));
  for (const auto& row : rows) {
    std::printf(
        "%u reactor%s : %8.1f MB/s  p50 %7.3f ms  p99 %7.3f ms  "
        "%.3f enters/req  %llu spurious wakeups\n",
        row.reactors, row.reactors == 1 ? " " : "s", row.mbps, row.p50_ms,
        row.p99_ms, row.syscalls_per_request,
        static_cast<unsigned long long>(row.spurious));
  }
  std::printf("1 -> 2 reactor scaling: %.2fx (%u cores)\n", scaling, cores);

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "uring_parallel: cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n  \"file\": \"%s\",\n  \"devices\": %u,\n  \"streams\": %u,\n"
               "  \"request\": %llu,\n  \"measure_ms\": %.0f,\n"
               "  \"cores\": %u,\n  \"scaling_1_to_2\": %.4f,\n  \"runs\": [\n",
               file.c_str(), kDevices, streams,
               static_cast<unsigned long long>(request), to_millis(measure),
               cores, scaling);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    std::fprintf(out,
                 "    {\"reactors\": %u, \"mbps\": %.3f, \"p50_ms\": %.4f, "
                 "\"p99_ms\": %.4f, \"syscalls_per_request\": %.4f, "
                 "\"requests\": %llu, \"wakeups\": %llu, \"spurious\": %llu, "
                 "\"device_completed\": [",
                 row.reactors, row.mbps, row.p50_ms, row.p99_ms,
                 row.syscalls_per_request,
                 static_cast<unsigned long long>(row.requests),
                 static_cast<unsigned long long>(row.wakeups),
                 static_cast<unsigned long long>(row.spurious));
    for (std::size_t d = 0; d < row.device_completed.size(); ++d) {
      std::fprintf(out, "%s%llu", d ? ", " : "",
                   static_cast<unsigned long long>(row.device_completed[d]));
    }
    std::fprintf(out, "]}%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());

  if (cores >= 4 && min_scaling > 0.0 && scaling < min_scaling) {
    std::fprintf(stderr,
                 "uring_parallel: FAIL: 1 -> 2 reactor scaling %.2fx below the "
                 "%.2fx floor on a %u-core host\n",
                 scaling, min_scaling, cores);
    return 1;
  }
  if (cores < 4) {
    std::printf("uring_parallel: only %u cores, scaling floor not enforced\n",
                cores);
  }
  return 0;
}
