// Figure 7: effect of firmware read-ahead under a FIXED 8 MB disk cache:
// the #segments x segment-size split sweeps from 128x64K to 8x1M. While
// streams <= segments, larger segments help; once streams exceed the
// segment count, segments are reclaimed before their prefetch is consumed
// and large read-ahead becomes WORSE than none.
#include "bench_common.hpp"

namespace {

using namespace sstbench;

node::NodeConfig fig07_node(std::uint32_t num_segments) {
  node::NodeConfig cfg;
  cfg.disk.cache.size = 8 * MiB;
  cfg.disk.cache.num_segments = num_segments;  // segment = 8M / n
  return cfg;
}

SweepCache& fig07_cache() {
  static SweepCache cache(
      "fig07_readahead",
      sweep_grid({{128, 64, 32, 16, 8}, {1, 10, 30, 50, 100}}),
      [](const SweepKey& key) -> std::optional<experiment::ExperimentConfig> {
        const auto num_segments = static_cast<std::uint32_t>(key[0]);
        const auto streams = static_cast<std::uint32_t>(key[1]);
        return raw_config(fig07_node(num_segments), streams, 64 * KiB);
      });
  return cache;
}

void Fig07(benchmark::State& state) {
  const auto num_segments = static_cast<std::uint32_t>(state.range(0));
  const node::NodeConfig cfg = fig07_node(num_segments);

  const experiment::ExperimentResult* result = nullptr;
  for (auto _ : state) {
    result = fig07_cache().result({state.range(0), state.range(1)});
  }
  state.counters["MBps"] = result->total_mbps;
  state.counters["segKB"] =
      static_cast<double>(cfg.disk.cache.segment_bytes()) / 1024.0;
  state.counters["wasted_prefetch_MB"] = static_cast<double>(sectors_to_bytes(
      result->disk_totals.wasted_prefetch_sectors)) / (1 << 20);
  state.counters["media_MB"] =
      static_cast<double>(result->disk_totals.bytes_from_media) / (1 << 20);
}

}  // namespace

BENCHMARK(Fig07)
    ->ArgNames({"segments", "streams"})
    ->ArgsProduct({{128, 64, 32, 16, 8}, {1, 10, 30, 50, 100}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
