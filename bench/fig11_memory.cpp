// Figure 11: effect of storage-node memory size on throughput. The
// dispatch set is derived from memory (D = M / (R*N)), so small memories
// stage only a few streams at a time. The paper's observation: a large R
// with little memory (one 8 MB stream staged at a time) beats dispatching
// all 100 streams with a small R — read-ahead size matters more than
// dispatch-set size.
#include "bench_common.hpp"

namespace {

using namespace sstbench;

core::SchedulerParams fig11_params(Bytes memory, Bytes read_ahead) {
  core::SchedulerParams params;
  params.dispatch_set_size = 0;  // derive D from M / (R*N)
  params.read_ahead = read_ahead;
  params.requests_per_residency = 1;
  params.memory_budget = memory;
  return params;
}

SweepCache& fig11_cache() {
  static SweepCache cache(
      "fig11_memory",
      sweep_grid({{8, 16, 64, 128, 256}, {256, 1024, 8192}, {1, 10, 100}}),
      [](const SweepKey& key) -> std::optional<experiment::ExperimentConfig> {
        const Bytes memory = static_cast<Bytes>(key[0]) * MiB;
        const Bytes read_ahead = static_cast<Bytes>(key[1]) * KiB;
        const auto streams = static_cast<std::uint32_t>(key[2]);
        if (memory < read_ahead) return std::nullopt;  // cannot stage one buffer
        node::NodeConfig cfg;  // 1 disk
        return sched_config(cfg, fig11_params(memory, read_ahead), streams, 64 * KiB);
      });
  return cache;
}

void Fig11(benchmark::State& state) {
  const Bytes memory = static_cast<Bytes>(state.range(0)) * MiB;
  const Bytes read_ahead = static_cast<Bytes>(state.range(1)) * KiB;

  const experiment::ExperimentResult* result = nullptr;
  for (auto _ : state) {
    result = fig11_cache().result({state.range(0), state.range(1), state.range(2)});
  }
  if (result == nullptr) {
    state.SkipWithError("memory cannot stage one read-ahead buffer");
    return;
  }
  state.counters["MBps"] = result->total_mbps;
  state.counters["D_effective"] =
      static_cast<double>(fig11_params(memory, read_ahead).effective_dispatch_size());
}

}  // namespace

BENCHMARK(Fig11)
    ->ArgNames({"memMB", "raKB", "streams"})
    ->ArgsProduct({{8, 16, 64, 128, 256}, {256, 1024, 8192}, {1, 10, 100}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
