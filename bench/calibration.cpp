// Calibration diagnostic: prints the raw numbers of the simulated WD800JD
// disk model and a few end-to-end sanity experiments. Run this first when
// judging whether the simulator matches the paper's testbed:
//   - sequential media rate outer/inner zone      (paper: ~55-60 MB/s app)
//   - average seek                                 (datasheet: 8.9 ms)
//   - single-stream app throughput                 (paper: ~55 MB/s)
//   - 30-stream raw throughput at 64 KB            (paper: collapses)
//   - 30-stream with the scheduler at R=8M         (paper: ~50 MB/s)
#include <cstdio>

#include "core/autotune.hpp"
#include "disk/geometry.hpp"
#include "disk/seek_model.hpp"
#include "experiment/runner.hpp"
#include "node/storage_node.hpp"
#include "workload/generator.hpp"

namespace {

using namespace sst;

double run_streams(std::uint32_t streams, Bytes request, bool with_scheduler, Bytes read_ahead,
                   Bytes memory) {
  experiment::ExperimentConfig cfg;
  cfg.topology.node = node::NodeConfig::base();
  cfg.streams = workload::make_uniform_streams(
      streams, 1, cfg.topology.node.disk.geometry.capacity, request);
  if (with_scheduler) {
    core::SchedulerParams sched;
    sched.read_ahead = read_ahead;
    sched.memory_budget = memory;
    sched.dispatch_set_size = 0;  // memory-derived
    cfg.scheduler = sched;
  }
  const auto result = experiment::run_experiment(cfg);
  return result.total_mbps;
}

}  // namespace

int main() {
  disk::DiskParams params = disk::DiskParams::wd800jd();
  disk::Geometry geometry(params.geometry);
  disk::SeekModel seek(params.seek, geometry.total_cylinders());

  std::printf("== disk model ==\n");
  std::printf("capacity           : %.1f GB\n", geometry.capacity_bytes() / 1e9);
  std::printf("cylinders          : %u\n", geometry.total_cylinders());
  std::printf("rotation period    : %.2f ms\n", to_millis(geometry.rotation_period()));
  std::printf("track skew         : %u sectors\n", geometry.track_skew_sectors());
  std::printf("media rate outer   : %.1f MB/s\n", geometry.media_rate_bps(0) / 1e6);
  std::printf("media rate inner   : %.1f MB/s\n",
              geometry.media_rate_bps(geometry.total_sectors() - 1) / 1e6);
  std::printf("seq rate outer     : %.1f MB/s\n", geometry.sequential_rate_bps(0) / 1e6);
  std::printf("seek 1 cyl         : %.2f ms\n", to_millis(seek.seek_time(1)));
  std::printf("seek C/3 (avg)     : %.2f ms\n",
              to_millis(seek.seek_time(geometry.total_cylinders() / 3)));
  std::printf("seek full stroke   : %.2f ms\n",
              to_millis(seek.seek_time(geometry.total_cylinders() - 1)));

  std::printf("\n== end-to-end sanity (64 KB requests, 1 disk) ==\n");
  std::printf("1 stream raw       : %.1f MB/s\n", run_streams(1, 64 * KiB, false, 0, 0));
  std::printf("30 streams raw     : %.1f MB/s\n", run_streams(30, 64 * KiB, false, 0, 0));
  std::printf("100 streams raw    : %.1f MB/s\n", run_streams(100, 64 * KiB, false, 0, 0));
  std::printf("30 str sched R=8M  : %.1f MB/s\n",
              run_streams(30, 64 * KiB, true, 8 * MiB, 240 * MiB));
  std::printf("100 str sched R=8M : %.1f MB/s\n",
              run_streams(100, 64 * KiB, true, 8 * MiB, 800 * MiB));

  const auto tuned = core::autotune(core::NodeDescription{});
  std::printf("\n== autotune (defaults) ==\n%s\n", tuned.rationale.c_str());
  return 0;
}
