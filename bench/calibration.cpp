// Calibration diagnostic: prints the raw numbers of the simulated WD800JD
// disk model and a few end-to-end sanity experiments. Run this first when
// judging whether the simulator matches the paper's testbed:
//   - sequential media rate outer/inner zone      (paper: ~55-60 MB/s app)
//   - average seek                                 (datasheet: 8.9 ms)
//   - single-stream app throughput                 (paper: ~55 MB/s)
//   - 30-stream raw throughput at 64 KB            (paper: collapses)
//   - 30-stream with the scheduler at R=8M         (paper: ~50 MB/s)
//
// With --real-file it instead becomes the sim-vs-real calibration harness:
// the same 1x1 workload runs once on the simulated backend and once on the
// io_uring backend over the named (pattern-formatted) file, and the paired
// throughput/latency numbers land in a JSON report. Requires a build with
// -DSST_WITH_URING=ON; exits 2 otherwise.
//
//   calibration [--real-file PATH] [--out FILE] [--streams N]
//               [--request BYTES] [--measure-ms MS] [--devices D]
//               [--reactors N]
//
//   --real-file PATH   backing file for the real run (see scripts/mkpattern.py)
//   --out FILE         JSON report path (default BENCH_calibration_real.json)
//   --streams N        concurrent sequential streams (default 64)
//   --request BYTES    request size in bytes (default 65536)
//   --measure-ms MS    measurement window per run (default 2000)
//   --devices D        logical devices / file slices (default 1)
//   --reactors N       when > 1, adds real rows at backend.reactors=N next
//                      to the 1-reactor rows (needs --devices >= N)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>
#include <string>
#include <vector>

#include "core/autotune.hpp"
#include "disk/geometry.hpp"
#include "disk/seek_model.hpp"
#include "experiment/runner.hpp"
#include "node/storage_node.hpp"
#include "workload/generator.hpp"

namespace {

using namespace sst;

double run_streams(std::uint32_t streams, Bytes request, bool with_scheduler, Bytes read_ahead,
                   Bytes memory) {
  experiment::ExperimentConfig cfg;
  cfg.topology.node = node::NodeConfig::base();
  cfg.streams = workload::make_uniform_streams(
      streams, 1, cfg.topology.node.disk.geometry.capacity, request);
  if (with_scheduler) {
    core::SchedulerParams sched;
    sched.read_ahead = read_ahead;
    sched.memory_budget = memory;
    sched.dispatch_set_size = 0;  // memory-derived
    cfg.scheduler = sched;
  }
  const auto result = experiment::run_experiment(cfg);
  return result.total_mbps;
}

struct CalRow {
  std::string mode;     ///< "raw" or "sched"
  std::string backend;  ///< "sim" or "real"
  std::uint32_t reactors = 0;  ///< 0 for sim rows, effective count for real
  double mbps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  double syscalls_per_request = 0.0;  ///< 0 for sim rows
  std::uint64_t requests = 0;
};

/// The shared workload both backends run: N sequential streams spread over
/// `devices` logical devices, each stream inside the first `span` bytes of
/// its device (the real file slice's size).
experiment::ExperimentConfig cal_config(std::uint32_t streams, Bytes request,
                                        SimTime measure, Bytes span,
                                        bool with_scheduler,
                                        std::uint32_t devices) {
  node::NodeConfig node = node::NodeConfig::base();
  node.num_controllers = devices;
  node.disks_per_controller = 1;
  experiment::ExperimentConfig cfg;
  cfg.topology.node = node;
  cfg.warmup = msec(250);
  cfg.measure = measure;
  cfg.streams = workload::make_uniform_streams(streams, devices, span, request);
  if (with_scheduler) {
    // The paper's R=8M only fits when the backing file is large; scale the
    // per-stream read-ahead down so each device's resident streams' staging
    // stays inside its slice while keeping the request multiple the
    // scheduler expects.
    const std::uint32_t per_device = streams / devices > 0 ? streams / devices : 1;
    Bytes ra = span / per_device;
    if (ra > 8 * MiB) ra = 8 * MiB;
    if (ra < request) ra = request;
    ra = ra / request * request;
    core::SchedulerParams sched;
    sched.read_ahead = ra;
    sched.memory_budget = static_cast<Bytes>(streams) * ra;
    sched.dispatch_set_size = 0;  // memory-derived
    cfg.scheduler = sched;
  }
  return cfg;
}

CalRow run_one(const experiment::ExperimentConfig& cfg, const char* mode,
               const char* backend) {
  const auto result = experiment::run_experiment(cfg);
  CalRow row;
  row.mode = mode;
  row.backend = backend;
  row.reactors = result.reactor_summary.enabled ? result.reactor_summary.reactors : 0;
  row.mbps = result.total_mbps;
  row.p50_ms = result.latency.p50_ms();
  row.p99_ms = result.latency.p99_ms();
  row.p999_ms = result.latency.p999_ms();
  row.syscalls_per_request = result.uring_summary.syscalls_per_request();
  row.requests = result.requests_completed;
  return row;
}

/// Sim-vs-real comparison over the same workload; writes the JSON report.
int run_real_calibration(const std::string& file, const std::string& out_path,
                         std::uint32_t streams, Bytes request, SimTime measure,
                         std::uint32_t devices, std::uint32_t reactors) {
  if (!experiment::real_backend_available()) {
    std::fprintf(stderr,
                 "calibration: --real-file needs a build with -DSST_WITH_URING=ON\n");
    return 2;
  }
  std::error_code ec;
  const auto file_size = std::filesystem::file_size(file, ec);
  if (ec || file_size < request * streams) {
    std::fprintf(stderr,
                 "calibration: %s missing or smaller than streams*request "
                 "(format it with scripts/mkpattern.py)\n",
                 file.c_str());
    return 1;
  }
  // Per-device slice, truncated to whole requests.
  const Bytes span =
      static_cast<Bytes>(file_size) / devices / request * request;

  std::vector<CalRow> rows;
  for (const bool with_scheduler : {false, true}) {
    const char* mode = with_scheduler ? "sched" : "raw";
    experiment::ExperimentConfig cfg =
        cal_config(streams, request, measure, span, with_scheduler, devices);
    rows.push_back(run_one(cfg, mode, "sim"));
    cfg.backend.kind = experiment::BackendConfig::Kind::kReal;
    cfg.backend.path = file;
    std::vector<std::uint32_t> reactor_counts{1};
    if (reactors > 1) reactor_counts.push_back(reactors);
    for (const std::uint32_t r : reactor_counts) {
      cfg.backend.reactors = r;
      try {
        rows.push_back(run_one(cfg, mode, "real"));
      } catch (const std::exception& err) {
        std::fprintf(stderr, "calibration: real run failed: %s\n", err.what());
        return 1;
      }
    }
  }

  std::printf("== sim vs real (%u streams, %llu B requests, %u device%s, %s) ==\n",
              streams, static_cast<unsigned long long>(request), devices,
              devices == 1 ? "" : "s", file.c_str());
  for (const auto& row : rows) {
    if (row.reactors > 0) {
      std::printf(
          "%-5s %-4s r=%u : %8.1f MB/s  p50 %7.3f ms  p99 %7.3f ms  "
          "%.3f enters/req\n",
          row.mode.c_str(), row.backend.c_str(), row.reactors, row.mbps,
          row.p50_ms, row.p99_ms, row.syscalls_per_request);
    } else {
      std::printf("%-5s %-4s     : %8.1f MB/s  p50 %7.3f ms  p99 %7.3f ms\n",
                  row.mode.c_str(), row.backend.c_str(), row.mbps, row.p50_ms,
                  row.p99_ms);
    }
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "calibration: cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n  \"file\": \"%s\",\n  \"streams\": %u,\n"
               "  \"request\": %llu,\n  \"measure_ms\": %.0f,\n"
               "  \"devices\": %u,\n  \"runs\": [\n",
               file.c_str(), streams, static_cast<unsigned long long>(request),
               to_millis(measure), devices);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    std::fprintf(out,
                 "    {\"mode\": \"%s\", \"backend\": \"%s\", \"reactors\": %u, "
                 "\"mbps\": %.3f, "
                 "\"p50_ms\": %.4f, \"p99_ms\": %.4f, \"p999_ms\": %.4f, "
                 "\"syscalls_per_request\": %.4f, "
                 "\"requests\": %llu}%s\n",
                 row.mode.c_str(), row.backend.c_str(), row.reactors, row.mbps,
                 row.p50_ms, row.p99_ms, row.p999_ms, row.syscalls_per_request,
                 static_cast<unsigned long long>(row.requests),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string real_file;
  std::string out_path = "BENCH_calibration_real.json";
  std::uint32_t streams = 64;
  Bytes request = 64 * KiB;
  SimTime measure = msec(2000);
  std::uint32_t devices = 1;
  std::uint32_t reactors = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "calibration: %s needs a value\n", arg.c_str());
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--real-file") {
      real_file = next();
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--streams") {
      streams = static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--request") {
      request = static_cast<Bytes>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--measure-ms") {
      measure = msec(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--devices") {
      devices = static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--reactors") {
      reactors = static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: calibration [--real-file PATH] [--out FILE] "
                   "[--streams N] [--request BYTES] [--measure-ms MS] "
                   "[--devices D] [--reactors N]\n");
      return arg == "--help" || arg == "-h" ? 0 : 1;
    }
  }
  if (!real_file.empty()) {
    if (streams == 0 || request == 0 || request % kSectorSize != 0) {
      std::fprintf(stderr,
                   "calibration: streams must be > 0 and request a positive "
                   "multiple of %llu\n",
                   static_cast<unsigned long long>(kSectorSize));
      return 1;
    }
    if (devices == 0 || reactors == 0 || streams < devices || reactors > devices) {
      std::fprintf(stderr,
                   "calibration: need devices >= 1, streams >= devices and "
                   "reactors <= devices\n");
      return 1;
    }
    return run_real_calibration(real_file, out_path, streams, request, measure,
                                devices, reactors);
  }
  disk::DiskParams params = disk::DiskParams::wd800jd();
  disk::Geometry geometry(params.geometry);
  disk::SeekModel seek(params.seek, geometry.total_cylinders());

  std::printf("== disk model ==\n");
  std::printf("capacity           : %.1f GB\n", geometry.capacity_bytes() / 1e9);
  std::printf("cylinders          : %u\n", geometry.total_cylinders());
  std::printf("rotation period    : %.2f ms\n", to_millis(geometry.rotation_period()));
  std::printf("track skew         : %u sectors\n", geometry.track_skew_sectors());
  std::printf("media rate outer   : %.1f MB/s\n", geometry.media_rate_bps(0) / 1e6);
  std::printf("media rate inner   : %.1f MB/s\n",
              geometry.media_rate_bps(geometry.total_sectors() - 1) / 1e6);
  std::printf("seq rate outer     : %.1f MB/s\n", geometry.sequential_rate_bps(0) / 1e6);
  std::printf("seek 1 cyl         : %.2f ms\n", to_millis(seek.seek_time(1)));
  std::printf("seek C/3 (avg)     : %.2f ms\n",
              to_millis(seek.seek_time(geometry.total_cylinders() / 3)));
  std::printf("seek full stroke   : %.2f ms\n",
              to_millis(seek.seek_time(geometry.total_cylinders() - 1)));

  std::printf("\n== end-to-end sanity (64 KB requests, 1 disk) ==\n");
  std::printf("1 stream raw       : %.1f MB/s\n", run_streams(1, 64 * KiB, false, 0, 0));
  std::printf("30 streams raw     : %.1f MB/s\n", run_streams(30, 64 * KiB, false, 0, 0));
  std::printf("100 streams raw    : %.1f MB/s\n", run_streams(100, 64 * KiB, false, 0, 0));
  std::printf("30 str sched R=8M  : %.1f MB/s\n",
              run_streams(30, 64 * KiB, true, 8 * MiB, 240 * MiB));
  std::printf("100 str sched R=8M : %.1f MB/s\n",
              run_streams(100, 64 * KiB, true, 8 * MiB, 800 * MiB));

  const auto tuned = core::autotune(core::NodeDescription{});
  std::printf("\n== autotune (defaults) ==\n%s\n", tuned.rationale.c_str());
  return 0;
}
