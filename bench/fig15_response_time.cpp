// Figure 15: average stream response time (client-observed, 64 KB
// requests, one outstanding per stream) versus read-ahead size, for
// 1/10/100 streams and 8/64/256 MB of storage-node memory. The paper's
// findings: response time is driven primarily by the number of streams;
// at a fixed stream count, larger read-ahead *reduces* mean response time
// (most requests become buffered-set hits); memory helps when it lets more
// streams stage.
#include <cmath>

#include "bench_common.hpp"

namespace {

using namespace sstbench;

SweepCache& fig15_cache() {
  static SweepCache cache(
      "fig15_response_time",
      sweep_grid({{256, 1024, 8192}, {8, 64, 256}, {1, 10, 100}}),
      [](const SweepKey& key) -> std::optional<experiment::ExperimentConfig> {
        const Bytes read_ahead = static_cast<Bytes>(key[0]) * KiB;
        const Bytes memory = static_cast<Bytes>(key[1]) * MiB;
        const auto streams = static_cast<std::uint32_t>(key[2]);
        if (memory < read_ahead) return std::nullopt;  // cannot stage one buffer

        node::NodeConfig cfg;  // 1 disk
        core::SchedulerParams params;
        params.dispatch_set_size = 0;  // D = M / (R*N)
        params.read_ahead = read_ahead;
        params.requests_per_residency = 1;
        params.memory_budget = memory;
        auto config = sched_config(cfg, params, streams, 64 * KiB, sec(4), sec(16));
        // Attribution on: the bench asserts that per-stage sums reconcile
        // with the client-observed end-to-end response time.
        config.attribution = true;
        return config;
      });
  return cache;
}

void Fig15(benchmark::State& state) {
  const experiment::ExperimentResult* result = nullptr;
  for (auto _ : state) {
    result = fig15_cache().result({state.range(0), state.range(1), state.range(2)});
  }
  if (result == nullptr) {
    state.SkipWithError("memory cannot stage one read-ahead buffer");
    return;
  }
  state.counters["mean_ms"] = result->latency.mean_ms();
  state.counters["p50_ms"] = result->latency.p50_ms();
  state.counters["p95_ms"] = result->latency.p95_ms();
  state.counters["p99_ms"] = result->latency.p99_ms();
  state.counters["p999_ms"] = result->latency.p999_ms();
  state.counters["MBps"] = result->total_mbps;
  // Latency attribution: the four stage sums partition the summed
  // end-to-end response time exactly (by construction); surface both so a
  // regression in the stitching shows up as a nonzero residual.
  const double stage_sum = result->breakdown.stage_sum_ms();
  const double e2e_sum = result->latency.total_ms();
  state.counters["queue_mean_ms"] =
      result->breakdown.queue.count() > 0 ? result->breakdown.queue.mean_ms() : 0.0;
  state.counters["staging_mean_ms"] =
      result->breakdown.staging.count() > 0 ? result->breakdown.staging.mean_ms()
                                            : 0.0;
  state.counters["stage_residual_ms"] = stage_sum - e2e_sum;
  if (std::abs(stage_sum - e2e_sum) > 1e-6 * std::max(1.0, e2e_sum)) {
    state.SkipWithError("stage sums do not reconcile with end-to-end latency");
  }
}

}  // namespace

BENCHMARK(Fig15)
    ->ArgNames({"raKB", "memMB", "streams"})
    ->ArgsProduct({{256, 1024, 8192}, {8, 64, 256}, {1, 10, 100}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
