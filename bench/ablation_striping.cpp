// Ablation: expose the 8 disks individually (one sub-population of
// sequential streams per spindle, the paper's deployment) versus a single
// RAID-0 striped volume. Striping chops every client-sequential stream
// into stripe-unit-sized fragments interleaved across all spindles: each
// disk now sees S interleaved near-random fragment streams instead of S/8
// long sequential ones, multiplying the positioning overhead — unless the
// stripe unit is large enough to amortize a seek by itself.
#include <map>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "raid/striped_volume.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace sstbench;

double run_striped(std::uint32_t streams, Bytes stripe_unit, Bytes request) {
  sim::Simulator simulator;
  node::NodeConfig cfg = node::NodeConfig::medium();  // 8 disks
  node::StorageNode node(simulator, cfg);
  raid::StripedVolume volume(node.devices(), stripe_unit);

  auto specs = workload::make_uniform_streams(streams, 1, volume.capacity(), request);
  workload::RequestSink sink = [&volume](core::ClientRequest req) {
    blockdev::BlockRequest io;
    io.offset = req.offset;
    io.length = req.length;
    io.op = req.op;
    io.data = req.data;
    io.on_complete = std::move(req.on_complete);
    volume.submit(std::move(io));
  };
  std::vector<std::unique_ptr<workload::StreamClient>> clients;
  for (const auto& spec : specs) {
    clients.push_back(std::make_unique<workload::StreamClient>(simulator, sink, spec,
                                                               volume.capacity()));
  }
  for (auto& c : clients) c->start();
  simulator.run_until(sec(2));
  for (auto& c : clients) c->begin_measurement();
  const SimTime t0 = simulator.now();
  const SimTime t1 = t0 + sec(10);
  simulator.run_until(t1);
  double total = 0.0;
  for (const auto& c : clients) total += c->stats().throughput.mbps(t0, t1);
  return total;
}

// Mixed harness (the striped series bypasses ExperimentConfig), so the
// whole grid fans out through run_sweep_jobs with the scalar throughput
// carried in ExperimentResult::total_mbps.
const std::map<SweepKey, double>& striping_results() {
  static const std::map<SweepKey, double> results = [] {
    const std::vector<SweepKey> keys = sweep_grid({{80, 240}, {0, 64, 512, 4096}});
    std::vector<std::function<experiment::ExperimentResult()>> jobs;
    jobs.reserve(keys.size());
    for (const SweepKey& key : keys) {
      jobs.push_back([key] {
        const auto streams = static_cast<std::uint32_t>(key[0]);
        const Bytes stripe_kb = static_cast<Bytes>(key[1]);
        if (stripe_kb == 0) {
          // Per-spindle placement (the paper's deployment).
          return experiment::run_experiment(
              raw_config(node::NodeConfig::medium(), streams, 64 * KiB));
        }
        experiment::ExperimentResult r;
        r.total_mbps = run_striped(streams, stripe_kb * KiB, 64 * KiB);
        return r;
      });
    }
    const auto raw = experiment::run_sweep_jobs(jobs);
    std::map<SweepKey, double> out;
    for (std::size_t i = 0; i < keys.size(); ++i) out.emplace(keys[i], raw[i].total_mbps);
    return out;
  }();
  return results;
}

void AblationStriping(benchmark::State& state) {
  const Bytes stripe_kb = static_cast<Bytes>(state.range(1));
  double mbps = 0.0;
  for (auto _ : state) {
    mbps = striping_results().at({state.range(0), state.range(1)});
  }
  state.SetLabel(stripe_kb == 0 ? "per-spindle"
                                : "raid0/" + std::to_string(stripe_kb) + "K");
  state.counters["MBps"] = mbps;
}

}  // namespace

BENCHMARK(AblationStriping)
    ->ArgNames({"streams", "stripeKB"})
    ->ArgsProduct({{80, 240}, {0, 64, 512, 4096}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
