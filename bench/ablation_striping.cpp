// Ablation: expose the 8 disks individually (one sub-population of
// sequential streams per spindle, the paper's deployment) versus a single
// RAID-0 striped volume. Striping chops every client-sequential stream
// into stripe-unit-sized fragments interleaved across all spindles: each
// disk now sees S interleaved near-random fragment streams instead of S/8
// long sequential ones, multiplying the positioning overhead — unless the
// stripe unit is large enough to amortize a seek by itself.
#include "bench_common.hpp"

namespace {

using namespace sstbench;

// Both series build through the declarative topology: stripeKB == 0 keeps
// the flat device view, anything else stacks a RAID-0 volume over all 8
// disks. raw_config sizes the stream population against the logical view
// (one striped volume gets every stream).
std::optional<experiment::ExperimentConfig> striping_config(const SweepKey& key) {
  const auto streams = static_cast<std::uint32_t>(key[0]);
  const Bytes stripe_kb = static_cast<Bytes>(key[1]);
  io::StackSpec stack;
  if (stripe_kb != 0) {
    stack.raid.kind = io::RaidSpec::Kind::kStripe;
    stack.raid.stripe_unit = stripe_kb * KiB;
  }
  return raw_config(node::NodeConfig::medium(), streams, 64 * KiB, sec(2), sec(10),
                    stack);
}

SweepCache& striping_cache() {
  static SweepCache cache("ablation_striping",
                          sweep_grid({{80, 240}, {0, 64, 512, 4096}}),
                          striping_config);
  return cache;
}

void AblationStriping(benchmark::State& state) {
  const Bytes stripe_kb = static_cast<Bytes>(state.range(1));
  double mbps = 0.0;
  for (auto _ : state) {
    mbps = striping_cache().result({state.range(0), state.range(1)})->total_mbps;
  }
  state.SetLabel(stripe_kb == 0 ? "per-spindle"
                                : "raid0/" + std::to_string(stripe_kb) + "K");
  state.counters["MBps"] = mbps;
}

}  // namespace

BENCHMARK(AblationStriping)
    ->ArgNames({"streams", "stripeKB"})
    ->ArgsProduct({{80, 240}, {0, 64, 512, 4096}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
