// Ablation: expose the 8 disks individually (one sub-population of
// sequential streams per spindle, the paper's deployment) versus a single
// RAID-0 striped volume. Striping chops every client-sequential stream
// into stripe-unit-sized fragments interleaved across all spindles: each
// disk now sees S interleaved near-random fragment streams instead of S/8
// long sequential ones, multiplying the positioning overhead — unless the
// stripe unit is large enough to amortize a seek by itself.
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "raid/striped_volume.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace sstbench;

double run_striped(std::uint32_t streams, Bytes stripe_unit, Bytes request) {
  sim::Simulator simulator;
  node::NodeConfig cfg = node::NodeConfig::medium();  // 8 disks
  node::StorageNode node(simulator, cfg);
  raid::StripedVolume volume(node.devices(), stripe_unit);

  auto specs = workload::make_uniform_streams(streams, 1, volume.capacity(), request);
  workload::RequestSink sink = [&volume](core::ClientRequest req) {
    blockdev::BlockRequest io;
    io.offset = req.offset;
    io.length = req.length;
    io.op = req.op;
    io.data = req.data;
    io.on_complete = std::move(req.on_complete);
    volume.submit(std::move(io));
  };
  std::vector<std::unique_ptr<workload::StreamClient>> clients;
  for (const auto& spec : specs) {
    clients.push_back(std::make_unique<workload::StreamClient>(simulator, sink, spec,
                                                               volume.capacity()));
  }
  for (auto& c : clients) c->start();
  simulator.run_until(sec(2));
  for (auto& c : clients) c->begin_measurement();
  const SimTime t0 = simulator.now();
  const SimTime t1 = t0 + sec(10);
  simulator.run_until(t1);
  double total = 0.0;
  for (const auto& c : clients) total += c->stats().throughput.mbps(t0, t1);
  return total;
}

void AblationStriping(benchmark::State& state) {
  const auto streams = static_cast<std::uint32_t>(state.range(0));
  const Bytes stripe_kb = static_cast<Bytes>(state.range(1));
  double mbps = 0.0;
  if (stripe_kb == 0) {
    // Per-spindle placement (the paper's deployment).
    node::NodeConfig cfg = node::NodeConfig::medium();
    experiment::ExperimentResult result;
    for (auto _ : state) result = run_raw(cfg, streams, 64 * KiB);
    mbps = result.total_mbps;
    state.SetLabel("per-spindle");
  } else {
    for (auto _ : state) mbps = run_striped(streams, stripe_kb * KiB, 64 * KiB);
    state.SetLabel("raid0/" + std::to_string(stripe_kb) + "K");
  }
  state.counters["MBps"] = mbps;
}

}  // namespace

BENCHMARK(AblationStriping)
    ->ArgNames({"streams", "stripeKB"})
    ->ArgsProduct({{80, 240}, {0, 64, 512, 4096}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
