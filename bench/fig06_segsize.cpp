// Figure 6: effect of disk-cache segment size on throughput with 30
// sequential streams, 64 KB requests, the segment count fixed at 32 (so
// total cache grows with segment size). Bigger segments = more firmware
// read-ahead per miss = fewer positioning operations per byte: throughput
// climbs from ~8 MB/s at 32 KB segments to ~40 MB/s at 2 MB segments.
#include "bench_common.hpp"

namespace {

using namespace sstbench;

constexpr std::uint32_t kSegments = 32;
constexpr std::uint32_t kStreams = 30;

SweepCache& fig06_cache() {
  static SweepCache cache(
      "fig06_segsize",
      sweep_grid({{32, 64, 128, 256, 512, 1024, 2048}}),
      [](const SweepKey& key) -> std::optional<experiment::ExperimentConfig> {
        const Bytes segment = static_cast<Bytes>(key[0]) * KiB;
        node::NodeConfig cfg;
        cfg.disk.cache.num_segments = kSegments;
        cfg.disk.cache.size = segment * kSegments;
        return raw_config(cfg, kStreams, 64 * KiB);
      });
  return cache;
}

void Fig06(benchmark::State& state) {
  const Bytes segment = static_cast<Bytes>(state.range(0)) * KiB;

  const experiment::ExperimentResult* result = nullptr;
  for (auto _ : state) {
    result = fig06_cache().result({state.range(0)});
  }
  state.counters["MBps"] = result->total_mbps;
  state.counters["cache_MB"] = static_cast<double>(segment * kSegments) / (1 << 20);
}

}  // namespace

BENCHMARK(Fig06)
    ->ArgNames({"segKB"})
    ->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Arg(512)->Arg(1024)->Arg(2048)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
