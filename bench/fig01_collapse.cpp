// Figure 1: throughput collapse for multiple sequential streams on a
// 60-disk setup (15 controllers x 4 disks), request sizes 8K-256K, for
// 60/100/300/500 total streams. No host scheduler — this is the problem
// statement: as streams per disk grow, aggregate throughput collapses by
// a factor of 2-5.
#include "bench_common.hpp"

namespace {

using namespace sstbench;

node::NodeConfig fig01_node() {
  node::NodeConfig cfg;
  cfg.num_controllers = 15;
  cfg.disks_per_controller = 4;  // 60 disks
  return cfg;
}

SweepCache& fig01_cache() {
  static SweepCache cache(
      "fig01_collapse",
      sweep_grid({{60, 100, 300, 500}, {8, 16, 64, 128, 256}}),
      [](const SweepKey& key) -> std::optional<experiment::ExperimentConfig> {
        const auto streams = static_cast<std::uint32_t>(key[0]);
        const Bytes request = static_cast<Bytes>(key[1]) * KiB;
        return raw_config(fig01_node(), streams, request, sec(2), sec(8));
      });
  return cache;
}

void Fig01(benchmark::State& state) {
  const auto streams = static_cast<std::uint32_t>(state.range(0));
  const node::NodeConfig cfg = fig01_node();

  const experiment::ExperimentResult* result = nullptr;
  for (auto _ : state) {
    result = fig01_cache().result({state.range(0), state.range(1)});
  }
  state.counters["MBps"] = result->total_mbps;
  state.counters["MBps_per_disk"] = result->per_disk_mbps(cfg.total_disks());
  state.counters["streams_per_disk"] =
      static_cast<double>(streams) / cfg.total_disks();
}

}  // namespace

BENCHMARK(Fig01)
    ->ArgNames({"streams", "reqKB"})
    ->ArgsProduct({{60, 100, 300, 500}, {8, 16, 64, 128, 256}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
