// Ablation: classifier sensitivity. Sweeps the detection threshold (bits
// set in a region before a stream is declared) and the region half-width.
// A higher threshold delays read-ahead (more direct I/Os before detection);
// an overly small region can fail to capture a stream whose requests jump
// in larger strides. Throughput should be robust across sane values — the
// paper picks "a few tens" of blocks and finds it adequate.
#include "bench_common.hpp"

namespace {

using namespace sstbench;

constexpr std::uint32_t kStreams = 60;

SweepCache& classifier_cache() {
  static SweepCache cache(
      "ablation_classifier",
      sweep_grid({{2, 3, 4, 8}, {8, 32, 128}}),
      [](const SweepKey& key) -> std::optional<experiment::ExperimentConfig> {
        const auto threshold = static_cast<std::uint32_t>(key[0]);
        const auto offset_blocks = static_cast<std::uint32_t>(key[1]);

        node::NodeConfig cfg;
        core::SchedulerParams params =
            paper_params(kStreams, 2 * MiB, 1, static_cast<Bytes>(kStreams) * 2 * MiB);
        params.classifier.detect_threshold = threshold;
        params.classifier.offset_blocks = offset_blocks;
        return sched_config(cfg, params, kStreams, 64 * KiB);
      });
  return cache;
}

void AblationClassifier(benchmark::State& state) {
  const experiment::ExperimentResult* result = nullptr;
  for (auto _ : state) {
    result = classifier_cache().result({state.range(0), state.range(1)});
  }
  state.counters["MBps"] = result->total_mbps;
  const double total = static_cast<double>(result->server_stats.requests);
  state.counters["direct_frac"] =
      total > 0 ? static_cast<double>(result->server_stats.direct_reads) / total : 0.0;
  state.counters["streams_detected"] =
      static_cast<double>(result->scheduler_stats.streams_created);
}

}  // namespace

BENCHMARK(AblationClassifier)
    ->ArgNames({"threshold", "offset_blocks"})
    ->ArgsProduct({{2, 3, 4, 8}, {8, 32, 128}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
