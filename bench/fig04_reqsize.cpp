// Figure 4: impact of workload request size on single-disk throughput with
// the disk cache tuned so no prefetching happens (segment size = request
// size, read-ahead disabled), 8 MB total cache. Streams 1-100, request
// sizes 8K-256K. Larger requests amortize positioning; one stream runs at
// media rate, many streams pay a seek per request.
#include "bench_common.hpp"

namespace {

using namespace sstbench;

SweepCache& fig04_cache() {
  static SweepCache cache(
      "fig04_reqsize",
      sweep_grid({{1, 10, 30, 60, 100}, {8, 16, 64, 128, 256}}),
      [](const SweepKey& key) -> std::optional<experiment::ExperimentConfig> {
        const auto streams = static_cast<std::uint32_t>(key[0]);
        const Bytes request = static_cast<Bytes>(key[1]) * KiB;
        node::NodeConfig cfg;  // base: 1 controller, 1 disk
        cfg.disk.cache.size = 8 * MiB;
        cfg.disk.cache.num_segments = static_cast<std::uint32_t>((8 * MiB) / request);
        cfg.disk.cache.read_ahead = 0;  // "ensures that no prefetching takes place"
        return raw_config(cfg, streams, request);
      });
  return cache;
}

void Fig04(benchmark::State& state) {
  const experiment::ExperimentResult* result = nullptr;
  for (auto _ : state) {
    result = fig04_cache().result({state.range(0), state.range(1)});
  }
  state.counters["MBps"] = result->total_mbps;
  state.counters["disk_cache_hits"] = static_cast<double>(result->disk_totals.cache_hits);
}

}  // namespace

BENCHMARK(Fig04)
    ->ArgNames({"streams", "reqKB"})
    ->ArgsProduct({{1, 10, 30, 60, 100}, {8, 16, 64, 128, 256}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
