// Ablation: dispatch-set replacement policy. The paper uses round-robin
// and sketches an offset-proximity alternative ("keep streams that access
// nearby areas of the disk in the dispatch set"), noting its benefit is
// unclear because issued requests are already large. This bench pits the
// two policies against each other with a small dispatch set and many
// streams, across read-ahead sizes — at large R the difference should
// vanish, which is exactly the paper's argument for round-robin.
#include "bench_common.hpp"

namespace {

using namespace sstbench;

constexpr std::uint32_t kStreams = 64;

SweepCache& policy_cache() {
  static SweepCache cache(
      "ablation_policy",
      sweep_grid({{static_cast<std::int64_t>(core::DispatchPolicyKind::kRoundRobin),
                   static_cast<std::int64_t>(core::DispatchPolicyKind::kNearestOffset)},
                  {128, 512, 2048}}),
      [](const SweepKey& key) -> std::optional<experiment::ExperimentConfig> {
        const auto policy = static_cast<core::DispatchPolicyKind>(key[0]);
        const Bytes read_ahead = static_cast<Bytes>(key[1]) * KiB;

        node::NodeConfig cfg;  // 1 disk
        core::SchedulerParams params;
        params.dispatch_set_size = 4;
        params.read_ahead = read_ahead;
        params.requests_per_residency = 4;
        params.memory_budget =
            static_cast<Bytes>(params.dispatch_set_size) * read_ahead *
                params.requests_per_residency +
            64 * MiB;
        params.policy = policy;
        return sched_config(cfg, params, kStreams, 64 * KiB, sec(4), sec(16));
      });
  return cache;
}

void AblationPolicy(benchmark::State& state) {
  const auto policy = static_cast<core::DispatchPolicyKind>(state.range(0));

  const experiment::ExperimentResult* result = nullptr;
  for (auto _ : state) {
    result = policy_cache().result({state.range(0), state.range(1)});
  }
  state.counters["MBps"] = result->total_mbps;
  state.counters["fairness_min_max"] =
      result->max_stream_mbps > 0 ? result->min_stream_mbps / result->max_stream_mbps : 0.0;
  state.SetLabel(core::to_string(policy));
}

}  // namespace

BENCHMARK(AblationPolicy)
    ->ArgNames({"policy", "raKB"})
    ->ArgsProduct({{static_cast<long>(core::DispatchPolicyKind::kRoundRobin),
                    static_cast<long>(core::DispatchPolicyKind::kNearestOffset)},
                   {128, 512, 2048}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
