// Figure 5: the xdd microbenchmark on the real disk — here the same sweep
// against the disk model with its *fixed* firmware segment layout (32 x
// 256 KB, fill-the-segment read-ahead), which is why small requests do
// relatively well compared to Figure 4: each miss prefetches a whole
// segment, and subsequent small requests hit cache — until more streams
// than segments thrash it. Streams 1-50, request sizes 8K-256K.
#include "bench_common.hpp"

namespace {

using namespace sstbench;

SweepCache& fig05_cache() {
  static SweepCache cache(
      "fig05_xdd",
      sweep_grid({{1, 10, 20, 30, 50}, {8, 16, 64, 128, 256}}),
      [](const SweepKey& key) -> std::optional<experiment::ExperimentConfig> {
        const auto streams = static_cast<std::uint32_t>(key[0]);
        const Bytes request = static_cast<Bytes>(key[1]) * KiB;
        node::NodeConfig cfg;  // stock WD800JD: 8 MB cache, 32 segments, fill RA
        return raw_config(cfg, streams, request);
      });
  return cache;
}

void Fig05(benchmark::State& state) {
  const experiment::ExperimentResult* result = nullptr;
  for (auto _ : state) {
    result = fig05_cache().result({state.range(0), state.range(1)});
  }
  state.counters["MBps"] = result->total_mbps;
  const auto& d = result->disk_totals;
  const double lookups = static_cast<double>(d.cache_hits + d.cache_misses);
  state.counters["hit_rate"] =
      lookups > 0 ? static_cast<double>(d.cache_hits) / lookups : 0.0;
}

}  // namespace

BENCHMARK(Fig05)
    ->ArgNames({"streams", "reqKB"})
    ->ArgsProduct({{1, 10, 20, 30, 50}, {8, 16, 64, 128, 256}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
