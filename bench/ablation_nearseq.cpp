// Ablation: near-sequential streams (requests separated by gaps — the
// future-work case the paper names in §4.1). As the duty cycle drops, the
// raw disk degrades towards random I/O; the stream scheduler keeps
// detecting the runs (while the stride fits the classifier region) and
// trades wasted read-ahead bytes for seek amortization. The crossover
// where contiguous read-ahead stops paying off is the interesting number.
#include "bench_common.hpp"

namespace {

using namespace sstbench;

constexpr std::uint32_t kStreams = 30;
constexpr Bytes kRequest = 64 * KiB;

SweepCache& nearseq_cache() {
  static SweepCache cache(
      "ablation_nearseq",
      sweep_grid({{0, 64, 256, 1024}, {0, 1}}),
      [](const SweepKey& key) -> std::optional<experiment::ExperimentConfig> {
        const Bytes gap = static_cast<Bytes>(key[0]) * KiB;
        const bool with_sched = key[1] != 0;

        node::NodeConfig cfg;  // 1 disk
        experiment::ExperimentConfig ec;
        ec.topology.node = cfg;
        ec.warmup = sec(2);
        ec.measure = sec(10);
        ec.streams = workload::make_uniform_streams(kStreams, 1,
                                                    cfg.disk.geometry.capacity, kRequest);
        for (auto& spec : ec.streams) spec.stride_gap = gap;
        if (with_sched) {
          core::SchedulerParams p;
          p.read_ahead = 2 * MiB;
          p.memory_budget = static_cast<Bytes>(kStreams) * 2 * MiB;
          // Wide regions so large strides remain detectable.
          p.classifier.offset_blocks = 64;
          ec.scheduler = p;
        }
        return ec;
      });
  return cache;
}

void AblationNearSeq(benchmark::State& state) {
  const Bytes gap = static_cast<Bytes>(state.range(0)) * KiB;
  const bool with_sched = state.range(1) != 0;

  const experiment::ExperimentResult* result = nullptr;
  for (auto _ : state) {
    result = nearseq_cache().result({state.range(0), state.range(1)});
  }
  state.counters["MBps"] = result->total_mbps;
  state.counters["useful_frac"] =
      static_cast<double>(kRequest) / static_cast<double>(kRequest + gap);
  state.SetLabel(with_sched ? "scheduler" : "raw");
}

}  // namespace

BENCHMARK(AblationNearSeq)
    ->ArgNames({"gapKB", "sched"})
    ->ArgsProduct({{0, 64, 256, 1024}, {0, 1}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
