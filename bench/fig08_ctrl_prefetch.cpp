// Figure 8: prefetching at the controller level with a 128 MB controller
// cache, prefetch sizes 64K-4M, streams 1-100 on one disk. Small prefetch
// already recovers most throughput at 10 streams; once
// streams x prefetch outruns the cache, extents are evicted before use and
// throughput collapses towards zero (the paper's 60/100-stream crash at
// 4 MB read-ahead).
#include "bench_common.hpp"

namespace {

using namespace sstbench;

SweepCache& fig08_cache() {
  static SweepCache cache(
      "fig08_ctrl_prefetch",
      sweep_grid({{64, 256, 512, 1024, 2048, 4096}, {1, 10, 30, 60, 100}}),
      [](const SweepKey& key) -> std::optional<experiment::ExperimentConfig> {
        const Bytes prefetch = static_cast<Bytes>(key[0]) * KiB;
        const auto streams = static_cast<std::uint32_t>(key[1]);
        node::NodeConfig cfg;
        cfg.controller.cache_size = 128 * MiB;
        cfg.controller.prefetch = prefetch;
        return raw_config(cfg, streams, 64 * KiB);
      });
  return cache;
}

void Fig08(benchmark::State& state) {
  const experiment::ExperimentResult* result = nullptr;
  for (auto _ : state) {
    result = fig08_cache().result({state.range(0), state.range(1)});
  }
  state.counters["MBps"] = result->total_mbps;
}

}  // namespace

BENCHMARK(Fig08)
    ->ArgNames({"prefetchKB", "streams"})
    ->ArgsProduct({{64, 256, 512, 1024, 2048, 4096}, {1, 10, 30, 60, 100}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
