// Figure 14: single-disk throughput when only one stream dispatches at a
// time (D = 1, N = 128, R = 512 KB) versus Figure 10's D = S
// configurations at R = 2 MB and 8 MB. The small dispatch set matches (and
// slightly beats) the all-dispatched configuration thanks to lower buffer
// management overhead — high utilization is reachable across node
// configurations by setting (D, R, N, M) appropriately.
#include "bench_common.hpp"

namespace {

using namespace sstbench;

SweepCache& fig14_small_cache() {
  static SweepCache cache(
      "fig14_small",
      sweep_grid({{10, 30, 60, 100}}),
      [](const SweepKey& key) -> std::optional<experiment::ExperimentConfig> {
        const auto streams = static_cast<std::uint32_t>(key[0]);
        node::NodeConfig cfg;  // 1 disk

        core::SchedulerParams params;
        params.dispatch_set_size = 1;          // D = 1
        params.read_ahead = 512 * KiB;         // R = 512K
        params.requests_per_residency = 128;   // N = 128
        params.memory_budget = 64 * MiB + 128 * MiB;  // D*R*N + staging slack
        return sched_config(cfg, params, streams, 64 * KiB, sec(4), sec(16));
      });
  return cache;
}

SweepCache& fig14_all_cache() {
  static SweepCache cache(
      "fig14_all",
      sweep_grid({{10, 30, 60, 100}, {2048, 8192}}),
      [](const SweepKey& key) -> std::optional<experiment::ExperimentConfig> {
        const auto streams = static_cast<std::uint32_t>(key[0]);
        const Bytes read_ahead = static_cast<Bytes>(key[1]) * KiB;
        node::NodeConfig cfg;
        const core::SchedulerParams params = paper_params(
            streams, read_ahead, 1, static_cast<Bytes>(streams) * read_ahead);
        return sched_config(cfg, params, streams, 64 * KiB, sec(4), sec(16));
      });
  return cache;
}

void Fig14SmallDispatch(benchmark::State& state) {
  const experiment::ExperimentResult* result = nullptr;
  for (auto _ : state) {
    result = fig14_small_cache().result({state.range(0)});
  }
  state.counters["MBps"] = result->total_mbps;
  state.counters["cpu_util"] = result->host_cpu_utilization;
}

void Fig14AllDispatched(benchmark::State& state) {
  const experiment::ExperimentResult* result = nullptr;
  for (auto _ : state) {
    result = fig14_all_cache().result({state.range(0), state.range(1)});
  }
  state.counters["MBps"] = result->total_mbps;
  state.counters["cpu_util"] = result->host_cpu_utilization;
}

}  // namespace

BENCHMARK(Fig14SmallDispatch)
    ->ArgNames({"streams"})
    ->Arg(10)->Arg(30)->Arg(60)->Arg(100)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(Fig14AllDispatched)
    ->ArgNames({"streams", "raKB"})
    ->ArgsProduct({{10, 30, 60, 100}, {2048, 8192}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
