// Ablation: on-disk command queue scheduling (FCFS vs LOOK elevator vs
// SSTF) under the multi-stream sequential workload, raw and with the host
// scheduler. The host scheduler's large requests leave little for the disk
// queue to reorder (few outstanding commands), so the policy should matter
// mostly for the raw baseline.
#include "bench_common.hpp"

namespace {

using namespace sstbench;

void AblationDiskSched(benchmark::State& state) {
  const auto kind = static_cast<disk::SchedulerKind>(state.range(0));
  const auto streams = static_cast<std::uint32_t>(state.range(1));
  const bool with_host_sched = state.range(2) != 0;

  node::NodeConfig cfg;
  cfg.disk.scheduler = kind;

  experiment::ExperimentResult result;
  if (with_host_sched) {
    const core::SchedulerParams params =
        paper_params(streams, 2 * MiB, 1, static_cast<Bytes>(streams) * 2 * MiB);
    for (auto _ : state) result = run_sched(cfg, params, streams, 64 * KiB);
  } else {
    for (auto _ : state) result = run_raw(cfg, streams, 64 * KiB);
  }
  state.counters["MBps"] = result.total_mbps;
  state.SetLabel(std::string(disk::to_string(kind)) +
                 (with_host_sched ? "+host" : "+raw"));
}

}  // namespace

BENCHMARK(AblationDiskSched)
    ->ArgNames({"disksched", "streams", "host"})
    ->ArgsProduct({{static_cast<long>(disk::SchedulerKind::kFcfs),
                    static_cast<long>(disk::SchedulerKind::kElevator),
                    static_cast<long>(disk::SchedulerKind::kSstf)},
                   {30, 100},
                   {0, 1}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
