// Ablation: on-disk command queue scheduling (FCFS vs LOOK elevator vs
// SSTF) under the multi-stream sequential workload, raw and with the host
// scheduler. The host scheduler's large requests leave little for the disk
// queue to reorder (few outstanding commands), so the policy should matter
// mostly for the raw baseline.
#include "bench_common.hpp"

namespace {

using namespace sstbench;

SweepCache& disk_sched_cache() {
  static SweepCache cache(
      "ablation_disk_sched",
      sweep_grid({{static_cast<std::int64_t>(disk::SchedulerKind::kFcfs),
                   static_cast<std::int64_t>(disk::SchedulerKind::kElevator),
                   static_cast<std::int64_t>(disk::SchedulerKind::kSstf)},
                  {30, 100},
                  {0, 1}}),
      [](const SweepKey& key) -> std::optional<experiment::ExperimentConfig> {
        const auto kind = static_cast<disk::SchedulerKind>(key[0]);
        const auto streams = static_cast<std::uint32_t>(key[1]);
        const bool with_host_sched = key[2] != 0;

        node::NodeConfig cfg;
        cfg.disk.scheduler = kind;
        if (!with_host_sched) return raw_config(cfg, streams, 64 * KiB);
        const core::SchedulerParams params =
            paper_params(streams, 2 * MiB, 1, static_cast<Bytes>(streams) * 2 * MiB);
        return sched_config(cfg, params, streams, 64 * KiB);
      });
  return cache;
}

void AblationDiskSched(benchmark::State& state) {
  const auto kind = static_cast<disk::SchedulerKind>(state.range(0));
  const bool with_host_sched = state.range(2) != 0;

  const experiment::ExperimentResult* result = nullptr;
  for (auto _ : state) {
    result = disk_sched_cache().result({state.range(0), state.range(1), state.range(2)});
  }
  state.counters["MBps"] = result->total_mbps;
  state.SetLabel(std::string(disk::to_string(kind)) +
                 (with_host_sched ? "+host" : "+raw"));
}

}  // namespace

BENCHMARK(AblationDiskSched)
    ->ArgNames({"disksched", "streams", "host"})
    ->ArgsProduct({{static_cast<long>(disk::SchedulerKind::kFcfs),
                    static_cast<long>(disk::SchedulerKind::kElevator),
                    static_cast<long>(disk::SchedulerKind::kSstf)},
                   {30, 100},
                   {0, 1}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
