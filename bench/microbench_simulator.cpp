// Microbenchmark for the simulation core's hot paths (plain binary, no
// google-benchmark): raw event throughput through the pooled event slab,
// schedule+cancel churn, a fig01-style end-to-end experiment, and the
// parallel sweep engine's speedup over a serial run. Verifies — via global
// operator new/delete counters — that schedule/fire, schedule/cancel and
// trace-event recording allocate NOTHING per event once their slabs are
// warm.
//
// Usage: microbench_simulator [output.json]   (default BENCH_simcore.json)
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "blockdev/block_device.hpp"
#include "core/scheduler.hpp"
#include "core/staging_area.hpp"
#include "experiment/sweep.hpp"
#include "node/storage_node.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/tracer.hpp"
#include "sim/simulator.hpp"
#include "workload/generator.hpp"

#if defined(SST_WITH_URING)
#include <functional>
#include <memory>

#include "blockdev/uring_block_device.hpp"
#include "exec/real_context.hpp"
#endif

namespace {

std::atomic<std::uint64_t> g_allocations{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace sst;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct BenchResult {
  std::string name;
  double value = 0.0;
  std::string unit;
  std::uint64_t steady_state_allocations = 0;
  /// Machine/disk-dependent entries (the real-I/O uring numbers): exported
  /// with "informational": true so check_bench_regression.py reports them
  /// without gating on runner variance, and tolerates their absence when
  /// the current run had no backing file.
  bool informational = false;
};

/// Self-rescheduling event chains: the steady-state firing path.
/// Every fired event re-schedules itself, so slab slots and queue records
/// are recycled continuously — the case the pooled slab optimizes for.
/// Measured at two pending-set sizes: 64 chains (a single small config)
/// and 8192 chains (the large-sweep regime, where comparison-based queues
/// pay O(log n) with cache misses per event and the timer wheel stays O(1)).
BenchResult bench_event_throughput(const char* name, std::uint32_t kChains) {
  constexpr std::uint64_t kWarmupEvents = 200'000;
  constexpr std::uint64_t kMeasureEvents = 2'000'000;

  sim::Simulator simulator;
  struct Chain {
    sim::Simulator* sim;
    SimTime period;
    void fire() { sim->schedule_after(period, [this] { fire(); }); }
  };
  std::vector<Chain> chains;
  chains.reserve(kChains);
  for (std::uint32_t i = 0; i < kChains; ++i) {
    chains.push_back(Chain{&simulator, usec(10) + i});
    chains.back().fire();
  }

  while (simulator.executed_events() < kWarmupEvents) simulator.step();

  const std::uint64_t allocs_before = g_allocations.load();
  const std::uint64_t executed_before = simulator.executed_events();
  const auto start = Clock::now();
  while (simulator.executed_events() < executed_before + kMeasureEvents) simulator.step();
  const double elapsed = seconds_since(start);
  const std::uint64_t allocs = g_allocations.load() - allocs_before;

  return {name, static_cast<double>(kMeasureEvents) / elapsed, "events/sec",
          allocs};
}

/// Schedule-then-cancel churn: the timeout-maintenance path (buffer and
/// stream timeouts are scheduled pessimistically and usually cancelled).
BenchResult bench_schedule_cancel() {
  constexpr std::uint32_t kBatch = 4096;
  constexpr std::uint32_t kWarmupRounds = 8;
  constexpr std::uint32_t kMeasureRounds = 256;

  sim::Simulator simulator;
  std::vector<sim::EventHandle> handles;
  handles.reserve(kBatch);

  auto round = [&] {
    for (std::uint32_t i = 0; i < kBatch; ++i) {
      handles.push_back(simulator.schedule_after(sec(1) + i, [] {}));
    }
    for (auto& h : handles) h.cancel();
    handles.clear();
    simulator.run();  // drain the dead queue records
  };

  for (std::uint32_t r = 0; r < kWarmupRounds; ++r) round();

  const std::uint64_t allocs_before = g_allocations.load();
  const auto start = Clock::now();
  for (std::uint32_t r = 0; r < kMeasureRounds; ++r) round();
  const double elapsed = seconds_since(start);
  const std::uint64_t allocs = g_allocations.load() - allocs_before;

  const double ops = 2.0 * kBatch * kMeasureRounds;  // schedule + cancel
  return {"schedule_cancel", ops / elapsed, "ops/sec", allocs};
}

/// Trace-event recording into a warmed slab: the path every instrumented
/// component hits when tracing is enabled. Must stay allocation-free so
/// enabling a trace never perturbs what it measures.
BenchResult bench_tracer_record() {
  constexpr std::uint64_t kWarmupEvents = 1 << 16;
  constexpr std::uint64_t kMeasureEvents = 1 << 21;

  obs::Tracer tracer(kWarmupEvents + kMeasureEvents);
  for (std::uint64_t i = 0; i < kWarmupEvents; i += 2) {
    tracer.complete(obs::disk_track(0), "disk", "cmd", i, i + 1);
    tracer.instant(obs::kSchedulerTrack, "scheduler", "rotation", i, "stream",
                   static_cast<double>(i));
  }

  const std::uint64_t allocs_before = g_allocations.load();
  const auto start = Clock::now();
  for (std::uint64_t i = 0; i < kMeasureEvents; i += 2) {
    tracer.complete(obs::disk_track(0), "disk", "cmd", i, i + 1);
    tracer.instant(obs::kSchedulerTrack, "scheduler", "rotation", i, "stream",
                   static_cast<double>(i));
  }
  const double elapsed = seconds_since(start);
  const std::uint64_t allocs = g_allocations.load() - allocs_before;
  if (tracer.event_count() != kWarmupEvents + kMeasureEvents) {
    std::fprintf(stderr, "tracer_record: lost events\n");
    std::exit(1);
  }

  return {"tracer_record", static_cast<double>(kMeasureEvents) / elapsed,
          "events/sec", allocs};
}

/// Flight-recorder journaling: the always-on lifecycle ring every request
/// writes through. Must stay allocation-free (the ring is preallocated and
/// wraps in place) so leaving the recorder enabled costs nothing beyond a
/// few stores per event.
BenchResult bench_flight_record() {
  constexpr std::uint64_t kWarmupEvents = 1 << 16;
  constexpr std::uint64_t kMeasureEvents = 1 << 22;

  obs::FlightRecorder flight;  // default capacity: the ring wraps many times
  for (std::uint64_t i = 0; i < kWarmupEvents; ++i) {
    flight.record(obs::FlightCode::kServe, i, i, i & 7, 64 * KiB);
  }

  const std::uint64_t allocs_before = g_allocations.load();
  const auto start = Clock::now();
  for (std::uint64_t i = 0; i < kMeasureEvents; ++i) {
    flight.record(obs::FlightCode::kServe, i, i, i & 7, 64 * KiB);
  }
  const double elapsed = seconds_since(start);
  const std::uint64_t allocs = g_allocations.load() - allocs_before;
  if (flight.recorded() != kWarmupEvents + kMeasureEvents) {
    std::fprintf(stderr, "flight_record: lost events\n");
    std::exit(1);
  }

  return {"flight_record", static_cast<double>(kMeasureEvents) / elapsed,
          "events/sec", allocs};
}

/// Steady-state staging churn: stage -> fill -> zero-copy consume -> reap,
/// the scheduler's per-request data path. Extent recycling plus the pooled
/// IoBuffer storage must make this allocation-free once warm, and the
/// zero-copy serve path must move data without a single memcpy.
void bench_staging(std::vector<BenchResult>& results) {
  constexpr std::uint64_t kWarmupRounds = 1024;
  constexpr std::uint64_t kMeasureRounds = 1 << 18;
  constexpr Bytes kExtent = 64 * KiB;

  core::StagingArea staging(16 * MiB, /*materialize=*/true);
  core::Stream stream;
  stream.id = 1;

  core::StagedSlice slice;  // held across rounds: exercises refcount recycling
  const core::DataSink sink = [&slice](core::StagedSlice s) { slice = std::move(s); };
  auto round = [&](std::uint64_t r) {
    const ByteOffset off = r * kExtent;
    if (staging.stage(stream, off, kExtent, 0) == nullptr) {
      std::fprintf(stderr, "staging_zero_copy: budget exhausted\n");
      std::exit(1);
    }
    staging.mark_filled(stream, off, 1);
    staging.consume(stream, off, kExtent, nullptr, 2, sink);
    staging.reap(stream);
  };

  for (std::uint64_t r = 0; r < kWarmupRounds; ++r) round(r);

  const Bytes copied_before = staging.stats().bytes_copied;
  const std::uint64_t allocs_before = g_allocations.load();
  const auto start = Clock::now();
  for (std::uint64_t r = 0; r < kMeasureRounds; ++r) round(kWarmupRounds + r);
  const double elapsed = seconds_since(start);
  const std::uint64_t allocs = g_allocations.load() - allocs_before;
  const Bytes copied = staging.stats().bytes_copied - copied_before;

  results.push_back({"staging_zero_copy",
                     static_cast<double>(kMeasureRounds) / elapsed, "consumes/sec",
                     allocs});
  results.push_back({"staging_copied_bytes_per_request",
                     static_cast<double>(copied) / static_cast<double>(kMeasureRounds),
                     "bytes", 0});
}

/// Storage-free device: the find_stream bench only exercises the stream
/// index, so requests never reach the device.
class NullDevice final : public blockdev::BlockDevice {
 public:
  void submit(blockdev::BlockRequest request) override {
    if (request.on_complete) request.on_complete(0, IoStatus::kOk);
  }
  [[nodiscard]] Bytes capacity() const override { return Bytes{1} << 60; }
  [[nodiscard]] std::string name() const override { return "null"; }
};

/// ns per find_stream lookup with `streams` live streams on one device.
double time_find_stream(std::uint32_t streams) {
  constexpr Bytes kSpacing = 4 * MiB;
  constexpr std::uint64_t kLookups = 1 << 20;

  sim::Simulator simulator;
  NullDevice dev;
  core::SchedulerParams params;
  core::StreamScheduler sched(simulator, {&dev}, params);
  for (std::uint32_t i = 0; i < streams; ++i) {
    const ByteOffset start = static_cast<ByteOffset>(i) * kSpacing;
    sched.create_stream(0, start, start);
  }

  // Deterministic pseudo-random probe sequence over the claimed ranges.
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  std::uint64_t hits = 0;
  const auto start = Clock::now();
  for (std::uint64_t i = 0; i < kLookups; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    const ByteOffset offset = (x % streams) * kSpacing;
    hits += sched.find_stream(0, offset) != nullptr;
  }
  const double elapsed = seconds_since(start);
  if (hits != kLookups) {
    std::fprintf(stderr, "find_stream: lost streams (%llu/%llu hits)\n",
                 static_cast<unsigned long long>(hits),
                 static_cast<unsigned long long>(kLookups));
    std::exit(1);
  }
  return elapsed / static_cast<double>(kLookups) * 1e9;
}

/// Regression guard for the O(log n) stream index: growing the stream
/// population 32x must not scale the per-lookup cost anywhere near
/// linearly. The algorithmic log factor is ~1.5x; the 10x bound leaves
/// room for the larger map falling out of cache while still sitting far
/// below the >100x a linear scan costs at 32k streams.
void bench_find_stream(std::vector<BenchResult>& results, bool& scaling_ok) {
  const double ns_small = time_find_stream(1024);
  const double ns_large = time_find_stream(32768);
  const double ratio = ns_small > 0 ? ns_large / ns_small : 0.0;
  results.push_back({"find_stream_1k", ns_small, "ns/lookup", 0});
  results.push_back({"find_stream_32k", ns_large, "ns/lookup", 0});
  results.push_back({"find_stream_scaling", ratio, "x", 0});
  scaling_ok = ratio < 10.0;
}

experiment::ExperimentConfig small_fig01_config(std::uint32_t streams) {
  node::NodeConfig node;
  node.num_controllers = 2;
  node.disks_per_controller = 2;
  experiment::ExperimentConfig cfg;
  cfg.topology.node = node;
  cfg.warmup = sec(1);
  cfg.measure = sec(4);
  cfg.streams = workload::make_uniform_streams(streams, node.total_disks(),
                                               node.disk.geometry.capacity, 64 * KiB);
  return cfg;
}

/// End-to-end wall-clock for one fig01-style experiment.
BenchResult bench_end_to_end() {
  const auto cfg = small_fig01_config(40);
  const auto start = Clock::now();
  const auto result = experiment::run_experiment(cfg);
  const double elapsed = seconds_since(start);
  if (result.requests_completed == 0) {
    std::fprintf(stderr, "end_to_end: experiment completed no requests\n");
    std::exit(1);
  }
  return {"fig01_end_to_end", elapsed, "sec", 0};
}

/// Serial vs parallel run_sweep over a small grid. On multi-core hosts the
/// speedup approaches min(workers, grid size); on one core it is ~1.
void bench_sweep(std::vector<BenchResult>& results) {
  std::vector<experiment::ExperimentConfig> grid;
  for (const std::uint32_t streams : {8, 16, 24, 32}) {
    grid.push_back(small_fig01_config(streams));
  }

  const auto serial_start = Clock::now();
  const auto serial = experiment::run_sweep(grid, 1);
  const double serial_sec = seconds_since(serial_start);

  const unsigned workers = experiment::default_sweep_workers();
  const auto par_start = Clock::now();
  const auto parallel = experiment::run_sweep(grid, workers);
  const double par_sec = seconds_since(par_start);

  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (serial[i].total_mbps != parallel[i].total_mbps ||
        serial[i].requests_completed != parallel[i].requests_completed) {
      std::fprintf(stderr, "sweep: serial/parallel results diverge at point %zu\n", i);
      std::exit(1);
    }
  }

  results.push_back({"sweep_serial", serial_sec, "sec", 0});
  results.push_back({"sweep_parallel", par_sec, "sec", 0});
  results.push_back({"sweep_speedup", par_sec > 0 ? serial_sec / par_sec : 0.0,
                     "x", 0});
  results.push_back({"sweep_workers", static_cast<double>(workers), "threads", 0});
}

/// Fig12-style deployment for the sharded engine, scaled up so the
/// parallel measurement means something: 8 controllers (so 1/2/4/8 shards
/// split at controller boundaries) of 8 disks each, the paper's staged
/// parameters (D = S, N = 1), pipelined clients, and a small read-ahead
/// so the disk/scheduler machinery — the work that lives on the shards —
/// dominates each window. The paper's default host-CPU overheads are
/// deliberately cheapened: at fig12's defaults the modelled host CPU
/// serializes ~9k ops/sim-sec (that bottleneck is the *subject* of fig12,
/// and sits on the critical path of every shard-window), which would
/// leave each 10ms window with a few hundred events — all barrier, no
/// work. Calibrated on this workload the 4-shard run carries only ~6%
/// more total event work than the single-threaded engine, spread within
/// 1% across shards, so the speedup number measures the engine.
experiment::ExperimentConfig fig12_shard_config(std::uint32_t shards) {
  node::NodeConfig node;
  node.num_controllers = 8;
  node.disks_per_controller = 8;
  const std::uint32_t streams = 512;  // 8 per disk: seeks, but not thrash
  core::SchedulerParams params;
  params.dispatch_set_size = streams;
  params.read_ahead = 32 * KiB;
  params.requests_per_residency = 1;
  params.memory_budget = static_cast<Bytes>(streams) * 32 * KiB;
  params.host.issue_base = usec(2);
  params.host.complete_base = usec(1);
  params.host.per_buffer = nsec(10);
  experiment::ExperimentConfig cfg;
  cfg.topology.node = node;
  cfg.scheduler = params;
  cfg.streams = workload::make_uniform_streams(streams, node.total_disks(),
                                               node.disk.geometry.capacity, 16 * KiB);
  for (auto& spec : cfg.streams) spec.outstanding = 8;  // hide the hop latency
  cfg.warmup = msec(500);
  cfg.measure = sec(2);
  cfg.shards = shards;
  // A generous horizon (modelling clients one interconnect hop away) keeps
  // the barrier count low: ~250 windows over the run, so sync cost stays
  // small against each window's event work.
  cfg.lookahead = msec(10);
  return cfg;
}

/// Wall-clock for the same fig12-style workload at 1/2/4/8 shards, plus
/// the speedup of 4 shards over the single-threaded engine — the number
/// the regression gate tracks. The in-binary floor (>= 2x) only applies
/// on hosts with at least 4 cores; below that the measurement is still
/// emitted, but under the ungated "x" unit (the regression script gates
/// by the current run's unit), because a speedup measured without the
/// cores to run the shards cannot mean anything.
void bench_parallel_sim(std::vector<BenchResult>& results, bool& speedup_ok) {
  double single_sec = 0.0;
  double four_sec = 0.0;
  for (const std::uint32_t shards : {1u, 2u, 4u, 8u}) {
    const auto cfg = fig12_shard_config(shards);
    const auto start = Clock::now();
    const auto result = experiment::run_experiment(cfg);
    const double elapsed = seconds_since(start);
    if (result.requests_completed == 0) {
      std::fprintf(stderr, "sim_parallel: %u-shard run completed no requests\n",
                   shards);
      std::exit(1);
    }
    if (shards > 1 && (result.shard_summary.shards != shards ||
                       result.shard_summary.horizon_violations != 0)) {
      std::fprintf(stderr,
                   "sim_parallel: %u-shard run sharded wrong (%u shards, %llu violations)\n",
                   shards, result.shard_summary.shards,
                   static_cast<unsigned long long>(
                       result.shard_summary.horizon_violations));
      std::exit(1);
    }
    results.push_back({"sim_parallel_" + std::to_string(shards) + "shard",
                       elapsed, "sec", 0});
    if (shards == 1) single_sec = elapsed;
    if (shards == 4) four_sec = elapsed;
  }
  const double speedup = four_sec > 0 ? single_sec / four_sec : 0.0;
  const unsigned cores = std::thread::hardware_concurrency();
  results.push_back(
      {"sim_parallel_speedup", speedup, cores >= 4 ? "speedup" : "x", 0});
  speedup_ok = cores < 4 || speedup >= 2.0;
  if (cores < 4) {
    std::printf("sim_parallel: only %u cores, speedup floor not enforced\n", cores);
  }
}

#if defined(SST_WITH_URING)
/// Real-I/O ring round-trip: closed-loop 4 KiB reads against the file named
/// by SST_URING_BENCH_FILE (pattern-format it with scripts/mkpattern.py
/// first), at queue depth 1 (pure submit->complete latency) and 32
/// (pipelined IOPS). Results are machine- and disk-dependent, so the
/// entries are informational: they are not part of the committed baseline,
/// and check_bench_regression.py never gates names absent from it. The
/// bench is skipped entirely — emitting nothing — when the env var is
/// unset, which keeps the default BENCH_simcore.json byte-stable.
void bench_uring_roundtrip(std::vector<BenchResult>& results) {
  const char* path = std::getenv("SST_URING_BENCH_FILE");
  if (path == nullptr) return;

  for (const std::uint32_t depth : {1u, 32u}) {
    exec::RealContext ctx;
    blockdev::UringParams params;
    params.path = path;
    params.queue_depth = depth;
    auto opened = blockdev::UringBlockDevice::open(ctx, params);
    if (!opened.ok()) {
      std::fprintf(stderr, "uring_roundtrip: %s\n", opened.error().message.c_str());
      return;
    }
    auto dev = std::move(opened.value());

    constexpr Bytes kLen = 4 * KiB;
    constexpr std::uint64_t kWarmup = 1'000;
    constexpr std::uint64_t kMeasure = 20'000;
    const Bytes span = dev->capacity() / kLen * kLen;

    struct AlignedFree {
      void operator()(std::byte* p) const { std::free(p); }
    };
    std::vector<std::unique_ptr<std::byte, AlignedFree>> bufs;
    for (std::uint32_t i = 0; i < depth; ++i) {
      bufs.emplace_back(
          static_cast<std::byte*>(std::aligned_alloc(4096, kLen)));
    }

    std::uint64_t completed = 0;
    std::uint64_t latency_ns_sum = 0;
    double measured_sec = 0.0;
    ByteOffset cursor = 0;
    auto t0 = Clock::now();
    std::function<void(std::byte*)> submit_one = [&](std::byte* buf) {
      blockdev::BlockRequest req;
      req.offset = cursor;
      cursor = (cursor + kLen) % span;
      req.length = kLen;
      req.op = IoOp::kRead;
      req.data = buf;
      const auto submitted = Clock::now();
      req.on_complete = [&, buf, submitted](SimTime, IoStatus status) {
        if (status != IoStatus::kOk) {
          std::fprintf(stderr, "uring_roundtrip: read failed\n");
          std::exit(1);
        }
        ++completed;
        if (completed == kWarmup) t0 = Clock::now();
        if (completed > kWarmup) {
          latency_ns_sum += static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                   submitted)
                  .count());
        }
        if (completed == kWarmup + kMeasure) measured_sec = seconds_since(t0);
        if (completed < kWarmup + kMeasure) submit_one(buf);
      };
      dev->submit(std::move(req));
    };
    for (auto& buf : bufs) submit_one(buf.get());
    while (completed < kWarmup + kMeasure || dev->in_flight() > 0) {
      ctx.run_until(ctx.now() + msec(10));
    }

    const std::string suffix = "_d" + std::to_string(depth);
    results.push_back({"uring_roundtrip_iops" + suffix,
                       static_cast<double>(kMeasure) / measured_sec, "iops", 0,
                       true});
    results.push_back({"uring_roundtrip_mean_us" + suffix,
                       static_cast<double>(latency_ns_sum) / 1e3 /
                           static_cast<double>(kMeasure),
                       "us", 0, true});
    // Submission-batching figure of merit: io_uring_enter calls per
    // completed request. One-enter-per-SQE scores >= 1.0; the batched
    // reactor at depth pipelines well below that (CI asserts < 0.2 at
    // depth 32 — a > 5x reduction).
    const auto& st = dev->stats();
    results.push_back({"uring_roundtrip_spr" + suffix,
                       st.completed > 0 ? static_cast<double>(st.enter_syscalls) /
                                              static_cast<double>(st.completed)
                                        : 0.0,
                       "enters/req", 0, true});
  }
}
#endif  // SST_WITH_URING

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_simcore.json";

  std::vector<BenchResult> results;
  results.push_back(bench_event_throughput("event_throughput", 64));
  results.push_back(bench_event_throughput("event_throughput_8k", 8192));
  results.push_back(bench_schedule_cancel());
  results.push_back(bench_tracer_record());
  results.push_back(bench_flight_record());
  bench_staging(results);
  results.push_back(bench_end_to_end());
  bool find_stream_scaling_ok = true;
  bench_find_stream(results, find_stream_scaling_ok);
  bench_sweep(results);
  bool parallel_speedup_ok = true;
  bench_parallel_sim(results, parallel_speedup_ok);
#if defined(SST_WITH_URING)
  bench_uring_roundtrip(results);
#endif

  bool alloc_free = true;
  for (const auto& r : results) {
    std::printf("%-20s %14.1f %-10s steady-state allocs: %llu\n", r.name.c_str(),
                r.value, r.unit.c_str(),
                static_cast<unsigned long long>(r.steady_state_allocations));
    if (r.name == "event_throughput" || r.name == "event_throughput_8k" ||
        r.name == "schedule_cancel" || r.name == "tracer_record" ||
        r.name == "flight_record" || r.name == "staging_zero_copy") {
      if (r.steady_state_allocations != 0) alloc_free = false;
    }
  }
  if (!alloc_free) {
    std::fprintf(stderr, "FAIL: steady-state event path performed heap allocations\n");
    return 1;
  }
  for (const auto& r : results) {
    if (r.name == "staging_copied_bytes_per_request" && r.value != 0.0) {
      std::fprintf(stderr, "FAIL: zero-copy staging path copied %.1f bytes/request\n",
                   r.value);
      return 1;
    }
  }
  if (!find_stream_scaling_ok) {
    std::fprintf(stderr,
                 "FAIL: find_stream lookup cost scales super-logarithmically\n");
    return 1;
  }
  if (!parallel_speedup_ok) {
    std::fprintf(stderr,
                 "FAIL: sharded engine under 2x speedup at 4 shards on a "
                 ">=4-core host\n");
    return 1;
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"value\": %.3f, \"unit\": \"%s\", "
                 "\"steady_state_allocations\": %llu%s}%s\n",
                 r.name.c_str(), r.value, r.unit.c_str(),
                 static_cast<unsigned long long>(r.steady_state_allocations),
                 r.informational ? ", \"informational\": true" : "",
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"steady_state_alloc_free\": true\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
