// Figure 10: effect of the host scheduler's read-ahead R on single-disk
// throughput when the node has enough memory to stage every stream
// (D = S, N = 1, M = D*R*N). 64 KB client requests, 10-100 streams,
// R from 128 KB to 8 MB plus the no-read-ahead (raw) baseline. With
// R = 8 MB the low-cost SATA disk runs at near-maximum utilization for
// every stream count — the paper's headline insensitivity result.
#include "bench_common.hpp"

namespace {

using namespace sstbench;

SweepCache& fig10_cache() {
  static SweepCache cache(
      "fig10_host_readahead",
      sweep_grid({{0, 128, 512, 1024, 2048, 8192}, {10, 30, 60, 100}}),
      [](const SweepKey& key) -> std::optional<experiment::ExperimentConfig> {
        const Bytes read_ahead = static_cast<Bytes>(key[0]) * KiB;
        const auto streams = static_cast<std::uint32_t>(key[1]);
        node::NodeConfig cfg;  // 1 disk
        if (read_ahead == 0) return raw_config(cfg, streams, 64 * KiB);
        const core::SchedulerParams params =
            paper_params(/*D=*/streams, read_ahead, /*N=*/1,
                         /*M=*/static_cast<Bytes>(streams) * read_ahead);
        return sched_config(cfg, params, streams, 64 * KiB);
      });
  return cache;
}

void Fig10(benchmark::State& state) {
  const experiment::ExperimentResult* result = nullptr;
  for (auto _ : state) {
    result = fig10_cache().result({state.range(0), state.range(1)});
  }
  state.counters["MBps"] = result->total_mbps;
  state.counters["memory_MB"] =
      static_cast<double>(result->peak_buffer_memory) / (1 << 20);
}

}  // namespace

BENCHMARK(Fig10)
    ->ArgNames({"raKB", "streams"})
    ->ArgsProduct({{0, 128, 512, 1024, 2048, 8192}, {10, 30, 60, 100}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
