// Figure 12: throughput scaling on the 8-disk setup (2 controllers x 4
// disks) with D = S (every staged stream also dispatches), N = 1,
// M = D*R*N. Despite large read-ahead, aggregate throughput falls well
// short of the controllers' ~900 MB/s ceiling: with hundreds of dispatched
// streams the host drowns in buffer management (the per-buffer CPU cost),
// motivating Figure 13's dispatched < staged configuration.
#include "bench_common.hpp"

namespace {

using namespace sstbench;

SweepCache& fig12_cache() {
  static SweepCache cache(
      "fig12_multidisk",
      sweep_grid({{0, 512, 1024, 2048}, {10, 30, 60, 100}}),
      [](const SweepKey& key) -> std::optional<experiment::ExperimentConfig> {
        const Bytes read_ahead = static_cast<Bytes>(key[0]) * KiB;
        const auto per_disk = static_cast<std::uint32_t>(key[1]);
        node::NodeConfig cfg = node::NodeConfig::medium();  // 2 x 4 disks
        const std::uint32_t streams = per_disk * cfg.total_disks();
        if (read_ahead == 0) return raw_config(cfg, streams, 64 * KiB);
        const core::SchedulerParams params =
            paper_params(streams, read_ahead, 1,
                         static_cast<Bytes>(streams) * read_ahead);
        return sched_config(cfg, params, streams, 64 * KiB);
      });
  return cache;
}

void Fig12(benchmark::State& state) {
  const experiment::ExperimentResult* result = nullptr;
  for (auto _ : state) {
    result = fig12_cache().result({state.range(0), state.range(1)});
  }
  state.counters["MBps"] = result->total_mbps;
  state.counters["cpu_util"] = result->host_cpu_utilization;
  state.counters["buffers_peak_MB"] =
      static_cast<double>(result->peak_buffer_memory) / (1 << 20);
}

}  // namespace

BENCHMARK(Fig12)
    ->ArgNames({"raKB", "streams_per_disk"})
    ->ArgsProduct({{0, 512, 1024, 2048}, {10, 30, 60, 100}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
