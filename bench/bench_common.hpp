// Shared plumbing for the per-figure benchmark binaries. Every figure bench
// registers google-benchmark cases with Iterations(1): one "iteration" is a
// complete simulated experiment (warm-up + measurement window), and the
// figure's series values are exported as user counters (MBps, latency).
//
// Figure grids run through the parallel sweep engine: each bench describes
// its full parameter grid once (the same axes it hands to ArgsProduct), a
// SweepCache fans every point across experiment::run_sweep on first lookup
// (SST_BENCH_THREADS workers, default hardware_concurrency), and each
// benchmark case then just reads its precomputed point. Per-point results
// are bit-identical to the former serial runs — only wall-clock changes.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "experiment/runner.hpp"
#include "experiment/sweep.hpp"
#include "node/topology.hpp"
#include "workload/generator.hpp"

namespace sstbench {

using namespace sst;  // NOLINT(google-build-using-namespace) — bench-local

/// Baseline config: clients talk to the (stacked) devices directly. The
/// optional StackSpec layers fault/retry/raid/network declaratively; the
/// stream population is sized against the stack's logical device view.
inline experiment::ExperimentConfig raw_config(const node::NodeConfig& node,
                                               std::uint32_t total_streams, Bytes request_size,
                                               SimTime warmup = sec(2),
                                               SimTime measure = sec(10),
                                               const io::StackSpec& stack = {}) {
  experiment::ExperimentConfig cfg;
  cfg.topology.node = node;
  cfg.topology.stack = stack;
  cfg.warmup = warmup;
  cfg.measure = measure;
  cfg.streams = workload::make_uniform_streams(
      total_streams, cfg.topology.logical_device_count(),
      cfg.topology.logical_device_capacity(), request_size);
  return cfg;
}

/// System config: clients go through the stream-scheduler storage server.
inline experiment::ExperimentConfig sched_config(const node::NodeConfig& node,
                                                 const core::SchedulerParams& params,
                                                 std::uint32_t total_streams,
                                                 Bytes request_size, SimTime warmup = sec(2),
                                                 SimTime measure = sec(10),
                                                 const io::StackSpec& stack = {}) {
  experiment::ExperimentConfig cfg = raw_config(node, total_streams, request_size,
                                                warmup, measure, stack);
  cfg.scheduler = params;
  return cfg;
}

/// Baseline run: clients talk to the block devices directly.
inline experiment::ExperimentResult run_raw(const node::NodeConfig& node,
                                            std::uint32_t total_streams, Bytes request_size,
                                            SimTime warmup = sec(2), SimTime measure = sec(10)) {
  return experiment::run_experiment(
      raw_config(node, total_streams, request_size, warmup, measure));
}

/// System run: clients go through the stream-scheduler storage server.
inline experiment::ExperimentResult run_sched(const node::NodeConfig& node,
                                              const core::SchedulerParams& params,
                                              std::uint32_t total_streams, Bytes request_size,
                                              SimTime warmup = sec(2),
                                              SimTime measure = sec(10)) {
  return experiment::run_experiment(
      sched_config(node, params, total_streams, request_size, warmup, measure));
}

/// The paper's (D=S, N=1, M=D*R*N) parameterization used in Figs. 10 & 12.
inline core::SchedulerParams paper_params(std::uint32_t dispatch, Bytes read_ahead,
                                          std::uint32_t residency, Bytes memory) {
  core::SchedulerParams p;
  p.dispatch_set_size = dispatch;
  p.read_ahead = read_ahead;
  p.requests_per_residency = residency;
  p.memory_budget = memory;
  return p;
}

/// One grid point's coordinates: the same values the benchmark case sees
/// via benchmark::State::range(i).
using SweepKey = std::vector<std::int64_t>;

/// Cartesian product of axes in ArgsProduct order (first axis outermost).
inline std::vector<SweepKey> sweep_grid(const std::vector<std::vector<std::int64_t>>& axes) {
  std::vector<SweepKey> keys{{}};
  for (const auto& axis : axes) {
    std::vector<SweepKey> expanded;
    expanded.reserve(keys.size() * axis.size());
    for (const SweepKey& prefix : keys) {
      for (const std::int64_t v : axis) {
        SweepKey key = prefix;
        key.push_back(v);
        expanded.push_back(std::move(key));
      }
    }
    keys = std::move(expanded);
  }
  return keys;
}

/// Lazily-computed parallel sweep over a figure's parameter grid. Built
/// with a name (used for the metrics sidecar file), the grid keys, and a
/// key -> config mapping (nullopt excludes a point, mirroring the bench's
/// own SkipWithError guards); the first result() call runs every point
/// through experiment::run_sweep, writes BENCH_<name>_metrics.json (full
/// per-point metrics, beside the bench's own BENCH_*.json output), and each
/// benchmark case afterwards reads its point for free.
class SweepCache {
 public:
  using MakeConfig = std::function<std::optional<experiment::ExperimentConfig>(const SweepKey&)>;

  SweepCache(std::string name, std::vector<SweepKey> keys, MakeConfig make)
      : name_(std::move(name)), keys_(std::move(keys)), make_(std::move(make)) {}

  /// The precomputed result for `key`, or nullptr for an excluded point.
  [[nodiscard]] const experiment::ExperimentResult* result(const SweepKey& key) {
    ensure_run();
    const auto it = results_.find(key);
    return it == results_.end() ? nullptr : &it->second;
  }

 private:
  void ensure_run() {
    if (ran_) return;
    ran_ = true;
    std::vector<SweepKey> included;
    std::vector<experiment::ExperimentConfig> configs;
    included.reserve(keys_.size());
    configs.reserve(keys_.size());
    for (const SweepKey& key : keys_) {
      if (auto config = make_(key)) {
        included.push_back(key);
        configs.push_back(*std::move(config));
      }
    }
    std::vector<experiment::ExperimentResult> results = experiment::run_sweep(configs);
    write_metrics(included, results);
    for (std::size_t i = 0; i < included.size(); ++i) {
      results_.emplace(included[i], std::move(results[i]));
    }
  }

  /// Full metrics for every grid point, as a JSON array of
  /// {"key": [...], "metrics": {...}} records.
  void write_metrics(const std::vector<SweepKey>& included,
                     const std::vector<experiment::ExperimentResult>& results) const {
    const std::string path = "BENCH_" + name_ + "_metrics.json";
    std::ofstream out(path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return;
    }
    out << "[\n";
    for (std::size_t i = 0; i < included.size(); ++i) {
      if (i != 0) out << ",\n";
      out << "{\"key\":[";
      for (std::size_t j = 0; j < included[i].size(); ++j) {
        if (j != 0) out << ',';
        out << included[i][j];
      }
      out << "],\"metrics\":" << results[i].to_json() << "}";
    }
    out << "\n]\n";
  }

  std::string name_;
  std::vector<SweepKey> keys_;
  MakeConfig make_;
  std::map<SweepKey, experiment::ExperimentResult> results_;
  bool ran_ = false;
};

}  // namespace sstbench
