// Shared plumbing for the per-figure benchmark binaries. Every figure bench
// registers google-benchmark cases with Iterations(1): one "iteration" is a
// complete simulated experiment (warm-up + measurement window), and the
// figure's series values are exported as user counters (MBps, latency).
#pragma once

#include <benchmark/benchmark.h>

#include "experiment/runner.hpp"
#include "node/storage_node.hpp"
#include "workload/generator.hpp"

namespace sstbench {

using namespace sst;  // NOLINT(google-build-using-namespace) — bench-local

/// Baseline run: clients talk to the block devices directly.
inline experiment::ExperimentResult run_raw(const node::NodeConfig& node,
                                            std::uint32_t total_streams, Bytes request_size,
                                            SimTime warmup = sec(2), SimTime measure = sec(10)) {
  experiment::ExperimentConfig cfg;
  cfg.node = node;
  cfg.warmup = warmup;
  cfg.measure = measure;
  cfg.streams = workload::make_uniform_streams(total_streams, node.total_disks(),
                                               node.disk.geometry.capacity, request_size);
  return experiment::run_experiment(cfg);
}

/// System run: clients go through the stream-scheduler storage server.
inline experiment::ExperimentResult run_sched(const node::NodeConfig& node,
                                              const core::SchedulerParams& params,
                                              std::uint32_t total_streams, Bytes request_size,
                                              SimTime warmup = sec(2),
                                              SimTime measure = sec(10)) {
  experiment::ExperimentConfig cfg;
  cfg.node = node;
  cfg.warmup = warmup;
  cfg.measure = measure;
  cfg.scheduler = params;
  cfg.streams = workload::make_uniform_streams(total_streams, node.total_disks(),
                                               node.disk.geometry.capacity, request_size);
  return experiment::run_experiment(cfg);
}

/// The paper's (D=S, N=1, M=D*R*N) parameterization used in Figs. 10 & 12.
inline core::SchedulerParams paper_params(std::uint32_t dispatch, Bytes read_ahead,
                                          std::uint32_t residency, Bytes memory) {
  core::SchedulerParams p;
  p.dispatch_set_size = dispatch;
  p.read_ahead = read_ahead;
  p.requests_per_residency = residency;
  p.memory_budget = memory;
  return p;
}

}  // namespace sstbench
