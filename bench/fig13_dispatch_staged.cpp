// Figure 13: disassociating dispatching from staging on the 8-disk setup.
// Only D = #disks = 8 streams dispatch at a time, each for a long residency
// (N = 128) of 512 KB read-aheads; the rest of the population stays staged
// in the buffered set. Compared to Figure 12's D = S rows, the small
// dispatch set slashes buffer-management overhead and reaches ~80% of the
// controllers' aggregate ceiling. Both configurations run here for a
// side-by-side comparison.
#include "bench_common.hpp"

namespace {

using namespace sstbench;

constexpr Bytes kReadAhead = 512 * KiB;

SweepCache& fig13_small_cache() {
  static SweepCache cache(
      "fig13_small",
      sweep_grid({{10, 30, 60, 100}}),
      [](const SweepKey& key) -> std::optional<experiment::ExperimentConfig> {
        const auto per_disk = static_cast<std::uint32_t>(key[0]);
        node::NodeConfig cfg = node::NodeConfig::medium();
        const std::uint32_t streams = per_disk * cfg.total_disks();

        core::SchedulerParams params;
        params.dispatch_set_size = cfg.total_disks();  // D = #disks
        params.read_ahead = kReadAhead;
        params.requests_per_residency = 128;  // N = 128
        // M sized to the dispatch working set plus staging slack.
        params.memory_budget = static_cast<Bytes>(params.dispatch_set_size) * kReadAhead *
                                   params.requests_per_residency +
                               256 * MiB;
        return sched_config(cfg, params, streams, 64 * KiB, sec(4), sec(16));
      });
  return cache;
}

SweepCache& fig13_staged_cache() {
  static SweepCache cache(
      "fig13_staged",
      sweep_grid({{10, 30, 60, 100}}),
      [](const SweepKey& key) -> std::optional<experiment::ExperimentConfig> {
        const auto per_disk = static_cast<std::uint32_t>(key[0]);
        node::NodeConfig cfg = node::NodeConfig::medium();
        const std::uint32_t streams = per_disk * cfg.total_disks();
        const core::SchedulerParams params = paper_params(
            streams, kReadAhead, 1, static_cast<Bytes>(streams) * kReadAhead);
        return sched_config(cfg, params, streams, 64 * KiB, sec(4), sec(16));
      });
  return cache;
}

void Fig13SmallDispatch(benchmark::State& state) {
  const experiment::ExperimentResult* result = nullptr;
  for (auto _ : state) {
    result = fig13_small_cache().result({state.range(0)});
  }
  state.counters["MBps"] = result->total_mbps;
  state.counters["cpu_util"] = result->host_cpu_utilization;
  state.counters["buffers_peak_MB"] =
      static_cast<double>(result->peak_buffer_memory) / (1 << 20);
}

void Fig13DispatchEqualsStaged(benchmark::State& state) {
  const experiment::ExperimentResult* result = nullptr;
  for (auto _ : state) {
    result = fig13_staged_cache().result({state.range(0)});
  }
  state.counters["MBps"] = result->total_mbps;
  state.counters["cpu_util"] = result->host_cpu_utilization;
}

}  // namespace

BENCHMARK(Fig13SmallDispatch)
    ->ArgNames({"streams_per_disk"})
    ->Arg(10)->Arg(30)->Arg(60)->Arg(100)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(Fig13DispatchEqualsStaged)
    ->ArgNames({"streams_per_disk"})
    ->Arg(10)->Arg(30)->Arg(60)->Arg(100)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
