// Figure 2: Linux I/O scheduler performance on a single disk — xdd reading
// sequential files with 4 KB blocks through the kernel page cache, for the
// noop, anticipatory and CFQ schedulers (deadline added as a bonus series),
// 1-256 concurrent streams.
//
// The client think time models CPU-scheduling contention on the testbed's
// 2-way Opteron: with hundreds of runnable readers, the next read of a
// process arrives later than the anticipatory scheduler's 6 ms window, so
// anticipation stops paying off and every scheduler collapses to a seek
// per read-ahead window. (Paper: "when the number of streams exceeds 16,
// all schedulers perform significantly slower"; AS loses ~4x at 256.)
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "oskernel/kernel_io.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace sstbench;

/// Per-request CPU cost of a ready process and the machine's core count.
constexpr SimTime kCpuSlice = usec(25);
constexpr std::uint32_t kCpus = 2;

constexpr std::int64_t kStreamCounts[] = {1, 2, 4, 8, 16, 32, 64, 128, 256};

double run_kernel_experiment(oskernel::IoSchedKind kind, std::uint32_t streams) {
  sim::Simulator simulator;
  node::NodeConfig node_cfg;  // 1 controller, 1 disk
  node::StorageNode node(simulator, node_cfg);

  oskernel::KernelIoParams kernel_params;
  kernel_params.scheduler = kind;
  oskernel::KernelIo kernel(simulator, node.device(0), kernel_params);

  // xdd accesses at 1 GB intervals; emulate with uniform spacing.
  auto specs = workload::make_uniform_streams(streams, 1,
                                              node_cfg.disk.geometry.capacity, 4 * KiB);
  const SimTime think = kCpuSlice * ((streams + kCpus - 1) / kCpus);
  std::vector<std::unique_ptr<workload::StreamClient>> clients;
  clients.reserve(specs.size());
  for (std::uint32_t i = 0; i < specs.size(); ++i) {
    specs[i].think_time = think;
    workload::RequestSink sink = [&kernel, i](core::ClientRequest req) {
      kernel.read(i, req.offset, req.length,
                  [cb = std::move(req.on_complete)](SimTime t) {
                    if (cb) cb(t);
                  });
    };
    clients.push_back(std::make_unique<workload::StreamClient>(
        simulator, std::move(sink), specs[i], node.device(0).capacity()));
  }
  for (auto& c : clients) c->start();

  simulator.run_until(sec(3));
  for (auto& c : clients) c->begin_measurement();
  const SimTime t0 = simulator.now();
  const SimTime t1 = t0 + sec(12);
  simulator.run_until(t1);

  double total = 0.0;
  for (const auto& c : clients) total += c->stats().throughput.mbps(t0, t1);
  return total;
}

// The kernel series is a custom harness (not an ExperimentConfig), so it
// fans out through run_sweep_jobs with the scalar throughput carried in
// ExperimentResult::total_mbps.
const std::map<SweepKey, double>& fig02_kernel_results() {
  static const std::map<SweepKey, double> results = [] {
    const std::vector<SweepKey> keys =
        sweep_grid({{static_cast<std::int64_t>(oskernel::IoSchedKind::kNoop),
                     static_cast<std::int64_t>(oskernel::IoSchedKind::kDeadline),
                     static_cast<std::int64_t>(oskernel::IoSchedKind::kAnticipatory),
                     static_cast<std::int64_t>(oskernel::IoSchedKind::kCfq)},
                    {std::begin(kStreamCounts), std::end(kStreamCounts)}});
    std::vector<std::function<experiment::ExperimentResult()>> jobs;
    jobs.reserve(keys.size());
    for (const SweepKey& key : keys) {
      jobs.push_back([key] {
        experiment::ExperimentResult r;
        r.total_mbps = run_kernel_experiment(
            static_cast<oskernel::IoSchedKind>(key[0]),
            static_cast<std::uint32_t>(key[1]));
        return r;
      });
    }
    const auto raw = experiment::run_sweep_jobs(jobs);
    std::map<SweepKey, double> out;
    for (std::size_t i = 0; i < keys.size(); ++i) out.emplace(keys[i], raw[i].total_mbps);
    return out;
  }();
  return results;
}

std::optional<experiment::ExperimentConfig> fig02_sched_config(const SweepKey& key) {
  const auto streams = static_cast<std::uint32_t>(key[0]);
  node::NodeConfig cfg;
  core::SchedulerParams params;
  params.read_ahead = 2 * MiB;
  params.memory_budget =
      std::max<Bytes>(256 * MiB, static_cast<Bytes>(streams) * 2 * MiB);
  params.classifier.block_bytes = 4 * KiB;

  experiment::ExperimentConfig ec;
  ec.topology.node = cfg;
  ec.warmup = sec(3);
  ec.measure = sec(12);
  ec.scheduler = params;
  ec.streams = workload::make_uniform_streams(streams, 1,
                                              cfg.disk.geometry.capacity, 4 * KiB);
  const SimTime think = kCpuSlice * ((streams + kCpus - 1) / kCpus);
  for (auto& spec : ec.streams) spec.think_time = think;
  return ec;
}

SweepCache& fig02_sched_cache() {
  static SweepCache cache(
      "fig02_linux_sched",
      sweep_grid({{std::begin(kStreamCounts), std::end(kStreamCounts)}}),
      fig02_sched_config);
  return cache;
}

void Fig02(benchmark::State& state) {
  const auto kind = static_cast<oskernel::IoSchedKind>(state.range(0));
  double mbps = 0.0;
  for (auto _ : state) {
    mbps = fig02_kernel_results().at({state.range(0), state.range(1)});
  }
  state.counters["MBps"] = mbps;
  state.SetLabel(oskernel::to_string(kind));
}

// The head-to-head the paper implies: the same 4 KB / CPU-contended
// workload through the stream scheduler instead of the kernel page cache.
void Fig02StreamScheduler(benchmark::State& state) {
  const experiment::ExperimentResult* result = nullptr;
  for (auto _ : state) {
    result = fig02_sched_cache().result({state.range(0)});
  }
  state.counters["MBps"] = result->total_mbps;
  state.SetLabel("stream-scheduler");
}

}  // namespace

BENCHMARK(Fig02StreamScheduler)
    ->ArgNames({"streams"})
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(Fig02)
    ->ArgNames({"sched", "streams"})
    ->ArgsProduct({{static_cast<long>(oskernel::IoSchedKind::kNoop),
                    static_cast<long>(oskernel::IoSchedKind::kDeadline),
                    static_cast<long>(oskernel::IoSchedKind::kAnticipatory),
                    static_cast<long>(oskernel::IoSchedKind::kCfq)},
                   {1, 2, 4, 8, 16, 32, 64, 128, 256}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
