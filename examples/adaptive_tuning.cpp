// Adaptive tuning: the paper's point that (D, R, N, M) can be set
// independently per storage-node configuration (§5.4, conclusions). This
// example describes several node configurations — from a memory-starved
// single-disk box to an 8-disk server — lets the auto-tuner derive the
// scheduler parameters from the disks' mechanical numbers and the host
// memory, then measures the result against a 64-streams-per-disk workload.
//
// Usage: ./build/examples/adaptive_tuning
#include <cstdio>

#include "core/autotune.hpp"
#include "disk/geometry.hpp"
#include "disk/seek_model.hpp"
#include "experiment/runner.hpp"
#include "node/storage_node.hpp"
#include "workload/generator.hpp"

using namespace sst;

namespace {

struct Scenario {
  const char* name;
  node::NodeConfig node;
  Bytes host_memory;
};

void run_scenario(const Scenario& s) {
  // Derive the disk's mechanical profile from its model parameters — this
  // is what an operator would measure with a microbenchmark.
  disk::Geometry geometry(s.node.disk.geometry);
  disk::SeekModel seeks(s.node.disk.seek, geometry.total_cylinders());
  core::NodeDescription desc;
  desc.num_disks = s.node.total_disks();
  desc.disk_seq_rate_bps = geometry.sequential_rate_bps(geometry.total_sectors() / 2);
  desc.avg_position_time = seeks.seek_time(geometry.total_cylinders() / 3) +
                           geometry.rotation_period() / 2;
  desc.host_memory = s.host_memory;

  const auto tuned = core::autotune(desc);

  experiment::ExperimentConfig ec;
  ec.topology.node = s.node;
  ec.warmup = sec(2);
  ec.measure = sec(10);
  ec.streams = workload::make_uniform_streams(64 * desc.num_disks, desc.num_disks,
                                              s.node.disk.geometry.capacity, 64 * KiB);
  const auto raw = experiment::run_experiment(ec);
  ec.scheduler = tuned.params;
  const auto sys = experiment::run_experiment(ec);

  std::printf("%s\n", s.name);
  std::printf("  derived: %s\n", tuned.rationale.c_str());
  std::printf("  tuned (D=%u R=%lluK N=%u M=%lluM): %7.1f MB/s  (raw: %.1f, gain %.2fx)\n\n",
              tuned.params.dispatch_set_size,
              static_cast<unsigned long long>(tuned.params.read_ahead / KiB),
              tuned.params.requests_per_residency,
              static_cast<unsigned long long>(tuned.params.memory_budget / MiB),
              sys.total_mbps, raw.total_mbps, sys.total_mbps / raw.total_mbps);
}

}  // namespace

int main() {
  Scenario scenarios[] = {
      {"single disk, memory-starved node (32 MB for I/O buffering)",
       node::NodeConfig::base(), 32 * MiB},
      {"single disk, well-provisioned node (512 MB)", node::NodeConfig::base(),
       512 * MiB},
      {"8-disk node, 1 GB of buffering (the paper's testbed)",
       node::NodeConfig::medium(), 1 * GiB},
  };
  std::printf("Auto-tuning (D, R, N, M) per storage-node configuration\n");
  std::printf("workload: 64 sequential streams per disk, 64 KB requests\n\n");
  for (const auto& s : scenarios) run_scenario(s);
  return 0;
}
