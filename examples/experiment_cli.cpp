// experiment_cli: run any streamstore experiment from a flat key=value
// description — a DiskSim-style front end. Parameters come from an optional
// config file plus command-line overrides (later wins).
//
//   ./build/examples/experiment_cli workload.streams=100 sched.read_ahead=8M
//       (plus e.g. sched.memory=800M run.measure=20s)
//   ./build/examples/experiment_cli @fig10.conf sched.read_ahead=2M
//
// Prints a result table plus the scheduler/disk counters. See
// src/configio/loaders.hpp for the full key reference.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "configio/loaders.hpp"
#include "stats/table.hpp"

using namespace sst;

namespace {

Result<Config> gather_config(int argc, char** argv) {
  Config merged;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!arg.empty() && arg.front() == '@') {
      std::ifstream file(arg.substr(1));
      if (!file) return make_error("cannot open config file: " + arg.substr(1));
      std::ostringstream text;
      text << file.rdbuf();
      auto parsed = Config::from_text(text.str());
      if (!parsed.ok()) return parsed.error();
      for (const auto& [k, v] : parsed.value().entries()) merged.set(k, v);
    } else {
      auto parsed = Config::from_args({arg});
      if (!parsed.ok()) return parsed.error();
      for (const auto& [k, v] : parsed.value().entries()) merged.set(k, v);
    }
  }
  return merged;
}

}  // namespace

int main(int argc, char** argv) {
  auto cfg = gather_config(argc, argv);
  if (!cfg.ok()) {
    std::fprintf(stderr, "error: %s\n", cfg.error().message.c_str());
    return 1;
  }
  auto experiment = configio::load_experiment(cfg.value());
  if (!experiment.ok()) {
    std::fprintf(stderr, "error: %s\n", experiment.error().message.c_str());
    return 1;
  }

  const auto result = experiment::run_experiment(experiment.value());
  const auto& ec = experiment.value();

  stats::Table table("experiment result");
  table.set_note(std::to_string(ec.streams.size()) + " streams on " +
                 std::to_string(ec.node.total_disks()) + " disk(s), " +
                 (ec.scheduler ? "stream scheduler" : "raw devices"));
  table.set_columns({"metric", "value"});
  table.add_row({std::string("aggregate MB/s"), result.total_mbps});
  table.add_row({std::string("per-disk MB/s"), result.per_disk_mbps(ec.node.total_disks())});
  table.add_row({std::string("requests completed"),
                 static_cast<std::int64_t>(result.requests_completed)});
  table.add_row({std::string("mean latency ms"), result.latency.mean_ms()});
  table.add_row({std::string("p95 latency ms"), result.latency.p95_ms()});
  table.add_row({std::string("p99 latency ms"), result.latency.p99_ms()});
  table.add_row({std::string("disk media MB"),
                 static_cast<double>(result.disk_totals.bytes_from_media) / 1e6});
  table.add_row({std::string("disk cache hit rate"),
                 result.disk_totals.cache_hits + result.disk_totals.cache_misses > 0
                     ? static_cast<double>(result.disk_totals.cache_hits) /
                           static_cast<double>(result.disk_totals.cache_hits +
                                               result.disk_totals.cache_misses)
                     : 0.0});
  if (ec.scheduler) {
    table.add_row({std::string("streams detected"),
                   static_cast<std::int64_t>(result.scheduler_stats.streams_created)});
    table.add_row({std::string("read-aheads issued"),
                   static_cast<std::int64_t>(result.scheduler_stats.disk_reads)});
    table.add_row({std::string("staged-buffer hits"),
                   static_cast<std::int64_t>(result.scheduler_stats.buffer_hits)});
    table.add_row({std::string("peak buffer MB"),
                   static_cast<double>(result.peak_buffer_memory) / 1e6});
    table.add_row({std::string("host CPU utilization"), result.host_cpu_utilization});
  }
  table.print(std::cout);
  return 0;
}
