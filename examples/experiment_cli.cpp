// experiment_cli: run any streamstore experiment from a flat key=value
// description — a DiskSim-style front end. Parameters come from an optional
// config file plus command-line overrides (later wins).
//
//   ./build/examples/experiment_cli workload.streams=100 sched.read_ahead=8M
//       (plus e.g. sched.memory=800M run.measure=20s)
//   ./build/examples/experiment_cli @fig10.conf sched.read_ahead=2M
//
// Any key can be swept by prefixing it with "sweep." and giving a
// comma-separated value list; the cartesian product of all swept keys runs
// through the parallel sweep engine (SST_BENCH_THREADS workers) and prints
// one row per grid point:
//
//   ./build/examples/experiment_cli workload.streams=100 \
//       sweep.sched.read_ahead=512K,2M,8M sweep.workload.streams=10,100
//
// Prints a result table plus the scheduler/disk counters. See
// src/configio/loaders.hpp for the full key reference.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "configio/loaders.hpp"
#include "experiment/sweep.hpp"
#include "stats/table.hpp"

using namespace sst;

namespace {

Result<Config> gather_config(int argc, char** argv) {
  Config merged;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!arg.empty() && arg.front() == '@') {
      std::ifstream file(arg.substr(1));
      if (!file) return make_error("cannot open config file: " + arg.substr(1));
      std::ostringstream text;
      text << file.rdbuf();
      auto parsed = Config::from_text(text.str());
      if (!parsed.ok()) return parsed.error();
      for (const auto& [k, v] : parsed.value().entries()) merged.set(k, v);
    } else {
      auto parsed = Config::from_args({arg});
      if (!parsed.ok()) return parsed.error();
      for (const auto& [k, v] : parsed.value().entries()) merged.set(k, v);
    }
  }
  return merged;
}

struct SweepAxis {
  std::string key;
  std::vector<std::string> values;
};

/// Split "sweep.<key>=v1,v2,..." entries out of the merged config.
std::pair<Config, std::vector<SweepAxis>> split_sweep_axes(const Config& merged) {
  constexpr std::string_view kPrefix = "sweep.";
  Config base;
  std::vector<SweepAxis> axes;
  for (const auto& [key, value] : merged.entries()) {
    if (key.rfind(kPrefix, 0) != 0) {
      base.set(key, value);
      continue;
    }
    SweepAxis axis;
    axis.key = key.substr(kPrefix.size());
    std::istringstream list(value);
    for (std::string item; std::getline(list, item, ',');) {
      if (!item.empty()) axis.values.push_back(std::move(item));
    }
    if (!axis.values.empty()) axes.push_back(std::move(axis));
  }
  return {std::move(base), std::move(axes)};
}

/// Cartesian product of the axes, as per-point (key, value) assignments.
std::vector<std::vector<std::pair<std::string, std::string>>> expand_grid(
    const std::vector<SweepAxis>& axes) {
  std::vector<std::vector<std::pair<std::string, std::string>>> points{{}};
  for (const auto& axis : axes) {
    std::vector<std::vector<std::pair<std::string, std::string>>> expanded;
    expanded.reserve(points.size() * axis.values.size());
    for (const auto& prefix : points) {
      for (const auto& value : axis.values) {
        auto point = prefix;
        point.emplace_back(axis.key, value);
        expanded.push_back(std::move(point));
      }
    }
    points = std::move(expanded);
  }
  return points;
}

void print_single(const experiment::ExperimentConfig& ec,
                  const experiment::ExperimentResult& result) {
  stats::Table table("experiment result");
  table.set_note(std::to_string(ec.streams.size()) + " streams on " +
                 std::to_string(ec.node.total_disks()) + " disk(s), " +
                 (ec.scheduler ? "stream scheduler" : "raw devices"));
  table.set_columns({"metric", "value"});
  table.add_row({std::string("aggregate MB/s"), result.total_mbps});
  table.add_row({std::string("per-disk MB/s"), result.per_disk_mbps(ec.node.total_disks())});
  table.add_row({std::string("requests completed"),
                 static_cast<std::int64_t>(result.requests_completed)});
  table.add_row({std::string("mean latency ms"), result.latency.mean_ms()});
  table.add_row({std::string("p95 latency ms"), result.latency.p95_ms()});
  table.add_row({std::string("p99 latency ms"), result.latency.p99_ms()});
  table.add_row({std::string("disk media MB"),
                 static_cast<double>(result.disk_totals.bytes_from_media) / 1e6});
  table.add_row({std::string("disk cache hit rate"),
                 result.disk_totals.cache_hits + result.disk_totals.cache_misses > 0
                     ? static_cast<double>(result.disk_totals.cache_hits) /
                           static_cast<double>(result.disk_totals.cache_hits +
                                               result.disk_totals.cache_misses)
                     : 0.0});
  if (ec.scheduler) {
    table.add_row({std::string("streams detected"),
                   static_cast<std::int64_t>(result.scheduler_stats.streams_created)});
    table.add_row({std::string("read-aheads issued"),
                   static_cast<std::int64_t>(result.scheduler_stats.disk_reads)});
    table.add_row({std::string("staged-buffer hits"),
                   static_cast<std::int64_t>(result.scheduler_stats.buffer_hits)});
    table.add_row({std::string("peak buffer MB"),
                   static_cast<double>(result.peak_buffer_memory) / 1e6});
    table.add_row({std::string("host CPU utilization"), result.host_cpu_utilization});
  }
  table.print(std::cout);
}

int run_sweep_cli(const Config& base, const std::vector<SweepAxis>& axes) {
  const auto points = expand_grid(axes);
  std::vector<experiment::ExperimentConfig> configs;
  configs.reserve(points.size());
  for (const auto& point : points) {
    Config cfg = base;
    for (const auto& [key, value] : point) cfg.set(key, value);
    auto experiment = configio::load_experiment(cfg);
    if (!experiment.ok()) {
      std::fprintf(stderr, "error: %s\n", experiment.error().message.c_str());
      return 1;
    }
    configs.push_back(std::move(experiment.value()));
  }

  const auto results = experiment::run_sweep(configs);

  stats::Table table("sweep result");
  table.set_note(std::to_string(points.size()) + " grid points, " +
                 std::to_string(experiment::default_sweep_workers()) + " workers");
  std::vector<std::string> columns;
  for (const auto& axis : axes) columns.push_back(axis.key);
  columns.insert(columns.end(),
                 {"MB/s", "MB/s/disk", "requests", "mean ms", "p95 ms"});
  table.set_columns(columns);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& result = results[i];
    std::vector<stats::Cell> row;
    for (const auto& [key, value] : points[i]) row.emplace_back(value);
    row.emplace_back(result.total_mbps);
    row.emplace_back(result.per_disk_mbps(configs[i].node.total_disks()));
    row.emplace_back(static_cast<std::int64_t>(result.requests_completed));
    row.emplace_back(result.latency.mean_ms());
    row.emplace_back(result.latency.p95_ms());
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto cfg = gather_config(argc, argv);
  if (!cfg.ok()) {
    std::fprintf(stderr, "error: %s\n", cfg.error().message.c_str());
    return 1;
  }

  auto [base, axes] = split_sweep_axes(cfg.value());
  if (!axes.empty()) return run_sweep_cli(base, axes);

  auto experiment = configio::load_experiment(base);
  if (!experiment.ok()) {
    std::fprintf(stderr, "error: %s\n", experiment.error().message.c_str());
    return 1;
  }

  const auto result = experiment::run_experiment(experiment.value());
  print_single(experiment.value(), result);
  return 0;
}
