// experiment_cli: run any streamstore experiment from a flat key=value
// description — a DiskSim-style front end. Parameters come from an optional
// config file plus command-line overrides (later wins).
//
//   ./build/examples/experiment_cli workload.streams=100 sched.read_ahead=8M
//       (plus e.g. sched.memory=800M run.measure=20s)
//   ./build/examples/experiment_cli @fig10.conf sched.read_ahead=2M
//
// Any key can be swept by prefixing it with "sweep." and giving a
// comma-separated value list; the cartesian product of all swept keys runs
// through the parallel sweep engine (SST_BENCH_THREADS workers) and prints
// one row per grid point:
//
//   ./build/examples/experiment_cli workload.streams=100 \
//       sweep.sched.read_ahead=512K,2M,8M sweep.workload.streams=10,100
//
// Parallel engine keys (see src/configio/loaders.hpp):
//
//   sim.shards=N                shard the event engine over N device-stack
//                               slices (alias: topology.shards; clamped to
//                               the controller count / raid layout; 1 =
//                               the classic single-threaded engine)
//   sim.lookahead=500us         conservative barrier horizon == modelled
//                               cross-shard interconnect latency (0 =
//                               derive from net.latency or the default)
//   workload.seed=K             global workload seed; per-stream seeds
//                               derive from it per shard
//   workload.think_jitter=2ms   uniform random extra think time in [0, J]
//                               per completion, from the stream's seed
//
// Observability flags (work in both single and sweep mode; sweep mode
// writes one file per grid point, with the point index before the
// extension):
//
//   --trace=trace.json          request-lifecycle trace (Chrome Trace JSON,
//                               load in Perfetto / chrome://tracing)
//   --metrics=metrics.json      full metrics export (per-layer counters,
//                               latency histogram); a JSON array in sweeps
//   --timeseries=series.csv     sampled gauges as CSV
//   --sample-interval-ms=N      gauge sampling period (default 100 when
//                               --timeseries is given)
//   --flight-record=dump.json   flight-recorder journal destination (the
//                               ring also dumps here automatically on an
//                               SLO breach or a device failure; defaults
//                               to flight_dump.json when an slo.* spec is
//                               active without this flag)
//   --flight-dump               force a dump even without a breach
//   --flight-capacity=N         ring capacity in events (default 4096)
//
// Declaring an SLO (slo.objective=50ms, optionally slo.quantile=0.999,
// slo.window=1s, slo.burn_rate=0.05) makes the run exit with code 3 when
// the objective is breached, after writing the flight-recorder dump.
//
// Execution backend keys (see README "Running against real disks"):
//
//   backend.kind=sim|real       sim (default) = the deterministic event
//                               simulator; real = io_uring + O_DIRECT over
//                               a backing file (requires a build with
//                               -DSST_WITH_URING=ON; exit code 4 otherwise)
//   backend.path=/path/file     backing file for backend.kind=real, carved
//                               into one slice per logical device
//                               (pre-format with scripts/mkpattern.py)
//   backend.queue_depth=64      per-device io_uring in-flight depth
//   backend.direct=true         try O_DIRECT first (tmpfs and friends fall
//                               back to buffered I/O automatically)
//   backend.reactors=1          reactor threads; > 1 carves the devices into
//                               per-reactor groups, each with its own rings
//                               and epoll loop (the real mirror of
//                               sim.shards)
//
// Exit codes: 0 = success, 1 = usage/config/runtime error, 3 = SLO breach,
// 4 = backend.kind=real without an io_uring build. `--help` prints the key
// summary.
//
// Prints a result table plus the scheduler/disk counters. See
// src/configio/loaders.hpp for the full key reference.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "configio/loaders.hpp"
#include "experiment/sweep.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/tracer.hpp"
#include "stats/table.hpp"

using namespace sst;

namespace {

/// Exit code for an SLO breach (distinct from 1 = usage/config errors).
constexpr int kExitSloBreach = 3;
/// Exit code for backend.kind=real in a build without -DSST_WITH_URING=ON.
constexpr int kExitRealUnavailable = 4;

void print_help() {
  std::printf(
      "usage: experiment_cli [@config-file] [key=value ...] [--flags]\n"
      "\n"
      "Runs one streamstore experiment from flat key=value parameters; an\n"
      "@file provides defaults and command-line keys override (later wins).\n"
      "Prefix any key with sweep. and give comma-separated values to run the\n"
      "cartesian product in parallel.\n"
      "\n"
      "Common keys (full reference: src/configio/loaders.hpp):\n"
      "  topology.controllers=N topology.disks=N    physical node shape\n"
      "  sched.read_ahead=2M sched.memory=800M      stream scheduler (omit\n"
      "                                             sched.* = raw devices)\n"
      "  workload.streams=N workload.request=64K    closed-loop stream clients\n"
      "  run.warmup=4s run.measure=20s              run windows\n"
      "  sim.shards=N sim.lookahead=500us           parallel event engine\n"
      "  slo.objective=50ms slo.quantile=0.999      tail-latency SLO gate\n"
      "  obs.attribution=true                       per-stage latency metrics\n"
      "\n"
      "Execution backend:\n"
      "  backend.kind=sim|real   sim (default) = deterministic simulator;\n"
      "                          real = io_uring + O_DIRECT over backend.path\n"
      "                          (build with -DSST_WITH_URING=ON; pre-format\n"
      "                          the file with scripts/mkpattern.py)\n"
      "  backend.path=FILE       backing file, one slice per logical device\n"
      "  backend.queue_depth=64  per-device in-flight depth\n"
      "  backend.direct=true     try O_DIRECT, buffered fallback on refusal\n"
      "  backend.reactors=1      reactor threads (real mirror of sim.shards)\n"
      "\n"
      "Observability flags:\n"
      "  --trace=FILE --metrics=FILE --timeseries=FILE\n"
      "  --sample-interval-ms=N --flight-record=FILE --flight-dump\n"
      "  --flight-capacity=N\n"
      "\n"
      "Exit codes: 0 success, 1 usage/config/runtime error, 3 SLO breach,\n"
      "4 backend.kind=real without an io_uring build.\n");
}

/// Observability outputs requested via --flags.
struct ObsOptions {
  std::string trace_path;
  std::string metrics_path;
  std::string timeseries_path;
  SimTime sample_interval = 0;
  std::string flight_path;
  bool flight_dump = false;
  std::size_t flight_capacity = obs::FlightRecorder::kDefaultCapacity;

  [[nodiscard]] bool tracing() const { return !trace_path.empty(); }
  [[nodiscard]] SimTime effective_interval() const {
    if (sample_interval > 0) return sample_interval;
    return timeseries_path.empty() ? 0 : msec(100);
  }
  /// Recording is on when any flight flag was given or an SLO is active
  /// (the breach dump needs a journal to write).
  [[nodiscard]] bool flight_recording(bool slo_active) const {
    return !flight_path.empty() || flight_dump || slo_active;
  }
  [[nodiscard]] std::string effective_flight_path() const {
    return flight_path.empty() ? "flight_dump.json" : flight_path;
  }
};

/// Parse --name=value observability flags out of argv; everything else is
/// returned for the config parser. Returns false on a malformed flag.
bool split_obs_flags(int argc, char** argv, ObsOptions& obs,
                     std::vector<std::string>& rest) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace=", 0) == 0) {
      obs.trace_path = arg.substr(8);
    } else if (arg.rfind("--metrics=", 0) == 0) {
      obs.metrics_path = arg.substr(10);
    } else if (arg.rfind("--timeseries=", 0) == 0) {
      obs.timeseries_path = arg.substr(13);
    } else if (arg.rfind("--sample-interval-ms=", 0) == 0) {
      try {
        obs.sample_interval = msec(std::stoull(arg.substr(21)));
      } catch (...) {
        std::fprintf(stderr, "error: bad --sample-interval-ms value: %s\n", arg.c_str());
        return false;
      }
    } else if (arg.rfind("--flight-record=", 0) == 0) {
      obs.flight_path = arg.substr(16);
    } else if (arg == "--flight-dump") {
      obs.flight_dump = true;
    } else if (arg.rfind("--flight-capacity=", 0) == 0) {
      try {
        obs.flight_capacity = std::stoull(arg.substr(18));
      } catch (...) {
        std::fprintf(stderr, "error: bad --flight-capacity value: %s\n", arg.c_str());
        return false;
      }
      if (obs.flight_capacity == 0) {
        std::fprintf(stderr, "error: --flight-capacity must be >= 1\n");
        return false;
      }
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "error: unknown flag: %s\n", arg.c_str());
      return false;
    } else {
      rest.push_back(arg);
    }
  }
  return true;
}

/// "out.json" + index 2 -> "out.2.json" (sweep mode writes one file per
/// grid point).
std::string indexed_path(const std::string& path, std::size_t index) {
  const auto dot = path.rfind('.');
  const auto slash = path.find_last_of('/');
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash)) {
    return path + "." + std::to_string(index);
  }
  return path.substr(0, dot) + "." + std::to_string(index) + path.substr(dot);
}

bool write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << text;
  return static_cast<bool>(out);
}

Result<Config> gather_config(const std::vector<std::string>& args) {
  Config merged;
  for (const std::string& arg : args) {
    if (!arg.empty() && arg.front() == '@') {
      std::ifstream file(arg.substr(1));
      if (!file) return make_error("cannot open config file: " + arg.substr(1));
      std::ostringstream text;
      text << file.rdbuf();
      auto parsed = Config::from_text(text.str());
      if (!parsed.ok()) return parsed.error();
      for (const auto& [k, v] : parsed.value().entries()) merged.set(k, v);
    } else {
      auto parsed = Config::from_args({arg});
      if (!parsed.ok()) return parsed.error();
      for (const auto& [k, v] : parsed.value().entries()) merged.set(k, v);
    }
  }
  return merged;
}

struct SweepAxis {
  std::string key;
  std::vector<std::string> values;
};

/// Split "sweep.<key>=v1,v2,..." entries out of the merged config.
std::pair<Config, std::vector<SweepAxis>> split_sweep_axes(const Config& merged) {
  constexpr std::string_view kPrefix = "sweep.";
  Config base;
  std::vector<SweepAxis> axes;
  for (const auto& [key, value] : merged.entries()) {
    if (key.rfind(kPrefix, 0) != 0) {
      base.set(key, value);
      continue;
    }
    SweepAxis axis;
    axis.key = key.substr(kPrefix.size());
    std::istringstream list(value);
    for (std::string item; std::getline(list, item, ',');) {
      if (!item.empty()) axis.values.push_back(std::move(item));
    }
    if (!axis.values.empty()) axes.push_back(std::move(axis));
  }
  return {std::move(base), std::move(axes)};
}

/// Cartesian product of the axes, as per-point (key, value) assignments.
std::vector<std::vector<std::pair<std::string, std::string>>> expand_grid(
    const std::vector<SweepAxis>& axes) {
  std::vector<std::vector<std::pair<std::string, std::string>>> points{{}};
  for (const auto& axis : axes) {
    std::vector<std::vector<std::pair<std::string, std::string>>> expanded;
    expanded.reserve(points.size() * axis.values.size());
    for (const auto& prefix : points) {
      for (const auto& value : axis.values) {
        auto point = prefix;
        point.emplace_back(axis.key, value);
        expanded.push_back(std::move(point));
      }
    }
    points = std::move(expanded);
  }
  return points;
}

void print_single(const experiment::ExperimentConfig& ec,
                  const experiment::ExperimentResult& result) {
  stats::Table table("experiment result");
  table.set_note(std::to_string(ec.streams.size()) + " streams on " +
                 std::to_string(ec.topology.node.total_disks()) + " disk(s), " +
                 (ec.scheduler ? "stream scheduler" : "raw devices"));
  table.set_columns({"metric", "value"});
  table.add_row({std::string("aggregate MB/s"), result.total_mbps});
  table.add_row(
      {std::string("per-disk MB/s"), result.per_disk_mbps(ec.topology.node.total_disks())});
  table.add_row({std::string("requests completed"),
                 static_cast<std::int64_t>(result.requests_completed)});
  table.add_row({std::string("mean latency ms"), result.latency.mean_ms()});
  table.add_row({std::string("p95 latency ms"), result.latency.p95_ms()});
  table.add_row({std::string("p99 latency ms"), result.latency.p99_ms()});
  table.add_row({std::string("p999 latency ms"), result.latency.p999_ms()});
  table.add_row({std::string("disk media MB"),
                 static_cast<double>(result.disk_totals.bytes_from_media) / 1e6});
  table.add_row({std::string("disk cache hit rate"),
                 result.disk_totals.cache_hits + result.disk_totals.cache_misses > 0
                     ? static_cast<double>(result.disk_totals.cache_hits) /
                           static_cast<double>(result.disk_totals.cache_hits +
                                               result.disk_totals.cache_misses)
                     : 0.0});
  if (ec.scheduler) {
    table.add_row({std::string("streams detected"),
                   static_cast<std::int64_t>(result.scheduler_stats.streams_created)});
    table.add_row({std::string("read-aheads issued"),
                   static_cast<std::int64_t>(result.scheduler_stats.disk_reads)});
    table.add_row({std::string("staged-buffer hits"),
                   static_cast<std::int64_t>(result.scheduler_stats.buffer_hits)});
    table.add_row({std::string("peak buffer MB"),
                   static_cast<double>(result.peak_buffer_memory) / 1e6});
    table.add_row({std::string("host CPU utilization"), result.host_cpu_utilization});
  }
  if (ec.topology.stack.fault.enabled()) {
    table.add_row({std::string("faults injected"),
                   static_cast<std::int64_t>(result.fault_stats.media_errors +
                                             result.fault_stats.hangs +
                                             result.fault_stats.spikes)});
    table.add_row({std::string("retries"),
                   static_cast<std::int64_t>(result.retry_stats.retries_total)});
    table.add_row({std::string("commands recovered"),
                   static_cast<std::int64_t>(result.retry_stats.recovered)});
    table.add_row({std::string("retry giveups"),
                   static_cast<std::int64_t>(result.retry_stats.giveups)});
    table.add_row({std::string("streams evicted"),
                   static_cast<std::int64_t>(result.scheduler_stats.streams_evicted)});
    table.add_row({std::string("devices failed"),
                   static_cast<std::int64_t>(result.devices_failed)});
    table.add_row({std::string("client errors"),
                   static_cast<std::int64_t>(result.client_errors)});
  }
  if (result.breakdown.enabled) {
    table.add_row({std::string("stage sum / e2e ms"),
                   result.breakdown.stage_sum_ms()});
    table.add_row({std::string("queue stage mean ms"),
                   result.breakdown.queue.mean_ms()});
    table.add_row({std::string("uplink stage mean ms"),
                   result.breakdown.uplink.mean_ms()});
  }
  if (result.slo_report.enabled) {
    table.add_row({std::string("SLO verdict"),
                   std::string(result.slo_report.pass ? "pass" : "FAIL")});
    table.add_row({std::string("SLO objective ms"), result.slo_report.objective_ms});
    table.add_row({std::string("SLO worst window ms"),
                   result.slo_report.worst_window_ms});
    table.add_row({std::string("SLO windows breached"),
                   static_cast<std::int64_t>(result.slo_report.windows_breached)});
  }
  table.print(std::cout);
}

/// A dump is written when explicitly requested, on an SLO breach, or when
/// the fault layer declared a device failed during the run.
bool should_dump_flight(const ObsOptions& obs,
                        const experiment::ExperimentResult& result) {
  if (obs.flight_dump || !obs.flight_path.empty()) return true;
  if (result.slo_report.enabled && !result.slo_report.pass) return true;
  return result.devices_failed > 0;
}

int run_sweep_cli(const Config& base, const std::vector<SweepAxis>& axes,
                  const ObsOptions& obs) {
  const auto points = expand_grid(axes);
  std::vector<experiment::ExperimentConfig> configs;
  configs.reserve(points.size());
  for (const auto& point : points) {
    Config cfg = base;
    for (const auto& [key, value] : point) cfg.set(key, value);
    auto experiment = configio::load_experiment(cfg);
    if (!experiment.ok()) {
      std::fprintf(stderr, "error: %s\n", experiment.error().message.c_str());
      return 1;
    }
    if (experiment.value().backend.kind == experiment::BackendConfig::Kind::kReal) {
      std::fprintf(stderr,
                   "error: backend.kind=real is not supported in sweep mode "
                   "(grid points would contend for the same disk)\n");
      return 1;
    }
    configs.push_back(std::move(experiment.value()));
  }

  // One tracer per grid point: sweep workers run points concurrently, so
  // trace state must never be shared.
  std::vector<std::unique_ptr<obs::Tracer>> tracers;
  if (obs.tracing()) {
    tracers.reserve(configs.size());
    for (auto& config : configs) {
      tracers.push_back(std::make_unique<obs::Tracer>());
      config.tracer = tracers.back().get();
    }
  }
  // Same isolation rule for the flight recorders.
  const bool any_slo = [&configs] {
    for (const auto& config : configs)
      if (config.slo.enabled()) return true;
    return false;
  }();
  std::vector<std::unique_ptr<obs::FlightRecorder>> flights;
  if (obs.flight_recording(any_slo)) {
    flights.reserve(configs.size());
    for (auto& config : configs) {
      flights.push_back(std::make_unique<obs::FlightRecorder>(obs.flight_capacity));
      config.flight = flights.back().get();
    }
  }
  for (auto& config : configs) config.sample_interval = obs.effective_interval();

  const auto results = experiment::run_sweep(configs);

  bool slo_breached = false;
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (results[i].slo_report.enabled && !results[i].slo_report.pass) {
      slo_breached = true;
    }
    if (!flights.empty() && should_dump_flight(obs, results[i])) {
      const std::string path = indexed_path(obs.effective_flight_path(), i);
      if (!flights[i]->write_file(path)) {
        std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
        return 1;
      }
    }
  }

  for (std::size_t i = 0; i < results.size(); ++i) {
    if (obs.tracing() &&
        !tracers[i]->write_file(indexed_path(obs.trace_path, i))) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   indexed_path(obs.trace_path, i).c_str());
      return 1;
    }
    if (!obs.timeseries_path.empty() &&
        !write_text_file(indexed_path(obs.timeseries_path, i),
                         results[i].timeseries.to_csv())) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   indexed_path(obs.timeseries_path, i).c_str());
      return 1;
    }
  }
  if (!obs.metrics_path.empty()) {
    std::ostringstream doc;
    doc << "[\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (i != 0) doc << ",\n";
      doc << "{\"point\":{";
      for (std::size_t j = 0; j < points[i].size(); ++j) {
        if (j != 0) doc << ",";
        doc << '"' << points[i][j].first << "\":\"" << points[i][j].second << '"';
      }
      doc << "},\"metrics\":" << results[i].to_json() << "}";
    }
    doc << "\n]\n";
    if (!write_text_file(obs.metrics_path, doc.str())) {
      std::fprintf(stderr, "error: cannot write %s\n", obs.metrics_path.c_str());
      return 1;
    }
  }

  stats::Table table("sweep result");
  table.set_note(std::to_string(points.size()) + " grid points, " +
                 std::to_string(experiment::default_sweep_workers()) + " workers");
  std::vector<std::string> columns;
  for (const auto& axis : axes) columns.push_back(axis.key);
  columns.insert(columns.end(),
                 {"MB/s", "MB/s/disk", "requests", "mean ms", "p95 ms"});
  table.set_columns(columns);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& result = results[i];
    std::vector<stats::Cell> row;
    for (const auto& [key, value] : points[i]) row.emplace_back(value);
    row.emplace_back(result.total_mbps);
    row.emplace_back(result.per_disk_mbps(configs[i].topology.node.total_disks()));
    row.emplace_back(static_cast<std::int64_t>(result.requests_completed));
    row.emplace_back(result.latency.mean_ms());
    row.emplace_back(result.latency.p95_ms());
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  return slo_breached ? kExitSloBreach : 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_help();
      return 0;
    }
  }
  ObsOptions obs;
  std::vector<std::string> args;
  if (!split_obs_flags(argc, argv, obs, args)) return 1;

  auto cfg = gather_config(args);
  if (!cfg.ok()) {
    std::fprintf(stderr, "error: %s\n", cfg.error().message.c_str());
    return 1;
  }

  auto [base, axes] = split_sweep_axes(cfg.value());
  if (!axes.empty()) return run_sweep_cli(base, axes, obs);

  auto experiment = configio::load_experiment(base);
  if (!experiment.ok()) {
    std::fprintf(stderr, "error: %s\n", experiment.error().message.c_str());
    return 1;
  }

  obs::Tracer tracer;
  if (obs.tracing()) experiment.value().tracer = &tracer;
  experiment.value().sample_interval = obs.effective_interval();

  obs::FlightRecorder flight(obs.flight_capacity);
  const bool recording = obs.flight_recording(experiment.value().slo.enabled());
  if (recording) experiment.value().flight = &flight;

  if (experiment.value().backend.kind == experiment::BackendConfig::Kind::kReal &&
      !experiment::real_backend_available()) {
    std::fprintf(stderr,
                 "error: backend.kind=real requires a build with "
                 "-DSST_WITH_URING=ON\n");
    return kExitRealUnavailable;
  }

  experiment::ExperimentResult result;
  try {
    result = experiment::run_experiment(experiment.value());
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "error: %s\n", ex.what());
    return 1;
  }
  print_single(experiment.value(), result);

  if (obs.tracing() && !tracer.write_file(obs.trace_path)) {
    std::fprintf(stderr, "error: cannot write %s\n", obs.trace_path.c_str());
    return 1;
  }
  if (!obs.metrics_path.empty() &&
      !write_text_file(obs.metrics_path, result.to_json())) {
    std::fprintf(stderr, "error: cannot write %s\n", obs.metrics_path.c_str());
    return 1;
  }
  if (!obs.timeseries_path.empty() &&
      !write_text_file(obs.timeseries_path, result.timeseries.to_csv())) {
    std::fprintf(stderr, "error: cannot write %s\n", obs.timeseries_path.c_str());
    return 1;
  }
  if (recording && should_dump_flight(obs, result)) {
    const std::string path = obs.effective_flight_path();
    if (!flight.write_file(path)) {
      std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
      return 1;
    }
    std::fprintf(stderr, "flight recorder dump: %s (%llu events, %llu dropped)\n",
                 path.c_str(),
                 static_cast<unsigned long long>(flight.events().size()),
                 static_cast<unsigned long long>(flight.dropped()));
  }
  if (result.slo_report.enabled && !result.slo_report.pass) {
    std::fprintf(stderr, "SLO breach: p%g %.3f ms objective, worst window %.3f ms\n",
                 result.slo_report.quantile * 100.0, result.slo_report.objective_ms,
                 result.slo_report.worst_window_ms);
    return kExitSloBreach;
  }
  return 0;
}
