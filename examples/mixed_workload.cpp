// Mixed workload: sequential playout streams sharing a disk with random
// small-request traffic (metadata, thumbnails, ...). The classifier must
// route only the sequential runs into the stream scheduler; random
// requests pass straight through to the disk. This exercises the paper's
// §4.1 classification machinery under contention.
//
// Usage: ./build/examples/mixed_workload [seq=16] [rand=8]
#include <cstdio>
#include <memory>
#include <vector>

#include "common/config.hpp"
#include "node/storage_node.hpp"
#include "sim/simulator.hpp"
#include "workload/generator.hpp"

using namespace sst;

int main(int argc, char** argv) {
  auto parsed = Config::from_args(std::vector<std::string>(argv + 1, argv + argc));
  if (!parsed.ok()) {
    std::fprintf(stderr, "bad arguments: %s\n", parsed.error().message.c_str());
    return 1;
  }
  const auto n_seq = static_cast<std::uint32_t>(parsed.value().get_int("seq", 16));
  const auto n_rand = static_cast<std::uint32_t>(parsed.value().get_int("rand", 8));

  sim::Simulator simulator;
  node::StorageNode node(simulator, node::NodeConfig::base());

  core::SchedulerParams params;
  params.read_ahead = 2 * MiB;
  params.memory_budget = 128 * MiB;
  auto server = node.make_server(params);
  workload::RequestSink sink = [&server](core::ClientRequest req) {
    server->submit(std::move(req));
  };

  const Bytes capacity = node.device(0).capacity();
  auto specs = workload::make_uniform_streams(n_seq, 1, capacity, 64 * KiB);
  std::vector<std::unique_ptr<workload::StreamClient>> seq_clients;
  for (const auto& spec : specs) {
    seq_clients.push_back(
        std::make_unique<workload::StreamClient>(simulator, sink, spec, capacity));
  }
  std::vector<std::unique_ptr<workload::RandomClient>> rand_clients;
  for (std::uint32_t i = 0; i < n_rand; ++i) {
    rand_clients.push_back(std::make_unique<workload::RandomClient>(
        simulator, sink, 0, capacity, 8 * KiB, 1, /*seed=*/1000 + i));
  }

  for (auto& c : seq_clients) c->start();
  for (auto& c : rand_clients) c->start();

  simulator.run_until(sec(3));  // warm-up
  for (auto& c : seq_clients) c->begin_measurement();
  for (auto& c : rand_clients) c->begin_measurement();
  const SimTime t0 = simulator.now();
  const SimTime t1 = t0 + sec(12);
  simulator.run_until(t1);

  double seq_mbps = 0.0;
  for (const auto& c : seq_clients) seq_mbps += c->stats().throughput.mbps(t0, t1);
  double rand_mbps = 0.0;
  stats::LatencyHistogram rand_latency;
  for (const auto& c : rand_clients) {
    rand_mbps += c->stats().throughput.mbps(t0, t1);
    rand_latency.merge(c->stats().latency);
  }

  const auto& srv = server->stats();
  const auto& sch = server->scheduler().stats();
  const auto& cls = server->classifier().stats();

  std::printf("mixed workload on one disk: %u sequential + %u random clients\n\n", n_seq,
              n_rand);
  std::printf("  sequential throughput : %7.1f MB/s (scheduled, R = 2 MB)\n", seq_mbps);
  std::printf("  random throughput     : %7.2f MB/s (direct path)\n", rand_mbps);
  std::printf("  random mean latency   : %7.2f ms (p99 %.1f ms)\n\n",
              rand_latency.mean_ms(), rand_latency.p99_ms());
  std::printf("classification:\n");
  std::printf("  requests seen         : %llu\n",
              static_cast<unsigned long long>(srv.requests));
  std::printf("  routed to streams     : %llu\n",
              static_cast<unsigned long long>(srv.sequential_requests));
  std::printf("  direct (random) reads : %llu\n",
              static_cast<unsigned long long>(srv.direct_reads));
  std::printf("  streams detected      : %llu (of %u sequential clients)\n",
              static_cast<unsigned long long>(sch.streams_created), n_seq);
  std::printf("  classifier regions    : %llu allocated, %llu bytes of bitmaps\n",
              static_cast<unsigned long long>(cls.regions_allocated),
              static_cast<unsigned long long>(cls.bitmap_bytes));
  return 0;
}
