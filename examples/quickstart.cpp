// Quickstart: the smallest end-to-end use of the streamstore public API.
//
//   1. Create a simulator and a storage node (1 controller, 1 WD800JD disk).
//   2. Front it with the StorageServer (classifier + stream scheduler).
//   3. Attach 30 closed-loop sequential readers.
//   4. Run, and compare against the same workload without the scheduler.
//
// Build & run:  ./build/examples/quickstart [key=value ...]
// Keys: streams=30 request=64K readahead=8M memory=256M seconds=10
#include <cstdio>
#include <vector>

#include "common/config.hpp"
#include "experiment/runner.hpp"
#include "node/storage_node.hpp"
#include "workload/generator.hpp"

using namespace sst;

int main(int argc, char** argv) {
  auto parsed = Config::from_args(std::vector<std::string>(argv + 1, argv + argc));
  if (!parsed.ok()) {
    std::fprintf(stderr, "bad arguments: %s\n", parsed.error().message.c_str());
    return 1;
  }
  const Config& cfg = parsed.value();
  const auto streams = static_cast<std::uint32_t>(cfg.get_int("streams", 30));
  const Bytes request = cfg.get_bytes("request", 64 * KiB);
  const Bytes read_ahead = cfg.get_bytes("readahead", 8 * MiB);
  const Bytes memory = cfg.get_bytes("memory", 256 * MiB);
  const SimTime measure = cfg.get_duration("seconds", sec(10));

  experiment::ExperimentConfig ec;
  ec.topology.node = node::NodeConfig::base();  // 1 controller x 1 disk
  ec.measure = measure;
  ec.streams = workload::make_uniform_streams(streams, 1,
                                              ec.topology.node.disk.geometry.capacity, request);

  // Baseline: clients talk to the disk directly.
  const auto baseline = experiment::run_experiment(ec);

  // The paper's system: classifier + dispatch/buffered sets.
  core::SchedulerParams params;
  params.read_ahead = read_ahead;
  params.memory_budget = memory;
  ec.scheduler = params;
  const auto system = experiment::run_experiment(ec);

  std::printf("workload: %u sequential streams of %llu KB reads on one disk\n\n",
              streams, static_cast<unsigned long long>(request / KiB));
  std::printf("  baseline (raw disk)     : %6.1f MB/s   mean latency %7.2f ms\n",
              baseline.total_mbps, baseline.latency.mean_ms());
  std::printf("  stream scheduler        : %6.1f MB/s   mean latency %7.2f ms\n",
              system.total_mbps, system.latency.mean_ms());
  std::printf("  improvement             : %6.2fx\n\n",
              system.total_mbps / baseline.total_mbps);

  const auto& s = system.scheduler_stats;
  std::printf("scheduler internals: %llu streams detected, %llu disk reads of %llu KB,\n",
              static_cast<unsigned long long>(s.streams_created),
              static_cast<unsigned long long>(s.disk_reads),
              static_cast<unsigned long long>(read_ahead / KiB));
  std::printf("  %llu client requests served (%llu staged-buffer hits), peak buffer memory %llu MB\n",
              static_cast<unsigned long long>(s.client_completions),
              static_cast<unsigned long long>(s.buffer_hits),
              static_cast<unsigned long long>(system.peak_buffer_memory / MiB));
  return 0;
}
