// Media-server scenario: the workload from the paper's introduction — a
// video-on-demand node that must sustain many constant-bitrate playout
// streams per disk. Each client is an open-loop CBR consumer that requests
// one 64 KB chunk per period (bounded by a small playout buffer of
// outstanding requests); a stream "meets SLA" when it delivers at least
// 95% of its nominal bitrate over the run.
//
// The example admits an increasing number of 4 Mb/s streams onto an 8-disk
// node and reports how many meet SLA with and without the stream
// scheduler — the admission-capacity view of the paper's throughput
// results.
//
// Usage: ./build/examples/media_server [bitrate_mbps=4] [max_streams=1280]
#include <cstdio>
#include <vector>

#include "common/config.hpp"
#include "experiment/runner.hpp"
#include "node/storage_node.hpp"
#include "workload/generator.hpp"

using namespace sst;

namespace {

struct SlaResult {
  std::uint32_t meeting_sla = 0;
  double total_mbps = 0.0;
};

SlaResult run_admission(std::uint32_t streams, double bitrate_bps, bool with_scheduler) {
  experiment::ExperimentConfig ec;
  ec.topology.node = node::NodeConfig::medium();  // 2 controllers x 4 disks
  ec.warmup = sec(3);
  ec.measure = sec(12);
  ec.streams = workload::make_uniform_streams(
      streams, ec.topology.node.total_disks(), ec.topology.node.disk.geometry.capacity, 64 * KiB);
  // CBR pacing: one 64 KB chunk per period, up to 8 chunks buffered.
  const SimTime period = from_seconds(static_cast<double>(64 * KiB) / bitrate_bps);
  for (auto& spec : ec.streams) {
    spec.issue_period = period;
    spec.outstanding = 8;
  }

  if (with_scheduler) {
    // CBR consumers are much slower than the disks, so staged data lives a
    // long time: short residencies (2 x 1 MB covers ~4 s of playout at
    // 4 Mb/s), a staging timeout far above the consumption gap, and the
    // testbed's 1 GB of buffer memory. This is the (D, R, N, M) tuning
    // story of the paper applied to a paced workload.
    core::SchedulerParams p;
    p.dispatch_set_size = ec.topology.node.total_disks();
    p.read_ahead = 1 * MiB;
    p.requests_per_residency = 2;
    p.memory_budget = 1 * GiB;
    p.buffer_timeout = sec(60);
    ec.scheduler = p;
  }

  const auto result = experiment::run_experiment(ec);
  SlaResult out;
  out.total_mbps = result.total_mbps;
  const double need = 0.95 * bitrate_bps / 1e6;  // MB/s per stream
  for (const double mbps : result.stream_mbps) {
    if (mbps >= need) ++out.meeting_sla;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  auto parsed = Config::from_args(std::vector<std::string>(argv + 1, argv + argc));
  if (!parsed.ok()) {
    std::fprintf(stderr, "bad arguments: %s\n", parsed.error().message.c_str());
    return 1;
  }
  const double bitrate_mbps = parsed.value().get_double("bitrate_mbps", 4.0);
  const auto max_streams =
      static_cast<std::uint32_t>(parsed.value().get_int("max_streams", 1280));
  const double bitrate_bps = bitrate_mbps * 1e6 / 8.0;  // megabit/s -> bytes/s

  std::printf("VoD admission on an 8-disk node, %.1f Mb/s per stream\n", bitrate_mbps);
  std::printf("%8s | %22s | %22s\n", "streams", "raw disks (SLA ok)", "scheduler (SLA ok)");
  std::printf("---------+------------------------+-----------------------\n");
  for (std::uint32_t n = 80; n <= max_streams; n *= 2) {
    const auto raw = run_admission(n, bitrate_bps, false);
    const auto sched = run_admission(n, bitrate_bps, true);
    std::printf("%8u | %5u ok  %7.0f MB/s | %5u ok  %7.0f MB/s\n", n, raw.meeting_sla,
                raw.total_mbps, sched.meeting_sla, sched.total_mbps);
  }
  std::printf("\nA stream meets SLA when it sustains 95%% of its bitrate.\n");
  return 0;
}
