#!/usr/bin/env python3
"""Turn streamstore bench CSV output into per-figure plots.

Usage:
    ./build/bench/fig10_host_readahead --benchmark_format=csv > fig10.csv
    python3 scripts/plot_figures.py fig10.csv            # writes fig10.png

Each benchmark row is named like "Fig10/raKB:2048/streams:60/iterations:1"
with the measured series values exported as user counters (MBps, mean_ms,
...). The script groups rows by every argument except the last one, which
becomes the x axis, and plots the first counter it finds.

Two further modes render the tail-latency observability surfaces:

    python3 scripts/plot_figures.py --timeseries series.csv
        Rolling p50/p99/p999 percentile columns from experiment_cli's
        --timeseries export over simulated time (per-shard "shardK."
        columns each get their own line).

    python3 scripts/plot_figures.py --breakdown metrics.json
        Stacked per-stage latency bar (ingress/queue/staging/uplink sums
        from the latency_breakdown group) from a --metrics export; pass
        several files to compare runs side by side.

Requires matplotlib (not needed to build or test the library itself).
"""

import csv
import json
import re
import sys
from collections import defaultdict
from pathlib import Path


PERCENTILE_COLUMNS = ("p50_ms", "p99_ms", "p999_ms")
BREAKDOWN_STAGES = ("ingress", "queue", "staging", "uplink")


def plot_timeseries(path: Path) -> int:
    """Rolling latency percentiles (global and per-shard) over sim time."""
    with path.open() as fh:
        rows = list(csv.DictReader(fh))
    if not rows:
        print("no time-series rows found")
        return 1
    wanted = [name for name in rows[0]
              if name.split(".")[-1] in PERCENTILE_COLUMNS]
    if not wanted:
        print("no percentile columns found (need p50_ms/p99_ms/p999_ms; "
              "was the run sampled with --sample-interval-ms?)")
        return 1

    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    fig, ax = plt.subplots(figsize=(7, 4.5))
    times = [float(row["time_s"]) for row in rows]
    for name in wanted:
        values = [float(row[name] or 0.0) for row in rows]
        quantile = name.split(".")[-1]
        style = {"p50_ms": ":", "p99_ms": "--", "p999_ms": "-"}[quantile]
        ax.plot(times, values, style, label=name)
    ax.set_xlabel("simulated time (s)")
    ax.set_ylabel("rolling latency (ms)")
    ax.grid(True, alpha=0.3)
    ax.legend(fontsize=7)
    out = path.with_suffix(".percentiles.png")
    fig.tight_layout()
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")
    return 0


def plot_breakdown(paths) -> int:
    """Stacked per-stage latency bars from latency_breakdown exports."""
    runs = []
    for path in paths:
        doc = json.loads(Path(path).read_text())
        group = doc.get("latency_breakdown")
        if group is None:
            print(f"{path}: no latency_breakdown group (enable an SLO or "
                  "obs.attribution=true)")
            return 1
        attributed = group.get("attributed", 0) or 1
        runs.append((Path(path).stem,
                     [group.get(f"{stage}_sum_ms", 0.0) / attributed
                      for stage in BREAKDOWN_STAGES]))

    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    fig, ax = plt.subplots(figsize=(7, 4.5))
    xs = range(len(runs))
    bottoms = [0.0] * len(runs)
    for i, stage in enumerate(BREAKDOWN_STAGES):
        heights = [stages[i] for _, stages in runs]
        ax.bar(xs, heights, bottom=bottoms, label=stage, width=0.6)
        bottoms = [b + h for b, h in zip(bottoms, heights)]
    ax.set_xticks(list(xs))
    ax.set_xticklabels([name for name, _ in runs], fontsize=8)
    ax.set_ylabel("mean latency per request (ms)")
    ax.set_title("per-stage latency attribution")
    ax.grid(True, axis="y", alpha=0.3)
    ax.legend(fontsize=8)
    out = Path(paths[0]).with_suffix(".breakdown.png")
    fig.tight_layout()
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")
    return 0


def parse_name(name: str):
    """Split 'Fig10/raKB:2048/streams:60/iterations:1' into parts."""
    parts = name.split("/")
    base = parts[0]
    args = {}
    for part in parts[1:]:
        match = re.match(r"([A-Za-z_]+):(-?\d+)", part)
        if match and match.group(1) != "iterations":
            args[match.group(1)] = int(match.group(2))
    return base, args


def main() -> int:
    if len(sys.argv) >= 3 and sys.argv[1] == "--timeseries":
        return plot_timeseries(Path(sys.argv[2]))
    if len(sys.argv) >= 3 and sys.argv[1] == "--breakdown":
        return plot_breakdown(sys.argv[2:])
    if len(sys.argv) != 2:
        print(__doc__)
        return 1
    path = Path(sys.argv[1])
    rows = []
    with path.open() as fh:
        # google-benchmark CSV has a preamble; find the header line.
        lines = fh.readlines()
    header_idx = next(i for i, line in enumerate(lines) if line.startswith("name,"))
    reader = csv.DictReader(lines[header_idx:])
    for row in reader:
        rows.append(row)
    if not rows:
        print("no benchmark rows found")
        return 1

    counters = [k for k in rows[0].keys()
                if k and k[0].isupper() is False and k not in
                ("name", "iterations", "real_time", "cpu_time", "time_unit",
                 "bytes_per_second", "items_per_second", "label",
                 "error_occurred", "error_message")]
    metric = "MBps" if "MBps" in rows[0] else (counters[0] if counters else None)
    if metric is None:
        print("no counter column found")
        return 1

    series = defaultdict(list)  # (base, fixed-args-tuple) -> [(x, y)]
    x_name = None
    for row in rows:
        base, args = parse_name(row["name"])
        if not args or not row.get(metric):
            continue
        x_name = list(args.keys())[-1]
        x = args.pop(x_name)
        key = (base, tuple(sorted(args.items())))
        try:
            series[key].append((x, float(row[metric])))
        except ValueError:
            continue

    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    fig, ax = plt.subplots(figsize=(7, 4.5))
    for (base, fixed), points in sorted(series.items()):
        points.sort()
        label = ", ".join(f"{k}={v}" for k, v in fixed) or base
        ax.plot([p[0] for p in points], [p[1] for p in points], marker="o", label=label)
    ax.set_xlabel(x_name or "x")
    ax.set_ylabel(metric)
    ax.set_xscale("log", base=2)
    ax.grid(True, alpha=0.3)
    ax.legend(fontsize=7)
    out = path.with_suffix(".png")
    fig.tight_layout()
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
