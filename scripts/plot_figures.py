#!/usr/bin/env python3
"""Turn streamstore bench CSV output into per-figure plots.

Usage:
    ./build/bench/fig10_host_readahead --benchmark_format=csv > fig10.csv
    python3 scripts/plot_figures.py fig10.csv            # writes fig10.png

Each benchmark row is named like "Fig10/raKB:2048/streams:60/iterations:1"
with the measured series values exported as user counters (MBps, mean_ms,
...). The script groups rows by every argument except the last one, which
becomes the x axis, and plots the first counter it finds.

Requires matplotlib (not needed to build or test the library itself).
"""

import csv
import re
import sys
from collections import defaultdict
from pathlib import Path


def parse_name(name: str):
    """Split 'Fig10/raKB:2048/streams:60/iterations:1' into parts."""
    parts = name.split("/")
    base = parts[0]
    args = {}
    for part in parts[1:]:
        match = re.match(r"([A-Za-z_]+):(-?\d+)", part)
        if match and match.group(1) != "iterations":
            args[match.group(1)] = int(match.group(2))
    return base, args


def main() -> int:
    if len(sys.argv) != 2:
        print(__doc__)
        return 1
    path = Path(sys.argv[1])
    rows = []
    with path.open() as fh:
        # google-benchmark CSV has a preamble; find the header line.
        lines = fh.readlines()
    header_idx = next(i for i, line in enumerate(lines) if line.startswith("name,"))
    reader = csv.DictReader(lines[header_idx:])
    for row in reader:
        rows.append(row)
    if not rows:
        print("no benchmark rows found")
        return 1

    counters = [k for k in rows[0].keys()
                if k and k[0].isupper() is False and k not in
                ("name", "iterations", "real_time", "cpu_time", "time_unit",
                 "bytes_per_second", "items_per_second", "label",
                 "error_occurred", "error_message")]
    metric = "MBps" if "MBps" in rows[0] else (counters[0] if counters else None)
    if metric is None:
        print("no counter column found")
        return 1

    series = defaultdict(list)  # (base, fixed-args-tuple) -> [(x, y)]
    x_name = None
    for row in rows:
        base, args = parse_name(row["name"])
        if not args or not row.get(metric):
            continue
        x_name = list(args.keys())[-1]
        x = args.pop(x_name)
        key = (base, tuple(sorted(args.items())))
        try:
            series[key].append((x, float(row[metric])))
        except ValueError:
            continue

    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    fig, ax = plt.subplots(figsize=(7, 4.5))
    for (base, fixed), points in sorted(series.items()):
        points.sort()
        label = ", ".join(f"{k}={v}" for k, v in fixed) or base
        ax.plot([p[0] for p in points], [p[1] for p in points], marker="o", label=label)
    ax.set_xlabel(x_name or "x")
    ax.set_ylabel(metric)
    ax.set_xscale("log", base=2)
    ax.grid(True, alpha=0.3)
    ax.legend(fontsize=7)
    out = path.with_suffix(".png")
    fig.tight_layout()
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
