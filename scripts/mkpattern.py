#!/usr/bin/env python3
"""Pre-format a backing file with the deterministic content pattern.

The real-I/O backend (backend.kind=real) reads actual bytes, so data
integrity checks need the file to hold the same pattern the simulated
devices synthesize: byte at offset o is the o%8-th little-endian byte of
splitmix64-style mix(seed ^ o//8) — see pattern_byte() in
src/blockdev/block_device.hpp. This script writes (or verifies) that
pattern.

Usage:
  scripts/mkpattern.py /dev/shm/sst_backing.img 256M
  scripts/mkpattern.py /dev/shm/sst_backing.img 256M --seed 7
  scripts/mkpattern.py /dev/shm/sst_backing.img 256M --verify

Size accepts K/M/G suffixes (powers of two) and must be a multiple of 8.
"""

import argparse
import os
import struct
import sys

MASK = (1 << 64) - 1


def mix(x: int) -> int:
    """The 64-bit finalizer pattern_byte() uses (splitmix64's)."""
    x &= MASK
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9 & MASK
    x = (x ^ (x >> 27)) * 0x94D049BB133111EB & MASK
    x ^= x >> 31
    return x


def parse_size(text: str) -> int:
    suffixes = {"K": 1 << 10, "M": 1 << 20, "G": 1 << 30}
    text = text.strip()
    scale = 1
    if text and text[-1].upper() in suffixes:
        scale = suffixes[text[-1].upper()]
        text = text[:-1]
    size = int(text) * scale
    if size <= 0 or size % 8 != 0:
        raise ValueError("size must be a positive multiple of 8 bytes")
    return size


def pattern_chunk(seed: int, word_index: int, words: int) -> bytes:
    return struct.pack(
        "<%dQ" % words,
        *(mix(seed ^ (word_index + i)) for i in range(words)),
    )


def write_pattern(path: str, size: int, seed: int, chunk_bytes: int) -> None:
    words_per_chunk = chunk_bytes // 8
    with open(path, "wb") as out:
        word = 0
        remaining = size // 8
        while remaining > 0:
            n = min(words_per_chunk, remaining)
            out.write(pattern_chunk(seed, word, n))
            word += n
            remaining -= n
        out.flush()
        os.fsync(out.fileno())


def verify_pattern(path: str, size: int, seed: int, chunk_bytes: int) -> int:
    words_per_chunk = chunk_bytes // 8
    with open(path, "rb") as inp:
        word = 0
        remaining = size // 8
        while remaining > 0:
            n = min(words_per_chunk, remaining)
            expect = pattern_chunk(seed, word, n)
            got = inp.read(n * 8)
            if got != expect:
                # Locate the first differing byte for a usable message.
                for i, (a, b) in enumerate(zip(got, expect)):
                    if a != b:
                        return word * 8 + i
                return word * 8 + len(got)
            word += n
            remaining -= n
    return -1


def main() -> int:
    parser = argparse.ArgumentParser(
        description="write or verify the streamstore content pattern"
    )
    parser.add_argument("path", help="backing file to create/verify")
    parser.add_argument("size", help="bytes, with optional K/M/G suffix")
    parser.add_argument("--seed", type=int, default=0, help="pattern seed (default 0)")
    parser.add_argument(
        "--verify",
        action="store_true",
        help="check an existing file instead of writing",
    )
    parser.add_argument(
        "--chunk",
        type=int,
        default=4 << 20,
        help="I/O chunk size in bytes (default 4M)",
    )
    args = parser.parse_args()

    try:
        size = parse_size(args.size)
    except ValueError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    if args.chunk <= 0 or args.chunk % 8 != 0:
        print("error: --chunk must be a positive multiple of 8", file=sys.stderr)
        return 1

    if args.verify:
        actual = os.path.getsize(args.path)
        if actual < size:
            print(
                f"error: {args.path} is {actual} bytes, expected >= {size}",
                file=sys.stderr,
            )
            return 1
        mismatch = verify_pattern(args.path, size, args.seed, args.chunk)
        if mismatch >= 0:
            print(f"error: pattern mismatch at byte {mismatch}", file=sys.stderr)
            return 1
        print(f"{args.path}: {size} bytes match seed {args.seed}")
        return 0

    write_pattern(args.path, size, args.seed, args.chunk)
    print(f"{args.path}: wrote {size} pattern bytes (seed {args.seed})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
