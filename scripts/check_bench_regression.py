#!/usr/bin/env python3
"""Gate microbenchmark results against a committed baseline.

Usage: check_bench_regression.py BASELINE.json CURRENT.json [--tolerance 0.15]

Both files are microbench_simulator output:

    {"benchmarks": [{"name": ..., "value": ..., "unit": ...,
                     "steady_state_allocations": ...}, ...],
     "steady_state_alloc_free": true}

Two classes of regression fail the gate:

  * steady_state_allocations grows for any benchmark present in the
    baseline (zero tolerance: the alloc-free hot path is a hard
    invariant, not a performance number), or the overall
    steady_state_alloc_free flag flips to false.
  * a rate-style benchmark (unit not in the timing/informational set)
    drops more than --tolerance (default 15%) below the baseline value,
    or a lower-is-better benchmark ("bytes", "ns/lookup" — copy counts
    and per-op latencies) rises more than --tolerance above it. A
    lower-is-better baseline of exactly zero is a hard invariant: any
    nonzero current value fails (the zero-copy path started copying).

Wall-clock style results ("sec") and machine-dependent ones ("threads",
scaling factor "x") are reported but never gated: CI runners are too
noisy for absolute timing, and the same work is covered by the rate
benchmarks. The parallel-engine "speedup" unit is deliberately NOT in
the ungated set: sim_parallel_speedup is a first-class deliverable of
the sharded simulation core, and its baseline is set conservatively so
the 15% tolerance floor still asserts the >= 2x-at-4-shards contract
on 4-vCPU runners. (On hosts with fewer than 4 cores the bench binary
itself emits that entry under the ungated "x" unit — gating keys off
the current run's unit — since a parallel speedup measured without the
cores to run the shards is noise, not signal.)
New benchmarks missing from the baseline are reported as informational;
benchmarks that disappeared fail the gate (a silently dropped benchmark
is how regressions hide).

Entries carrying "informational": true (in either file) are exempt from
both rules: their values are machine- or disk-dependent (the real-I/O
uring numbers, emitted only when SST_URING_BENCH_FILE is set), so they
ride the baseline file for visibility but never gate — value drift is
reported, and absence from the current run is fine when the run had no
backing file.
"""

import argparse
import json
import sys

# Units where a smaller/different value is not a regression signal.
UNGATED_UNITS = {"sec", "s", "threads", "x"}
# Units where the value growing (not shrinking) is the regression.
LOWER_IS_BETTER_UNITS = {"bytes", "ns/lookup"}
# Hot paths that must never allocate in steady state, independent of the
# committed baseline: a baseline that itself regressed (nonzero allocs)
# must not grandfather the regression in. The flight recorder is on this
# list because it is always-on — an allocation there taxes every request.
ZERO_ALLOC_INVARIANT = {
    "event_throughput", "event_throughput_8k", "schedule_cancel",
    "tracer_record", "flight_record", "staging_zero_copy",
}


def load(path):
    with open(path) as fh:
        doc = json.load(fh)
    return {b["name"]: b for b in doc.get("benchmarks", [])}, doc


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed fractional drop for rate benchmarks")
    args = parser.parse_args()

    base, base_doc = load(args.baseline)
    cur, cur_doc = load(args.current)

    failures = []
    rows = []

    if base_doc.get("steady_state_alloc_free") and not cur_doc.get(
            "steady_state_alloc_free"):
        failures.append("steady_state_alloc_free flipped to false")

    for name, b in sorted(base.items()):
        c = cur.get(name)
        informational = bool(b.get("informational")) or bool(
            (c or {}).get("informational"))
        if c is None:
            if informational:
                rows.append((name, float(b["value"]), float("nan"),
                             b.get("unit", ""), 0, "(informational, absent)"))
            else:
                failures.append(
                    f"{name}: present in baseline but missing from current run")
            continue

        b_alloc = int(b.get("steady_state_allocations", 0))
        c_alloc = int(c.get("steady_state_allocations", 0))
        if informational:
            b_val, c_val = float(b["value"]), float(c["value"])
            drift = (c_val - b_val) / b_val if b_val else 0.0
            rows.append((name, b_val, c_val, c.get("unit", ""), c_alloc,
                         f"(informational, {drift:+.1%})"))
            continue
        if c_alloc > b_alloc:
            failures.append(
                f"{name}: steady-state allocations regressed {b_alloc} -> {c_alloc}")
        if name in ZERO_ALLOC_INVARIANT and c_alloc != 0:
            failures.append(
                f"{name}: {c_alloc} steady-state allocations on an alloc-free "
                "invariant path")

        unit = c.get("unit", "")
        b_val, c_val = float(b["value"]), float(c["value"])
        note = ""
        if unit in LOWER_IS_BETTER_UNITS:
            if b_val == 0:
                if c_val > 0:
                    failures.append(
                        f"{name}: {c_val:.3f} {unit} regressed from a zero baseline "
                        "(hard invariant)")
                    note = "FAIL"
                else:
                    note = "=0"
            else:
                rise = (c_val - b_val) / b_val
                if rise > args.tolerance:
                    failures.append(
                        f"{name}: {c_val:.3f} {unit} is {rise:.1%} above baseline "
                        f"{b_val:.3f} (tolerance {args.tolerance:.0%})")
                    note = "FAIL"
                else:
                    note = f"{rise:+.1%}"
        elif unit not in UNGATED_UNITS and b_val > 0:
            drop = (b_val - c_val) / b_val
            if drop > args.tolerance:
                failures.append(
                    f"{name}: {c_val:.3f} {unit} is {drop:.1%} below baseline "
                    f"{b_val:.3f} (tolerance {args.tolerance:.0%})")
                note = "FAIL"
            else:
                note = f"{-drop:+.1%}"
        else:
            note = "(ungated)"
        rows.append((name, b_val, c_val, unit, c_alloc, note))

    for name in sorted(set(cur) - set(base)):
        c = cur[name]
        c_alloc = int(c.get("steady_state_allocations", 0))
        if name in ZERO_ALLOC_INVARIANT and c_alloc != 0:
            failures.append(
                f"{name}: {c_alloc} steady-state allocations on an alloc-free "
                "invariant path")
        rows.append((name, float("nan"), float(c["value"]), c.get("unit", ""),
                     c_alloc, "(new)"))

    print(f"{'benchmark':<28} {'baseline':>14} {'current':>14} "
          f"{'unit':<12} {'allocs':>7}  delta")
    for name, b_val, c_val, unit, allocs, note in rows:
        b_txt = "-" if b_val != b_val else f"{b_val:.3f}"
        c_txt = "-" if c_val != c_val else f"{c_val:.3f}"
        print(f"{name:<28} {b_txt:>14} {c_txt:>14} {unit:<12} {allocs:>7}  {note}")

    if failures:
        print("\nbenchmark regression gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nbenchmark regression gate passed "
          f"({len(rows)} benchmarks, tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
