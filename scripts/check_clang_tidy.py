#!/usr/bin/env python3
"""Compare clang-tidy output against the committed warning baseline.

Usage:
    clang-tidy ... > tidy.log           # or run-clang-tidy
    python3 scripts/check_clang_tidy.py tidy.log
    python3 scripts/check_clang_tidy.py --update tidy.log   # refresh baseline

The baseline (scripts/clang_tidy_baseline.txt) records tolerated warning
counts per check. The checker exits non-zero when a check produces more
warnings than the baseline allows, listing each offending diagnostic so
the CI log is actionable. The CI job runs with continue-on-error, so this
reports rather than blocks; driving a count down then updating the
baseline ratchets the debt monotonically.
"""

import argparse
import collections
import re
import sys
from pathlib import Path

BASELINE = Path(__file__).with_name("clang_tidy_baseline.txt")

# "path:line:col: warning: message [check-name]"
WARNING_RE = re.compile(r"^(?P<loc>[^\s:][^:]*:\d+:\d+): warning: .* \[(?P<check>[\w.,-]+)\]$")


def parse_tidy_output(path):
    """check name -> list of 'file:line:col' locations."""
    warnings = collections.defaultdict(list)
    for line in Path(path).read_text(errors="replace").splitlines():
        match = WARNING_RE.match(line.strip())
        if not match:
            continue
        # A diagnostic can belong to several aliased checks ("a,b"): count
        # it under the first so totals match the warning count.
        check = match.group("check").split(",")[0]
        warnings[check].append(match.group("loc"))
    return warnings


def read_baseline():
    allowed = {}
    if not BASELINE.exists():
        return allowed
    for line in BASELINE.read_text().splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        check, _, count = line.rpartition(" ")
        allowed[check] = int(count)
    return allowed


def write_baseline(warnings):
    header = [
        line
        for line in BASELINE.read_text().splitlines()
        if line.startswith("#")
    ] if BASELINE.exists() else []
    body = [f"{check} {len(locs)}" for check, locs in sorted(warnings.items())]
    BASELINE.write_text("\n".join(header + body) + "\n")
    print(f"baseline updated: {len(body)} checks, "
          f"{sum(len(l) for l in warnings.values())} warnings")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("tidy_log", help="captured clang-tidy stdout")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from this log")
    args = parser.parse_args()

    warnings = parse_tidy_output(args.tidy_log)
    if args.update:
        write_baseline(warnings)
        return 0

    allowed = read_baseline()
    total = sum(len(locs) for locs in warnings.values())
    print(f"clang-tidy: {total} warnings across {len(warnings)} checks "
          f"(baseline tolerates {sum(allowed.values())})")

    failed = False
    for check, locs in sorted(warnings.items()):
        budget = allowed.get(check, 0)
        if len(locs) <= budget:
            continue
        failed = True
        print(f"\nNEW: {check}: {len(locs)} warnings (baseline {budget})")
        for loc in locs:
            print(f"  {loc}")
    for check, budget in sorted(allowed.items()):
        have = len(warnings.get(check, []))
        if have < budget:
            print(f"note: {check} improved to {have} (baseline {budget}) — "
                  f"consider ratcheting the baseline down")

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
