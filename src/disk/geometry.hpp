// Zoned disk geometry: maps logical block addresses to physical position
// (zone, cylinder, track, sector) and answers the two questions the service
// model needs: "how long does the platter take to move n sectors under the
// head" (media time) and "what is the angular position of sector X at time
// T" (rotational latency). Track skew is modelled so that sequential reads
// keep streaming across track boundaries, as real firmware arranges.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "disk/params.hpp"

namespace sst::disk {

struct Zone {
  Lba first_lba = 0;          ///< first LBA mapped into this zone
  Lba sectors = 0;            ///< total sectors in the zone
  std::uint32_t first_cyl = 0;
  std::uint32_t cylinders = 0;
  std::uint32_t spt = 0;      ///< sectors per track
};

/// Physical coordinates of an LBA.
struct Chs {
  std::uint32_t zone = 0;
  std::uint32_t cylinder = 0;  ///< global cylinder index
  std::uint32_t head = 0;
  std::uint32_t sector = 0;    ///< sector index within the track
};

class Geometry {
 public:
  explicit Geometry(const GeometryParams& params);

  [[nodiscard]] Lba total_sectors() const { return total_sectors_; }
  [[nodiscard]] Bytes capacity_bytes() const { return sectors_to_bytes(total_sectors_); }
  [[nodiscard]] std::uint32_t total_cylinders() const { return total_cylinders_; }
  [[nodiscard]] SimTime rotation_period() const { return rotation_period_; }
  [[nodiscard]] const std::vector<Zone>& zones() const { return zones_; }
  [[nodiscard]] std::uint32_t track_skew_sectors() const { return skew_sectors_; }

  [[nodiscard]] Chs locate(Lba lba) const;
  [[nodiscard]] const Zone& zone_of(Lba lba) const;

  /// Time for one sector to pass under the head in the zone containing lba.
  [[nodiscard]] SimTime sector_time(Lba lba) const;

  /// Raw media transfer rate (bytes/sec) at the zone containing lba.
  [[nodiscard]] double media_rate_bps(Lba lba) const;

  /// Time to stream `sectors` contiguous sectors starting at `lba`, with the
  /// head already positioned on the first one. Includes skew stalls at each
  /// track boundary (the model charges skew time instead of switch time;
  /// skew >= switch by construction, so the platter never outruns the head).
  [[nodiscard]] SimTime media_time(Lba lba, Lba sectors) const;

  /// Rotational wait from time `now` until sector `lba` arrives under the
  /// head, assuming seek/settle already finished. Deterministic: the platter
  /// angle is a pure function of absolute simulated time.
  [[nodiscard]] SimTime rotational_wait(Lba lba, SimTime now) const;

  /// Effective sustained sequential rate at lba (media rate minus skew
  /// overhead) — what an application sees on a single sequential stream.
  [[nodiscard]] double sequential_rate_bps(Lba lba) const;

 private:
  /// Angular slot of an LBA in [0, spt): physical sector position on the
  /// platter including accumulated per-track skew.
  [[nodiscard]] std::uint64_t angular_slot(Lba lba, const Zone& z, const Chs& chs) const;

  std::vector<Zone> zones_;
  Lba total_sectors_ = 0;
  std::uint32_t total_cylinders_ = 0;
  std::uint32_t heads_ = 1;
  std::uint32_t skew_sectors_ = 0;
  SimTime rotation_period_ = 0;
};

}  // namespace sst::disk
