// On-disk command queue scheduling policies. Commodity drives of the
// paper's era service mostly in arrival order (FCFS); LOOK and SSTF are
// provided for the ablation benches and the oskernel baselines reuse the
// same ordering logic. Queued commands live in pooled slots threaded into
// an intrusive list (FCFS: arrival order; LOOK/SSTF: sorted by LBA), so
// push/pop allocate nothing once the pool is warm.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "common/intrusive_list.hpp"
#include "common/slab.hpp"
#include "common/types.hpp"
#include "disk/params.hpp"

namespace sst::disk {

/// A command as submitted to a disk: sector extent + operation. The
/// completion callback receives the simulated finish time.
struct DiskCommand {
  Lba lba = 0;
  Lba sectors = 0;
  IoOp op = IoOp::kRead;
  RequestId id = kInvalidRequest;
  std::function<void(SimTime)> on_complete;
};

struct QueuedCommand {
  DiskCommand cmd;
  SimTime enqueued = 0;
};

/// Strategy interface for picking the next command to service.
class CommandScheduler {
 public:
  virtual ~CommandScheduler() = default;
  virtual void push(QueuedCommand qc) = 0;
  /// Remove and return the next command given the current head position.
  virtual std::optional<QueuedCommand> pop_next(Lba head_lba) = 0;
  [[nodiscard]] virtual std::size_t size() const = 0;
  [[nodiscard]] bool empty() const { return size() == 0; }

 protected:
  /// Pooled queue slot: the command plus its intrusive linkage.
  struct CommandSlot {
    QueuedCommand qc;
    IntrusiveHook<CommandSlot> hook;
  };
  using CommandList = IntrusiveList<CommandSlot, &CommandSlot::hook>;

  CommandSlot* acquire(QueuedCommand qc) {
    CommandSlot* const slot = slab_.acquire();
    slot->qc = std::move(qc);
    return slot;
  }

  /// Move the command out of `slot`, unlink it from `queue` and recycle it.
  QueuedCommand take(CommandList& queue, CommandSlot* slot) {
    QueuedCommand qc = std::move(slot->qc);
    queue.remove(*slot);
    slot->qc.cmd.on_complete = nullptr;  // drop captures on recycled slots
    slab_.release(slot);
    return qc;
  }

 private:
  Slab<CommandSlot> slab_;
};

/// First-come first-served.
class FcfsScheduler final : public CommandScheduler {
 public:
  void push(QueuedCommand qc) override;
  std::optional<QueuedCommand> pop_next(Lba head_lba) override;
  [[nodiscard]] std::size_t size() const override { return queue_.size(); }

 private:
  CommandList queue_;
};

/// Shared machinery for the LBA-sorted policies: the queue is kept in
/// ascending LBA order, equal LBAs in arrival order (insertion scans from
/// the tail — ascending arrivals make that O(1) amortized).
class SortedScheduler : public CommandScheduler {
 public:
  void push(QueuedCommand qc) override;
  [[nodiscard]] std::size_t size() const override { return queue_.size(); }

 protected:
  /// First slot with lba >= key (lower bound), or nullptr.
  [[nodiscard]] CommandSlot* first_at_or_above(Lba key) const;
  /// Last slot with lba <= key, or nullptr.
  [[nodiscard]] CommandSlot* last_at_or_below(Lba key) const;

  CommandList queue_;
};

/// LOOK elevator: sweeps upward through LBAs, reverses when nothing lies
/// ahead in the sweep direction.
class ElevatorScheduler final : public SortedScheduler {
 public:
  std::optional<QueuedCommand> pop_next(Lba head_lba) override;

 private:
  bool ascending_ = true;
};

/// Shortest seek (LBA distance) first. Starvation-prone; included for the
/// ablation study, not as a recommended default.
class SstfScheduler final : public SortedScheduler {
 public:
  std::optional<QueuedCommand> pop_next(Lba head_lba) override;
};

[[nodiscard]] std::unique_ptr<CommandScheduler> make_scheduler(SchedulerKind kind);

}  // namespace sst::disk
