// On-disk command queue scheduling policies. Commodity drives of the
// paper's era service mostly in arrival order (FCFS); LOOK and SSTF are
// provided for the ablation benches and the oskernel baselines reuse the
// same ordering logic.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>

#include "common/types.hpp"
#include "disk/params.hpp"

namespace sst::disk {

/// A command as submitted to a disk: sector extent + operation. The
/// completion callback receives the simulated finish time.
struct DiskCommand {
  Lba lba = 0;
  Lba sectors = 0;
  IoOp op = IoOp::kRead;
  RequestId id = kInvalidRequest;
  std::function<void(SimTime)> on_complete;
};

struct QueuedCommand {
  DiskCommand cmd;
  SimTime enqueued = 0;
};

/// Strategy interface for picking the next command to service.
class CommandScheduler {
 public:
  virtual ~CommandScheduler() = default;
  virtual void push(QueuedCommand qc) = 0;
  /// Remove and return the next command given the current head position.
  virtual std::optional<QueuedCommand> pop_next(Lba head_lba) = 0;
  [[nodiscard]] virtual std::size_t size() const = 0;
  [[nodiscard]] bool empty() const { return size() == 0; }
};

/// First-come first-served.
class FcfsScheduler final : public CommandScheduler {
 public:
  void push(QueuedCommand qc) override;
  std::optional<QueuedCommand> pop_next(Lba head_lba) override;
  [[nodiscard]] std::size_t size() const override { return queue_.size(); }

 private:
  std::deque<QueuedCommand> queue_;
};

/// LOOK elevator: sweeps upward through LBAs, reverses when nothing lies
/// ahead in the sweep direction.
class ElevatorScheduler final : public CommandScheduler {
 public:
  void push(QueuedCommand qc) override;
  std::optional<QueuedCommand> pop_next(Lba head_lba) override;
  [[nodiscard]] std::size_t size() const override { return queue_.size(); }

 private:
  std::multimap<Lba, QueuedCommand> queue_;
  bool ascending_ = true;
};

/// Shortest seek (LBA distance) first. Starvation-prone; included for the
/// ablation study, not as a recommended default.
class SstfScheduler final : public CommandScheduler {
 public:
  void push(QueuedCommand qc) override;
  std::optional<QueuedCommand> pop_next(Lba head_lba) override;
  [[nodiscard]] std::size_t size() const override { return queue_.size(); }

 private:
  std::multimap<Lba, QueuedCommand> queue_;
};

[[nodiscard]] std::unique_ptr<CommandScheduler> make_scheduler(SchedulerKind kind);

}  // namespace sst::disk
