#include "disk/seek_model.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace sst::disk {

SeekModel::SeekModel(const SeekParams& params, std::uint32_t total_cylinders)
    : total_cylinders_(std::max<std::uint32_t>(total_cylinders, 2)) {
  assert(params.single_cylinder <= params.average && params.average <= params.full_stroke);

  // Calibration: the mean absolute distance between two uniform random
  // cylinders is C/3, so we pin the sqrt curve to pass through
  // (1, single_cylinder) and (C/3, average), then run a straight line from
  // the knee to (C, full_stroke).
  knee_ = std::max<std::uint32_t>(1, total_cylinders_ / 3);
  a_ns_ = static_cast<double>(params.single_cylinder);
  const double avg = static_cast<double>(params.average);
  b_ns_ = (avg - a_ns_) / std::sqrt(static_cast<double>(knee_));
  if (b_ns_ < 0) b_ns_ = 0;

  c_ns_ = avg;
  const double full = static_cast<double>(params.full_stroke);
  const double span = static_cast<double>(total_cylinders_ - knee_);
  slope_ns_ = span > 0 ? (full - avg) / span : 0.0;
  if (slope_ns_ < 0) slope_ns_ = 0;
}

SimTime SeekModel::seek_time(std::uint32_t distance) const {
  if (distance == 0) return 0;
  if (distance <= knee_) {
    return static_cast<SimTime>(a_ns_ + b_ns_ * std::sqrt(static_cast<double>(distance)) + 0.5);
  }
  return static_cast<SimTime>(c_ns_ + slope_ns_ * static_cast<double>(distance - knee_) + 0.5);
}

}  // namespace sst::disk
