#include "disk/disk.hpp"

#include <algorithm>
#include <cassert>
#include <string>

#include "common/logging.hpp"

namespace sst::disk {

Disk::Disk(exec::ExecutionContext& simulator, DiskParams params, DiskId id)
    : sim_(simulator),
      params_(params),
      id_(id),
      geometry_(params.geometry),
      seek_(params.seek, geometry_.total_cylinders()),
      cache_(params.cache),
      queue_(make_scheduler(params.scheduler)) {}

void Disk::set_tracer(obs::Tracer* tracer) {
  tracer_ = tracer;
  if (tracer_ != nullptr) {
    tracer_->name_track(obs::disk_track(id_), "disk " + std::to_string(id_));
  }
}

void Disk::submit(DiskCommand cmd) {
  assert(cmd.sectors > 0);
  assert(cmd.lba + cmd.sectors <= geometry_.total_sectors());
  materialize_background();
  queue_->push(QueuedCommand{std::move(cmd), sim_.now()});
  stats_.max_queue_depth = std::max(stats_.max_queue_depth, queue_depth());
  try_service();
}

void Disk::materialize_background() {
  if (!background_.active) return;
  background_.active = false;
  const SimTime now = sim_.now();
  if (now <= background_.since) return;
  const double gap_s = to_seconds(now - background_.since);
  const Lba cursor = background_.next_lba;
  if (cursor >= geometry_.total_sectors()) return;
  const double rate = geometry_.sequential_rate_bps(cursor);
  Lba sectors = static_cast<Lba>(gap_s * rate / static_cast<double>(kSectorSize));
  sectors = std::min(sectors, background_.budget_sectors);
  sectors = std::min(sectors, geometry_.total_sectors() - cursor);
  if (sectors == 0) return;

  if (tracer_ != nullptr) {
    tracer_->instant(obs::disk_track(id_), "disk", "background_fill", now, "sectors",
                     static_cast<double>(sectors));
  }
  cache_.extend_from(cursor, sectors, now);
  const SimTime used = geometry_.media_time(cursor, sectors);
  stats_.media_time += used;
  stats_.busy_time += used;
  stats_.bytes_from_media += sectors_to_bytes(sectors);
  head_lba_ = cursor + sectors;
  head_cylinder_ = geometry_.locate(head_lba_ - 1).cylinder;
}

void Disk::try_service() {
  if (busy_) return;
  auto next = queue_->pop_next(head_lba_);
  if (!next) return;
  service(std::move(*next));
}

void Disk::service(QueuedCommand qc) {
  busy_ = true;
  ++stats_.commands;
  const DiskCommand& cmd = qc.cmd;
  const SimTime start = sim_.now();
  queue_wait_.add(start >= qc.enqueued ? start - qc.enqueued : 0);
  SimTime ready = start + params_.command_overhead;

  SimTime request_done = ready;
  SimTime mechanism_done = ready;

  // The mechanism is strictly serial (the next command starts at this one's
  // mechanism_done), so the whole phase ladder can be recorded now with
  // future timestamps and per-track time stays monotone.
  const std::uint32_t trace_tid = obs::disk_track(id_);
  if (tracer_ != nullptr) tracer_->begin(trace_tid, "disk", "cmd", start);

  if (cmd.op == IoOp::kRead) {
    ++stats_.reads;
    stats_.bytes_requested += sectors_to_bytes(cmd.sectors);
    if (cache_.lookup(cmd.lba, cmd.sectors, start)) {
      // Cache hit: stream straight from buffer RAM at the interface rate.
      const SimTime xfer = static_cast<SimTime>(
          static_cast<double>(sectors_to_bytes(cmd.sectors)) / params_.interface_rate_bps * 1e9 +
          0.5);
      request_done = ready + xfer;
      mechanism_done = request_done;
      if (tracer_ != nullptr) {
        tracer_->complete(trace_tid, "disk", "cache_hit_xfer", ready, request_done,
                          "sectors", static_cast<double>(cmd.sectors));
      }
    } else {
      // Miss: position the head, then read request + read-ahead into a
      // cache segment. The host sees completion when the demanded sectors
      // are off the platter; the fill tail keeps the disk busy.
      //
      // Partial-hit continuation: if the head already sits inside the
      // requested range and the prefix behind it is cached (background
      // prefetch racing the client), serve the prefix from cache and keep
      // streaming from the head instead of realigning a full rotation.
      Lba read_start = cmd.lba;
      if (head_lba_ > cmd.lba && head_lba_ < cmd.lba + cmd.sectors &&
          cache_.contains(cmd.lba, head_lba_ - cmd.lba)) {
        read_start = head_lba_;
      }
      const Lba demand = cmd.lba + cmd.sectors - read_start;
      Lba fill = cache_.fill_sectors(demand);
      fill = std::min<Lba>(fill, geometry_.total_sectors() - read_start);
      const Chs target = geometry_.locate(read_start);
      const SimTime seek = seek_.seek_between(head_cylinder_, target.cylinder);
      // Exact sequential continuation: the firmware keeps streaming (track
      // buffer / zero-latency read), so no rotational realignment is paid.
      const bool continuation = read_start == head_lba_;
      const SimTime rot =
          continuation ? 0 : geometry_.rotational_wait(read_start, ready + seek);
      const SimTime demand_media = geometry_.media_time(read_start, demand);
      const SimTime fill_media = geometry_.media_time(read_start, fill);
      request_done = ready + seek + rot + demand_media;
      mechanism_done = ready + seek + rot + fill_media;

      if (tracer_ != nullptr) {
        SimTime at = ready;
        if (seek > 0) {
          tracer_->begin(trace_tid, "disk", "seek", at);
          tracer_->end(trace_tid, "disk", "seek", at + seek);
        }
        at += seek;
        if (rot > 0) {
          tracer_->begin(trace_tid, "disk", "rotation", at);
          tracer_->end(trace_tid, "disk", "rotation", at + rot);
        }
        at += rot;
        tracer_->begin(trace_tid, "disk", "read_media", at);
        tracer_->end(trace_tid, "disk", "read_media", request_done);
        if (mechanism_done > request_done) {
          tracer_->begin(trace_tid, "disk", "readahead_fill", request_done);
          tracer_->end(trace_tid, "disk", "readahead_fill", mechanism_done);
        }
      }

      stats_.seek_time += seek;
      stats_.rotation_time += rot;
      stats_.media_time += fill_media;
      stats_.bytes_from_media += sectors_to_bytes(fill);

      if (read_start == cmd.lba) {
        cache_.install(read_start, fill, demand, start);
      } else {
        // Continuation past a cached prefix: merge into the prefix segment.
        cache_.extend_from(read_start, fill, start);
      }
      const Lba end = read_start + fill;
      head_lba_ = end;
      head_cylinder_ = geometry_.locate(end - 1).cylinder;
    }
  } else {
    ++stats_.writes;
    stats_.bytes_requested += sectors_to_bytes(cmd.sectors);
    // Write-through: position and write exactly the request.
    const Chs target = geometry_.locate(cmd.lba);
    const SimTime seek = seek_.seek_between(head_cylinder_, target.cylinder);
    const SimTime rot = geometry_.rotational_wait(cmd.lba, ready + seek);
    const SimTime media = geometry_.media_time(cmd.lba, cmd.sectors);
    request_done = ready + seek + rot + media;
    mechanism_done = request_done;

    if (tracer_ != nullptr) {
      SimTime at = ready;
      if (seek > 0) {
        tracer_->begin(trace_tid, "disk", "seek", at);
        tracer_->end(trace_tid, "disk", "seek", at + seek);
      }
      at += seek;
      if (rot > 0) {
        tracer_->begin(trace_tid, "disk", "rotation", at);
        tracer_->end(trace_tid, "disk", "rotation", at + rot);
      }
      at += rot;
      tracer_->begin(trace_tid, "disk", "write_media", at);
      tracer_->end(trace_tid, "disk", "write_media", request_done);
    }

    stats_.seek_time += seek;
    stats_.rotation_time += rot;
    stats_.media_time += media;
    stats_.bytes_from_media += sectors_to_bytes(cmd.sectors);

    cache_.invalidate(cmd.lba, cmd.sectors);
    const Lba end = cmd.lba + cmd.sectors;
    head_lba_ = end;
    head_cylinder_ = geometry_.locate(end - 1).cylinder;
  }

  stats_.busy_time += mechanism_done - start;
  service_.add(request_done - start);
  if (tracer_ != nullptr) tracer_->end(trace_tid, "disk", "cmd", mechanism_done);

  // Completion fires when the host's data is available ...
  sim_.schedule_at(request_done, [cb = std::move(qc.cmd.on_complete), request_done]() {
    if (cb) cb(request_done);
  });
  // ... but the next command starts only once the mechanism is free.
  const bool was_read = cmd.op == IoOp::kRead;
  sim_.schedule_at(mechanism_done, [this, was_read]() {
    busy_ = false;
    try_service();
    // Going idle after a read: let the firmware prefetch ahead of the head
    // until the next command arrives (bounded look-ahead).
    if (!busy_ && was_read && cache_.enabled() &&
        params_.cache.read_ahead != 0) {
      background_.active = true;
      background_.next_lba = head_lba_;
      background_.since = sim_.now();
      background_.budget_sectors = 2 * cache_.segment_capacity_sectors();
    }
  });
}

void Disk::reset_stats() {
  stats_ = DiskStats{};
  cache_.reset_stats();
  queue_wait_.reset();
  service_.reset();
}

}  // namespace sst::disk
