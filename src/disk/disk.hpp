// The disk device model. One Disk owns a geometry, a seek model, a
// segmented cache and a command queue, and services one command at a time
// on the simulator:
//
//   submit -> queue -> [overhead | cache hit: interface transfer
//                                | miss: seek + rotational wait + media
//                                  read of request+read-ahead fill]
//
// On a miss the *request* completes when its last sector comes off the
// platter; the remaining read-ahead keeps the mechanism busy afterwards
// (firmware prefetch is not preempted), which is exactly what makes
// oversized read-ahead hurt when segments thrash (paper Fig. 7).
#pragma once

#include <cstdint>
#include <memory>

#include "common/types.hpp"
#include "disk/cache.hpp"
#include "disk/geometry.hpp"
#include "disk/params.hpp"
#include "disk/scheduler.hpp"
#include "disk/seek_model.hpp"
#include "obs/tracer.hpp"
#include "exec/execution_context.hpp"
#include "stats/histogram.hpp"

namespace sst::disk {

struct DiskStats {
  std::uint64_t commands = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  Bytes bytes_requested = 0;   ///< as asked by the host
  Bytes bytes_from_media = 0;  ///< including read-ahead fill
  SimTime busy_time = 0;
  SimTime seek_time = 0;
  SimTime rotation_time = 0;
  SimTime media_time = 0;
  std::size_t max_queue_depth = 0;

  [[nodiscard]] double utilization(SimTime elapsed) const {
    return elapsed ? static_cast<double>(busy_time) / static_cast<double>(elapsed) : 0.0;
  }
};

class Disk {
 public:
  Disk(exec::ExecutionContext& simulator, DiskParams params, DiskId id);
  Disk(const Disk&) = delete;
  Disk& operator=(const Disk&) = delete;

  /// Enqueue a command; its completion callback fires when serviced. The
  /// extent must lie within the disk (asserted).
  void submit(DiskCommand cmd);

  [[nodiscard]] DiskId id() const { return id_; }
  [[nodiscard]] const Geometry& geometry() const { return geometry_; }
  [[nodiscard]] const SeekModel& seek_model() const { return seek_; }
  [[nodiscard]] const DiskParams& params() const { return params_; }
  [[nodiscard]] const DiskStats& stats() const { return stats_; }
  [[nodiscard]] const CacheStats& cache_stats() const { return cache_.stats(); }
  /// Per-command time waiting in the command queue (submit -> service start).
  [[nodiscard]] const stats::LatencyHistogram& queue_wait() const { return queue_wait_; }
  /// Per-command service time (service start -> host data available).
  [[nodiscard]] const stats::LatencyHistogram& service_time() const { return service_; }
  [[nodiscard]] std::size_t queue_depth() const { return queue_->size() + (busy_ ? 1 : 0); }
  [[nodiscard]] bool idle() const { return !busy_ && queue_->empty(); }

  void reset_stats();

  /// Attach a per-experiment tracer (nullptr detaches). Mechanical phases
  /// (seek, rotation, media transfer) are recorded as nested spans on this
  /// disk's track; the tracer must outlive the disk.
  void set_tracer(obs::Tracer* tracer);

 private:
  void try_service();
  void service(QueuedCommand qc);
  /// Credit the idle-time background read-ahead accumulated since the disk
  /// went idle (called when new work arrives). Real firmware keeps the head
  /// streaming into cache segments while the drive has nothing else to do;
  /// this is what lets a single sequential stream run at media rate.
  void materialize_background();

  struct BackgroundPrefetch {
    bool active = false;
    Lba next_lba = 0;
    SimTime since = 0;
    Lba budget_sectors = 0;
  };

  exec::ExecutionContext& sim_;
  DiskParams params_;
  DiskId id_;
  Geometry geometry_;
  SeekModel seek_;
  SegmentCache cache_;
  std::unique_ptr<CommandScheduler> queue_;
  bool busy_ = false;
  std::uint32_t head_cylinder_ = 0;
  Lba head_lba_ = 0;
  BackgroundPrefetch background_;
  DiskStats stats_;
  stats::LatencyHistogram queue_wait_;
  stats::LatencyHistogram service_;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace sst::disk
