// Disk model parameters. Defaults describe a Western Digital Caviar SE
// WD800JD-class drive — the disk used in the paper's real testbed: 80 GB,
// 7200 RPM, ~8.9 ms average seek, 8 MB segmented cache, SATA-150 interface,
// ~55-60 MB/s application-level sequential throughput.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace sst::disk {

enum class SchedulerKind : std::uint8_t {
  kFcfs,      ///< service in arrival order (commodity default)
  kElevator,  ///< LOOK: sweep across LBAs, reversing at the edges
  kSstf,      ///< shortest-seek-time-first (by LBA distance)
};

[[nodiscard]] constexpr const char* to_string(SchedulerKind k) {
  switch (k) {
    case SchedulerKind::kFcfs: return "fcfs";
    case SchedulerKind::kElevator: return "elevator";
    case SchedulerKind::kSstf: return "sstf";
  }
  return "?";
}

struct GeometryParams {
  Bytes capacity = 80 * GiB;
  std::uint32_t rpm = 7200;
  std::uint32_t heads = 2;       ///< recording surfaces
  std::uint32_t num_zones = 16;  ///< zoned bit recording bands
  std::uint32_t outer_spt = 1008;  ///< sectors per track, outermost zone
  std::uint32_t inner_spt = 620;   ///< sectors per track, innermost zone
  /// Angular skew (in sectors) applied per track boundary so that a
  /// sequential transfer keeps streaming after a head/cylinder switch.
  /// Chosen >= track-switch time by validate_and_derive().
  std::uint32_t track_skew_sectors = 0;  ///< 0 = derive from track_switch
  SimTime track_switch = usec(800);      ///< head settle on track change
};

struct SeekParams {
  SimTime single_cylinder = usec(800);  ///< track-to-track
  SimTime average = usec(8900);         ///< over uniform random pairs
  SimTime full_stroke = usec(21000);
};

struct CacheParams {
  Bytes size = 8 * MiB;
  std::uint32_t num_segments = 32;
  /// Extra sectors read beyond the request on a miss, expressed in bytes.
  /// The fill is clamped to the segment capacity (size / num_segments).
  /// kFillSegment means "always fill the whole segment" (firmware default).
  Bytes read_ahead = kFillSegment;
  static constexpr Bytes kFillSegment = ~Bytes{0};

  [[nodiscard]] Bytes segment_bytes() const {
    return num_segments ? size / num_segments : 0;
  }
};

struct DiskParams {
  std::string model = "WD800JD";
  GeometryParams geometry;
  SeekParams seek;
  CacheParams cache;
  /// Host-interface (SATA) transfer rate; cache hits stream at this rate.
  double interface_rate_bps = 150e6;
  /// Fixed per-command firmware/processing overhead.
  SimTime command_overhead = usec(30);
  SchedulerKind scheduler = SchedulerKind::kFcfs;

  /// The paper's drive. 80 GB, 8 MB cache in 32 segments.
  [[nodiscard]] static DiskParams wd800jd() { return DiskParams{}; }
};

}  // namespace sst::disk
