#include "disk/geometry.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace sst::disk {

Geometry::Geometry(const GeometryParams& params) {
  assert(params.num_zones >= 1);
  assert(params.heads >= 1);
  assert(params.outer_spt >= params.inner_spt && params.inner_spt > 0);
  heads_ = params.heads;
  rotation_period_ = static_cast<SimTime>(60.0e9 / params.rpm + 0.5);

  const Lba capacity_sectors = params.capacity / kSectorSize;

  // Interpolate sectors-per-track linearly from the outer to the inner zone
  // and give every zone the same cylinder count (the last zone absorbs the
  // rounding remainder).
  std::vector<std::uint32_t> spt(params.num_zones);
  std::uint64_t spt_sum = 0;
  for (std::uint32_t z = 0; z < params.num_zones; ++z) {
    const double frac =
        params.num_zones == 1 ? 0.0 : static_cast<double>(z) / (params.num_zones - 1);
    spt[z] = static_cast<std::uint32_t>(
        params.outer_spt - frac * (params.outer_spt - params.inner_spt) + 0.5);
    spt_sum += spt[z];
  }
  const std::uint64_t sectors_per_cyl_sum = spt_sum * heads_;
  const std::uint32_t cyl_per_zone = static_cast<std::uint32_t>(
      std::max<std::uint64_t>(1, capacity_sectors / sectors_per_cyl_sum));

  Lba next_lba = 0;
  std::uint32_t next_cyl = 0;
  zones_.reserve(params.num_zones);
  for (std::uint32_t z = 0; z < params.num_zones; ++z) {
    Zone zone;
    zone.first_lba = next_lba;
    zone.first_cyl = next_cyl;
    zone.spt = spt[z];
    const std::uint64_t sectors_per_cyl = static_cast<std::uint64_t>(zone.spt) * heads_;
    if (z + 1 < params.num_zones) {
      zone.cylinders = cyl_per_zone;
      zone.sectors = sectors_per_cyl * zone.cylinders;
    } else {
      // Last zone: absorb whatever is left to reach the exact capacity.
      const Lba remaining = capacity_sectors > next_lba ? capacity_sectors - next_lba : 0;
      zone.sectors = std::max<Lba>(remaining, sectors_per_cyl);
      zone.cylinders = static_cast<std::uint32_t>(
          (zone.sectors + sectors_per_cyl - 1) / sectors_per_cyl);
    }
    next_lba += zone.sectors;
    next_cyl += zone.cylinders;
    zones_.push_back(zone);
  }
  total_sectors_ = next_lba;
  total_cylinders_ = next_cyl;

  if (params.track_skew_sectors > 0) {
    skew_sectors_ = params.track_skew_sectors;
  } else {
    // Derive the skew from the track-switch time against the fastest zone:
    // the skew must hide the switch even where sectors pass quickest.
    const double outer_sector_time =
        static_cast<double>(rotation_period_) / params.outer_spt;
    skew_sectors_ = static_cast<std::uint32_t>(
                        std::ceil(static_cast<double>(params.track_switch) / outer_sector_time)) +
                    1;
  }
}

const Zone& Geometry::zone_of(Lba lba) const {
  assert(lba < total_sectors_);
  // Zones are few (<= tens); linear scan with early exit beats binary search
  // at this size and keeps the code obvious.
  for (const auto& z : zones_) {
    if (lba < z.first_lba + z.sectors) return z;
  }
  return zones_.back();
}

Chs Geometry::locate(Lba lba) const {
  const Zone& z = zone_of(lba);
  const Lba offset = lba - z.first_lba;
  const std::uint64_t track = offset / z.spt;
  Chs chs;
  chs.zone = static_cast<std::uint32_t>(&z - zones_.data());
  chs.cylinder = z.first_cyl + static_cast<std::uint32_t>(track / heads_);
  chs.head = static_cast<std::uint32_t>(track % heads_);
  chs.sector = static_cast<std::uint32_t>(offset % z.spt);
  return chs;
}

SimTime Geometry::sector_time(Lba lba) const {
  const Zone& z = zone_of(lba);
  return static_cast<SimTime>(static_cast<double>(rotation_period_) / z.spt + 0.5);
}

double Geometry::media_rate_bps(Lba lba) const {
  const Zone& z = zone_of(lba);
  return static_cast<double>(z.spt) * kSectorSize / to_seconds(rotation_period_);
}

std::uint64_t Geometry::angular_slot(Lba lba, const Zone& z, const Chs& /*chs*/) const {
  const Lba offset = lba - z.first_lba;
  const std::uint64_t track_in_zone = offset / z.spt;
  const std::uint64_t sector = offset % z.spt;
  return (sector + track_in_zone * skew_sectors_) % z.spt;
}

SimTime Geometry::rotational_wait(Lba lba, SimTime now) const {
  const Zone& z = zone_of(lba);
  const Chs chs = locate(lba);
  const std::uint64_t slot = angular_slot(lba, z, chs);
  const double target = static_cast<double>(slot) / z.spt;  // [0,1)
  const double current =
      static_cast<double>(now % rotation_period_) / static_cast<double>(rotation_period_);
  double wait = target - current;
  if (wait < 0) wait += 1.0;
  return static_cast<SimTime>(wait * static_cast<double>(rotation_period_) + 0.5);
}

SimTime Geometry::media_time(Lba lba, Lba sectors) const {
  double total_ns = 0.0;
  Lba cursor = lba;
  Lba remaining = sectors;
  while (remaining > 0 && cursor < total_sectors_) {
    const Zone& z = zone_of(cursor);
    const Lba in_zone = std::min<Lba>(remaining, z.first_lba + z.sectors - cursor);
    const double sector_ns = static_cast<double>(rotation_period_) / z.spt;
    total_ns += static_cast<double>(in_zone) * sector_ns;
    // Track boundary crossings stall for the skew gap.
    const Lba offset = cursor - z.first_lba;
    const std::uint64_t start_sector = offset % z.spt;
    const std::uint64_t crossings = (start_sector + in_zone) / z.spt;
    total_ns += static_cast<double>(crossings) * skew_sectors_ * sector_ns;
    cursor += in_zone;
    remaining -= in_zone;
  }
  return static_cast<SimTime>(total_ns + 0.5);
}

double Geometry::sequential_rate_bps(Lba lba) const {
  const Zone& z = zone_of(lba);
  const double raw = media_rate_bps(lba);
  return raw * static_cast<double>(z.spt) / static_cast<double>(z.spt + skew_sectors_);
}

}  // namespace sst::disk
