// Segmented disk buffer cache, the structure the paper sweeps in Figures
// 4-7. The cache is divided into `num_segments` equal segments; each holds
// one contiguous extent (one sequential stream's locality). On a read miss
// the firmware fills a segment with the request plus read-ahead; subsequent
// requests that fall inside a live segment are served from cache at the
// interface rate. When more streams than segments are active, segments are
// reclaimed before their prefetched data is consumed — the thrash the paper
// demonstrates. The cache tracks exactly that waste.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "disk/params.hpp"

namespace sst::disk {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  Lba prefetched_sectors = 0;         ///< sectors read beyond the request
  Lba wasted_prefetch_sectors = 0;    ///< prefetched sectors evicted unread
};

class SegmentCache {
 public:
  explicit SegmentCache(const CacheParams& params);

  /// True when the cache has capacity (size > 0 and at least one segment).
  [[nodiscard]] bool enabled() const { return segment_capacity_ > 0; }
  [[nodiscard]] Lba segment_capacity_sectors() const { return segment_capacity_; }
  [[nodiscard]] std::uint32_t num_segments() const;

  /// Full-containment lookup. A hit refreshes the segment's LRU stamp and
  /// advances its consumed watermark.
  [[nodiscard]] bool lookup(Lba lba, Lba sectors, SimTime now);

  /// Pure containment test over the union of segments — no stats, no LRU
  /// update. Used by the service path to detect cached prefixes.
  [[nodiscard]] bool contains(Lba lba, Lba sectors) const;

  /// Sectors the firmware will read on a miss for a request of this size:
  /// request + read-ahead, clamped to the segment capacity (and never less
  /// than the request itself, even if it exceeds one segment).
  [[nodiscard]] Lba fill_sectors(Lba request_sectors) const;

  /// Install a freshly read extent. `request_sectors` is the demanded
  /// prefix (counted as consumed); the rest is speculative prefetch. The
  /// victim is a segment already covering/adjacent to the extent when one
  /// exists, otherwise the least recently used.
  void install(Lba lba, Lba sectors, Lba request_sectors, SimTime now);

  /// Drop any cached data overlapping [lba, lba+sectors) — used on writes.
  void invalidate(Lba lba, Lba sectors);

  /// Grow the segment whose data ends exactly at `at` by `sectors` read by
  /// the background (idle-time) prefetcher; overflow beyond the segment
  /// capacity spills into a freshly allocated segment. All of it counts as
  /// prefetch (no demanded prefix).
  void extend_from(Lba at, Lba sectors, SimTime now);

  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = CacheStats{}; }

 private:
  struct Segment {
    bool valid = false;
    Lba start = 0;
    Lba length = 0;     ///< valid sectors from start
    Lba consumed = 0;   ///< high-water mark of sectors served to the host
    SimTime last_access = 0;
  };

  /// Account eviction waste and clear the segment.
  void evict(Segment& seg);

  std::vector<Segment> segments_;
  Lba segment_capacity_ = 0;  ///< sectors per segment
  Bytes read_ahead_ = 0;      ///< CacheParams::kFillSegment means fill-all
  CacheStats stats_;
};

}  // namespace sst::disk
