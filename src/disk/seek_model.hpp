// Seek time model calibrated from three datasheet numbers: track-to-track,
// average (uniform random pairs), and full-stroke. Short seeks follow the
// classic a + b*sqrt(d) acceleration-limited curve; long seeks are linear
// (coast phase), continuous at the knee. See Ruemmler & Wilkes, "An
// Introduction to Disk Drive Modeling" (IEEE Computer, 1994).
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "disk/params.hpp"

namespace sst::disk {

class SeekModel {
 public:
  SeekModel(const SeekParams& params, std::uint32_t total_cylinders);

  /// Seek time for a cylinder distance. Zero distance costs nothing (head
  /// settle for same-cylinder head switches is covered by track skew).
  [[nodiscard]] SimTime seek_time(std::uint32_t distance) const;

  [[nodiscard]] SimTime seek_between(std::uint32_t from_cyl, std::uint32_t to_cyl) const {
    return seek_time(from_cyl >= to_cyl ? from_cyl - to_cyl : to_cyl - from_cyl);
  }

  [[nodiscard]] std::uint32_t knee_cylinders() const { return knee_; }

 private:
  std::uint32_t total_cylinders_;
  std::uint32_t knee_;     ///< distance where sqrt law hands over to linear
  double a_ns_;            ///< sqrt-law intercept
  double b_ns_;            ///< sqrt-law coefficient
  double c_ns_;            ///< linear intercept
  double slope_ns_;        ///< linear slope per cylinder
};

}  // namespace sst::disk
