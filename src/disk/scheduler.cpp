#include "disk/scheduler.hpp"

#include <cassert>

namespace sst::disk {

void FcfsScheduler::push(QueuedCommand qc) { queue_.push_back(*acquire(std::move(qc))); }

std::optional<QueuedCommand> FcfsScheduler::pop_next(Lba /*head_lba*/) {
  if (queue_.empty()) return std::nullopt;
  return take(queue_, queue_.front());
}

void SortedScheduler::push(QueuedCommand qc) {
  CommandSlot* const slot = acquire(std::move(qc));
  const Lba key = slot->qc.cmd.lba;
  // Insert after the last slot with lba <= key: ascending order, equal LBAs
  // in arrival order (multimap semantics).
  CommandSlot* pos = queue_.back();
  while (pos != nullptr && pos->qc.cmd.lba > key) pos = CommandList::prev_of(*pos);
  if (pos == nullptr) {
    queue_.push_front(*slot);
  } else {
    queue_.insert_after(*pos, *slot);
  }
}

auto SortedScheduler::first_at_or_above(Lba key) const -> CommandSlot* {
  for (CommandSlot& slot : queue_) {
    if (slot.qc.cmd.lba >= key) return &slot;
  }
  return nullptr;
}

auto SortedScheduler::last_at_or_below(Lba key) const -> CommandSlot* {
  for (CommandSlot* slot = queue_.back(); slot != nullptr;
       slot = CommandList::prev_of(*slot)) {
    if (slot->qc.cmd.lba <= key) return slot;
  }
  return nullptr;
}

std::optional<QueuedCommand> ElevatorScheduler::pop_next(Lba head_lba) {
  if (queue_.empty()) return std::nullopt;
  if (ascending_) {
    CommandSlot* slot = first_at_or_above(head_lba);
    if (slot == nullptr) {
      ascending_ = false;
      slot = queue_.back();
    }
    return take(queue_, slot);
  }
  CommandSlot* slot = last_at_or_below(head_lba);
  if (slot == nullptr) {
    ascending_ = true;
    slot = queue_.front();
  }
  return take(queue_, slot);
}

std::optional<QueuedCommand> SstfScheduler::pop_next(Lba head_lba) {
  if (queue_.empty()) return std::nullopt;
  CommandSlot* const above = first_at_or_above(head_lba);
  CommandSlot* const below =
      above == nullptr ? queue_.back() : CommandList::prev_of(*above);
  CommandSlot* chosen = above;
  if (below != nullptr &&
      (chosen == nullptr ||
       head_lba - below->qc.cmd.lba < chosen->qc.cmd.lba - head_lba)) {
    chosen = below;
  }
  assert(chosen != nullptr);
  return take(queue_, chosen);
}

std::unique_ptr<CommandScheduler> make_scheduler(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kFcfs: return std::make_unique<FcfsScheduler>();
    case SchedulerKind::kElevator: return std::make_unique<ElevatorScheduler>();
    case SchedulerKind::kSstf: return std::make_unique<SstfScheduler>();
  }
  return std::make_unique<FcfsScheduler>();
}

}  // namespace sst::disk
