#include "disk/scheduler.hpp"

#include <cassert>

namespace sst::disk {

void FcfsScheduler::push(QueuedCommand qc) { queue_.push_back(std::move(qc)); }

std::optional<QueuedCommand> FcfsScheduler::pop_next(Lba /*head_lba*/) {
  if (queue_.empty()) return std::nullopt;
  QueuedCommand qc = std::move(queue_.front());
  queue_.pop_front();
  return qc;
}

void ElevatorScheduler::push(QueuedCommand qc) {
  const Lba key = qc.cmd.lba;
  queue_.emplace(key, std::move(qc));
}

std::optional<QueuedCommand> ElevatorScheduler::pop_next(Lba head_lba) {
  if (queue_.empty()) return std::nullopt;
  if (ascending_) {
    auto it = queue_.lower_bound(head_lba);
    if (it == queue_.end()) {
      ascending_ = false;
      it = std::prev(queue_.end());
    }
    QueuedCommand qc = std::move(it->second);
    queue_.erase(it);
    return qc;
  }
  auto it = queue_.upper_bound(head_lba);
  if (it == queue_.begin()) {
    ascending_ = true;
    it = queue_.begin();
  } else {
    it = std::prev(it);
  }
  QueuedCommand qc = std::move(it->second);
  queue_.erase(it);
  return qc;
}

void SstfScheduler::push(QueuedCommand qc) {
  const Lba key = qc.cmd.lba;
  queue_.emplace(key, std::move(qc));
}

std::optional<QueuedCommand> SstfScheduler::pop_next(Lba head_lba) {
  if (queue_.empty()) return std::nullopt;
  auto above = queue_.lower_bound(head_lba);
  auto chosen = queue_.end();
  if (above != queue_.end()) chosen = above;
  if (above != queue_.begin()) {
    auto below = std::prev(above);
    if (chosen == queue_.end() ||
        head_lba - below->first < chosen->first - head_lba) {
      chosen = below;
    }
  }
  assert(chosen != queue_.end());
  QueuedCommand qc = std::move(chosen->second);
  queue_.erase(chosen);
  return qc;
}

std::unique_ptr<CommandScheduler> make_scheduler(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kFcfs: return std::make_unique<FcfsScheduler>();
    case SchedulerKind::kElevator: return std::make_unique<ElevatorScheduler>();
    case SchedulerKind::kSstf: return std::make_unique<SstfScheduler>();
  }
  return std::make_unique<FcfsScheduler>();
}

}  // namespace sst::disk
