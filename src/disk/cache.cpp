#include "disk/cache.hpp"

#include <algorithm>
#include <cassert>

namespace sst::disk {

SegmentCache::SegmentCache(const CacheParams& params) : read_ahead_(params.read_ahead) {
  segment_capacity_ = bytes_to_sectors(params.segment_bytes());
  if (params.size == 0 || params.num_segments == 0) segment_capacity_ = 0;
  if (segment_capacity_ > 0) segments_.resize(params.num_segments);
}

std::uint32_t SegmentCache::num_segments() const {
  return static_cast<std::uint32_t>(segments_.size());
}

bool SegmentCache::lookup(Lba lba, Lba sectors, SimTime now) {
  if (!enabled()) {
    ++stats_.misses;
    return false;
  }
  for (auto& seg : segments_) {
    if (!seg.valid) continue;
    if (lba >= seg.start && lba + sectors <= seg.start + seg.length) {
      seg.last_access = now;
      seg.consumed = std::max(seg.consumed, lba + sectors - seg.start);
      ++stats_.hits;
      return true;
    }
  }
  ++stats_.misses;
  return false;
}

bool SegmentCache::contains(Lba lba, Lba sectors) const {
  if (!enabled() || sectors == 0) return sectors == 0;
  Lba cursor = lba;
  const Lba end = lba + sectors;
  // Walk forward through covering segments; the population is tiny, so the
  // quadratic scan is cheaper than maintaining an ordered index.
  bool advanced = true;
  while (cursor < end && advanced) {
    advanced = false;
    for (const auto& seg : segments_) {
      if (!seg.valid) continue;
      if (cursor >= seg.start && cursor < seg.start + seg.length) {
        cursor = seg.start + seg.length;
        advanced = true;
        break;
      }
    }
  }
  return cursor >= end;
}

Lba SegmentCache::fill_sectors(Lba request_sectors) const {
  if (!enabled()) return request_sectors;
  if (read_ahead_ == CacheParams::kFillSegment) {
    return std::max(request_sectors, segment_capacity_);
  }
  const Lba ra = bytes_to_sectors(read_ahead_);
  const Lba want = request_sectors + ra;
  return std::max(request_sectors, std::min(want, segment_capacity_));
}

void SegmentCache::evict(Segment& seg) {
  if (seg.valid) {
    ++stats_.evictions;
    if (seg.length > seg.consumed) {
      stats_.wasted_prefetch_sectors += seg.length - seg.consumed;
    }
  }
  seg = Segment{};
}

void SegmentCache::install(Lba lba, Lba sectors, Lba request_sectors, SimTime now) {
  if (!enabled()) return;
  // Prefer a segment this extent overwrites (stale overlapping data). Mere
  // adjacency must NOT steal the segment: the neighbour may still hold
  // unconsumed prefetched data the stream is about to read.
  Segment* victim = nullptr;
  for (auto& seg : segments_) {
    if (seg.valid && lba >= seg.start && lba < seg.start + seg.length) {
      victim = &seg;
      break;
    }
  }
  if (victim == nullptr) {
    for (auto& seg : segments_) {
      if (!seg.valid) {
        victim = &seg;
        break;
      }
    }
  }
  if (victim == nullptr) {
    victim = &segments_.front();
    for (auto& seg : segments_) {
      if (seg.last_access < victim->last_access) victim = &seg;
    }
  }
  // A continuation victim's unread prefix was still consumed data; only the
  // unconsumed tail counts as waste.
  evict(*victim);
  victim->valid = true;
  victim->start = lba;
  victim->length = std::min(sectors, segment_capacity_);
  victim->consumed = std::min(request_sectors, victim->length);
  victim->last_access = now;
  if (sectors > request_sectors) {
    stats_.prefetched_sectors += sectors - request_sectors;
  }
}

void SegmentCache::extend_from(Lba at, Lba sectors, SimTime now) {
  if (!enabled() || sectors == 0) return;
  stats_.prefetched_sectors += sectors;
  for (auto& seg : segments_) {
    if (!seg.valid || seg.start + seg.length != at) continue;
    const Lba room = segment_capacity_ > seg.length ? segment_capacity_ - seg.length : 0;
    const Lba take = std::min(room, sectors);
    seg.length += take;
    seg.last_access = now;
    at += take;
    sectors -= take;
    break;
  }
  while (sectors > 0) {
    const Lba take = std::min(sectors, segment_capacity_);
    // install() accounts the prefetched sectors again; compensate since we
    // already counted the whole extension above.
    stats_.prefetched_sectors -= take;
    install(at, take, /*request_sectors=*/0, now);
    at += take;
    sectors -= take;
  }
}

void SegmentCache::invalidate(Lba lba, Lba sectors) {
  for (auto& seg : segments_) {
    if (!seg.valid) continue;
    const bool overlap = lba < seg.start + seg.length && seg.start < lba + sectors;
    if (overlap) seg = Segment{};
  }
}

}  // namespace sst::disk
