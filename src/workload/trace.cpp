#include "workload/trace.hpp"

#include <cassert>
#include <charconv>
#include <sstream>

#include "exec/execution_context.hpp"

namespace sst::workload {

TraceRecorder::TraceRecorder(exec::ExecutionContext& simulator, RequestSink downstream)
    : sim_(simulator), downstream_(std::move(downstream)) {}

RequestSink TraceRecorder::sink() {
  return [this](core::ClientRequest req) {
    const std::size_t index = records_.size();
    TraceRecord record;
    record.issue_time = sim_.now();
    record.device = req.device;
    record.offset = req.offset;
    record.length = req.length;
    record.op = req.op;
    records_.push_back(record);
    req.on_complete = [this, index, issued = sim_.now(),
                       inner = std::move(req.on_complete)](SimTime t, IoStatus s) {
      records_[index].latency = t - issued;
      ++completed_;
      if (inner) inner(t, s);
    };
    downstream_(std::move(req));
  };
}

void TraceRecorder::clear() {
  records_.clear();
  completed_ = 0;
}

std::string trace_to_text(const std::vector<TraceRecord>& records) {
  std::ostringstream os;
  os << "# streamstore trace v1: issue_ns device offset length op latency_ns\n";
  for (const auto& r : records) {
    os << r.issue_time << ' ' << r.device << ' ' << r.offset << ' ' << r.length << ' '
       << (r.op == IoOp::kRead ? 'R' : 'W') << ' ';
    if (r.completed()) {
      os << r.latency;
    } else {
      os << '-';
    }
    os << '\n';
  }
  return os.str();
}

Result<std::vector<TraceRecord>> trace_from_text(std::string_view text) {
  std::vector<TraceRecord> records;
  std::istringstream is{std::string(text)};
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::uint64_t issue = 0;
    std::uint32_t device = 0;
    std::uint64_t offset = 0;
    std::uint64_t length = 0;
    char op = 0;
    std::string latency_text;
    if (!(ls >> issue)) continue;  // blank line
    if (!(ls >> device >> offset >> length >> op >> latency_text)) {
      return make_error("malformed trace line " + std::to_string(lineno) + ": '" + line +
                        "'");
    }
    if (op != 'R' && op != 'W') {
      return make_error("bad op on trace line " + std::to_string(lineno));
    }
    TraceRecord r;
    r.issue_time = issue;
    r.device = device;
    r.offset = offset;
    r.length = length;
    r.op = op == 'R' ? IoOp::kRead : IoOp::kWrite;
    if (latency_text != "-") {
      std::uint64_t latency = 0;
      const auto [ptr, ec] = std::from_chars(
          latency_text.data(), latency_text.data() + latency_text.size(), latency);
      if (ec != std::errc{} || ptr != latency_text.data() + latency_text.size()) {
        return make_error("bad latency on trace line " + std::to_string(lineno));
      }
      r.latency = latency;
    }
    records.push_back(r);
  }
  return records;
}

TraceReplayer::TraceReplayer(exec::ExecutionContext& simulator, RequestSink sink,
                             std::vector<TraceRecord> trace, ReplayMode mode,
                             std::uint32_t window)
    : sim_(simulator),
      sink_(std::move(sink)),
      trace_(std::move(trace)),
      mode_(mode),
      window_(window) {
  assert(window_ >= 1);
}

void TraceReplayer::issue_record(std::size_t index) {
  const TraceRecord& r = trace_[index];
  core::ClientRequest req;
  req.id = index;
  req.device = r.device;
  req.offset = r.offset;
  req.length = r.length;
  req.op = r.op;
  req.arrival = sim_.now();
  const SimTime issued = sim_.now();
  req.on_complete = [this, issued](SimTime t) {
    ++completed_;
    --in_flight_;
    latency_.add(t - issued);
    if (mode_ == ReplayMode::kClosedLoop) issue_next_closed();
  };
  ++issued_;
  ++in_flight_;
  sink_(std::move(req));
}

void TraceReplayer::issue_next_closed() {
  while (issued_ < trace_.size() && in_flight_ < window_) {
    issue_record(issued_);
  }
}

void TraceReplayer::start() {
  if (trace_.empty()) return;
  if (mode_ == ReplayMode::kClosedLoop) {
    issue_next_closed();
    return;
  }
  // Original timing: schedule each record at its recorded issue time,
  // shifted so the first record fires immediately.
  const SimTime base = trace_.front().issue_time;
  const SimTime now = sim_.now();
  for (std::size_t i = 0; i < trace_.size(); ++i) {
    const SimTime when = now + (trace_[i].issue_time - base);
    sim_.schedule_at(when, [this, i]() { issue_record(i); });
  }
}

}  // namespace sst::workload
