#include "workload/generator.hpp"

#include <algorithm>
#include <cassert>

#include "exec/execution_context.hpp"

namespace sst::workload {

namespace {
/// Delay before a closed-loop client re-issues after an error completion.
/// Must be > 0: rejections complete synchronously, and an inline re-issue
/// would spin without advancing simulated time.
constexpr SimTime kErrorRetryDelay = msec(10);
}  // namespace

StreamClient::StreamClient(exec::ExecutionContext& simulator, RequestSink sink, StreamSpec spec,
                           Bytes device_capacity)
    : sim_(simulator),
      sink_(std::move(sink)),
      spec_(spec),
      rng_(spec.seed),
      next_offset_(spec.start_offset) {
  assert(spec_.request_size > 0 && spec_.request_size % kSectorSize == 0);
  assert(spec_.stride_gap % kSectorSize == 0);
  assert(spec_.start_offset % kSectorSize == 0);
  assert(spec_.outstanding >= 1);
  region_end_ = spec_.region_bytes == 0 ? device_capacity
                                        : std::min<ByteOffset>(
                                              spec_.start_offset + spec_.region_bytes,
                                              device_capacity);
  assert(spec_.start_offset + spec_.request_size <= region_end_);
}

void StreamClient::start() {
  if (spec_.issue_period > 0) {
    paced_tick();
    return;
  }
  for (std::uint32_t i = 0; i < spec_.outstanding; ++i) issue_one();
}

void StreamClient::paced_tick() {
  if (spec_.num_requests != 0 && issued_total_ >= spec_.num_requests) return;
  if (in_flight_ < spec_.outstanding) {
    issue_one();
  } else {
    ++stalled_ticks_;
  }
  sim_.schedule_after(spec_.issue_period, [this]() { paced_tick(); });
}

void StreamClient::begin_measurement() {
  stats_.throughput.reset();
  stats_.latency.reset();
  stats_.completed = 0;
  stats_.errors = 0;
}

void StreamClient::issue_one() {
  if (spec_.num_requests != 0 && issued_total_ >= spec_.num_requests) return;
  // Wrap when the next request would cross the region end.
  if (next_offset_ + spec_.request_size > region_end_) {
    next_offset_ = spec_.start_offset;
  }
  core::ClientRequest req;
  req.id = ++issued_total_;
  req.device = spec_.device;
  req.offset = next_offset_;
  req.length = spec_.request_size;
  req.op = spec_.op;
  req.arrival = sim_.now();
  const SimTime issued_at = sim_.now();
  req.on_complete = [this, issued_at,
                     length = spec_.request_size](SimTime, IoStatus status) {
    on_complete(issued_at, length, status);
  };
  next_offset_ += spec_.request_size + spec_.stride_gap;
  ++stats_.issued;
  ++in_flight_;
  sink_(std::move(req));
}

void StreamClient::on_complete(SimTime issued_at, Bytes length, IoStatus status) {
  if (io_ok(status)) {
    ++stats_.completed;
    stats_.throughput.add(length);
    stats_.latency.add(sim_.now() - issued_at);
  } else {
    // The closed loop keeps running on errors (a real client would skip or
    // re-request); failed requests just never count as useful work.
    ++stats_.errors;
  }
  --in_flight_;
  if (spec_.issue_period > 0) return;  // paced: the tick loop issues
  if (!io_ok(status)) {
    // Errors can complete synchronously (a server rejecting requests for a
    // failed device). Re-issuing inline would recurse without advancing sim
    // time; pace error recovery like a client noticing and backing off.
    sim_.schedule_after(kErrorRetryDelay + spec_.think_time,
                        [this]() { issue_one(); });
  } else if (spec_.think_time > 0 || spec_.think_jitter > 0) {
    sim_.schedule_after(think_delay(), [this]() { issue_one(); });
  } else {
    issue_one();
  }
}

SimTime StreamClient::think_delay() {
  SimTime delay = spec_.think_time;
  // Only jittered streams ever advance the generator, so jitter-free specs
  // behave identically whatever seed they carry.
  if (spec_.think_jitter > 0) delay += rng_.next_below(spec_.think_jitter + 1);
  return delay;
}

RandomClient::RandomClient(exec::ExecutionContext& simulator, RequestSink sink, std::uint32_t device,
                           Bytes device_capacity, Bytes request_size,
                           std::uint32_t outstanding, std::uint64_t seed)
    : sim_(simulator),
      sink_(std::move(sink)),
      device_(device),
      capacity_(device_capacity),
      request_size_(request_size),
      outstanding_(outstanding),
      rng_(seed) {
  assert(request_size_ > 0 && request_size_ % kSectorSize == 0);
  assert(capacity_ >= request_size_);
}

void RandomClient::start() {
  for (std::uint32_t i = 0; i < outstanding_; ++i) issue_one();
}

void RandomClient::begin_measurement() {
  stats_.throughput.reset();
  stats_.latency.reset();
  stats_.completed = 0;
  stats_.errors = 0;
}

void RandomClient::issue_one() {
  const std::uint64_t slots = (capacity_ - request_size_) / kSectorSize + 1;
  const ByteOffset offset = rng_.next_below(slots) * kSectorSize;
  core::ClientRequest req;
  req.id = ++stats_.issued;
  req.device = device_;
  req.offset = offset;
  req.length = request_size_;
  req.op = IoOp::kRead;
  req.arrival = sim_.now();
  const SimTime issued_at = sim_.now();
  req.on_complete = [this, issued_at](SimTime, IoStatus status) {
    if (io_ok(status)) {
      ++stats_.completed;
      stats_.throughput.add(request_size_);
      stats_.latency.add(sim_.now() - issued_at);
    } else {
      ++stats_.errors;
      sim_.schedule_after(kErrorRetryDelay, [this]() { issue_one(); });
      return;
    }
    issue_one();
  };
  sink_(std::move(req));
}

std::vector<StreamSpec> make_uniform_streams(std::uint32_t total_streams,
                                             std::uint32_t num_devices,
                                             Bytes device_capacity, Bytes request_size,
                                             std::uint32_t outstanding) {
  assert(total_streams >= 1 && num_devices >= 1);
  std::vector<StreamSpec> specs;
  specs.reserve(total_streams);
  const std::uint32_t per_device = (total_streams + num_devices - 1) / num_devices;
  // Sector-aligned spacing between neighbouring streams on one device.
  const Bytes spacing = (device_capacity / per_device) / kSectorSize * kSectorSize;
  for (std::uint32_t i = 0; i < total_streams; ++i) {
    StreamSpec spec;
    spec.device = i % num_devices;
    const std::uint32_t slot = i / num_devices;
    spec.start_offset = static_cast<ByteOffset>(slot) * spacing;
    spec.region_bytes = spacing;  // stay inside the slot; wrap if exhausted
    spec.request_size = request_size;
    spec.outstanding = outstanding;
    specs.push_back(spec);
  }
  return specs;
}

}  // namespace sst::workload
