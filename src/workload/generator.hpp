// Workload generators replicating the paper's stream emulation (§5): each
// client emulates one sequential stream of fixed-size synchronous reads
// against a destination device/offset, keeping a bounded number of
// outstanding requests and issuing the next request as soon as a response
// arrives (closed loop). A random-access generator provides the
// non-sequential traffic used by classifier and mixed-workload tests.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/random.hpp"
#include "common/types.hpp"
#include "core/stream.hpp"
#include "stats/histogram.hpp"
#include "stats/meters.hpp"

namespace sst::exec {
class ExecutionContext;
}

namespace sst::workload {

/// Where generated requests go: the storage server's submit(), or a raw
/// device adapter. Takes ownership of the request.
using RequestSink = std::function<void(core::ClientRequest)>;

struct StreamSpec {
  std::uint32_t device = 0;
  ByteOffset start_offset = 0;
  /// Extent the stream reads before wrapping back to start_offset.
  /// 0 = run to the device's end, then wrap.
  Bytes region_bytes = 0;
  Bytes request_size = 64 * KiB;
  /// Gap skipped between consecutive requests (near-sequential access,
  /// e.g. reading one track of a multiplexed media file). 0 = strictly
  /// sequential. Must be sector aligned.
  Bytes stride_gap = 0;
  std::uint32_t outstanding = 1;
  /// Stop after this many completed requests; 0 = run until the simulation
  /// deadline.
  std::uint64_t num_requests = 0;
  IoOp op = IoOp::kRead;
  /// Host-side delay between a completion and the next request (models the
  /// application's consumption work and CPU scheduling contention).
  SimTime think_time = 0;
  /// Uniform random extra think delay in [0, think_jitter] drawn per
  /// completion from this stream's private generator (seeded from `seed`).
  /// 0 = fully deterministic pacing and the generator is never advanced.
  SimTime think_jitter = 0;
  /// Seed for this stream's private randomness. The experiment runner
  /// derives it from the global workload seed via derive_seed() — per shard,
  /// then per stream — so shards draw independent sequences instead of
  /// sharing one.
  std::uint64_t seed = 0;
  /// Open-loop pacing: when set, a new request is issued every
  /// `issue_period` regardless of completions (a constant-bitrate
  /// consumer), bounded by `outstanding` in-flight requests — a client at
  /// the bound is stalled and skips ticks (playout underrun).
  SimTime issue_period = 0;
};

/// Per-stream measurement; reset at the end of warm-up so results cover
/// only the measurement window.
struct ClientStats {
  stats::ThroughputMeter throughput;
  stats::LatencyHistogram latency;
  std::uint64_t completed = 0;
  std::uint64_t issued = 0;
  /// Requests completed with an error status (evicted stream, failed
  /// device); they count toward neither throughput nor latency.
  std::uint64_t errors = 0;
};

/// Closed-loop sequential reader (one emulated stream).
class StreamClient {
 public:
  StreamClient(exec::ExecutionContext& simulator, RequestSink sink, StreamSpec spec,
               Bytes device_capacity);

  /// Issue the initial window of requests.
  void start();

  /// Discard warm-up numbers; measurement begins now.
  void begin_measurement();

  [[nodiscard]] const StreamSpec& spec() const { return spec_; }
  [[nodiscard]] const ClientStats& stats() const { return stats_; }
  [[nodiscard]] bool finished() const {
    return spec_.num_requests != 0 && stats_.completed >= spec_.num_requests;
  }
  /// Paced mode only: ticks skipped because the in-flight bound was hit.
  [[nodiscard]] std::uint64_t stalled_ticks() const { return stalled_ticks_; }

 private:
  void issue_one();
  void paced_tick();
  void on_complete(SimTime issued_at, Bytes length, IoStatus status);
  [[nodiscard]] SimTime think_delay();

  exec::ExecutionContext& sim_;
  RequestSink sink_;
  StreamSpec spec_;
  Rng rng_;
  ByteOffset next_offset_;
  ByteOffset region_end_;
  std::uint64_t issued_total_ = 0;
  std::uint32_t in_flight_ = 0;
  std::uint64_t stalled_ticks_ = 0;
  ClientStats stats_;
};

/// Closed-loop uniform-random reader (non-sequential traffic).
class RandomClient {
 public:
  RandomClient(exec::ExecutionContext& simulator, RequestSink sink, std::uint32_t device,
               Bytes device_capacity, Bytes request_size, std::uint32_t outstanding,
               std::uint64_t seed);

  void start();
  void begin_measurement();
  [[nodiscard]] const ClientStats& stats() const { return stats_; }

 private:
  void issue_one();

  exec::ExecutionContext& sim_;
  RequestSink sink_;
  std::uint32_t device_;
  Bytes capacity_;
  Bytes request_size_;
  std::uint32_t outstanding_;
  Rng rng_;
  ClientStats stats_;
};

/// Build the paper's uniform placement: `total_streams` spread round-robin
/// over `num_devices` devices, with the streams sharing one device spaced
/// `device_capacity / streams_per_device` apart (§5: "Each stream is placed
/// disksize/#streams blocks away from the previous one").
[[nodiscard]] std::vector<StreamSpec> make_uniform_streams(std::uint32_t total_streams,
                                                           std::uint32_t num_devices,
                                                           Bytes device_capacity,
                                                           Bytes request_size,
                                                           std::uint32_t outstanding = 1);

}  // namespace sst::workload
