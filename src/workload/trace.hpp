// I/O trace capture and replay. A TraceRecorder wraps any RequestSink and
// logs issue time, location, size and completion latency of every request
// flowing through it; traces serialize to a line-oriented text format and
// can be replayed against any sink either with the original timing
// (open-loop) or as fast as the target allows (closed-loop with a bounded
// window). Used for debugging scheduler behaviour, regression workloads,
// and the trace-driven tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/types.hpp"
#include "workload/generator.hpp"

namespace sst::workload {

struct TraceRecord {
  SimTime issue_time = 0;
  std::uint32_t device = 0;
  ByteOffset offset = 0;
  Bytes length = 0;
  IoOp op = IoOp::kRead;
  /// Completion latency; kSimTimeMax until the request completes.
  SimTime latency = kSimTimeMax;

  [[nodiscard]] bool completed() const { return latency != kSimTimeMax; }
};

class TraceRecorder {
 public:
  /// Wrap `downstream`: requests pass through unchanged, metadata and
  /// latency are recorded. The recorder must outlive all wrapped requests.
  TraceRecorder(exec::ExecutionContext& simulator, RequestSink downstream);

  /// The sink to hand to generators.
  [[nodiscard]] RequestSink sink();

  [[nodiscard]] const std::vector<TraceRecord>& records() const { return records_; }
  [[nodiscard]] std::size_t completed_count() const { return completed_; }
  void clear();

 private:
  exec::ExecutionContext& sim_;
  RequestSink downstream_;
  std::vector<TraceRecord> records_;
  std::size_t completed_ = 0;
};

/// Serialize to text: one "issue_ns device offset length R|W latency_ns"
/// line per record ('-' for incomplete latencies), '#' comments allowed.
[[nodiscard]] std::string trace_to_text(const std::vector<TraceRecord>& records);
[[nodiscard]] Result<std::vector<TraceRecord>> trace_from_text(std::string_view text);

enum class ReplayMode : std::uint8_t {
  kOriginalTiming,  ///< issue each request at its recorded time
  kClosedLoop,      ///< issue as completions allow, bounded window
};

class TraceReplayer {
 public:
  TraceReplayer(exec::ExecutionContext& simulator, RequestSink sink, std::vector<TraceRecord> trace,
                ReplayMode mode, std::uint32_t window = 8);

  /// Schedule/issue the trace; completions are counted as they land.
  void start();

  [[nodiscard]] std::size_t issued() const { return issued_; }
  [[nodiscard]] std::size_t completed() const { return completed_; }
  [[nodiscard]] bool done() const { return completed_ == trace_.size(); }
  /// Completion latencies of the replayed requests (same order as issue).
  [[nodiscard]] const stats::LatencyHistogram& latency() const { return latency_; }

 private:
  void issue_next_closed();
  void issue_record(std::size_t index);

  exec::ExecutionContext& sim_;
  RequestSink sink_;
  std::vector<TraceRecord> trace_;
  ReplayMode mode_;
  std::uint32_t window_;
  std::size_t issued_ = 0;
  std::size_t completed_ = 0;
  std::size_t in_flight_ = 0;
  stats::LatencyHistogram latency_;
};

}  // namespace sst::workload
