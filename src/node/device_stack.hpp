// Declarative composition of the device stack above a node's physical
// block devices. Every experiment used to hand-wire the same ladder — sim
// disk -> FaultyDevice -> ReliableDevice -> (mirror|stripe) -> network
// sink — in runner.cpp, each bench, and the examples; DeviceStackBuilder
// makes the ladder a value (StackSpec) so a topology is a config change,
// not a code change. Layers are only constructed when enabled: a
// fault-free, raid-free spec yields the bare devices with zero wrappers,
// keeping the hot path identical to the unstacked one.
//
//   io::StackSpec spec;
//   spec.fault.media_error_rate = 1e-4;          // wraps FaultyDevice
//   spec.raid.kind = io::RaidSpec::Kind::kMirror; // pairs into RAID-1
//   auto stack = io::DeviceStackBuilder(sim, node.devices()).apply(spec).build();
//   server(stack->devices());                    // flat logical view
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "blockdev/block_device.hpp"
#include "common/types.hpp"
#include "core/reliable_device.hpp"
#include "fault/faulty_device.hpp"
#include "fault/injector.hpp"
#include "fault/params.hpp"
#include "net/network.hpp"
#include "obs/tracer.hpp"
#include "raid/mirrored_volume.hpp"
#include "raid/striped_volume.hpp"
#include "exec/execution_context.hpp"
#include "workload/generator.hpp"

namespace sst::io {

/// How the (possibly wrapped) physical devices aggregate into the flat
/// logical view the host software sees.
struct RaidSpec {
  enum class Kind : std::uint8_t {
    kNone,    ///< expose every device individually (the paper's deployment)
    kMirror,  ///< RAID-1: consecutive groups of `mirror_ways` devices
    kStripe,  ///< RAID-0: one volume striped over all devices
  };

  Kind kind = Kind::kNone;
  /// Replicas per mirror group; the device count must divide evenly.
  std::uint32_t mirror_ways = 2;
  raid::ReadPolicy mirror_policy = raid::ReadPolicy::kRegionAffine;
  raid::MirrorParams mirror;
  /// RAID-0 chunk size (positive multiple of the sector size).
  Bytes stripe_unit = 64 * KiB;

  [[nodiscard]] bool enabled() const { return kind != Kind::kNone; }
};

[[nodiscard]] constexpr const char* to_string(RaidSpec::Kind k) {
  switch (k) {
    case RaidSpec::Kind::kNone: return "none";
    case RaidSpec::Kind::kMirror: return "mirror";
    case RaidSpec::Kind::kStripe: return "stripe";
  }
  return "?";
}

/// Everything stacked between the physical devices and the host software,
/// as one declarative value (`stack.*` config keys).
struct StackSpec {
  /// Fault injection (disabled by default). When enabled, every device is
  /// wrapped in a fault::FaultyDevice fed by one deterministic injector.
  fault::FaultParams fault;
  /// Per-command timeout/retry layer stacked above the (faulty) devices.
  /// Absent = defaults whenever fault injection is enabled, no layer
  /// otherwise (keeping the fault-free hot path wrapper-free).
  std::optional<core::RetryParams> retry;
  RaidSpec raid;
  /// Present = the request sink sits behind a simulated network link (the
  /// paper's GigE testbed; response times then include the network hops).
  std::optional<net::LinkParams> network;

  [[nodiscard]] bool retry_enabled() const {
    return retry.has_value() || fault.enabled();
  }
};

/// The built stack: owns every wrapper layer and exposes the flat logical
/// device view. Construct through DeviceStackBuilder.
class DeviceStack {
 public:
  DeviceStack(const DeviceStack&) = delete;
  DeviceStack& operator=(const DeviceStack&) = delete;

  /// Flat logical view (top of the stack): what servers and raw clients
  /// submit to. One entry per physical device without raid, one per mirror
  /// group with kMirror, a single entry with kStripe.
  [[nodiscard]] const std::vector<blockdev::BlockDevice*>& devices() const {
    return top_;
  }
  [[nodiscard]] std::size_t physical_device_count() const { return physical_count_; }

  [[nodiscard]] fault::FaultInjector* injector() { return injector_.get(); }
  [[nodiscard]] const fault::FaultInjector* injector() const { return injector_.get(); }

  /// Wrap the server-facing request sink behind the network link when one
  /// is configured (no-op pass-through otherwise). The link is one more
  /// faultable device, keyed just past the physical disks.
  [[nodiscard]] workload::RequestSink wrap_sink(workload::RequestSink sink);
  [[nodiscard]] bool has_network() const { return network_.has_value(); }
  [[nodiscard]] const net::RemoteSink* remote() const { return remote_.get(); }

  /// Attach a per-experiment tracer to every stacked layer (nullptr
  /// detaches). The tracer must outlive the stack.
  void attach_tracer(obs::Tracer* tracer);

  /// Retry counters summed over every ReliableDevice in the stack.
  [[nodiscard]] core::RetryStats retry_totals() const;

  [[nodiscard]] const RaidSpec& raid_spec() const { return raid_spec_; }
  [[nodiscard]] const std::vector<std::unique_ptr<raid::MirroredVolume>>& mirrors() const {
    return mirrors_;
  }
  /// Mirror counters summed over every mirror group (zeros without kMirror).
  [[nodiscard]] raid::MirrorStats mirror_totals() const;

 private:
  friend class DeviceStackBuilder;
  DeviceStack() = default;

  exec::ExecutionContext* sim_ = nullptr;
  std::size_t physical_count_ = 0;
  std::unique_ptr<fault::FaultInjector> injector_;
  std::vector<std::unique_ptr<fault::FaultyDevice>> faulty_;
  std::vector<std::unique_ptr<core::ReliableDevice>> reliable_;
  RaidSpec raid_spec_;
  std::vector<std::unique_ptr<raid::MirroredVolume>> mirrors_;
  std::unique_ptr<raid::StripedVolume> stripe_;
  std::optional<net::LinkParams> network_;
  std::unique_ptr<net::RemoteSink> remote_;
  std::vector<blockdev::BlockDevice*> top_;
};

/// Builds a DeviceStack layer by layer (bottom-up). Either call the
/// with_*() steps directly or apply() a declarative StackSpec.
class DeviceStackBuilder {
 public:
  /// `base` are the physical devices, which must outlive the built stack.
  DeviceStackBuilder(exec::ExecutionContext& simulator,
                     std::vector<blockdev::BlockDevice*> base);

  /// Wrap every device in a FaultyDevice fed by one deterministic injector.
  DeviceStackBuilder& with_fault(const fault::FaultParams& params);
  /// Stack a per-command timeout/retry layer above the current devices.
  DeviceStackBuilder& with_retry(const core::RetryParams& params);
  /// Aggregate consecutive groups of `ways` devices into RAID-1 mirrors.
  DeviceStackBuilder& with_mirror(std::uint32_t ways, raid::ReadPolicy policy,
                                  raid::MirrorParams params = {});
  /// Aggregate all devices into one RAID-0 volume.
  DeviceStackBuilder& with_stripe(Bytes stripe_unit);
  /// Put the request sink behind a simulated network link.
  DeviceStackBuilder& with_network(const net::LinkParams& params);

  /// Apply a whole declarative spec (fault -> retry -> raid -> network,
  /// each layer only when enabled; retry defaults on under fault).
  DeviceStackBuilder& apply(const StackSpec& spec);

  [[nodiscard]] std::unique_ptr<DeviceStack> build();

 private:
  std::unique_ptr<DeviceStack> stack_;
  bool built_ = false;
};

}  // namespace sst::io
