#include "node/storage_node.hpp"

#include <cassert>

namespace sst::node {

StorageNode::StorageNode(exec::ExecutionContext& simulator, NodeConfig config)
    : sim_(simulator), config_(config) {
  assert(config_.num_controllers >= 1);
  assert(config_.disks_per_controller >= 1);
  controllers_.reserve(config_.num_controllers);
  devices_.reserve(config_.total_disks());
  for (std::uint32_t c = 0; c < config_.num_controllers; ++c) {
    auto controller = std::make_unique<ctrl::Controller>(sim_, config_.controller, c);
    for (std::uint32_t d = 0; d < config_.disks_per_controller; ++d) {
      const std::uint32_t channel = controller->attach_disk(config_.disk);
      const std::uint64_t dev_seed =
          config_.seed + static_cast<std::uint64_t>(c) * config_.disks_per_controller + d;
      devices_.push_back(
          std::make_unique<blockdev::SimBlockDevice>(*controller, channel, dev_seed));
    }
    controllers_.push_back(std::move(controller));
  }
}

std::vector<blockdev::BlockDevice*> StorageNode::devices() {
  std::vector<blockdev::BlockDevice*> out;
  out.reserve(devices_.size());
  for (auto& d : devices_) out.push_back(d.get());
  return out;
}

disk::Disk& StorageNode::disk_of(std::size_t index) {
  assert(index < devices_.size());
  const std::size_t c = index / config_.disks_per_controller;
  const std::size_t d = index % config_.disks_per_controller;
  return controllers_.at(c)->disk(static_cast<std::uint32_t>(d));
}

std::unique_ptr<core::StorageServer> StorageNode::make_server(core::SchedulerParams params) {
  return std::make_unique<core::StorageServer>(sim_, devices(), params);
}

NodeDiskTotals StorageNode::disk_totals() const {
  NodeDiskTotals totals;
  for (const auto& controller : controllers_) {
    for (std::uint32_t d = 0; d < controller->disk_count(); ++d) {
      const disk::Disk& disk = controller->disk(d);
      totals.bytes_requested += disk.stats().bytes_requested;
      totals.bytes_from_media += disk.stats().bytes_from_media;
      totals.commands += disk.stats().commands;
      totals.cache_hits += disk.cache_stats().hits;
      totals.cache_misses += disk.cache_stats().misses;
      totals.wasted_prefetch_sectors += disk.cache_stats().wasted_prefetch_sectors;
      totals.seek_time += disk.stats().seek_time;
      totals.busy_time += disk.stats().busy_time;
    }
  }
  return totals;
}

NodeControllerTotals StorageNode::controller_totals() const {
  NodeControllerTotals totals;
  for (const auto& controller : controllers_) {
    totals.commands += controller->stats().commands;
    totals.bytes_to_host += controller->stats().bytes_to_host;
    totals.bus_busy_time += controller->stats().bus_busy_time;
    totals.cache_hits += controller->cache_stats().hits;
    totals.cache_misses += controller->cache_stats().misses;
    totals.cache_evictions += controller->cache_stats().evictions;
    totals.prefetched_bytes += controller->cache_stats().prefetched_bytes;
    totals.wasted_prefetch_bytes += controller->cache_stats().wasted_prefetch_bytes;
  }
  return totals;
}

void StorageNode::reset_stats() {
  for (auto& controller : controllers_) controller->reset_stats();
}

void StorageNode::attach_tracer(obs::Tracer* tracer) {
  for (auto& controller : controllers_) controller->set_tracer(tracer);
}

}  // namespace sst::node
