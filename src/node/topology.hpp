// A topology is the whole simulated deployment as one declarative value:
// the physical node (controllers x disks, `topology.*` keys) plus the
// device stack layered above it (`stack.*` keys). Constructing a Topology
// builds the node and its stack together so every harness — the experiment
// runner, benches, examples — composes devices the same way instead of
// hand-wiring wrappers.
//
// TopologySpec is config-time only (no simulator needed), so workload
// generators can size streams against the logical device view before
// anything is built.
#pragma once

#include <cstdint>
#include <memory>

#include "node/device_stack.hpp"
#include "node/storage_node.hpp"

namespace sst::node {

struct TopologySpec {
  NodeConfig node;
  io::StackSpec stack;

  /// Devices in the flat logical view the host software sees (after raid
  /// aggregation). Stream specs index into this view.
  [[nodiscard]] std::uint32_t logical_device_count() const {
    switch (stack.raid.kind) {
      case io::RaidSpec::Kind::kNone: return node.total_disks();
      case io::RaidSpec::Kind::kMirror:
        return node.total_disks() / stack.raid.mirror_ways;
      case io::RaidSpec::Kind::kStripe: return 1;
    }
    return node.total_disks();
  }

  /// Capacity of each logical device (uniform: all disks share DiskParams).
  [[nodiscard]] Bytes logical_device_capacity() const {
    const Bytes disk = node.disk.geometry.capacity;
    switch (stack.raid.kind) {
      case io::RaidSpec::Kind::kNone: return disk;
      case io::RaidSpec::Kind::kMirror: return disk;  // replicas, not capacity
      case io::RaidSpec::Kind::kStripe: return disk * node.total_disks();
    }
    return disk;
  }

  [[nodiscard]] Status validate() const {
    if (node.total_disks() == 0) {
      return make_error("topology must have at least one disk");
    }
    if (stack.raid.kind == io::RaidSpec::Kind::kMirror) {
      if (stack.raid.mirror_ways < 2) {
        return make_error("stack.mirror.ways must be >= 2");
      }
      if (node.total_disks() % stack.raid.mirror_ways != 0) {
        return make_error("disk count must divide into mirror groups of " +
                          std::to_string(stack.raid.mirror_ways));
      }
    }
    if (stack.raid.kind == io::RaidSpec::Kind::kStripe) {
      if (stack.raid.stripe_unit == 0 || stack.raid.stripe_unit % kSectorSize != 0) {
        return make_error("stack.stripe_unit must be a positive multiple of 512");
      }
    }
    return Status::success();
  }
};

/// The built deployment: the storage node plus its device stack.
class Topology {
 public:
  Topology(sim::Simulator& simulator, const TopologySpec& spec)
      : node_(simulator, spec.node),
        stack_(io::DeviceStackBuilder(simulator, node_.devices())
                   .apply(spec.stack)
                   .build()) {}
  Topology(const Topology&) = delete;
  Topology& operator=(const Topology&) = delete;

  [[nodiscard]] StorageNode& node() { return node_; }
  [[nodiscard]] const StorageNode& node() const { return node_; }
  [[nodiscard]] io::DeviceStack& stack() { return *stack_; }
  [[nodiscard]] const io::DeviceStack& stack() const { return *stack_; }

  /// Flat logical device view (top of the stack).
  [[nodiscard]] const std::vector<blockdev::BlockDevice*>& devices() const {
    return stack_->devices();
  }
  [[nodiscard]] Bytes device_capacity(std::size_t index) const {
    return stack_->devices().at(index)->capacity();
  }

  /// Attach a per-experiment tracer to the node and every stacked layer
  /// (nullptr detaches). The tracer must outlive the topology.
  void attach_tracer(obs::Tracer* tracer) {
    node_.attach_tracer(tracer);
    stack_->attach_tracer(tracer);
  }

 private:
  StorageNode node_;
  std::unique_ptr<io::DeviceStack> stack_;
};

}  // namespace sst::node
