// A topology is the whole simulated deployment as one declarative value:
// the physical node (controllers x disks, `topology.*` keys) plus the
// device stack layered above it (`stack.*` keys). Constructing a Topology
// builds the node and its stack together so every harness — the experiment
// runner, benches, examples — composes devices the same way instead of
// hand-wiring wrappers.
//
// TopologySpec is config-time only (no simulator needed), so workload
// generators can size streams against the logical device view before
// anything is built.
#pragma once

#include <cstdint>
#include <memory>

#include "common/random.hpp"
#include "node/device_stack.hpp"
#include "node/storage_node.hpp"

namespace sst::node {

struct TopologySpec {
  NodeConfig node;
  io::StackSpec stack;

  /// Devices in the flat logical view the host software sees (after raid
  /// aggregation). Stream specs index into this view.
  [[nodiscard]] std::uint32_t logical_device_count() const {
    switch (stack.raid.kind) {
      case io::RaidSpec::Kind::kNone: return node.total_disks();
      case io::RaidSpec::Kind::kMirror:
        return node.total_disks() / stack.raid.mirror_ways;
      case io::RaidSpec::Kind::kStripe: return 1;
    }
    return node.total_disks();
  }

  /// Capacity of each logical device (uniform: all disks share DiskParams).
  [[nodiscard]] Bytes logical_device_capacity() const {
    const Bytes disk = node.disk.geometry.capacity;
    switch (stack.raid.kind) {
      case io::RaidSpec::Kind::kNone: return disk;
      case io::RaidSpec::Kind::kMirror: return disk;  // replicas, not capacity
      case io::RaidSpec::Kind::kStripe: return disk * node.total_disks();
    }
    return disk;
  }

  /// Shard-aware assembly: the sub-topology covering `ctrl_count`
  /// controllers starting at `ctrl_begin`, as its own self-contained spec.
  /// The slice keeps the global identity of its devices — the content seed
  /// advances by the first physical disk index (StorageNode seeds device i
  /// with seed + i), and fault config is rebased into the slice-local
  /// device space (ranges and filters for other slices drop out) — so the
  /// union of all slices describes exactly the original deployment.
  [[nodiscard]] TopologySpec shard_slice(std::uint32_t ctrl_begin,
                                         std::uint32_t ctrl_count) const {
    TopologySpec slice = *this;
    slice.node.num_controllers = ctrl_count;
    const std::uint32_t dev_begin = ctrl_begin * node.disks_per_controller;
    const std::uint32_t dev_count = ctrl_count * node.disks_per_controller;
    slice.node.seed = node.seed + dev_begin;
    // The injector keys its decisions on (seed, local device index); give
    // each slice a derived seed so shards don't replay one fault pattern.
    if (dev_begin != 0) {
      slice.stack.fault.seed = derive_seed(stack.fault.seed, dev_begin);
    }
    slice.stack.fault.bad_ranges.clear();
    for (fault::BadRange range : stack.fault.bad_ranges) {
      if (range.device < dev_begin || range.device >= dev_begin + dev_count) continue;
      range.device -= dev_begin;
      slice.stack.fault.bad_ranges.push_back(range);
    }
    slice.stack.fault.devices.clear();
    for (const std::uint32_t device : stack.fault.devices) {
      if (device < dev_begin || device >= dev_begin + dev_count) continue;
      slice.stack.fault.devices.push_back(device - dev_begin);
    }
    // An explicit device filter that excludes this whole slice must not
    // degenerate into "empty = every device": disable the probabilistic
    // sources instead.
    if (!stack.fault.devices.empty() && slice.stack.fault.devices.empty()) {
      slice.stack.fault.media_error_rate = 0.0;
      slice.stack.fault.hang_prob = 0.0;
      slice.stack.fault.spike_prob = 0.0;
    }
    return slice;
  }

  [[nodiscard]] Status validate() const {
    if (node.total_disks() == 0) {
      return make_error("topology must have at least one disk");
    }
    if (stack.raid.kind == io::RaidSpec::Kind::kMirror) {
      if (stack.raid.mirror_ways < 2) {
        return make_error("stack.mirror.ways must be >= 2");
      }
      if (node.total_disks() % stack.raid.mirror_ways != 0) {
        return make_error("disk count must divide into mirror groups of " +
                          std::to_string(stack.raid.mirror_ways));
      }
    }
    if (stack.raid.kind == io::RaidSpec::Kind::kStripe) {
      if (stack.raid.stripe_unit == 0 || stack.raid.stripe_unit % kSectorSize != 0) {
        return make_error("stack.stripe_unit must be a positive multiple of 512");
      }
    }
    return Status::success();
  }
};

/// The built deployment: the storage node plus its device stack.
class Topology {
 public:
  Topology(exec::ExecutionContext& simulator, const TopologySpec& spec)
      : node_(simulator, spec.node),
        stack_(io::DeviceStackBuilder(simulator, node_.devices())
                   .apply(spec.stack)
                   .build()) {}
  Topology(const Topology&) = delete;
  Topology& operator=(const Topology&) = delete;

  [[nodiscard]] StorageNode& node() { return node_; }
  [[nodiscard]] const StorageNode& node() const { return node_; }
  [[nodiscard]] io::DeviceStack& stack() { return *stack_; }
  [[nodiscard]] const io::DeviceStack& stack() const { return *stack_; }

  /// Flat logical device view (top of the stack).
  [[nodiscard]] const std::vector<blockdev::BlockDevice*>& devices() const {
    return stack_->devices();
  }
  [[nodiscard]] Bytes device_capacity(std::size_t index) const {
    return stack_->devices().at(index)->capacity();
  }

  /// Attach a per-experiment tracer to the node and every stacked layer
  /// (nullptr detaches). The tracer must outlive the topology.
  void attach_tracer(obs::Tracer* tracer) {
    node_.attach_tracer(tracer);
    stack_->attach_tracer(tracer);
  }

 private:
  StorageNode node_;
  std::unique_ptr<io::DeviceStack> stack_;
};

}  // namespace sst::node
