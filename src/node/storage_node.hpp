// A storage node: controllers, their disks, and the flat device view the
// host software (stream scheduler or raw clients) talks to. Mirrors the
// paper's three simulated hierarchies plus the real 8-disk testbed:
//
//   base:    1 controller x 1 disk
//   medium:  2 controllers x 4 disks   (the real testbed: 8 SATA disks)
//   large:  16 controllers x 4 disks   (the 60+ disk configuration)
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "blockdev/sim_block_device.hpp"
#include "common/types.hpp"
#include "controller/controller.hpp"
#include "core/params.hpp"
#include "core/server.hpp"
#include "disk/disk.hpp"
#include "exec/execution_context.hpp"

namespace sst::node {

struct NodeConfig {
  std::uint32_t num_controllers = 1;
  std::uint32_t disks_per_controller = 1;
  disk::DiskParams disk = disk::DiskParams::wd800jd();
  ctrl::ControllerParams controller = ctrl::ControllerParams::bc4810();
  /// Seed for device content patterns (device i uses seed + i).
  std::uint64_t seed = 0x5353544F52455F31ULL;

  [[nodiscard]] std::uint32_t total_disks() const {
    return num_controllers * disks_per_controller;
  }

  [[nodiscard]] static NodeConfig base() { return NodeConfig{}; }
  [[nodiscard]] static NodeConfig medium() {
    NodeConfig cfg;
    cfg.num_controllers = 2;
    cfg.disks_per_controller = 4;
    return cfg;
  }
  [[nodiscard]] static NodeConfig large() {
    NodeConfig cfg;
    cfg.num_controllers = 16;
    cfg.disks_per_controller = 4;
    return cfg;
  }
};

/// Aggregated counters across every controller of the node (transfer path
/// plus extent-cache behaviour).
struct NodeControllerTotals {
  std::uint64_t commands = 0;
  Bytes bytes_to_host = 0;
  SimTime bus_busy_time = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  Bytes prefetched_bytes = 0;
  Bytes wasted_prefetch_bytes = 0;
};

/// Aggregated counters across every disk of the node.
struct NodeDiskTotals {
  Bytes bytes_requested = 0;
  Bytes bytes_from_media = 0;
  std::uint64_t commands = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  Lba wasted_prefetch_sectors = 0;  ///< prefetched, evicted unread
  SimTime seek_time = 0;
  SimTime busy_time = 0;
};

class StorageNode {
 public:
  StorageNode(exec::ExecutionContext& simulator, NodeConfig config);
  StorageNode(const StorageNode&) = delete;
  StorageNode& operator=(const StorageNode&) = delete;

  [[nodiscard]] const NodeConfig& config() const { return config_; }
  [[nodiscard]] std::size_t device_count() const { return devices_.size(); }

  /// Flat device list (controller-major order) for servers and generators.
  [[nodiscard]] std::vector<blockdev::BlockDevice*> devices();
  [[nodiscard]] blockdev::SimBlockDevice& device(std::size_t index) {
    return *devices_.at(index);
  }
  [[nodiscard]] ctrl::Controller& controller(std::size_t index) {
    return *controllers_.at(index);
  }
  [[nodiscard]] std::size_t controller_count() const { return controllers_.size(); }
  /// The disk behind flat device `index`.
  [[nodiscard]] disk::Disk& disk_of(std::size_t index);

  /// Construct a storage server bound to all of this node's devices.
  [[nodiscard]] std::unique_ptr<core::StorageServer> make_server(core::SchedulerParams params);

  [[nodiscard]] NodeDiskTotals disk_totals() const;
  [[nodiscard]] NodeControllerTotals controller_totals() const;
  void reset_stats();

  /// Attach a per-experiment tracer to every controller and disk (nullptr
  /// detaches). The tracer must outlive the node.
  void attach_tracer(obs::Tracer* tracer);

 private:
  exec::ExecutionContext& sim_;
  NodeConfig config_;
  std::vector<std::unique_ptr<ctrl::Controller>> controllers_;
  std::vector<std::unique_ptr<blockdev::SimBlockDevice>> devices_;
};

}  // namespace sst::node
