#include "node/device_stack.hpp"

#include <cassert>
#include <utility>

namespace sst::io {

workload::RequestSink DeviceStack::wrap_sink(workload::RequestSink sink) {
  if (!network_.has_value()) return sink;
  assert(remote_ == nullptr && "wrap_sink may only be called once");
  remote_ = std::make_unique<net::RemoteSink>(*sim_, std::move(sink), *network_);
  if (injector_ != nullptr) {
    // The link is one more faultable device, keyed just past the disks.
    remote_->set_fault_injector(injector_.get(),
                                static_cast<std::uint32_t>(physical_count_));
  }
  return remote_->sink();
}

void DeviceStack::attach_tracer(obs::Tracer* tracer) {
  for (auto& dev : faulty_) dev->set_tracer(tracer);
  for (auto& dev : reliable_) dev->set_tracer(tracer);
  for (auto& vol : mirrors_) vol->set_tracer(tracer);
}

core::RetryStats DeviceStack::retry_totals() const {
  core::RetryStats totals;
  for (const auto& dev : reliable_) {
    const core::RetryStats& rs = dev->stats();
    totals.commands += rs.commands;
    totals.retries_total += rs.retries_total;
    totals.timeouts += rs.timeouts;
    totals.media_errors += rs.media_errors;
    totals.recovered += rs.recovered;
    totals.giveups += rs.giveups;
    totals.backoff_time += rs.backoff_time;
  }
  return totals;
}

raid::MirrorStats DeviceStack::mirror_totals() const {
  raid::MirrorStats totals;
  for (const auto& vol : mirrors_) {
    const raid::MirrorStats& ms = vol->stats();
    totals.reads += ms.reads;
    totals.writes += ms.writes;
    totals.member_errors += ms.member_errors;
    totals.failovers += ms.failovers;
    totals.degraded_reads += ms.degraded_reads;
    totals.degraded_writes += ms.degraded_writes;
    totals.read_failures += ms.read_failures;
    totals.write_failures += ms.write_failures;
  }
  return totals;
}

DeviceStackBuilder::DeviceStackBuilder(exec::ExecutionContext& simulator,
                                       std::vector<blockdev::BlockDevice*> base)
    : stack_(new DeviceStack()) {
  assert(!base.empty());
  stack_->sim_ = &simulator;
  stack_->physical_count_ = base.size();
  stack_->top_ = std::move(base);
}

DeviceStackBuilder& DeviceStackBuilder::with_fault(const fault::FaultParams& params) {
  assert(stack_->injector_ == nullptr && "fault layer already added");
  assert(stack_->raid_spec_.kind == RaidSpec::Kind::kNone &&
         "fault layer must sit below raid");
  stack_->injector_ = std::make_unique<fault::FaultInjector>(params);
  auto& devices = stack_->top_;
  stack_->faulty_.reserve(devices.size());
  for (std::size_t i = 0; i < devices.size(); ++i) {
    stack_->faulty_.push_back(std::make_unique<fault::FaultyDevice>(
        *stack_->sim_, *devices[i], *stack_->injector_, static_cast<std::uint32_t>(i)));
    devices[i] = stack_->faulty_.back().get();
  }
  return *this;
}

DeviceStackBuilder& DeviceStackBuilder::with_retry(const core::RetryParams& params) {
  assert(stack_->reliable_.empty() && "retry layer already added");
  assert(stack_->raid_spec_.kind == RaidSpec::Kind::kNone &&
         "retry layer must sit below raid");
  auto& devices = stack_->top_;
  stack_->reliable_.reserve(devices.size());
  for (std::size_t i = 0; i < devices.size(); ++i) {
    stack_->reliable_.push_back(std::make_unique<core::ReliableDevice>(
        *stack_->sim_, *devices[i], params, static_cast<std::uint32_t>(i)));
    devices[i] = stack_->reliable_.back().get();
  }
  return *this;
}

DeviceStackBuilder& DeviceStackBuilder::with_mirror(std::uint32_t ways,
                                                    raid::ReadPolicy policy,
                                                    raid::MirrorParams params) {
  assert(ways >= 2);
  assert(stack_->raid_spec_.kind == RaidSpec::Kind::kNone && "raid layer already added");
  auto& devices = stack_->top_;
  assert(devices.size() % ways == 0 && "device count must divide into mirror groups");
  stack_->raid_spec_.kind = RaidSpec::Kind::kMirror;
  stack_->raid_spec_.mirror_ways = ways;
  stack_->raid_spec_.mirror_policy = policy;
  stack_->raid_spec_.mirror = params;
  std::vector<blockdev::BlockDevice*> logical;
  logical.reserve(devices.size() / ways);
  for (std::size_t group = 0; group < devices.size(); group += ways) {
    std::vector<blockdev::BlockDevice*> members(devices.begin() + group,
                                                devices.begin() + group + ways);
    stack_->mirrors_.push_back(
        std::make_unique<raid::MirroredVolume>(std::move(members), policy, params));
    logical.push_back(stack_->mirrors_.back().get());
  }
  devices = std::move(logical);
  return *this;
}

DeviceStackBuilder& DeviceStackBuilder::with_stripe(Bytes stripe_unit) {
  assert(stack_->raid_spec_.kind == RaidSpec::Kind::kNone && "raid layer already added");
  stack_->raid_spec_.kind = RaidSpec::Kind::kStripe;
  stack_->raid_spec_.stripe_unit = stripe_unit;
  stack_->stripe_ = std::make_unique<raid::StripedVolume>(stack_->top_, stripe_unit);
  stack_->top_ = {stack_->stripe_.get()};
  return *this;
}

DeviceStackBuilder& DeviceStackBuilder::with_network(const net::LinkParams& params) {
  stack_->network_ = params;
  return *this;
}

DeviceStackBuilder& DeviceStackBuilder::apply(const StackSpec& spec) {
  if (spec.fault.enabled()) with_fault(spec.fault);
  if (spec.retry_enabled()) with_retry(spec.retry.value_or(core::RetryParams{}));
  switch (spec.raid.kind) {
    case RaidSpec::Kind::kNone: break;
    case RaidSpec::Kind::kMirror:
      with_mirror(spec.raid.mirror_ways, spec.raid.mirror_policy, spec.raid.mirror);
      break;
    case RaidSpec::Kind::kStripe:
      with_stripe(spec.raid.stripe_unit);
      break;
  }
  if (spec.network.has_value()) with_network(*spec.network);
  return *this;
}

std::unique_ptr<DeviceStack> DeviceStackBuilder::build() {
  assert(!built_ && "build() may only be called once");
  built_ = true;
  return std::move(stack_);
}

}  // namespace sst::io
