#include "net/network.hpp"

#include <algorithm>
#include <memory>

namespace sst::net {

void Channel::send(Bytes payload_bytes, std::function<void()> deliver) {
  const Bytes wire_bytes = payload_bytes + params_.header_bytes;
  const auto serialize = static_cast<SimTime>(
      static_cast<double>(wire_bytes) / params_.bandwidth_bps * 1e9 + 0.5);
  const SimTime start = std::max(sim_.now(), busy_until_);
  const SimTime sent = start + params_.per_message_overhead + serialize;
  busy_until_ = sent;
  ++stats_.messages;
  stats_.bytes_transferred += wire_bytes;
  stats_.busy_time += sent - start;
  // Arrival = serialization done + propagation + receive-side processing.
  const SimTime arrival = sent + params_.latency + params_.per_message_overhead;
  sim_.schedule_at(arrival, std::move(deliver));
}

RemoteSink::RemoteSink(exec::ExecutionContext& simulator, workload::RequestSink server,
                       LinkParams params)
    : sim_(simulator),
      server_(std::move(server)),
      params_(params),
      uplink_(simulator, params),
      downlink_(simulator, params) {}

workload::RequestSink RemoteSink::sink() {
  return [this](core::ClientRequest req) {
    SimTime spike_delay = 0;
    if (fault_ != nullptr) {
      const fault::FaultDecision decision =
          fault_->decide(fault_device_, req.offset, req.length, req.op);
      switch (decision.action) {
        case fault::FaultAction::kHang:
          // Lost in transit: no completion, ever.
          ++fault_stats_.dropped;
          return;
        case fault::FaultAction::kMediaError: {
          // Transport failure: the error response still crosses the wire.
          ++fault_stats_.transport_errors;
          auto cb = std::move(req.on_complete);
          downlink_.send(0, [cb = std::move(cb), this]() {
            if (cb) cb(sim_.now(), IoStatus::kTimeout);
          });
          return;
        }
        case fault::FaultAction::kSpike:
          ++fault_stats_.spiked;
          spike_delay = decision.extra_delay;
          break;
        case fault::FaultAction::kNone:
          break;
      }
    }

    // Request descriptors are small; write payloads travel uplink.
    const Bytes up_payload = req.op == IoOp::kWrite ? req.length : 0;
    const Bytes down_payload =
        (req.op == IoOp::kRead && params_.responses_carry_data) ? req.length : 0;

    // Splice the downlink hop into the completion path (the I/O status
    // travels back across the wire with the response).
    req.on_complete = [this, down_payload,
                       cb = std::move(req.on_complete)](SimTime,
                                                        IoStatus status) mutable {
      const SimTime entered = sim_.now();
      downlink_.send(down_payload, [cb = std::move(cb), status, entered, this]() {
        response_transit_.add(sim_.now() - entered);
        if (cb) cb(sim_.now(), status);
      });
    };

    // Carry the whole request across the uplink, then hand to the server.
    // A spike stalls the message before it reaches the wire (switch queue,
    // TCP retransmit), so the uplink only sees it after the delay.
    auto boxed = std::make_shared<core::ClientRequest>(std::move(req));
    if (spike_delay > 0) {
      sim_.schedule_after(spike_delay, [this, boxed, up_payload]() {
        uplink_.send(up_payload, [this, boxed]() { server_(std::move(*boxed)); });
      });
    } else {
      uplink_.send(up_payload, [this, boxed]() { server_(std::move(*boxed)); });
    }
  };
}

}  // namespace sst::net
