#include "net/network.hpp"

#include <algorithm>
#include <memory>

namespace sst::net {

void Channel::send(Bytes payload_bytes, std::function<void()> deliver) {
  const Bytes wire_bytes = payload_bytes + params_.header_bytes;
  const auto serialize = static_cast<SimTime>(
      static_cast<double>(wire_bytes) / params_.bandwidth_bps * 1e9 + 0.5);
  const SimTime start = std::max(sim_.now(), busy_until_);
  const SimTime sent = start + params_.per_message_overhead + serialize;
  busy_until_ = sent;
  ++stats_.messages;
  stats_.bytes_transferred += wire_bytes;
  stats_.busy_time += sent - start;
  // Arrival = serialization done + propagation + receive-side processing.
  const SimTime arrival = sent + params_.latency + params_.per_message_overhead;
  sim_.schedule_at(arrival, std::move(deliver));
}

RemoteSink::RemoteSink(sim::Simulator& simulator, workload::RequestSink server,
                       LinkParams params)
    : sim_(simulator),
      server_(std::move(server)),
      params_(params),
      uplink_(simulator, params),
      downlink_(simulator, params) {}

workload::RequestSink RemoteSink::sink() {
  return [this](core::ClientRequest req) {
    // Request descriptors are small; write payloads travel uplink.
    const Bytes up_payload = req.op == IoOp::kWrite ? req.length : 0;
    const Bytes down_payload =
        (req.op == IoOp::kRead && params_.responses_carry_data) ? req.length : 0;

    // Splice the downlink hop into the completion path.
    req.on_complete = [this, down_payload,
                       cb = std::move(req.on_complete)](SimTime) mutable {
      downlink_.send(down_payload, [cb = std::move(cb), this]() {
        if (cb) cb(sim_.now());
      });
    };

    // Carry the whole request across the uplink, then hand to the server.
    auto boxed = std::make_shared<core::ClientRequest>(std::move(req));
    uplink_.send(up_payload, [this, boxed]() { server_(std::move(*boxed)); });
  };
}

}  // namespace sst::net
