// Client-to-storage-node network model. The paper's testbed connects
// client machines to the storage node over 1 Gbit/s Ethernet with TCP/IP,
// and §5 notes that "responses to and from storage nodes do not include
// the data of read/write requests" so the network never bottlenecks the
// experiment. This model reproduces that setup: a full-duplex link with a
// propagation delay, a per-message processing overhead, and per-direction
// serialization at the configured bandwidth; response payloads are
// optional exactly like the paper's.
//
// RemoteSink wraps any RequestSink (typically StorageServer::submit) so
// that generators experience client-side response times: request message
// uplink -> server processing -> response downlink.
#pragma once

#include <cstdint>
#include <functional>

#include "common/types.hpp"
#include "fault/injector.hpp"
#include "exec/execution_context.hpp"
#include "stats/histogram.hpp"
#include "workload/generator.hpp"

namespace sst::net {

struct LinkParams {
  /// One-way propagation + switching latency.
  SimTime latency = usec(50);
  /// Link bandwidth per direction (1 GbE minus framing ~ 117 MB/s).
  double bandwidth_bps = 117e6;
  /// Per-message host processing (TCP/IP stack, interrupt) on each side.
  SimTime per_message_overhead = usec(20);
  /// Bytes of protocol header per message (request descriptors, acks).
  Bytes header_bytes = 128;
  /// When true, read responses carry their payload across the link; the
  /// paper's evaluation disables this so the network is not a bottleneck.
  bool responses_carry_data = false;
};

struct LinkStats {
  std::uint64_t messages = 0;
  Bytes bytes_transferred = 0;
  SimTime busy_time = 0;  ///< aggregate over both directions
};

/// Faults the link itself injected (see RemoteSink::set_fault_injector).
struct NetFaultStats {
  std::uint64_t dropped = 0;           ///< requests lost in transit (hangs)
  std::uint64_t spiked = 0;            ///< requests delayed by a spike
  std::uint64_t transport_errors = 0;  ///< failed without reaching the server
};

/// One direction of a full-duplex link: serializes message transmissions.
class Channel {
 public:
  Channel(exec::ExecutionContext& simulator, const LinkParams& params)
      : sim_(simulator), params_(params) {}

  /// Deliver `payload_bytes` (+ header) to the far side; `deliver` fires at
  /// arrival time.
  void send(Bytes payload_bytes, std::function<void()> deliver);

  [[nodiscard]] const LinkStats& stats() const { return stats_; }

 private:
  exec::ExecutionContext& sim_;
  LinkParams params_;
  SimTime busy_until_ = 0;
  LinkStats stats_;
};

/// Wraps a server-side RequestSink behind a simulated network link. All
/// clients sharing a RemoteSink share its two channels (one per direction),
/// like client machines behind one NIC.
class RemoteSink {
 public:
  RemoteSink(exec::ExecutionContext& simulator, workload::RequestSink server, LinkParams params);

  /// The sink to hand to generators (issues travel uplink; completions
  /// return downlink).
  [[nodiscard]] workload::RequestSink sink();

  [[nodiscard]] const LinkStats& uplink_stats() const { return uplink_.stats(); }
  [[nodiscard]] const LinkStats& downlink_stats() const { return downlink_.stats(); }
  /// Per-response transit time across the downlink (server completion ->
  /// client delivery), for the latency_breakdown.net_response export.
  [[nodiscard]] const stats::LatencyHistogram& response_transit() const {
    return response_transit_;
  }

  /// Let the link consult a fault injector, keyed as `device_index` (the
  /// experiment runner uses the first index past the disks — the "NIC").
  /// A media-error decision fails the request in transport (error
  /// completion, never reaches the server); a hang drops it outright (no
  /// completion — a lost RPC with no client timeout starves that stream's
  /// outstanding slot, exactly like a real lost request); a spike delays
  /// the uplink by the decision's extra delay. `injector` must outlive the
  /// sink; nullptr detaches.
  void set_fault_injector(fault::FaultInjector* injector, std::uint32_t device_index) {
    fault_ = injector;
    fault_device_ = device_index;
  }
  [[nodiscard]] const NetFaultStats& fault_stats() const { return fault_stats_; }

 private:
  exec::ExecutionContext& sim_;
  workload::RequestSink server_;
  LinkParams params_;
  Channel uplink_;
  Channel downlink_;
  fault::FaultInjector* fault_ = nullptr;
  std::uint32_t fault_device_ = 0;
  NetFaultStats fault_stats_;
  stats::LatencyHistogram response_transit_;
};

}  // namespace sst::net
