// Controller model parameters. Defaults describe the paper's Broadcom
// BC4810-class entry-level SATA RAID controller: 8 channels, ~450 MB/s
// aggregate transfer, modest onboard cache.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace sst::ctrl {

struct ControllerParams {
  std::string model = "BC4810";
  /// Onboard cache devoted to read caching/prefetch. Commodity controllers
  /// carry 4-16 MB; the paper's Fig. 8 experiment provisions 128 MB.
  Bytes cache_size = 16 * MiB;
  /// Bytes prefetched beyond each read request (0 disables controller
  /// read-ahead; the controller then forwards requests unmodified).
  Bytes prefetch = 0;
  /// Aggregate transfer ceiling between controller and host.
  double transfer_rate_bps = 450e6;
  /// Per-command processing cost (firmware + DMA setup), charged on the
  /// shared transfer path.
  SimTime command_overhead = usec(40);

  [[nodiscard]] static ControllerParams bc4810() { return ControllerParams{}; }
};

}  // namespace sst::ctrl
