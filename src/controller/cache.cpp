#include "controller/cache.hpp"

#include <algorithm>

namespace sst::ctrl {

ExtentCache::ExtentCache(Bytes capacity) : capacity_(capacity) {}

bool ExtentCache::lookup(std::uint32_t disk, Lba lba, Lba sectors, SimTime now) {
  if (!enabled()) {
    ++stats_.misses;
    return false;
  }
  for (auto it = extents_.begin(); it != extents_.end(); ++it) {
    if (it->disk != disk || !it->filled) continue;
    if (lba >= it->start && lba + sectors <= it->start + it->length) {
      it->last_access = now;
      it->consumed = std::max(it->consumed, lba + sectors - it->start);
      extents_.splice(extents_.begin(), extents_, it);  // MRU to front
      ++stats_.hits;
      return true;
    }
  }
  ++stats_.misses;
  return false;
}

void ExtentCache::account_waste(const Extent& extent) {
  if (extent.length > extent.consumed) {
    stats_.wasted_prefetch_bytes += sectors_to_bytes(extent.length - extent.consumed);
  }
  if (!extent.filled) ++stats_.inflight_evictions;
}

void ExtentCache::evict_lru() {
  auto victim = extents_.begin();
  for (auto it = extents_.begin(); it != extents_.end(); ++it) {
    if (it->last_access < victim->last_access) victim = it;
  }
  ++stats_.evictions;
  account_waste(*victim);
  used_ -= sectors_to_bytes(victim->length);
  extents_.erase(victim);
}

ExtentCache::ExtentId ExtentCache::reserve(std::uint32_t disk, Lba lba, Lba sectors,
                                           Lba request_sectors, SimTime now) {
  if (!enabled() || sectors == 0) return 0;
  const Lba keep = std::min(sectors, bytes_to_sectors(capacity_));
  // Replace any extent this one supersedes (same stream moving forward).
  for (auto it = extents_.begin(); it != extents_.end();) {
    const bool overlap =
        it->disk == disk && lba < it->start + it->length && it->start < lba + keep;
    if (overlap) {
      account_waste(*it);
      used_ -= sectors_to_bytes(it->length);
      it = extents_.erase(it);
    } else {
      ++it;
    }
  }
  while (used_ + sectors_to_bytes(keep) > capacity_ && !extents_.empty()) {
    evict_lru();
  }
  Extent ext;
  ext.id = next_id_++;
  ext.disk = disk;
  ext.start = lba;
  ext.length = keep;
  ext.consumed = std::min(request_sectors, keep);
  ext.filled = false;
  ext.last_access = now;
  used_ += sectors_to_bytes(keep);
  const ExtentId id = ext.id;
  extents_.push_front(ext);
  if (sectors > request_sectors) {
    stats_.prefetched_bytes += sectors_to_bytes(sectors - request_sectors);
  }
  return id;
}

bool ExtentCache::mark_filled(ExtentId id, SimTime now) {
  if (id == 0) return false;
  for (auto& ext : extents_) {
    if (ext.id == id) {
      ext.filled = true;
      ext.last_access = now;
      return true;
    }
  }
  return false;  // evicted while in flight
}

void ExtentCache::install(std::uint32_t disk, Lba lba, Lba sectors, Lba request_sectors,
                          SimTime now) {
  const ExtentId id = reserve(disk, lba, sectors, request_sectors, now);
  (void)mark_filled(id, now);
}

void ExtentCache::invalidate(std::uint32_t disk, Lba lba, Lba sectors) {
  for (auto it = extents_.begin(); it != extents_.end();) {
    const bool overlap =
        it->disk == disk && lba < it->start + it->length && it->start < lba + sectors;
    if (overlap) {
      used_ -= sectors_to_bytes(it->length);
      it = extents_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace sst::ctrl
