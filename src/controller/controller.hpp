// The controller model: hosts up to 8 disks behind one shared transfer
// path. Reads are looked up in the controller's extent cache; on a miss the
// controller issues one disk command covering the request plus its
// configured prefetch, installs the result, and then moves the *demanded*
// bytes across the controller-to-host path, which serializes all traffic at
// the controller's aggregate rate with a per-command overhead. That shared
// path is what caps an 8-disk node at ~450 MB/s in the paper's testbed.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "controller/cache.hpp"
#include "controller/params.hpp"
#include "disk/disk.hpp"
#include "obs/tracer.hpp"
#include "exec/execution_context.hpp"

namespace sst::ctrl {

/// A command as submitted to a controller; `disk_index` addresses one of
/// the controller's channels.
struct ControllerCommand {
  std::uint32_t disk_index = 0;
  Lba lba = 0;
  Lba sectors = 0;
  IoOp op = IoOp::kRead;
  RequestId id = kInvalidRequest;
  std::function<void(SimTime)> on_complete;
};

struct ControllerStats {
  std::uint64_t commands = 0;
  Bytes bytes_to_host = 0;
  SimTime bus_busy_time = 0;
};

class Controller {
 public:
  Controller(exec::ExecutionContext& simulator, ControllerParams params, ControllerId id);

  /// Attach a new disk on the next channel; returns its channel index.
  std::uint32_t attach_disk(disk::DiskParams disk_params);

  void submit(ControllerCommand cmd);

  [[nodiscard]] ControllerId id() const { return id_; }
  [[nodiscard]] std::size_t disk_count() const { return disks_.size(); }
  [[nodiscard]] disk::Disk& disk(std::uint32_t index) { return *disks_.at(index); }
  [[nodiscard]] const disk::Disk& disk(std::uint32_t index) const { return *disks_.at(index); }
  [[nodiscard]] const ControllerParams& params() const { return params_; }
  [[nodiscard]] const ControllerStats& stats() const { return stats_; }
  [[nodiscard]] const CtrlCacheStats& cache_stats() const { return cache_.stats(); }

  void reset_stats();

  /// Attach a per-experiment tracer (nullptr detaches) to this controller
  /// and every attached disk; call after all disks are attached. The tracer
  /// must outlive the controller.
  void set_tracer(obs::Tracer* tracer);

 private:
  /// Serialize `bytes` over the controller-to-host path; `done` fires when
  /// the transfer completes.
  void transfer_to_host(Bytes bytes, std::function<void(SimTime)> done);
  void handle_read(ControllerCommand cmd);
  void handle_write(ControllerCommand cmd);

  exec::ExecutionContext& sim_;
  ControllerParams params_;
  ControllerId id_;
  ExtentCache cache_;
  std::vector<std::unique_ptr<disk::Disk>> disks_;
  SimTime bus_free_at_ = 0;
  ControllerStats stats_;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace sst::ctrl
