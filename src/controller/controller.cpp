#include "controller/controller.hpp"

#include <algorithm>
#include <cassert>
#include <string>

namespace sst::ctrl {

Controller::Controller(exec::ExecutionContext& simulator, ControllerParams params, ControllerId id)
    : sim_(simulator), params_(params), id_(id), cache_(params.cache_size) {}

std::uint32_t Controller::attach_disk(disk::DiskParams disk_params) {
  const auto channel = static_cast<std::uint32_t>(disks_.size());
  // DiskId is globally unique: (controller << 8) | channel keeps ids stable
  // and debuggable across multi-controller nodes.
  const DiskId disk_id = (id_ << 8) | channel;
  disks_.push_back(std::make_unique<disk::Disk>(sim_, disk_params, disk_id));
  return channel;
}

void Controller::set_tracer(obs::Tracer* tracer) {
  tracer_ = tracer;
  if (tracer_ != nullptr) {
    tracer_->name_track(obs::controller_track(id_), "controller " + std::to_string(id_));
  }
  for (auto& d : disks_) d->set_tracer(tracer);
}

void Controller::transfer_to_host(Bytes bytes, std::function<void(SimTime)> done) {
  const SimTime now = sim_.now();
  const SimTime start = std::max(now, bus_free_at_);
  const auto xfer = static_cast<SimTime>(
      static_cast<double>(bytes) / params_.transfer_rate_bps * 1e9 + 0.5);
  const SimTime end = start + params_.command_overhead + xfer;
  // The path is serial (start >= bus_free_at_), so recording the span up
  // front keeps the controller track's timestamps monotone.
  if (tracer_ != nullptr) {
    tracer_->complete(obs::controller_track(id_), "controller", "xfer_to_host", start,
                      end, "bytes", static_cast<double>(bytes));
  }
  stats_.bus_busy_time += end - start;
  stats_.bytes_to_host += bytes;
  bus_free_at_ = end;
  sim_.schedule_at(end, [cb = std::move(done), end]() { cb(end); });
}

void Controller::submit(ControllerCommand cmd) {
  assert(cmd.disk_index < disks_.size());
  assert(cmd.sectors > 0);
  ++stats_.commands;
  if (cmd.op == IoOp::kRead) {
    handle_read(std::move(cmd));
  } else {
    handle_write(std::move(cmd));
  }
}

void Controller::handle_read(ControllerCommand cmd) {
  if (cache_.lookup(cmd.disk_index, cmd.lba, cmd.sectors, sim_.now())) {
    transfer_to_host(sectors_to_bytes(cmd.sectors), std::move(cmd.on_complete));
    return;
  }

  disk::Disk& target = *disks_[cmd.disk_index];
  const Lba disk_end = target.geometry().total_sectors();
  Lba fill = cmd.sectors;
  if (cache_.enabled() && params_.prefetch > 0) {
    fill = cmd.sectors + bytes_to_sectors(params_.prefetch);
  }
  fill = std::min<Lba>(fill, disk_end - cmd.lba);

  // Reserve buffer space before the read leaves for the disk: under
  // pressure this evicts older extents (even in-flight ones), which is the
  // cache-thrash mechanism of the paper's Fig. 8.
  const ExtentCache::ExtentId reservation =
      cache_.reserve(cmd.disk_index, cmd.lba, fill, cmd.sectors, sim_.now());

  disk::DiskCommand disk_cmd;
  disk_cmd.lba = cmd.lba;
  disk_cmd.sectors = fill;
  disk_cmd.op = IoOp::kRead;
  disk_cmd.id = cmd.id;
  // Capture what we need by value; `this` outlives the simulation run.
  disk_cmd.on_complete = [this, reservation, request = cmd.sectors,
                          client_cb = std::move(cmd.on_complete)](SimTime) mutable {
    // If the reservation was evicted in flight the prefetched tail is
    // dropped, but the demanded bytes still flow to the host.
    (void)cache_.mark_filled(reservation, sim_.now());
    transfer_to_host(sectors_to_bytes(request), std::move(client_cb));
  };
  target.submit(std::move(disk_cmd));
}

void Controller::handle_write(ControllerCommand cmd) {
  cache_.invalidate(cmd.disk_index, cmd.lba, cmd.sectors);
  // Host-to-controller transfer first, then the disk write.
  const Bytes bytes = sectors_to_bytes(cmd.sectors);
  transfer_to_host(bytes, [this, cmd = std::move(cmd)](SimTime) mutable {
    disk::DiskCommand disk_cmd;
    disk_cmd.lba = cmd.lba;
    disk_cmd.sectors = cmd.sectors;
    disk_cmd.op = IoOp::kWrite;
    disk_cmd.id = cmd.id;
    disk_cmd.on_complete = std::move(cmd.on_complete);
    disks_[cmd.disk_index]->submit(std::move(disk_cmd));
  });
}

void Controller::reset_stats() {
  stats_ = ControllerStats{};
  cache_.reset_stats();
  for (auto& d : disks_) d->reset_stats();
}

}  // namespace sst::ctrl
