// Controller read cache: a byte-budgeted collection of variable-length
// extents (one per prefetch operation), evicted LRU. Unlike the disk's
// fixed segment array, controller firmware manages a heap of buffers, so
// extent sizes follow the configured prefetch.
//
// Buffer space is RESERVED WHEN THE PREFETCH IS ISSUED, not when the data
// arrives — a controller cannot read 4 MB off a disk without 4 MB to put
// it in. Under `streams x prefetch > cache` pressure, new reservations
// evict extents (filled or still in flight) before their data is consumed:
// that is precisely the Fig. 8 collapse, and the waste counters quantify
// it.
#pragma once

#include <cstdint>
#include <list>

#include "common/types.hpp"

namespace sst::ctrl {

struct CtrlCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t inflight_evictions = 0;  ///< reservations evicted unfilled
  Bytes prefetched_bytes = 0;
  Bytes wasted_prefetch_bytes = 0;
};

class ExtentCache {
 public:
  /// Token identifying a reservation; 0 is never issued.
  using ExtentId = std::uint64_t;

  explicit ExtentCache(Bytes capacity);

  [[nodiscard]] bool enabled() const { return capacity_ > 0; }
  [[nodiscard]] Bytes capacity() const { return capacity_; }
  [[nodiscard]] Bytes used_bytes() const { return used_; }

  /// Full-containment lookup over FILLED extents; refreshes LRU and
  /// advances the consumed watermark on hit.
  [[nodiscard]] bool lookup(std::uint32_t disk, Lba lba, Lba sectors, SimTime now);

  /// Reserve buffer space for a read of [lba, lba+sectors) about to be
  /// issued to the disk; `request_sectors` is the demanded prefix. Evicts
  /// LRU extents (including unfilled reservations) until the new one fits;
  /// extents larger than the whole cache are truncated. Returns 0 when the
  /// cache is disabled.
  ExtentId reserve(std::uint32_t disk, Lba lba, Lba sectors, Lba request_sectors,
                   SimTime now);

  /// The reserved read completed. Returns false when the reservation was
  /// evicted while in flight (the data has nowhere to live and is dropped).
  bool mark_filled(ExtentId id, SimTime now);

  /// reserve() + mark_filled() in one step — data already at hand.
  void install(std::uint32_t disk, Lba lba, Lba sectors, Lba request_sectors, SimTime now);

  /// Drop cached data overlapping a written extent.
  void invalidate(std::uint32_t disk, Lba lba, Lba sectors);

  [[nodiscard]] std::size_t extent_count() const { return extents_.size(); }
  [[nodiscard]] const CtrlCacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = CtrlCacheStats{}; }

 private:
  struct Extent {
    ExtentId id = 0;
    std::uint32_t disk = 0;
    Lba start = 0;
    Lba length = 0;
    Lba consumed = 0;
    bool filled = false;
    SimTime last_access = 0;
  };

  void evict_lru();
  void account_waste(const Extent& extent);

  std::list<Extent> extents_;  ///< small population; linear scans suffice
  Bytes capacity_ = 0;
  Bytes used_ = 0;
  ExtentId next_id_ = 1;
  CtrlCacheStats stats_;
};

}  // namespace sst::ctrl
