// BlockDevice wrapper that applies a FaultInjector's decisions to every
// command crossing the host/device boundary:
//
//   kNone        -> forwarded untouched
//   kSpike       -> forwarded; completion delayed by the spike
//   kMediaError  -> forwarded for realistic timing (the drive spends the
//                   mechanical effort before reporting failure), then the
//                   completion is delivered with IoStatus::kMediaError
//   kHang        -> swallowed whole: never submitted, never completed.
//                   Only a timeout above (core::ReliableDevice or the
//                   mirrored volume) recovers from this.
//
// Stacks anywhere a BlockDevice does: under the stream scheduler, under a
// RAID volume member, or bare in a test.
#pragma once

#include <cstdint>
#include <string>

#include "blockdev/block_device.hpp"
#include "fault/injector.hpp"
#include "obs/tracer.hpp"
#include "exec/execution_context.hpp"

namespace sst::fault {

class FaultyDevice final : public blockdev::BlockDevice {
 public:
  /// `inner` and `injector` must outlive this wrapper; `device_index` is
  /// the identity the injector keys its decisions on.
  FaultyDevice(exec::ExecutionContext& simulator, blockdev::BlockDevice& inner,
               FaultInjector& injector, std::uint32_t device_index);

  void submit(blockdev::BlockRequest request) override;

  [[nodiscard]] Bytes capacity() const override { return inner_.capacity(); }
  [[nodiscard]] std::string name() const override { return "faulty:" + inner_.name(); }
  [[nodiscard]] std::uint32_t device_index() const { return device_index_; }

  /// Attach a per-experiment tracer (nullptr detaches); every injected
  /// fault lands as an instant on the wrapped device's request track.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

 private:
  exec::ExecutionContext& sim_;
  blockdev::BlockDevice& inner_;
  FaultInjector& injector_;
  std::uint32_t device_index_;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace sst::fault
