// Fault-model parameters: what the FaultInjector may do to commands in
// flight. All probabilities are per-command; every decision is a pure
// function of (seed, device, offset) plus a bounded per-offset attempt
// counter, so the same seed produces the same fault schedule regardless of
// command interleaving, wall-clock time, or sweep worker count.
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.hpp"
#include "common/types.hpp"

namespace sst::fault {

/// One persistent bad extent: every read or write touching it fails with a
/// media error forever (a scratched platter region / grown defect without a
/// spare sector).
struct BadRange {
  std::uint32_t device = 0;
  ByteOffset offset = 0;
  Bytes length = 0;
};

struct FaultParams {
  /// Seed for the fault schedule; independent of the workload/device seeds
  /// so the same faults can be replayed against different content.
  std::uint64_t seed = 0xFA010CAFEULL;

  /// Per-command probability of an injected media error. Whether a given
  /// command errors depends only on (seed, device, offset), so retries of
  /// the same extent see a consistent device.
  double media_error_rate = 0.0;
  /// Fraction of injected media errors that are persistent (fail forever).
  /// The rest are transient: they clear after `transient_failures` attempts,
  /// modelling a marginal sector that eventually reads on retry.
  double persistent_fraction = 0.0;
  /// Failed attempts before a transient media error clears.
  std::uint32_t transient_failures = 1;

  /// Per-command probability the command hangs: it is swallowed whole and
  /// never completes (lost in a wedged firmware queue). Only a timeout in a
  /// layer above ever recovers from this.
  double hang_prob = 0.0;

  /// Per-command probability of a latency spike of `spike_delay` added to
  /// the completion (thermal recalibration, internal retries, SMR cleanup).
  double spike_prob = 0.0;
  SimTime spike_delay = msec(50);

  /// Statically configured persistent bad extents.
  std::vector<BadRange> bad_ranges;

  /// Devices the probabilistic faults apply to; empty = every device.
  /// (BadRange entries always name their device explicitly.)
  std::vector<std::uint32_t> devices;

  /// True when any fault source is configured.
  [[nodiscard]] bool enabled() const {
    return media_error_rate > 0.0 || hang_prob > 0.0 || spike_prob > 0.0 ||
           !bad_ranges.empty();
  }

  [[nodiscard]] Status validate() const {
    const auto is_prob = [](double p) { return p >= 0.0 && p <= 1.0; };
    if (!is_prob(media_error_rate)) return make_error("fault.media_error_rate must be in [0,1]");
    if (!is_prob(persistent_fraction)) {
      return make_error("fault.persistent_fraction must be in [0,1]");
    }
    if (!is_prob(hang_prob)) return make_error("fault.hang_prob must be in [0,1]");
    if (!is_prob(spike_prob)) return make_error("fault.spike_prob must be in [0,1]");
    if (transient_failures == 0) {
      return make_error("fault.transient_failures must be >= 1");
    }
    for (const BadRange& r : bad_ranges) {
      if (r.length == 0) return make_error("fault.bad_range length must be > 0");
    }
    return Status::success();
  }
};

}  // namespace sst::fault
