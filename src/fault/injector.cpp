#include "fault/injector.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace sst::fault {

namespace {

/// SplitMix64-style finalizer over a combined key.
std::uint64_t mix(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

constexpr std::uint64_t kSaltMediaError = 0x4D45444941ULL;  // "MEDIA"
constexpr std::uint64_t kSaltPersistent = 0x5045525349ULL;  // "PERSI"
constexpr std::uint64_t kSaltHang = 0x48414E47ULL;          // "HANG"
constexpr std::uint64_t kSaltSpike = 0x5350494BULL;         // "SPIK"

std::uint64_t extent_key(std::uint32_t device, ByteOffset offset) {
  return (static_cast<std::uint64_t>(device) << 48) ^ (offset / kSectorSize);
}

}  // namespace

FaultInjector::FaultInjector(FaultParams params) : params_(std::move(params)) {
  const Status valid = params_.validate();
  (void)valid;  // loaders validate with an error message; here it is a bug
  assert(valid.ok());
}

bool FaultInjector::targets(std::uint32_t device) const {
  if (params_.devices.empty()) return true;
  return std::find(params_.devices.begin(), params_.devices.end(), device) !=
         params_.devices.end();
}

bool FaultInjector::in_bad_range(std::uint32_t device, ByteOffset offset,
                                 Bytes length) const {
  for (const BadRange& r : params_.bad_ranges) {
    if (r.device == device && offset < r.offset + r.length && r.offset < offset + length) {
      return true;
    }
  }
  return false;
}

double FaultInjector::draw(std::uint64_t salt, std::uint32_t device,
                           ByteOffset offset) const {
  std::uint64_t key = params_.seed;
  key = mix(key ^ salt);
  key = mix(key ^ device);
  key = mix(key ^ (offset / kSectorSize));
  return static_cast<double>(key >> 11) * (1.0 / 9007199254740992.0);
}

FaultDecision FaultInjector::decide(std::uint32_t device, ByteOffset offset,
                                    Bytes length, IoOp op) {
  ++stats_.commands_seen;
  FaultDecision d;

  // Statically configured bad extents fail both reads and writes, always.
  if (in_bad_range(device, offset, length)) {
    d.action = FaultAction::kMediaError;
    d.persistent = true;
    ++stats_.media_errors;
    ++stats_.persistent_errors;
    return d;
  }

  if (!targets(device)) return d;

  // Hung command: checked before media errors so a hang-prone extent stays
  // a hang on every retry (the decision hash is per-offset).
  if (params_.hang_prob > 0.0 && draw(kSaltHang, device, offset) < params_.hang_prob) {
    d.action = FaultAction::kHang;
    ++stats_.hangs;
    return d;
  }

  if (params_.media_error_rate > 0.0 && op == IoOp::kRead &&
      draw(kSaltMediaError, device, offset) < params_.media_error_rate) {
    const bool persistent =
        draw(kSaltPersistent, device, offset) < params_.persistent_fraction;
    if (persistent) {
      d.action = FaultAction::kMediaError;
      d.persistent = true;
      ++stats_.media_errors;
      ++stats_.persistent_errors;
      return d;
    }
    // Transient: fail the first `transient_failures` attempts at this
    // extent, then clear for good.
    const std::uint64_t key = extent_key(device, offset);
    auto [it, fresh] = transient_left_.try_emplace(key, params_.transient_failures);
    if (it->second > 0) {
      --it->second;
      d.action = FaultAction::kMediaError;
      ++stats_.media_errors;
      return d;
    }
    (void)fresh;  // cleared: fall through to the spike check
  }

  if (params_.spike_prob > 0.0 && draw(kSaltSpike, device, offset) < params_.spike_prob) {
    d.action = FaultAction::kSpike;
    d.extra_delay = params_.spike_delay;
    ++stats_.spikes;
  }
  return d;
}

}  // namespace sst::fault
