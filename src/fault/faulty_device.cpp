#include "fault/faulty_device.hpp"

#include <utility>

namespace sst::fault {

FaultyDevice::FaultyDevice(exec::ExecutionContext& simulator, blockdev::BlockDevice& inner,
                           FaultInjector& injector, std::uint32_t device_index)
    : sim_(simulator), inner_(inner), injector_(injector), device_index_(device_index) {}

void FaultyDevice::submit(blockdev::BlockRequest request) {
  const FaultDecision d =
      injector_.decide(device_index_, request.offset, request.length, request.op);

  switch (d.action) {
    case FaultAction::kNone:
      break;

    case FaultAction::kHang:
      // Lost in the device: drop the whole command, completion included.
      if (tracer_ != nullptr) {
        tracer_->instant(obs::request_track(device_index_), "fault", "hang", sim_.now(),
                         "offset_mb",
                         static_cast<double>(request.offset) / static_cast<double>(MiB));
      }
      return;

    case FaultAction::kMediaError:
      if (tracer_ != nullptr) {
        tracer_->instant(obs::request_track(device_index_), "fault", "media_error",
                         sim_.now(), "offset_mb",
                         static_cast<double>(request.offset) / static_cast<double>(MiB));
      }
      request.on_complete = [cb = std::move(request.on_complete)](SimTime t,
                                                                  IoStatus) mutable {
        if (cb) cb(t, IoStatus::kMediaError);
      };
      break;

    case FaultAction::kSpike:
      if (tracer_ != nullptr) {
        tracer_->instant(obs::request_track(device_index_), "fault", "latency_spike",
                         sim_.now(), "delay_ms", to_millis(d.extra_delay));
      }
      request.on_complete = [this, delay = d.extra_delay,
                             cb = std::move(request.on_complete)](SimTime,
                                                                  IoStatus s) mutable {
        sim_.schedule_after(delay, [cb = std::move(cb), s, this]() mutable {
          if (cb) cb(sim_.now(), s);
        });
      };
      break;
  }
  inner_.submit(std::move(request));
}

}  // namespace sst::fault
