// Deterministic, seedable fault injector. Device wrappers (and the network
// layer) consult it once per command; it answers with what should happen to
// that command. Decisions are hash-based over (seed, device, offset), not
// drawn from a shared sequential RNG, which gives two properties the sweep
// cache and the tests depend on:
//
//  1. Same-seed replay: the fault schedule is a pure function of the
//     configuration, byte-identical across runs and across SST_BENCH_THREADS
//     values (each experiment owns its injector; nothing is shared).
//  2. Consistent geography: an offset that fails keeps failing (until a
//     transient error clears), exactly like a real grown defect — so the
//     retry hierarchy above is exercised honestly instead of being saved by
//     an independent re-roll.
//
// The only mutable state is the per-extent attempt counter that makes
// transient errors clear after N tries; it is bounded by the number of
// distinct faulted extents.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "fault/params.hpp"

namespace sst::fault {

enum class FaultAction : std::uint8_t {
  kNone,        ///< pass through untouched
  kMediaError,  ///< complete with IoStatus::kMediaError after device timing
  kHang,        ///< never complete (swallow the command)
  kSpike,       ///< complete normally, delayed by FaultDecision::extra_delay
};

struct FaultDecision {
  FaultAction action = FaultAction::kNone;
  bool persistent = false;   ///< media errors only: never clears
  SimTime extra_delay = 0;   ///< spikes only
};

struct FaultStats {
  std::uint64_t commands_seen = 0;
  std::uint64_t media_errors = 0;       ///< injected error completions
  std::uint64_t persistent_errors = 0;  ///< subset of media_errors
  std::uint64_t hangs = 0;
  std::uint64_t spikes = 0;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultParams params);

  /// Decide the fate of one command. Mutates only the transient-attempt
  /// table; everything else is a pure hash of (seed, device, offset).
  [[nodiscard]] FaultDecision decide(std::uint32_t device, ByteOffset offset,
                                     Bytes length, IoOp op);

  [[nodiscard]] const FaultParams& params() const { return params_; }
  [[nodiscard]] const FaultStats& stats() const { return stats_; }

 private:
  [[nodiscard]] bool targets(std::uint32_t device) const;
  [[nodiscard]] bool in_bad_range(std::uint32_t device, ByteOffset offset,
                                  Bytes length) const;
  /// Uniform [0,1) draw keyed by (seed, salt, device, offset) — stateless.
  [[nodiscard]] double draw(std::uint64_t salt, std::uint32_t device,
                            ByteOffset offset) const;

  FaultParams params_;
  FaultStats stats_;
  /// Remaining failures per transient-faulted extent, keyed by
  /// (device, offset). Erased once the error clears.
  std::unordered_map<std::uint64_t, std::uint32_t> transient_left_;
};

}  // namespace sst::fault
