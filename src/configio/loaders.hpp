// DiskSim-style parameter loading: build every parameter struct in the
// system from a flat key=value Config (file or command line), so whole
// experiments are reproducible from a single text description. Keys are
// namespaced with dotted prefixes; anything omitted keeps its documented
// default.
//
//   # one controller, one WD800JD-class disk, the paper's Fig. 10 point
//   node.controllers = 1
//   node.disks_per_controller = 1
//   disk.capacity = 80G
//   disk.cache.size = 8M
//   sched.read_ahead = 8M
//   sched.memory = 800M
//   workload.streams = 100
//   workload.request = 64K
//   run.measure = 20s
#pragma once

#include "common/config.hpp"
#include "common/result.hpp"
#include "controller/params.hpp"
#include "core/params.hpp"
#include "core/reliable_device.hpp"
#include "disk/params.hpp"
#include "experiment/runner.hpp"
#include "fault/params.hpp"
#include "node/device_stack.hpp"
#include "node/storage_node.hpp"
#include "node/topology.hpp"

namespace sst::configio {

/// Keys: disk.capacity, disk.rpm, disk.heads, disk.zones, disk.outer_spt,
/// disk.inner_spt, disk.seek_single, disk.seek_avg, disk.seek_full,
/// disk.cache.size, disk.cache.segments, disk.cache.read_ahead
/// ("segment" = fill whole segment, or a size), disk.interface_rate_mbps,
/// disk.overhead, disk.scheduler (fcfs|elevator|sstf).
[[nodiscard]] Result<disk::DiskParams> load_disk_params(const Config& cfg);

/// Keys: ctrl.cache, ctrl.prefetch, ctrl.rate_mbps, ctrl.overhead.
[[nodiscard]] Result<ctrl::ControllerParams> load_controller_params(const Config& cfg);

/// Keys: sched.dispatch (D; 0 = derive from memory), sched.read_ahead (R),
/// sched.residency (N), sched.memory (M), sched.policy
/// (round-robin|nearest-offset), sched.classifier.block,
/// sched.classifier.offset_blocks, sched.classifier.threshold,
/// sched.buffer_timeout, sched.pending_timeout, sched.stream_timeout, sched.gc_period,
/// sched.materialize.
[[nodiscard]] Result<core::SchedulerParams> load_scheduler_params(const Config& cfg);

/// Keys: node.controllers, node.disks_per_controller, node.seed, plus all
/// disk.* and ctrl.* keys.
[[nodiscard]] Result<node::NodeConfig> load_node_config(const Config& cfg);

/// Keys: fault.seed, fault.media_error_rate, fault.persistent_fraction,
/// fault.transient_failures, fault.hang_prob, fault.spike_prob,
/// fault.spike (delay), fault.bad_range ("dev:offset:length[,...]"; offset
/// and length accept size suffixes), fault.devices ("0,2,5"; empty = all).
[[nodiscard]] Result<fault::FaultParams> load_fault_params(const Config& cfg);

/// Keys: retry.timeout (0 disables the per-command timer), retry.retries,
/// retry.backoff, retry.backoff_cap.
[[nodiscard]] Result<core::RetryParams> load_retry_params(const Config& cfg);

/// Keys: net.latency, net.bandwidth_mbps, net.overhead, net.header,
/// net.responses_carry_data.
[[nodiscard]] Result<net::LinkParams> load_link_params(const Config& cfg);

/// The declarative device stack above the node's disks. Keys: all fault.*
/// keys, retry.enable (default: true when any retry.* key is present;
/// faults alone enable default retries) + retry.* keys, net.enable
/// (default: true when any net.* key is present) + net.* keys, and the
/// raid aggregation: stack.raid (none|mirror|stripe), stack.mirror.ways,
/// stack.mirror.policy (round-robin|region-affine),
/// stack.mirror.fail_threshold, stack.stripe_unit.
[[nodiscard]] Result<io::StackSpec> load_stack_spec(const Config& cfg);

/// The whole deployment: node plus stack. Keys: topology.preset
/// (base|medium|large), topology.controllers, topology.disks_per_controller
/// and topology.seed (aliases of the node.* spellings, which stay
/// supported), all disk.*/ctrl.* keys, and every stack key above.
[[nodiscard]] Result<node::TopologySpec> load_topology_spec(const Config& cfg);

/// Keys: all of the above plus workload.streams, workload.request,
/// workload.outstanding, workload.think, workload.think_jitter,
/// workload.seed (0 = keep the built-in default), workload.issue_period,
/// run.warmup, run.measure, sched.enable (default: true when any sched.*
/// key is present), sim.shards (alias topology.shards; event-engine shards,
/// 1 = single-threaded) and sim.lookahead (cross-shard barrier horizon;
/// 0 = derive from the network latency or the built-in default). Tail
/// latency: slo.objective (duration; > 0 enables the SLO engine),
/// slo.quantile (target quantile in (0,1], default 0.99), slo.window
/// (evaluation window, default 1s), slo.burn_rate (allowed breaching-window
/// fraction, default 0) and obs.attribution (bool; per-request stage
/// attribution, implied by an enabled SLO). Stream specs are sized against
/// the topology's logical device view (e.g. one striped volume).
[[nodiscard]] Result<experiment::ExperimentConfig> load_experiment(const Config& cfg);

}  // namespace sst::configio
