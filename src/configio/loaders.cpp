#include "configio/loaders.hpp"

#include <algorithm>

#include "workload/generator.hpp"

namespace sst::configio {

namespace {

/// True when any stored key starts with `prefix`.
bool has_prefix(const Config& cfg, std::string_view prefix) {
  for (const auto& [key, value] : cfg.entries()) {
    if (key.size() >= prefix.size() && key.compare(0, prefix.size(), prefix) == 0) {
      return true;
    }
  }
  return false;
}

/// Split `text` on `sep`, dropping empty fields.
std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t end = text.find(sep, start);
    const auto field = text.substr(start, end == std::string_view::npos
                                              ? std::string_view::npos
                                              : end - start);
    if (!field.empty()) out.emplace_back(field);
    if (end == std::string_view::npos) break;
    start = end + 1;
  }
  return out;
}

/// Parse a base-10 unsigned device index; errors instead of throwing.
Result<std::uint32_t> parse_index(const std::string& text) {
  if (text.empty() || text.find_first_not_of("0123456789") != std::string::npos ||
      text.size() > 9) {
    return make_error("expected a device index, got '" + text + "'");
  }
  return static_cast<std::uint32_t>(std::stoul(text));
}

}  // namespace

Result<disk::DiskParams> load_disk_params(const Config& cfg) {
  disk::DiskParams p = disk::DiskParams::wd800jd();
  p.geometry.capacity = cfg.get_bytes("disk.capacity", p.geometry.capacity);
  p.geometry.rpm = static_cast<std::uint32_t>(cfg.get_int("disk.rpm", p.geometry.rpm));
  p.geometry.heads = static_cast<std::uint32_t>(cfg.get_int("disk.heads", p.geometry.heads));
  p.geometry.num_zones =
      static_cast<std::uint32_t>(cfg.get_int("disk.zones", p.geometry.num_zones));
  p.geometry.outer_spt =
      static_cast<std::uint32_t>(cfg.get_int("disk.outer_spt", p.geometry.outer_spt));
  p.geometry.inner_spt =
      static_cast<std::uint32_t>(cfg.get_int("disk.inner_spt", p.geometry.inner_spt));
  p.seek.single_cylinder = cfg.get_duration("disk.seek_single", p.seek.single_cylinder);
  p.seek.average = cfg.get_duration("disk.seek_avg", p.seek.average);
  p.seek.full_stroke = cfg.get_duration("disk.seek_full", p.seek.full_stroke);
  p.cache.size = cfg.get_bytes("disk.cache.size", p.cache.size);
  p.cache.num_segments =
      static_cast<std::uint32_t>(cfg.get_int("disk.cache.segments", p.cache.num_segments));
  if (cfg.contains("disk.cache.read_ahead")) {
    const auto text = cfg.get_string("disk.cache.read_ahead", "segment");
    if (text == "segment" || text == "fill") {
      p.cache.read_ahead = disk::CacheParams::kFillSegment;
    } else {
      const auto parsed = Config::parse_bytes(text);
      if (!parsed.ok()) return parsed.error();
      p.cache.read_ahead = parsed.value();
    }
  }
  p.interface_rate_bps = cfg.get_double("disk.interface_rate_mbps", 150.0) * 1e6;
  p.command_overhead = cfg.get_duration("disk.overhead", p.command_overhead);
  if (cfg.contains("disk.scheduler")) {
    const auto name = cfg.get_string("disk.scheduler", "fcfs");
    if (name == "fcfs") p.scheduler = disk::SchedulerKind::kFcfs;
    else if (name == "elevator") p.scheduler = disk::SchedulerKind::kElevator;
    else if (name == "sstf") p.scheduler = disk::SchedulerKind::kSstf;
    else return make_error("unknown disk.scheduler: '" + name + "'");
  }
  if (p.geometry.inner_spt == 0 || p.geometry.outer_spt < p.geometry.inner_spt) {
    return make_error("disk zone sectors-per-track must satisfy outer >= inner > 0");
  }
  if (p.seek.single_cylinder > p.seek.average || p.seek.average > p.seek.full_stroke) {
    return make_error("disk seek curve must satisfy single <= average <= full");
  }
  return p;
}

Result<ctrl::ControllerParams> load_controller_params(const Config& cfg) {
  ctrl::ControllerParams p = ctrl::ControllerParams::bc4810();
  p.cache_size = cfg.get_bytes("ctrl.cache", p.cache_size);
  p.prefetch = cfg.get_bytes("ctrl.prefetch", p.prefetch);
  p.transfer_rate_bps = cfg.get_double("ctrl.rate_mbps", 450.0) * 1e6;
  p.command_overhead = cfg.get_duration("ctrl.overhead", p.command_overhead);
  return p;
}

Result<core::SchedulerParams> load_scheduler_params(const Config& cfg) {
  core::SchedulerParams p;
  p.dispatch_set_size =
      static_cast<std::uint32_t>(cfg.get_int("sched.dispatch", p.dispatch_set_size));
  p.read_ahead = cfg.get_bytes("sched.read_ahead", p.read_ahead);
  p.requests_per_residency =
      static_cast<std::uint32_t>(cfg.get_int("sched.residency", p.requests_per_residency));
  p.memory_budget = cfg.get_bytes("sched.memory", p.memory_budget);
  if (cfg.contains("sched.policy")) {
    const auto name = cfg.get_string("sched.policy", "round-robin");
    if (name == "round-robin") p.policy = core::DispatchPolicyKind::kRoundRobin;
    else if (name == "nearest-offset") p.policy = core::DispatchPolicyKind::kNearestOffset;
    else return make_error("unknown sched.policy: '" + name + "'");
  }
  p.classifier.block_bytes =
      cfg.get_bytes("sched.classifier.block", p.classifier.block_bytes);
  p.classifier.offset_blocks = static_cast<std::uint32_t>(
      cfg.get_int("sched.classifier.offset_blocks", p.classifier.offset_blocks));
  p.classifier.detect_threshold = static_cast<std::uint32_t>(
      cfg.get_int("sched.classifier.threshold", p.classifier.detect_threshold));
  p.buffer_timeout = cfg.get_duration("sched.buffer_timeout", p.buffer_timeout);
  p.pending_timeout = cfg.get_duration("sched.pending_timeout", p.pending_timeout);
  p.stream_timeout = cfg.get_duration("sched.stream_timeout", p.stream_timeout);
  p.gc_period = cfg.get_duration("sched.gc_period", p.gc_period);
  p.materialize_buffers = cfg.get_bool("sched.materialize", p.materialize_buffers);
  const Status valid = p.validate();
  if (!valid.ok()) return valid.error();
  return p;
}

Result<node::NodeConfig> load_node_config(const Config& cfg) {
  node::NodeConfig n;
  n.num_controllers =
      static_cast<std::uint32_t>(cfg.get_int("node.controllers", n.num_controllers));
  n.disks_per_controller = static_cast<std::uint32_t>(
      cfg.get_int("node.disks_per_controller", n.disks_per_controller));
  n.seed = static_cast<std::uint64_t>(cfg.get_int("node.seed", 0)) != 0
               ? static_cast<std::uint64_t>(cfg.get_int("node.seed", 0))
               : n.seed;
  if (n.num_controllers == 0 || n.disks_per_controller == 0) {
    return make_error("node topology must have at least one controller and disk");
  }
  auto disk_params = load_disk_params(cfg);
  if (!disk_params.ok()) return disk_params.error();
  n.disk = disk_params.value();
  auto ctrl_params = load_controller_params(cfg);
  if (!ctrl_params.ok()) return ctrl_params.error();
  n.controller = ctrl_params.value();
  return n;
}

Result<fault::FaultParams> load_fault_params(const Config& cfg) {
  fault::FaultParams p;
  if (cfg.contains("fault.seed")) {
    p.seed = static_cast<std::uint64_t>(cfg.get_int("fault.seed", 0));
  }
  p.media_error_rate = cfg.get_double("fault.media_error_rate", p.media_error_rate);
  p.persistent_fraction =
      cfg.get_double("fault.persistent_fraction", p.persistent_fraction);
  p.transient_failures = static_cast<std::uint32_t>(
      cfg.get_int("fault.transient_failures", p.transient_failures));
  p.hang_prob = cfg.get_double("fault.hang_prob", p.hang_prob);
  p.spike_prob = cfg.get_double("fault.spike_prob", p.spike_prob);
  p.spike_delay = cfg.get_duration("fault.spike", p.spike_delay);
  if (cfg.contains("fault.bad_range")) {
    // dev:offset:length[,dev:offset:length...]; offset/length take size
    // suffixes (e.g. "0:1G:64K").
    for (const std::string& entry :
         split(cfg.get_string("fault.bad_range", ""), ',')) {
      const auto fields = split(entry, ':');
      if (fields.size() != 3) {
        return make_error("fault.bad_range entry must be dev:offset:length, got '" +
                          entry + "'");
      }
      fault::BadRange range;
      const auto device = parse_index(fields[0]);
      if (!device.ok()) return device.error();
      range.device = device.value();
      const auto offset = Config::parse_bytes(fields[1]);
      if (!offset.ok()) return offset.error();
      range.offset = offset.value();
      const auto length = Config::parse_bytes(fields[2]);
      if (!length.ok()) return length.error();
      range.length = length.value();
      p.bad_ranges.push_back(range);
    }
  }
  if (cfg.contains("fault.devices")) {
    for (const std::string& entry : split(cfg.get_string("fault.devices", ""), ',')) {
      const auto device = parse_index(entry);
      if (!device.ok()) return device.error();
      p.devices.push_back(device.value());
    }
  }
  const Status valid = p.validate();
  if (!valid.ok()) return valid.error();
  return p;
}

Result<core::RetryParams> load_retry_params(const Config& cfg) {
  core::RetryParams p;
  p.command_timeout = cfg.get_duration("retry.timeout", p.command_timeout);
  p.max_retries = static_cast<std::uint32_t>(cfg.get_int("retry.retries", p.max_retries));
  p.backoff_base = cfg.get_duration("retry.backoff", p.backoff_base);
  p.backoff_cap = cfg.get_duration("retry.backoff_cap", p.backoff_cap);
  const Status valid = p.validate();
  if (!valid.ok()) return valid.error();
  return p;
}

Result<net::LinkParams> load_link_params(const Config& cfg) {
  net::LinkParams p;
  p.latency = cfg.get_duration("net.latency", p.latency);
  p.bandwidth_bps = cfg.get_double("net.bandwidth_mbps", p.bandwidth_bps / 1e6) * 1e6;
  p.per_message_overhead = cfg.get_duration("net.overhead", p.per_message_overhead);
  p.header_bytes = cfg.get_bytes("net.header", p.header_bytes);
  p.responses_carry_data =
      cfg.get_bool("net.responses_carry_data", p.responses_carry_data);
  if (p.bandwidth_bps <= 0.0) {
    return make_error("net.bandwidth_mbps must be > 0");
  }
  return p;
}

Result<io::StackSpec> load_stack_spec(const Config& cfg) {
  io::StackSpec spec;
  auto fault = load_fault_params(cfg);
  if (!fault.ok()) return fault.error();
  spec.fault = fault.value();
  const bool retry_enabled = cfg.get_bool("retry.enable", has_prefix(cfg, "retry."));
  if (retry_enabled) {
    auto retry = load_retry_params(cfg);
    if (!retry.ok()) return retry.error();
    spec.retry = retry.value();
  }
  if (cfg.contains("stack.raid")) {
    const auto name = cfg.get_string("stack.raid", "none");
    if (name == "none") spec.raid.kind = io::RaidSpec::Kind::kNone;
    else if (name == "mirror") spec.raid.kind = io::RaidSpec::Kind::kMirror;
    else if (name == "stripe") spec.raid.kind = io::RaidSpec::Kind::kStripe;
    else return make_error("unknown stack.raid: '" + name + "'");
  }
  spec.raid.mirror_ways =
      static_cast<std::uint32_t>(cfg.get_int("stack.mirror.ways", spec.raid.mirror_ways));
  if (cfg.contains("stack.mirror.policy")) {
    const auto name = cfg.get_string("stack.mirror.policy", "region-affine");
    if (name == "round-robin") spec.raid.mirror_policy = raid::ReadPolicy::kRoundRobin;
    else if (name == "region-affine") spec.raid.mirror_policy = raid::ReadPolicy::kRegionAffine;
    else return make_error("unknown stack.mirror.policy: '" + name + "'");
  }
  spec.raid.mirror.fail_threshold = static_cast<std::uint32_t>(
      cfg.get_int("stack.mirror.fail_threshold", spec.raid.mirror.fail_threshold));
  spec.raid.stripe_unit = cfg.get_bytes("stack.stripe_unit", spec.raid.stripe_unit);
  const bool net_enabled = cfg.get_bool("net.enable", has_prefix(cfg, "net."));
  if (net_enabled) {
    auto link = load_link_params(cfg);
    if (!link.ok()) return link.error();
    spec.network = link.value();
  }
  return spec;
}

Result<node::TopologySpec> load_topology_spec(const Config& cfg) {
  node::TopologySpec spec;
  if (cfg.contains("topology.preset")) {
    const auto name = cfg.get_string("topology.preset", "base");
    if (name == "base") spec.node = node::NodeConfig{};
    else if (name == "medium") spec.node = node::NodeConfig::medium();
    else if (name == "large") spec.node = node::NodeConfig::large();
    else return make_error("unknown topology.preset: '" + name + "'");
  }
  // topology.* spellings alias the historical node.* keys; both work, with
  // the topology.* form winning when both are present.
  spec.node.num_controllers = static_cast<std::uint32_t>(cfg.get_int(
      "topology.controllers",
      cfg.get_int("node.controllers", spec.node.num_controllers)));
  spec.node.disks_per_controller = static_cast<std::uint32_t>(cfg.get_int(
      "topology.disks_per_controller",
      cfg.get_int("node.disks_per_controller", spec.node.disks_per_controller)));
  const auto seed = static_cast<std::uint64_t>(
      cfg.get_int("topology.seed", cfg.get_int("node.seed", 0)));
  if (seed != 0) spec.node.seed = seed;
  if (spec.node.num_controllers == 0 || spec.node.disks_per_controller == 0) {
    return make_error("node topology must have at least one controller and disk");
  }
  auto disk_params = load_disk_params(cfg);
  if (!disk_params.ok()) return disk_params.error();
  spec.node.disk = disk_params.value();
  auto ctrl_params = load_controller_params(cfg);
  if (!ctrl_params.ok()) return ctrl_params.error();
  spec.node.controller = ctrl_params.value();

  auto stack = load_stack_spec(cfg);
  if (!stack.ok()) return stack.error();
  spec.stack = stack.value();
  for (const fault::BadRange& r : spec.stack.fault.bad_ranges) {
    if (r.device >= spec.node.total_disks()) {
      return make_error("fault.bad_range device " + std::to_string(r.device) +
                        " out of range (node has " +
                        std::to_string(spec.node.total_disks()) + " disks)");
    }
  }
  const Status valid = spec.validate();
  if (!valid.ok()) return valid.error();
  return spec;
}

Result<experiment::ExperimentConfig> load_experiment(const Config& cfg) {
  experiment::ExperimentConfig ec;
  auto topology = load_topology_spec(cfg);
  if (!topology.ok()) return topology.error();
  ec.topology = topology.value();

  const bool sched_enabled = cfg.get_bool("sched.enable", has_prefix(cfg, "sched."));
  if (sched_enabled) {
    auto sched = load_scheduler_params(cfg);
    if (!sched.ok()) return sched.error();
    ec.scheduler = sched.value();
  }

  const auto streams =
      static_cast<std::uint32_t>(cfg.get_int("workload.streams", 10));
  const Bytes request = cfg.get_bytes("workload.request", 64 * KiB);
  if (streams == 0) return make_error("workload.streams must be >= 1");
  if (request == 0 || request % kSectorSize != 0) {
    return make_error("workload.request must be a positive multiple of 512");
  }
  // Streams spread over the stack's logical device view: one striped volume
  // gets every stream, mirror groups share them like plain disks.
  ec.streams = workload::make_uniform_streams(streams, ec.topology.logical_device_count(),
                                              ec.topology.logical_device_capacity(), request);
  const auto outstanding =
      static_cast<std::uint32_t>(cfg.get_int("workload.outstanding", 1));
  const SimTime think = cfg.get_duration("workload.think", 0);
  const SimTime jitter = cfg.get_duration("workload.think_jitter", 0);
  const SimTime period = cfg.get_duration("workload.issue_period", 0);
  for (auto& spec : ec.streams) {
    spec.outstanding = std::max<std::uint32_t>(1, outstanding);
    spec.think_time = think;
    spec.think_jitter = jitter;
    spec.issue_period = period;
  }
  const auto workload_seed =
      static_cast<std::uint64_t>(cfg.get_int("workload.seed", 0));
  if (workload_seed != 0) ec.workload_seed = workload_seed;
  ec.warmup = cfg.get_duration("run.warmup", ec.warmup);
  ec.measure = cfg.get_duration("run.measure", ec.measure);
  const auto shards = cfg.get_int("sim.shards", cfg.get_int("topology.shards", 1));
  if (shards < 1) return make_error("sim.shards must be >= 1");
  ec.shards = static_cast<std::uint32_t>(shards);
  ec.lookahead = cfg.get_duration("sim.lookahead", 0);
  if (cfg.contains("sched.fail_threshold") && ec.scheduler.has_value()) {
    ec.scheduler->device_fail_threshold = static_cast<std::uint32_t>(
        cfg.get_int("sched.fail_threshold", ec.scheduler->device_fail_threshold));
  }

  // Tail-latency SLO: declaring an objective enables the engine.
  ec.slo.objective = cfg.get_duration("slo.objective", 0);
  ec.slo.quantile = cfg.get_double("slo.quantile", ec.slo.quantile);
  if (ec.slo.quantile <= 0.0 || ec.slo.quantile > 1.0) {
    return make_error("slo.quantile must be in (0, 1]");
  }
  ec.slo.window = cfg.get_duration("slo.window", ec.slo.window);
  if (ec.slo.enabled() && ec.slo.window == 0) {
    return make_error("slo.window must be > 0");
  }
  ec.slo.burn_rate = cfg.get_double("slo.burn_rate", ec.slo.burn_rate);
  if (ec.slo.burn_rate < 0.0 || ec.slo.burn_rate > 1.0) {
    return make_error("slo.burn_rate must be in [0, 1]");
  }
  ec.attribution = cfg.get_bool("obs.attribution", false);

  // Execution backend: sim (default, deterministic) or real (io_uring over
  // a backing file; requires a -DSST_WITH_URING=ON build).
  const std::string backend_kind = cfg.get_string("backend.kind", "sim");
  if (backend_kind == "real") {
    ec.backend.kind = experiment::BackendConfig::Kind::kReal;
  } else if (backend_kind != "sim") {
    return make_error("backend.kind must be sim or real, got '" + backend_kind + "'");
  }
  ec.backend.path = cfg.get_string("backend.path", "");
  const auto queue_depth = cfg.get_int("backend.queue_depth", ec.backend.queue_depth);
  if (queue_depth < 1) return make_error("backend.queue_depth must be >= 1");
  ec.backend.queue_depth = static_cast<std::uint32_t>(queue_depth);
  ec.backend.direct = cfg.get_bool("backend.direct", ec.backend.direct);
  const auto reactors = cfg.get_int("backend.reactors", ec.backend.reactors);
  if (reactors < 1) return make_error("backend.reactors must be >= 1");
  ec.backend.reactors = static_cast<std::uint32_t>(reactors);
  if (ec.backend.kind == experiment::BackendConfig::Kind::kReal &&
      ec.backend.path.empty()) {
    return make_error("backend.kind=real requires backend.path");
  }
  return ec;
}

}  // namespace sst::configio
