#include "configio/loaders.hpp"

#include <algorithm>

#include "workload/generator.hpp"

namespace sst::configio {

namespace {

/// True when any stored key starts with `prefix`.
bool has_prefix(const Config& cfg, std::string_view prefix) {
  for (const auto& [key, value] : cfg.entries()) {
    if (key.size() >= prefix.size() && key.compare(0, prefix.size(), prefix) == 0) {
      return true;
    }
  }
  return false;
}

}  // namespace

Result<disk::DiskParams> load_disk_params(const Config& cfg) {
  disk::DiskParams p = disk::DiskParams::wd800jd();
  p.geometry.capacity = cfg.get_bytes("disk.capacity", p.geometry.capacity);
  p.geometry.rpm = static_cast<std::uint32_t>(cfg.get_int("disk.rpm", p.geometry.rpm));
  p.geometry.heads = static_cast<std::uint32_t>(cfg.get_int("disk.heads", p.geometry.heads));
  p.geometry.num_zones =
      static_cast<std::uint32_t>(cfg.get_int("disk.zones", p.geometry.num_zones));
  p.geometry.outer_spt =
      static_cast<std::uint32_t>(cfg.get_int("disk.outer_spt", p.geometry.outer_spt));
  p.geometry.inner_spt =
      static_cast<std::uint32_t>(cfg.get_int("disk.inner_spt", p.geometry.inner_spt));
  p.seek.single_cylinder = cfg.get_duration("disk.seek_single", p.seek.single_cylinder);
  p.seek.average = cfg.get_duration("disk.seek_avg", p.seek.average);
  p.seek.full_stroke = cfg.get_duration("disk.seek_full", p.seek.full_stroke);
  p.cache.size = cfg.get_bytes("disk.cache.size", p.cache.size);
  p.cache.num_segments =
      static_cast<std::uint32_t>(cfg.get_int("disk.cache.segments", p.cache.num_segments));
  if (cfg.contains("disk.cache.read_ahead")) {
    const auto text = cfg.get_string("disk.cache.read_ahead", "segment");
    if (text == "segment" || text == "fill") {
      p.cache.read_ahead = disk::CacheParams::kFillSegment;
    } else {
      const auto parsed = Config::parse_bytes(text);
      if (!parsed.ok()) return parsed.error();
      p.cache.read_ahead = parsed.value();
    }
  }
  p.interface_rate_bps = cfg.get_double("disk.interface_rate_mbps", 150.0) * 1e6;
  p.command_overhead = cfg.get_duration("disk.overhead", p.command_overhead);
  if (cfg.contains("disk.scheduler")) {
    const auto name = cfg.get_string("disk.scheduler", "fcfs");
    if (name == "fcfs") p.scheduler = disk::SchedulerKind::kFcfs;
    else if (name == "elevator") p.scheduler = disk::SchedulerKind::kElevator;
    else if (name == "sstf") p.scheduler = disk::SchedulerKind::kSstf;
    else return make_error("unknown disk.scheduler: '" + name + "'");
  }
  if (p.geometry.inner_spt == 0 || p.geometry.outer_spt < p.geometry.inner_spt) {
    return make_error("disk zone sectors-per-track must satisfy outer >= inner > 0");
  }
  if (p.seek.single_cylinder > p.seek.average || p.seek.average > p.seek.full_stroke) {
    return make_error("disk seek curve must satisfy single <= average <= full");
  }
  return p;
}

Result<ctrl::ControllerParams> load_controller_params(const Config& cfg) {
  ctrl::ControllerParams p = ctrl::ControllerParams::bc4810();
  p.cache_size = cfg.get_bytes("ctrl.cache", p.cache_size);
  p.prefetch = cfg.get_bytes("ctrl.prefetch", p.prefetch);
  p.transfer_rate_bps = cfg.get_double("ctrl.rate_mbps", 450.0) * 1e6;
  p.command_overhead = cfg.get_duration("ctrl.overhead", p.command_overhead);
  return p;
}

Result<core::SchedulerParams> load_scheduler_params(const Config& cfg) {
  core::SchedulerParams p;
  p.dispatch_set_size =
      static_cast<std::uint32_t>(cfg.get_int("sched.dispatch", p.dispatch_set_size));
  p.read_ahead = cfg.get_bytes("sched.read_ahead", p.read_ahead);
  p.requests_per_residency =
      static_cast<std::uint32_t>(cfg.get_int("sched.residency", p.requests_per_residency));
  p.memory_budget = cfg.get_bytes("sched.memory", p.memory_budget);
  if (cfg.contains("sched.policy")) {
    const auto name = cfg.get_string("sched.policy", "round-robin");
    if (name == "round-robin") p.policy = core::ReplacementPolicyKind::kRoundRobin;
    else if (name == "nearest-offset") p.policy = core::ReplacementPolicyKind::kNearestOffset;
    else return make_error("unknown sched.policy: '" + name + "'");
  }
  p.classifier.block_bytes =
      cfg.get_bytes("sched.classifier.block", p.classifier.block_bytes);
  p.classifier.offset_blocks = static_cast<std::uint32_t>(
      cfg.get_int("sched.classifier.offset_blocks", p.classifier.offset_blocks));
  p.classifier.detect_threshold = static_cast<std::uint32_t>(
      cfg.get_int("sched.classifier.threshold", p.classifier.detect_threshold));
  p.buffer_timeout = cfg.get_duration("sched.buffer_timeout", p.buffer_timeout);
  p.pending_timeout = cfg.get_duration("sched.pending_timeout", p.pending_timeout);
  p.stream_timeout = cfg.get_duration("sched.stream_timeout", p.stream_timeout);
  p.gc_period = cfg.get_duration("sched.gc_period", p.gc_period);
  p.materialize_buffers = cfg.get_bool("sched.materialize", p.materialize_buffers);
  const Status valid = p.validate();
  if (!valid.ok()) return valid.error();
  return p;
}

Result<node::NodeConfig> load_node_config(const Config& cfg) {
  node::NodeConfig n;
  n.num_controllers =
      static_cast<std::uint32_t>(cfg.get_int("node.controllers", n.num_controllers));
  n.disks_per_controller = static_cast<std::uint32_t>(
      cfg.get_int("node.disks_per_controller", n.disks_per_controller));
  n.seed = static_cast<std::uint64_t>(cfg.get_int("node.seed", 0)) != 0
               ? static_cast<std::uint64_t>(cfg.get_int("node.seed", 0))
               : n.seed;
  if (n.num_controllers == 0 || n.disks_per_controller == 0) {
    return make_error("node topology must have at least one controller and disk");
  }
  auto disk_params = load_disk_params(cfg);
  if (!disk_params.ok()) return disk_params.error();
  n.disk = disk_params.value();
  auto ctrl_params = load_controller_params(cfg);
  if (!ctrl_params.ok()) return ctrl_params.error();
  n.controller = ctrl_params.value();
  return n;
}

Result<experiment::ExperimentConfig> load_experiment(const Config& cfg) {
  experiment::ExperimentConfig ec;
  auto node_config = load_node_config(cfg);
  if (!node_config.ok()) return node_config.error();
  ec.node = node_config.value();

  const bool sched_enabled = cfg.get_bool("sched.enable", has_prefix(cfg, "sched."));
  if (sched_enabled) {
    auto sched = load_scheduler_params(cfg);
    if (!sched.ok()) return sched.error();
    ec.scheduler = sched.value();
  }

  const auto streams =
      static_cast<std::uint32_t>(cfg.get_int("workload.streams", 10));
  const Bytes request = cfg.get_bytes("workload.request", 64 * KiB);
  if (streams == 0) return make_error("workload.streams must be >= 1");
  if (request == 0 || request % kSectorSize != 0) {
    return make_error("workload.request must be a positive multiple of 512");
  }
  ec.streams = workload::make_uniform_streams(streams, ec.node.total_disks(),
                                              ec.node.disk.geometry.capacity, request);
  const auto outstanding =
      static_cast<std::uint32_t>(cfg.get_int("workload.outstanding", 1));
  const SimTime think = cfg.get_duration("workload.think", 0);
  const SimTime period = cfg.get_duration("workload.issue_period", 0);
  for (auto& spec : ec.streams) {
    spec.outstanding = std::max<std::uint32_t>(1, outstanding);
    spec.think_time = think;
    spec.issue_period = period;
  }
  ec.warmup = cfg.get_duration("run.warmup", ec.warmup);
  ec.measure = cfg.get_duration("run.measure", ec.measure);
  return ec;
}

}  // namespace sst::configio
