#include "stats/table.hpp"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace sst::stats {

Table::Table(std::string title) : title_(std::move(title)) {}

Table& Table::set_note(std::string note) {
  note_ = std::move(note);
  return *this;
}

Table& Table::set_columns(std::vector<std::string> names) {
  columns_ = std::move(names);
  return *this;
}

Table& Table::add_row(std::vector<Cell> cells) {
  assert(columns_.empty() || cells.size() == columns_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string cell_to_string(const Cell& cell) {
  if (const auto* s = std::get_if<std::string>(&cell)) return *s;
  if (const auto* i = std::get_if<std::int64_t>(&cell)) return std::to_string(*i);
  std::ostringstream os;
  os << std::fixed << std::setprecision(2) << std::get<double>(cell);
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(columns_.size(), 0);
  for (std::size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      cells.push_back(cell_to_string(row[c]));
      if (c < widths.size()) widths[c] = std::max(widths[c], cells.back().size());
    }
    rendered.push_back(std::move(cells));
  }

  os << "== " << title_ << " ==\n";
  if (!note_.empty()) os << note_ << "\n";
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::setw(static_cast<int>(widths[c]) + 2) << cells[c];
    }
    os << "\n";
  };
  print_row(columns_);
  std::size_t total = 0;
  for (const auto w : widths) total += w + 2;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rendered) print_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ",";
      os << cells[c];
    }
    os << "\n";
  };
  emit(columns_);
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (const auto& cell : row) cells.push_back(cell_to_string(cell));
    emit(cells);
  }
}

}  // namespace sst::stats
