// Lightweight online statistics used throughout the simulator: counters,
// throughput meters (bytes over a measurement window) and mean/min/max
// accumulators. Latency distributions live in histogram.hpp.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>

#include "common/types.hpp"

namespace sst::stats {

/// Accumulates bytes transferred; throughput is computed against an
/// explicit [start, end] window so warm-up can be excluded.
class ThroughputMeter {
 public:
  void add(Bytes bytes) { total_bytes_ += bytes; }

  void reset() { total_bytes_ = 0; }

  [[nodiscard]] Bytes total_bytes() const { return total_bytes_; }

  /// Decimal MB/s over [start, end], the unit used by every paper figure.
  [[nodiscard]] double mbps(SimTime start, SimTime end) const {
    return end > start ? mb_per_sec(total_bytes_, end - start) : 0.0;
  }

 private:
  Bytes total_bytes_ = 0;
};

/// Streaming mean/min/max (Welford variance) for arbitrary samples.
class Summary {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  void reset() { *this = Summary{}; }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Simple monotonically increasing event counter.
class Counter {
 public:
  void inc(std::uint64_t by = 1) { value_ += by; }
  void reset() { value_ = 0; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

}  // namespace sst::stats
