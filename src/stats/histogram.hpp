// Log-bucketed latency histogram with quantile estimation. Buckets grow
// geometrically from 1us so that microsecond cache hits and multi-second
// queueing delays coexist with bounded relative error (~8% per bucket).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace sst::stats {

/// One exported histogram bucket: samples in [lower_ns, upper_ns).
struct HistogramBucket {
  double lower_ns = 0.0;
  double upper_ns = 0.0;
  std::uint64_t count = 0;
};

class LatencyHistogram {
 public:
  LatencyHistogram();

  void add(SimTime latency);
  void reset();

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double mean_ms() const;
  /// Quantile in milliseconds, q in [0,1]; linear interpolation inside the
  /// winning bucket. Returns 0 when empty.
  [[nodiscard]] double quantile_ms(double q) const;
  [[nodiscard]] double p50_ms() const { return quantile_ms(0.50); }
  [[nodiscard]] double p95_ms() const { return quantile_ms(0.95); }
  [[nodiscard]] double p99_ms() const { return quantile_ms(0.99); }
  [[nodiscard]] double p999_ms() const { return quantile_ms(0.999); }
  [[nodiscard]] double max_ms() const;
  /// Sum of all samples in milliseconds (stage-sum reconciliation).
  [[nodiscard]] double total_ms() const { return sum_ns_ / 1e6; }

  /// Merge another histogram into this one (same fixed bucketing).
  void merge(const LatencyHistogram& other);
  /// Remove `earlier`'s samples, leaving the delta window. `earlier` must be
  /// a prefix of this histogram (a snapshot taken before more add() calls);
  /// anything else clamps per bucket to zero. The recorded maximum is not
  /// separable, so the delta keeps the overall max — quantiles of the top
  /// bucket are clamped against it, a conservative approximation for the
  /// rolling-percentile gauges.
  void subtract(const LatencyHistogram& earlier);

  // Bucket iteration/export API (used by the metrics exporter).
  [[nodiscard]] static std::size_t bucket_count() { return kBuckets; }
  /// Bounds and count of bucket `index` (index < bucket_count()).
  [[nodiscard]] HistogramBucket bucket(std::size_t index) const;
  /// Only the buckets holding samples; their counts sum to count().
  [[nodiscard]] std::vector<HistogramBucket> nonzero_buckets() const;

  [[nodiscard]] std::string debug_string() const;

 private:
  [[nodiscard]] static std::size_t bucket_for(SimTime latency);
  [[nodiscard]] static double bucket_lower_ns(std::size_t index);
  [[nodiscard]] static double bucket_upper_ns(std::size_t index);

  // ~12% geometric growth from 1us to >1000s needs < 256 buckets.
  static constexpr std::size_t kBuckets = 256;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ns_ = 0.0;
  SimTime max_ns_ = 0;
};

}  // namespace sst::stats
