#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace sst::stats {

namespace {
// Bucket boundaries: bucket i covers [kBase * kGrowth^i, kBase * kGrowth^(i+1)).
constexpr double kBaseNs = 1'000.0;  // 1us
constexpr double kGrowth = 1.12;
const double kLogGrowth = std::log(kGrowth);
}  // namespace

LatencyHistogram::LatencyHistogram() : buckets_(kBuckets, 0) {}

std::size_t LatencyHistogram::bucket_for(SimTime latency) {
  if (latency < static_cast<SimTime>(kBaseNs)) return 0;
  const double ratio = static_cast<double>(latency) / kBaseNs;
  const auto idx = static_cast<std::size_t>(std::log(ratio) / kLogGrowth) + 1;
  return std::min(idx, kBuckets - 1);
}

double LatencyHistogram::bucket_lower_ns(std::size_t index) {
  if (index == 0) return 0.0;
  return kBaseNs * std::pow(kGrowth, static_cast<double>(index - 1));
}

double LatencyHistogram::bucket_upper_ns(std::size_t index) {
  return kBaseNs * std::pow(kGrowth, static_cast<double>(index));
}

void LatencyHistogram::add(SimTime latency) {
  ++buckets_[bucket_for(latency)];
  ++count_;
  sum_ns_ += static_cast<double>(latency);
  max_ns_ = std::max(max_ns_, latency);
}

void LatencyHistogram::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ns_ = 0.0;
  max_ns_ = 0;
}

double LatencyHistogram::mean_ms() const {
  return count_ ? sum_ns_ / static_cast<double>(count_) / 1e6 : 0.0;
}

double LatencyHistogram::max_ms() const { return static_cast<double>(max_ns_) / 1e6; }

double LatencyHistogram::quantile_ms(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  double seen = 0.0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const double in_bucket = static_cast<double>(buckets_[i]);
    if (in_bucket == 0.0) continue;
    if (seen + in_bucket >= target) {
      const double frac = in_bucket > 0 ? (target - seen) / in_bucket : 0.0;
      const double lo = bucket_lower_ns(i);
      const double hi = std::min(bucket_upper_ns(i), static_cast<double>(max_ns_));
      return (lo + std::clamp(frac, 0.0, 1.0) * (std::max(hi, lo) - lo)) / 1e6;
    }
    seen += in_bucket;
  }
  return static_cast<double>(max_ns_) / 1e6;
}

HistogramBucket LatencyHistogram::bucket(std::size_t index) const {
  return {bucket_lower_ns(index), bucket_upper_ns(index), buckets_[index]};
}

std::vector<HistogramBucket> LatencyHistogram::nonzero_buckets() const {
  std::vector<HistogramBucket> out;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (buckets_[i] != 0) out.push_back(bucket(i));
  }
  return out;
}

void LatencyHistogram::subtract(const LatencyHistogram& earlier) {
  for (std::size_t i = 0; i < kBuckets; ++i) {
    buckets_[i] -= std::min(buckets_[i], earlier.buckets_[i]);
  }
  count_ = count_ >= earlier.count_ ? count_ - earlier.count_ : 0;
  sum_ns_ = std::max(sum_ns_ - earlier.sum_ns_, 0.0);
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ns_ += other.sum_ns_;
  max_ns_ = std::max(max_ns_, other.max_ns_);
}

std::string LatencyHistogram::debug_string() const {
  std::ostringstream os;
  os << "LatencyHistogram{n=" << count_ << ", mean=" << mean_ms() << "ms"
     << ", p50=" << p50_ms() << "ms, p95=" << p95_ms() << "ms, p99=" << p99_ms()
     << "ms, max=" << max_ms() << "ms}";
  return os.str();
}

}  // namespace sst::stats
