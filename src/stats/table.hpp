// Result tables: the experiment harness and every bench binary print their
// figures through this formatter so output is uniform and easy to diff
// against EXPERIMENTS.md.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace sst::stats {

/// A cell is a string, an integer, or a double (printed with 2 decimals).
using Cell = std::variant<std::string, std::int64_t, double>;

class Table {
 public:
  explicit Table(std::string title);

  Table& set_note(std::string note);
  Table& set_columns(std::vector<std::string> names);
  Table& add_row(std::vector<Cell> cells);

  [[nodiscard]] const std::string& title() const { return title_; }
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] const std::vector<Cell>& row(std::size_t i) const { return rows_[i]; }
  [[nodiscard]] const std::vector<std::string>& columns() const { return columns_; }

  /// Render as an aligned ASCII table.
  void print(std::ostream& os) const;
  /// Render as CSV (header + rows), for plotting.
  void print_csv(std::ostream& os) const;

 private:
  std::string title_;
  std::string note_;
  std::vector<std::string> columns_;
  std::vector<std::vector<Cell>> rows_;
};

[[nodiscard]] std::string cell_to_string(const Cell& cell);

}  // namespace sst::stats
