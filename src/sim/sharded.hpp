// Sharded parallel simulation core: N independent Simulators (one per
// device-stack shard, each with its own timer wheel, event slab and clock)
// advanced in lockstep windows by a conservative-lookahead barrier.
//
// Synchronization model (classic conservative parallel DES):
//
//   - Time is cut into windows [W, W + L) where L is the lookahead. Every
//     shard runs its local events up to the window end on a worker of the
//     engine's thread pool, with no locks: during a window a shard's
//     Simulator and everything it owns are touched only by that worker.
//   - Cross-shard interactions go through per-(sender, receiver) FIFO
//     mailboxes via post(). The safety contract is that a message sent at
//     local time t carries a delivery time >= t + L (the interconnect
//     latency *is* the lookahead), so a message produced anywhere inside
//     window [W, W + L) is delivered at or after W + L — never inside the
//     window that produced it.
//   - At the barrier (ThreadPool::wait_idle), every shard's clock sits at
//     exactly the window end; the coordinator *stages* each mailbox with a
//     buffer swap (O(shards^2) pointer work, independent of traffic) and
//     opens the next window. Each shard then drains its own staged inboxes
//     in a fixed sender order at the top of its window — the per-envelope
//     wheel inserts run in parallel on the receivers instead of
//     serializing on the coordinator. The pool's submit/wait_idle pair
//     provides the happens-before edges, so no atomics are needed on the
//     mailboxes: senders append to `incoming` during a window, the
//     coordinator swaps `incoming`/`ready` between windows, receivers
//     consume `ready` during the next window.
//
// Determinism: each shard's intra-window execution is sequential and
// seeded; mailboxes are FIFO per pair and drained in a fixed order, so the
// tie-break sequence numbers assigned at the receiver are reproducible.
// The same seed and shard count always yields the same results — windows,
// event order, everything. A different shard count is a different (but
// equally deterministic) interleaving.
//
// shards == 1 degrades to a plain pass-through around one Simulator with
// no pool and no barrier, byte-identical to using the Simulator directly.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/thread_pool.hpp"
#include "common/types.hpp"
#include "sim/simulator.hpp"

namespace sst::sim {

/// Barrier/mailbox counters for one ShardedEngine run.
struct ShardedStats {
  std::uint64_t windows = 0;             ///< lookahead windows executed
  std::uint64_t cross_shard_events = 0;  ///< mailbox envelopes delivered
  /// Envelopes whose delivery time was already in the receiver's past at
  /// drain time (a violated lookahead contract); they are clamped to the
  /// barrier time instead of dropped. Always 0 for well-formed senders.
  std::uint64_t horizon_violations = 0;
};

class ShardedEngine {
 public:
  /// `lookahead` must be > 0 when `shards` > 1; it is both the window
  /// length and the minimum cross-shard latency senders must respect.
  ShardedEngine(std::uint32_t shards, SimTime lookahead);

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  [[nodiscard]] std::uint32_t shard_count() const {
    return static_cast<std::uint32_t>(shards_.size());
  }
  [[nodiscard]] SimTime lookahead() const { return lookahead_; }
  /// The global time floor: every shard's clock is >= now() (exactly ==
  /// between windows).
  [[nodiscard]] SimTime now() const { return now_; }

  [[nodiscard]] Simulator& shard(std::uint32_t index) { return *shards_[index]; }
  [[nodiscard]] const Simulator& shard(std::uint32_t index) const {
    return *shards_[index];
  }

  /// Send an event across shards: `fn` runs on shard `to` at time `when`.
  /// May be called from shard `from`'s executing events during a window, or
  /// from the coordinator thread between windows (setup, drains) — never
  /// from any other shard's context. For `from != to` the contract is
  /// `when >= sender_now + lookahead()`; later deliveries clamp to the
  /// barrier time and count as horizon_violations. `from == to` schedules
  /// directly (an ordinary local event, no mailbox, no lookahead floor).
  void post(std::uint32_t from, std::uint32_t to, SimTime when, detail::EventFn fn);

  /// Advance every shard to exactly `deadline` (inclusive of events at
  /// `deadline`, like Simulator::run_until), running windows of
  /// `lookahead()` with mailbox drains at each barrier.
  void run_until(SimTime deadline);

  [[nodiscard]] const ShardedStats& stats() const { return stats_; }
  /// Executed events summed over all shards.
  [[nodiscard]] std::uint64_t executed_events() const;
  [[nodiscard]] std::uint64_t wheel_cascades() const;

 private:
  struct Envelope {
    SimTime when = 0;
    detail::EventFn fn;
  };

  /// Double-buffered SPSC channel: the sender's worker appends to
  /// `incoming` during a window, the coordinator swaps the buffers at the
  /// barrier, the receiver consumes `ready` during the next window. The
  /// swap recycles buffer capacity, so steady-state traffic allocates
  /// nothing.
  struct Mailbox {
    std::vector<Envelope> incoming;
    std::vector<Envelope> ready;
  };

  /// Barrier step (coordinator only): swap every non-empty `incoming`
  /// buffer into `ready` for the next window; returns envelopes staged.
  std::size_t stage_mailboxes();
  /// Window step (receiver's worker): schedule every staged envelope for
  /// shard `to` in fixed sender order, clamping deliveries that violate
  /// the lookahead contract to `drain_time` (the barrier they crossed).
  void drain_inbox(std::uint32_t to, SimTime drain_time);

  SimTime lookahead_;
  SimTime now_ = 0;
  std::vector<std::unique_ptr<Simulator>> shards_;
  /// mail_[from * shard_count + to]; see Mailbox for the access protocol.
  std::vector<Mailbox> mail_;
  /// Per-receiver horizon-violation counts, folded into stats_ at each
  /// barrier (receivers count concurrently during a window).
  std::vector<std::uint64_t> violations_;
  std::unique_ptr<ThreadPool> pool_;  ///< absent for shards == 1
  ShardedStats stats_;
};

}  // namespace sst::sim
