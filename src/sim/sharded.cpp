#include "sim/sharded.hpp"

#include <algorithm>
#include <cassert>

namespace sst::sim {

ShardedEngine::ShardedEngine(std::uint32_t shards, SimTime lookahead)
    : lookahead_(lookahead) {
  assert(shards >= 1);
  assert(shards == 1 || lookahead > 0);
  shards_.reserve(shards);
  for (std::uint32_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Simulator>());
  }
  mail_.resize(static_cast<std::size_t>(shards) * shards);
  violations_.resize(shards, 0);
  if (shards > 1) pool_ = std::make_unique<ThreadPool>(shards);
}

void ShardedEngine::post(std::uint32_t from, std::uint32_t to, SimTime when,
                         detail::EventFn fn) {
  assert(from < shard_count() && to < shard_count());
  if (from == to) {
    shards_[to]->schedule_at(std::max(when, shards_[to]->now()), std::move(fn));
    return;
  }
  mail_[static_cast<std::size_t>(from) * shard_count() + to].incoming.push_back(
      Envelope{when, std::move(fn)});
}

std::size_t ShardedEngine::stage_mailboxes() {
  std::size_t staged = 0;
  for (Mailbox& box : mail_) {
    if (box.incoming.empty()) continue;
    assert(box.ready.empty());  // the receiver consumed the last window's
    std::swap(box.incoming, box.ready);
    staged += box.ready.size();
  }
  stats_.cross_shard_events += staged;
  return staged;
}

void ShardedEngine::drain_inbox(std::uint32_t to, SimTime drain_time) {
  // Fixed sender order per receiver: the sequence numbers the receiver's
  // Simulator hands out — and with them every same-timestamp tie-break —
  // are a pure function of the mailbox contents.
  for (std::uint32_t from = 0; from < shard_count(); ++from) {
    auto& box = mail_[static_cast<std::size_t>(from) * shard_count() + to];
    for (Envelope& env : box.ready) {
      SimTime when = env.when;
      if (when < drain_time) {
        ++violations_[to];
        when = drain_time;
      }
      shards_[to]->schedule_at(when, std::move(env.fn));
    }
    box.ready.clear();
  }
}

void ShardedEngine::run_until(SimTime deadline) {
  if (shard_count() == 1) {
    shards_[0]->run_until(deadline);
    now_ = deadline;
    return;
  }
  assert(deadline >= now_);
  while (true) {
    const SimTime window_start = now_;
    const SimTime window_end = std::min(deadline, now_ + lookahead_);
    for (std::uint32_t k = 0; k < shard_count(); ++k) {
      Simulator* sim = shards_[k].get();
      pool_->submit([this, k, sim, window_start, window_end]() {
        drain_inbox(k, window_start);
        sim->run_until(window_end);
      });
    }
    pool_->wait_idle();
    ++stats_.windows;
    now_ = window_end;
    const std::size_t staged = stage_mailboxes();
    stats_.horizon_violations = 0;
    for (const std::uint64_t v : violations_) stats_.horizon_violations += v;
    // The final window repeats (zero-width) while staged envelopes keep
    // landing events at exactly `deadline`, matching Simulator::run_until's
    // deadline-inclusive contract. Conservative senders post >= t + L, so
    // each repeat strictly shrinks the deliverable set and this terminates.
    if (window_end == deadline && staged == 0) break;
  }
}

std::uint64_t ShardedEngine::executed_events() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->executed_events();
  return total;
}

std::uint64_t ShardedEngine::wheel_cascades() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->wheel_cascades();
  return total;
}

}  // namespace sst::sim
