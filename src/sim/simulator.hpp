// Discrete-event simulation core.
//
// The whole I/O hierarchy (disks, controllers, the host scheduler, workload
// generators) is simulated as callbacks scheduled on one Simulator. Events
// at equal timestamps fire in scheduling order (a monotone sequence number
// breaks ties), which keeps runs deterministic.
//
// The event store is a pooled slab: each scheduled event occupies a reusable
// slot holding its callback inline (no heap allocation for closures up to
// EventFn::kInlineBytes), and the priority queue orders plain {time, seq,
// slot, generation} records. Handles address events by (slot, generation),
// so a recycled slot invalidates stale handles without shared ownership.
// Steady-state schedule/fire/cancel therefore performs no per-event heap
// allocation.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <new>
#include <queue>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace sst::sim {

namespace detail {

/// Type-erased move-only `void()` callable with inline storage. Closures up
/// to kInlineBytes (covering every callback in the simulator's hot paths)
/// live inside the object; larger ones fall back to a single heap
/// allocation.
class EventFn {
 public:
  static constexpr std::size_t kInlineBytes = 64;

  EventFn() noexcept = default;

  template <typename F, typename D = std::decay_t<F>,
            std::enable_if_t<!std::is_same_v<D, EventFn> && std::is_invocable_v<D&>, int> = 0>
  // NOLINTNEXTLINE(google-explicit-constructor) — callable adaptor by design
  EventFn(F&& fn) {
    if constexpr (sizeof(D) <= kInlineBytes && alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(fn)));
      ops_ = &kHeapOps<D>;
    }
  }

  EventFn(EventFn&& other) noexcept { move_from(other); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { reset(); }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()() {
    assert(ops_ != nullptr);
    ops_->invoke(storage_);
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Move-construct the callable at `dst` from `src`, destroying `src`.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void* storage);
  };

  template <typename D>
  static constexpr Ops kInlineOps{
      [](void* s) { (*std::launder(reinterpret_cast<D*>(s)))(); },
      [](void* dst, void* src) {
        D* from = std::launder(reinterpret_cast<D*>(src));
        ::new (dst) D(std::move(*from));
        from->~D();
      },
      [](void* s) { std::launder(reinterpret_cast<D*>(s))->~D(); }};

  template <typename D>
  static constexpr Ops kHeapOps{
      [](void* s) { (**std::launder(reinterpret_cast<D**>(s)))(); },
      [](void* dst, void* src) {
        ::new (dst) D*(*std::launder(reinterpret_cast<D**>(src)));
      },
      [](void* s) { delete *std::launder(reinterpret_cast<D**>(s)); }};

  void move_from(EventFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace detail

class Simulator;

/// Handle used to cancel a scheduled event. Cancellation is lazy: the queue
/// record stays until popped, but the callback is released immediately.
/// Handles are small value types addressing a slab slot by generation, so
/// they stay safely inert after the event fires or is cancelled (the slot's
/// generation moves on). The handle must not outlive the Simulator itself.
class EventHandle {
 public:
  EventHandle() = default;

  /// True while the event has neither fired nor been cancelled.
  [[nodiscard]] bool pending() const;

  void cancel();

 private:
  friend class Simulator;
  EventHandle(Simulator* sim, std::uint32_t slot, std::uint32_t generation)
      : sim_(sim), slot_(slot), generation_(generation) {}

  Simulator* sim_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t generation_ = 0;
};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `fn` to run at absolute time `when` (must be >= now()).
  EventHandle schedule_at(SimTime when, detail::EventFn fn);

  /// Schedule `fn` to run `delay` nanoseconds from now.
  EventHandle schedule_after(SimTime delay, detail::EventFn fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Run until the event queue drains or `deadline` is reached, whichever
  /// comes first. Events scheduled exactly at the deadline still run.
  /// Returns the number of events executed. The clock ends at `deadline`
  /// even if the queue drains earlier, so consecutive run_until calls see
  /// contiguous time.
  std::uint64_t run_until(SimTime deadline);

  /// Run until the event queue drains completely.
  std::uint64_t run();

  /// Execute exactly one event if any is pending. Returns false when empty.
  bool step();

  [[nodiscard]] bool empty() const { return live_count_ == 0; }
  /// Scheduled-and-not-cancelled events still waiting to fire.
  [[nodiscard]] std::size_t pending_events() const { return live_count_; }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

 private:
  friend class EventHandle;

  static constexpr std::uint32_t kNoSlot = UINT32_MAX;

  /// One slab slot: holds the callback and the generation that outstanding
  /// handles must match. Recycled through an intrusive free list.
  struct Slot {
    detail::EventFn fn;
    std::uint32_t generation = 0;
    std::uint32_t next_free = kNoSlot;
    bool alive = false;
  };

  /// Queue records are plain data; the callback stays in the slab so heap
  /// sift operations move 24 bytes instead of a closure.
  struct QueuedEvent {
    SimTime when = 0;
    std::uint64_t seq = 0;
    std::uint32_t slot = 0;
    std::uint32_t generation = 0;
  };
  struct Later {
    bool operator()(const QueuedEvent& a, const QueuedEvent& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t index);

  /// Pops cancelled events off the top so step()/run_until see live ones.
  void drop_dead_events();

  [[nodiscard]] bool event_pending(std::uint32_t slot, std::uint32_t generation) const {
    return slot < slots_.size() && slots_[slot].generation == generation &&
           slots_[slot].alive;
  }
  void cancel_event(std::uint32_t slot, std::uint32_t generation);

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t live_count_ = 0;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;
  std::priority_queue<QueuedEvent, std::vector<QueuedEvent>, Later> queue_;
};

inline bool EventHandle::pending() const {
  return sim_ != nullptr && sim_->event_pending(slot_, generation_);
}

inline void EventHandle::cancel() {
  if (sim_ != nullptr) sim_->cancel_event(slot_, generation_);
}

}  // namespace sst::sim
