// Discrete-event simulation core.
//
// The whole I/O hierarchy (disks, controllers, the host scheduler, workload
// generators) is simulated as callbacks scheduled on one Simulator. Events
// at equal timestamps fire in scheduling order (a monotone sequence number
// breaks ties), which keeps runs deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/types.hpp"

namespace sst::sim {

namespace detail {
/// State shared between the queue entry and any outstanding handle. The
/// live-event counter lives here too so cancellation from a handle keeps
/// Simulator::pending_events() exact even though the entry is popped lazily.
struct EventState {
  bool alive = true;
  std::shared_ptr<std::size_t> live_count;
};
}  // namespace detail

/// Handle used to cancel a scheduled event. Cancellation is lazy: the event
/// stays in the queue but its callback is skipped when popped.
class EventHandle {
 public:
  EventHandle() = default;

  /// True while the event has neither fired nor been cancelled.
  [[nodiscard]] bool pending() const { return state_ && state_->alive; }

  void cancel() {
    if (state_ && state_->alive) {
      state_->alive = false;
      --*state_->live_count;
    }
  }

 private:
  friend class Simulator;
  explicit EventHandle(std::shared_ptr<detail::EventState> state) : state_(std::move(state)) {}
  std::shared_ptr<detail::EventState> state_;
};

class Simulator {
 public:
  Simulator() : live_count_(std::make_shared<std::size_t>(0)) {}
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `fn` to run at absolute time `when` (must be >= now()).
  EventHandle schedule_at(SimTime when, std::function<void()> fn);

  /// Schedule `fn` to run `delay` nanoseconds from now.
  EventHandle schedule_after(SimTime delay, std::function<void()> fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Run until the event queue drains or `deadline` is reached, whichever
  /// comes first. Events scheduled exactly at the deadline still run.
  /// Returns the number of events executed. The clock ends at `deadline`
  /// even if the queue drains earlier, so consecutive run_until calls see
  /// contiguous time.
  std::uint64_t run_until(SimTime deadline);

  /// Run until the event queue drains completely.
  std::uint64_t run();

  /// Execute exactly one event if any is pending. Returns false when empty.
  bool step();

  [[nodiscard]] bool empty() const { return *live_count_ == 0; }
  /// Scheduled-and-not-cancelled events still waiting to fire.
  [[nodiscard]] std::size_t pending_events() const { return *live_count_; }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

 private:
  struct Event {
    SimTime when = 0;
    std::uint64_t seq = 0;
    std::function<void()> fn;
    std::shared_ptr<detail::EventState> state;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  /// Pops cancelled events off the top so step()/run_until see live ones.
  void drop_dead_events();

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::shared_ptr<std::size_t> live_count_;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace sst::sim
