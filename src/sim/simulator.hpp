// Discrete-event simulation core.
//
// The whole I/O hierarchy (disks, controllers, the host scheduler, workload
// generators) is simulated as callbacks scheduled on one Simulator. Events
// at equal timestamps fire in scheduling order (a monotone sequence number
// breaks ties), which keeps runs deterministic.
//
// The event store is a pooled slab: each scheduled event occupies a reusable
// slot holding its callback inline (no heap allocation for closures up to
// EventFn::kInlineBytes). Pending events are indexed by a hierarchical timer
// wheel — kLevels levels of kSlots buckets, one 64-bit occupancy bitmap per
// level — whose buckets are intrusive doubly-linked lists threaded through
// the slab slots, so schedule, cancel (O(1) unlink) and dispatch perform no
// per-event heap allocation and no comparison-sort maintenance. Events
// beyond the wheel horizon (2^48 ns ≈ 3 days of sim time) overflow into a
// small binary min-heap. Same-timestamp events are collected into one batch
// per tick, ordered by sequence number, and dispatched back to back.
// Handles address events by (slot, generation), so a recycled slot
// invalidates stale handles without shared ownership.
//
// Simulator is the simulated implementation of exec::ExecutionContext
// (exec/execution_context.hpp): every layer above the block-device seam
// schedules against the abstract context, and this engine — or the
// wall-clock RealContext — supplies the time base. The class is `final` so
// call sites holding a concrete Simulator& (the engine's own hot loops,
// microbenchmarks, the sharded coordinator) still devirtualize now() and
// schedule_at.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <queue>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "exec/execution_context.hpp"
#include "exec/task_fn.hpp"

namespace sst::sim {

namespace detail {

/// Historical name for the type-erased event callable; the implementation
/// moved to exec::TaskFn so both execution contexts share one slab-friendly
/// representation.
using EventFn = exec::TaskFn;

}  // namespace detail

/// Handle used to cancel a scheduled event. Cancellation of a wheel-resident
/// event unlinks it in O(1) and recycles its slot immediately; events parked
/// in the overflow heap or the current dispatch batch release their callback
/// immediately and leave a stale record that is skipped when reached.
/// EventHandle is the execution-context TaskHandle: small value type
/// addressing a slab slot by generation, safely inert after the event fires
/// or is cancelled. The handle must not outlive the Simulator itself.
using EventHandle = exec::TaskHandle;

class Simulator final : public exec::ExecutionContext {
 public:
  Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] SimTime now() const override { return now_; }

  /// Schedule `fn` to run at absolute time `when` (must be >= now()).
  EventHandle schedule_at(SimTime when, detail::EventFn fn) override;

  /// Schedule `fn` to run `delay` nanoseconds from now.
  EventHandle schedule_after(SimTime delay, detail::EventFn fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Run until the event queue drains or `deadline` is reached, whichever
  /// comes first. Events scheduled exactly at the deadline still run.
  /// Returns the number of events executed. The clock ends at `deadline`
  /// even if the queue drains earlier, so consecutive run_until calls see
  /// contiguous time.
  std::uint64_t run_until(SimTime deadline);

  /// Run until the event queue drains completely.
  std::uint64_t run();

  /// Execute exactly one event if any is pending. Returns false when empty.
  bool step();

  [[nodiscard]] bool empty() const { return live_count_ == 0; }
  /// Scheduled-and-not-cancelled events still waiting to fire.
  [[nodiscard]] std::size_t pending_events() const { return live_count_; }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

  /// Events relocated from a higher wheel level toward level 0 as the clock
  /// advanced (each event cascades at most kLevels-1 times in its life).
  [[nodiscard]] std::uint64_t wheel_cascades() const { return cascades_; }
  /// Events scheduled beyond the wheel horizon into the overflow heap.
  [[nodiscard]] std::uint64_t overflow_events() const { return overflowed_; }

 private:
  static constexpr std::uint32_t kNoSlot = UINT32_MAX;
  /// Wheel geometry: kLevels levels of 64 buckets; level L buckets are
  /// 64^L ns wide, so the wheel spans 2^(6*kLevels) ns before the overflow
  /// heap takes over.
  static constexpr std::uint32_t kSlotBits = 6;
  static constexpr std::uint32_t kSlots = 1u << kSlotBits;
  static constexpr std::uint32_t kLevels = 8;
  static constexpr std::uint64_t kBucketMask = kSlots - 1;

  /// Where a slot currently lives; drives the cancel/unlink path.
  enum class Where : std::uint8_t { kFree, kWheel, kHeap, kBatch };

  /// One slab slot: the callback, the generation outstanding handles must
  /// match, the event's key, and the intrusive wheel-bucket linkage. Free
  /// slots chain through `next`.
  struct Slot {
    detail::EventFn fn;
    SimTime when = 0;
    std::uint64_t seq = 0;
    std::uint32_t next = kNoSlot;
    std::uint32_t prev = kNoSlot;
    std::uint32_t generation = 0;
    std::uint8_t level = 0;
    std::uint8_t bucket = 0;
    Where where = Where::kFree;
    bool alive = false;
  };

  /// Overflow-heap records are plain data; the callback stays in the slab.
  struct HeapEntry {
    SimTime when = 0;
    std::uint64_t seq = 0;
    std::uint32_t slot = 0;
    std::uint32_t generation = 0;
  };
  struct Later {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  /// A batch member: one event of the tick being dispatched, ordered by seq.
  struct BatchEntry {
    std::uint64_t seq = 0;
    std::uint32_t slot = 0;
    std::uint32_t generation = 0;
  };

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t index);

  /// Link `index` into the wheel bucket or overflow heap for `when`.
  void enqueue_slot(std::uint32_t index, SimTime when);
  /// Remove a wheel-resident slot from its bucket list.
  void unlink(std::uint32_t index);

  /// Drop cancelled records off the top of the overflow heap.
  void purge_dead_heap_tops();
  /// Gather every event due at the earliest pending time into batch_,
  /// sorted by seq, and advance the clock and wheel cursor to it — all in
  /// one pass over the one bucket that holds the minimum (due events go
  /// straight into the batch; the rest cascade toward level 0). False when
  /// nothing is pending at or before `deadline`; the structure is left
  /// untouched in that case.
  bool collect_batch(SimTime deadline);
  /// Fire batch members from batch_pos_ on; stops after `limit` live events.
  std::uint64_t fire_batch(std::uint64_t limit);

  [[nodiscard]] bool event_pending(std::uint32_t slot, std::uint32_t generation) const {
    return slot < slots_.size() && slots_[slot].generation == generation &&
           slots_[slot].alive;
  }
  void cancel_event(std::uint32_t slot, std::uint32_t generation);

  /// exec::TaskHandle support: handles minted by schedule_at resolve here.
  [[nodiscard]] bool task_pending(std::uint32_t slot,
                                  std::uint32_t generation) const override {
    return event_pending(slot, generation);
  }
  void cancel_task(std::uint32_t slot, std::uint32_t generation) override {
    cancel_event(slot, generation);
  }

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t cascades_ = 0;
  std::uint64_t overflowed_ = 0;
  std::size_t live_count_ = 0;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;

  /// Bucket list heads and per-level occupancy bitmaps (bit b = bucket b
  /// non-empty). heads_[L][b] indexes the first slot of the bucket's list.
  std::uint64_t occupancy_[kLevels] = {};
  std::uint32_t heads_[kLevels][kSlots];
  /// Wheel cursor: the time the bucket layout is relative to. Always the
  /// timestamp of the batch being dispatched (== now_ while events fire).
  SimTime cur_tick_ = 0;

  std::priority_queue<HeapEntry, std::vector<HeapEntry>, Later> overflow_;

  /// The current same-timestamp dispatch batch (sorted by seq) and the next
  /// member to fire. Reused across ticks; no steady-state allocation.
  std::vector<BatchEntry> batch_;
  std::size_t batch_pos_ = 0;
};

}  // namespace sst::sim
