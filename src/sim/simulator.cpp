#include "sim/simulator.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace sst::sim {

namespace {

constexpr SimTime kMaxTime = UINT64_MAX;

/// Wheel level an event at `when` belongs to, relative to cursor `cur`:
/// the level of the highest bit in which the two differ. Equal times are
/// level 0; level >= kLevels means beyond the wheel horizon.
inline std::uint32_t level_of(SimTime when, SimTime cur, std::uint32_t slot_bits) {
  const std::uint64_t diff = when ^ cur;
  if (diff == 0) return 0;
  return (63u - static_cast<std::uint32_t>(std::countl_zero(diff))) / slot_bits;
}

}  // namespace

Simulator::Simulator() {
  for (auto& level : heads_) {
    std::fill(std::begin(level), std::end(level), kNoSlot);
  }
  // One-time capacity so a rare wide tick (many same-timestamp events) never
  // allocates on the dispatch path.
  batch_.reserve(kSlots * 4);
}

std::uint32_t Simulator::acquire_slot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t index = free_head_;
    free_head_ = slots_[index].next;
    return index;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Simulator::release_slot(std::uint32_t index) {
  Slot& slot = slots_[index];
  slot.fn.reset();
  slot.alive = false;
  slot.where = Where::kFree;
  ++slot.generation;  // invalidates every outstanding handle and queue record
  slot.next = free_head_;
  free_head_ = index;
}

void Simulator::enqueue_slot(std::uint32_t index, SimTime when) {
  Slot& slot = slots_[index];
  const std::uint32_t level = level_of(when, cur_tick_, kSlotBits);
  if (level >= kLevels) {
    slot.where = Where::kHeap;
    overflow_.push(HeapEntry{when, slot.seq, index, slot.generation});
    ++overflowed_;
    return;
  }
  const auto bucket =
      static_cast<std::uint32_t>((when >> (level * kSlotBits)) & kBucketMask);
  slot.level = static_cast<std::uint8_t>(level);
  slot.bucket = static_cast<std::uint8_t>(bucket);
  slot.where = Where::kWheel;
  slot.prev = kNoSlot;
  slot.next = heads_[level][bucket];
  if (slot.next != kNoSlot) slots_[slot.next].prev = index;
  heads_[level][bucket] = index;
  occupancy_[level] |= std::uint64_t{1} << bucket;
}

void Simulator::unlink(std::uint32_t index) {
  Slot& slot = slots_[index];
  assert(slot.where == Where::kWheel);
  if (slot.prev != kNoSlot) {
    slots_[slot.prev].next = slot.next;
  } else {
    heads_[slot.level][slot.bucket] = slot.next;
  }
  if (slot.next != kNoSlot) slots_[slot.next].prev = slot.prev;
  if (heads_[slot.level][slot.bucket] == kNoSlot) {
    occupancy_[slot.level] &= ~(std::uint64_t{1} << slot.bucket);
  }
}

EventHandle Simulator::schedule_at(SimTime when, detail::EventFn fn) {
  assert(when >= now_ && "cannot schedule into the past");
  const std::uint32_t index = acquire_slot();
  Slot& slot = slots_[index];
  slot.fn = std::move(fn);
  slot.when = when;
  slot.seq = next_seq_++;
  slot.alive = true;
  ++live_count_;
  const std::uint32_t generation = slot.generation;
  enqueue_slot(index, when);
  return make_handle(index, generation);
}

void Simulator::cancel_event(std::uint32_t index, std::uint32_t generation) {
  if (index >= slots_.size()) return;
  Slot& slot = slots_[index];
  if (slot.generation != generation || !slot.alive) return;
  if (slot.where == Where::kWheel) unlink(index);
  // Heap/batch residents leave a stale record behind; the generation bump
  // from release_slot makes it skippable when reached.
  --live_count_;
  release_slot(index);
}

void Simulator::purge_dead_heap_tops() {
  while (!overflow_.empty() &&
         slots_[overflow_.top().slot].generation != overflow_.top().generation) {
    overflow_.pop();
  }
}

bool Simulator::collect_batch(SimTime deadline) {
  assert(batch_pos_ >= batch_.size() && "previous batch not fully consumed");
  if (live_count_ == 0) return false;
  purge_dead_heap_tops();

  // The earliest wheel event lives in the lowest occupied bucket of the
  // first non-empty level: all level-L events share the cursor's digits
  // above L, so buckets order them, and level-L events all lie beyond the
  // level-(L-1) window.
  std::uint32_t level = 0;
  while (level < kLevels && occupancy_[level] == 0) ++level;

  SimTime when = 0;
  bool have = false;
  // A level > 0 bucket spans many timestamps and its list is unordered, so
  // finding the minimum needs a walk anyway; detach the whole list up front
  // and redistribute it after the clock moves (due events go straight into
  // the batch, the rest re-enqueue at a lower level).
  std::uint32_t detached = kNoSlot;
  std::uint32_t det_level = 0;
  std::uint32_t det_bucket = 0;

  if (level < kLevels) {
    const auto bucket =
        static_cast<std::uint32_t>(std::countr_zero(occupancy_[level]));
    if (level == 0) {
      // A level-0 bucket maps to exactly one timestamp.
      when = (cur_tick_ & ~kBucketMask) | bucket;
    } else {
      det_level = level;
      det_bucket = bucket;
      detached = heads_[level][bucket];
      heads_[level][bucket] = kNoSlot;
      occupancy_[level] &= ~(std::uint64_t{1} << bucket);
      when = slots_[detached].when;
      for (std::uint32_t node = slots_[detached].next; node != kNoSlot;
           node = slots_[node].next) {
        when = std::min(when, slots_[node].when);
      }
    }
    have = true;
  }
  if (!overflow_.empty() && (!have || overflow_.top().when < when)) {
    when = overflow_.top().when;
    have = true;
  }
  if (!have || when > deadline) {
    if (detached != kNoSlot) {
      // Nothing moved inside the list; reattaching the head undoes the
      // detach exactly.
      heads_[det_level][det_bucket] = detached;
      occupancy_[det_level] |= std::uint64_t{1} << det_bucket;
    }
    return false;
  }

  assert(when >= cur_tick_ && when >= now_);
  cur_tick_ = when;
  now_ = when;
  batch_.clear();
  batch_pos_ = 0;

  while (detached != kNoSlot) {
    Slot& slot = slots_[detached];
    const std::uint32_t next = slot.next;
    if (slot.when == when) {
      slot.where = Where::kBatch;
      batch_.push_back(BatchEntry{slot.seq, detached, slot.generation});
    } else {
      enqueue_slot(detached, slot.when);
      ++cascades_;
    }
    detached = next;
  }
  // Drain the due level-0 bucket (the level == 0 path above; also events
  // scheduled at the current timestamp during the previous batch).
  const auto bucket0 = static_cast<std::uint32_t>(when & kBucketMask);
  if ((occupancy_[0] & (std::uint64_t{1} << bucket0)) != 0) {
    std::uint32_t node = heads_[0][bucket0];
    heads_[0][bucket0] = kNoSlot;
    occupancy_[0] &= ~(std::uint64_t{1} << bucket0);
    while (node != kNoSlot) {
      Slot& slot = slots_[node];
      assert(slot.when == when && slot.alive && slot.where == Where::kWheel);
      slot.where = Where::kBatch;
      batch_.push_back(BatchEntry{slot.seq, node, slot.generation});
      node = slot.next;
    }
  }
  while (!overflow_.empty() && overflow_.top().when == when) {
    const HeapEntry top = overflow_.top();
    overflow_.pop();
    Slot& slot = slots_[top.slot];
    if (slot.generation != top.generation) continue;  // cancelled: stale record
    assert(slot.when == when && slot.alive && slot.where == Where::kHeap);
    slot.where = Where::kBatch;
    batch_.push_back(BatchEntry{top.seq, top.slot, top.generation});
  }
  assert(!batch_.empty());
  // Same-timestamp events fire in scheduling order; bucket lists and the
  // heap run are unordered, so one small sort per tick restores it.
  if (batch_.size() > 1) {
    std::sort(batch_.begin(), batch_.end(),
              [](const BatchEntry& a, const BatchEntry& b) { return a.seq < b.seq; });
  }
  return true;
}

std::uint64_t Simulator::fire_batch(std::uint64_t limit) {
  std::uint64_t fired = 0;
  while (fired < limit && batch_pos_ < batch_.size()) {
    const BatchEntry entry = batch_[batch_pos_++];
    Slot& slot = slots_[entry.slot];
    if (slot.generation != entry.generation) continue;  // cancelled mid-batch
    assert(slot.alive && slot.where == Where::kBatch);
    detail::EventFn fn = std::move(slot.fn);
    --live_count_;
    release_slot(entry.slot);  // recycle before invoking: fn may schedule again
    ++executed_;
    fn();  // may grow slots_; `slot` is not touched afterwards
    ++fired;
  }
  return fired;
}

bool Simulator::step() {
  for (;;) {
    if (fire_batch(1) == 1) return true;
    if (!collect_batch(kMaxTime)) return false;
  }
}

std::uint64_t Simulator::run_until(SimTime deadline) {
  std::uint64_t ran = 0;
  if (now_ <= deadline) {
    // Leftover batch members (from step()) are due at now_ <= deadline.
    ran += fire_batch(UINT64_MAX);
    while (collect_batch(deadline)) ran += fire_batch(UINT64_MAX);
  }
  if (now_ < deadline) now_ = deadline;
  return ran;
}

std::uint64_t Simulator::run() {
  std::uint64_t ran = fire_batch(UINT64_MAX);
  while (collect_batch(kMaxTime)) ran += fire_batch(UINT64_MAX);
  return ran;
}

}  // namespace sst::sim
