#include "sim/simulator.hpp"

#include <cassert>

namespace sst::sim {

EventHandle Simulator::schedule_at(SimTime when, std::function<void()> fn) {
  assert(when >= now_ && "cannot schedule into the past");
  auto state = std::make_shared<detail::EventState>();
  state->live_count = live_count_;
  ++*live_count_;
  queue_.push(Event{when, next_seq_++, std::move(fn), state});
  return EventHandle(std::move(state));
}

void Simulator::drop_dead_events() {
  while (!queue_.empty() && !queue_.top().state->alive) {
    queue_.pop();
  }
}

bool Simulator::step() {
  drop_dead_events();
  if (queue_.empty()) return false;
  Event ev = queue_.top();
  queue_.pop();
  assert(ev.when >= now_);
  now_ = ev.when;
  ev.state->alive = false;
  --*live_count_;
  ++executed_;
  ev.fn();
  return true;
}

std::uint64_t Simulator::run_until(SimTime deadline) {
  std::uint64_t ran = 0;
  for (;;) {
    drop_dead_events();
    if (queue_.empty() || queue_.top().when > deadline) break;
    step();
    ++ran;
  }
  if (now_ < deadline) now_ = deadline;
  return ran;
}

std::uint64_t Simulator::run() {
  std::uint64_t ran = 0;
  while (step()) ++ran;
  return ran;
}

}  // namespace sst::sim
