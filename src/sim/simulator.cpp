#include "sim/simulator.hpp"

#include <cassert>

namespace sst::sim {

std::uint32_t Simulator::acquire_slot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t index = free_head_;
    free_head_ = slots_[index].next_free;
    return index;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Simulator::release_slot(std::uint32_t index) {
  Slot& slot = slots_[index];
  slot.fn.reset();
  slot.alive = false;
  ++slot.generation;  // invalidates every outstanding handle to this slot
  slot.next_free = free_head_;
  free_head_ = index;
}

EventHandle Simulator::schedule_at(SimTime when, detail::EventFn fn) {
  assert(when >= now_ && "cannot schedule into the past");
  const std::uint32_t index = acquire_slot();
  Slot& slot = slots_[index];
  slot.fn = std::move(fn);
  slot.alive = true;
  ++live_count_;
  queue_.push(QueuedEvent{when, next_seq_++, index, slot.generation});
  return EventHandle(this, index, slot.generation);
}

void Simulator::cancel_event(std::uint32_t index, std::uint32_t generation) {
  if (index >= slots_.size()) return;
  Slot& slot = slots_[index];
  if (slot.generation != generation || !slot.alive) return;
  slot.alive = false;
  slot.fn.reset();  // release captured resources promptly
  --live_count_;
  // The slot itself is recycled when its queue record reaches the top.
}

void Simulator::drop_dead_events() {
  while (!queue_.empty()) {
    const QueuedEvent& top = queue_.top();
    // A slot is recycled only when its record pops, so generations match.
    assert(slots_[top.slot].generation == top.generation);
    if (slots_[top.slot].alive) break;
    release_slot(top.slot);
    queue_.pop();
  }
}

bool Simulator::step() {
  drop_dead_events();
  if (queue_.empty()) return false;
  const QueuedEvent top = queue_.top();
  queue_.pop();
  Slot& slot = slots_[top.slot];
  assert(slot.generation == top.generation && slot.alive);
  assert(top.when >= now_);
  now_ = top.when;
  detail::EventFn fn = std::move(slot.fn);
  slot.alive = false;
  --live_count_;
  release_slot(top.slot);  // recycle before invoking: fn may schedule again
  ++executed_;
  fn();
  return true;
}

std::uint64_t Simulator::run_until(SimTime deadline) {
  std::uint64_t ran = 0;
  for (;;) {
    drop_dead_events();
    if (queue_.empty() || queue_.top().when > deadline) break;
    step();
    ++ran;
  }
  if (now_ < deadline) now_ = deadline;
  return ran;
}

std::uint64_t Simulator::run() {
  std::uint64_t ran = 0;
  while (step()) ++ran;
  return ran;
}

}  // namespace sst::sim
