// Asynchronous block-device abstraction. The core stream scheduler is
// written against this interface so the same code drives (a) the simulated
// controller/disk hierarchy used for every paper experiment and (b) a
// RAM-backed device used by data-integrity tests and the quickstart
// example.
//
// Requests optionally carry a data pointer. Devices that model timing only
// still honour it: reads fill the buffer with the device's deterministic
// content pattern so callers can verify end-to-end data paths.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "common/completion.hpp"
#include "common/types.hpp"

namespace sst::blockdev {

struct BlockRequest {
  ByteOffset offset = 0;  ///< byte offset, sector aligned
  Bytes length = 0;       ///< byte count, sector aligned, > 0
  IoOp op = IoOp::kRead;
  RequestId id = kInvalidRequest;
  /// Optional data buffer of `length` bytes: destination for reads, source
  /// for writes. May be null when the caller only needs timing.
  std::byte* data = nullptr;
  /// Fires when the request completes, with the completion time and the
  /// outcome (IoStatus::kOk unless a fault-injection/recovery layer is in
  /// the stack). Accepts both `void(SimTime)` and `void(SimTime, IoStatus)`
  /// handlers; see common/completion.hpp.
  IoCompletion on_complete;
};

class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  /// Enqueue an asynchronous request. Implementations assert alignment and
  /// bounds; completion order follows the device's service discipline.
  virtual void submit(BlockRequest request) = 0;

  [[nodiscard]] virtual Bytes capacity() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Deterministic content byte for `offset` on a device seeded with `seed`.
/// Cheap enough to verify megabytes in tests, and position-dependent so any
/// offset shift in a buffer-management path is caught immediately.
[[nodiscard]] inline std::byte pattern_byte(std::uint64_t seed, ByteOffset offset) {
  std::uint64_t x = seed ^ (offset / 8);
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return static_cast<std::byte>((x >> (8 * (offset % 8))) & 0xFF);
}

/// Fill `[data, data+length)` with the pattern for `[offset, ...)`.
void fill_pattern(std::uint64_t seed, ByteOffset offset, std::byte* data, Bytes length);

/// True when the buffer matches the pattern (first mismatch offset written
/// to *mismatch when provided).
[[nodiscard]] bool check_pattern(std::uint64_t seed, ByteOffset offset, const std::byte* data,
                                 Bytes length, ByteOffset* mismatch = nullptr);

}  // namespace sst::blockdev
