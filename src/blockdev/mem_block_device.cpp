#include "blockdev/mem_block_device.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace sst::blockdev {

void fill_pattern(std::uint64_t seed, ByteOffset offset, std::byte* data, Bytes length) {
  for (Bytes i = 0; i < length; ++i) data[i] = pattern_byte(seed, offset + i);
}

bool check_pattern(std::uint64_t seed, ByteOffset offset, const std::byte* data, Bytes length,
                   ByteOffset* mismatch) {
  for (Bytes i = 0; i < length; ++i) {
    if (data[i] != pattern_byte(seed, offset + i)) {
      if (mismatch != nullptr) *mismatch = offset + i;
      return false;
    }
  }
  return true;
}

MemBlockDevice::MemBlockDevice(exec::ExecutionContext& simulator, Bytes capacity, std::uint64_t seed,
                               SimTime fixed_latency, double rate_bps)
    : sim_(simulator),
      store_(capacity),
      seed_(seed),
      fixed_latency_(fixed_latency),
      rate_bps_(rate_bps) {
  fill_pattern(seed_, 0, store_.data(), capacity);
}

void MemBlockDevice::submit(BlockRequest request) {
  assert(request.length > 0);
  assert(request.offset % kSectorSize == 0);
  assert(request.length % kSectorSize == 0);
  assert(request.offset + request.length <= capacity());

  // Perform the data movement now (simulated state change is atomic at
  // submission; timing only affects the completion callback).
  if (request.op == IoOp::kWrite && request.data != nullptr) {
    std::memcpy(&store_[request.offset], request.data, request.length);
  }

  const SimTime start = std::max(sim_.now(), busy_until_);
  const auto xfer = static_cast<SimTime>(
      static_cast<double>(request.length) / rate_bps_ * 1e9 + 0.5);
  const SimTime end = start + fixed_latency_ + xfer;
  busy_until_ = end;

  sim_.schedule_at(end, [this, offset = request.offset, length = request.length,
                         data = request.data, op = request.op,
                         cb = std::move(request.on_complete)]() {
    if (op == IoOp::kRead && data != nullptr) {
      std::memcpy(data, &store_[offset], length);
    }
    if (cb) cb(sim_.now());
  });
}

}  // namespace sst::blockdev
