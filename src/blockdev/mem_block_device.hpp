// RAM-backed BlockDevice with a simple fixed-latency + rate service model
// and real byte storage. Used by data-integrity tests (writes followed by
// reads must round-trip through every scheduler layer) and by examples that
// want fast, deterministic devices without the full disk model.
#pragma once

#include <string>
#include <vector>

#include "blockdev/block_device.hpp"
#include "exec/execution_context.hpp"

namespace sst::blockdev {

class MemBlockDevice final : public BlockDevice {
 public:
  /// Content is initialised to the pattern for `seed`, so reads verify even
  /// before any write.
  MemBlockDevice(exec::ExecutionContext& simulator, Bytes capacity, std::uint64_t seed,
                 SimTime fixed_latency = usec(100), double rate_bps = 200e6);

  void submit(BlockRequest request) override;

  [[nodiscard]] Bytes capacity() const override { return static_cast<Bytes>(store_.size()); }
  [[nodiscard]] std::string name() const override { return "mem"; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Direct (un-timed) access for test assertions.
  [[nodiscard]] const std::byte* raw(ByteOffset offset) const { return &store_[offset]; }

 private:
  exec::ExecutionContext& sim_;
  std::vector<std::byte> store_;
  std::uint64_t seed_;
  SimTime fixed_latency_;
  double rate_bps_;
  SimTime busy_until_ = 0;
};

}  // namespace sst::blockdev
