#include "blockdev/sim_block_device.hpp"

#include <cassert>

namespace sst::blockdev {

SimBlockDevice::SimBlockDevice(ctrl::Controller& controller, std::uint32_t disk_index,
                               std::uint64_t seed)
    : controller_(controller), disk_index_(disk_index), seed_(seed) {
  assert(disk_index < controller.disk_count());
}

Bytes SimBlockDevice::capacity() const {
  return controller_.disk(disk_index_).geometry().capacity_bytes();
}

std::string SimBlockDevice::name() const {
  return "sim:ctrl" + std::to_string(controller_.id()) + ":disk" + std::to_string(disk_index_);
}

void SimBlockDevice::submit(BlockRequest request) {
  assert(request.length > 0);
  assert(request.offset % kSectorSize == 0);
  assert(request.length % kSectorSize == 0);
  assert(request.offset + request.length <= capacity());

  ctrl::ControllerCommand cmd;
  cmd.disk_index = disk_index_;
  cmd.lba = request.offset / kSectorSize;
  cmd.sectors = request.length / kSectorSize;
  cmd.op = request.op;
  cmd.id = request.id;
  cmd.on_complete = [seed = seed_, offset = request.offset, length = request.length,
                     data = request.data, op = request.op,
                     cb = std::move(request.on_complete)](SimTime t) {
    if (op == IoOp::kRead && data != nullptr) {
      fill_pattern(seed, offset, data, length);
    }
    if (cb) cb(t);
  };
  controller_.submit(std::move(cmd));
}

}  // namespace sst::blockdev
