// io_uring block device, implemented against the raw kernel ABI
// (<linux/io_uring.h> + syscalls) so no userspace liburing is required.
// Single-threaded like the rest of the execution model: submissions and
// completions both happen on the reactor thread, so the ring barriers are
// only against the kernel, never against another userspace thread.
#include "blockdev/uring_block_device.hpp"

#if !defined(SST_WITH_URING)
#error "uring_block_device.cpp must only be compiled with SST_WITH_URING"
#endif

#include <fcntl.h>
#include <linux/io_uring.h>
#include <linux/time_types.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/syscall.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cerrno>
#include <cstring>
#include <ctime>
#include <deque>
#include <string>

namespace sst::blockdev {

namespace {

/// O_DIRECT wants pointer, file offset and length aligned to the logical
/// block size; 4096 covers every modern device.
constexpr std::uint64_t kDirectAlign = 4096;
/// Kernel limit on registered-buffer iovecs (UIO_MAXIOV).
constexpr std::size_t kMaxRegisteredRegions = 1024;
/// sqe.len is 32-bit; cap each SQE well below the wrap point and let the
/// short-transfer continuation pick up the remainder. 1 GiB keeps O_DIRECT
/// alignment (multiple of 4096) for any aligned request.
constexpr Bytes kMaxSqeBytes = Bytes{1} << 30;
/// Transient kernel results (-EAGAIN/-EINTR) are resubmitted up to this
/// many times per request before surfacing as a media error.
constexpr std::uint32_t kMaxTransientRetries = 8;

int sys_io_uring_setup(unsigned entries, io_uring_params* params) {
  return static_cast<int>(syscall(__NR_io_uring_setup, entries, params));
}

int sys_io_uring_enter(int fd, unsigned to_submit, unsigned min_complete, unsigned flags,
                       const void* arg, std::size_t argsz) {
  return static_cast<int>(
      syscall(__NR_io_uring_enter, fd, to_submit, min_complete, flags, arg, argsz));
}

int sys_io_uring_register(int fd, unsigned opcode, const void* arg, unsigned nr_args) {
  return static_cast<int>(syscall(__NR_io_uring_register, fd, opcode, arg, nr_args));
}

unsigned load_acquire(unsigned* ptr) {
  return std::atomic_ref<unsigned>(*ptr).load(std::memory_order_acquire);
}

void store_release(unsigned* ptr, unsigned value) {
  std::atomic_ref<unsigned>(*ptr).store(value, std::memory_order_release);
}

bool aligned_for_direct(const BlockRequest& request, ByteOffset file_offset) {
  return (reinterpret_cast<std::uintptr_t>(request.data) % kDirectAlign) == 0 &&
         (file_offset % kDirectAlign) == 0 && (request.length % kDirectAlign) == 0;
}

}  // namespace

struct UringBlockDevice::Impl {
  exec::RealContext* ctx = nullptr;
  UringParams params;
  Bytes capacity = 0;

  int direct_fd = -1;    ///< -1 when the filesystem refused O_DIRECT
  int buffered_fd = -1;  ///< always valid; serves unaligned requests
  int ring_fd = -1;
  bool ext_arg = false;  ///< IORING_FEAT_EXT_ARG: timed waits in one syscall

  // Ring mappings. With IORING_FEAT_SINGLE_MMAP the SQ and CQ rings share
  // one mapping; sqes are always their own.
  void* sq_ring_mem = MAP_FAILED;
  std::size_t sq_ring_bytes = 0;
  void* cq_ring_mem = MAP_FAILED;
  std::size_t cq_ring_bytes = 0;
  void* sqe_mem = MAP_FAILED;
  std::size_t sqe_bytes = 0;

  // Raw ring pointers into the mappings.
  unsigned* sq_head = nullptr;
  unsigned* sq_tail = nullptr;
  unsigned sq_mask = 0;
  unsigned* sq_array = nullptr;
  io_uring_sqe* sqes = nullptr;
  unsigned* cq_head = nullptr;
  unsigned* cq_tail = nullptr;
  unsigned cq_mask = 0;
  io_uring_cqe* cqes = nullptr;

  /// One record per request inside the ring, addressed by user_data.
  struct Pending {
    BlockRequest request;
    Bytes done = 0;  ///< bytes already transferred (short-op continuation)
    int buf_index = -1;
    std::uint32_t next_free = UINT32_MAX;
    std::uint32_t retries = 0;  ///< consecutive -EAGAIN/-EINTR resubmits
    bool alive = false;
  };
  std::vector<Pending> pending;
  std::uint32_t free_head = UINT32_MAX;
  std::size_t inflight = 0;

  /// FIFO of accepted requests waiting for a ring slot.
  std::deque<BlockRequest> backlog;

  struct Region {
    std::byte* base = nullptr;
    Bytes length = 0;
  };
  std::vector<Region> regions;  ///< sorted by base; index == buf_index
  bool buffers_registered = false;

  UringStats stats;

  ~Impl() {
    if (sqe_mem != MAP_FAILED) munmap(sqe_mem, sqe_bytes);
    if (cq_ring_mem != MAP_FAILED && cq_ring_mem != sq_ring_mem) {
      munmap(cq_ring_mem, cq_ring_bytes);
    }
    if (sq_ring_mem != MAP_FAILED) munmap(sq_ring_mem, sq_ring_bytes);
    if (ring_fd >= 0) close(ring_fd);
    if (direct_fd >= 0) close(direct_fd);
    if (buffered_fd >= 0) close(buffered_fd);
  }

  Status setup_ring() {
    io_uring_params setup{};
    ring_fd = sys_io_uring_setup(params.queue_depth, &setup);
    if (ring_fd < 0) {
      return make_error("io_uring_setup failed: " + std::string(strerror(errno)));
    }
    ext_arg = (setup.features & IORING_FEAT_EXT_ARG) != 0;

    sq_ring_bytes = setup.sq_off.array + setup.sq_entries * sizeof(unsigned);
    cq_ring_bytes = setup.cq_off.cqes + setup.cq_entries * sizeof(io_uring_cqe);
    if ((setup.features & IORING_FEAT_SINGLE_MMAP) != 0) {
      sq_ring_bytes = cq_ring_bytes = std::max(sq_ring_bytes, cq_ring_bytes);
    }
    sq_ring_mem = mmap(nullptr, sq_ring_bytes, PROT_READ | PROT_WRITE,
                       MAP_SHARED | MAP_POPULATE, ring_fd, IORING_OFF_SQ_RING);
    if (sq_ring_mem == MAP_FAILED) {
      return make_error("io_uring SQ ring mmap failed: " + std::string(strerror(errno)));
    }
    if ((setup.features & IORING_FEAT_SINGLE_MMAP) != 0) {
      cq_ring_mem = sq_ring_mem;
    } else {
      cq_ring_mem = mmap(nullptr, cq_ring_bytes, PROT_READ | PROT_WRITE,
                         MAP_SHARED | MAP_POPULATE, ring_fd, IORING_OFF_CQ_RING);
      if (cq_ring_mem == MAP_FAILED) {
        return make_error("io_uring CQ ring mmap failed: " + std::string(strerror(errno)));
      }
    }
    sqe_bytes = setup.sq_entries * sizeof(io_uring_sqe);
    sqe_mem = mmap(nullptr, sqe_bytes, PROT_READ | PROT_WRITE,
                   MAP_SHARED | MAP_POPULATE, ring_fd, IORING_OFF_SQES);
    if (sqe_mem == MAP_FAILED) {
      return make_error("io_uring SQE mmap failed: " + std::string(strerror(errno)));
    }

    auto* sq_base = static_cast<std::uint8_t*>(sq_ring_mem);
    sq_head = reinterpret_cast<unsigned*>(sq_base + setup.sq_off.head);
    sq_tail = reinterpret_cast<unsigned*>(sq_base + setup.sq_off.tail);
    sq_mask = *reinterpret_cast<unsigned*>(sq_base + setup.sq_off.ring_mask);
    sq_array = reinterpret_cast<unsigned*>(sq_base + setup.sq_off.array);
    sqes = static_cast<io_uring_sqe*>(sqe_mem);
    auto* cq_base = static_cast<std::uint8_t*>(cq_ring_mem);
    cq_head = reinterpret_cast<unsigned*>(cq_base + setup.cq_off.head);
    cq_tail = reinterpret_cast<unsigned*>(cq_base + setup.cq_off.tail);
    cq_mask = *reinterpret_cast<unsigned*>(cq_base + setup.cq_off.ring_mask);
    cqes = reinterpret_cast<io_uring_cqe*>(cq_base + setup.cq_off.cqes);
    return Status::success();
  }

  std::uint32_t acquire_pending() {
    if (free_head != UINT32_MAX) {
      const std::uint32_t index = free_head;
      free_head = pending[index].next_free;
      return index;
    }
    pending.emplace_back();
    return static_cast<std::uint32_t>(pending.size() - 1);
  }

  void release_pending(std::uint32_t index) {
    pending[index].request = BlockRequest{};
    pending[index].alive = false;
    pending[index].next_free = free_head;
    free_head = index;
  }

  /// Registered region containing [data, data+length), or -1.
  int region_of(const std::byte* data, Bytes length) const {
    if (!buffers_registered) return -1;
    auto it = std::upper_bound(regions.begin(), regions.end(), data,
                               [](const std::byte* ptr, const Region& region) {
                                 return ptr < region.base;
                               });
    if (it == regions.begin()) return -1;
    --it;
    if (data >= it->base && data + length <= it->base + it->length) {
      return static_cast<int>(it - regions.begin());
    }
    return -1;
  }

  /// Queue the continuation of `pending[index]` into the SQ and tell the
  /// kernel. The ring can never be full here: SQEs are consumed by the
  /// submit syscall and in-ring requests are capped at queue_depth.
  void submit_sqe(std::uint32_t index) {
    Pending& entry = pending[index];
    const BlockRequest& request = entry.request;
    const ByteOffset file_offset = params.base_offset + request.offset + entry.done;
    std::byte* data = request.data + entry.done;
    const Bytes remaining = request.length - entry.done;
    // sqe.len is only 32 bits wide: issue at most kMaxSqeBytes per SQE and
    // let reap()'s short-transfer continuation submit the rest.
    const Bytes chunk = std::min(remaining, kMaxSqeBytes);

    const bool use_direct = direct_fd >= 0 && aligned_for_direct(request, file_offset) &&
                            (reinterpret_cast<std::uintptr_t>(data) % kDirectAlign) == 0 &&
                            (remaining % kDirectAlign) == 0;
    if (use_direct) ++stats.direct_ops;

    const unsigned tail = load_acquire(sq_tail);
    const unsigned slot = tail & sq_mask;
    io_uring_sqe& sqe = sqes[slot];
    std::memset(&sqe, 0, sizeof(sqe));
    sqe.fd = use_direct ? direct_fd : buffered_fd;
    sqe.off = file_offset;
    sqe.addr = reinterpret_cast<std::uint64_t>(data);
    sqe.len = static_cast<std::uint32_t>(chunk);
    sqe.user_data = index;
    if (entry.buf_index >= 0) {
      sqe.opcode = request.op == IoOp::kRead ? IORING_OP_READ_FIXED : IORING_OP_WRITE_FIXED;
      sqe.buf_index = static_cast<std::uint16_t>(entry.buf_index);
      ++stats.fixed_buffer_ops;
    } else {
      sqe.opcode = request.op == IoOp::kRead ? IORING_OP_READ : IORING_OP_WRITE;
    }
    sq_array[slot] = slot;
    store_release(sq_tail, tail + 1);

    int rc;
    do {
      rc = sys_io_uring_enter(ring_fd, 1, 0, 0, nullptr, 0);
    } while (rc < 0 && errno == EINTR);
    // Submission failure is a programming or resource error the completion
    // path can't see; surface it as an immediate media error.
    if (rc < 0) {
      ++stats.errors;
      ++stats.completed;
      const BlockRequest done = std::move(entry.request);
      release_pending(index);
      --inflight;
      if (done.on_complete) done.on_complete(ctx->now(), IoStatus::kMediaError);
    }
  }

  /// Move one accepted request into the ring.
  void start(BlockRequest request) {
    const std::uint32_t index = acquire_pending();
    Pending& entry = pending[index];
    entry.request = std::move(request);
    entry.done = 0;
    entry.retries = 0;
    entry.buf_index = region_of(entry.request.data, entry.request.length);
    entry.alive = true;
    ++inflight;
    submit_sqe(index);
  }

  /// Drain every ready CQE; returns the number of *requests* completed
  /// (continuations of short ops don't count). Completion callbacks run
  /// here and may call submit() reentrantly — the backlog/depth accounting
  /// keeps that safe.
  std::size_t reap() {
    std::size_t completed_requests = 0;
    for (;;) {
      const unsigned head = load_acquire(cq_head);
      const unsigned tail = load_acquire(cq_tail);
      if (head == tail) break;
      const io_uring_cqe cqe = cqes[head & cq_mask];
      store_release(cq_head, head + 1);

      const auto index = static_cast<std::uint32_t>(cqe.user_data);
      assert(index < pending.size() && pending[index].alive);
      Pending& entry = pending[index];
      if (cqe.res > 0 && entry.done + static_cast<Bytes>(cqe.res) < entry.request.length) {
        // Short transfer: continue where it stopped.
        entry.done += static_cast<Bytes>(cqe.res);
        entry.retries = 0;  // forward progress resets the transient budget
        ++stats.short_resubmits;
        submit_sqe(index);
        continue;
      }
      if ((cqe.res == -EAGAIN || cqe.res == -EINTR) &&
          entry.retries < kMaxTransientRetries) {
        // Transient kernel result, not a media failure: resubmit the same
        // continuation (bounded, so a persistently unready fd still errors).
        ++entry.retries;
        ++stats.transient_retries;
        submit_sqe(index);
        continue;
      }
      const IoStatus status = cqe.res <= 0 ? IoStatus::kMediaError : IoStatus::kOk;
      if (status != IoStatus::kOk) ++stats.errors;
      ++stats.completed;
      ++completed_requests;
      const BlockRequest done = std::move(entry.request);
      release_pending(index);
      --inflight;
      if (done.on_complete) done.on_complete(ctx->now(), status);
    }
    // Ring slots freed: admit parked requests.
    while (!backlog.empty() && inflight < params.queue_depth) {
      BlockRequest next = std::move(backlog.front());
      backlog.pop_front();
      start(std::move(next));
    }
    return completed_requests;
  }

  /// Block in the kernel until at least one completion or `max_wait` ns.
  void wait(SimTime max_wait) {
    if (ext_arg) {
      __kernel_timespec ts{};
      ts.tv_sec = static_cast<long long>(max_wait / 1'000'000'000ULL);
      ts.tv_nsec = static_cast<long long>(max_wait % 1'000'000'000ULL);
      io_uring_getevents_arg arg{};
      arg.ts = reinterpret_cast<std::uint64_t>(&ts);
      int rc;
      do {
        rc = sys_io_uring_enter(ring_fd, 0, 1,
                                IORING_ENTER_GETEVENTS | IORING_ENTER_EXT_ARG, &arg,
                                sizeof(arg));
      } while (rc < 0 && errno == EINTR);
      return;
    }
    // Ancient-kernel fallback: an untimed GETEVENTS wait would block past
    // the caller's deadline, so nap briefly and let the caller re-poll.
    timespec ts{};
    const SimTime nap = std::min<SimTime>(max_wait, 1'000'000);  // <= 1 ms
    ts.tv_nsec = static_cast<long>(nap);
    nanosleep(&ts, nullptr);
  }
};

Result<std::unique_ptr<UringBlockDevice>> UringBlockDevice::open(exec::RealContext& ctx,
                                                                 UringParams params) {
  if (params.path.empty()) return make_error("uring: backing file path is empty");
  if (params.queue_depth == 0) return make_error("uring: queue_depth must be >= 1");

  auto impl = std::make_unique<Impl>();
  impl->ctx = &ctx;

  impl->buffered_fd = ::open(params.path.c_str(), O_RDWR | O_CLOEXEC);
  if (impl->buffered_fd < 0) {
    return make_error("uring: cannot open " + params.path + ": " +
                      std::string(strerror(errno)));
  }
  if (params.direct) {
    // tmpfs (and some filesystems) refuse O_DIRECT; that's fine, the
    // buffered fd serves everything and using_direct() reports false.
    impl->direct_fd = ::open(params.path.c_str(), O_RDWR | O_DIRECT | O_CLOEXEC);
  }

  struct stat st{};
  if (fstat(impl->buffered_fd, &st) != 0) {
    return make_error("uring: fstat failed: " + std::string(strerror(errno)));
  }
  const auto file_size = static_cast<Bytes>(st.st_size);
  if (params.base_offset % kSectorSize != 0) {
    return make_error("uring: base_offset must be sector aligned");
  }
  Bytes capacity = params.capacity;
  if (capacity == 0) {
    if (file_size <= params.base_offset) {
      return make_error("uring: " + params.path + " is smaller than base_offset");
    }
    capacity = (file_size - params.base_offset) / kSectorSize * kSectorSize;
  } else if (params.base_offset + capacity > file_size) {
    return make_error("uring: slice exceeds " + params.path + " (file is " +
                      std::to_string(file_size) + " bytes)");
  }
  if (capacity == 0 || capacity % kSectorSize != 0) {
    return make_error("uring: capacity must be a positive multiple of the sector size");
  }
  impl->capacity = capacity;
  impl->params = std::move(params);

  if (Status ring = impl->setup_ring(); !ring.ok()) return ring.error();

  auto device = std::unique_ptr<UringBlockDevice>(new UringBlockDevice(std::move(impl)));
  ctx.add_driver(device.get());
  return device;
}

UringBlockDevice::UringBlockDevice(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}

UringBlockDevice::~UringBlockDevice() {
  // Drain rather than abandon: completion callbacks own buffers.
  while (impl_->inflight > 0 || !impl_->backlog.empty()) poll(msec(1));
  impl_->ctx->remove_driver(this);
}

void UringBlockDevice::submit(BlockRequest request) {
  assert(request.length > 0);
  assert(request.offset % kSectorSize == 0);
  assert(request.length % kSectorSize == 0);
  assert(request.offset + request.length <= impl_->capacity);

  ++impl_->stats.submitted;
  if (request.data == nullptr) {
    // Nothing to transfer; complete immediately (timing-only requests are
    // a simulation concept).
    ++impl_->stats.completed;
    if (request.on_complete) request.on_complete(impl_->ctx->now(), IoStatus::kOk);
    return;
  }
  if (impl_->inflight >= impl_->params.queue_depth) {
    impl_->backlog.push_back(std::move(request));
    impl_->stats.backlog_peak = std::max<std::uint64_t>(impl_->stats.backlog_peak,
                                                        impl_->backlog.size());
    return;
  }
  impl_->start(std::move(request));
}

Bytes UringBlockDevice::capacity() const { return impl_->capacity; }

std::string UringBlockDevice::name() const { return impl_->params.label; }

std::uint64_t UringBlockDevice::seed() const { return impl_->params.seed; }

std::size_t UringBlockDevice::poll(SimTime max_wait) {
  std::size_t completed = impl_->reap();
  if (completed == 0 && impl_->inflight > 0 && max_wait > 0) {
    impl_->wait(max_wait);
    completed = impl_->reap();
  }
  return completed;
}

std::size_t UringBlockDevice::in_flight() const {
  return impl_->inflight + impl_->backlog.size();
}

Status UringBlockDevice::register_buffers(
    const std::vector<std::pair<std::byte*, Bytes>>& regions) {
  if (impl_->buffers_registered) return make_error("uring: buffers already registered");
  if (impl_->inflight > 0) return make_error("uring: cannot register with I/O in flight");
  if (regions.empty()) return Status::success();

  std::vector<Impl::Region> sorted;
  sorted.reserve(std::min(regions.size(), kMaxRegisteredRegions));
  for (const auto& [base, length] : regions) {
    if (sorted.size() == kMaxRegisteredRegions) break;
    if (base != nullptr && length > 0) sorted.push_back({base, length});
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const Impl::Region& a, const Impl::Region& b) { return a.base < b.base; });

  std::vector<iovec> iovecs(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    iovecs[i].iov_base = sorted[i].base;
    iovecs[i].iov_len = sorted[i].length;
  }
  const int rc = sys_io_uring_register(impl_->ring_fd, IORING_REGISTER_BUFFERS,
                                       iovecs.data(), static_cast<unsigned>(iovecs.size()));
  if (rc < 0) {
    return make_error("uring: buffer registration failed: " + std::string(strerror(errno)));
  }
  impl_->regions = std::move(sorted);
  impl_->buffers_registered = true;
  return Status::success();
}

const UringStats& UringBlockDevice::stats() const { return impl_->stats; }

bool UringBlockDevice::using_direct() const { return impl_->direct_fd >= 0; }

}  // namespace sst::blockdev
