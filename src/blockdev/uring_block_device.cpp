// io_uring block device, implemented against the raw kernel ABI
// (<linux/io_uring.h> + syscalls) so no userspace liburing is required.
// Single-threaded like the rest of the execution model: submissions and
// completions both happen on the reactor thread, so the ring barriers are
// only against the kernel, never against another userspace thread.
#include "blockdev/uring_block_device.hpp"

#if !defined(SST_WITH_URING)
#error "uring_block_device.cpp must only be compiled with SST_WITH_URING"
#endif

#include <fcntl.h>
#include <linux/io_uring.h>
#include <linux/time_types.h>
#include <sys/eventfd.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/syscall.h>
#include <sys/uio.h>
#include <unistd.h>

// Modern setup flags, defined locally when the build host's kernel headers
// predate them — availability is detected at runtime (io_uring_setup
// rejects unknown flags with EINVAL and we fall back), so compiling against
// old headers must not silently disable the fast path.
#ifndef IORING_SETUP_COOP_TASKRUN
#define IORING_SETUP_COOP_TASKRUN (1U << 8)
#endif
#ifndef IORING_SETUP_SINGLE_ISSUER
#define IORING_SETUP_SINGLE_ISSUER (1U << 12)
#endif
#ifndef IORING_SETUP_DEFER_TASKRUN
#define IORING_SETUP_DEFER_TASKRUN (1U << 13)
#endif

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cerrno>
#include <cstring>
#include <ctime>
#include <deque>
#include <string>

namespace sst::blockdev {

namespace {

/// O_DIRECT wants pointer, file offset and length aligned to the logical
/// block size; 4096 covers every modern device.
constexpr std::uint64_t kDirectAlign = 4096;
/// Kernel limit on registered-buffer iovecs (UIO_MAXIOV).
constexpr std::size_t kMaxRegisteredRegions = 1024;
/// sqe.len is 32-bit; cap each SQE well below the wrap point and let the
/// short-transfer continuation pick up the remainder. 1 GiB keeps O_DIRECT
/// alignment (multiple of 4096) for any aligned request.
constexpr Bytes kMaxSqeBytes = Bytes{1} << 30;
/// Transient kernel results (-EAGAIN/-EINTR) are resubmitted up to this
/// many times per request before surfacing as a media error.
constexpr std::uint32_t kMaxTransientRetries = 8;
/// IORING_REGISTER_EVENTFD by value: it is an enumerator (not a macro) in
/// <linux/io_uring.h>, so old headers can't be probed with #ifndef. The
/// ABI value is fixed.
constexpr unsigned kRegisterEventfd = 4;

int sys_io_uring_setup(unsigned entries, io_uring_params* params) {
  return static_cast<int>(syscall(__NR_io_uring_setup, entries, params));
}

int sys_io_uring_enter(int fd, unsigned to_submit, unsigned min_complete, unsigned flags,
                       const void* arg, std::size_t argsz) {
  return static_cast<int>(
      syscall(__NR_io_uring_enter, fd, to_submit, min_complete, flags, arg, argsz));
}

int sys_io_uring_register(int fd, unsigned opcode, const void* arg, unsigned nr_args) {
  return static_cast<int>(syscall(__NR_io_uring_register, fd, opcode, arg, nr_args));
}

unsigned load_acquire(unsigned* ptr) {
  return std::atomic_ref<unsigned>(*ptr).load(std::memory_order_acquire);
}

void store_release(unsigned* ptr, unsigned value) {
  std::atomic_ref<unsigned>(*ptr).store(value, std::memory_order_release);
}

bool aligned_for_direct(const BlockRequest& request, ByteOffset file_offset) {
  return (reinterpret_cast<std::uintptr_t>(request.data) % kDirectAlign) == 0 &&
         (file_offset % kDirectAlign) == 0 && (request.length % kDirectAlign) == 0;
}

}  // namespace

struct UringBlockDevice::Impl {
  exec::RealContext* ctx = nullptr;
  UringParams params;
  Bytes capacity = 0;

  int direct_fd = -1;    ///< -1 when the filesystem refused O_DIRECT
  int buffered_fd = -1;  ///< always valid; serves unaligned requests
  int ring_fd = -1;
  int efd = -1;           ///< registered completion eventfd (multiplex mode)
  bool ext_arg = false;   ///< IORING_FEAT_EXT_ARG: timed waits in one syscall
  bool defer_taskrun = false;  ///< ring got IORING_SETUP_DEFER_TASKRUN
  /// SQEs written into the SQ ring but not yet pushed to the kernel.
  unsigned staged = 0;

  // Ring mappings. With IORING_FEAT_SINGLE_MMAP the SQ and CQ rings share
  // one mapping; sqes are always their own.
  void* sq_ring_mem = MAP_FAILED;
  std::size_t sq_ring_bytes = 0;
  void* cq_ring_mem = MAP_FAILED;
  std::size_t cq_ring_bytes = 0;
  void* sqe_mem = MAP_FAILED;
  std::size_t sqe_bytes = 0;

  // Raw ring pointers into the mappings.
  unsigned* sq_head = nullptr;
  unsigned* sq_tail = nullptr;
  unsigned sq_mask = 0;
  unsigned* sq_array = nullptr;
  io_uring_sqe* sqes = nullptr;
  unsigned* cq_head = nullptr;
  unsigned* cq_tail = nullptr;
  unsigned cq_mask = 0;
  io_uring_cqe* cqes = nullptr;

  /// One record per request inside the ring, addressed by user_data.
  struct Pending {
    BlockRequest request;
    Bytes done = 0;  ///< bytes already transferred (short-op continuation)
    int buf_index = -1;
    std::uint32_t next_free = UINT32_MAX;
    std::uint32_t retries = 0;  ///< consecutive -EAGAIN/-EINTR resubmits
    bool alive = false;
  };
  std::vector<Pending> pending;
  std::uint32_t free_head = UINT32_MAX;
  std::size_t inflight = 0;

  /// FIFO of accepted requests waiting for a ring slot.
  std::deque<BlockRequest> backlog;

  struct Region {
    std::byte* base = nullptr;
    Bytes length = 0;
  };
  std::vector<Region> regions;  ///< sorted by base; index == buf_index
  bool buffers_registered = false;

  UringStats stats;

  ~Impl() {
    if (sqe_mem != MAP_FAILED) munmap(sqe_mem, sqe_bytes);
    if (cq_ring_mem != MAP_FAILED && cq_ring_mem != sq_ring_mem) {
      munmap(cq_ring_mem, cq_ring_bytes);
    }
    if (sq_ring_mem != MAP_FAILED) munmap(sq_ring_mem, sq_ring_bytes);
    if (ring_fd >= 0) close(ring_fd);
    if (efd >= 0) close(efd);
    if (direct_fd >= 0) close(direct_fd);
    if (buffered_fd >= 0) close(buffered_fd);
  }

  Status setup_ring() {
    // Runtime feature detection with graceful fallback: each attempt drops
    // the newest flag set, so an old kernel (EINVAL on unknown setup flags)
    // ends at a plain ring. Multiplexed rings never ask for the taskrun
    // flags — COOP/DEFER_TASKRUN defer CQE posting until the issuer enters
    // the kernel, which would leave an epoll_wait on the ring eventfd
    // sleeping through completions.
    const unsigned coop = IORING_SETUP_COOP_TASKRUN;
    const unsigned single = IORING_SETUP_SINGLE_ISSUER;
    const unsigned defer = IORING_SETUP_DEFER_TASKRUN;
    std::vector<unsigned> attempts;
    if (params.multiplex) {
      attempts = {single, 0};
    } else {
      attempts = {coop | single | defer, coop | single, coop, 0};
    }
    io_uring_params setup{};
    for (const unsigned flags : attempts) {
      setup = io_uring_params{};
      setup.flags = flags;
      ring_fd = sys_io_uring_setup(params.queue_depth, &setup);
      if (ring_fd >= 0) {
        stats.setup_flags = flags;
        defer_taskrun = (flags & defer) != 0;
        break;
      }
      if (errno != EINVAL) break;  // only unknown-flag rejections fall back
    }
    if (ring_fd < 0) {
      return make_error("io_uring_setup failed: " + std::string(strerror(errno)));
    }
    ext_arg = (setup.features & IORING_FEAT_EXT_ARG) != 0;

    if (params.multiplex) {
      // Completion eventfd for the reactor's epoll set. Best-effort: a ring
      // without one still works, it just forces the reactor onto the
      // capped-poll fallback path.
      efd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
      if (efd >= 0 &&
          sys_io_uring_register(ring_fd, kRegisterEventfd, &efd, 1) < 0) {
        close(efd);
        efd = -1;
      }
      stats.eventfd_registered = efd >= 0;
    }

    sq_ring_bytes = setup.sq_off.array + setup.sq_entries * sizeof(unsigned);
    cq_ring_bytes = setup.cq_off.cqes + setup.cq_entries * sizeof(io_uring_cqe);
    if ((setup.features & IORING_FEAT_SINGLE_MMAP) != 0) {
      sq_ring_bytes = cq_ring_bytes = std::max(sq_ring_bytes, cq_ring_bytes);
    }
    sq_ring_mem = mmap(nullptr, sq_ring_bytes, PROT_READ | PROT_WRITE,
                       MAP_SHARED | MAP_POPULATE, ring_fd, IORING_OFF_SQ_RING);
    if (sq_ring_mem == MAP_FAILED) {
      return make_error("io_uring SQ ring mmap failed: " + std::string(strerror(errno)));
    }
    if ((setup.features & IORING_FEAT_SINGLE_MMAP) != 0) {
      cq_ring_mem = sq_ring_mem;
    } else {
      cq_ring_mem = mmap(nullptr, cq_ring_bytes, PROT_READ | PROT_WRITE,
                         MAP_SHARED | MAP_POPULATE, ring_fd, IORING_OFF_CQ_RING);
      if (cq_ring_mem == MAP_FAILED) {
        return make_error("io_uring CQ ring mmap failed: " + std::string(strerror(errno)));
      }
    }
    sqe_bytes = setup.sq_entries * sizeof(io_uring_sqe);
    sqe_mem = mmap(nullptr, sqe_bytes, PROT_READ | PROT_WRITE,
                   MAP_SHARED | MAP_POPULATE, ring_fd, IORING_OFF_SQES);
    if (sqe_mem == MAP_FAILED) {
      return make_error("io_uring SQE mmap failed: " + std::string(strerror(errno)));
    }

    auto* sq_base = static_cast<std::uint8_t*>(sq_ring_mem);
    sq_head = reinterpret_cast<unsigned*>(sq_base + setup.sq_off.head);
    sq_tail = reinterpret_cast<unsigned*>(sq_base + setup.sq_off.tail);
    sq_mask = *reinterpret_cast<unsigned*>(sq_base + setup.sq_off.ring_mask);
    sq_array = reinterpret_cast<unsigned*>(sq_base + setup.sq_off.array);
    sqes = static_cast<io_uring_sqe*>(sqe_mem);
    auto* cq_base = static_cast<std::uint8_t*>(cq_ring_mem);
    cq_head = reinterpret_cast<unsigned*>(cq_base + setup.cq_off.head);
    cq_tail = reinterpret_cast<unsigned*>(cq_base + setup.cq_off.tail);
    cq_mask = *reinterpret_cast<unsigned*>(cq_base + setup.cq_off.ring_mask);
    cqes = reinterpret_cast<io_uring_cqe*>(cq_base + setup.cq_off.cqes);
    return Status::success();
  }

  std::uint32_t acquire_pending() {
    if (free_head != UINT32_MAX) {
      const std::uint32_t index = free_head;
      free_head = pending[index].next_free;
      return index;
    }
    pending.emplace_back();
    return static_cast<std::uint32_t>(pending.size() - 1);
  }

  void release_pending(std::uint32_t index) {
    pending[index].request = BlockRequest{};
    pending[index].alive = false;
    pending[index].next_free = free_head;
    free_head = index;
  }

  /// Registered region containing [data, data+length), or -1.
  int region_of(const std::byte* data, Bytes length) const {
    if (!buffers_registered) return -1;
    auto it = std::upper_bound(regions.begin(), regions.end(), data,
                               [](const std::byte* ptr, const Region& region) {
                                 return ptr < region.base;
                               });
    if (it == regions.begin()) return -1;
    --it;
    if (data >= it->base && data + length <= it->base + it->length) {
      return static_cast<int>(it - regions.begin());
    }
    return -1;
  }

  /// Stage the continuation of `pending[index]` into the SQ ring without
  /// telling the kernel — flush() pushes the whole staged batch with one
  /// io_uring_enter. The ring can never be full here: SQEs are consumed by
  /// the flush syscall and in-ring requests are capped at queue_depth.
  void stage_sqe(std::uint32_t index) {
    Pending& entry = pending[index];
    const BlockRequest& request = entry.request;
    const ByteOffset file_offset = params.base_offset + request.offset + entry.done;
    std::byte* data = request.data + entry.done;
    const Bytes remaining = request.length - entry.done;
    // sqe.len is only 32 bits wide: issue at most kMaxSqeBytes per SQE and
    // let reap()'s short-transfer continuation submit the rest.
    const Bytes chunk = std::min(remaining, kMaxSqeBytes);

    const bool use_direct = direct_fd >= 0 && aligned_for_direct(request, file_offset) &&
                            (reinterpret_cast<std::uintptr_t>(data) % kDirectAlign) == 0 &&
                            (remaining % kDirectAlign) == 0;
    if (use_direct) ++stats.direct_ops;

    const unsigned tail = load_acquire(sq_tail);
    const unsigned slot = tail & sq_mask;
    io_uring_sqe& sqe = sqes[slot];
    std::memset(&sqe, 0, sizeof(sqe));
    sqe.fd = use_direct ? direct_fd : buffered_fd;
    sqe.off = file_offset;
    sqe.addr = reinterpret_cast<std::uint64_t>(data);
    sqe.len = static_cast<std::uint32_t>(chunk);
    sqe.user_data = index;
    if (entry.buf_index >= 0) {
      sqe.opcode = request.op == IoOp::kRead ? IORING_OP_READ_FIXED : IORING_OP_WRITE_FIXED;
      sqe.buf_index = static_cast<std::uint16_t>(entry.buf_index);
      ++stats.fixed_buffer_ops;
    } else {
      sqe.opcode = request.op == IoOp::kRead ? IORING_OP_READ : IORING_OP_WRITE;
    }
    sq_array[slot] = slot;
    store_release(sq_tail, tail + 1);
    ++staged;
  }

  /// Record one successful enter that pushed `batch` SQEs.
  void note_batch(unsigned batch) {
    if (batch == 0) return;
    ++stats.flush_batches;
    stats.sqes_flushed += batch;
    stats.batch_size_max = std::max<std::uint64_t>(stats.batch_size_max, batch);
    std::size_t bucket = 0;
    while ((batch >> (bucket + 1)) != 0 && bucket + 1 < kUringBatchBuckets) {
      ++bucket;
    }
    ++stats.batch_size_log2[bucket];
  }

  /// Kernel refused to accept `count` staged SQEs: rewind the SQ tail past
  /// them and surface each as an immediate media error — the completion
  /// path can't see a request the kernel never took.
  void fail_staged(unsigned count) {
    const unsigned tail = load_acquire(sq_tail);
    std::vector<std::uint32_t> failed;
    failed.reserve(count);
    for (unsigned j = 0; j < count; ++j) {
      const unsigned slot = (tail - count + j) & sq_mask;
      failed.push_back(static_cast<std::uint32_t>(sqes[slot].user_data));
    }
    store_release(sq_tail, tail - count);
    staged -= count;
    for (const std::uint32_t index : failed) {
      ++stats.errors;
      ++stats.completed;
      const BlockRequest done = std::move(pending[index].request);
      release_pending(index);
      --inflight;
      if (done.on_complete) done.on_complete(ctx->now(), IoStatus::kMediaError);
    }
  }

  /// Push every staged SQE to the kernel: one io_uring_enter for the whole
  /// batch. With DEFER_TASKRUN the enter also carries GETEVENTS (with
  /// min_complete = 0 it never blocks) so deferred completions post in the
  /// same syscall. Returns the number of SQEs flushed.
  std::size_t flush() {
    const unsigned batch = staged;
    unsigned remaining = staged;
    std::uint32_t transient = 0;
    while (remaining > 0) {
      const unsigned wait_flags = defer_taskrun ? IORING_ENTER_GETEVENTS : 0;
      const int rc =
          sys_io_uring_enter(ring_fd, remaining, 0, wait_flags, nullptr, 0);
      ++stats.enter_syscalls;
      if (rc < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN && transient++ < kMaxTransientRetries) continue;
        // Hard submission failure (resource exhaustion, ring gone): fail
        // everything the kernel didn't take.
        fail_staged(remaining);
        return batch - remaining;
      }
      remaining -= static_cast<unsigned>(rc);
      staged -= static_cast<unsigned>(rc);
      note_batch(static_cast<unsigned>(rc));
    }
    return batch;
  }

  /// Move one accepted request into the ring (staged; not yet submitted).
  void start(BlockRequest request) {
    const std::uint32_t index = acquire_pending();
    Pending& entry = pending[index];
    entry.request = std::move(request);
    entry.done = 0;
    entry.retries = 0;
    entry.buf_index = region_of(entry.request.data, entry.request.length);
    entry.alive = true;
    ++inflight;
    stage_sqe(index);
  }

  /// Drain every ready CQE; returns the number of *requests* completed
  /// (continuations of short ops don't count). Completion callbacks run
  /// here and may call submit() reentrantly — the backlog/depth accounting
  /// keeps that safe.
  std::size_t reap() {
    std::size_t completed_requests = 0;
    for (;;) {
      const unsigned head = load_acquire(cq_head);
      const unsigned tail = load_acquire(cq_tail);
      if (head == tail) break;
      const io_uring_cqe cqe = cqes[head & cq_mask];
      store_release(cq_head, head + 1);

      const auto index = static_cast<std::uint32_t>(cqe.user_data);
      assert(index < pending.size() && pending[index].alive);
      Pending& entry = pending[index];
      if (cqe.res > 0 && entry.done + static_cast<Bytes>(cqe.res) < entry.request.length) {
        // Short transfer: continue where it stopped.
        entry.done += static_cast<Bytes>(cqe.res);
        entry.retries = 0;  // forward progress resets the transient budget
        ++stats.short_resubmits;
        stage_sqe(index);
        continue;
      }
      if ((cqe.res == -EAGAIN || cqe.res == -EINTR) &&
          entry.retries < kMaxTransientRetries) {
        // Transient kernel result, not a media failure: resubmit the same
        // continuation (bounded, so a persistently unready fd still errors).
        ++entry.retries;
        ++stats.transient_retries;
        stage_sqe(index);
        continue;
      }
      const IoStatus status = cqe.res <= 0 ? IoStatus::kMediaError : IoStatus::kOk;
      if (status != IoStatus::kOk) ++stats.errors;
      ++stats.completed;
      ++completed_requests;
      const BlockRequest done = std::move(entry.request);
      release_pending(index);
      --inflight;
      if (done.on_complete) done.on_complete(ctx->now(), status);
    }
    // Ring slots freed: admit parked requests.
    while (!backlog.empty() && inflight < params.queue_depth) {
      BlockRequest next = std::move(backlog.front());
      backlog.pop_front();
      start(std::move(next));
    }
    return completed_requests;
  }

  /// Flush any staged SQEs and block in the kernel until completions or
  /// `max_wait` ns — submit and wait combined into a single io_uring_enter
  /// (IORING_ENTER_GETEVENTS), so the steady-state reactor turn costs one
  /// syscall per batch. min_complete scales with the pipeline (a quarter of
  /// the in-flight requests, capped) instead of waking per completion:
  /// devices whose completions trickle one at a time would otherwise cost
  /// one enter each. The closed loop refills what the wait drains, the
  /// remaining three quarters keep the device busy meanwhile, and the
  /// timeout still returns exactly at the caller's deadline, so timers
  /// never slip.
  void flush_and_wait(SimTime max_wait) {
    if (!ext_arg) {
      // Ancient-kernel fallback (no EXT_ARG): an untimed GETEVENTS wait
      // would block past the caller's deadline, so flush separately, nap
      // briefly and let the caller re-poll.
      flush();
      timespec ts{};
      const SimTime nap = std::min<SimTime>(max_wait, 1'000'000);  // <= 1 ms
      ts.tv_nsec = static_cast<long>(nap);
      nanosleep(&ts, nullptr);
      return;
    }
    // Every staged SQE rides this enter, so afterwards all `inflight`
    // requests are kernel-side — the wait target is safe to derive from it.
    const auto wait_nr = static_cast<unsigned>(
        std::clamp<std::size_t>(inflight / 4, 1, 32));
    for (;;) {
      const unsigned to_submit = staged;
      __kernel_timespec ts{};
      ts.tv_sec = static_cast<long long>(max_wait / 1'000'000'000ULL);
      ts.tv_nsec = static_cast<long long>(max_wait % 1'000'000'000ULL);
      io_uring_getevents_arg arg{};
      arg.ts = reinterpret_cast<std::uint64_t>(&ts);
      const int rc = sys_io_uring_enter(
          ring_fd, to_submit, wait_nr,
          IORING_ENTER_GETEVENTS | IORING_ENTER_EXT_ARG, &arg, sizeof(arg));
      ++stats.enter_syscalls;
      if (rc >= 0) {
        // rc = SQEs the kernel consumed before (and regardless of) the
        // wait outcome.
        staged -= static_cast<unsigned>(rc);
        note_batch(static_cast<unsigned>(rc));
        if (staged > 0) flush();  // partial consume (rare): push the rest
        return;
      }
      if (errno == EINTR) continue;
      if (errno == ETIME) return;  // deadline, nothing submitted (staged was 0)
      // Submission-side error: route through flush(), which owns the
      // retry/fail-staged handling, then let the caller re-poll.
      flush();
      return;
    }
  }
};

Result<std::unique_ptr<UringBlockDevice>> UringBlockDevice::open(exec::RealContext& ctx,
                                                                 UringParams params) {
  if (params.path.empty()) return make_error("uring: backing file path is empty");
  if (params.queue_depth == 0) return make_error("uring: queue_depth must be >= 1");

  auto impl = std::make_unique<Impl>();
  impl->ctx = &ctx;

  impl->buffered_fd = ::open(params.path.c_str(), O_RDWR | O_CLOEXEC);
  if (impl->buffered_fd < 0) {
    return make_error("uring: cannot open " + params.path + ": " +
                      std::string(strerror(errno)));
  }
  if (params.direct) {
    // tmpfs (and some filesystems) refuse O_DIRECT; that's fine, the
    // buffered fd serves everything and using_direct() reports false.
    impl->direct_fd = ::open(params.path.c_str(), O_RDWR | O_DIRECT | O_CLOEXEC);
  }

  struct stat st{};
  if (fstat(impl->buffered_fd, &st) != 0) {
    return make_error("uring: fstat failed: " + std::string(strerror(errno)));
  }
  const auto file_size = static_cast<Bytes>(st.st_size);
  if (params.base_offset % kSectorSize != 0) {
    return make_error("uring: base_offset must be sector aligned");
  }
  Bytes capacity = params.capacity;
  if (capacity == 0) {
    if (file_size <= params.base_offset) {
      return make_error("uring: " + params.path + " is smaller than base_offset");
    }
    capacity = (file_size - params.base_offset) / kSectorSize * kSectorSize;
  } else if (params.base_offset + capacity > file_size) {
    return make_error("uring: slice exceeds " + params.path + " (file is " +
                      std::to_string(file_size) + " bytes)");
  }
  if (capacity == 0 || capacity % kSectorSize != 0) {
    return make_error("uring: capacity must be a positive multiple of the sector size");
  }
  impl->capacity = capacity;
  impl->params = std::move(params);

  if (Status ring = impl->setup_ring(); !ring.ok()) return ring.error();

  auto device = std::unique_ptr<UringBlockDevice>(new UringBlockDevice(std::move(impl)));
  ctx.add_driver(device.get());
  return device;
}

UringBlockDevice::UringBlockDevice(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}

UringBlockDevice::~UringBlockDevice() {
  // Drain rather than abandon: completion callbacks own buffers. poll()
  // blocks in the combined flush+wait path, so a deep backlog drains at one
  // syscall per completion batch instead of one per millisecond.
  while (impl_->inflight > 0 || !impl_->backlog.empty()) poll(msec(50));
  impl_->ctx->remove_driver(this);
}

void UringBlockDevice::submit(BlockRequest request) {
  assert(request.length > 0);
  assert(request.offset % kSectorSize == 0);
  assert(request.length % kSectorSize == 0);
  assert(request.offset + request.length <= impl_->capacity);

  ++impl_->stats.submitted;
  if (request.data == nullptr) {
    // Nothing to transfer; complete immediately (timing-only requests are
    // a simulation concept).
    ++impl_->stats.completed;
    if (request.on_complete) request.on_complete(impl_->ctx->now(), IoStatus::kOk);
    return;
  }
  if (impl_->inflight >= impl_->params.queue_depth) {
    impl_->backlog.push_back(std::move(request));
    impl_->stats.backlog_peak = std::max<std::uint64_t>(impl_->stats.backlog_peak,
                                                        impl_->backlog.size());
    return;
  }
  impl_->start(std::move(request));
}

Bytes UringBlockDevice::capacity() const { return impl_->capacity; }

std::string UringBlockDevice::name() const { return impl_->params.label; }

std::uint64_t UringBlockDevice::seed() const { return impl_->params.seed; }

std::size_t UringBlockDevice::poll(SimTime max_wait) {
  std::size_t completed = impl_->reap();
  if (completed == 0 && impl_->inflight > 0 && max_wait > 0) {
    impl_->flush_and_wait(max_wait);
    completed = impl_->reap();
  }
  return completed;
}

std::size_t UringBlockDevice::in_flight() const {
  return impl_->inflight + impl_->backlog.size();
}

std::size_t UringBlockDevice::flush() {
  // Reactor-driven flush with plugging: hold the staged batch back while
  // the kernel still owns more than half the pipeline. Completions of the
  // kernel-side majority keep waking the reactor, staged work accumulates
  // toward ~queue_depth/2 per enter, and the rule degenerates to
  // flush-immediately the moment the kernel side would run dry (staged
  // SQEs count toward `inflight`, so kernel-side = inflight - staged).
  if (2 * impl_->staged < impl_->inflight) return 0;
  return impl_->flush();
}

int UringBlockDevice::event_fd() const { return impl_->efd; }

Status UringBlockDevice::register_buffers(
    const std::vector<std::pair<std::byte*, Bytes>>& regions) {
  if (impl_->buffers_registered) return make_error("uring: buffers already registered");
  if (impl_->inflight > 0) return make_error("uring: cannot register with I/O in flight");
  if (regions.empty()) return Status::success();

  std::vector<Impl::Region> sorted;
  sorted.reserve(std::min(regions.size(), kMaxRegisteredRegions));
  for (const auto& [base, length] : regions) {
    if (sorted.size() == kMaxRegisteredRegions) break;
    if (base != nullptr && length > 0) sorted.push_back({base, length});
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const Impl::Region& a, const Impl::Region& b) { return a.base < b.base; });

  std::vector<iovec> iovecs(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    iovecs[i].iov_base = sorted[i].base;
    iovecs[i].iov_len = sorted[i].length;
  }
  const int rc = sys_io_uring_register(impl_->ring_fd, IORING_REGISTER_BUFFERS,
                                       iovecs.data(), static_cast<unsigned>(iovecs.size()));
  if (rc < 0) {
    return make_error("uring: buffer registration failed: " + std::string(strerror(errno)));
  }
  impl_->regions = std::move(sorted);
  impl_->buffers_registered = true;
  return Status::success();
}

const UringStats& UringBlockDevice::stats() const { return impl_->stats; }

bool UringBlockDevice::using_direct() const { return impl_->direct_fd >= 0; }

}  // namespace sst::blockdev
