// Real-I/O block device: io_uring + (attempted) O_DIRECT over a slice of a
// regular file or block device. This is the one BlockDevice implementation
// that performs actual disk I/O; everything above it — scheduler, staging
// area, clients — is the same code that runs against the simulated stack,
// scheduled on exec::RealContext instead of the simulator.
//
// The header is portable (no kernel headers leak out of the pimpl); the
// implementation is only compiled when the build enables -DSST_WITH_URING=ON,
// so referencing UringBlockDevice::open() without it is a link error. Use
// uring_backend_available() to branch at runtime.
//
// I/O model:
//  - Bounded in-flight depth: at most `queue_depth` operations are inside
//    the ring; further submissions park in a FIFO backlog and drain as
//    completions arrive, so a burst can never overflow the submission queue.
//  - Batched submission: submit() only *stages* SQEs into the submission
//    ring. The kernel is told about them by flush() — one io_uring_enter
//    for the whole staged batch — or by poll(), which combines the flush
//    with a completion wait (IORING_ENTER_GETEVENTS) so the steady-state
//    hot path is one syscall per batch, not per request. The reactor
//    (exec::RealContext) calls flush() on every turn before blocking.
//  - Modern setup flags (IORING_SETUP_COOP_TASKRUN / SINGLE_ISSUER /
//    DEFER_TASKRUN) are attempted with runtime feature detection and
//    graceful fallback on older kernels; stats().setup_flags reports what
//    the ring actually got. Rings opened with multiplex=true skip the
//    taskrun flags (deferred completion posting would starve an epoll
//    waiter) and instead register an eventfd the reactor can multiplex.
//  - O_DIRECT is attempted first and silently degrades to buffered I/O when
//    the filesystem refuses it (tmpfs) or a request is not 4096-aligned
//    (pointer, offset and length all must be).
//  - Buffers registered via register_buffers() (typically the staging area's
//    extent-slab regions) are used as io_uring fixed buffers: requests whose
//    data pointer falls inside a registered region submit READ_FIXED /
//    WRITE_FIXED and skip the per-op pin/unpin.
//  - Short reads/writes are transparently resubmitted for the remainder,
//    and transient kernel results (-EAGAIN/-EINTR) are retried a bounded
//    number of times; any other completion error surfaces as
//    IoStatus::kMediaError.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "blockdev/block_device.hpp"
#include "common/result.hpp"
#include "common/types.hpp"
#include "exec/real_context.hpp"

namespace sst::blockdev {

struct UringParams {
  /// Backing file, pre-formatted with the deterministic content pattern
  /// (scripts/mkpattern.py) when read verification matters.
  std::string path;
  ByteOffset base_offset = 0;  ///< first byte of this device's slice
  /// Slice size in bytes; 0 = everything from base_offset to end of file.
  /// Must be sector aligned.
  Bytes capacity = 0;
  std::uint32_t queue_depth = 64;  ///< bounded in-flight depth (ring size)
  bool direct = true;              ///< try O_DIRECT before buffered I/O
  /// Pattern seed reported through seed() so integrity checks can verify
  /// reads against a mkpattern.py-formatted file. Note the pattern is a
  /// whole-file property: a slice at base_offset B holds the pattern for
  /// absolute offsets [B, B+capacity).
  std::uint64_t seed = 0;
  std::string label = "uring0";
  /// True when the ring will be driven from an epoll reactor alongside
  /// other rings: registers an eventfd (exposed via event_fd()) and opens
  /// the ring without COOP/DEFER_TASKRUN — deferred task running only
  /// posts CQEs when the issuer enters the kernel, which would starve a
  /// task blocked in epoll_wait. Leave false when the reactor blocks
  /// inside this ring (the single-busy-ring fast path).
  bool multiplex = false;
};

/// Size of UringStats::batch_size_log2: bucket i counts flushed batches of
/// [2^i, 2^(i+1)) SQEs, with the last bucket open-ended.
inline constexpr std::size_t kUringBatchBuckets = 8;

struct UringStats {
  std::uint64_t submitted = 0;         ///< requests accepted by submit()
  std::uint64_t completed = 0;         ///< requests fully completed
  std::uint64_t errors = 0;            ///< completions with a kernel error
  std::uint64_t short_resubmits = 0;   ///< short read/write continuations
  std::uint64_t transient_retries = 0; ///< -EAGAIN/-EINTR resubmits
  std::uint64_t fixed_buffer_ops = 0;  ///< ops that used a registered buffer
  std::uint64_t direct_ops = 0;        ///< ops issued through the O_DIRECT fd
  std::uint64_t backlog_peak = 0;      ///< max requests parked beyond queue_depth
  std::uint64_t enter_syscalls = 0;    ///< io_uring_enter calls (flush + wait)
  std::uint64_t flush_batches = 0;     ///< enters that carried >= 1 SQE
  std::uint64_t sqes_flushed = 0;      ///< SQEs pushed by those enters
  std::uint64_t batch_size_max = 0;    ///< largest single flushed batch
  /// Histogram of flushed batch sizes: bucket i counts batches in
  /// [2^i, 2^(i+1)), last bucket open-ended.
  std::array<std::uint64_t, kUringBatchBuckets> batch_size_log2{};
  std::uint32_t setup_flags = 0;       ///< IORING_SETUP_* the ring got
  bool eventfd_registered = false;     ///< multiplex eventfd active

  /// enter_syscalls per completed request — the submission-batching figure
  /// of merit (one enter per request ~= 1.0+; deep batched pipelines reach
  /// well below 0.2).
  [[nodiscard]] double syscalls_per_request() const {
    return completed > 0 ? static_cast<double>(enter_syscalls) /
                               static_cast<double>(completed)
                         : 0.0;
  }
};

class UringBlockDevice final : public BlockDevice, public exec::CompletionDriver {
 public:
  /// Open the backing file and set up the ring. Fails (as a value, no
  /// exceptions) when the file can't be opened, the slice exceeds the file,
  /// or the kernel rejects io_uring setup. On success the device has
  /// registered itself as a completion driver on `ctx`; destruction
  /// unregisters it, so the device must not outlive the context.
  [[nodiscard]] static Result<std::unique_ptr<UringBlockDevice>> open(
      exec::RealContext& ctx, UringParams params);

  ~UringBlockDevice() override;

  /// Asserts sector alignment and slice bounds like every other device.
  /// Requests without a data pointer are completed inline (a real device
  /// cannot transfer into nothing; timing-only probes are a simulator
  /// concept).
  void submit(BlockRequest request) override;

  [[nodiscard]] Bytes capacity() const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::uint64_t seed() const;

  // exec::CompletionDriver
  /// Reap ready CQEs; with `max_wait` > 0 and nothing ready, flushes any
  /// staged SQEs and blocks in the ring — submit and wait combined into a
  /// single io_uring_enter when the kernel supports EXT_ARG.
  std::size_t poll(SimTime max_wait) override;
  [[nodiscard]] std::size_t in_flight() const override;
  /// Push every staged SQE to the kernel with one io_uring_enter. Returns
  /// the number of SQEs flushed (0 = no syscall made).
  std::size_t flush() override;
  /// The registered completion eventfd when opened with multiplex=true,
  /// else -1.
  [[nodiscard]] int event_fd() const override;

  /// Register memory regions (e.g. ExtentSlab::regions()) as io_uring fixed
  /// buffers. Call once, before I/O is in flight; at most 1024 regions are
  /// registered (the kernel iovec limit), the rest simply stay unfixed.
  /// Best-effort: on error the device keeps working without fixed buffers.
  Status register_buffers(const std::vector<std::pair<std::byte*, Bytes>>& regions);

  [[nodiscard]] const UringStats& stats() const;
  /// True when the backing file accepted O_DIRECT (tmpfs doesn't; those
  /// runs transparently use buffered I/O instead).
  [[nodiscard]] bool using_direct() const;

 private:
  struct Impl;
  explicit UringBlockDevice(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

/// True when the library was built with -DSST_WITH_URING=ON. When false,
/// UringBlockDevice is declared but not defined — don't call open().
[[nodiscard]] constexpr bool uring_backend_available() {
#if defined(SST_WITH_URING)
  return true;
#else
  return false;
#endif
}

}  // namespace sst::blockdev
