// Real-I/O block device: io_uring + (attempted) O_DIRECT over a slice of a
// regular file or block device. This is the one BlockDevice implementation
// that performs actual disk I/O; everything above it — scheduler, staging
// area, clients — is the same code that runs against the simulated stack,
// scheduled on exec::RealContext instead of the simulator.
//
// The header is portable (no kernel headers leak out of the pimpl); the
// implementation is only compiled when the build enables -DSST_WITH_URING=ON,
// so referencing UringBlockDevice::open() without it is a link error. Use
// uring_backend_available() to branch at runtime.
//
// I/O model:
//  - Bounded in-flight depth: at most `queue_depth` operations are inside
//    the ring; further submissions park in a FIFO backlog and drain as
//    completions arrive, so a burst can never overflow the submission queue.
//  - O_DIRECT is attempted first and silently degrades to buffered I/O when
//    the filesystem refuses it (tmpfs) or a request is not 4096-aligned
//    (pointer, offset and length all must be).
//  - Buffers registered via register_buffers() (typically the staging area's
//    extent-slab regions) are used as io_uring fixed buffers: requests whose
//    data pointer falls inside a registered region submit READ_FIXED /
//    WRITE_FIXED and skip the per-op pin/unpin.
//  - Short reads/writes are transparently resubmitted for the remainder,
//    and transient kernel results (-EAGAIN/-EINTR) are retried a bounded
//    number of times; any other completion error surfaces as
//    IoStatus::kMediaError.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "blockdev/block_device.hpp"
#include "common/result.hpp"
#include "common/types.hpp"
#include "exec/real_context.hpp"

namespace sst::blockdev {

struct UringParams {
  /// Backing file, pre-formatted with the deterministic content pattern
  /// (scripts/mkpattern.py) when read verification matters.
  std::string path;
  ByteOffset base_offset = 0;  ///< first byte of this device's slice
  /// Slice size in bytes; 0 = everything from base_offset to end of file.
  /// Must be sector aligned.
  Bytes capacity = 0;
  std::uint32_t queue_depth = 64;  ///< bounded in-flight depth (ring size)
  bool direct = true;              ///< try O_DIRECT before buffered I/O
  /// Pattern seed reported through seed() so integrity checks can verify
  /// reads against a mkpattern.py-formatted file. Note the pattern is a
  /// whole-file property: a slice at base_offset B holds the pattern for
  /// absolute offsets [B, B+capacity).
  std::uint64_t seed = 0;
  std::string label = "uring0";
};

struct UringStats {
  std::uint64_t submitted = 0;         ///< requests accepted by submit()
  std::uint64_t completed = 0;         ///< requests fully completed
  std::uint64_t errors = 0;            ///< completions with a kernel error
  std::uint64_t short_resubmits = 0;   ///< short read/write continuations
  std::uint64_t transient_retries = 0; ///< -EAGAIN/-EINTR resubmits
  std::uint64_t fixed_buffer_ops = 0;  ///< ops that used a registered buffer
  std::uint64_t direct_ops = 0;        ///< ops issued through the O_DIRECT fd
  std::uint64_t backlog_peak = 0;      ///< max requests parked beyond queue_depth
};

class UringBlockDevice final : public BlockDevice, public exec::CompletionDriver {
 public:
  /// Open the backing file and set up the ring. Fails (as a value, no
  /// exceptions) when the file can't be opened, the slice exceeds the file,
  /// or the kernel rejects io_uring setup. On success the device has
  /// registered itself as a completion driver on `ctx`; destruction
  /// unregisters it, so the device must not outlive the context.
  [[nodiscard]] static Result<std::unique_ptr<UringBlockDevice>> open(
      exec::RealContext& ctx, UringParams params);

  ~UringBlockDevice() override;

  /// Asserts sector alignment and slice bounds like every other device.
  /// Requests without a data pointer are completed inline (a real device
  /// cannot transfer into nothing; timing-only probes are a simulator
  /// concept).
  void submit(BlockRequest request) override;

  [[nodiscard]] Bytes capacity() const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::uint64_t seed() const;

  // exec::CompletionDriver
  std::size_t poll(SimTime max_wait) override;
  [[nodiscard]] std::size_t in_flight() const override;

  /// Register memory regions (e.g. ExtentSlab::regions()) as io_uring fixed
  /// buffers. Call once, before I/O is in flight; at most 1024 regions are
  /// registered (the kernel iovec limit), the rest simply stay unfixed.
  /// Best-effort: on error the device keeps working without fixed buffers.
  Status register_buffers(const std::vector<std::pair<std::byte*, Bytes>>& regions);

  [[nodiscard]] const UringStats& stats() const;
  /// True when the backing file accepted O_DIRECT (tmpfs doesn't; those
  /// runs transparently use buffered I/O instead).
  [[nodiscard]] bool using_direct() const;

 private:
  struct Impl;
  explicit UringBlockDevice(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

/// True when the library was built with -DSST_WITH_URING=ON. When false,
/// UringBlockDevice is declared but not defined — don't call open().
[[nodiscard]] constexpr bool uring_backend_available() {
#if defined(SST_WITH_URING)
  return true;
#else
  return false;
#endif
}

}  // namespace sst::blockdev
