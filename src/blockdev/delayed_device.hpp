// Latency-injection wrapper for robustness testing: forwards requests to
// an inner device and delays selected completions by a configurable extra
// amount. Used to exercise the stream scheduler's behaviour around
// timeouts, garbage collection racing in-flight reads, and deeply delayed
// completions — conditions a real degraded disk (retries, remapped
// sectors) produces.
#pragma once

#include <functional>
#include <string>

#include "blockdev/block_device.hpp"
#include "exec/execution_context.hpp"

namespace sst::blockdev {

class DelayedDevice final : public BlockDevice {
 public:
  /// `should_delay` decides per request (by its sequence number and offset)
  /// whether the extra delay applies. Inner device must outlive this.
  DelayedDevice(exec::ExecutionContext& simulator, BlockDevice& inner, SimTime extra_delay,
                std::function<bool(std::uint64_t seq, ByteOffset offset)> should_delay)
      : sim_(simulator),
        inner_(inner),
        extra_delay_(extra_delay),
        should_delay_(std::move(should_delay)) {}

  /// Convenience: delay every Nth request.
  DelayedDevice(exec::ExecutionContext& simulator, BlockDevice& inner, SimTime extra_delay,
                std::uint64_t every_nth)
      : DelayedDevice(simulator, inner, extra_delay,
                      [every_nth](std::uint64_t seq, ByteOffset) {
                        return every_nth != 0 && seq % every_nth == 0;
                      }) {}

  void submit(BlockRequest request) override {
    const std::uint64_t seq = next_seq_++;
    if (should_delay_ && should_delay_(seq, request.offset)) {
      ++delayed_;
      request.on_complete = [this,
                             cb = std::move(request.on_complete)](SimTime, IoStatus s) {
        sim_.schedule_after(extra_delay_, [this, cb, s]() {
          if (cb) cb(sim_.now(), s);
        });
      };
    }
    inner_.submit(std::move(request));
  }

  [[nodiscard]] Bytes capacity() const override { return inner_.capacity(); }
  [[nodiscard]] std::string name() const override { return "delayed:" + inner_.name(); }
  [[nodiscard]] std::uint64_t delayed_count() const { return delayed_; }

 private:
  exec::ExecutionContext& sim_;
  BlockDevice& inner_;
  SimTime extra_delay_;
  std::function<bool(std::uint64_t, ByteOffset)> should_delay_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t delayed_ = 0;
};

}  // namespace sst::blockdev
