// BlockDevice adapter over one disk channel of a simulated controller.
// Byte-addressed requests are converted to sector extents; reads with a
// data pointer are filled with the device's deterministic pattern at
// completion time (the simulator models timing, not storage).
#pragma once

#include <string>

#include "blockdev/block_device.hpp"
#include "controller/controller.hpp"
#include "exec/execution_context.hpp"

namespace sst::blockdev {

class SimBlockDevice final : public BlockDevice {
 public:
  /// `controller` and the target disk must outlive this adapter.
  SimBlockDevice(ctrl::Controller& controller, std::uint32_t disk_index, std::uint64_t seed);

  void submit(BlockRequest request) override;

  [[nodiscard]] Bytes capacity() const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

 private:
  ctrl::Controller& controller_;
  std::uint32_t disk_index_;
  std::uint64_t seed_;
};

}  // namespace sst::blockdev
