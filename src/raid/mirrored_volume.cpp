#include "raid/mirrored_volume.hpp"

#include <algorithm>
#include <cassert>
#include <memory>

namespace sst::raid {

namespace {
constexpr Bytes kAffinityRegion = 64 * MiB;
}

MirroredVolume::MirroredVolume(std::vector<blockdev::BlockDevice*> members,
                               ReadPolicy policy, MirrorParams params)
    : members_(std::move(members)),
      policy_(policy),
      params_(params),
      health_(members_.size()) {
  assert(!members_.empty());
  assert(members_.size() <= 64 && "failover mask is a 64-bit bitmask");
  assert(params_.fail_threshold > 0);
  capacity_ = members_.front()->capacity();
  for (const auto* m : members_) capacity_ = std::min(capacity_, m->capacity());
}

std::string MirroredVolume::name() const {
  return "raid1[" + std::to_string(members_.size()) + "]";
}

std::size_t MirroredVolume::route_read(ByteOffset offset) {
  if (policy_ == ReadPolicy::kRoundRobin) {
    const std::size_t pick = next_;
    next_ = (next_ + 1) % members_.size();
    return pick;
  }
  // Region-affine: stable mapping keeps one stream's reads on one replica.
  const std::uint64_t region = offset / kAffinityRegion;
  // SplitMix-style scramble so neighbouring regions spread across replicas.
  std::uint64_t x = region * 0x9E3779B97F4A7C15ULL;
  x ^= x >> 29;
  return static_cast<std::size_t>(x % members_.size());
}

std::size_t MirroredVolume::failed_member_count() const {
  std::size_t n = 0;
  for (const Member& m : health_) {
    if (m.state == MemberHealth::kFailed) ++n;
  }
  return n;
}

int MirroredVolume::pick_member(std::size_t preferred, std::uint64_t tried) const {
  // Walk replicas starting from the policy's pick so healthy routing keeps
  // the policy's locality properties.
  for (std::size_t i = 0; i < members_.size(); ++i) {
    const std::size_t m = (preferred + i) % members_.size();
    if ((tried >> m) & 1) continue;
    if (health_[m].state == MemberHealth::kFailed) continue;
    return static_cast<int>(m);
  }
  return -1;
}

void MirroredVolume::note_error(std::size_t member, IoStatus status, SimTime when) {
  ++stats_.member_errors;
  Member& m = health_[member];
  if (m.state == MemberHealth::kFailed) return;
  ++m.consecutive_errors;
  const MemberHealth before = m.state;
  m.state = m.consecutive_errors >= params_.fail_threshold ? MemberHealth::kFailed
                                                           : MemberHealth::kSuspect;
  if (tracer_ != nullptr && m.state != before) {
    tracer_->instant(obs::request_track(static_cast<std::uint32_t>(member)), "raid",
                     m.state == MemberHealth::kFailed ? "member_failed"
                                                      : "member_suspect",
                     when, "status", static_cast<double>(status));
  }
}

void MirroredVolume::note_success(std::size_t member) {
  Member& m = health_[member];
  if (m.state == MemberHealth::kFailed) return;  // failed is sticky
  m.consecutive_errors = 0;
  m.state = MemberHealth::kUp;
}

void MirroredVolume::submit(blockdev::BlockRequest request) {
  assert(request.length > 0);
  assert(request.offset + request.length <= capacity_);
  if (request.op == IoOp::kRead) {
    submit_read(std::move(request));
    return;
  }
  // Write: replicate to every member still taking writes; complete at the
  // slowest replica, ok as long as at least one copy landed.
  ++stats_.writes;
  struct Join {
    std::size_t remaining = 0;
    std::size_t landed = 0;
    SimTime last = 0;
    IoStatus worst = IoStatus::kOk;
    IoCompletion cb;
  };
  auto join = std::make_shared<Join>();
  join->cb = std::move(request.on_complete);
  std::vector<std::size_t> targets;
  for (std::size_t m = 0; m < members_.size(); ++m) {
    if (health_[m].state == MemberHealth::kFailed) {
      ++stats_.degraded_writes;
      continue;
    }
    targets.push_back(m);
  }
  if (targets.empty()) {
    ++stats_.write_failures;
    if (join->cb) join->cb(0, IoStatus::kDeviceFailed);
    return;
  }
  join->remaining = targets.size();
  for (const std::size_t m : targets) {
    blockdev::BlockRequest copy;
    copy.offset = request.offset;
    copy.length = request.length;
    copy.op = IoOp::kWrite;
    copy.id = request.id;
    copy.data = request.data;
    copy.on_complete = [this, join, m](SimTime t, IoStatus s) {
      join->last = std::max(join->last, t);
      if (io_ok(s)) {
        ++join->landed;
        note_success(m);
      } else {
        join->worst = s;
        note_error(m, s, t);
      }
      if (--join->remaining == 0 && join->cb) {
        if (join->landed == 0) ++stats_.write_failures;
        join->cb(join->last, join->landed > 0 ? IoStatus::kOk : join->worst);
      }
    };
    members_[m]->submit(std::move(copy));
  }
}

void MirroredVolume::submit_read(blockdev::BlockRequest request) {
  ++stats_.reads;
  auto attempt = std::make_shared<ReadAttempt>();
  attempt->offset = request.offset;
  attempt->length = request.length;
  attempt->id = request.id;
  attempt->data = request.data;
  attempt->cb = std::move(request.on_complete);
  attempt->preferred = route_read(request.offset);
  try_read(attempt, /*is_failover=*/false);
}

void MirroredVolume::try_read(const std::shared_ptr<ReadAttempt>& attempt,
                              bool is_failover) {
  const int pick = pick_member(attempt->preferred, attempt->tried);
  if (pick < 0) {
    // Every replica tried or failed: surface the last error. Completes
    // inline; callers treat completion time 0 as "never got to a device".
    ++stats_.read_failures;
    if (attempt->cb) attempt->cb(0, attempt->last_status);
    return;
  }
  const auto member = static_cast<std::size_t>(pick);
  // The policy's preferred replica being routed around = degraded mode.
  if (!is_failover && member != attempt->preferred &&
      health_[attempt->preferred].state == MemberHealth::kFailed) {
    ++stats_.degraded_reads;
  }
  attempt->tried |= std::uint64_t{1} << member;

  blockdev::BlockRequest req;
  req.offset = attempt->offset;
  req.length = attempt->length;
  req.op = IoOp::kRead;
  req.id = attempt->id;
  req.data = attempt->data;
  req.on_complete = [this, attempt, member](SimTime t, IoStatus s) {
    if (io_ok(s)) {
      note_success(member);
      if (attempt->cb) attempt->cb(t, IoStatus::kOk);
      return;
    }
    attempt->last_status = s;
    note_error(member, s, t);
    ++stats_.failovers;
    if (tracer_ != nullptr) {
      tracer_->instant(obs::request_track(static_cast<std::uint32_t>(member)), "raid",
                       "read_failover", t, "offset_mb",
                       static_cast<double>(attempt->offset) / static_cast<double>(MiB));
    }
    try_read(attempt, /*is_failover=*/true);
  };
  members_[member]->submit(std::move(req));
}

}  // namespace sst::raid
