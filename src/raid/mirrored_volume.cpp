#include "raid/mirrored_volume.hpp"

#include <algorithm>
#include <cassert>
#include <memory>

namespace sst::raid {

namespace {
constexpr Bytes kAffinityRegion = 64 * MiB;
}

MirroredVolume::MirroredVolume(std::vector<blockdev::BlockDevice*> members, ReadPolicy policy)
    : members_(std::move(members)), policy_(policy) {
  assert(!members_.empty());
  capacity_ = members_.front()->capacity();
  for (const auto* m : members_) capacity_ = std::min(capacity_, m->capacity());
}

std::string MirroredVolume::name() const {
  return "raid1[" + std::to_string(members_.size()) + "]";
}

std::size_t MirroredVolume::route_read(ByteOffset offset) {
  if (policy_ == ReadPolicy::kRoundRobin) {
    const std::size_t pick = next_;
    next_ = (next_ + 1) % members_.size();
    return pick;
  }
  // Region-affine: stable mapping keeps one stream's reads on one replica.
  const std::uint64_t region = offset / kAffinityRegion;
  // SplitMix-style scramble so neighbouring regions spread across replicas.
  std::uint64_t x = region * 0x9E3779B97F4A7C15ULL;
  x ^= x >> 29;
  return static_cast<std::size_t>(x % members_.size());
}

void MirroredVolume::submit(blockdev::BlockRequest request) {
  assert(request.length > 0);
  assert(request.offset + request.length <= capacity_);
  if (request.op == IoOp::kRead) {
    members_[route_read(request.offset)]->submit(std::move(request));
    return;
  }
  // Write: replicate; complete at the slowest replica.
  struct Join {
    std::size_t remaining = 0;
    SimTime last = 0;
    std::function<void(SimTime)> cb;
  };
  auto join = std::make_shared<Join>();
  join->remaining = members_.size();
  join->cb = std::move(request.on_complete);
  for (auto* member : members_) {
    blockdev::BlockRequest copy;
    copy.offset = request.offset;
    copy.length = request.length;
    copy.op = IoOp::kWrite;
    copy.id = request.id;
    copy.data = request.data;
    copy.on_complete = [join](SimTime t) {
      join->last = std::max(join->last, t);
      if (--join->remaining == 0 && join->cb) join->cb(join->last);
    };
    member->submit(std::move(copy));
  }
}

}  // namespace sst::raid
