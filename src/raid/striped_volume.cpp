#include "raid/striped_volume.hpp"

#include <algorithm>
#include <cassert>
#include <memory>

namespace sst::raid {

StripedVolume::StripedVolume(std::vector<blockdev::BlockDevice*> members, Bytes stripe_unit)
    : members_(std::move(members)), stripe_unit_(stripe_unit) {
  assert(!members_.empty());
  assert(stripe_unit_ > 0 && stripe_unit_ % kSectorSize == 0);
  Bytes min_member = members_.front()->capacity();
  for (const auto* m : members_) min_member = std::min(min_member, m->capacity());
  // Whole stripes only.
  const Bytes member_stripes = min_member / stripe_unit_;
  capacity_ = member_stripes * stripe_unit_ * members_.size();
}

std::string StripedVolume::name() const {
  return "raid0[" + std::to_string(members_.size()) + "x" +
         std::to_string(stripe_unit_ / KiB) + "K]";
}

std::pair<std::size_t, ByteOffset> StripedVolume::locate(ByteOffset offset) const {
  const std::uint64_t stripe = offset / stripe_unit_;
  const Bytes within = offset % stripe_unit_;
  const std::size_t member = stripe % members_.size();
  const std::uint64_t member_stripe = stripe / members_.size();
  return {member, member_stripe * stripe_unit_ + within};
}

void StripedVolume::submit(blockdev::BlockRequest request) {
  assert(request.length > 0);
  assert(request.offset % kSectorSize == 0 && request.length % kSectorSize == 0);
  assert(request.offset + request.length <= capacity_);

  // Split into per-stripe-unit fragments; the client completion fires when
  // the last fragment lands.
  struct Join {
    std::size_t remaining = 0;
    SimTime last = 0;
    IoStatus status = IoStatus::kOk;  ///< worst status across fragments
    IoCompletion cb;
  };
  auto join = std::make_shared<Join>();
  join->cb = std::move(request.on_complete);

  ByteOffset cursor = request.offset;
  Bytes remaining = request.length;
  std::vector<blockdev::BlockRequest> fragments;
  while (remaining > 0) {
    const auto [member, member_off] = locate(cursor);
    const Bytes in_unit = stripe_unit_ - (cursor % stripe_unit_);
    const Bytes len = std::min<Bytes>(remaining, in_unit);
    blockdev::BlockRequest frag;
    frag.offset = member_off;
    frag.length = len;
    frag.op = request.op;
    frag.id = request.id;
    frag.data = request.data == nullptr ? nullptr : request.data + (cursor - request.offset);
    frag.on_complete = [join](SimTime t, IoStatus s) {
      join->last = std::max(join->last, t);
      if (!io_ok(s)) join->status = s;
      if (--join->remaining == 0 && join->cb) join->cb(join->last, join->status);
    };
    fragments.push_back(std::move(frag));
    // Record the member alongside via parallel index computation below.
    cursor += len;
    remaining -= len;
  }
  join->remaining = fragments.size();
  // Re-walk to dispatch (locate() is cheap); done in a second pass so that
  // join->remaining is final before any completion can fire.
  cursor = request.offset;
  for (auto& frag : fragments) {
    const auto [member, member_off] = locate(cursor);
    (void)member_off;
    cursor += frag.length;
    members_[member]->submit(std::move(frag));
  }
}

}  // namespace sst::raid
