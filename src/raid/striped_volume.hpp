// RAID-0 striped volume over N block devices. The paper's testbed uses
// 8-channel RAID controllers; whether to expose the disks individually
// (one stream population per spindle, as the paper does) or as one striped
// volume is a deployment decision with real consequences for sequential
// streams: striping converts one client-sequential stream into N
// device-interleaved streams of stripe-unit-sized requests, multiplying
// the effective stream count per disk. The ablation bench quantifies that.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "blockdev/block_device.hpp"

namespace sst::raid {

class StripedVolume final : public blockdev::BlockDevice {
 public:
  /// All members must share a capacity (asserted: the volume uses the
  /// smallest). `stripe_unit` must be a positive multiple of the sector
  /// size. Devices must outlive the volume.
  StripedVolume(std::vector<blockdev::BlockDevice*> members, Bytes stripe_unit);

  void submit(blockdev::BlockRequest request) override;

  [[nodiscard]] Bytes capacity() const override { return capacity_; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] Bytes stripe_unit() const { return stripe_unit_; }
  [[nodiscard]] std::size_t member_count() const { return members_.size(); }

  /// Map a volume byte offset to (member index, member byte offset).
  [[nodiscard]] std::pair<std::size_t, ByteOffset> locate(ByteOffset offset) const;

 private:
  std::vector<blockdev::BlockDevice*> members_;
  Bytes stripe_unit_;
  Bytes capacity_ = 0;
};

}  // namespace sst::raid
