// RAID-1 mirrored volume over N block devices. Reads are routed to one
// replica chosen by a read policy; writes fan out to every replica and
// complete when the slowest lands. For multi-stream sequential workloads
// the interesting read policy is stream-affine routing (stable per-region
// assignment), which preserves per-disk sequentiality — round-robin
// routing destroys it, exactly like a too-small disk-cache segment count.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "blockdev/block_device.hpp"

namespace sst::raid {

enum class ReadPolicy : std::uint8_t {
  kRoundRobin,     ///< rotate replicas per request
  kRegionAffine,   ///< replica = hash of the request's 64 MB region
};

class MirroredVolume final : public blockdev::BlockDevice {
 public:
  /// Devices must outlive the volume; capacity is the smallest member's.
  MirroredVolume(std::vector<blockdev::BlockDevice*> members, ReadPolicy policy);

  void submit(blockdev::BlockRequest request) override;

  [[nodiscard]] Bytes capacity() const override { return capacity_; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t member_count() const { return members_.size(); }

  /// Which replica a read at `offset` goes to (exposed for tests).
  [[nodiscard]] std::size_t route_read(ByteOffset offset);

 private:
  std::vector<blockdev::BlockDevice*> members_;
  ReadPolicy policy_;
  Bytes capacity_ = 0;
  std::size_t next_ = 0;
};

}  // namespace sst::raid
