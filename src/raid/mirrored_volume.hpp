// RAID-1 mirrored volume over N block devices. Reads are routed to one
// replica chosen by a read policy; writes fan out to every replica and
// complete when the slowest lands. For multi-stream sequential workloads
// the interesting read policy is stream-affine routing (stable per-region
// assignment), which preserves per-disk sequentiality — round-robin
// routing destroys it, exactly like a too-small disk-cache segment count.
//
// Robustness: every member carries a health state (up -> suspect ->
// failed). An error completion marks the member suspect and fails the read
// over to an untried healthy replica; `fail_threshold` consecutive errors
// declare the member failed and reads/writes route around it (degraded
// mode). A success while suspect heals the member back to up. Hung members
// never complete here — stack a core::ReliableDevice on each member so
// hangs surface as kTimeout errors this layer can fail over.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "blockdev/block_device.hpp"
#include "obs/tracer.hpp"

namespace sst::raid {

enum class ReadPolicy : std::uint8_t {
  kRoundRobin,     ///< rotate replicas per request
  kRegionAffine,   ///< replica = hash of the request's 64 MB region
};

enum class MemberHealth : std::uint8_t {
  kUp,       ///< healthy, serves reads and writes
  kSuspect,  ///< recent errors; still used, heals on success
  kFailed,   ///< error threshold crossed; routed around (sticky)
};

[[nodiscard]] constexpr const char* to_string(MemberHealth h) {
  switch (h) {
    case MemberHealth::kUp: return "up";
    case MemberHealth::kSuspect: return "suspect";
    case MemberHealth::kFailed: return "failed";
  }
  return "?";
}

struct MirrorParams {
  /// Consecutive errors that move a member from suspect to failed.
  std::uint32_t fail_threshold = 3;
};

struct MirrorStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t member_errors = 0;    ///< error completions from members
  std::uint64_t failovers = 0;        ///< reads retried on another replica
  std::uint64_t degraded_reads = 0;   ///< preferred replica was failed
  std::uint64_t degraded_writes = 0;  ///< fan-out skipped a failed member
  std::uint64_t read_failures = 0;    ///< reads failed on every replica
  std::uint64_t write_failures = 0;   ///< writes that landed on no replica
};

class MirroredVolume final : public blockdev::BlockDevice {
 public:
  /// Devices must outlive the volume; capacity is the smallest member's.
  MirroredVolume(std::vector<blockdev::BlockDevice*> members, ReadPolicy policy,
                 MirrorParams params = {});

  void submit(blockdev::BlockRequest request) override;

  [[nodiscard]] Bytes capacity() const override { return capacity_; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t member_count() const { return members_.size(); }

  /// Which replica a read at `offset` goes to by policy alone (health is
  /// applied on top; exposed for tests).
  [[nodiscard]] std::size_t route_read(ByteOffset offset);

  [[nodiscard]] MemberHealth member_health(std::size_t member) const {
    return health_[member].state;
  }
  [[nodiscard]] std::size_t failed_member_count() const;
  [[nodiscard]] const MirrorStats& stats() const { return stats_; }

  /// Attach a per-experiment tracer (nullptr detaches); failovers and
  /// member state transitions land as instants on the volume's members'
  /// request tracks. The tracer must outlive the volume.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

 private:
  struct Member {
    MemberHealth state = MemberHealth::kUp;
    std::uint32_t consecutive_errors = 0;
  };
  /// One read's failover state, shared across member attempts.
  struct ReadAttempt {
    ByteOffset offset = 0;
    Bytes length = 0;
    RequestId id = kInvalidRequest;
    std::byte* data = nullptr;
    IoCompletion cb;
    std::uint64_t tried = 0;       ///< bitmask of members already attempted
    std::size_t preferred = 0;     ///< the policy's pick (decided once)
    IoStatus last_status = IoStatus::kDeviceFailed;
  };

  void submit_read(blockdev::BlockRequest request);
  void try_read(const std::shared_ptr<ReadAttempt>& attempt, bool is_failover);
  /// First untried member serving reads, walking from the policy pick; -1
  /// if every member is tried or failed.
  [[nodiscard]] int pick_member(std::size_t preferred, std::uint64_t tried) const;
  void note_error(std::size_t member, IoStatus status, SimTime when);
  void note_success(std::size_t member);

  std::vector<blockdev::BlockDevice*> members_;
  ReadPolicy policy_;
  MirrorParams params_;
  std::vector<Member> health_;
  Bytes capacity_ = 0;
  std::size_t next_ = 0;
  MirrorStats stats_;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace sst::raid
