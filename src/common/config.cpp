#include "common/config.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdlib>

namespace sst {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) s.remove_suffix(1);
  return s;
}

Result<std::pair<double, std::string_view>> split_number_suffix(std::string_view text) {
  text = trim(text);
  if (text.empty()) return make_error("empty value");
  std::size_t pos = 0;
  while (pos < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[pos])) || text[pos] == '.' ||
          text[pos] == '-' || text[pos] == '+')) {
    ++pos;
  }
  if (pos == 0) return make_error("value does not start with a number: '" + std::string(text) + "'");
  double number = 0.0;
  const std::string digits(text.substr(0, pos));
  char* end = nullptr;
  number = std::strtod(digits.c_str(), &end);
  if (end == digits.c_str() || *end != '\0') {
    return make_error("malformed number: '" + digits + "'");
  }
  return std::make_pair(number, trim(text.substr(pos)));
}

}  // namespace

Result<Config> Config::from_args(const std::vector<std::string>& args) {
  Config cfg;
  for (const auto& arg : args) {
    const auto eq = arg.find('=');
    if (eq == std::string::npos || eq == 0) {
      return make_error("expected key=value, got '" + arg + "'");
    }
    cfg.set(arg.substr(0, eq), arg.substr(eq + 1));
  }
  return cfg;
}

Result<Config> Config::from_text(std::string_view text) {
  Config cfg;
  std::size_t start = 0;
  while (start <= text.size()) {
    const auto nl = text.find('\n', start);
    std::string_view line =
        text.substr(start, nl == std::string_view::npos ? std::string_view::npos : nl - start);
    start = (nl == std::string_view::npos) ? text.size() + 1 : nl + 1;
    if (const auto hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return make_error("expected key=value, got '" + std::string(line) + "'");
    }
    cfg.set(std::string(trim(line.substr(0, eq))), std::string(trim(line.substr(eq + 1))));
  }
  return cfg;
}

void Config::set(std::string key, std::string value) {
  entries_.insert_or_assign(std::move(key), std::move(value));
}

bool Config::contains(std::string_view key) const { return entries_.find(key) != entries_.end(); }

std::string Config::get_string(std::string_view key, std::string fallback) const {
  const auto it = entries_.find(key);
  return it == entries_.end() ? fallback : it->second;
}

std::int64_t Config::get_int(std::string_view key, std::int64_t fallback) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  std::int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(it->second.data(), it->second.data() + it->second.size(), value);
  return (ec == std::errc{} && ptr == it->second.data() + it->second.size()) ? value : fallback;
}

double Config::get_double(std::string_view key, double fallback) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  return (end == it->second.c_str() + it->second.size()) ? value : fallback;
}

bool Config::get_bool(std::string_view key, bool fallback) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  const auto parsed = parse_bool(it->second);
  return parsed.ok() ? parsed.value() : fallback;
}

Bytes Config::get_bytes(std::string_view key, Bytes fallback) const {
  const auto checked = get_bytes_checked(key);
  return checked.ok() ? checked.value() : fallback;
}

SimTime Config::get_duration(std::string_view key, SimTime fallback) const {
  const auto checked = get_duration_checked(key);
  return checked.ok() ? checked.value() : fallback;
}

Result<Bytes> Config::get_bytes_checked(std::string_view key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return make_error("missing key: " + std::string(key));
  return parse_bytes(it->second);
}

Result<SimTime> Config::get_duration_checked(std::string_view key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return make_error("missing key: " + std::string(key));
  return parse_duration(it->second);
}

Result<Bytes> Config::parse_bytes(std::string_view text) {
  auto split = split_number_suffix(text);
  if (!split.ok()) return split.error();
  auto [number, suffix] = split.value();
  if (number < 0) return make_error("negative size: '" + std::string(text) + "'");
  double multiplier = 1.0;
  std::string s(suffix);
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  if (s.empty() || s == "B") multiplier = 1.0;
  else if (s == "K" || s == "KB" || s == "KIB") multiplier = static_cast<double>(KiB);
  else if (s == "M" || s == "MB" || s == "MIB") multiplier = static_cast<double>(MiB);
  else if (s == "G" || s == "GB" || s == "GIB") multiplier = static_cast<double>(GiB);
  else return make_error("unknown size suffix: '" + std::string(suffix) + "'");
  return static_cast<Bytes>(number * multiplier + 0.5);
}

Result<SimTime> Config::parse_duration(std::string_view text) {
  auto split = split_number_suffix(text);
  if (!split.ok()) return split.error();
  auto [number, suffix] = split.value();
  if (number < 0) return make_error("negative duration: '" + std::string(text) + "'");
  double multiplier = 1.0;  // bare numbers are nanoseconds
  if (suffix.empty() || suffix == "ns") multiplier = 1.0;
  else if (suffix == "us") multiplier = 1e3;
  else if (suffix == "ms") multiplier = 1e6;
  else if (suffix == "s") multiplier = 1e9;
  else return make_error("unknown duration suffix: '" + std::string(suffix) + "'");
  return static_cast<SimTime>(number * multiplier + 0.5);
}

Result<bool> Config::parse_bool(std::string_view text) {
  std::string s(trim(text));
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (s == "1" || s == "true" || s == "yes" || s == "on") return true;
  if (s == "0" || s == "false" || s == "no" || s == "off") return false;
  return make_error("not a boolean: '" + std::string(text) + "'");
}

}  // namespace sst
