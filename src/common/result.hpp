// Minimal expected/result type used for fallible construction and config
// parsing. We avoid exceptions on hot simulation paths; errors are values.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace sst {

/// Error payload: a code-free human-readable message. The library is a
/// research artifact; callers branch on ok()/has_value, not on error codes.
struct Error {
  std::string message;
};

[[nodiscard]] inline Error make_error(std::string msg) { return Error{std::move(msg)}; }

/// Result<T>: either a value or an Error. A deliberately small subset of
/// std::expected (not available in libstdc++ 12).
template <typename T>
class Result {
 public:
  Result(T value) : storage_(std::move(value)) {}            // NOLINT(google-explicit-constructor)
  Result(Error error) : storage_(std::move(error)) {}        // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(storage_); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] T& value() & {
    assert(ok());
    return std::get<T>(storage_);
  }
  [[nodiscard]] const T& value() const& {
    assert(ok());
    return std::get<T>(storage_);
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::get<T>(std::move(storage_));
  }

  [[nodiscard]] const Error& error() const {
    assert(!ok());
    return std::get<Error>(storage_);
  }

  [[nodiscard]] T value_or(T fallback) const {
    return ok() ? std::get<T>(storage_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> storage_;
};

/// Result<void> analogue.
class Status {
 public:
  Status() = default;
  Status(Error error) : error_(std::move(error)), failed_(true) {}  // NOLINT

  [[nodiscard]] bool ok() const { return !failed_; }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const Error& error() const {
    assert(failed_);
    return error_;
  }

  static Status success() { return {}; }

 private:
  Error error_;
  bool failed_ = false;
};

}  // namespace sst
