// Deterministic pseudo-random number generation. Every experiment is seeded
// explicitly so runs are bit-reproducible; std::mt19937 is avoided because
// its state is bulky and its distributions differ across standard libraries.
#pragma once

#include <cmath>
#include <cstdint>

namespace sst {

/// SplitMix64: used to expand a single seed into generator state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// SplitMix64's finalizer as a standalone bijective hash (the same mix the
/// fault injector keys its per-command decisions with).
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Derive an independent child seed from (seed, salt) by chaining mix64 —
/// the hash-keyed scheme from src/fault, reused so workload shards and
/// streams get decorrelated sequences instead of sharing one. Different
/// salts under one seed (and the same salt under different seeds) yield
/// unrelated child seeds.
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t salt) {
  return mix64(mix64(seed ^ 0x5353545F53454544ULL) ^ salt);
}

/// Xoshiro256** — fast, high-quality, tiny-state PRNG.
class Rng {
 public:
  explicit constexpr Rng(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  constexpr std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound == 0 returns 0.
  constexpr std::uint64_t next_below(std::uint64_t bound) {
    if (bound == 0) return 0;
    // Rejection-free multiply-shift (Lemire); bias is negligible for our use.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next_u64()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() {
    return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform in [lo, hi] inclusive.
  constexpr std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi) {
    return lo + next_below(hi - lo + 1);
  }

  /// Exponentially distributed value with the given mean (>0).
  double next_exponential(double mean) {
    // Guard against log(0): next_double() < 1, so 1 - d > 0.
    return -mean * std::log(1.0 - next_double());
  }

  /// Bernoulli draw.
  constexpr bool next_bool(double p_true) { return next_double() < p_true; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

}  // namespace sst
