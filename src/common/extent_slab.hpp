// Refcounted extent allocator for zero-copy staging. An extent is a
// pointer-stable block of bytes drawn from power-of-two size classes; a
// free list per class recycles returned extents, so steady-state staging
// churn never touches the heap. ExtentRef is the shared handle: copies
// bump a refcount, and the memory goes back to its class free list only
// when the last reference drops — which is what lets the staging area hand
// prefetched data to clients by reference (the client's slice keeps the
// extent alive after the staging buffer itself is reaped).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/slab.hpp"
#include "common/types.hpp"

namespace sst {

class ExtentSlab;

struct ExtentSlabStats {
  std::uint64_t fresh_allocations = 0;  ///< extents backed by new memory
  std::uint64_t recycles = 0;           ///< extents served from a free list
  Bytes reserved_bytes = 0;             ///< memory held (live + free lists)
  Bytes peak_reserved = 0;
};

/// Shared handle to a slab extent. Copyable (shares ownership), movable,
/// empty-constructible (== no extent). Not thread-safe: the simulator is
/// single-threaded per run, so a plain counter suffices.
class ExtentRef {
 public:
  ExtentRef() = default;
  ExtentRef(const ExtentRef& other) noexcept;
  ExtentRef(ExtentRef&& other) noexcept
      : slab_(other.slab_), index_(other.index_) {
    other.slab_ = nullptr;
  }
  ExtentRef& operator=(const ExtentRef& other) noexcept;
  ExtentRef& operator=(ExtentRef&& other) noexcept {
    if (this != &other) {
      reset();
      slab_ = other.slab_;
      index_ = other.index_;
      other.slab_ = nullptr;
    }
    return *this;
  }
  ~ExtentRef() { reset(); }

  /// Drop this reference (recycling the extent if it was the last one).
  void reset();

  [[nodiscard]] explicit operator bool() const { return slab_ != nullptr; }
  [[nodiscard]] std::byte* data() const;
  [[nodiscard]] Bytes capacity() const;
  /// Number of live references to this extent (0 for an empty ref).
  [[nodiscard]] std::uint32_t use_count() const;

 private:
  friend class ExtentSlab;
  ExtentRef(ExtentSlab* slab, std::uint32_t index) : slab_(slab), index_(index) {}

  ExtentSlab* slab_ = nullptr;
  std::uint32_t index_ = 0;
};

/// The allocator. Extent control blocks live in a flat vector (indexed, so
/// ExtentRef survives vector growth); backing memory is never freed, only
/// recycled through per-class free lists.
class ExtentSlab {
 public:
  /// Smallest size class; requests round up to the next power of two.
  static constexpr Bytes kMinExtent = 4 * KiB;

  ExtentSlab() = default;
  ExtentSlab(const ExtentSlab&) = delete;
  ExtentSlab& operator=(const ExtentSlab&) = delete;

  /// Allocate an extent of at least `size` bytes (refcount 1).
  [[nodiscard]] ExtentRef allocate(Bytes size);

  [[nodiscard]] const ExtentSlabStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t live_extents() const { return live_; }
  [[nodiscard]] Bytes live_bytes() const { return live_bytes_; }

  /// Every backing allocation the slab owns (live or parked on a free
  /// list), as (base, capacity) pairs. Backing memory is never freed, so
  /// the pointers stay valid for the slab's lifetime — which is what lets a
  /// real-I/O backend register them once as fixed DMA buffers.
  [[nodiscard]] std::vector<std::pair<std::byte*, Bytes>> regions() const {
    std::vector<std::pair<std::byte*, Bytes>> out;
    out.reserve(extents_.size());
    for (const auto& extent : extents_) {
      out.emplace_back(extent.mem.get(), extent.capacity);
    }
    return out;
  }

 private:
  friend class ExtentRef;

  struct Extent {
    std::unique_ptr<std::byte[]> mem;
    Bytes capacity = 0;
    std::uint32_t refs = 0;
    std::uint32_t size_class = 0;
  };

  void retain(std::uint32_t index) { ++extents_[index].refs; }
  void release(std::uint32_t index);
  [[nodiscard]] static std::uint32_t class_of(Bytes size);

  std::vector<Extent> extents_;
  /// Free extents by size class (index = log2 of class capacity).
  std::vector<std::vector<std::uint32_t>> free_lists_;
  std::size_t live_ = 0;
  Bytes live_bytes_ = 0;
  ExtentSlabStats stats_;
};

inline ExtentRef::ExtentRef(const ExtentRef& other) noexcept
    : slab_(other.slab_), index_(other.index_) {
  if (slab_ != nullptr) slab_->retain(index_);
}

inline ExtentRef& ExtentRef::operator=(const ExtentRef& other) noexcept {
  if (this != &other) {
    if (other.slab_ != nullptr) other.slab_->retain(other.index_);
    reset();
    slab_ = other.slab_;
    index_ = other.index_;
  }
  return *this;
}

inline void ExtentRef::reset() {
  if (slab_ != nullptr) {
    slab_->release(index_);
    slab_ = nullptr;
  }
}

inline std::byte* ExtentRef::data() const {
  return slab_ != nullptr ? slab_->extents_[index_].mem.get() : nullptr;
}

inline Bytes ExtentRef::capacity() const {
  return slab_ != nullptr ? slab_->extents_[index_].capacity : 0;
}

inline std::uint32_t ExtentRef::use_count() const {
  return slab_ != nullptr ? slab_->extents_[index_].refs : 0;
}

}  // namespace sst
