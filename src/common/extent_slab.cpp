#include "common/extent_slab.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace sst {

std::uint32_t ExtentSlab::class_of(Bytes size) {
  const Bytes rounded = std::bit_ceil(std::max(size, kMinExtent));
  return static_cast<std::uint32_t>(std::countr_zero(rounded));
}

ExtentRef ExtentSlab::allocate(Bytes size) {
  assert(size > 0);
  const std::uint32_t cls = class_of(size);
  if (cls >= free_lists_.size()) free_lists_.resize(cls + 1);

  std::uint32_t index;
  auto& free_list = free_lists_[cls];
  if (!free_list.empty()) {
    index = free_list.back();
    free_list.pop_back();
    ++stats_.recycles;
  } else {
    const Bytes capacity = Bytes{1} << cls;
    index = static_cast<std::uint32_t>(extents_.size());
    Extent& e = extents_.emplace_back();
    e.mem = std::make_unique<std::byte[]>(capacity);
    e.capacity = capacity;
    e.size_class = cls;
    ++stats_.fresh_allocations;
    stats_.reserved_bytes += capacity;
    stats_.peak_reserved = std::max(stats_.peak_reserved, stats_.reserved_bytes);
  }

  Extent& e = extents_[index];
  assert(e.refs == 0);
  e.refs = 1;
  ++live_;
  live_bytes_ += e.capacity;
  return ExtentRef(this, index);
}

void ExtentSlab::release(std::uint32_t index) {
  Extent& e = extents_[index];
  assert(e.refs > 0);
  if (--e.refs == 0) {
    assert(live_ > 0);
    --live_;
    live_bytes_ -= e.capacity;
    free_lists_[e.size_class].push_back(index);
  }
}

}  // namespace sst
