// Leveled logging to stderr. Quiet by default (kWarn) so benchmarks print
// clean tables; tests and examples raise the level explicitly.
#pragma once

#include <sstream>
#include <string_view>

#include "common/types.hpp"

namespace sst {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

[[nodiscard]] const char* to_string(LogLevel level);

namespace detail {
void log_emit(LogLevel level, std::string_view component, std::string_view message);
}

/// Streaming log statement builder:
///   LogMessage(LogLevel::kInfo, "disk") << "seek to cyl " << cyl;
/// emits on destruction if the level passes the threshold. log_emit prefixes
/// wall-clock time and a thread tag; pass `sim_now` to also lead the message
/// with the simulated timestamp.
class LogMessage {
 public:
  LogMessage(LogLevel level, std::string_view component)
      : level_(level), component_(component), enabled_(level >= log_level()) {}
  LogMessage(LogLevel level, std::string_view component, SimTime sim_now)
      : LogMessage(level, component) {
    if (enabled_) stream_ << "[sim " << to_millis(sim_now) << "ms] ";
  }
  ~LogMessage() {
    if (enabled_) detail::log_emit(level_, component_, stream_.str());
  }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view component_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace sst
