// Tiny key=value configuration store. Experiments and examples accept
// "key=value" pairs on the command line (mirroring DiskSim's parameter-file
// style) and look values up with typed accessors that support size suffixes
// (K/M/G, powers of two) and time suffixes (ns/us/ms/s).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"
#include "common/types.hpp"

namespace sst {

class Config {
 public:
  Config() = default;

  /// Parse a list of "key=value" tokens (e.g. argv tail). Unknown formats
  /// produce an error naming the offending token.
  static Result<Config> from_args(const std::vector<std::string>& args);

  /// Parse newline-separated "key=value" text; '#' starts a comment.
  static Result<Config> from_text(std::string_view text);

  void set(std::string key, std::string value);
  [[nodiscard]] bool contains(std::string_view key) const;

  /// Typed getters return the fallback if the key is missing; a present but
  /// malformed value is reported via get_*_checked.
  [[nodiscard]] std::string get_string(std::string_view key, std::string fallback) const;
  [[nodiscard]] std::int64_t get_int(std::string_view key, std::int64_t fallback) const;
  [[nodiscard]] double get_double(std::string_view key, double fallback) const;
  [[nodiscard]] bool get_bool(std::string_view key, bool fallback) const;
  /// Accepts raw bytes or suffixed sizes: "64K", "8M", "1G" (binary units).
  [[nodiscard]] Bytes get_bytes(std::string_view key, Bytes fallback) const;
  /// Accepts "500us", "10ms", "2s", or raw nanoseconds.
  [[nodiscard]] SimTime get_duration(std::string_view key, SimTime fallback) const;

  [[nodiscard]] Result<Bytes> get_bytes_checked(std::string_view key) const;
  [[nodiscard]] Result<SimTime> get_duration_checked(std::string_view key) const;

  [[nodiscard]] const std::map<std::string, std::string, std::less<>>& entries() const {
    return entries_;
  }

  /// Standalone parsers, reused by getters and directly by tests.
  static Result<Bytes> parse_bytes(std::string_view text);
  static Result<SimTime> parse_duration(std::string_view text);
  static Result<bool> parse_bool(std::string_view text);

 private:
  std::map<std::string, std::string, std::less<>> entries_;
};

}  // namespace sst
