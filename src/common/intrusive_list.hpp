// Intrusive doubly-linked list. The linkage lives inside the element (an
// IntrusiveHook member), so linking and unlinking never allocate and a node
// can be removed in O(1) given only its pointer — the queue discipline the
// scheduler hot paths (candidate queue, per-stream pending requests, disk
// command queues) are built on. The list does not own its nodes; whoever
// allocates them (usually a Slab) frees them after unlinking.
#pragma once

#include <cassert>
#include <cstddef>
#include <iterator>

namespace sst {

/// Embedded linkage. A hook belongs to at most one list at a time; `linked`
/// distinguishes "in some list" from free, making remove() safely
/// idempotent at the call site.
template <typename T>
struct IntrusiveHook {
  T* prev = nullptr;
  T* next = nullptr;
  bool linked = false;
};

template <typename T, IntrusiveHook<T> T::* Hook>
class IntrusiveList {
 public:
  IntrusiveList() = default;
  IntrusiveList(const IntrusiveList&) = delete;
  IntrusiveList& operator=(const IntrusiveList&) = delete;
  /// Moving transfers the whole chain (nodes link to each other, never to
  /// the list object, so only head/tail move); the source ends up empty.
  IntrusiveList(IntrusiveList&& other) noexcept
      : head_(other.head_), tail_(other.tail_), size_(other.size_) {
    other.head_ = nullptr;
    other.tail_ = nullptr;
    other.size_ = 0;
  }
  IntrusiveList& operator=(IntrusiveList&& other) noexcept {
    if (this != &other) {
      assert(empty() && "move-assigning over a non-empty intrusive list");
      head_ = other.head_;
      tail_ = other.tail_;
      size_ = other.size_;
      other.head_ = nullptr;
      other.tail_ = nullptr;
      other.size_ = 0;
    }
    return *this;
  }

  [[nodiscard]] bool empty() const { return head_ == nullptr; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] T* front() const { return head_; }
  [[nodiscard]] T* back() const { return tail_; }

  [[nodiscard]] static bool is_linked(const T& node) { return (node.*Hook).linked; }
  [[nodiscard]] static T* next_of(const T& node) { return (node.*Hook).next; }
  [[nodiscard]] static T* prev_of(const T& node) { return (node.*Hook).prev; }

  void push_back(T& node) {
    IntrusiveHook<T>& hook = link(node);
    hook.prev = tail_;
    hook.next = nullptr;
    if (tail_ != nullptr) {
      (tail_->*Hook).next = &node;
    } else {
      head_ = &node;
    }
    tail_ = &node;
  }

  void push_front(T& node) {
    IntrusiveHook<T>& hook = link(node);
    hook.prev = nullptr;
    hook.next = head_;
    if (head_ != nullptr) {
      (head_->*Hook).prev = &node;
    } else {
      tail_ = &node;
    }
    head_ = &node;
  }

  /// Insert `node` immediately before `pos` (which must be linked here).
  void insert_before(T& pos, T& node) {
    T* const before = (pos.*Hook).prev;
    if (before == nullptr) {
      push_front(node);
      return;
    }
    IntrusiveHook<T>& hook = link(node);
    hook.prev = before;
    hook.next = &pos;
    (before->*Hook).next = &node;
    (pos.*Hook).prev = &node;
  }

  /// Insert `node` immediately after `pos` (which must be linked here).
  void insert_after(T& pos, T& node) {
    T* const after = (pos.*Hook).next;
    if (after == nullptr) {
      push_back(node);
      return;
    }
    IntrusiveHook<T>& hook = link(node);
    hook.prev = &pos;
    hook.next = after;
    (pos.*Hook).next = &node;
    (after->*Hook).prev = &node;
  }

  /// Unlink `node`. The node must currently be linked in *this* list.
  void remove(T& node) {
    IntrusiveHook<T>& hook = node.*Hook;
    assert(hook.linked && "removing a node that is not linked");
    if (hook.prev != nullptr) {
      (hook.prev->*Hook).next = hook.next;
    } else {
      head_ = hook.next;
    }
    if (hook.next != nullptr) {
      (hook.next->*Hook).prev = hook.prev;
    } else {
      tail_ = hook.prev;
    }
    hook.prev = nullptr;
    hook.next = nullptr;
    hook.linked = false;
    assert(size_ > 0);
    --size_;
  }

  [[nodiscard]] T* pop_front() {
    T* const node = head_;
    if (node != nullptr) remove(*node);
    return node;
  }

  /// Unlink every node (nodes themselves are untouched otherwise).
  void clear() {
    while (head_ != nullptr) pop_front();
  }

  /// Forward iteration; removing the *current* node invalidates the
  /// iterator — capture next_of() first when erasing while walking.
  class iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = T;
    using difference_type = std::ptrdiff_t;
    using pointer = T*;
    using reference = T&;

    iterator() = default;
    explicit iterator(T* node) : node_(node) {}
    reference operator*() const { return *node_; }
    pointer operator->() const { return node_; }
    iterator& operator++() {
      node_ = (node_->*Hook).next;
      return *this;
    }
    iterator operator++(int) {
      iterator out = *this;
      ++*this;
      return out;
    }
    bool operator==(const iterator& other) const { return node_ == other.node_; }
    bool operator!=(const iterator& other) const { return node_ != other.node_; }

   private:
    T* node_ = nullptr;
  };

  [[nodiscard]] iterator begin() const { return iterator(head_); }
  [[nodiscard]] iterator end() const { return iterator(nullptr); }

 private:
  IntrusiveHook<T>& link(T& node) {
    IntrusiveHook<T>& hook = node.*Hook;
    assert(!hook.linked && "node already linked");
    hook.linked = true;
    ++size_;
    return hook;
  }

  T* head_ = nullptr;
  T* tail_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace sst
