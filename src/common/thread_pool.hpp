// Fixed-size pool of worker threads draining one shared FIFO task queue.
// Deliberately work-stealing-free: the only parallel work in this codebase
// is fanning out whole experiment runs (seconds of simulated time each), so
// a single locked queue sees negligible contention and keeps completion
// order reasoning trivial. Destruction waits for every queued task.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sst {

class ThreadPool {
 public:
  /// Spawns `workers` threads (at least one).
  explicit ThreadPool(unsigned workers);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; it runs on some worker in FIFO dispatch order. Tasks
  /// must not throw — wrap work that can fail and capture the error (see
  /// experiment::run_sweep).
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished running.
  void wait_idle();

  [[nodiscard]] unsigned worker_count() const {
    return static_cast<unsigned>(workers_.size());
  }

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> tasks_;
  std::size_t unfinished_ = 0;  ///< queued + currently running
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace sst
