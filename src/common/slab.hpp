// Pooled object slab: chunked, pointer-stable storage with a free list.
// acquire()/release() recycle slots without touching the heap once the pool
// is warm, and returned pointers stay valid for the slab's lifetime (chunks
// are never moved or freed), so intrusive lists can thread through slots.
// Slots keep their last state across recycling; callers reset what matters
// (usually by move-assigning a fresh value on acquire).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

namespace sst {

template <typename T>
class Slab {
 public:
  static constexpr std::size_t kChunkSize = 64;

  Slab() = default;
  Slab(const Slab&) = delete;
  Slab& operator=(const Slab&) = delete;

  [[nodiscard]] T* acquire() {
    if (free_.empty()) grow();
    T* slot = free_.back();
    free_.pop_back();
    return slot;
  }

  void release(T* slot) { free_.push_back(slot); }

  /// Slots handed out and not yet released.
  [[nodiscard]] std::size_t live() const {
    return chunks_.size() * kChunkSize - free_.size();
  }
  [[nodiscard]] std::size_t capacity() const { return chunks_.size() * kChunkSize; }

 private:
  void grow() {
    chunks_.push_back(std::make_unique<T[]>(kChunkSize));
    T* const chunk = chunks_.back().get();
    free_.reserve(free_.size() + kChunkSize);
    for (std::size_t i = kChunkSize; i > 0; --i) free_.push_back(&chunk[i - 1]);
  }

  std::vector<std::unique_ptr<T[]>> chunks_;
  std::vector<T*> free_;
};

}  // namespace sst
