#include "common/logging.hpp"

#include <atomic>
#include <cstdio>
#include <ctime>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/time.h>
#endif

namespace sst {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

std::atomic<unsigned> g_next_thread_tag{0};

/// Small dense per-thread tag ("T0", "T1", ...) assigned on first log from
/// that thread. Sweep workers each get their own, so interleaved lines stay
/// attributable.
unsigned thread_tag() {
  thread_local const unsigned tag =
      g_next_thread_tag.fetch_add(1, std::memory_order_relaxed);
  return tag;
}

/// Wall-clock "HH:MM:SS.mmm" — wall time, not sim time: it tells the reader
/// when the process emitted the line. Call sites stream sim time themselves
/// when it matters.
void append_wall_clock(std::string& line) {
  long ms = 0;
  std::time_t secs = 0;
#if defined(__unix__) || defined(__APPLE__)
  struct timeval tv{};
  gettimeofday(&tv, nullptr);
  secs = tv.tv_sec;
  ms = tv.tv_usec / 1000;
#else
  secs = std::time(nullptr);
#endif
  struct tm parts{};
#if defined(_WIN32)
  localtime_s(&parts, &secs);
#else
  localtime_r(&secs, &parts);
#endif
  char buf[20];
  std::snprintf(buf, sizeof buf, "%02d:%02d:%02d.%03ld", parts.tm_hour,
                parts.tm_min, parts.tm_sec, ms);
  line.append(buf);
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

namespace detail {

void log_emit(LogLevel level, std::string_view component, std::string_view message) {
  std::string line;
  line.reserve(component.size() + message.size() + 32);
  line.append("[");
  append_wall_clock(line);
  line.append("][T");
  line.append(std::to_string(thread_tag()));
  line.append("][");
  line.append(to_string(level));
  line.append("][");
  line.append(component);
  line.append("] ");
  line.append(message);
  line.push_back('\n');
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace detail
}  // namespace sst
