#include "common/logging.hpp"

#include <atomic>
#include <cstdio>
#include <string>

namespace sst {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

namespace detail {

void log_emit(LogLevel level, std::string_view component, std::string_view message) {
  std::string line;
  line.reserve(component.size() + message.size() + 16);
  line.append("[");
  line.append(to_string(level));
  line.append("][");
  line.append(component);
  line.append("] ");
  line.append(message);
  line.push_back('\n');
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace detail
}  // namespace sst
