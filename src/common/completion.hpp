// Status-carrying completion callback for asynchronous I/O.
//
// Most of the codebase predates fault injection and registers handlers that
// only care about the completion time; the fault/recovery layers need the
// IoStatus as well. IoCompletion accepts both handler shapes: a
// `void(SimTime)` callable is adapted (it observes time only, which is
// exactly the legacy behaviour), while a `void(SimTime, IoStatus)` callable
// sees the full outcome. Invoking with just a time reports success.
//
// The timestamp is read from the clock of the ExecutionContext that owns
// the completing device (exec/execution_context.hpp): virtual nanoseconds
// under the simulated backend, monotonic wall-clock nanoseconds since
// context construction under the real io_uring backend. Handlers must not
// assume virtual time — compare against the same context's now(), never
// across contexts. Status values are likewise backend-agnostic:
// IoStatus::kMediaError carries injected faults in simulation and real
// syscall/short-transfer failures from the uring backend. Completions fire
// exactly once per request and may fire in any order across requests.
// Handlers must not assume which stack frame invokes them: simulated
// devices always defer to the event loop, but the real backend completes
// degenerate requests (no data buffer, failed submission) inline from
// submit(), so a handler that resubmits must tolerate re-entrancy.
#pragma once

#include <cstddef>
#include <functional>
#include <type_traits>
#include <utility>

#include "common/types.hpp"

namespace sst {

class IoCompletion {
 public:
  IoCompletion() = default;
  IoCompletion(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F, typename D = std::decay_t<F>,
            std::enable_if_t<!std::is_same_v<D, IoCompletion> &&
                                 std::is_invocable_v<D&, SimTime, IoStatus>,
                             int> = 0>
  IoCompletion(F&& fn) : fn_(std::forward<F>(fn)) {}  // NOLINT

  template <typename F, typename D = std::decay_t<F>,
            std::enable_if_t<!std::is_same_v<D, IoCompletion> &&
                                 !std::is_invocable_v<D&, SimTime, IoStatus> &&
                                 std::is_invocable_v<D&, SimTime>,
                             int> = 0>
  IoCompletion(F&& fn)  // NOLINT(google-explicit-constructor)
      : fn_([inner = std::forward<F>(fn)](SimTime t, IoStatus) mutable { inner(t); }) {}

  void operator()(SimTime t, IoStatus s = IoStatus::kOk) const { fn_(t, s); }

  [[nodiscard]] explicit operator bool() const { return static_cast<bool>(fn_); }

 private:
  std::function<void(SimTime, IoStatus)> fn_;
};

}  // namespace sst
