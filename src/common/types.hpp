// Core value types and units shared by every streamstore module.
//
// Conventions:
//  - Simulated time is an integral count of nanoseconds (SimTime). All
//    latency parameters are expressed through the literal-style helpers
//    below (usec/msec/sec) so call sites stay unit-checked by eye.
//  - Disk addresses are 512-byte sectors (Lba). Host-visible requests are
//    byte-addressed (ByteOffset/Bytes) and converted at the device edge.
//  - Identifiers are small integer handles, distinct types to prevent
//    accidental cross-assignment.
#pragma once

#include <cstdint>
#include <limits>

namespace sst {

// ---------------------------------------------------------------- time ----

/// Simulated time in nanoseconds since simulation start.
using SimTime = std::uint64_t;

/// Signed duration in nanoseconds (useful for differences).
using SimDuration = std::int64_t;

inline constexpr SimTime kSimTimeMax = std::numeric_limits<SimTime>::max();

[[nodiscard]] constexpr SimTime nsec(std::uint64_t n) { return n; }
[[nodiscard]] constexpr SimTime usec(std::uint64_t u) { return u * 1'000ULL; }
[[nodiscard]] constexpr SimTime msec(std::uint64_t m) { return m * 1'000'000ULL; }
[[nodiscard]] constexpr SimTime sec(std::uint64_t s) { return s * 1'000'000'000ULL; }

/// Fractional seconds -> SimTime (rounds to nearest nanosecond).
[[nodiscard]] constexpr SimTime from_seconds(double s) {
  return static_cast<SimTime>(s * 1e9 + 0.5);
}

[[nodiscard]] constexpr double to_seconds(SimTime t) { return static_cast<double>(t) / 1e9; }
[[nodiscard]] constexpr double to_millis(SimTime t) { return static_cast<double>(t) / 1e6; }

// --------------------------------------------------------------- sizes ----

using Bytes = std::uint64_t;
using ByteOffset = std::uint64_t;

inline constexpr Bytes KiB = 1024ULL;
inline constexpr Bytes MiB = 1024ULL * KiB;
inline constexpr Bytes GiB = 1024ULL * MiB;

/// Disk sector size; every Lba addresses one sector.
inline constexpr Bytes kSectorSize = 512;

/// Logical block address in units of kSectorSize.
using Lba = std::uint64_t;

[[nodiscard]] constexpr Lba bytes_to_sectors(Bytes b) {
  return (b + kSectorSize - 1) / kSectorSize;
}
[[nodiscard]] constexpr Bytes sectors_to_bytes(Lba s) { return s * kSectorSize; }

/// Throughput helper: bytes over a simulated interval -> MB/s (decimal MB,
/// matching the paper's axes).
[[nodiscard]] constexpr double mb_per_sec(Bytes bytes, SimTime elapsed) {
  if (elapsed == 0) return 0.0;
  return (static_cast<double>(bytes) / 1e6) / to_seconds(elapsed);
}

// ----------------------------------------------------------- identities ----

/// Identifies a disk within the whole storage node (flat numbering).
using DiskId = std::uint32_t;

/// Identifies a controller within the storage node.
using ControllerId = std::uint32_t;

/// Identifies a detected sequential stream inside the core scheduler.
using StreamId = std::uint64_t;

/// Identifies a client-issued request (unique per storage-node lifetime).
using RequestId = std::uint64_t;

inline constexpr StreamId kInvalidStream = std::numeric_limits<StreamId>::max();
inline constexpr RequestId kInvalidRequest = std::numeric_limits<RequestId>::max();

// ------------------------------------------------------------- request ----

enum class IoOp : std::uint8_t { kRead, kWrite };

[[nodiscard]] constexpr const char* to_string(IoOp op) {
  return op == IoOp::kRead ? "read" : "write";
}

/// Outcome of an asynchronous I/O command, delivered alongside the
/// completion time. The happy path stays `kOk`; the fault-injection and
/// recovery layers introduce the failure values:
///  - kMediaError: the device reported an unrecoverable read/write error
///    (after the retry hierarchy below it gave up).
///  - kTimeout: the command exceeded its deadline and every retry did too
///    (a hung or dropped command).
///  - kDeviceFailed: the target was already declared failed; the command
///    was rejected without touching hardware (fail-fast).
enum class IoStatus : std::uint8_t { kOk, kMediaError, kTimeout, kDeviceFailed };

[[nodiscard]] constexpr bool io_ok(IoStatus s) { return s == IoStatus::kOk; }

[[nodiscard]] constexpr const char* to_string(IoStatus s) {
  switch (s) {
    case IoStatus::kOk: return "ok";
    case IoStatus::kMediaError: return "media_error";
    case IoStatus::kTimeout: return "timeout";
    case IoStatus::kDeviceFailed: return "device_failed";
  }
  return "?";
}

}  // namespace sst
