#include "common/thread_pool.hpp"

#include <utility>

namespace sst {

ThreadPool::ThreadPool(unsigned workers) {
  if (workers == 0) workers = 1;
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    workers_.emplace_back([this]() { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mutex_);
    idle_.wait(lock, [this]() { return unfinished_ == 0; });
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    tasks_.push_back(std::move(task));
    ++unfinished_;
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this]() { return unfinished_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      task_ready_.wait(lock, [this]() { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ with a drained queue
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --unfinished_;
      if (unfinished_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace sst
