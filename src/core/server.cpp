#include "core/server.hpp"

#include <cassert>

namespace sst::core {

StorageServer::StorageServer(sim::Simulator& simulator,
                             std::vector<blockdev::BlockDevice*> devices,
                             SchedulerParams params)
    : sim_(simulator),
      devices_(devices),
      classifier_(params.classifier),
      scheduler_(simulator, std::move(devices), params) {}

void StorageServer::submit(ClientRequest request) {
  assert(request.device < devices_.size());
  assert(request.length > 0);
  assert(request.offset + request.length <= devices_[request.device]->capacity());
  ++stats_.requests;

  // Classifier regions age out alongside the scheduler's GC; piggyback a
  // sweep on a deterministic request cadence to avoid a second timer.
  if ((stats_.requests & 0x3FF) == 0) {
    classifier_.collect_garbage(sim_.now());
  }

  if (request.op == IoOp::kWrite) {
    ++stats_.direct_writes;
    direct(std::move(request));
    return;
  }

  if (Stream* stream = scheduler_.find_stream(request.device, request.offset)) {
    ++stats_.sequential_requests;
    scheduler_.enqueue(*stream, std::move(request));
    return;
  }

  const auto detected =
      classifier_.record(request.device, request.offset, request.length, sim_.now());
  if (detected.has_value()) {
    // Read-ahead starts exactly where the triggering request ends: the
    // classifier's block-rounded end may overshoot it, and a stream whose
    // cursor starts past the client's next read would strand that request.
    const ByteOffset next_read = request.offset + request.length;
    Stream& stream =
        scheduler_.create_stream(detected->device, detected->start, next_read);
    // The triggering request itself lies below the new stream's read-ahead
    // start; enqueue() routes it to the device directly while the stream
    // begins prefetching from the detection end.
    ++stats_.sequential_requests;
    scheduler_.enqueue(stream, std::move(request));
    return;
  }

  ++stats_.direct_reads;
  direct(std::move(request));
}

void StorageServer::direct(ClientRequest request) {
  blockdev::BlockRequest io;
  io.offset = request.offset;
  io.length = request.length;
  io.op = request.op;
  io.id = request.id;
  io.data = request.data;
  io.on_complete = std::move(request.on_complete);
  devices_[request.device]->submit(std::move(io));
}

}  // namespace sst::core
