#include "core/server.hpp"

#include <cassert>
#include <string>
#include <utility>

namespace sst::core {

StorageServer::StorageServer(exec::ExecutionContext& simulator,
                             std::vector<blockdev::BlockDevice*> devices,
                             SchedulerParams params)
    : sim_(simulator),
      devices_(devices),
      classifier_(params.classifier),
      scheduler_(simulator, std::move(devices), params) {}

void StorageServer::set_tracer(obs::Tracer* tracer) {
  tracer_ = tracer;
  scheduler_.set_tracer(tracer);
  if (tracer_ != nullptr) {
    for (std::size_t dev = 0; dev < devices_.size(); ++dev) {
      tracer_->name_track(obs::request_track(static_cast<std::uint32_t>(dev)),
                          "requests dev " + std::to_string(dev));
    }
  }
}

void StorageServer::set_flight_recorder(obs::FlightRecorder* flight) {
  flight_ = flight;
  scheduler_.set_flight_recorder(flight);
}

void StorageServer::trace_request(ClientRequest& request, const char* kind) {
  const auto tid = obs::request_track(request.device);
  request.on_complete = [this, tid, kind, start = sim_.now(),
                         prev = std::move(request.on_complete)](SimTime done,
                                                                IoStatus status) {
    tracer_->complete(tid, "request", kind, start, done);
    if (prev) prev(done, status);
  };
}

void StorageServer::stamp_request(ClientRequest& request, obs::RequestRoute route) {
  obs::RequestTrace* trace = request.trace;
  trace->route = route;
  request.on_complete = [this, trace, tid = obs::request_track(request.device),
                         prev = std::move(request.on_complete)](SimTime done,
                                                                IoStatus status) {
    trace->done = done;
    // Per-stage spans for stream-served requests: queue (admit -> serve)
    // and staging (serve -> done). Other routes never pass serve_request.
    if (tracer_ != nullptr && io_ok(status) && trace->serve >= trace->admit &&
        trace->serve > 0) {
      tracer_->complete(tid, "breakdown", "queue", trace->admit, trace->serve);
      tracer_->complete(tid, "breakdown", "staging", trace->serve, done);
    }
    if (prev) prev(done, status);
  };
}

void StorageServer::submit(ClientRequest request) {
  assert(request.device < devices_.size());
  assert(request.length > 0);
  assert(request.offset + request.length <= devices_[request.device]->capacity());
  ++stats_.requests;

  if (request.trace != nullptr) request.trace->admit = sim_.now();
  if (flight_ != nullptr) {
    flight_->record(obs::FlightCode::kAdmit, sim_.now(),
                    request.trace != nullptr ? request.trace->rid : 0,
                    request.device, request.id);
  }

  // Classifier regions age out alongside the scheduler's GC; piggyback a
  // sweep on a deterministic request cadence to avoid a second timer.
  if ((stats_.requests & 0x3FF) == 0) {
    classifier_.collect_garbage(sim_.now());
  }

  // Fail fast against a device the retry hierarchy already declared dead:
  // complete with an error instead of queueing work that cannot finish.
  if (scheduler_.device_failed(request.device)) {
    ++stats_.rejected_requests;
    if (tracer_ != nullptr) trace_request(request, "rejected");
    if (request.trace != nullptr) stamp_request(request, obs::RequestRoute::kRejected);
    if (request.on_complete) request.on_complete(sim_.now(), IoStatus::kDeviceFailed);
    return;
  }

  if (request.op == IoOp::kWrite) {
    ++stats_.direct_writes;
    if (tracer_ != nullptr) trace_request(request, "direct_write");
    if (request.trace != nullptr) {
      stamp_request(request, obs::RequestRoute::kDirectWrite);
    }
    direct(std::move(request));
    return;
  }

  if (Stream* stream = scheduler_.find_stream(request.device, request.offset)) {
    ++stats_.sequential_requests;
    if (tracer_ != nullptr) trace_request(request, "stream_read");
    if (request.trace != nullptr) stamp_request(request, obs::RequestRoute::kStream);
    scheduler_.enqueue(*stream, std::move(request));
    return;
  }

  const auto detected =
      classifier_.record(request.device, request.offset, request.length, sim_.now());
  if (detected.has_value()) {
    // Read-ahead starts exactly where the triggering request ends: the
    // classifier's block-rounded end may overshoot it, and a stream whose
    // cursor starts past the client's next read would strand that request.
    const ByteOffset next_read = request.offset + request.length;
    if (tracer_ != nullptr) {
      tracer_->instant(obs::kSchedulerTrack, "classifier", "stream_detected",
                       sim_.now(), "device", static_cast<double>(detected->device));
    }
    Stream& stream =
        scheduler_.create_stream(detected->device, detected->start, next_read);
    // The triggering request itself lies below the new stream's read-ahead
    // start; enqueue() routes it to the device directly while the stream
    // begins prefetching from the detection end.
    ++stats_.sequential_requests;
    if (tracer_ != nullptr) trace_request(request, "stream_read");
    if (request.trace != nullptr) stamp_request(request, obs::RequestRoute::kStream);
    scheduler_.enqueue(stream, std::move(request));
    return;
  }

  ++stats_.direct_reads;
  if (tracer_ != nullptr) trace_request(request, "direct_read");
  if (request.trace != nullptr) stamp_request(request, obs::RequestRoute::kDirectRead);
  direct(std::move(request));
}

void StorageServer::direct(ClientRequest request) {
  blockdev::BlockRequest io;
  io.offset = request.offset;
  io.length = request.length;
  io.op = request.op;
  io.id = request.id;
  io.data = request.data;
  io.on_complete = std::move(request.on_complete);
  devices_[request.device]->submit(std::move(io));
}

}  // namespace sst::core
