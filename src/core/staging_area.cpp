#include "core/staging_area.hpp"

#include <algorithm>
#include <cstring>

#include "obs/slo.hpp"

namespace sst::core {

bool StagingArea::covers(const std::vector<std::unique_ptr<IoBuffer>>& buffers,
                         ByteOffset off, Bytes len, bool filled_only) {
  // Buffers are kept sorted by offset and contiguous ranges may span
  // several buffers. Find the last buffer beginning at or before `off`,
  // stepping back over rare overlapping extents.
  auto first = std::upper_bound(
      buffers.begin(), buffers.end(), off,
      [](ByteOffset o, const std::unique_ptr<IoBuffer>& b) { return o < b->offset(); });
  while (first != buffers.begin() &&
         (*std::prev(first))->offset() + (*std::prev(first))->capacity() > off) {
    --first;
  }
  ByteOffset cursor = off;
  const ByteOffset end = off + len;
  for (auto it = first; it != buffers.end(); ++it) {
    const auto& b = *it;
    const ByteOffset b_end = filled_only ? b->end() : b->offset() + b->capacity();
    if (b->offset() > cursor) {
      if (cursor >= end) break;
      if (b->offset() >= end) break;
      return false;  // gap before reaching `cursor`
    }
    if (b_end > cursor) cursor = b_end;
    if (cursor >= end) return true;
  }
  return cursor >= end;
}

IoBuffer* StagingArea::stage(Stream& stream, ByteOffset offset, Bytes len, SimTime now) {
  auto buffer = pool_.allocate(stream.device, offset, len, now);
  if (buffer == nullptr) return nullptr;
  IoBuffer* raw = buffer.get();
  // Keep buffers sorted by offset. Allocations are monotone per stream, so
  // the new extent almost always belongs at the tail; a rewind re-aim can
  // land it mid-sequence, handled by a binary-searched insertion.
  if (stream.buffers.empty() || stream.buffers.back()->offset() <= raw->offset()) {
    stream.buffers.push_back(std::move(buffer));
  } else {
    auto pos = std::upper_bound(
        stream.buffers.begin(), stream.buffers.end(), raw->offset(),
        [](ByteOffset off, const std::unique_ptr<IoBuffer>& b) { return off < b->offset(); });
    stream.buffers.insert(pos, std::move(buffer));
  }
  return raw;
}

void StagingArea::mark_filled(Stream& stream, ByteOffset offset, SimTime now) {
  for (auto& b : stream.buffers) {
    if (b->offset() == offset && !b->filled()) {
      b->mark_filled(b->capacity(), now);
      break;
    }
  }
}

void StagingArea::drop_unfilled(Stream& stream, ByteOffset offset) {
  const bool was = counts_as_buffered(stream);
  auto& bufs = stream.buffers;
  bufs.erase(std::remove_if(bufs.begin(), bufs.end(),
                            [offset](const std::unique_ptr<IoBuffer>& b) {
                              return b->offset() == offset && !b->filled();
                            }),
             bufs.end());
  note_buffered(stream, was);
}

void StagingArea::consume(Stream& stream, ByteOffset offset, Bytes length,
                          std::byte* data, SimTime now, const DataSink& sink,
                          obs::RequestTrace* trace) {
  // Consume across every overlapping buffer (a request may straddle two
  // read-ahead extents). A caller destination forces the copy path; without
  // one, materialized extents are handed out by reference (zero-copy) and
  // the slice's ExtentRef keeps them alive past the buffer's reaping.
  const ByteOffset req_end = offset + length;
  for (auto& b : stream.buffers) {
    const ByteOffset lo = std::max(offset, b->offset());
    const ByteOffset hi = std::min(req_end, b->end());
    if (lo >= hi) continue;
    b->consume(lo, hi - lo, now);
    if (b->data() == nullptr) continue;  // accounting-only buffer
    if (data != nullptr) {
      std::memcpy(data + (lo - offset), b->data() + (lo - b->offset()), hi - lo);
      stats_.bytes_copied += hi - lo;
      if (trace != nullptr) trace->staged_copied += hi - lo;
    } else if (sink) {
      sink(StagedSlice{lo, b->data() + (lo - b->offset()), hi - lo, b->extent()});
    }
  }
  if (data == nullptr) ++stats_.zero_copy_hits;
}

void StagingArea::reap(Stream& stream) {
  auto& buffers = stream.buffers;
  const bool was = counts_as_buffered(stream);
  buffers.erase(std::remove_if(
                    buffers.begin(), buffers.end(),
                    [](const std::unique_ptr<IoBuffer>& b) { return b->fully_consumed(); }),
                buffers.end());
  note_buffered(stream, was);
}

StagingArea::ReclaimResult StagingArea::reclaim_expired(Stream& stream, SimTime horizon) {
  ReclaimResult result;
  auto& buffers = stream.buffers;
  // A buffer that overlaps a parked request must survive: the request is
  // waiting for the rest of its range to be prefetched, and the cursor
  // will never revisit a reclaimed range (it only moves forward).
  const auto needed_by_pending = [&stream](const IoBuffer& b) {
    for (const PendingRequest& p : stream.pending) {
      const ClientRequest& r = p.req;
      if (r.offset < b.offset() + b.capacity() && b.offset() < r.offset + r.length) {
        return true;
      }
    }
    return false;
  };
  const bool was = counts_as_buffered(stream);
  for (auto it = buffers.begin(); it != buffers.end();) {
    IoBuffer& b = **it;
    // Never reclaim in-flight reads; filled-and-idle buffers whose data
    // nobody consumed within the timeout are the paper's leak case.
    if (b.filled() && b.last_touch() < horizon && !needed_by_pending(b)) {
      result.bytes_wasted += b.valid() - b.consumed_upto();
      ++result.buffers_reclaimed;
      it = buffers.erase(it);
    } else {
      ++it;
    }
  }
  note_buffered(stream, was);
  return result;
}

void StagingArea::drop_inert_buffers(Stream& stream) {
  auto& bufs = stream.buffers;
  bufs.erase(std::remove_if(bufs.begin(), bufs.end(),
                            [](const std::unique_ptr<IoBuffer>& b) {
                              return b->data() == nullptr || b->filled();
                            }),
             bufs.end());
}

void StagingArea::release_all(Stream& stream) { stream.buffers.clear(); }

}  // namespace sst::core
