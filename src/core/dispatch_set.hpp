// The dispatch set (paper §4.2): the bounded set of at most D streams
// actively issuing read-ahead, plus the FIFO candidate queue feeding it and
// the pluggable DispatchPolicy that picks which candidate takes a freed
// slot. Candidates are linked through the Stream's embedded candidate_hook
// (no per-entry allocation; eviction unlinks in O(1)). Tracks the
// per-device last-issue position the proximity policy consults. The facade
// drives residency begin/end; this class owns the queue discipline.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>

#include "common/types.hpp"
#include "core/dispatch_policy.hpp"

namespace sst::core {

class DispatchSet {
 public:
  explicit DispatchSet(std::unique_ptr<DispatchPolicy> policy,
                       std::size_t device_count = 0)
      : policy_(std::move(policy)), last_issue_pos_(device_count) {}
  DispatchSet(const DispatchSet&) = delete;
  DispatchSet& operator=(const DispatchSet&) = delete;

  [[nodiscard]] bool has_free_slot(std::uint32_t slots) const {
    return dispatched_ < slots;
  }
  [[nodiscard]] bool has_candidates() const { return !candidates_.empty(); }

  /// Ask the policy for the next candidate, unlink it from the queue and
  /// return it. The queue must be non-empty.
  [[nodiscard]] Stream& pop_next() {
    assert(!candidates_.empty());
    Stream* const choice = policy_->pick(candidates_, last_issue_pos_);
    assert(choice != nullptr && CandidateList::is_linked(*choice));
    candidates_.remove(*choice);
    return *choice;
  }

  /// Round-robin tail (normal arrival / rotation with unmet demand).
  void push_back(Stream& stream) { candidates_.push_back(stream); }
  /// Head of the queue: a first-issue memory bounce retries first.
  void push_front(Stream& stream) { candidates_.push_front(stream); }
  /// Remove a stream from the candidate queue (eviction); no-op when the
  /// stream is not queued.
  void remove(Stream& stream) {
    if (CandidateList::is_linked(stream)) candidates_.remove(stream);
  }

  /// A stream took a dispatch slot.
  void begin_residency() { ++dispatched_; }
  /// A stream left the dispatch set (rotation, bounce, or eviction).
  void end_residency() {
    assert(dispatched_ > 0);
    --dispatched_;
  }

  /// Record where read-ahead on `device` will resume (offset past the
  /// extent just issued) — the proximity signal for NearestOffsetPolicy.
  void note_issue(std::uint32_t device, ByteOffset next_pos) {
    last_issue_pos_.note(device, next_pos);
  }

  [[nodiscard]] std::size_t dispatched_count() const { return dispatched_; }
  [[nodiscard]] std::size_t candidate_count() const { return candidates_.size(); }
  [[nodiscard]] const LastIssueTable& last_issue_pos() const { return last_issue_pos_; }

 private:
  std::unique_ptr<DispatchPolicy> policy_;
  CandidateList candidates_;
  std::size_t dispatched_ = 0;
  LastIssueTable last_issue_pos_;
};

}  // namespace sst::core
