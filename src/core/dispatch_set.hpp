// The dispatch set (paper §4.2): the bounded set of at most D streams
// actively issuing read-ahead, plus the FIFO candidate queue feeding it and
// the pluggable DispatchPolicy that picks which candidate takes a freed
// slot. Tracks the per-device last-issue position the proximity policy
// consults. The facade drives residency begin/end; this class owns the
// queue discipline.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>

#include "common/types.hpp"
#include "core/dispatch_policy.hpp"

namespace sst::core {

class DispatchSet {
 public:
  explicit DispatchSet(std::unique_ptr<DispatchPolicy> policy)
      : policy_(std::move(policy)) {}
  DispatchSet(const DispatchSet&) = delete;
  DispatchSet& operator=(const DispatchSet&) = delete;

  [[nodiscard]] bool has_free_slot(std::uint32_t slots) const {
    return dispatched_ < slots;
  }
  [[nodiscard]] bool has_candidates() const { return !candidates_.empty(); }

  /// Ask the policy for the next candidate, remove it from the queue and
  /// return it. The queue must be non-empty.
  [[nodiscard]] StreamId pop_next(
      const std::function<const Stream&(StreamId)>& lookup) {
    assert(!candidates_.empty());
    const std::size_t choice = policy_->pick(candidates_, lookup, last_issue_pos_);
    const StreamId id = candidates_[choice];
    candidates_.erase(candidates_.begin() + static_cast<std::ptrdiff_t>(choice));
    return id;
  }

  /// Round-robin tail (normal arrival / rotation with unmet demand).
  void push_back(StreamId id) { candidates_.push_back(id); }
  /// Head of the queue: a first-issue memory bounce retries first.
  void push_front(StreamId id) { candidates_.push_front(id); }
  /// Remove a stream from the candidate queue (eviction).
  void remove(StreamId id) {
    candidates_.erase(std::remove(candidates_.begin(), candidates_.end(), id),
                      candidates_.end());
  }

  /// A stream took a dispatch slot.
  void begin_residency() { ++dispatched_; }
  /// A stream left the dispatch set (rotation, bounce, or eviction).
  void end_residency() {
    assert(dispatched_ > 0);
    --dispatched_;
  }

  /// Record where read-ahead on `device` will resume (offset past the
  /// extent just issued) — the proximity signal for NearestOffsetPolicy.
  void note_issue(std::uint32_t device, ByteOffset next_pos) {
    last_issue_pos_[device] = next_pos;
  }

  [[nodiscard]] std::size_t dispatched_count() const { return dispatched_; }
  [[nodiscard]] std::size_t candidate_count() const { return candidates_.size(); }
  [[nodiscard]] const std::map<std::uint32_t, ByteOffset>& last_issue_pos() const {
    return last_issue_pos_;
  }

 private:
  std::unique_ptr<DispatchPolicy> policy_;
  std::deque<StreamId> candidates_;
  std::size_t dispatched_ = 0;
  std::map<std::uint32_t, ByteOffset> last_issue_pos_;
};

}  // namespace sst::core
