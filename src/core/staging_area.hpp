// The staging area (paper §4.3): owns the memory budget M through the
// BufferPool, keeps every stream's staged read-ahead extents sorted, and
// maintains the buffered-set membership counter incrementally. All buffer
// lifecycle — stage, fill, consume, reap, timeout reclamation — lives here;
// the scheduler facade only decides *when* each transition happens.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "core/buffer_pool.hpp"
#include "core/stream.hpp"

namespace sst::core {

struct StagingStats {
  Bytes bytes_copied = 0;            ///< memcpy'd into client destinations
  std::uint64_t zero_copy_hits = 0;  ///< requests served without any copy
};

class StagingArea {
 public:
  StagingArea(Bytes memory_budget, bool materialize)
      : pool_(memory_budget, materialize) {}
  StagingArea(const StagingArea&) = delete;
  StagingArea& operator=(const StagingArea&) = delete;

  /// Does the union of (optionally only filled) staged ranges cover
  /// [off, off+len)? Binary-searches the starting buffer instead of walking
  /// the whole staged set.
  [[nodiscard]] static bool covers(const std::vector<std::unique_ptr<IoBuffer>>& buffers,
                                   ByteOffset off, Bytes len, bool filled_only);

  /// Allocate a buffer for the stream's next read-ahead extent and insert
  /// it sorted by offset. Returns the raw buffer, or nullptr when the
  /// memory budget M is exhausted (the caller bounces the dispatch).
  [[nodiscard]] IoBuffer* stage(Stream& stream, ByteOffset offset, Bytes len, SimTime now);

  /// A read-ahead landed: mark the (unique) unfilled buffer at `offset`.
  void mark_filled(Stream& stream, ByteOffset offset, SimTime now);

  /// A read-ahead failed: drop its never-filled buffer at `offset`.
  void drop_unfilled(Stream& stream, ByteOffset offset);

  /// Serve [offset, offset+length) from the staged buffers covering it.
  /// The caller guarantees coverage (covers(..., filled_only=true)). With a
  /// `data` destination the range is memcpy'd (legacy copy path); without
  /// one the request is zero-copy — materialized extents are handed to
  /// `sink` by reference instead of being copied. A latency-attribution
  /// `trace`, when present, is stamped with the bytes copied.
  void consume(Stream& stream, ByteOffset offset, Bytes length, std::byte* data,
               SimTime now, const DataSink& sink = nullptr,
               obs::RequestTrace* trace = nullptr);

  /// Release fully consumed buffers; updates buffered-set membership.
  void reap(Stream& stream);

  struct ReclaimResult {
    std::uint64_t buffers_reclaimed = 0;
    Bytes bytes_wasted = 0;  ///< staged-but-unread bytes reclaimed
  };

  /// GC sweep over one stream: reclaim filled buffers idle since before
  /// `horizon` unless a parked request still needs them (the prefetch
  /// cursor never revisits a reclaimed range). In-flight reads survive.
  ReclaimResult reclaim_expired(Stream& stream, SimTime horizon);

  /// Drop every buffer that carries no future device write: timing-only
  /// buffers and filled ones. Unfilled materialized buffers survive — an
  /// in-flight read still holds a pointer into them.
  void drop_inert_buffers(Stream& stream);

  /// Release everything the stream staged (it is being retired).
  void release_all(Stream& stream);

  /// Membership predicate for the maintained buffered-set counter.
  [[nodiscard]] static bool counts_as_buffered(const Stream& s) {
    return s.state == StreamState::kBuffered && !s.buffers.empty();
  }

  /// Re-evaluate `stream`'s buffered-set membership after a mutation;
  /// `was` is counts_as_buffered() captured before the mutation.
  void note_buffered(const Stream& stream, bool was) {
    const bool now = counts_as_buffered(stream);
    if (was && !now) {
      --buffered_count_;
    } else if (!was && now) {
      ++buffered_count_;
    }
  }

  /// Forget a stream that is leaving the scheduler entirely.
  void on_retire(const Stream& stream) {
    if (counts_as_buffered(stream)) --buffered_count_;
  }

  [[nodiscard]] std::size_t buffered_count() const { return buffered_count_; }
  [[nodiscard]] const BufferPool& pool() const { return pool_; }
  /// Mutable pool access for backends that pre-warm and register the
  /// extent slab as DMA buffers before I/O starts.
  [[nodiscard]] BufferPool& pool() { return pool_; }
  [[nodiscard]] std::size_t live_buffers() const { return pool_.live_buffers(); }
  [[nodiscard]] const StagingStats& stats() const { return stats_; }

 private:
  BufferPool pool_;
  StagingStats stats_;
  /// Streams holding staged data while not dispatched (the buffered set),
  /// maintained incrementally at every state/buffer transition.
  std::size_t buffered_count_ = 0;
};

}  // namespace sst::core
