// Per-device interval index mapping a byte offset to the stream that
// claims it (paper §4.1: incoming requests must be matched to a detected
// stream before they can ride its read-ahead). One ordered map per device,
// keyed by range_start; a lookup is a single predecessor search — O(log n)
// in the number of streams on that device, never a linear scan. The
// microbench (`bench_find_stream`) asserts the scaling.
#pragma once

#include <cassert>
#include <cstdint>
#include <map>
#include <vector>

#include "common/types.hpp"
#include "core/stream.hpp"

namespace sst::core {

class StreamIndex {
 public:
  explicit StreamIndex(std::size_t device_count) : per_device_(device_count) {}

  /// Claim [range_start, ...) on `device` for `id` (replacing any previous
  /// claim anchored at the same offset).
  void claim(std::uint32_t device, ByteOffset range_start, StreamId id) {
    assert(device < per_device_.size());
    per_device_[device].insert_or_assign(range_start, id);
  }

  /// Drop the claim anchored at `range_start`, but only if `id` still owns
  /// it (a later stream may have re-claimed the same anchor).
  void unclaim(std::uint32_t device, ByteOffset range_start, StreamId id) {
    assert(device < per_device_.size());
    auto& idx = per_device_[device];
    const auto entry = idx.find(range_start);
    if (entry != idx.end() && entry->second == id) idx.erase(entry);
  }

  /// Find the stream claiming `offset` on `device`, or nullptr. Only the
  /// predecessor claim is examined: streams are detected left-to-right and
  /// a request beyond the predecessor's match window belongs to no stream
  /// (it restarts detection). `lookup` maps StreamId -> Stream&.
  template <typename Lookup>
  [[nodiscard]] Stream* find(std::uint32_t device, ByteOffset offset, Bytes read_ahead,
                             Lookup&& lookup) const {
    assert(device < per_device_.size());
    const auto& idx = per_device_[device];
    auto it = idx.upper_bound(offset);
    if (it == idx.begin()) return nullptr;
    --it;
    Stream& s = lookup(it->second);
    if (offset >= s.range_start && offset < s.match_end(read_ahead)) return &s;
    return nullptr;
  }

  [[nodiscard]] std::size_t device_count() const { return per_device_.size(); }

 private:
  std::vector<std::map<ByteOffset, StreamId>> per_device_;
};

}  // namespace sst::core
