#include "core/reliable_device.hpp"

#include <cassert>
#include <cstring>
#include <utility>
#include <vector>

namespace sst::core {

ReliableDevice::ReliableDevice(exec::ExecutionContext& simulator, blockdev::BlockDevice& inner,
                               RetryParams params, std::uint32_t device_index)
    : sim_(simulator), inner_(inner), params_(params), device_index_(device_index) {
  const Status valid = params_.validate();
  assert(valid.ok());
  (void)valid;
}

void ReliableDevice::submit(blockdev::BlockRequest request) {
  ++stats_.commands;
  auto p = std::make_shared<Pending>();
  p->offset = request.offset;
  p->length = request.length;
  p->op = request.op;
  p->id = request.id;
  p->data = request.data;
  p->cb = std::move(request.on_complete);
  start_attempt(p);
}

void ReliableDevice::start_attempt(const std::shared_ptr<Pending>& p) {
  if (params_.command_timeout > 0) {
    p->timer = sim_.schedule_after(
        params_.command_timeout, [this, p, attempt = p->attempt]() {
          if (p->settled || p->attempt != attempt) return;  // stale timer
          ++stats_.timeouts;
          if (tracer_ != nullptr) {
            tracer_->instant(obs::request_track(device_index_), "retry",
                             "command_timeout", sim_.now(), "attempt",
                             static_cast<double>(attempt));
          }
          attempt_failed(p, IoStatus::kTimeout);
        });
  }

  blockdev::BlockRequest attempt;
  attempt.offset = p->offset;
  attempt.length = p->length;
  attempt.op = p->op;
  attempt.id = p->id;
  // Reads into a caller buffer go through a per-attempt bounce buffer: a
  // timed-out attempt may still complete (and fill its target) inside the
  // inner device long after the caller gave up and released its memory.
  // Only an accepted completion copies into the caller's pointer, while the
  // command is still live.
  std::shared_ptr<std::vector<std::byte>> bounce;
  if (p->data != nullptr && p->op == IoOp::kRead) {
    bounce = std::make_shared<std::vector<std::byte>>(p->length);
    attempt.data = bounce->data();
  } else {
    attempt.data = p->data;
  }
  attempt.on_complete = [this, p, bounce,
                         attempt_no = p->attempt](SimTime, IoStatus status) {
    // A completion from an attempt the timer already abandoned: drop it.
    if (p->settled || p->attempt != attempt_no) return;
    p->timer.cancel();
    if (io_ok(status)) {
      if (bounce) std::memcpy(p->data, bounce->data(), bounce->size());
      if (attempt_no > 1) ++stats_.recovered;
      settle(p, IoStatus::kOk);
      return;
    }
    ++stats_.media_errors;
    attempt_failed(p, status);
  };
  inner_.submit(std::move(attempt));
}

void ReliableDevice::attempt_failed(const std::shared_ptr<Pending>& p, IoStatus status) {
  p->timer.cancel();
  p->last_status = status;
  if (p->attempt > params_.max_retries) {
    ++stats_.giveups;
    if (tracer_ != nullptr) {
      tracer_->instant(obs::request_track(device_index_), "retry", "giveup", sim_.now(),
                       "attempts", static_cast<double>(p->attempt));
    }
    settle(p, status);
    return;
  }
  ++p->attempt;
  ++stats_.retries_total;
  const SimTime backoff = params_.backoff_for(p->attempt - 1);
  stats_.backoff_time += backoff;
  if (tracer_ != nullptr) {
    tracer_->instant(obs::request_track(device_index_), "retry", "retry_backoff",
                     sim_.now(), "attempt", static_cast<double>(p->attempt));
  }
  sim_.schedule_after(backoff, [this, p]() {
    if (p->settled) return;
    start_attempt(p);
  });
}

void ReliableDevice::settle(const std::shared_ptr<Pending>& p, IoStatus status) {
  p->settled = true;
  p->timer.cancel();
  if (p->cb) p->cb(sim_.now(), status);
}

}  // namespace sst::core
