// Admission planning: the quantitative form of the paper's introductory
// tradeoff — "if an application requires streams of 1 MByte/s, then a disk
// with a maximum throughput of 50 MBytes/s could sustain 50 streams; in
// practice, a much smaller number can be serviced".
//
// With the stream scheduler, a disk switching between streams delivers
//
//     T_eff(R) = T_seq * xfer / (position + xfer),  xfer = R / T_seq
//
// so the number of admissible constant-bitrate streams per disk is
// floor(T_eff / bitrate), and sustaining them needs staged memory
// proportional to the stream population and the read-ahead. This module
// computes those numbers; the admission tests validate the model against
// the simulator to within a configured tolerance.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"
#include "core/autotune.hpp"
#include "core/params.hpp"

namespace sst::core {

struct AdmissionRequest {
  NodeDescription node;
  /// Per-stream consumption rate (bytes/sec), e.g. 4 Mb/s video = 500 KB/s.
  double stream_rate_bps = 500e3;
  /// Read-ahead the scheduler will use (0 = let the planner pick via
  /// autotune's efficiency target).
  Bytes read_ahead = 0;
};

struct AdmissionPlan {
  /// Effective per-disk throughput once positioning overhead is paid.
  double effective_disk_bps = 0.0;
  /// Streams one disk sustains at the requested rate.
  std::uint32_t streams_per_disk = 0;
  /// Whole node (all disks), before the memory constraint.
  std::uint32_t streams_disk_bound = 0;
  /// Cap imposed by host memory: each admitted stream needs one staged
  /// read-ahead buffer on average.
  std::uint32_t streams_memory_bound = 0;
  /// min(disk bound, memory bound) — the planner's answer.
  std::uint32_t admissible_streams = 0;
  Bytes read_ahead = 0;
  SchedulerParams scheduler;  ///< configuration to run the admitted load
  std::string rationale;
};

/// Effective sequential throughput of a disk that pays `position_time` per
/// `read_ahead`-sized transfer.
[[nodiscard]] double effective_throughput_bps(double seq_rate_bps, SimTime position_time,
                                              Bytes read_ahead);

[[nodiscard]] AdmissionPlan plan_admission(const AdmissionRequest& request);

}  // namespace sst::core
