// Dispatch-set replacement policies (paper §4.2). The policy chooses which
// candidate stream takes a freed dispatch slot. Round-robin is the paper's
// default; nearest-offset implements the proximity idea the paper sketches
// ("keep streams that access nearby areas of the disk in the dispatch set")
// for the ablation bench.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <map>
#include <memory>

#include "common/types.hpp"
#include "core/params.hpp"
#include "core/stream.hpp"

namespace sst::core {

class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;

  /// Pick the index (into `candidates`) of the stream to dispatch next.
  /// `lookup` maps a StreamId to its Stream; `last_issue_pos` gives the most
  /// recent read-ahead position per device. `candidates` is non-empty.
  [[nodiscard]] virtual std::size_t pick(
      const std::deque<StreamId>& candidates,
      const std::function<const Stream&(StreamId)>& lookup,
      const std::map<std::uint32_t, ByteOffset>& last_issue_pos) = 0;
};

/// FIFO: always the head of the candidate queue.
class RoundRobinPolicy final : public ReplacementPolicy {
 public:
  [[nodiscard]] std::size_t pick(const std::deque<StreamId>&,
                                 const std::function<const Stream&(StreamId)>&,
                                 const std::map<std::uint32_t, ByteOffset>&) override {
    return 0;
  }
};

/// Choose the candidate whose next prefetch offset is closest to the last
/// issued position on its device (falls back to FIFO across devices that
/// have not issued yet). Greedy proximity would starve far-away streams,
/// so two guards bound the bypassing: only the oldest `kWindow` candidates
/// compete, and a head-of-queue stream bypassed `kWindow` consecutive
/// times is force-picked (strict aging).
class NearestOffsetPolicy final : public ReplacementPolicy {
 public:
  static constexpr std::size_t kWindow = 8;

  [[nodiscard]] std::size_t pick(const std::deque<StreamId>& candidates,
                                 const std::function<const Stream&(StreamId)>& lookup,
                                 const std::map<std::uint32_t, ByteOffset>& last_issue_pos) override;

 private:
  StreamId last_front_ = kInvalidStream;
  std::size_t front_bypasses_ = 0;
};

[[nodiscard]] std::unique_ptr<ReplacementPolicy> make_policy(ReplacementPolicyKind kind);

}  // namespace sst::core
