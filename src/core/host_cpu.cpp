#include "core/host_cpu.hpp"

#include <algorithm>

namespace sst::core {

void HostCpu::execute(SimTime cost, std::function<void()> fn) {
  const SimTime start = std::max(sim_.now(), free_at_);
  const SimTime end = start + cost;
  free_at_ = end;
  ++stats_.operations;
  stats_.busy_time += cost;
  sim_.schedule_at(end, std::move(fn));
}

}  // namespace sst::core
