// Dispatch policies (paper §4.2). A DispatchPolicy chooses which candidate
// stream takes a freed dispatch-set slot; it is the pluggable brain of the
// DispatchSet stage. Round-robin is the paper's default; nearest-offset
// implements the proximity idea the paper sketches ("keep streams that
// access nearby areas of the disk in the dispatch set") for the ablation
// bench. This hierarchy folds in what used to be called the replacement
// policy — the two names described the same decision.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <map>
#include <memory>

#include "common/types.hpp"
#include "core/params.hpp"
#include "core/stream.hpp"

namespace sst::core {

class DispatchPolicy {
 public:
  virtual ~DispatchPolicy() = default;

  /// Pick the index (into `candidates`) of the stream to dispatch next.
  /// `lookup` maps a StreamId to its Stream; `last_issue_pos` gives the most
  /// recent read-ahead position per device. `candidates` is non-empty.
  [[nodiscard]] virtual std::size_t pick(
      const std::deque<StreamId>& candidates,
      const std::function<const Stream&(StreamId)>& lookup,
      const std::map<std::uint32_t, ByteOffset>& last_issue_pos) = 0;
};

/// FIFO: always the head of the candidate queue.
class RoundRobinPolicy final : public DispatchPolicy {
 public:
  [[nodiscard]] std::size_t pick(const std::deque<StreamId>&,
                                 const std::function<const Stream&(StreamId)>&,
                                 const std::map<std::uint32_t, ByteOffset>&) override {
    return 0;
  }
};

/// Choose the candidate whose next prefetch offset is closest to the last
/// issued position on its device (falls back to FIFO across devices that
/// have not issued yet). Greedy proximity would starve far-away streams,
/// so two guards bound the bypassing: only the oldest `kWindow` candidates
/// compete, and a head-of-queue stream bypassed `kWindow` consecutive
/// times is force-picked (strict aging).
class NearestOffsetPolicy final : public DispatchPolicy {
 public:
  static constexpr std::size_t kWindow = 8;

  [[nodiscard]] std::size_t pick(const std::deque<StreamId>& candidates,
                                 const std::function<const Stream&(StreamId)>& lookup,
                                 const std::map<std::uint32_t, ByteOffset>& last_issue_pos) override;

 private:
  StreamId last_front_ = kInvalidStream;
  std::size_t front_bypasses_ = 0;
};

[[nodiscard]] std::unique_ptr<DispatchPolicy> make_policy(DispatchPolicyKind kind);

}  // namespace sst::core
