// Dispatch policies (paper §4.2). A DispatchPolicy chooses which candidate
// stream takes a freed dispatch-set slot; it is the pluggable brain of the
// DispatchSet stage. Round-robin is the paper's default; nearest-offset
// implements the proximity idea the paper sketches ("keep streams that
// access nearby areas of the disk in the dispatch set") for the ablation
// bench. This hierarchy folds in what used to be called the replacement
// policy — the two names described the same decision.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/intrusive_list.hpp"
#include "common/types.hpp"
#include "core/params.hpp"
#include "core/stream.hpp"

namespace sst::core {

/// Candidate queue: streams waiting for a dispatch slot, linked through
/// their embedded candidate_hook (no per-entry allocation, O(1) removal).
using CandidateList = IntrusiveList<Stream, &Stream::candidate_hook>;

/// Flat per-device table of the most recent read-ahead issue position — the
/// proximity signal for NearestOffsetPolicy. Indexed by device id; devices
/// that never issued read `kNever`.
class LastIssueTable {
 public:
  static constexpr ByteOffset kNever = ~ByteOffset{0};

  explicit LastIssueTable(std::size_t devices = 0) : pos_(devices, kNever) {}

  void note(std::uint32_t device, ByteOffset pos) {
    if (device >= pos_.size()) pos_.resize(device + 1, kNever);
    pos_[device] = pos;
  }

  [[nodiscard]] ByteOffset get(std::uint32_t device) const {
    return device < pos_.size() ? pos_[device] : kNever;
  }
  [[nodiscard]] bool has(std::uint32_t device) const { return get(device) != kNever; }
  [[nodiscard]] ByteOffset at(std::uint32_t device) const {
    assert(has(device));
    return pos_[device];
  }
  [[nodiscard]] std::size_t size() const { return pos_.size(); }

 private:
  std::vector<ByteOffset> pos_;
};

class DispatchPolicy {
 public:
  virtual ~DispatchPolicy() = default;

  /// Pick the stream to dispatch next. `candidates` is non-empty;
  /// `last_issue_pos` gives the most recent read-ahead position per device.
  /// Returns a stream linked in `candidates`.
  [[nodiscard]] virtual Stream* pick(const CandidateList& candidates,
                                     const LastIssueTable& last_issue_pos) = 0;
};

/// FIFO: always the head of the candidate queue.
class RoundRobinPolicy final : public DispatchPolicy {
 public:
  [[nodiscard]] Stream* pick(const CandidateList& candidates,
                             const LastIssueTable&) override {
    return candidates.front();
  }
};

/// Choose the candidate whose next prefetch offset is closest to the last
/// issued position on its device (falls back to FIFO across devices that
/// have not issued yet). Greedy proximity would starve far-away streams,
/// so two guards bound the bypassing: only the oldest `kWindow` candidates
/// compete, and a head-of-queue stream bypassed `kWindow` consecutive
/// times is force-picked (strict aging).
class NearestOffsetPolicy final : public DispatchPolicy {
 public:
  static constexpr std::size_t kWindow = 8;

  [[nodiscard]] Stream* pick(const CandidateList& candidates,
                             const LastIssueTable& last_issue_pos) override;

 private:
  StreamId last_front_ = kInvalidStream;
  std::size_t front_bypasses_ = 0;
};

[[nodiscard]] std::unique_ptr<DispatchPolicy> make_policy(DispatchPolicyKind kind);

}  // namespace sst::core
