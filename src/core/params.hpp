// Parameters of the host-level stream scheduler — the (D, R, N, M) knobs of
// the paper (Section 4) plus classifier and garbage-collection settings.
#pragma once

#include <cstdint>

#include "common/result.hpp"
#include "common/types.hpp"

namespace sst::core {

/// Classifier settings (paper §4.1): dynamically allocated bitmaps around
/// the first access, one bit per `block_bytes`, detection when enough
/// distinct nearby blocks were touched recently.
struct ClassifierParams {
  /// Granularity of one bitmap bit. The paper tracks device blocks; client
  /// streams in the evaluation issue 64 KB requests, so that is the default.
  Bytes block_bytes = 64 * KiB;
  /// Half-width of a region bitmap in blocks: covers [B-offset, B+offset].
  /// "a small value ... in the order of a few tens" (paper §4.1).
  std::uint32_t offset_blocks = 32;
  /// Distinct blocks set within a region that declare a sequential stream.
  std::uint32_t detect_threshold = 3;
  /// Regions idle longer than this are garbage collected.
  SimTime region_timeout = sec(10);
};

/// Candidate-selection policy for refilling the dispatch set (paper §4.2:
/// "we currently use a simple round-robin policy"; the offset-proximity
/// alternative is implemented for the ablation bench).
enum class DispatchPolicyKind : std::uint8_t {
  kRoundRobin,
  kNearestOffset,
};

/// Historic name, kept so configs/tests written against the pre-decomposition
/// scheduler keep compiling.
using ReplacementPolicyKind = DispatchPolicyKind;

[[nodiscard]] constexpr const char* to_string(DispatchPolicyKind k) {
  switch (k) {
    case DispatchPolicyKind::kRoundRobin: return "round-robin";
    case DispatchPolicyKind::kNearestOffset: return "nearest-offset";
  }
  return "?";
}

/// Host CPU / buffer-management overhead model. Every disk issue and every
/// client completion occupies the (single) server CPU for
/// `base + per_buffer * allocated_buffers`; the CPU serializes, so large
/// buffered sets throttle multi-disk throughput (paper Fig. 12 vs 13).
struct HostOverheadParams {
  SimTime issue_base = usec(15);
  SimTime complete_base = usec(10);
  SimTime per_buffer = nsec(200);
};

struct SchedulerParams {
  /// Dispatch set size D: streams concurrently issuing disk read-ahead.
  /// 0 = derive from memory: floor(M / (R*N)), at least 1.
  std::uint32_t dispatch_set_size = 0;
  /// Read-ahead R: size of each disk request issued for a dispatched stream.
  Bytes read_ahead = 1 * MiB;
  /// Residency N: disk requests a stream issues before rotating out.
  std::uint32_t requests_per_residency = 1;
  /// Memory budget M for I/O buffers (the buffered set). Must satisfy
  /// M >= D*R*N when D is set explicitly.
  Bytes memory_budget = 64 * MiB;
  /// When true, I/O buffers carry real backing memory that devices fill;
  /// benches leave this off to model timing without allocating gigabytes.
  bool materialize_buffers = false;

  DispatchPolicyKind policy = DispatchPolicyKind::kRoundRobin;
  ClassifierParams classifier;
  HostOverheadParams host;

  /// Staged buffers not touched for this long are reclaimed by the GC.
  SimTime buffer_timeout = sec(5);
  /// Parked client requests waiting longer than this are bailed out with a
  /// direct device read (escape hatch for memory starvation; must comfortably
  /// exceed the worst-case dispatch round-trip, i.e. S * R / disk_rate).
  SimTime pending_timeout = sec(30);
  /// Streams with no activity for this long are dismantled entirely.
  SimTime stream_timeout = sec(30);
  /// Period of the garbage-collection sweep (paper §4.3's periodic thread).
  SimTime gc_period = msec(500);
  /// Failed read-ahead completions (post-retry) after which a device is
  /// declared failed and its streams are evicted.
  std::uint32_t device_fail_threshold = 1;

  /// Effective dispatch-set size after the memory constraint (paper §4.2:
  /// "the maximum number of streams in the dispatch set is limited by the
  /// amount of memory M").
  [[nodiscard]] std::uint32_t effective_dispatch_size() const {
    const Bytes per_stream = read_ahead * requests_per_residency;
    const auto by_memory =
        per_stream ? static_cast<std::uint32_t>(memory_budget / per_stream) : 0;
    const std::uint32_t cap = by_memory > 0 ? by_memory : 1;
    if (dispatch_set_size == 0) return cap;
    return dispatch_set_size < cap ? dispatch_set_size : cap;
  }

  [[nodiscard]] Status validate() const {
    if (read_ahead == 0) return make_error("read_ahead must be > 0");
    if (read_ahead % kSectorSize != 0) {
      return make_error("read_ahead must be sector aligned");
    }
    if (requests_per_residency == 0) {
      return make_error("requests_per_residency must be > 0");
    }
    if (memory_budget < read_ahead) {
      return make_error("memory budget cannot stage even one read-ahead buffer");
    }
    if (dispatch_set_size > 0) {
      const Bytes need = static_cast<Bytes>(dispatch_set_size) * read_ahead *
                         requests_per_residency;
      if (memory_budget < need) {
        return make_error("M >= D*R*N violated: budget " + std::to_string(memory_budget) +
                          " < required " + std::to_string(need));
      }
    }
    if (classifier.block_bytes == 0 || classifier.offset_blocks == 0 ||
        classifier.detect_threshold == 0) {
      return make_error("classifier parameters must be positive");
    }
    if (device_fail_threshold == 0) {
      return make_error("device_fail_threshold must be > 0");
    }
    return Status::success();
  }
};

}  // namespace sst::core
