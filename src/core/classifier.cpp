#include "core/classifier.hpp"

#include <bit>
#include <cassert>

namespace sst::core {

Classifier::Classifier(const ClassifierParams& params) : params_(params) {
  assert(params_.block_bytes > 0);
  assert(params_.offset_blocks > 0);
}

bool Classifier::set_bit(Region& region, std::uint64_t block) {
  const std::uint64_t index = block - region.first_block;
  const std::size_t word = index / 64;
  const std::uint64_t mask = 1ULL << (index % 64);
  if (word >= region.bits.size()) return false;
  if (region.bits[word] & mask) return false;
  region.bits[word] |= mask;
  if (region.popcount == 0) {
    region.min_block = block;
    region.max_block = block;
  } else {
    if (block < region.min_block) region.min_block = block;
    if (block > region.max_block) region.max_block = block;
  }
  ++region.popcount;
  return true;
}

std::optional<DetectedStream> Classifier::record(std::uint32_t device, ByteOffset offset,
                                                 Bytes length, SimTime now) {
  ++stats_.requests_seen;
  const std::uint64_t first_block = offset / params_.block_bytes;
  const std::uint64_t last_block = (offset + (length ? length - 1 : 0)) / params_.block_bytes;
  const std::uint32_t span = span_blocks();

  // Find a region covering the request's first block: the candidate is the
  // region with the greatest start <= first_block.
  Region* region = nullptr;
  auto it = regions_.upper_bound({device, first_block});
  if (it != regions_.begin()) {
    auto prev = std::prev(it);
    if (prev->first.first == device && prev->second.covers(first_block, span)) {
      region = &prev->second;
    }
  }
  if (region == nullptr) {
    // Allocate a bitmap for the blocks around this access:
    // [first_block - offset_blocks, first_block + offset_blocks].
    const std::uint64_t base = first_block > params_.offset_blocks
                                   ? first_block - params_.offset_blocks
                                   : 0;
    Region fresh;
    fresh.first_block = base;
    fresh.bits.assign((span + 63) / 64, 0);
    auto [inserted, ok] = regions_.emplace(std::make_pair(device, base), std::move(fresh));
    assert(ok);
    region = &inserted->second;
    ++stats_.regions_allocated;
    stats_.bitmap_bytes += region->bits.size() * sizeof(std::uint64_t);
  }

  region->last_touch = now;
  for (std::uint64_t b = first_block; b <= last_block; ++b) {
    if (!region->covers(b, span)) break;  // request tail beyond the bitmap
    set_bit(*region, b);
  }

  if (region->popcount >= params_.detect_threshold) {
    DetectedStream detected;
    detected.device = device;
    detected.start = region->min_block * params_.block_bytes;
    detected.end = (region->max_block + 1) * params_.block_bytes;
    ++stats_.streams_detected;
    // Retire the region: its job is done, the stream takes over.
    stats_.bitmap_bytes -= region->bits.size() * sizeof(std::uint64_t);
    regions_.erase({device, region->first_block});
    ++stats_.regions_collected;
    return detected;
  }
  return std::nullopt;
}

std::size_t Classifier::collect_garbage(SimTime now) {
  std::size_t collected = 0;
  const SimTime horizon = now > params_.region_timeout ? now - params_.region_timeout : 0;
  for (auto it = regions_.begin(); it != regions_.end();) {
    if (it->second.last_touch < horizon) {
      stats_.bitmap_bytes -= it->second.bits.size() * sizeof(std::uint64_t);
      it = regions_.erase(it);
      ++collected;
      ++stats_.regions_collected;
    } else {
      ++it;
    }
  }
  return collected;
}

std::size_t Classifier::region_count() const { return regions_.size(); }

}  // namespace sst::core
