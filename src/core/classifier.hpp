// Sequential-stream classifier (paper §4.1).
//
// Requests that do not belong to a known stream are recorded in small,
// dynamically allocated bitmaps. Each bitmap covers the blocks around the
// first access that created it ([B-offset, B+offset], one bit per block).
// When the number of distinct blocks touched in one region reaches the
// detection threshold, the classifier reports a sequential stream starting
// at the region's lowest touched block. Out-of-order arrivals and repeated
// touches of the same block are ignored by construction (bits are
// idempotent); only proximity in space and time matters.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "core/params.hpp"

namespace sst::core {

struct ClassifierStats {
  std::uint64_t requests_seen = 0;
  std::uint64_t regions_allocated = 0;
  std::uint64_t regions_collected = 0;
  std::uint64_t streams_detected = 0;
  Bytes bitmap_bytes = 0;  ///< current bitmap memory footprint
};

/// Detection result: where the detected stream starts and ends so far.
struct DetectedStream {
  std::uint32_t device = 0;
  ByteOffset start = 0;  ///< lowest touched offset in the region
  ByteOffset end = 0;    ///< one past the highest touched offset
};

class Classifier {
 public:
  explicit Classifier(const ClassifierParams& params);

  /// Record a request that no existing stream claimed. Returns a detection
  /// when this request tips a region over the threshold; the caller then
  /// creates the stream and retires the region.
  std::optional<DetectedStream> record(std::uint32_t device, ByteOffset offset, Bytes length,
                                       SimTime now);

  /// Drop regions idle since before `now - region_timeout`. Returns the
  /// number collected. Called by the scheduler's periodic GC.
  std::size_t collect_garbage(SimTime now);

  [[nodiscard]] std::size_t region_count() const;
  [[nodiscard]] const ClassifierStats& stats() const { return stats_; }

 private:
  struct Region {
    std::uint64_t first_block = 0;  ///< block index of bit 0
    std::vector<std::uint64_t> bits;
    std::uint32_t popcount = 0;
    std::uint64_t min_block = 0;  ///< lowest set block (for stream start)
    std::uint64_t max_block = 0;  ///< highest set block
    SimTime last_touch = 0;

    [[nodiscard]] bool covers(std::uint64_t block, std::uint32_t span) const {
      return block >= first_block && block < first_block + span;
    }
  };

  /// Set one block bit; returns true if it was newly set.
  static bool set_bit(Region& region, std::uint64_t block);

  [[nodiscard]] std::uint32_t span_blocks() const { return 2 * params_.offset_blocks + 1; }

  ClassifierParams params_;
  /// (device, region first_block) -> Region; ordered so coverage lookups
  /// use lower_bound on the region start.
  std::map<std::pair<std::uint32_t, std::uint64_t>, Region> regions_;
  ClassifierStats stats_;
};

}  // namespace sst::core
