// Static auto-tuning of the (D, R, N, M) knobs from a storage-node
// description (paper §5.4 and conclusion: the parameters can be set
// independently, so the subsystem can be configured for nodes "of varying
// technologies and configurations"). Given the disks' mechanical numbers
// and the node's memory, pick a read-ahead large enough to reach a target
// seek efficiency, dispatch one slot per disk, and spend the remaining
// memory on residency.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"
#include "core/params.hpp"

namespace sst::core {

struct NodeDescription {
  std::uint32_t num_disks = 1;
  /// Sustained sequential media rate of one disk (bytes/sec).
  double disk_seq_rate_bps = 55e6;
  /// Average positioning cost of a stream switch (seek + rotation).
  SimTime avg_position_time = msec(13);
  /// Host memory available for I/O buffering.
  Bytes host_memory = 256 * MiB;
};

struct TuningResult {
  SchedulerParams params;
  /// Fraction of disk time spent transferring (vs positioning) that the
  /// chosen R achieves for a dedicated stream.
  double predicted_efficiency = 0.0;
  std::string rationale;
};

/// Derive scheduler parameters for a node. `target_efficiency` is the
/// desired transfer-time fraction per read-ahead request (default 85%,
/// which lands on R = 8 MB for the paper's WD800JD-class disks).
[[nodiscard]] TuningResult autotune(const NodeDescription& node,
                                    double target_efficiency = 0.85);

}  // namespace sst::core
