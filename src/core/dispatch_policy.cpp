#include "core/dispatch_policy.hpp"

#include <algorithm>
#include <limits>

namespace sst::core {

std::size_t NearestOffsetPolicy::pick(
    const std::deque<StreamId>& candidates,
    const std::function<const Stream&(StreamId)>& lookup,
    const std::map<std::uint32_t, ByteOffset>& last_issue_pos) {
  const StreamId front = candidates.front();
  if (front != last_front_) {
    last_front_ = front;
    front_bypasses_ = 0;
  }
  // Strict aging: a head-of-queue stream bypassed too often wins outright.
  if (front_bypasses_ >= kWindow) {
    front_bypasses_ = 0;
    last_front_ = kInvalidStream;
    return 0;
  }

  std::size_t best = 0;
  auto best_distance = std::numeric_limits<std::uint64_t>::max();
  const std::size_t window = std::min(candidates.size(), kWindow);
  for (std::size_t i = 0; i < window; ++i) {
    const Stream& s = lookup(candidates[i]);
    const auto it = last_issue_pos.find(s.device);
    if (it == last_issue_pos.end()) continue;  // device untouched: no signal
    const ByteOffset pos = it->second;
    const std::uint64_t distance =
        s.prefetch_pos > pos ? s.prefetch_pos - pos : pos - s.prefetch_pos;
    if (distance < best_distance) {
      best_distance = distance;
      best = i;
    }
  }
  if (best != 0) {
    ++front_bypasses_;
  } else {
    last_front_ = kInvalidStream;
  }
  return best;
}

std::unique_ptr<DispatchPolicy> make_policy(DispatchPolicyKind kind) {
  switch (kind) {
    case DispatchPolicyKind::kRoundRobin: return std::make_unique<RoundRobinPolicy>();
    case DispatchPolicyKind::kNearestOffset: return std::make_unique<NearestOffsetPolicy>();
  }
  return std::make_unique<RoundRobinPolicy>();
}

}  // namespace sst::core
