#include "core/dispatch_policy.hpp"

#include <limits>

namespace sst::core {

Stream* NearestOffsetPolicy::pick(const CandidateList& candidates,
                                  const LastIssueTable& last_issue_pos) {
  Stream* const front = candidates.front();
  if (front->id != last_front_) {
    last_front_ = front->id;
    front_bypasses_ = 0;
  }
  // Strict aging: a head-of-queue stream bypassed too often wins outright.
  if (front_bypasses_ >= kWindow) {
    front_bypasses_ = 0;
    last_front_ = kInvalidStream;
    return front;
  }

  Stream* best = front;
  auto best_distance = std::numeric_limits<std::uint64_t>::max();
  std::size_t scanned = 0;
  for (Stream& s : candidates) {
    if (++scanned > kWindow) break;
    const ByteOffset pos = last_issue_pos.get(s.device);
    if (pos == LastIssueTable::kNever) continue;  // device untouched: no signal
    const std::uint64_t distance =
        s.prefetch_pos > pos ? s.prefetch_pos - pos : pos - s.prefetch_pos;
    if (distance < best_distance) {
      best_distance = distance;
      best = &s;
    }
  }
  if (best != front) {
    ++front_bypasses_;
  } else {
    last_front_ = kInvalidStream;
  }
  return best;
}

std::unique_ptr<DispatchPolicy> make_policy(DispatchPolicyKind kind) {
  switch (kind) {
    case DispatchPolicyKind::kRoundRobin: return std::make_unique<RoundRobinPolicy>();
    case DispatchPolicyKind::kNearestOffset: return std::make_unique<NearestOffsetPolicy>();
  }
  return std::make_unique<RoundRobinPolicy>();
}

}  // namespace sst::core
