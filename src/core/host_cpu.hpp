// Serializing host-CPU resource. Every scheduler action (issuing a disk
// request, completing a client request) occupies the storage server's CPU
// for a cost that grows with the number of allocated I/O buffers — the
// buffer-management overhead that caps multi-disk throughput when the
// dispatch set is as large as the stream population (paper Fig. 12 vs 13).
#pragma once

#include <functional>

#include "common/types.hpp"
#include "core/params.hpp"
#include "exec/execution_context.hpp"

namespace sst::core {

struct HostCpuStats {
  std::uint64_t operations = 0;
  SimTime busy_time = 0;

  [[nodiscard]] double utilization(SimTime elapsed) const {
    return elapsed ? static_cast<double>(busy_time) / static_cast<double>(elapsed) : 0.0;
  }
};

class HostCpu {
 public:
  HostCpu(exec::ExecutionContext& simulator, HostOverheadParams params)
      : sim_(simulator), params_(params) {}

  /// Cost of issuing one disk request with `buffers` live I/O buffers.
  [[nodiscard]] SimTime issue_cost(std::size_t buffers) const {
    return params_.issue_base + params_.per_buffer * static_cast<SimTime>(buffers);
  }

  /// Cost of completing one client request with `buffers` live buffers.
  [[nodiscard]] SimTime complete_cost(std::size_t buffers) const {
    return params_.complete_base + params_.per_buffer * static_cast<SimTime>(buffers);
  }

  /// Occupy the CPU for `cost`, then run `fn`. Work queues FIFO behind
  /// whatever the CPU is already doing.
  void execute(SimTime cost, std::function<void()> fn);

  [[nodiscard]] const HostCpuStats& stats() const { return stats_; }
  [[nodiscard]] SimTime free_at() const { return free_at_; }

 private:
  exec::ExecutionContext& sim_;
  HostOverheadParams params_;
  SimTime free_at_ = 0;
  HostCpuStats stats_;
};

}  // namespace sst::core
