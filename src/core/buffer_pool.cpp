#include "core/buffer_pool.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace sst::core {

namespace {

/// Recycled IoBuffer storage. Owns whatever is parked on the free list at
/// thread exit; live buffers always outlive their (per-run) thread.
struct IoBufferStoragePool {
  std::vector<void*> free;
  ~IoBufferStoragePool() {
    for (void* p : free) ::operator delete(p);
  }
};

thread_local IoBufferStoragePool t_io_buffer_pool;

}  // namespace

void* IoBuffer::operator new(std::size_t size) {
  assert(size == sizeof(IoBuffer));
  auto& free = t_io_buffer_pool.free;
  if (!free.empty()) {
    void* const p = free.back();
    free.pop_back();
    return p;
  }
  return ::operator new(size);
}

void IoBuffer::operator delete(void* p) noexcept {
  t_io_buffer_pool.free.push_back(p);
}

IoBuffer::IoBuffer(BufferPool& pool, std::uint32_t device, ByteOffset offset, Bytes capacity,
                   ExtentRef extent, SimTime now)
    : pool_(pool),
      device_(device),
      offset_(offset),
      capacity_(capacity),
      last_touch_(now),
      extent_(std::move(extent)) {}

IoBuffer::~IoBuffer() { pool_.release(capacity_); }

BufferPool::BufferPool(Bytes budget, bool materialize)
    : budget_(budget), materialize_(materialize) {}

std::unique_ptr<IoBuffer> BufferPool::allocate(std::uint32_t device, ByteOffset offset,
                                               Bytes capacity, SimTime now) {
  assert(capacity > 0);
  if (committed_ + capacity > budget_) {
    ++stats_.allocation_failures;
    return nullptr;
  }
  committed_ += capacity;
  ++live_buffers_;
  ++stats_.allocations;
  stats_.peak_committed = std::max(stats_.peak_committed, committed_);
  // Private constructor: can't use make_unique.
  return std::unique_ptr<IoBuffer>(new IoBuffer(
      *this, device, offset, capacity,
      materialize_ ? extents_.allocate(capacity) : ExtentRef{}, now));
}

void BufferPool::release(Bytes capacity) {
  assert(committed_ >= capacity);
  assert(live_buffers_ > 0);
  committed_ -= capacity;
  --live_buffers_;
  ++stats_.releases;
}

}  // namespace sst::core
