#include "core/buffer_pool.hpp"

#include <algorithm>
#include <cassert>

namespace sst::core {

IoBuffer::IoBuffer(BufferPool& pool, std::uint32_t device, ByteOffset offset, Bytes capacity,
                   bool materialize, SimTime now)
    : pool_(pool), device_(device), offset_(offset), capacity_(capacity), last_touch_(now) {
  if (materialize) data_.resize(capacity);
}

IoBuffer::~IoBuffer() { pool_.release(capacity_); }

BufferPool::BufferPool(Bytes budget, bool materialize)
    : budget_(budget), materialize_(materialize) {}

std::unique_ptr<IoBuffer> BufferPool::allocate(std::uint32_t device, ByteOffset offset,
                                               Bytes capacity, SimTime now) {
  assert(capacity > 0);
  if (committed_ + capacity > budget_) {
    ++stats_.allocation_failures;
    return nullptr;
  }
  committed_ += capacity;
  ++live_buffers_;
  ++stats_.allocations;
  stats_.peak_committed = std::max(stats_.peak_committed, committed_);
  // Private constructor: can't use make_unique.
  return std::unique_ptr<IoBuffer>(
      new IoBuffer(*this, device, offset, capacity, materialize_, now));
}

void BufferPool::release(Bytes capacity) {
  assert(committed_ >= capacity);
  assert(live_buffers_ > 0);
  committed_ -= capacity;
  --live_buffers_;
  ++stats_.releases;
}

}  // namespace sst::core
