// Storage-server front end (paper Fig. 9): every client request enters
// here. Requests belonging to a known sequential stream are handed to the
// stream scheduler; unclaimed reads are recorded by the classifier (which
// may detect a new stream); everything else — writes and non-sequential
// reads — is issued directly to the device.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "blockdev/block_device.hpp"
#include "common/types.hpp"
#include "core/classifier.hpp"
#include "core/scheduler.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/slo.hpp"
#include "obs/tracer.hpp"
#include "exec/execution_context.hpp"

namespace sst::core {

struct ServerStats {
  std::uint64_t requests = 0;
  std::uint64_t sequential_requests = 0;  ///< routed to a stream
  std::uint64_t direct_reads = 0;
  std::uint64_t direct_writes = 0;
  /// Requests failed on arrival because their device was declared failed.
  std::uint64_t rejected_requests = 0;
};

class StorageServer {
 public:
  /// Devices must outlive the server; they are indexed by position in
  /// `devices` (ClientRequest::device).
  StorageServer(exec::ExecutionContext& simulator, std::vector<blockdev::BlockDevice*> devices,
                SchedulerParams params);

  /// Entry point for client requests. The request must fit the device.
  void submit(ClientRequest request);

  /// Attach a per-experiment tracer (nullptr detaches); forwarded to the
  /// stream scheduler. The tracer must outlive the server.
  void set_tracer(obs::Tracer* tracer);

  /// Attach a flight recorder (nullptr detaches); forwarded to the stream
  /// scheduler. The recorder must outlive the server.
  void set_flight_recorder(obs::FlightRecorder* flight);

  [[nodiscard]] StreamScheduler& scheduler() { return scheduler_; }
  [[nodiscard]] const StreamScheduler& scheduler() const { return scheduler_; }
  [[nodiscard]] Classifier& classifier() { return classifier_; }
  [[nodiscard]] const ServerStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t device_count() const { return devices_.size(); }

 private:
  void direct(ClientRequest request);
  /// Wrap the request's completion so its full lifetime (arrival -> client
  /// completion) lands on the device's request track as a complete span.
  /// `kind` names the route taken and must be a string literal.
  void trace_request(ClientRequest& request, const char* kind);
  /// Latency attribution: record the route and wrap the completion to stamp
  /// the server-side done time (fires before the response leaves the
  /// server) and emit per-stage breakdown spans. Requires request.trace.
  void stamp_request(ClientRequest& request, obs::RequestRoute route);

  exec::ExecutionContext& sim_;
  std::vector<blockdev::BlockDevice*> devices_;
  Classifier classifier_;
  StreamScheduler scheduler_;
  ServerStats stats_;
  obs::Tracer* tracer_ = nullptr;
  obs::FlightRecorder* flight_ = nullptr;
};

}  // namespace sst::core
