// The stream scheduler (paper §4.2-4.4), now a thin facade over the staged
// pipeline: a StreamIndex matches incoming requests to streams, the
// DispatchSet holds the at-most-D streams actively issuing R-sized
// read-ahead (each for N requests per residency, replaced by the configured
// DispatchPolicy), and the StagingArea owns the memory budget M and the
// buffered set of staged data that rotated-out streams leave behind until
// clients consume it or a timeout reclaims it. The facade keeps all
// cross-component orchestration: client requests are served from staged
// buffers when possible, and the completion path gives priority to the
// issue path so the disks never idle while completions drain.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "blockdev/block_device.hpp"
#include "common/types.hpp"
#include "core/buffer_pool.hpp"
#include "core/dispatch_set.hpp"
#include "core/host_cpu.hpp"
#include "core/params.hpp"
#include "core/staging_area.hpp"
#include "core/stream.hpp"
#include "core/stream_index.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/tracer.hpp"
#include "exec/execution_context.hpp"

namespace sst::core {

struct SchedulerStats {
  std::uint64_t streams_created = 0;
  std::uint64_t streams_retired = 0;
  std::uint64_t disk_reads = 0;
  Bytes bytes_prefetched = 0;
  std::uint64_t client_completions = 0;
  Bytes bytes_served = 0;
  std::uint64_t buffer_hits = 0;        ///< requests served on arrival
  std::uint64_t rotations = 0;          ///< residency expirations
  std::uint64_t dispatch_stalls = 0;    ///< allocation failures at dispatch
  std::uint64_t gc_buffers_reclaimed = 0;
  Bytes gc_bytes_wasted = 0;            ///< staged-but-unread bytes reclaimed
  std::uint64_t gc_streams_retired = 0;
  std::uint64_t fallback_direct_reads = 0;  ///< served outside the cursor
  /// Parked requests that waited past the buffer timeout and were bailed
  /// out with a direct device read (memory-starvation escape hatch).
  std::uint64_t escalated_reads = 0;
  /// Read-ahead completions that reported failure (the retry hierarchy
  /// below the scheduler already gave up on them).
  std::uint64_t prefetch_errors = 0;
  /// Streams evicted from the dispatch/candidate/buffered sets because
  /// their backing device was declared failed.
  std::uint64_t streams_evicted = 0;
  /// Client requests completed with an error status (evicted stream or
  /// failed device fail-fast).
  std::uint64_t requests_failed = 0;
};

class StreamScheduler {
 public:
  /// Devices are indexed by position; they must outlive the scheduler. The
  /// params must validate(). The periodic GC arms itself on first use.
  StreamScheduler(exec::ExecutionContext& simulator,
                  std::vector<blockdev::BlockDevice*> devices, SchedulerParams params);
  ~StreamScheduler();
  StreamScheduler(const StreamScheduler&) = delete;
  StreamScheduler& operator=(const StreamScheduler&) = delete;

  /// Find the stream that claims `offset` on `device`, or nullptr.
  /// One predecessor search in the per-device interval map — O(log n).
  [[nodiscard]] Stream* find_stream(std::uint32_t device, ByteOffset offset);

  /// Create a stream from a classifier detection: read-ahead will start at
  /// `detection_end` (data before it was already served directly).
  Stream& create_stream(std::uint32_t device, ByteOffset range_start,
                        ByteOffset detection_end);

  /// Hand a client request to a stream (the request's offset must lie in
  /// the stream's range). Serves it from staged data when possible,
  /// otherwise queues it and schedules the stream for dispatch.
  void enqueue(Stream& stream, ClientRequest request);

  /// Run the issue path: fill free dispatch slots from the candidates.
  void pump();

  /// One GC sweep (also runs periodically): reclaim timed-out staged
  /// buffers and dismantle dead streams. Exposed for tests.
  void collect_garbage();

  /// Attach a per-experiment tracer (nullptr detaches). Every trace site is
  /// one null check when detached; the tracer must outlive the scheduler.
  void set_tracer(obs::Tracer* tracer);

  /// Attach a flight recorder journaling serve/fail/evict/device-failure
  /// events (nullptr detaches). Must outlive the scheduler.
  void set_flight_recorder(obs::FlightRecorder* flight) { flight_ = flight; }

  [[nodiscard]] const SchedulerParams& params() const { return params_; }
  [[nodiscard]] const SchedulerStats& stats() const { return stats_; }
  [[nodiscard]] const BufferPool& pool() const { return staging_.pool(); }
  [[nodiscard]] BufferPool& pool() { return staging_.pool(); }
  [[nodiscard]] const StagingStats& staging_stats() const { return staging_.stats(); }
  [[nodiscard]] HostCpu& cpu() { return cpu_; }
  [[nodiscard]] std::size_t stream_count() const { return streams_.size(); }
  [[nodiscard]] std::size_t dispatched_count() const {
    return dispatch_.dispatched_count();
  }
  [[nodiscard]] std::size_t candidate_count() const {
    return dispatch_.candidate_count();
  }
  /// Streams holding staged data while not dispatched (the buffered set).
  /// Maintained incrementally at every state/buffer transition, so the
  /// query is O(1) even with thousands of streams.
  [[nodiscard]] std::size_t buffered_count() const;
  [[nodiscard]] const Stream* stream_by_id(StreamId id) const;

  /// Device health as seen from the host: a device whose read-aheads keep
  /// failing after the full retry hierarchy is declared failed; its streams
  /// are evicted (pending requests complete with an error) so healthy
  /// streams keep their dispatch slots and throughput.
  [[nodiscard]] bool device_failed(std::uint32_t device) const {
    return device < device_errors_.size() &&
           device_errors_[device] >= params_.device_fail_threshold;
  }
  [[nodiscard]] std::size_t failed_device_count() const;

 private:
  Stream& stream_ref(StreamId id);
  /// Move a stream into the candidate queue if not already scheduled.
  void make_candidate(Stream& stream);
  /// Give `stream` a dispatch slot and start its residency. Returns false
  /// when the first issue bounced on memory and the stream fell back to the
  /// head of the candidate queue — the pump must stall until buffers free.
  bool dispatch(Stream& stream);
  /// Issue the stream's next R-sized read, or rotate it out when its
  /// residency expired / memory ran out / the device is exhausted. Returns
  /// false only on a memory bounce (allocation failure sent the stream back
  /// to the candidate queue); rotations and successful issues return true.
  bool issue_next(Stream& stream);
  /// End the stream's residency; staged data remains in the buffered set.
  void rotate_out(Stream& stream);
  /// `issued_at` is when the read-ahead hit the device (traced as the
  /// prefetch span's start; 0 before the first trace-aware issue).
  void on_read_complete(StreamId stream_id, ByteOffset buffer_offset,
                        SimTime issued_at, IoStatus status);
  /// Record a failed read-ahead against the device; past the threshold the
  /// device is declared failed and every stream on it is evicted.
  void note_device_error(std::uint32_t device, IoStatus status);
  /// Remove the stream from whichever set holds it, fail its pending
  /// requests with `status`, release its staged data, and retire it (or
  /// park it as an inert zombie until in-flight completions drain).
  void evict_stream(Stream& stream, IoStatus status);
  /// Complete `request` with a failure status (counted in requests_failed).
  void fail_request(ClientRequest& request, IoStatus status);
  /// Serve every pending request that staged data now covers.
  void drain_pending(Stream& stream);
  /// Serve one request from the staged buffers covering it (CPU-charged
  /// completion; copies data when both sides are materialized).
  void serve_request(Stream& stream, ClientRequest request);
  /// Release fully consumed buffers; drop empty buffered streams from the
  /// buffered set.
  void reap_buffers(Stream& stream);
  void retire_stream(StreamId id);
  void arm_gc();

  exec::ExecutionContext& sim_;
  std::vector<blockdev::BlockDevice*> devices_;
  SchedulerParams params_;
  StagingArea staging_;
  HostCpu cpu_;
  DispatchSet dispatch_;
  StreamIndex index_;
  /// Pooled slots for parked client requests (streams link them into their
  /// pending lists); recycled without allocation once warm.
  RequestSlab request_slab_;

  std::map<StreamId, std::unique_ptr<Stream>> streams_;
  /// Failed read-ahead count per device; >= device_fail_threshold = failed.
  std::vector<std::uint32_t> device_errors_;
  StreamId next_stream_id_ = 1;
  exec::TaskHandle gc_event_;
  SchedulerStats stats_;
  obs::Tracer* tracer_ = nullptr;
  obs::FlightRecorder* flight_ = nullptr;
};

}  // namespace sst::core
