#include "core/autotune.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace sst::core {

namespace {
/// Round up to the next power of two, in bytes.
Bytes next_pow2(Bytes v) {
  Bytes p = 1;
  while (p < v) p <<= 1;
  return p;
}
}  // namespace

TuningResult autotune(const NodeDescription& node, double target_efficiency) {
  TuningResult result;
  SchedulerParams& p = result.params;

  const double eff = std::clamp(target_efficiency, 0.5, 0.99);
  const double position_s = to_seconds(node.avg_position_time);

  // efficiency = xfer / (position + xfer) with xfer = R / rate
  //   => R = rate * position * eff / (1 - eff).
  const double r_raw = node.disk_seq_rate_bps * position_s * eff / (1.0 - eff);
  Bytes read_ahead = next_pow2(static_cast<Bytes>(r_raw));
  read_ahead = std::clamp<Bytes>(read_ahead, 128 * KiB, 16 * MiB);

  // One dispatch slot per disk keeps every spindle streaming while bounding
  // buffer-management overhead (paper Fig. 13 vs 12).
  const std::uint32_t dispatch = std::max<std::uint32_t>(1, node.num_disks);

  // Memory must hold at least one residency (D*R*N); cap the read-ahead if
  // the node is memory-starved, then spend what is left on residency so
  // each dispatched stream amortizes its dispatch over many requests.
  while (read_ahead > 128 * KiB &&
         static_cast<Bytes>(dispatch) * read_ahead > node.host_memory) {
    read_ahead /= 2;
  }
  const Bytes per_slot = node.host_memory / dispatch;
  std::uint32_t residency =
      static_cast<std::uint32_t>(std::max<Bytes>(1, per_slot / read_ahead));
  residency = std::min<std::uint32_t>(residency, 128);

  p.dispatch_set_size = dispatch;
  p.read_ahead = read_ahead;
  p.requests_per_residency = residency;
  p.memory_budget = std::max<Bytes>(
      node.host_memory, static_cast<Bytes>(dispatch) * read_ahead * residency);

  const double xfer_s = static_cast<double>(read_ahead) / node.disk_seq_rate_bps;
  result.predicted_efficiency = xfer_s / (xfer_s + position_s);

  std::ostringstream why;
  why << "R=" << read_ahead / KiB << "K for " << static_cast<int>(eff * 100)
      << "% target efficiency (position " << to_millis(node.avg_position_time)
      << "ms at " << node.disk_seq_rate_bps / 1e6 << "MB/s); D=" << dispatch
      << " (one per disk); N=" << residency << " from M="
      << node.host_memory / MiB << "M; predicted efficiency "
      << static_cast<int>(result.predicted_efficiency * 100) << "%";
  result.rationale = why.str();
  return result;
}

}  // namespace sst::core
