// Host-side command reliability layer: per-command timeouts with bounded
// retry and exponential backoff over any BlockDevice (cf. the block-layer
// timeout/requeue hierarchy in production storage stacks). Stacked between
// the stream scheduler / server and a (possibly fault-injected) device:
//
//   submit -> attempt 1 [timer armed]
//     ok                -> complete(kOk)            (recovered if attempt>1)
//     error completion  -> backoff, attempt k+1
//     timer fires       -> abandon attempt, backoff, attempt k+1
//     retries exhausted -> complete(last status)    (giveup)
//
// A timed-out attempt may still complete later inside the inner device; the
// stale completion is recognized by its attempt number and dropped. Hung
// commands (swallowed by fault::FaultyDevice) are recovered purely by the
// timer. Backoff for retry k sleeps min(backoff_base << (k-1), backoff_cap).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "blockdev/block_device.hpp"
#include "common/result.hpp"
#include "obs/tracer.hpp"
#include "exec/execution_context.hpp"

namespace sst::core {

struct RetryParams {
  /// Deadline per attempt; 0 disables the timer (error completions still
  /// retry, but hung commands are then unrecoverable).
  SimTime command_timeout = msec(250);
  /// Retries after the first attempt (total attempts = max_retries + 1).
  std::uint32_t max_retries = 3;
  SimTime backoff_base = msec(5);
  SimTime backoff_cap = sec(1);

  /// Backoff slept before retry `k` (1-based): base << (k-1), capped.
  [[nodiscard]] SimTime backoff_for(std::uint32_t retry) const {
    if (retry == 0) return 0;
    const std::uint32_t shift = retry - 1 < 20 ? retry - 1 : 20;
    const SimTime raw = backoff_base << shift;
    return raw < backoff_cap ? raw : backoff_cap;
  }

  [[nodiscard]] Status validate() const {
    if (backoff_base == 0) return make_error("retry backoff_base must be > 0");
    if (backoff_cap < backoff_base) {
      return make_error("retry backoff_cap must be >= backoff_base");
    }
    return Status::success();
  }
};

struct RetryStats {
  std::uint64_t commands = 0;
  std::uint64_t retries_total = 0;   ///< re-submissions (all causes)
  std::uint64_t timeouts = 0;        ///< attempts abandoned by the timer
  std::uint64_t media_errors = 0;    ///< error completions from below
  std::uint64_t recovered = 0;       ///< commands ok after >= 1 retry
  std::uint64_t giveups = 0;         ///< commands failed, retries exhausted
  SimTime backoff_time = 0;          ///< total backoff sleep injected
};

class ReliableDevice final : public blockdev::BlockDevice {
 public:
  /// `inner` must outlive this wrapper. `device_index` labels trace events.
  ReliableDevice(exec::ExecutionContext& simulator, blockdev::BlockDevice& inner,
                 RetryParams params, std::uint32_t device_index);

  void submit(blockdev::BlockRequest request) override;

  [[nodiscard]] Bytes capacity() const override { return inner_.capacity(); }
  [[nodiscard]] std::string name() const override { return "reliable:" + inner_.name(); }
  [[nodiscard]] const RetryParams& params() const { return params_; }
  [[nodiscard]] const RetryStats& stats() const { return stats_; }

  /// Attach a per-experiment tracer (nullptr detaches); retries, timeouts
  /// and giveups land as instants on the device's request track.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

 private:
  /// One command's recovery state, shared between the timer, the attempt
  /// completion, and backoff continuations.
  struct Pending {
    ByteOffset offset = 0;
    Bytes length = 0;
    IoOp op = IoOp::kRead;
    RequestId id = kInvalidRequest;
    std::byte* data = nullptr;
    IoCompletion cb;
    std::uint32_t attempt = 1;   ///< current attempt number (stale guard)
    bool settled = false;
    IoStatus last_status = IoStatus::kTimeout;
    exec::TaskHandle timer;
  };

  void start_attempt(const std::shared_ptr<Pending>& p);
  void attempt_failed(const std::shared_ptr<Pending>& p, IoStatus status);
  void settle(const std::shared_ptr<Pending>& p, IoStatus status);

  exec::ExecutionContext& sim_;
  blockdev::BlockDevice& inner_;
  RetryParams params_;
  std::uint32_t device_index_;
  RetryStats stats_;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace sst::core
