// A detected sequential stream and the client requests travelling through
// it. Owned by the StreamScheduler; this header only defines the data
// carried per stream so tests can inspect scheduler state.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/completion.hpp"
#include "common/intrusive_list.hpp"
#include "common/slab.hpp"
#include "common/types.hpp"
#include "core/buffer_pool.hpp"

namespace sst::obs {
struct RequestTrace;
}  // namespace sst::obs

namespace sst::core {

/// A request as received from a client by the storage server.
struct ClientRequest {
  RequestId id = kInvalidRequest;
  std::uint32_t device = 0;
  ByteOffset offset = 0;
  Bytes length = 0;
  IoOp op = IoOp::kRead;
  /// Optional destination buffer (filled when the scheduler materializes).
  std::byte* data = nullptr;
  /// Optional zero-copy sink: staged data is handed over by reference (one
  /// StagedSlice per extent touched, before on_complete fires) instead of
  /// being copied. Only data served from staged buffers arrives here;
  /// clients that need bytes on the fallback-direct path use `data`.
  DataSink on_data;
  IoCompletion on_complete;
  SimTime arrival = 0;
  /// Latency-attribution record, owned by the experiment's LatencyAttributor;
  /// null when attribution is off. Layers stamp their own field.
  obs::RequestTrace* trace = nullptr;
};

/// A parked client request: a pooled slot carrying the request plus the
/// intrusive linkage threading it into its stream's pending list. Slots
/// come from a RequestSlab; unlink before releasing.
struct PendingRequest {
  ClientRequest req;
  IntrusiveHook<PendingRequest> hook;
};

/// Pool of PendingRequest slots (pointer-stable, allocation-free when
/// warm). `release` drops the completion closure so recycled slots hold no
/// stale captures.
class RequestSlab {
 public:
  [[nodiscard]] PendingRequest* acquire(ClientRequest request) {
    PendingRequest* slot = slab_.acquire();
    slot->req = std::move(request);
    return slot;
  }

  void release(PendingRequest* slot) {
    slot->req.on_complete = nullptr;
    slot->req.on_data = nullptr;
    slab_.release(slot);
  }

 private:
  Slab<PendingRequest> slab_;
};

using PendingList = IntrusiveList<PendingRequest, &PendingRequest::hook>;

enum class StreamState : std::uint8_t {
  kIdle,        ///< detected, nothing staged, not scheduled
  kCandidate,   ///< waiting for a dispatch-set slot
  kDispatched,  ///< issuing read-ahead requests to its disk
  kBuffered,    ///< rotated out; staged data lives in the buffered set
};

[[nodiscard]] constexpr const char* to_string(StreamState s) {
  switch (s) {
    case StreamState::kIdle: return "idle";
    case StreamState::kCandidate: return "candidate";
    case StreamState::kDispatched: return "dispatched";
    case StreamState::kBuffered: return "buffered";
  }
  return "?";
}

struct StreamStats {
  std::uint64_t client_requests = 0;
  std::uint64_t buffer_hits = 0;     ///< served from staged data on arrival
  std::uint64_t disk_reads = 0;      ///< read-ahead requests issued
  Bytes bytes_served = 0;
  Bytes bytes_prefetched = 0;
  std::uint64_t residencies = 0;     ///< times the stream entered the dispatch set
};

struct Stream {
  StreamId id = kInvalidStream;
  std::uint32_t device = 0;
  StreamState state = StreamState::kIdle;

  ByteOffset range_start = 0;   ///< where the detected run began
  ByteOffset prefetch_pos = 0;  ///< next device offset to read ahead
  ByteOffset served_upto = 0;   ///< high-water mark of completed client data

  /// Client requests waiting for data, kept sorted by offset (closed-loop
  /// clients are nearly in order; insertion scans from the tail). Nodes are
  /// pooled RequestSlab slots owned by the scheduler.
  PendingList pending;
  /// Staged and in-flight read-ahead buffers, ordered by offset.
  std::vector<std::unique_ptr<IoBuffer>> buffers;
  /// Candidate-queue linkage (DispatchSet); linked iff state == kCandidate.
  IntrusiveHook<Stream> candidate_hook;

  std::uint32_t issued_in_residency = 0;
  std::uint32_t inflight = 0;  ///< disk requests outstanding
  bool at_device_end = false;  ///< prefetch reached the end of the device
  /// Evicted because its backing device failed: out of every scheduling set
  /// and unclaimed from the index, kept only until in-flight completions
  /// drain (a zombie), then retired.
  bool evicted = false;
  SimTime last_activity = 0;
  SimTime dispatched_at = 0;  ///< start of the current residency (for tracing)

  /// Rewind detection: a client that wraps to the start of its region keeps
  /// matching this stream but lands behind the prefetch cursor. A short run
  /// of consecutive behind-the-cursor sequential reads re-aims the cursor.
  std::uint32_t fallback_streak = 0;
  ByteOffset last_fallback_end = 0;

  StreamStats stats;

  /// Requests at or beyond this offset are not this stream's (they would
  /// restart detection). Two full read-aheads of slack tolerates clients
  /// running ahead with multiple outstanding requests.
  [[nodiscard]] ByteOffset match_end(Bytes read_ahead) const {
    return prefetch_pos + 2 * read_ahead;
  }

  [[nodiscard]] Bytes staged_bytes() const {
    Bytes total = 0;
    for (const auto& b : buffers) total += b->valid();
    return total;
  }
};

}  // namespace sst::core
